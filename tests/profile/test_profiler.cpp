#include "sns/profile/profiler.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/util/error.hpp"

namespace sns::profile {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
  }
  const app::ProgramModel& prog(const std::string& n) const {
    return app::findProgram(lib_, n);
  }
  ProfilerConfig noiseless() {
    ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    return cfg;
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
};

TEST_F(ProfilerTest, ScaleProfileHasSampledWays) {
  Profiler prof(est_, noiseless());
  const auto sp = prof.profileScale(prog("CG"), 16, 1);
  EXPECT_EQ(sp.scale_factor, 1);
  EXPECT_EQ(sp.nodes, 1);
  EXPECT_EQ(sp.procs_per_node, 16);
  EXPECT_EQ(sp.ipc_llc.size(), 4u);  // sampled at 2, 4, 8, 20 ways
  EXPECT_EQ(sp.bw_llc.size(), 4u);
  EXPECT_NEAR(sp.exclusive_time, 210.0, 1.0);
}

TEST_F(ProfilerTest, NoiselessIpcCurveMatchesGroundTruth) {
  Profiler prof(est_, noiseless());
  const auto sp = prof.profileScale(prog("CG"), 16, 1);
  for (int w : {2, 4, 8, 20}) {
    const double truth = est_.solo(prog("CG"), 16, 1, w).ipc;
    EXPECT_NEAR(sp.ipc_llc.at(w), truth, truth * 0.01) << w << " ways";
  }
}

TEST_F(ProfilerTest, IpcCurveNonDecreasingForSinglePhasePrograms) {
  Profiler prof(est_, noiseless());
  for (const char* n : {"CG", "MG", "EP", "BFS", "HC", "NW"}) {
    const auto sp = prof.profileScale(prog(n), 16, 1);
    EXPECT_TRUE(sp.ipc_llc.isNonDecreasing()) << n;
  }
}

TEST_F(ProfilerTest, MultiPhaseProgramsGetBiasedProfiles) {
  // WC has map/reduce phases; the way-rotation lands different ways on
  // different phases, so the measured curve deviates from the ground truth
  // at some sampled point (the paper's profiling-inaccuracy mechanism).
  Profiler prof(est_, noiseless());
  const auto sp = prof.profileScale(prog("WC"), 16, 1);
  double max_rel_err = 0.0;
  for (int w : {2, 4, 8, 20}) {
    const double truth = est_.solo(prog("WC"), 16, 1, w).ipc;
    max_rel_err = std::max(max_rel_err, std::abs(sp.ipc_llc.at(w) - truth) / truth);
  }
  EXPECT_GT(max_rel_err, 0.005);
}

TEST_F(ProfilerTest, ProfileProgramClassifiesPaperClasses) {
  Profiler prof(est_, noiseless());
  for (const char* n : {"TS", "MG", "CG", "LU", "BW"}) {
    EXPECT_EQ(prof.profileProgram(prog(n), 16).cls, ScalingClass::kScaling) << n;
  }
  for (const char* n : {"WC", "NW", "EP", "HC", "GAN", "RNN"}) {
    EXPECT_EQ(prof.profileProgram(prog(n), 16).cls, ScalingClass::kNeutral) << n;
  }
  EXPECT_EQ(prof.profileProgram(prog("BFS"), 16).cls, ScalingClass::kCompact);
}

TEST_F(ProfilerTest, IdealScalesMatchPaper) {
  Profiler prof(est_, noiseless());
  EXPECT_EQ(prof.profileProgram(prog("CG"), 16).ideal_scale, 2);
  EXPECT_EQ(prof.profileProgram(prog("MG"), 16).ideal_scale, 8);
  EXPECT_EQ(prof.profileProgram(prog("BFS"), 16).ideal_scale, 1);
}

TEST_F(ProfilerTest, SingleNodeProgramsOnlyProfileScaleOne) {
  Profiler prof(est_, noiseless());
  const auto pp = prof.profileProgram(prog("GAN"), 16);
  EXPECT_EQ(pp.scales.size(), 1u);
  EXPECT_EQ(pp.scales[0].scale_factor, 1);
}

TEST_F(ProfilerTest, CompactProgramExplorationStopsEarly) {
  // BFS degrades >20% at 2x, so 4x and 8x are never profiled (§4.2's
  // degradation stop).
  Profiler prof(est_, noiseless());
  const auto pp = prof.profileProgram(prog("BFS"), 16);
  EXPECT_LE(pp.scales.size(), 2u);
}

TEST_F(ProfilerTest, ExplorationStopsAtMinProcsPerNode) {
  ProfilerConfig cfg = noiseless();
  cfg.min_procs_per_node = 4;
  Profiler prof(est_, cfg);
  const auto pp = prof.profileProgram(prog("MG"), 16);
  // 16 procs at 8 nodes = 2 per node < 4, so scale 8 is skipped.
  EXPECT_EQ(pp.scales.back().scale_factor, 4);
}

TEST_F(ProfilerTest, NoisyProfilesStayNearTruth) {
  ProfilerConfig cfg;
  cfg.pmu_noise = 0.02;
  Profiler prof(est_, cfg, 42);
  const auto sp = prof.profileScale(prog("CG"), 16, 1);
  for (int w : {2, 4, 8, 20}) {
    const double truth = est_.solo(prog("CG"), 16, 1, w).ipc;
    EXPECT_NEAR(sp.ipc_llc.at(w), truth, truth * 0.05) << w;
  }
}

TEST_F(ProfilerTest, RejectsBadArguments) {
  Profiler prof(est_, noiseless());
  EXPECT_THROW(prof.profileScale(prog("CG"), 16, 0), util::PreconditionError);
  EXPECT_THROW(prof.profileScale(prog("GAN"), 16, 2), util::PreconditionError);
}

class AllProgramsProfile : public ::testing::TestWithParam<const char*> {};

TEST_P(AllProgramsProfile, ProducesConsistentProfile) {
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  Profiler prof(est, cfg);
  const auto pp = prof.profileProgram(app::findProgram(lib, GetParam()), 16);
  EXPECT_EQ(pp.program, GetParam());
  EXPECT_EQ(pp.procs, 16);
  EXPECT_NE(pp.cls, ScalingClass::kUnknown);
  ASSERT_FALSE(pp.scales.empty());
  EXPECT_EQ(pp.scales.front().scale_factor, 1);
  EXPECT_NE(pp.at(pp.ideal_scale), nullptr);
  for (const auto& sp : pp.scales) {
    EXPECT_GT(sp.exclusive_time, 0.0);
    EXPECT_FALSE(sp.ipc_llc.empty());
    EXPECT_FALSE(sp.bw_llc.empty());
  }
  // The performance-ordered scale list starts with the ideal scale.
  EXPECT_EQ(pp.scalesByPerformance().front(), pp.ideal_scale);
}

INSTANTIATE_TEST_SUITE_P(Programs, AllProgramsProfile,
                         ::testing::Values("WC", "TS", "NW", "GAN", "RNN", "MG",
                                           "CG", "EP", "LU", "BFS", "HC", "BW"));

}  // namespace
}  // namespace sns::profile
