#include "sns/profile/drift.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/perfmodel/pmu.hpp"
#include "sns/profile/database.hpp"
#include "sns/profile/exploration.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/util/error.hpp"

namespace sns::profile {
namespace {

class DriftTest : public ::testing::Test {
 protected:
  DriftTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    Profiler prof(est_, cfg);
    mg_profile_ = prof.profileProgram(app::findProgram(lib_, "MG"), 16);
  }

  /// Feed `episodes` simulated PMU readings of `prog` running at 1x/16p
  /// with the given ways, compared against the stored MG profile.
  void feed(DriftDetector& det, const app::ProgramModel& prog, int episodes,
            double ways, double noise, std::uint64_t seed) {
    perfmodel::PmuSimulator pmu(noise, seed);
    perfmodel::NodeShare share{&prog, 16, ways, 0.0, 1.0, 0.0};
    const auto out =
        est_.solver().solve(std::span<const perfmodel::NodeShare>(&share, 1)).front();
    for (int e = 0; e < episodes; ++e) {
      const auto s = pmu.sample(out, 16, 5.0, est_.machine().frequency_ghz);
      det.observe(mg_profile_, 1, ways, s.ipc(), s.bandwidthGbps());
    }
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  ProgramProfile mg_profile_;
};

TEST_F(DriftTest, UnchangedProgramShowsNoDrift) {
  DriftDetector det;
  feed(det, app::findProgram(lib_, "MG"), 30, 8.0, 0.02, 1);
  EXPECT_FALSE(det.reprofileNeeded());
  EXPECT_LT(det.meanIpcDeviation(), 0.10);
}

TEST_F(DriftTest, RewrittenProgramTriggersReprofile) {
  // "MG v2": a rewrite that halves the memory intensity — twice the IPC.
  app::ProgramModel mg_v2 = app::findProgram(lib_, "MG");
  mg_v2.mem_refs_per_instr *= 0.4;
  est_.calibrate(mg_v2);
  DriftDetector det;
  feed(det, mg_v2, 30, 8.0, 0.02, 2);
  EXPECT_TRUE(det.reprofileNeeded());
  EXPECT_GT(det.meanIpcDeviation(), 0.15);
}

TEST_F(DriftTest, NeedsMinimumSampleCount) {
  app::ProgramModel mg_v2 = app::findProgram(lib_, "MG");
  mg_v2.mem_refs_per_instr *= 0.4;
  est_.calibrate(mg_v2);
  DriftConfig cfg;
  cfg.min_samples = 12;
  DriftDetector det(cfg);
  feed(det, mg_v2, 5, 8.0, 0.0, 3);
  EXPECT_FALSE(det.reprofileNeeded());  // too few episodes to judge
  feed(det, mg_v2, 10, 8.0, 0.0, 4);
  EXPECT_TRUE(det.reprofileNeeded());
}

TEST_F(DriftTest, ResetForgetsHistory) {
  app::ProgramModel mg_v2 = app::findProgram(lib_, "MG");
  mg_v2.mem_refs_per_instr *= 0.4;
  est_.calibrate(mg_v2);
  DriftDetector det;
  feed(det, mg_v2, 30, 8.0, 0.0, 5);
  ASSERT_TRUE(det.reprofileNeeded());
  det.reset();
  EXPECT_EQ(det.samples(), 0u);
  EXPECT_FALSE(det.reprofileNeeded());
}

TEST_F(DriftTest, UnprofiledScaleIgnored) {
  DriftDetector det;
  det.observe(mg_profile_, 3 /* never profiled */, 8.0, 1.0, 50.0);
  EXPECT_EQ(det.samples(), 0u);
}

TEST_F(DriftTest, RejectsNegativeReadings) {
  DriftDetector det;
  EXPECT_THROW(det.observe(mg_profile_, 1, 8.0, -1.0, 0.0),
               util::PreconditionError);
}

TEST_F(DriftTest, DatabaseEraseSendsProgramBackToExploration) {
  ProfileDatabase db;
  db.put(mg_profile_);
  ASSERT_TRUE(db.contains("MG", 16));
  EXPECT_TRUE(db.erase("MG", 16));
  EXPECT_FALSE(db.contains("MG", 16));
  EXPECT_FALSE(db.erase("MG", 16));  // idempotent
  // With the profile gone, the exploration pipeline restarts at 1x.
  EXPECT_EQ(nextTrialScale(db.find("MG", 16), app::findProgram(lib_, "MG"), 16, 8,
                           est_),
            1);
}

class DriftWaySweep : public ::testing::TestWithParam<double> {};

TEST_P(DriftWaySweep, ObservationsAtAnyAllocationWork) {
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  Profiler prof(est, cfg);
  const auto pp = prof.profileProgram(app::findProgram(lib, "CG"), 16);

  const double ways = GetParam();
  perfmodel::NodeShare share{&app::findProgram(lib, "CG"), 16, ways, 0.0, 1.0, 0.0};
  const auto out =
      est.solver().solve(std::span<const perfmodel::NodeShare>(&share, 1)).front();
  DriftDetector det;
  for (int e = 0; e < 20; ++e) {
    det.observe(pp, 1, ways, out.ipc, out.bw_gbps);
  }
  // Ground truth at profiled way points matches the (noiseless) profile
  // closely; interpolated points may deviate but never past the trigger.
  EXPECT_FALSE(det.reprofileNeeded()) << "ways " << ways;
}

INSTANTIATE_TEST_SUITE_P(Ways, DriftWaySweep,
                         ::testing::Values(2.0, 4.0, 8.0, 12.0, 20.0));

}  // namespace
}  // namespace sns::profile
