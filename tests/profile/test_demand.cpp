#include "sns/profile/demand.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/perfmodel/estimator.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/util/error.hpp"

namespace sns::profile {
namespace {

ScaleProfile syntheticProfile() {
  // IPC ramps linearly from 0.5 at 2 ways to 1.0 at 20 ways; bandwidth
  // falls from 80 to 40 as the cache grows.
  ScaleProfile sp;
  sp.scale_factor = 1;
  sp.nodes = 1;
  sp.procs_per_node = 16;
  sp.exclusive_time = 100.0;
  sp.ipc_llc = util::Curve({{2.0, 0.5}, {20.0, 1.0}});
  sp.bw_llc = util::Curve({{2.0, 80.0}, {20.0, 40.0}});
  return sp;
}

TEST(Demand, Fig10Walkthrough) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  const auto sp = syntheticProfile();
  // F-IPC = 1.0; alpha = 0.9 -> T-IPC = 0.9; the ramp reaches 0.9 at
  // w = 2 + 18 * (0.4/0.5) = 16.4 -> ceil 17 ways; b = bw at 17 ways.
  const auto d = estimateDemand(sp, 0.9, mach);
  EXPECT_DOUBLE_EQ(d.f_ipc, 1.0);
  EXPECT_DOUBLE_EQ(d.t_ipc, 0.9);
  EXPECT_EQ(d.ways, 17);
  EXPECT_NEAR(d.bw_gbps, sp.bw_llc.at(17), 1e-9);
}

TEST(Demand, AlphaOneWantsFullPerformance) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  const auto d = estimateDemand(syntheticProfile(), 1.0, mach);
  EXPECT_EQ(d.ways, 20);
}

TEST(Demand, LooseAlphaNeedsFewWays) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  const auto d = estimateDemand(syntheticProfile(), 0.5, mach);
  EXPECT_EQ(d.ways, mach.min_ways_per_job);  // clamped to the 2-way floor
}

TEST(Demand, WaysMonotoneInAlpha) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  int prev = 0;
  for (double a : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    const auto d = estimateDemand(syntheticProfile(), a, mach);
    EXPECT_GE(d.ways, prev);
    prev = d.ways;
  }
}

TEST(Demand, RejectsBadAlphaAndEmptyCurves) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  EXPECT_THROW(estimateDemand(syntheticProfile(), 0.0, mach),
               util::PreconditionError);
  EXPECT_THROW(estimateDemand(syntheticProfile(), 1.5, mach),
               util::PreconditionError);
  ScaleProfile empty;
  EXPECT_THROW(estimateDemand(empty, 0.9, mach), util::PreconditionError);
}

TEST(Demand, PaperProgramsGetSensibleDemands) {
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  Profiler prof(est, cfg);

  // MG saturates with very few ways; EP and HC are happy at the floor;
  // CG/BFS/NW want most of the cache (Fig 12).
  const auto mg = estimateDemand(prof.profileScale(lib[5], 16, 1), 0.9, est.machine());
  EXPECT_LE(mg.ways, 4);
  EXPECT_GT(mg.bw_gbps, 100.0);

  for (const char* n : {"EP", "HC"}) {
    const auto d = estimateDemand(
        prof.profileScale(app::findProgram(lib, n), 16, 1), 0.9, est.machine());
    EXPECT_EQ(d.ways, est.machine().min_ways_per_job) << n;
    EXPECT_LT(d.bw_gbps, 10.0) << n;
  }
  for (const char* n : {"CG", "BFS", "NW"}) {
    const auto d = estimateDemand(
        prof.profileScale(app::findProgram(lib, n), 16, 1), 0.9, est.machine());
    EXPECT_GE(d.ways, 8) << n;
  }
}

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, DemandIsAlwaysWithinHardwareLimits) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  const auto d = estimateDemand(syntheticProfile(), GetParam(), mach);
  EXPECT_GE(d.ways, mach.min_ways_per_job);
  EXPECT_LE(d.ways, mach.llc_ways);
  EXPECT_GT(d.bw_gbps, 0.0);
  EXPECT_LE(d.bw_gbps, mach.peakBandwidth());
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.05, 0.3, 0.5, 0.7, 0.85, 0.9, 0.99,
                                           1.0));

}  // namespace
}  // namespace sns::profile
