#include "sns/profile/exploration.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/util/error.hpp"

namespace sns::profile {
namespace {

class ExplorationTest : public ::testing::Test {
 protected:
  ExplorationTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    prof_ = std::make_unique<Profiler>(est_, cfg);
  }
  const app::ProgramModel& prog(const std::string& n) const {
    return app::findProgram(lib_, n);
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  std::unique_ptr<Profiler> prof_;
};

TEST_F(ExplorationTest, UnknownProgramTrialsScaleOne) {
  EXPECT_EQ(nextTrialScale(nullptr, prog("MG"), 16, 8, est_), 1);
}

TEST_F(ExplorationTest, WalksCandidateScalesInOrder) {
  ProgramProfile pp;
  pp.program = "MG";
  pp.procs = 16;
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 1), 0.05);
  EXPECT_EQ(nextTrialScale(&pp, prog("MG"), 16, 8, est_), 2);
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 2), 0.05);
  EXPECT_EQ(nextTrialScale(&pp, prog("MG"), 16, 8, est_), 4);
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 4), 0.05);
  EXPECT_EQ(nextTrialScale(&pp, prog("MG"), 16, 8, est_), 8);
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 8), 0.05);
  EXPECT_EQ(nextTrialScale(&pp, prog("MG"), 16, 8, est_), 0);
}

TEST_F(ExplorationTest, DegradedTrialStopsExploration) {
  // BFS degrades >20% at 2x: after recording that trial, exploration ends.
  ProgramProfile pp;
  pp.program = "BFS";
  pp.procs = 16;
  mergeTrial(pp, prof_->profileScale(prog("BFS"), 16, 1), 0.05);
  mergeTrial(pp, prof_->profileScale(prog("BFS"), 16, 2), 0.05);
  EXPECT_EQ(nextTrialScale(&pp, prog("BFS"), 16, 8, est_), 0);
  EXPECT_EQ(pp.cls, ScalingClass::kCompact);
}

TEST_F(ExplorationTest, SingleNodeProgramsFinishAfterOneTrial) {
  ProgramProfile pp;
  pp.program = "GAN";
  pp.procs = 16;
  mergeTrial(pp, prof_->profileScale(prog("GAN"), 16, 1), 0.05);
  EXPECT_EQ(nextTrialScale(&pp, prog("GAN"), 16, 8, est_), 0);
}

TEST_F(ExplorationTest, ClusterSizeBoundsExploration) {
  ProgramProfile pp;
  pp.program = "MG";
  pp.procs = 16;
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 1), 0.05);
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 2), 0.05);
  // A 2-node cluster cannot host the 4x trial.
  EXPECT_EQ(nextTrialScale(&pp, prog("MG"), 16, 2, est_), 0);
  EXPECT_EQ(nextTrialScale(&pp, prog("MG"), 16, 8, est_), 4);
}

TEST_F(ExplorationTest, MinProcsPerNodeBoundsExploration) {
  ProfilerConfig cfg;
  cfg.min_procs_per_node = 4;
  ProgramProfile pp;
  pp.program = "MG";
  pp.procs = 16;
  for (int k : {1, 2, 4}) mergeTrial(pp, prof_->profileScale(prog("MG"), 16, k), 0.05);
  // 8x would leave 2 procs/node < 4.
  EXPECT_EQ(nextTrialScale(&pp, prog("MG"), 16, 8, est_, cfg), 0);
}

TEST_F(ExplorationTest, OfflineProfilesNeedNoTrials) {
  // A fully explored profile (the offline Profiler's output) is final.
  for (const auto& p : lib_) {
    const auto pp = prof_->profileProgram(p, 16);
    EXPECT_EQ(nextTrialScale(&pp, p, 16, 8, est_), 0) << p.name;
  }
}

TEST_F(ExplorationTest, MergeIsIdempotentPerScale) {
  ProgramProfile pp;
  pp.program = "EP";
  pp.procs = 16;
  mergeTrial(pp, prof_->profileScale(prog("EP"), 16, 1), 0.05);
  mergeTrial(pp, prof_->profileScale(prog("EP"), 16, 1), 0.05);
  EXPECT_EQ(pp.scales.size(), 1u);
}

TEST_F(ExplorationTest, MergeKeepsScalesSortedAndClassifies) {
  ProgramProfile pp;
  pp.program = "MG";
  pp.procs = 16;
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 2), 0.05);
  EXPECT_EQ(pp.cls, ScalingClass::kUnknown);  // no 1x base yet
  mergeTrial(pp, prof_->profileScale(prog("MG"), 16, 1), 0.05);
  EXPECT_EQ(pp.scales[0].scale_factor, 1);
  EXPECT_EQ(pp.scales[1].scale_factor, 2);
  EXPECT_EQ(pp.cls, ScalingClass::kScaling);
}

TEST_F(ExplorationTest, ValidatesClusterArgument) {
  EXPECT_THROW(nextTrialScale(nullptr, prog("MG"), 16, 0, est_),
               util::PreconditionError);
}

}  // namespace
}  // namespace sns::profile
