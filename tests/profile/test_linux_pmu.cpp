#include "sns/profile/linux_pmu.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace sns::profile {
namespace {

volatile double sink = 0.0;

void burnCycles() {
  double acc = 1.0;
  for (int i = 0; i < 2'000'000; ++i) acc = acc * 1.0000001 + 0.5;
  sink = acc;
}

TEST(LinuxPmu, ConstructionNeverThrows) {
  LinuxPmu pmu;
  if (!pmu.available()) {
    EXPECT_FALSE(pmu.error().empty());
  } else {
    EXPECT_TRUE(pmu.error().empty());
  }
}

TEST(LinuxPmu, StopWithoutCountersIsNullopt) {
  LinuxPmu pmu;
  if (pmu.available()) GTEST_SKIP() << "counters available; covered below";
  pmu.start();
  EXPECT_FALSE(pmu.stop().has_value());
}

TEST(LinuxPmu, CountsRealWork) {
  LinuxPmu pmu;
  if (!pmu.available()) {
    GTEST_SKIP() << "perf_event_open unavailable: " << pmu.error();
  }
  pmu.start();
  burnCycles();
  const auto c = pmu.stop();
  ASSERT_TRUE(c.has_value());
  // The loop retires at least a few million instructions.
  EXPECT_GT(c->instructions, 1'000'000u);
  EXPECT_GT(c->cycles, 0u);
  EXPECT_GT(c->duration_s, 0.0);
  EXPECT_GT(c->ipc(), 0.05);
  EXPECT_LT(c->ipc(), 10.0);
}

TEST(LinuxPmu, MoreWorkMoreInstructions) {
  LinuxPmu probe;
  if (!probe.available()) {
    GTEST_SKIP() << "perf_event_open unavailable: " << probe.error();
  }
  const auto one = measure([] { burnCycles(); });
  const auto three = measure([] {
    burnCycles();
    burnCycles();
    burnCycles();
  });
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(three.has_value());
  EXPECT_GT(three->instructions, one->instructions * 2);
}

TEST(LinuxPmu, HwCountersIpcSafeOnZero) {
  HwCounters c;
  EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
}

}  // namespace
}  // namespace sns::profile
