#include "sns/profile/database.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sns/app/library.hpp"
#include "sns/perfmodel/estimator.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/util/error.hpp"

namespace sns::profile {
namespace {

ProgramProfile sampleProfile(const std::string& name, int procs) {
  ProgramProfile p;
  p.program = name;
  p.procs = procs;
  p.cls = ScalingClass::kScaling;
  p.ideal_scale = 2;
  ScaleProfile s1;
  s1.scale_factor = 1;
  s1.nodes = 1;
  s1.procs_per_node = procs;
  s1.exclusive_time = 100.0;
  s1.ipc_llc = util::Curve({{2.0, 0.4}, {20.0, 0.8}});
  s1.bw_llc = util::Curve({{2.0, 60.0}, {20.0, 30.0}});
  p.scales.push_back(s1);
  ScaleProfile s2 = s1;
  s2.scale_factor = 2;
  s2.nodes = 2;
  s2.procs_per_node = procs / 2;
  s2.exclusive_time = 80.0;
  p.scales.push_back(s2);
  return p;
}

TEST(Database, GenerationTracksMutations) {
  // The generation counter backs memo invalidation in the scheduler's
  // batched-scoring path: every successful put/erase must bump it, a
  // no-op erase must not, and copies must carry the counter along (so a
  // fresh copy never aliases a stale memo).
  ProfileDatabase db;
  const std::uint64_t g0 = db.generation();
  db.put(sampleProfile("A", 16));
  EXPECT_GT(db.generation(), g0);
  const std::uint64_t g1 = db.generation();
  db.put(sampleProfile("A", 16));  // replacement still mutates
  EXPECT_GT(db.generation(), g1);
  const std::uint64_t g2 = db.generation();
  EXPECT_FALSE(db.erase("B", 16));  // absent key: no change
  EXPECT_EQ(db.generation(), g2);
  EXPECT_TRUE(db.erase("A", 16));
  EXPECT_GT(db.generation(), g2);
  ProfileDatabase copy = db;
  EXPECT_EQ(copy.generation(), db.generation());
}

TEST(Database, PutAndFind) {
  ProfileDatabase db;
  db.put(sampleProfile("MG", 16));
  EXPECT_TRUE(db.contains("MG", 16));
  EXPECT_FALSE(db.contains("MG", 28));
  EXPECT_FALSE(db.contains("CG", 16));
  const auto* p = db.find("MG", 16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->ideal_scale, 2);
}

TEST(Database, PutReplacesExisting) {
  ProfileDatabase db;
  db.put(sampleProfile("MG", 16));
  auto updated = sampleProfile("MG", 16);
  updated.ideal_scale = 4;
  db.put(updated);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find("MG", 16)->ideal_scale, 4);
}

TEST(Database, KeyedByProgramAndProcs) {
  ProfileDatabase db;
  db.put(sampleProfile("MG", 16));
  db.put(sampleProfile("MG", 28));
  EXPECT_EQ(db.size(), 2u);
}

TEST(Database, JsonRoundTripPreservesEverything) {
  ProfileDatabase db;
  db.put(sampleProfile("MG", 16));
  db.put(sampleProfile("CG", 28));
  const auto restored = ProfileDatabase::fromJson(db.toJson());
  EXPECT_EQ(restored.size(), 2u);
  const auto* p = restored.find("MG", 16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->cls, ScalingClass::kScaling);
  ASSERT_EQ(p->scales.size(), 2u);
  EXPECT_DOUBLE_EQ(p->scales[1].exclusive_time, 80.0);
  EXPECT_DOUBLE_EQ(p->scales[0].ipc_llc.at(11.0),
                   sampleProfile("MG", 16).scales[0].ipc_llc.at(11.0));
}

TEST(Database, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "sns_db_test.json";
  {
    ProfileDatabase db;
    db.put(sampleProfile("LU", 16));
    db.saveFile(path.string());
  }
  const auto db = ProfileDatabase::loadFile(path.string());
  EXPECT_TRUE(db.contains("LU", 16));
  std::filesystem::remove(path);
}

TEST(Database, LoadMissingFileThrows) {
  EXPECT_THROW(ProfileDatabase::loadFile("/nonexistent/path/db.json"),
               util::DataError);
}

TEST(Database, FromJsonValidatesShape) {
  EXPECT_THROW(ProfileDatabase::fromJson(util::Json::parse("{}")), util::DataError);
  EXPECT_THROW(ProfileDatabase::fromJson(util::Json::parse(R"({"profiles":[{}]})")),
               util::DataError);
}

TEST(Database, ScaleProfileJsonRoundTrip) {
  const auto p = sampleProfile("TS", 16);
  const auto back = ProgramProfile::fromJson(p.toJson());
  EXPECT_EQ(back.program, "TS");
  EXPECT_EQ(back.procs, 16);
  EXPECT_EQ(back.cls, p.cls);
  ASSERT_EQ(back.scales.size(), p.scales.size());
  EXPECT_EQ(back.scales[0].scale_factor, 1);
  EXPECT_EQ(back.scales[1].nodes, 2);
}

TEST(Database, FullPipelineRoundTrip) {
  // Profile all 12 programs, persist, reload, and verify the scheduler-side
  // lookups still work.
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  Profiler prof(est, cfg);
  ProfileDatabase db;
  for (const auto& p : lib) db.put(prof.profileProgram(p, 16));
  EXPECT_EQ(db.size(), 12u);

  const auto path = std::filesystem::temp_directory_path() / "sns_db_full.json";
  db.saveFile(path.string());
  const auto loaded = ProfileDatabase::loadFile(path.string());
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.size(), 12u);
  for (const auto& p : lib) {
    const auto* orig = db.find(p.name, 16);
    const auto* back = loaded.find(p.name, 16);
    ASSERT_NE(back, nullptr) << p.name;
    EXPECT_EQ(back->cls, orig->cls) << p.name;
    EXPECT_EQ(back->ideal_scale, orig->ideal_scale) << p.name;
    EXPECT_EQ(back->scalesByPerformance(), orig->scalesByPerformance()) << p.name;
  }
}

TEST(ProfileData, ClassifyRequiresBaseScale) {
  ProgramProfile p;
  EXPECT_THROW(p.classify(), util::PreconditionError);
  ScaleProfile s;
  s.scale_factor = 2;
  p.scales.push_back(s);
  EXPECT_THROW(p.classify(), util::PreconditionError);
}

TEST(ProfileData, ClassifyNeutralBand) {
  ProgramProfile p;
  for (int k : {1, 2}) {
    ScaleProfile s;
    s.scale_factor = k;
    s.exclusive_time = k == 1 ? 100.0 : 97.0;  // within 5%
    p.scales.push_back(s);
  }
  p.classify();
  EXPECT_EQ(p.cls, ScalingClass::kNeutral);
}

TEST(ProfileData, ClassifyScalingAndCompact) {
  ProgramProfile scaling;
  for (int k : {1, 2}) {
    ScaleProfile s;
    s.scale_factor = k;
    s.exclusive_time = k == 1 ? 100.0 : 80.0;
    scaling.scales.push_back(s);
  }
  scaling.classify();
  EXPECT_EQ(scaling.cls, ScalingClass::kScaling);
  EXPECT_EQ(scaling.ideal_scale, 2);

  ProgramProfile compact;
  for (int k : {1, 2}) {
    ScaleProfile s;
    s.scale_factor = k;
    s.exclusive_time = k == 1 ? 100.0 : 130.0;
    compact.scales.push_back(s);
  }
  compact.classify();
  EXPECT_EQ(compact.cls, ScalingClass::kCompact);
  EXPECT_EQ(compact.ideal_scale, 1);
}

TEST(ProfileData, ScalesByPerformanceOrdersAscendingTime) {
  ProgramProfile p;
  for (auto [k, t] : std::vector<std::pair<int, double>>{{1, 100.0}, {2, 80.0},
                                                         {4, 90.0}, {8, 120.0}}) {
    ScaleProfile s;
    s.scale_factor = k;
    s.exclusive_time = t;
    p.scales.push_back(s);
  }
  const auto order = p.scalesByPerformance();
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 8}));
}

TEST(ProfileData, ScalingClassStringRoundTrip) {
  for (auto c : {ScalingClass::kUnknown, ScalingClass::kScaling,
                 ScalingClass::kCompact, ScalingClass::kNeutral}) {
    EXPECT_EQ(scalingClassFromString(to_string(c)), c);
  }
  EXPECT_THROW(scalingClassFromString("weird"), util::DataError);
}

}  // namespace
}  // namespace sns::profile
