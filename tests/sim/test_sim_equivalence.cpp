// Equivalence suite for the simulator's performance paths. Every hot-path
// switch in SimOptFlags (indexed ledger, memoized contention solves,
// single-pass queue walk) is an optimization with a correctness *proof*,
// not a heuristic: the simulated results must be bit-for-bit identical to
// the legacy implementations. These tests enforce that — exact double
// comparisons, no tolerances — across policies, seeds, trace-style
// ce_time_override jobs, and monitored runs (which exercise the dense
// accumulate path).
#include <gtest/gtest.h>

#include <vector>

#include "sns/app/library.hpp"
#include "sns/flight/flight.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/util/thread_pool.hpp"

namespace sns::sim {
namespace {

struct Fixture {
  Fixture() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.02;
    profile::Profiler prof(est, cfg, 7);
    for (const auto& p : lib) {
      db.put(prof.profileProgram(p, 16));
      if (!p.pow2_procs && p.multi_node) db.put(prof.profileProgram(p, 28));
    }
  }
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib;
  profile::ProfileDatabase db;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// Exact comparison: any difference — a reordered node list, a solver
// round-off, one-ULP drift in a finish time — is a bug in an optimization.
void expectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.busy_node_seconds, b.busy_node_seconds);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobRecord& ja = a.jobs[i];
    const JobRecord& jb = b.jobs[i];
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.spec.program, jb.spec.program);
    EXPECT_EQ(ja.submit, jb.submit);
    EXPECT_EQ(ja.start, jb.start) << "job " << ja.id;
    EXPECT_EQ(ja.finish, jb.finish) << "job " << ja.id;
    EXPECT_EQ(ja.placement.nodes, jb.placement.nodes) << "job " << ja.id;
    EXPECT_EQ(ja.placement.procs_per_node, jb.placement.procs_per_node);
    EXPECT_EQ(ja.placement.scale_factor, jb.placement.scale_factor);
    EXPECT_EQ(ja.placement.ways, jb.placement.ways);
    EXPECT_EQ(ja.placement.bw_gbps, jb.placement.bw_gbps);
    EXPECT_EQ(ja.placement.net_gbps, jb.placement.net_gbps);
    EXPECT_EQ(ja.placement.exclusive, jb.placement.exclusive);
  }
  ASSERT_EQ(a.node_bw_episodes.size(), b.node_bw_episodes.size());
  for (std::size_t n = 0; n < a.node_bw_episodes.size(); ++n) {
    EXPECT_EQ(a.node_bw_episodes[n], b.node_bw_episodes[n]) << "node " << n;
  }
}

SimConfig baseConfig(sched::PolicyKind policy, bool monitored) {
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = policy;
  // Monitoring on exercises the busy-node accumulate path; off matches
  // the large-trace replay configuration.
  cfg.monitor_episode_s = monitored ? 30.0 : 0.0;
  return cfg;
}

SimOptFlags allLegacy() {
  SimOptFlags f;
  f.indexed_ledger = false;
  f.memoize_solves = false;
  f.single_pass_schedule = false;
  f.incremental_prune = false;
  f.batched_scoring = false;
  f.parallel_select = false;
  f.simd_solver = false;
  f.lazy_progress = false;
  f.finish_calendar = false;
  f.futile_pass_gate = false;
  f.dedup_node_solves = false;
  f.slot_rates = false;
  return f;
}

SimResult runWith(const Fixture& f, SimConfig cfg,
                  const std::vector<app::JobSpec>& seq) {
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  return sim.run(seq);
}

class OptimizedVsLegacy
    : public ::testing::TestWithParam<std::tuple<sched::PolicyKind, std::uint64_t>> {
};

TEST_P(OptimizedVsLegacy, RandomSequencesBitIdentical) {
  auto& f = fixture();
  const auto [policy, seed] = GetParam();
  util::Rng rng(seed);
  const auto seq = app::randomSequence(rng, f.lib, 16, 0.9);

  SimConfig fast = baseConfig(policy, /*monitored=*/true);  // defaults: all on
  SimConfig legacy = fast;
  legacy.opt = allLegacy();
  expectIdentical(runWith(f, fast, seq), runWith(f, legacy, seq));
}

TEST_P(OptimizedVsLegacy, EachFlagAloneBitIdentical) {
  auto& f = fixture();
  const auto [policy, seed] = GetParam();
  util::Rng rng(seed + 17);
  const auto seq = app::randomSequence(rng, f.lib, 12, 0.9);

  SimConfig legacy = baseConfig(policy, /*monitored=*/false);
  legacy.opt = allLegacy();
  const SimResult ref = runWith(f, legacy, seq);

  for (int flag = 0; flag < 12; ++flag) {
    SimConfig one = legacy;
    one.opt.indexed_ledger = flag == 0;
    one.opt.memoize_solves = flag == 1;
    one.opt.single_pass_schedule = flag == 2;
    one.opt.incremental_prune = flag == 3;
    one.opt.batched_scoring = flag == 4;
    one.opt.parallel_select = flag == 5;
    one.opt.simd_solver = flag == 6;
    one.opt.lazy_progress = flag == 7;
    one.opt.finish_calendar = flag == 8;
    one.opt.futile_pass_gate = flag == 9;
    one.opt.dedup_node_solves = flag == 10;
    one.opt.slot_rates = flag == 11;
    if (flag == 5) one.opt.parallel_min_candidates = 1;
    SCOPED_TRACE("flag " + std::to_string(flag));
    expectIdentical(runWith(f, one, seq), ref);
    // Recorder-on row: the interference flight recorder rides the settle
    // points this flag rewires; it must stay a pure observer under each.
    flight::FlightRecorder fr;
    SimConfig instrumented = one;
    instrumented.flight = &fr;
    expectIdentical(runWith(f, instrumented, seq), ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OptimizedVsLegacy,
    ::testing::Combine(::testing::Values(sched::PolicyKind::kCE,
                                         sched::PolicyKind::kCS,
                                         sched::PolicyKind::kSNS),
                       ::testing::Values(1u, 2u, 3u)));

// Trace-style jobs: ce_time_override supplies the ground-truth run time
// (the Fig 20 replay path), tight scan limits force backfilling decisions,
// and the queue stays deep enough that single-pass vs restart-from-head
// genuinely diverge in work done (but must not diverge in results).
TEST(SimEquivalence, TraceStyleOverrideJobsBitIdentical) {
  auto& f = fixture();
  std::vector<app::JobSpec> seq;
  const char* progs[] = {"MG", "LU", "WC", "EP", "CG", "TS"};
  for (int i = 0; i < 18; ++i) {
    app::JobSpec j;
    j.program = progs[i % 6];
    // WC/TS carry 28-proc profiles (non-pow2 multi-node); the rest are
    // profiled at their 16-proc reference.
    j.procs = (i % 6 == 2 || i % 6 == 5) ? 28 : 16;
    j.alpha = 0.9;
    j.submit_time = 40.0 * i;
    j.ce_time_override = 300.0 + 60.0 * (i % 5);
    seq.push_back(j);
  }
  for (sched::PolicyKind policy :
       {sched::PolicyKind::kCE, sched::PolicyKind::kCS, sched::PolicyKind::kSNS}) {
    SimConfig fast = baseConfig(policy, /*monitored=*/true);
    fast.age_limit_s = 120.0;
    fast.max_queue_scan = 4;
    SimConfig legacy = fast;
    legacy.opt = allLegacy();
    SCOPED_TRACE(sched::to_string(policy));
    expectIdentical(runWith(f, fast, seq), runWith(f, legacy, seq));
  }
}

// Worst case for the incremental-prune and batched-scoring caches: many
// jobs sharing a handful of specs pile up on a small contended cluster, so
// the queue walk repeats identical selection queries and identical
// tryPlace failures pass after pass, with releases invalidating both
// caches mid-run. The cached decisions must match a cache-free rerun
// exactly.
TEST(SimEquivalence, ContendedDuplicateSpecsBitIdentical) {
  auto& f = fixture();
  std::vector<app::JobSpec> seq;
  const char* progs[] = {"MG", "LU", "EP"};
  for (int i = 0; i < 24; ++i) {
    app::JobSpec j;
    j.program = progs[i % 3];
    j.procs = 16;
    j.alpha = 0.9;
    // Burst arrivals: eight jobs per wave so the queue stays deep and most
    // dispatch attempts fail (and hit the failed-spec memo).
    j.submit_time = 500.0 * (i / 8);
    seq.push_back(j);
  }
  for (sched::PolicyKind policy :
       {sched::PolicyKind::kCE, sched::PolicyKind::kCS, sched::PolicyKind::kSNS}) {
    SimConfig fast = baseConfig(policy, /*monitored=*/true);
    fast.nodes = 4;  // contended: nothing close to the aggregate demand
    SimConfig legacy = fast;
    legacy.opt = allLegacy();
    SCOPED_TRACE(sched::to_string(policy));
    expectIdentical(runWith(f, fast, seq), runWith(f, legacy, seq));
  }
}

// Force the sharded candidate scan on any host: an injected 3-worker pool
// plus parallel_min_candidates = 1 makes every bucket scan and score fill
// go through the pool, and the ordered merge must reproduce the serial
// scan bit-for-bit regardless of worker timing.
TEST(SimEquivalence, ParallelSelectPoolBitIdentical) {
  auto& f = fixture();
  util::Rng rng(99);
  const auto seq = app::randomSequence(rng, f.lib, 16, 0.9);
  util::ThreadPool pool(3);
  for (sched::PolicyKind policy :
       {sched::PolicyKind::kCE, sched::PolicyKind::kCS, sched::PolicyKind::kSNS}) {
    SimConfig fast = baseConfig(policy, /*monitored=*/true);
    fast.search_pool = &pool;
    fast.opt.parallel_min_candidates = 1;
    SimConfig legacy = fast;
    legacy.opt = allLegacy();
    SCOPED_TRACE(sched::to_string(policy));
    const SimResult a = runWith(f, fast, seq);
    const SimResult b = runWith(f, legacy, seq);
    expectIdentical(a, b);
  }
}

// The optimized simulator must also be deterministic run-to-run: identical
// inputs, identical results, including across back-to-back runs of the
// same simulator instance (run() must fully reset dense state).
TEST(SimEquivalence, SameSeedSameInstanceDeterminism) {
  auto& f = fixture();
  util::Rng rng(1234);
  const auto seq = app::randomSequence(rng, f.lib, 14, 0.9);
  SimConfig cfg = baseConfig(sched::PolicyKind::kSNS, /*monitored=*/true);

  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const SimResult first = sim.run(seq);
  const SimResult again = sim.run(seq);  // same instance, state must reset
  expectIdentical(first, again);

  ClusterSimulator fresh(f.est, f.lib, f.db, cfg);
  expectIdentical(first, fresh.run(seq));
}

}  // namespace
}  // namespace sns::sim
