// sns::xray must observe the decision path, never feed it: attaching the
// tracer (any sampling mode, provenance on or off, records retained or
// not) must leave simulation results bit-for-bit identical to a run with
// no tracer. Exact double comparisons, no tolerances — same contract as
// the SimOptFlags equivalence suite.
#include <gtest/gtest.h>

#include <vector>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/xray/span.hpp"

namespace sns::sim {
namespace {

struct Fixture {
  Fixture() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.02;
    profile::Profiler prof(est, cfg, 7);
    for (const auto& p : lib) {
      db.put(prof.profileProgram(p, 16));
      if (!p.pow2_procs && p.multi_node) db.put(prof.profileProgram(p, 28));
    }
  }
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib;
  profile::ProfileDatabase db;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void expectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.busy_node_seconds, b.busy_node_seconds);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobRecord& ja = a.jobs[i];
    const JobRecord& jb = b.jobs[i];
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.submit, jb.submit);
    EXPECT_EQ(ja.start, jb.start) << "job " << ja.id;
    EXPECT_EQ(ja.finish, jb.finish) << "job " << ja.id;
    EXPECT_EQ(ja.placement.nodes, jb.placement.nodes) << "job " << ja.id;
    EXPECT_EQ(ja.placement.procs_per_node, jb.placement.procs_per_node);
    EXPECT_EQ(ja.placement.scale_factor, jb.placement.scale_factor);
    EXPECT_EQ(ja.placement.ways, jb.placement.ways);
    EXPECT_EQ(ja.placement.bw_gbps, jb.placement.bw_gbps);
    EXPECT_EQ(ja.placement.net_gbps, jb.placement.net_gbps);
    EXPECT_EQ(ja.placement.exclusive, jb.placement.exclusive);
  }
  ASSERT_EQ(a.node_bw_episodes.size(), b.node_bw_episodes.size());
  for (std::size_t n = 0; n < a.node_bw_episodes.size(); ++n) {
    EXPECT_EQ(a.node_bw_episodes[n], b.node_bw_episodes[n]) << "node " << n;
  }
}

SimResult runWith(const Fixture& f, sched::PolicyKind policy,
                  const std::vector<app::JobSpec>& seq,
                  xray::Tracer* tracer) {
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = policy;
  cfg.monitor_episode_s = 30.0;
  cfg.xray = tracer;
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  return sim.run(seq);
}

class XrayEquivalence
    : public ::testing::TestWithParam<std::tuple<sched::PolicyKind, std::uint64_t>> {
};

TEST_P(XrayEquivalence, TracerOnOffBitIdentical) {
  auto& f = fixture();
  const auto [policy, seed] = GetParam();
  util::Rng rng(seed);
  const auto seq = app::randomSequence(rng, f.lib, 16, 0.9);

  const SimResult off = runWith(f, policy, seq, nullptr);

  // Every tracer mode: full tracing + provenance + records, sampled, and
  // provenance-only (the `uberun explain` configuration).
  xray::TracerConfig full;
  full.keep_records = true;
  xray::TracerConfig sampled;
  sampled.sample_period = 3;
  sampled.provenance = false;
  xray::TracerConfig prov_only;
  prov_only.sample_period = 1 << 30;
  const xray::TracerConfig modes[] = {full, sampled, prov_only};
  for (std::size_t m = 0; m < 3; ++m) {
    xray::Tracer tracer(modes[m]);
    SCOPED_TRACE("mode " + std::to_string(m));
    expectIdentical(runWith(f, policy, seq, &tracer), off);
    EXPECT_EQ(tracer.passes() > 0, true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, XrayEquivalence,
    ::testing::Combine(::testing::Values(sched::PolicyKind::kCE,
                                         sched::PolicyKind::kCS,
                                         sched::PolicyKind::kSNS),
                       ::testing::Values(5u, 6u)));

// The hotpath attribution must cover the decision path the simulator
// itself times: with every pass traced, the per-pass attributed span time
// tracks sim.decision_us (generous bound here — the tight 5% check runs
// at Fig-20 scale where per-pass noise averages out; see EXPERIMENTS.md).
TEST(XrayEquivalence, AttributedTimeTracksDecisionLatency) {
  auto& f = fixture();
  util::Rng rng(9);
  const auto seq = app::randomSequence(rng, f.lib, 16, 0.9);

  xray::Tracer tracer;
  obs::Registry metrics;
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.xray = &tracer;
  cfg.metrics = &metrics;
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const auto res = sim.run(seq);
  ASSERT_FALSE(res.jobs.empty());

  const obs::Histogram* dec = metrics.findHistogram("sim.decision_us");
  ASSERT_NE(dec, nullptr);
  ASSERT_GT(dec->count(), 0u);
  ASSERT_EQ(tracer.sampledPasses(), dec->count());

  const double attributed_us =
      static_cast<double>(tracer.totalSelfNs()) / 1e3 /
      static_cast<double>(tracer.sampledPasses());
  const double measured_us = dec->mean();
  // The root span opens right after the decision clock starts and closes
  // right before it stops, so attribution can neither exceed the measured
  // mean by much nor miss most of it.
  EXPECT_GT(attributed_us, 0.2 * measured_us);
  EXPECT_LT(attributed_us, 1.2 * measured_us);
}

}  // namespace
}  // namespace sns::sim
