#include "sns/sim/result_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/metrics.hpp"
#include "sns/util/error.hpp"

namespace sns::sim {
namespace {

SimResult runSample() {
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  profile::ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  profile::Profiler prof(est, cfg);
  profile::ProfileDatabase db;
  for (const auto& p : lib) db.put(prof.profileProgram(p, 16));
  SimConfig scfg;
  scfg.nodes = 8;
  scfg.policy = sched::PolicyKind::kSNS;
  ClusterSimulator sim(est, lib, db, scfg);
  return sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0},
                  {"NW", 16, 0.9, 0.0, 1, 0.0},
                  {"HC", 16, 0.9, 10.0, 1, 0.0}});
}

TEST(ResultIo, JsonRoundTripPreservesSchedule) {
  const auto res = runSample();
  const auto back = resultFromJson(resultToJson(res));
  EXPECT_EQ(back.policy, res.policy);
  EXPECT_DOUBLE_EQ(back.makespan, res.makespan);
  EXPECT_DOUBLE_EQ(back.busy_node_seconds, res.busy_node_seconds);
  ASSERT_EQ(back.jobs.size(), res.jobs.size());
  for (std::size_t i = 0; i < res.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].id, res.jobs[i].id);
    EXPECT_EQ(back.jobs[i].spec.program, res.jobs[i].spec.program);
    EXPECT_DOUBLE_EQ(back.jobs[i].start, res.jobs[i].start);
    EXPECT_DOUBLE_EQ(back.jobs[i].finish, res.jobs[i].finish);
    EXPECT_EQ(back.jobs[i].placement.nodes, res.jobs[i].placement.nodes);
    EXPECT_EQ(back.jobs[i].placement.ways, res.jobs[i].placement.ways);
    EXPECT_EQ(back.jobs[i].placement.exclusive, res.jobs[i].placement.exclusive);
  }
  // Derived metrics survive the round trip.
  EXPECT_DOUBLE_EQ(back.meanTurnaround(), res.meanTurnaround());
}

TEST(ResultIo, FileRoundTrip) {
  const auto res = runSample();
  const auto path = std::filesystem::temp_directory_path() / "sns_result.json";
  saveResult(path.string(), res);
  const auto back = loadResult(path.string());
  std::filesystem::remove(path);
  EXPECT_EQ(back.jobs.size(), res.jobs.size());
  EXPECT_DOUBLE_EQ(back.makespan, res.makespan);
}

TEST(ResultIo, LoadMissingFileThrows) {
  EXPECT_THROW(loadResult("/nonexistent/result.json"), util::DataError);
}

TEST(ResultIo, MalformedJsonThrows) {
  EXPECT_THROW(resultFromJson(util::Json::parse("{}")), util::DataError);
  EXPECT_THROW(
      resultFromJson(util::Json::parse(
          R"({"policy":"SNS","makespan":1,"busy_node_seconds":1,"jobs":[{}]})")),
      util::DataError);
}

}  // namespace
}  // namespace sns::sim
