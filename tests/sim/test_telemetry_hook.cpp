// End-to-end check of the SimConfig telemetry hooks: a sampler and phase
// profiler attached to ClusterSimulator record ticks on the virtual clock,
// the headline series reflect the run, and the attached SLO watchdog sees
// every tick — without changing the simulation's outcome.
#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/obs/metrics.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/telemetry/phase_profiler.hpp"
#include "sns/telemetry/sampler.hpp"

namespace sns::sim {
namespace {

class TelemetryHookTest : public ::testing::Test {
 protected:
  TelemetryHookTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
  }

  std::vector<app::JobSpec> jobs() const {
    return {{"MG", 16, 0.9, 0.0, 2, 0.0},
            {"HC", 28, 0.9, 10.0, 1, 0.0},
            {"LU", 16, 0.9, 20.0, 2, 0.0}};
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(TelemetryHookTest, SamplerTicksOnTheVirtualClock) {
  telemetry::TimeSeriesStore store(256);
  telemetry::SloWatchdog wd(telemetry::SloWatchdog::defaultRules());
  telemetry::SamplerConfig scfg;
  scfg.period_s = 5.0;
  telemetry::Sampler sampler(store, scfg);
  sampler.attachWatchdog(&wd);

  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.sampler = &sampler;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run(jobs());
  ASSERT_EQ(res.jobs.size(), 3u);

  // One tick per elapsed 5 s period across the whole makespan.
  EXPECT_GE(sampler.ticks(), static_cast<std::uint64_t>(res.makespan / 5.0));

  // The headline series were recorded and saw real activity.
  const telemetry::Series* core = store.find("cluster.core_util");
  ASSERT_NE(core, nullptr);
  EXPECT_EQ(core->sampleCount(), sampler.ticks());
  EXPECT_GT(core->maxSeen(), 0.0);
  const telemetry::Series* running = store.find("jobs.running");
  ASSERT_NE(running, nullptr);
  EXPECT_GT(running->maxSeen(), 0.0);

  // An 8-node cluster is under the per-node limit: per-node series exist.
  EXPECT_NE(store.find("node.core_occ", {{"node", "0"}}), nullptr);
  EXPECT_NE(store.find("node.core_occ", {{"node", "7"}}), nullptr);

  // The watchdog ran on every tick and the healthy testbed stays clean.
  for (const telemetry::SloStatus& st : wd.status()) {
    EXPECT_EQ(st.ticks_evaluated, sampler.ticks());
  }
  EXPECT_FALSE(wd.anyViolation());
}

TEST_F(TelemetryHookTest, TelemetryDoesNotChangeTheSchedule) {
  SimConfig plain;
  plain.nodes = 8;
  plain.policy = sched::PolicyKind::kSNS;
  ClusterSimulator base(est_, lib_, db_, plain);
  const auto base_res = base.run(jobs());

  telemetry::TimeSeriesStore store(256);
  telemetry::Sampler sampler(store);
  telemetry::PhaseProfiler phases;
  SimConfig instrumented = plain;
  instrumented.sampler = &sampler;
  instrumented.phases = &phases;
  ClusterSimulator sim(est_, lib_, db_, instrumented);
  const auto res = sim.run(jobs());

  ASSERT_EQ(res.jobs.size(), base_res.jobs.size());
  EXPECT_DOUBLE_EQ(res.makespan, base_res.makespan);
  for (std::size_t i = 0; i < res.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.jobs[i].start, base_res.jobs[i].start);
    EXPECT_DOUBLE_EQ(res.jobs[i].finish, base_res.jobs[i].finish);
  }
}

TEST_F(TelemetryHookTest, PhaseProfilerCoversTheHotPath) {
  telemetry::PhaseProfiler phases;
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.phases = &phases;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  sim.run(jobs());

  using telemetry::Phase;
  EXPECT_GT(phases.stat(Phase::kQueueWalk).calls, 0u);
  EXPECT_GT(phases.stat(Phase::kLedgerScan).calls, 0u);
  EXPECT_GT(phases.stat(Phase::kPlacementCommit).calls, 0u);
  EXPECT_GT(phases.stat(Phase::kRateRefresh).calls, 0u);
  EXPECT_GT(phases.stat(Phase::kAccounting).calls, 0u);
  // The nesting shows up in the folded stacks.
  EXPECT_NE(phases.foldedStacks().find("queue_walk;ledger_scan"),
            std::string::npos);
}

TEST_F(TelemetryHookTest, SolverCacheCountersFlowIntoTheRegistry) {
  obs::Registry reg;
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.metrics = &reg;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  sim.run(jobs());

  const obs::Counter* hits = reg.findCounter("solver.cache.hits");
  const obs::Counter* misses = reg.findCounter("solver.cache.misses");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  // Any run does at least one fresh solve; repeated co-run sets hit.
  EXPECT_GT(misses->value(), 0.0);
  EXPECT_GE(hits->value(), 0.0);
}

}  // namespace
}  // namespace sns::sim
