#include "sns/sim/cluster_sim.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/util/error.hpp"

namespace sns::sim {
namespace {

class SimTest : public ::testing::Test {
 protected:
  SimTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
  }

  SimConfig config(sched::PolicyKind k) {
    SimConfig cfg;
    cfg.nodes = 8;
    cfg.policy = k;
    return cfg;
  }

  SimResult run(sched::PolicyKind k, const std::vector<app::JobSpec>& jobs) {
    ClusterSimulator sim(est_, lib_, db_, config(k));
    return sim.run(jobs);
  }

  double ceTime(const std::string& prog, int procs) {
    const auto& p = app::findProgram(lib_, prog);
    return est_.soloCE(p, procs, est_.minNodes(procs)).time;
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(SimTest, SingleJobUnderCeMatchesSoloTime) {
  const auto res = run(sched::PolicyKind::kCE, {{"MG", 16, 0.9, 0.0, 1, 0.0}});
  ASSERT_EQ(res.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(res.jobs[0].waitTime(), 0.0);
  EXPECT_NEAR(res.jobs[0].runTime(), ceTime("MG", 16), 0.5);
  EXPECT_NEAR(res.makespan, res.jobs[0].finish, 1e-9);
}

TEST_F(SimTest, SingleJobUnderSnsRunsAtIdealScale) {
  const auto res = run(sched::PolicyKind::kSNS, {{"MG", 16, 0.9, 0.0, 1, 0.0}});
  ASSERT_EQ(res.jobs.size(), 1u);
  EXPECT_EQ(res.jobs[0].placement.nodeCount(), 8);
  // Spread solo run is faster than the CE run (Fig 13: MG gains > 25%).
  EXPECT_LT(res.jobs[0].runTime(), ceTime("MG", 16) * 0.8);
}

TEST_F(SimTest, RepeatsMultiplyWork) {
  const auto one = run(sched::PolicyKind::kCE, {{"MG", 16, 0.9, 0.0, 1, 0.0}});
  const auto five = run(sched::PolicyKind::kCE, {{"MG", 16, 0.9, 0.0, 5, 0.0}});
  EXPECT_NEAR(five.jobs[0].runTime(), 5.0 * one.jobs[0].runTime(), 1.0);
}

TEST_F(SimTest, CeSerializesWhenClusterFull) {
  // 9 single-node exclusive jobs on 8 nodes: one must wait.
  std::vector<app::JobSpec> jobs(9, {"HC", 28, 0.9, 0.0, 1, 0.0});
  const auto res = run(sched::PolicyKind::kCE, jobs);
  int waited = 0;
  for (const auto& j : res.jobs) waited += j.waitTime() > 1.0 ? 1 : 0;
  EXPECT_EQ(waited, 1);
  EXPECT_NEAR(res.makespan, 2.0 * ceTime("HC", 28), 5.0);
}

TEST_F(SimTest, AllJobsComplete) {
  util::Rng rng(11);
  const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
  for (auto k : {sched::PolicyKind::kCE, sched::PolicyKind::kCS,
                 sched::PolicyKind::kSNS}) {
    const auto res = run(k, seq);
    EXPECT_EQ(res.jobs.size(), seq.size());
    for (const auto& j : res.jobs) {
      EXPECT_TRUE(j.completed());
      EXPECT_GE(j.start, j.submit);
      EXPECT_GT(j.finish, j.start);
    }
  }
}

TEST_F(SimTest, SnsImprovesThroughputOverCe) {
  // The headline claim (§6.2): across random sequences SNS beats CE.
  util::Rng rng(123);
  double gain_sum = 0.0;
  const int seqs = 3;
  for (int i = 0; i < seqs; ++i) {
    const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
    const auto ce = run(sched::PolicyKind::kCE, seq);
    const auto sns = run(sched::PolicyKind::kSNS, seq);
    gain_sum += sns.throughput() / ce.throughput();
  }
  EXPECT_GT(gain_sum / seqs, 1.05);
}

TEST_F(SimTest, SharingCutsWaitTime) {
  // CS's win over CE "mostly comes from shorter wait time, as unlike CE it
  // does not waste idle cores" (§6.2).
  util::Rng rng(7);
  const auto seq = app::randomSequence(rng, lib_, 12, 0.9);
  const auto ce = run(sched::PolicyKind::kCE, seq);
  const auto cs = run(sched::PolicyKind::kCS, seq);
  EXPECT_LT(cs.meanWait(), ce.meanWait());
  EXPECT_GT(cs.throughput(), ce.throughput() * 0.98);
}

TEST_F(SimTest, MonitoringEpisodesCoverMakespan) {
  const auto res = run(sched::PolicyKind::kCE, {{"MG", 16, 0.9, 0.0, 3, 0.0}});
  ASSERT_EQ(res.node_bw_episodes.size(), 8u);
  const auto episodes = res.node_bw_episodes[0].size();
  EXPECT_NEAR(static_cast<double>(episodes), res.makespan / 30.0, 1.5);
  // The MG node shows heavy bandwidth; idle nodes show none.
  double max_bw = 0.0, min_bw = 1e9;
  for (const auto& node : res.node_bw_episodes) {
    for (double bw : node) {
      max_bw = std::max(max_bw, bw);
      min_bw = std::min(min_bw, bw);
    }
  }
  EXPECT_GT(max_bw, 80.0);
  EXPECT_LT(min_bw, 1.0);
}

TEST_F(SimTest, MonitoringCanBeDisabled) {
  SimConfig cfg = config(sched::PolicyKind::kCE);
  cfg.monitor_episode_s = 0.0;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0}});
  for (const auto& node : res.node_bw_episodes) EXPECT_TRUE(node.empty());
}

TEST_F(SimTest, StaggeredSubmitTimesRespected) {
  std::vector<app::JobSpec> jobs = {{"HC", 28, 0.9, 0.0, 1, 0.0},
                                    {"HC", 28, 0.9, 100.0, 1, 0.0}};
  const auto res = run(sched::PolicyKind::kCE, jobs);
  EXPECT_DOUBLE_EQ(res.jobs[0].start, 0.0);
  EXPECT_NEAR(res.jobs[1].start, 100.0, 1e-6);
}

TEST_F(SimTest, SimulatorReusableAcrossRuns) {
  ClusterSimulator sim(est_, lib_, db_, config(sched::PolicyKind::kSNS));
  const auto a = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0}});
  const auto b = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0}});
  EXPECT_DOUBLE_EQ(a.jobs[0].runTime(), b.jobs[0].runTime());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST_F(SimTest, DeterministicResults) {
  util::Rng rng(55);
  const auto seq = app::randomSequence(rng, lib_, 15, 0.9);
  const auto a = run(sched::PolicyKind::kSNS, seq);
  const auto b = run(sched::PolicyKind::kSNS, seq);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

TEST_F(SimTest, CoLocatedJobsExperienceInterference) {
  // Two bandwidth hogs under CS on the same node run slower than solo.
  std::vector<app::JobSpec> jobs = {{"BW", 16, 0.9, 0.0, 1, 0.0},
                                    {"MG", 16, 0.9, 0.0, 1, 0.0}};
  SimConfig cfg = config(sched::PolicyKind::kCS);
  cfg.nodes = 1;  // force them together
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run(jobs);
  // 16 + 16 > 28 cores: they cannot co-run on one node; skip if serialized.
  // Use 14-proc variants instead.
  std::vector<app::JobSpec> jobs14 = {{"BW", 14, 0.9, 0.0, 1, 0.0},
                                      {"MG", 14, 0.9, 0.0, 1, 0.0}};
  const auto corun = sim.run(jobs14);
  const double bw_solo = est_.soloCE(app::findProgram(lib_, "BW"), 14, 1).time;
  ASSERT_EQ(corun.jobs.size(), 2u);
  if (corun.jobs[1].start < corun.jobs[0].finish) {
    EXPECT_GT(corun.jobs[0].runTime(), bw_solo * 1.05);
  }
  (void)res;
}

TEST_F(SimTest, EmptyJobListRejected) {
  ClusterSimulator sim(est_, lib_, db_, config(sched::PolicyKind::kCE));
  EXPECT_THROW(sim.run({}), util::PreconditionError);
}

TEST_F(SimTest, UnknownProgramRejected) {
  ClusterSimulator sim(est_, lib_, db_, config(sched::PolicyKind::kCE));
  EXPECT_THROW(sim.run({{"NOPE", 16, 0.9, 0.0, 1, 0.0}}), util::DataError);
}

TEST_F(SimTest, TraceOverrideRescalesWork) {
  app::JobSpec j{"MG", 16, 0.9, 0.0, 1, 0.0};
  j.ce_time_override = 500.0;
  const auto res = run(sched::PolicyKind::kCE, {j});
  EXPECT_NEAR(res.jobs[0].runTime(), 500.0, 1.0);
}

class PolicySweep : public ::testing::TestWithParam<sched::PolicyKind> {};

TEST_P(PolicySweep, TwentyJobSequenceCompletes) {
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  profile::ProfilerConfig pcfg;
  pcfg.pmu_noise = 0.0;
  profile::Profiler prof(est, pcfg);
  profile::ProfileDatabase db;
  for (const auto& p : lib) db.put(prof.profileProgram(p, 16));

  util::Rng rng(31);
  const auto seq = app::randomSequence(rng, lib, 20, 0.9);
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = GetParam();
  ClusterSimulator sim(est, lib, db, cfg);
  const auto res = sim.run(seq);
  EXPECT_EQ(res.jobs.size(), 20u);
  EXPECT_GT(res.makespan, 0.0);
  EXPECT_GT(res.busy_node_seconds, 0.0);
  EXPECT_LE(res.busy_node_seconds, 8.0 * res.makespan + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(sched::PolicyKind::kCE,
                                           sched::PolicyKind::kCS,
                                           sched::PolicyKind::kSNS));

}  // namespace
}  // namespace sns::sim
