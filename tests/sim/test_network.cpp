// Tests of network bandwidth as a third managed resource (§3.3 extension):
// NIC accounting in the ledger, NIC contention in the ground truth, and
// the SNS policy's optional network reservations.
#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/profile/demand.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"

namespace sns::sim {
namespace {

/// A synthetic network-hungry program: half its reference time is remote
/// communication once spread.
app::ProgramModel netHog() {
  app::ProgramModel p;
  p.name = "NET";
  p.framework = app::Framework::kMpi;
  p.solo_time_ref = 200.0;
  p.cpi_core = 0.8;
  p.mem_refs_per_instr = 0.002;
  p.mlp = 4.0;
  p.miss = {0.3, 0.05, 0.1, 1.5};
  p.comm = {app::CommPattern::kAllToAll, 0.45, 0.0, 0.0};
  return p;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : lib_(app::programLibrary()) {
    lib_.push_back(netHog());
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(NetworkTest, LedgerTracksNicReservations) {
  actuator::NodeLedger nl(est_.machine());
  nl.allocate(1, {8, 0, 0.0, false, 4.0});
  EXPECT_NEAR(nl.freeNetwork(), est_.machine().net_bw_gbps - 4.0, 1e-12);
  EXPECT_FALSE(nl.fits({8, 0, 0.0, false, 3.5}));
  EXPECT_TRUE(nl.fits({8, 0, 0.0, false, 2.5}));
  nl.release(1);
  EXPECT_NEAR(nl.freeNetwork(), est_.machine().net_bw_gbps, 1e-12);
}

TEST_F(NetworkTest, ProfilerMeasuresNicDemand) {
  profile::ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  profile::Profiler prof(est_, cfg);
  // Compact runs have no remote traffic; spread runs do.
  const auto k1 = prof.profileScale(app::findProgram(lib_, "NET"), 16, 1);
  EXPECT_DOUBLE_EQ(k1.net_gbps, 0.0);
  const auto k2 = prof.profileScale(app::findProgram(lib_, "NET"), 16, 2);
  EXPECT_GT(k2.net_gbps, 0.5);
  EXPECT_LE(k2.net_gbps, est_.machine().net_bw_gbps + 1e-9);
  // Demand estimation forwards the NIC reading.
  const auto d = profile::estimateDemand(k2, 0.9, est_.machine());
  EXPECT_DOUBLE_EQ(d.net_gbps, k2.net_gbps);
}

TEST_F(NetworkTest, NicContentionStretchesCommTime) {
  // A 32-process job must span both nodes of a 2-node cluster (16 cores
  // each); a 24-process companion only fits spread 2x (12 cores each).
  // Both then push remote traffic through the same two NICs, whose total
  // demand exceeds the 6.8 GB/s links.
  SimConfig cfg;
  cfg.nodes = 2;
  cfg.policy = sched::PolicyKind::kCS;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto solo = sim.run({{"NET", 32, 0.9, 0.0, 1, 0.0}});
  ASSERT_EQ(solo.jobs[0].placement.nodeCount(), 2);

  const auto duo = sim.run(
      {{"NET", 32, 0.9, 0.0, 1, 0.0}, {"NET", 24, 0.9, 0.0, 1, 0.0}});
  ASSERT_EQ(duo.jobs[1].placement.nodeCount(), 2);
  ASSERT_LT(duo.jobs[1].start, duo.jobs[0].finish);  // genuinely co-ran
  EXPECT_GT(duo.jobs[0].runTime(), solo.jobs[0].runTime() * 1.03);
}

TEST_F(NetworkTest, ManagedNetworkAvoidsNicOversubscription) {
  // With network management on, SNS refuses to co-locate two NIC-saturating
  // jobs on the same nodes and serializes or separates them instead.
  SimConfig managed;
  managed.nodes = 4;
  managed.policy = sched::PolicyKind::kSNS;
  managed.sns.manage_network = true;
  ClusterSimulator sim(est_, lib_, db_, managed);
  const auto res = sim.run(
      {{"NET", 14, 0.9, 0.0, 1, 0.0}, {"NET", 14, 0.9, 0.0, 1, 0.0}});
  for (const auto& j : res.jobs) {
    EXPECT_TRUE(j.completed());
  }
  // Reservations must never oversubscribe a NIC: check pairwise overlap.
  const auto& a = res.jobs[0];
  const auto& b = res.jobs[1];
  const bool overlap = a.start < b.finish - 1e-9 && b.start < a.finish - 1e-9;
  if (overlap && a.placement.net_gbps + b.placement.net_gbps >
                     est_.machine().net_bw_gbps + 1e-9) {
    for (int na : a.placement.nodes) {
      for (int nb : b.placement.nodes) {
        EXPECT_NE(na, nb) << "NIC oversubscribed on node " << na;
      }
    }
  }
}

TEST_F(NetworkTest, UnmanagedPolicyReservesNoNetwork) {
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0}});
  EXPECT_DOUBLE_EQ(res.jobs[0].placement.net_gbps, 0.0);
}

TEST_F(NetworkTest, PaperWorkloadsBarelyTouchTheNic) {
  // The 12-program set is memory- not network-bound: even at 8x spread,
  // profiled NIC demand stays far below the 6.8 GB/s link.
  profile::ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  profile::Profiler prof(est_, cfg);
  for (const auto& name : app::programNames()) {
    const auto& p = app::findProgram(lib_, name);
    if (!p.multi_node) continue;
    const auto sp = prof.profileScale(p, 16, 2);
    EXPECT_LT(sp.net_gbps, 3.0) << name;
  }
}

TEST_F(NetworkTest, ScaleProfileNetJsonRoundTrip) {
  profile::ScaleProfile sp;
  sp.scale_factor = 2;
  sp.nodes = 2;
  sp.procs_per_node = 8;
  sp.exclusive_time = 100.0;
  sp.net_gbps = 3.25;
  sp.ipc_llc = util::Curve({{2.0, 0.5}, {20.0, 1.0}});
  sp.bw_llc = util::Curve({{2.0, 50.0}, {20.0, 40.0}});
  const auto back = profile::ScaleProfile::fromJson(sp.toJson());
  EXPECT_DOUBLE_EQ(back.net_gbps, 3.25);
  // Legacy files without the field default to zero.
  auto j = sp.toJson();
  j.asObject().erase("net_gbps");
  EXPECT_DOUBLE_EQ(profile::ScaleProfile::fromJson(j).net_gbps, 0.0);
}

}  // namespace
}  // namespace sns::sim
