// Tests of the piggybacked (online) profiling pipeline and the MBA
// bandwidth-enforcement option.
#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/sim/metrics.hpp"

namespace sns::sim {
namespace {

class OnlineProfilingTest : public ::testing::Test {
 protected:
  OnlineProfilingTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
  }

  SimConfig onlineConfig() {
    SimConfig cfg;
    cfg.nodes = 8;
    cfg.policy = sched::PolicyKind::kSNS;
    cfg.online_profiling = true;
    cfg.monitor.pmu_noise = 0.0;
    return cfg;
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase empty_db_;
};

TEST_F(OnlineProfilingTest, FirstRunOfUnknownProgramIsExclusiveCompact) {
  ClusterSimulator sim(est_, lib_, empty_db_, onlineConfig());
  const auto res = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0}});
  EXPECT_TRUE(res.jobs[0].placement.exclusive);
  EXPECT_EQ(res.jobs[0].placement.scale_factor, 1);
  EXPECT_EQ(res.jobs[0].placement.nodeCount(), 1);
  // The run was profiled.
  const auto* pp = sim.learnedProfiles().find("MG", 16);
  ASSERT_NE(pp, nullptr);
  EXPECT_NE(pp->at(1), nullptr);
}

TEST_F(OnlineProfilingTest, RepeatedSubmissionsExploreScales) {
  ClusterSimulator sim(est_, lib_, empty_db_, onlineConfig());
  // Five sequential submissions of MG (spaced so each sees the learned
  // profile of the previous): scales 1, 2, 4, 8 get trialled, then the
  // program schedules normally at its ideal scale.
  std::vector<app::JobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back({"MG", 16, 0.9, 5000.0 * i, 1, 0.0});
  }
  const auto res = sim.run(jobs);
  EXPECT_EQ(res.jobs[0].placement.scale_factor, 1);
  EXPECT_EQ(res.jobs[1].placement.scale_factor, 2);
  EXPECT_EQ(res.jobs[2].placement.scale_factor, 4);
  EXPECT_EQ(res.jobs[3].placement.scale_factor, 8);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(res.jobs[static_cast<std::size_t>(i)].placement.exclusive);
  // Fifth run: exploration done, shared placement at the ideal scale.
  EXPECT_FALSE(res.jobs[4].placement.exclusive);
  const auto* pp = sim.learnedProfiles().find("MG", 16);
  ASSERT_NE(pp, nullptr);
  EXPECT_EQ(pp->scales.size(), 4u);
  EXPECT_EQ(pp->cls, profile::ScalingClass::kScaling);
  EXPECT_EQ(res.jobs[4].placement.scale_factor, pp->ideal_scale);
}

TEST_F(OnlineProfilingTest, CompactProgramStopsExploringAfterDegradation) {
  ClusterSimulator sim(est_, lib_, empty_db_, onlineConfig());
  std::vector<app::JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({"BFS", 16, 0.9, 5000.0 * i, 1, 0.0});
  }
  const auto res = sim.run(jobs);
  EXPECT_EQ(res.jobs[0].placement.scale_factor, 1);
  EXPECT_EQ(res.jobs[1].placement.scale_factor, 2);  // the degrading trial
  // Exploration stops; later runs are compact and shared.
  EXPECT_EQ(res.jobs[2].placement.scale_factor, 1);
  EXPECT_FALSE(res.jobs[2].placement.exclusive);
  const auto* pp = sim.learnedProfiles().find("BFS", 16);
  ASSERT_NE(pp, nullptr);
  EXPECT_EQ(pp->cls, profile::ScalingClass::kCompact);
}

TEST_F(OnlineProfilingTest, SeedDatabaseSkipsExploration) {
  profile::ProfilerConfig pcfg;
  pcfg.pmu_noise = 0.0;
  profile::Profiler prof(est_, pcfg);
  profile::ProfileDatabase db;
  db.put(prof.profileProgram(app::findProgram(lib_, "MG"), 16));
  ClusterSimulator sim(est_, lib_, db, onlineConfig());
  const auto res = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0}});
  EXPECT_FALSE(res.jobs[0].placement.exclusive);
  EXPECT_EQ(res.jobs[0].placement.scale_factor, 8);
}

TEST_F(OnlineProfilingTest, LearnedProfilesMatchOfflineProfiler) {
  ClusterSimulator sim(est_, lib_, empty_db_, onlineConfig());
  std::vector<app::JobSpec> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back({"LU", 16, 0.9, 6000.0 * i, 1, 0.0});
  sim.run(jobs);

  profile::ProfilerConfig pcfg;
  pcfg.pmu_noise = 0.0;
  profile::Profiler offline(est_, pcfg);
  const auto reference = offline.profileProgram(app::findProgram(lib_, "LU"), 16);
  const auto* learned = sim.learnedProfiles().find("LU", 16);
  ASSERT_NE(learned, nullptr);
  EXPECT_EQ(learned->cls, reference.cls);
  EXPECT_EQ(learned->ideal_scale, reference.ideal_scale);
  ASSERT_EQ(learned->scales.size(), reference.scales.size());
  for (std::size_t i = 0; i < learned->scales.size(); ++i) {
    EXPECT_NEAR(learned->scales[i].exclusive_time,
                reference.scales[i].exclusive_time, 1e-6);
  }
}

class MbaTest : public ::testing::Test {
 protected:
  MbaTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig pcfg;
    pcfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, pcfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
  }

  SimResult run(bool mba, const std::vector<app::JobSpec>& jobs) {
    SimConfig cfg;
    cfg.nodes = 8;
    cfg.policy = sched::PolicyKind::kSNS;
    cfg.enforce_bandwidth_caps = mba;
    ClusterSimulator sim(est_, lib_, db_, cfg);
    return sim.run(jobs);
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(MbaTest, SolverHonorsBandwidthCap) {
  const auto& mg = app::findProgram(lib_, "MG");
  perfmodel::NodeShare uncapped{&mg, 16, 20.0, 0.0, 1.0, 0.0};
  perfmodel::NodeShare capped{&mg, 16, 20.0, 0.0, 1.0, 40.0};
  const auto a =
      est_.solver().solve(std::span<const perfmodel::NodeShare>(&uncapped, 1)).front();
  const auto b =
      est_.solver().solve(std::span<const perfmodel::NodeShare>(&capped, 1)).front();
  EXPECT_GT(a.bw_gbps, 100.0);
  EXPECT_LE(b.bw_gbps, 40.0 + 1e-9);
  EXPECT_LT(b.rate_per_proc, a.rate_per_proc);
}

TEST_F(MbaTest, CapProtectsCoRunnerFromOverdraw) {
  const auto& mg = app::findProgram(lib_, "MG");
  const auto& cg = app::findProgram(lib_, "CG");
  // MG reserved 60 but would demand ~130; CG reserved 45. Without MBA, MG
  // overdraws and squeezes CG; with MBA both stay within reservations.
  std::vector<perfmodel::NodeShare> no_mba = {{&mg, 14, 4.0, 0.0, 1.0, 0.0},
                                              {&cg, 14, 16.0, 0.0, 1.0, 0.0}};
  std::vector<perfmodel::NodeShare> mba = {{&mg, 14, 4.0, 0.0, 1.0, 60.0},
                                           {&cg, 14, 16.0, 0.0, 1.0, 45.0}};
  const auto free_run = est_.solver().solve(no_mba);
  const auto capped_run = est_.solver().solve(mba);
  EXPECT_GT(capped_run[1].rate_per_proc, free_run[1].rate_per_proc);
  EXPECT_LE(capped_run[0].bw_gbps, 60.0 + 1e-9);
}

TEST_F(MbaTest, MbaReducesThresholdViolations) {
  util::Rng rng(2025);
  int v_off = 0, v_on = 0;
  for (int s = 0; s < 6; ++s) {
    const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
    SimConfig ce_cfg;
    ce_cfg.nodes = 8;
    ce_cfg.policy = sched::PolicyKind::kCE;
    ClusterSimulator ce_sim(est_, lib_, db_, ce_cfg);
    const auto ce = ce_sim.run(seq);
    v_off += thresholdViolations(run(false, seq), ce, 0.9);
    v_on += thresholdViolations(run(true, seq), ce, 0.9);
  }
  EXPECT_LE(v_on, v_off);
}

TEST_F(MbaTest, ExclusiveJobsNeverCapped) {
  // CE placements carry no reservation; with MBA on they run full speed.
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kCE;
  cfg.enforce_bandwidth_caps = true;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0}});
  EXPECT_NEAR(res.jobs[0].runTime(),
              est_.soloCE(app::findProgram(lib_, "MG"), 16, 1).time, 0.5);
}

}  // namespace
}  // namespace sns::sim
