// Property-based fuzzing of the whole scheduling pipeline: random job
// sequences under every policy and feature combination must produce
// schedules satisfying global invariants.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/sim/metrics.hpp"

namespace sns::sim {
namespace {

struct Fixture {
  Fixture() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.02;
    profile::Profiler prof(est, cfg, 99);
    for (const auto& p : lib) {
      db.put(prof.profileProgram(p, 16));
      if (!p.pow2_procs && p.multi_node) db.put(prof.profileProgram(p, 28));
    }
  }
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib;
  profile::ProfileDatabase db;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void checkInvariants(const SimResult& res, int nodes,
                     const std::vector<app::JobSpec>& seq) {
  ASSERT_EQ(res.jobs.size(), seq.size());
  for (const auto& j : res.jobs) {
    EXPECT_TRUE(j.completed());
    EXPECT_GE(j.start, j.submit - 1e-9);
    EXPECT_GT(j.finish, j.start);
    EXPECT_GE(j.placement.nodeCount(), 1);
    EXPECT_LE(j.placement.nodeCount(), nodes);
    EXPECT_GE(j.placement.procs_per_node * j.placement.nodeCount(), j.spec.procs);
  }
  EXPECT_LE(res.busy_node_seconds, nodes * res.makespan + 1e-6);

  // Resource conservation at every job-start instant: cores and ways on
  // any node never exceed the hardware.
  for (const auto& probe : res.jobs) {
    const double t = probe.start + 1e-9;
    std::map<int, int> cores, ways;
    for (const auto& j : res.jobs) {
      if (j.start <= t && t < j.finish) {
        for (int nd : j.placement.nodes) {
          cores[nd] += j.placement.procs_per_node;
          ways[nd] += j.placement.ways;
        }
      }
    }
    for (const auto& [nd, c] : cores) EXPECT_LE(c, 28) << "node " << nd;
    for (const auto& [nd, w] : ways) EXPECT_LE(w, 20) << "node " << nd;
  }
}

class PipelineFuzz
    : public ::testing::TestWithParam<std::tuple<sched::PolicyKind, std::uint64_t>> {
};

TEST_P(PipelineFuzz, RandomSequencesKeepInvariants) {
  auto& f = fixture();
  const auto [policy, seed] = GetParam();
  util::Rng rng(seed);
  const auto seq = app::randomSequence(rng, f.lib, 18, 0.9);

  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = policy;
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const auto res = sim.run(seq);
  checkInvariants(res, 8, seq);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySeed, PipelineFuzz,
    ::testing::Combine(::testing::Values(sched::PolicyKind::kCE,
                                         sched::PolicyKind::kCS,
                                         sched::PolicyKind::kSNS),
                       ::testing::Values(101ULL, 202ULL, 303ULL, 404ULL)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class FeatureFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FeatureFuzz, FeatureCombinationsKeepInvariants) {
  auto& f = fixture();
  const int combo = GetParam();
  util::Rng rng(5000ULL + static_cast<std::uint64_t>(combo));
  const auto seq = app::randomSequence(rng, f.lib, 15, 0.9);

  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.donate_unused_ways = (combo & 1) != 0;
  cfg.enforce_bandwidth_caps = (combo & 2) != 0;
  cfg.online_profiling = (combo & 4) != 0;
  cfg.sns.manage_network = (combo & 8) != 0;
  // Online-profiling combos start from an empty database and learn.
  profile::ProfileDatabase empty;
  const profile::ProfileDatabase& db = cfg.online_profiling ? empty : f.db;
  ClusterSimulator sim(f.est, f.lib, db, cfg);
  const auto res = sim.run(seq);
  checkInvariants(res, 8, seq);
}

INSTANTIATE_TEST_SUITE_P(Combos, FeatureFuzz, ::testing::Range(0, 16));

class ClusterSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClusterSizeSweep, SmallAndLargeClustersWork) {
  auto& f = fixture();
  const int nodes = GetParam();
  util::Rng rng(777);
  const auto seq = app::randomSequence(rng, f.lib, 10, 0.9);
  SimConfig cfg;
  cfg.nodes = nodes;
  cfg.policy = sched::PolicyKind::kSNS;
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const auto res = sim.run(seq);
  checkInvariants(res, nodes, seq);
}

INSTANTIATE_TEST_SUITE_P(Nodes, ClusterSizeSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 64));

}  // namespace
}  // namespace sns::sim
