#include "sns/sim/gantt.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/util/error.hpp"

namespace sns::sim {
namespace {

SimResult twoJobResult() {
  SimResult r;
  JobRecord a;
  a.id = 0;
  a.spec.program = "MG";
  a.submit = 0.0;
  a.start = 0.0;
  a.finish = 50.0;
  a.placement.nodes = {0, 1};
  a.placement.procs_per_node = 8;
  JobRecord b;
  b.id = 1;
  b.spec.program = "HC";
  b.submit = 0.0;
  b.start = 50.0;
  b.finish = 100.0;
  b.placement.nodes = {1};
  b.placement.procs_per_node = 16;
  r.jobs = {a, b};
  r.makespan = 100.0;
  return r;
}

TEST(Gantt, RendersRowsPerNodeWithLegend) {
  const auto out = renderGantt(twoJobResult(), 2, 20);
  EXPECT_NE(out.find("N0 "), std::string::npos);
  EXPECT_NE(out.find("N1 "), std::string::npos);
  EXPECT_NE(out.find("legend: A=MG B=HC"), std::string::npos);
}

TEST(Gantt, CellsShowOccupancyOverTime) {
  const auto out = renderGantt(twoJobResult(), 2, 20);
  // Node 0: A for the first half, idle after. Node 1: A then B.
  const auto n0 = out.substr(out.find("N0 ") + 4, 20);
  const auto n1 = out.substr(out.find("N1 ") + 4, 20);
  EXPECT_EQ(n0.substr(0, 9).find_first_not_of('A'), std::string::npos);
  EXPECT_EQ(n0.substr(11).find_first_not_of('.'), std::string::npos);
  EXPECT_EQ(n1.substr(0, 9).find_first_not_of('A'), std::string::npos);
  EXPECT_EQ(n1.substr(11).find_first_not_of('B'), std::string::npos);
}

TEST(Gantt, SharedNodeShowsDominantJob) {
  SimResult r = twoJobResult();
  r.jobs[1].start = 0.0;   // B co-runs with A on node 1, with more cores
  r.jobs[1].finish = 50.0;
  r.makespan = 50.0;
  const auto out = renderGantt(r, 2, 10);
  const auto n1 = out.substr(out.find("N1 ") + 4, 10);
  EXPECT_EQ(n1.find_first_not_of('B'), std::string::npos);  // 16 > 8 cores
}

TEST(Gantt, ValidatesArguments) {
  const auto r = twoJobResult();
  EXPECT_THROW(renderGantt(r, 0, 20), util::PreconditionError);
  EXPECT_THROW(renderGantt(r, 2, 4), util::PreconditionError);
  SimResult empty;
  EXPECT_THROW(renderGantt(empty, 2, 20), util::PreconditionError);
}

TEST(Gantt, EndToEndWithSimulator) {
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  profile::ProfilerConfig cfg;
  cfg.pmu_noise = 0.0;
  profile::Profiler prof(est, cfg);
  profile::ProfileDatabase db;
  for (const auto& p : lib) db.put(prof.profileProgram(p, 16));
  SimConfig scfg;
  scfg.nodes = 4;
  scfg.policy = sched::PolicyKind::kSNS;
  ClusterSimulator sim(est, lib, db, scfg);
  const auto res = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0},
                            {"HC", 16, 0.9, 0.0, 1, 0.0}});
  const auto out = renderGantt(res, 4, 40);
  // Four node rows plus legend naming both programs.
  EXPECT_NE(out.find("N3 "), std::string::npos);
  EXPECT_NE(out.find("=MG"), std::string::npos);
  EXPECT_NE(out.find("=HC"), std::string::npos);
}

}  // namespace
}  // namespace sns::sim
