#include "sns/sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sns/util/error.hpp"

namespace sns::sim {
namespace {

JobRecord makeRecord(sched::JobId id, double submit, double start, double finish) {
  JobRecord r;
  r.id = id;
  r.submit = submit;
  r.start = start;
  r.finish = finish;
  return r;
}

SimResult makeResult(std::vector<JobRecord> jobs) {
  SimResult r;
  r.jobs = std::move(jobs);
  return r;
}

TEST(Metrics, JobRecordDerivedTimes) {
  const auto r = makeRecord(1, 10.0, 15.0, 40.0);
  EXPECT_DOUBLE_EQ(r.waitTime(), 5.0);
  EXPECT_DOUBLE_EQ(r.runTime(), 25.0);
  EXPECT_DOUBLE_EQ(r.turnaround(), 30.0);
  EXPECT_TRUE(r.completed());
  EXPECT_FALSE(JobRecord{}.completed());
}

TEST(Metrics, MeansAndThroughput) {
  const auto res = makeResult({makeRecord(0, 0.0, 0.0, 10.0),
                               makeRecord(1, 0.0, 5.0, 25.0)});
  EXPECT_DOUBLE_EQ(res.meanTurnaround(), 17.5);
  EXPECT_DOUBLE_EQ(res.meanWait(), 2.5);
  EXPECT_DOUBLE_EQ(res.meanRun(), 15.0);
  EXPECT_DOUBLE_EQ(res.throughput(), 1.0 / 17.5);
}

TEST(Metrics, EmptyResultYieldsZeroMeans) {
  const SimResult res;
  EXPECT_DOUBLE_EQ(res.meanTurnaround(), 0.0);
  EXPECT_DOUBLE_EQ(res.meanWait(), 0.0);
  EXPECT_DOUBLE_EQ(res.meanRun(), 0.0);
  EXPECT_DOUBLE_EQ(res.throughput(), 0.0);
}

TEST(Metrics, UncompletedJobsAreExcludedFromMeans) {
  // One finished job plus one still waiting: means cover the finished one,
  // and an all-unfinished result degrades to zero instead of NaN.
  const auto pending = makeRecord(1, 0.0, -1.0, -1.0);
  const auto mixed = makeResult({makeRecord(0, 0.0, 2.0, 12.0), pending});
  EXPECT_DOUBLE_EQ(mixed.meanTurnaround(), 12.0);
  EXPECT_DOUBLE_EQ(mixed.meanWait(), 2.0);
  EXPECT_DOUBLE_EQ(mixed.meanRun(), 10.0);

  const auto none = makeResult({pending});
  EXPECT_DOUBLE_EQ(none.meanTurnaround(), 0.0);
  EXPECT_DOUBLE_EQ(none.throughput(), 0.0);
}

TEST(Metrics, RunTimeRatios) {
  const auto base = makeResult({makeRecord(0, 0.0, 0.0, 100.0),
                                makeRecord(1, 0.0, 0.0, 200.0)});
  const auto test = makeResult({makeRecord(0, 0.0, 0.0, 90.0),
                                makeRecord(1, 0.0, 0.0, 240.0)});
  const auto ratios = runTimeRatios(test, base);
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_DOUBLE_EQ(ratios[0], 0.9);
  EXPECT_DOUBLE_EQ(ratios[1], 1.2);
  EXPECT_NEAR(geomeanRunTimeRatio(test, base), std::sqrt(0.9 * 1.2), 1e-12);
}

TEST(Metrics, RatiosRequireMatchingSequences) {
  const auto a = makeResult({makeRecord(0, 0.0, 0.0, 1.0)});
  const auto b = makeResult({makeRecord(0, 0.0, 0.0, 1.0),
                             makeRecord(1, 0.0, 0.0, 1.0)});
  EXPECT_THROW(runTimeRatios(a, b), util::PreconditionError);
  const auto c = makeResult({makeRecord(7, 0.0, 0.0, 1.0)});
  EXPECT_THROW(runTimeRatios(a, c), util::PreconditionError);
}

TEST(Metrics, ThresholdViolations) {
  const auto base = makeResult({makeRecord(0, 0.0, 0.0, 100.0),
                                makeRecord(1, 0.0, 0.0, 100.0),
                                makeRecord(2, 0.0, 0.0, 100.0)});
  const auto test = makeResult({makeRecord(0, 0.0, 0.0, 105.0),
                                makeRecord(1, 0.0, 0.0, 112.0),
                                makeRecord(2, 0.0, 0.0, 150.0)});
  // alpha = 0.9 allows up to 1/0.9 = 1.111x.
  EXPECT_EQ(thresholdViolations(test, base, 0.9), 2);
  EXPECT_EQ(thresholdViolations(test, base, 0.5), 0);
  EXPECT_THROW(thresholdViolations(test, base, 0.0), util::PreconditionError);
}

TEST(Metrics, BandwidthVariance) {
  SimResult r;
  r.node_bw_episodes = {{0.0, 100.0}, {0.0, 100.0}};
  // stddev of {0,100,0,100} = 50, peak 118.26 -> ~0.4228 (the paper reports
  // 0.40 for CE vs 0.25 for SNS).
  EXPECT_NEAR(bandwidthVariance(r, 118.26), 50.0 / 118.26, 1e-9);
  EXPECT_THROW(bandwidthVariance(r, 0.0), util::PreconditionError);
  SimResult empty;
  empty.node_bw_episodes = {{}};
  EXPECT_THROW(bandwidthVariance(empty, 118.26), util::PreconditionError);
}

}  // namespace
}  // namespace sns::sim
