// Sim-level behavior of the O(log n) event engine (DESIGN.md section 11):
// completion ordering under finish-time ties, calendar re-keying when a
// rate boundary moves a running job's projection, and the futile-pass gate
// (empty queue / memoized-failure replay) — checked through observable
// surfaces only: the event stream, the metrics registry, the audit hooks,
// and the SimResult. The bit-identity of every engine flag against its
// legacy arm lives in test_sim_equivalence.cpp; these tests pin down the
// engine-specific semantics that identity alone does not express.
#include <gtest/gtest.h>

#include <vector>

#include "sns/app/library.hpp"
#include "sns/audit/audit.hpp"
#include "sns/obs/sink.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"

namespace sns::sim {
namespace {

struct Fixture {
  Fixture() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est, cfg, 11);
    for (const auto& p : lib) db.put(prof.profileProgram(p, 16));
  }
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib;
  profile::ProfileDatabase db;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

SimConfig baseConfig() {
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kCE;  // exclusive: rates never interact
  cfg.monitor_episode_s = 0.0;
  return cfg;
}

/// Identical trace-override jobs submitted together: every one the
/// simulator can start at t=0 finishes at exactly the same instant.
std::vector<app::JobSpec> simultaneousBatch(int n, double run_s) {
  std::vector<app::JobSpec> seq;
  for (int i = 0; i < n; ++i) {
    app::JobSpec j;
    j.program = "EP";
    j.procs = 16;
    j.alpha = 0.9;
    j.submit_time = 0.0;
    j.ce_time_override = run_s;
    seq.push_back(j);
  }
  return seq;
}

TEST(EventEngine, SimultaneousFinishesEmitInAscendingIdOrder) {
  auto& f = fixture();
  SimConfig cfg = baseConfig();
  obs::RingBufferLog log;
  cfg.sink = &log;

  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const SimResult res = sim.run(simultaneousBatch(6, 500.0));

  // All six fit the 8-node cluster at once, so all six finish together —
  // a six-way tie the calendar must pop in ascending JobId order (the
  // legacy done-sweep's order; DESIGN.md section 11 tie rule).
  std::vector<std::int64_t> finish_order;
  double finish_time = -1.0;
  for (const obs::Event& e : log.snapshot()) {
    if (e.type != obs::EventType::kJobFinished) continue;
    finish_order.push_back(e.job);
    if (finish_time < 0.0) {
      finish_time = e.time;
    } else {
      EXPECT_EQ(e.time, finish_time) << "expected a simultaneous batch";
    }
  }
  EXPECT_EQ(finish_order, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
  ASSERT_EQ(res.jobs.size(), 6u);
  for (const JobRecord& j : res.jobs) EXPECT_EQ(j.finish, finish_time);
}

TEST(EventEngine, StaggeredTiesStillPopById) {
  auto& f = fixture();
  // Job 0 submits first but runs long; jobs 1 and 2 submit later and are
  // tuned to land on job 0's exact finish instant. Power-of-two times keep
  // the tie exact through the rate reciprocal (1/500 would round and break
  // it by ULPs); the calendar sees three staggered inserts converging on
  // one key and must still pop 0, 1, 2.
  std::vector<app::JobSpec> seq;
  const double spec[][2] = {{0.0, 1024.0}, {512.0, 512.0}, {768.0, 256.0}};
  for (const auto& s : spec) {
    app::JobSpec j;
    j.program = "EP";
    j.procs = 16;
    j.alpha = 0.9;
    j.submit_time = s[0];
    j.ce_time_override = s[1];
    seq.push_back(j);
  }
  SimConfig cfg = baseConfig();
  obs::RingBufferLog log;
  cfg.sink = &log;
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  sim.run(seq);

  std::vector<std::int64_t> finish_order;
  for (const obs::Event& e : log.snapshot()) {
    if (e.type == obs::EventType::kJobFinished) finish_order.push_back(e.job);
  }
  EXPECT_EQ(finish_order, (std::vector<std::int64_t>{0, 1, 2}));
}

#if SNS_AUDIT_ENABLED
TEST(EventEngine, CalendarStaysBitExactAcrossRateBoundaries) {
  // SNS shares nodes, so every start and finish moves co-residents' rates
  // — each one a settle-and-re-key of every affected calendar entry. The
  // per-pass audit recomputes the full expected (id, projection) set and
  // demands bit-exact calendar keys, so a single missed or drifted re-key
  // fails the run.
  auto& f = fixture();
  SimConfig cfg = baseConfig();
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.monitor_episode_s = 30.0;
  audit::Auditor auditor;
  cfg.auditor = &auditor;

  std::vector<app::JobSpec> seq;
  const char* progs[] = {"MG", "LU", "EP", "CG"};
  for (int i = 0; i < 12; ++i) {
    app::JobSpec j;
    j.program = progs[i % 4];
    j.procs = 16;
    j.alpha = 0.9;
    j.submit_time = 150.0 * i;  // arrivals land while others run
    seq.push_back(j);
  }
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const SimResult res = sim.run(seq);

  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_GT(auditor.passesRun(), 0u);
  ASSERT_EQ(res.jobs.size(), 12u);
  for (const JobRecord& j : res.jobs) EXPECT_GT(j.finish, j.start);
}
#endif  // SNS_AUDIT_ENABLED

TEST(EventEngine, EmptyQueueEventsSkipSchedulingEntirely) {
  auto& f = fixture();
  // Six simultaneous jobs all start at t=0; their six finish events then
  // drain with the queue empty. Every one of those scheduling points is
  // provably futile and must be skipped, not walked.
  SimConfig cfg = baseConfig();
  obs::Registry reg;
  cfg.metrics = &reg;
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  sim.run(simultaneousBatch(6, 500.0));

  const double skips = reg.counter("sim.futile_pass_skips").value();
  const double passes = reg.counter("sim.schedule_passes").value();
  EXPECT_GT(skips, 0.0);
  // Skipped points never count as passes: the admission points (and any
  // pass that could place) still run, so both counters move.
  EXPECT_GT(passes, 0.0);

  // Gate off: the same trace walks every point and skips none.
  SimConfig off = cfg;
  obs::Registry reg_off;
  off.metrics = &reg_off;
  off.opt.futile_pass_gate = false;
  ClusterSimulator sim_off(f.est, f.lib, f.db, off);
  sim_off.run(simultaneousBatch(6, 500.0));
  EXPECT_EQ(reg_off.counter("sim.futile_pass_skips").value(), 0.0);
  EXPECT_EQ(reg_off.counter("sim.schedule_passes").value(), passes + skips);
}

TEST(EventEngine, MemoizedFailureReplayIsGated) {
  auto& f = fixture();
  // A two-node cluster with a deep backlog: after the first pass fails to
  // place the overflow, every later completion re-runs an identical walk
  // unless the release is big enough to unblock a memoized spec. The gate
  // may only skip a pass it can prove is a replay, so the schedule (and
  // every finish time) must match the ungated run exactly.
  std::vector<app::JobSpec> seq;
  for (int i = 0; i < 10; ++i) {
    app::JobSpec j;
    j.program = "EP";
    j.procs = 16;
    j.alpha = 0.9;
    j.submit_time = 0.0;
    j.ce_time_override = 300.0 + 50.0 * i;  // staggered finishes, one at a time
    seq.push_back(j);
  }
  SimConfig gated = baseConfig();
  gated.nodes = 2;
  obs::Registry reg;
  gated.metrics = &reg;
  ClusterSimulator sim(f.est, f.lib, f.db, gated);
  const SimResult a = sim.run(seq);

  SimConfig ungated = gated;
  ungated.metrics = nullptr;
  ungated.opt.futile_pass_gate = false;
  ClusterSimulator sim_off(f.est, f.lib, f.db, ungated);
  const SimResult b = sim_off.run(seq);

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start) << "job " << i;
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish) << "job " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace sns::sim
