#include <gtest/gtest.h>

#include <map>

#include "sns/app/library.hpp"
#include "sns/obs/metrics.hpp"
#include "sns/obs/sink.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"

namespace sns::sim {
namespace {

class SimTracingTest : public ::testing::Test {
 protected:
  SimTracingTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
  }

  std::vector<app::JobSpec> smallWorkload() const {
    return {{"MG", 16, 0.9, 0.0, 1, 0.0},
            {"NW", 16, 0.9, 0.0, 1, 0.0},
            {"EP", 16, 0.9, 0.0, 1, 0.0}};
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(SimTracingTest, EventStreamCoversEveryJobInOrder) {
  obs::RingBufferLog log;
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.sink = &log;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run(smallWorkload());

  // Per job: submitted -> started -> finished with non-decreasing times.
  std::map<std::int64_t, int> stage;
  double last_t = 0.0;
  for (const auto& e : log.snapshot()) {
    EXPECT_GE(e.time, last_t);
    last_t = e.time;
    switch (e.type) {
      case obs::EventType::kJobSubmitted:
        EXPECT_EQ(stage[e.job], 0);
        stage[e.job] = 1;
        break;
      case obs::EventType::kJobStarted:
        EXPECT_EQ(stage[e.job], 1);
        stage[e.job] = 2;
        break;
      case obs::EventType::kJobFinished:
        EXPECT_EQ(stage[e.job], 2);
        stage[e.job] = 3;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(stage.size(), res.jobs.size());
  for (const auto& [job, s] : stage) EXPECT_EQ(s, 3) << "job " << job;
}

TEST_F(SimTracingTest, LegacyHooksStillFireAlongsideSink) {
  obs::NullSink sink;
  int started = 0, finished = 0;
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.policy = sched::PolicyKind::kCS;
  cfg.sink = &sink;
  cfg.on_start = [&](const JobRecord& r) {
    ++started;
    EXPECT_GE(r.start, 0.0);
  };
  cfg.on_finish = [&](const JobRecord& r) {
    ++finished;
    EXPECT_TRUE(r.completed());
  };
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run(smallWorkload());
  EXPECT_EQ(started, static_cast<int>(res.jobs.size()));
  EXPECT_EQ(finished, static_cast<int>(res.jobs.size()));
  // The adapter feeds the hooks from the same stream the sink sees.
  EXPECT_GT(sink.count(), 0u);
}

TEST_F(SimTracingTest, RegistryCountsMatchResult) {
  obs::Registry reg;
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.metrics = &reg;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run(smallWorkload());

  const auto n = static_cast<double>(res.jobs.size());
  EXPECT_DOUBLE_EQ(reg.findCounter("sim.jobs_submitted")->value(), n);
  EXPECT_DOUBLE_EQ(reg.findCounter("sim.jobs_started")->value(), n);
  EXPECT_DOUBLE_EQ(reg.findCounter("sim.jobs_finished")->value(), n);
  EXPECT_EQ(reg.findHistogram("sim.wait_s")->count(),
            static_cast<std::uint64_t>(n));
  EXPECT_GT(reg.findCounter("sim.solver_calls")->value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.findGauge("sim.queue_depth")->value(), 0.0);
  EXPECT_GE(reg.findGauge("sim.busy_nodes")->max(), 1.0);
}

TEST_F(SimTracingTest, RerunDetachesSinkCleanly) {
  // Two runs on the same simulator, the second without metrics consumers
  // still attached from the first: no stale state, counters accumulate.
  obs::Registry reg;
  obs::RingBufferLog log;
  SimConfig cfg;
  cfg.nodes = 4;
  cfg.policy = sched::PolicyKind::kCS;
  cfg.sink = &log;
  cfg.metrics = &reg;
  ClusterSimulator sim(est_, lib_, db_, cfg);
  sim.run(smallWorkload());
  const auto first = log.totalRecorded();
  sim.run(smallWorkload());
  EXPECT_EQ(log.totalRecorded(), 2 * first);
  EXPECT_DOUBLE_EQ(reg.findCounter("sim.jobs_finished")->value(), 6.0);
}

}  // namespace
}  // namespace sns::sim
