// sns::flight must observe the simulation, never feed it: attaching the
// interference flight recorder must leave simulation results bit-for-bit
// identical to a run without it (exact double comparisons, no tolerances —
// same contract as the xray and SimOptFlags equivalence suites). The
// recorder's own output must in turn be deterministic: byte-identical
// dumps across repeated runs and across every SimConfig::opt flag setting,
// and the reconciliation invariant must hold on every run the auditor
// replays.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sns/app/library.hpp"
#include "sns/audit/audit.hpp"
#include "sns/flight/flight.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"

namespace sns::sim {
namespace {

struct Fixture {
  Fixture() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.02;
    profile::Profiler prof(est, cfg, 7);
    for (const auto& p : lib) {
      db.put(prof.profileProgram(p, 16));
      if (!p.pow2_procs && p.multi_node) db.put(prof.profileProgram(p, 28));
    }
  }
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib;
  profile::ProfileDatabase db;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void expectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.busy_node_seconds, b.busy_node_seconds);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobRecord& ja = a.jobs[i];
    const JobRecord& jb = b.jobs[i];
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.submit, jb.submit);
    EXPECT_EQ(ja.start, jb.start) << "job " << ja.id;
    EXPECT_EQ(ja.finish, jb.finish) << "job " << ja.id;
    EXPECT_EQ(ja.placement.nodes, jb.placement.nodes) << "job " << ja.id;
    EXPECT_EQ(ja.placement.procs_per_node, jb.placement.procs_per_node);
    EXPECT_EQ(ja.placement.scale_factor, jb.placement.scale_factor);
    EXPECT_EQ(ja.placement.ways, jb.placement.ways);
    EXPECT_EQ(ja.placement.bw_gbps, jb.placement.bw_gbps);
    EXPECT_EQ(ja.placement.net_gbps, jb.placement.net_gbps);
    EXPECT_EQ(ja.placement.exclusive, jb.placement.exclusive);
  }
  ASSERT_EQ(a.node_bw_episodes.size(), b.node_bw_episodes.size());
  for (std::size_t n = 0; n < a.node_bw_episodes.size(); ++n) {
    EXPECT_EQ(a.node_bw_episodes[n], b.node_bw_episodes[n]) << "node " << n;
  }
}

SimOptFlags allLegacy() {
  SimOptFlags f;
  f.indexed_ledger = false;
  f.memoize_solves = false;
  f.single_pass_schedule = false;
  f.incremental_prune = false;
  f.batched_scoring = false;
  f.parallel_select = false;
  f.simd_solver = false;
  f.lazy_progress = false;
  f.finish_calendar = false;
  f.futile_pass_gate = false;
  f.dedup_node_solves = false;
  f.slot_rates = false;
  return f;
}

SimResult runWith(const Fixture& f, SimConfig cfg,
                  const std::vector<app::JobSpec>& seq,
                  flight::FlightRecorder* fr) {
  cfg.flight = fr;
  ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  return sim.run(seq);
}

class FlightEquivalence
    : public ::testing::TestWithParam<std::tuple<sched::PolicyKind, std::uint64_t>> {
};

TEST_P(FlightEquivalence, RecorderOnOffBitIdentical) {
  auto& f = fixture();
  const auto [policy, seed] = GetParam();
  util::Rng rng(seed);
  const auto seq = app::randomSequence(rng, f.lib, 16, 0.9);

  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = policy;
  cfg.monitor_episode_s = 30.0;

  const SimResult off = runWith(f, cfg, seq, nullptr);
  flight::FlightRecorder fr;
  expectIdentical(runWith(f, cfg, seq, &fr), off);
  EXPECT_TRUE(fr.runComplete());
  EXPECT_EQ(fr.census().finished, off.jobs.size());
}

// The recorder's dump is the determinism contract for `uberun why-slow`
// and the degradation census: identical runs must produce byte-identical
// interval stores and rollups, and every SimConfig::opt flag — each of
// which reorders or batches the settle arithmetic internally — must leave
// the recorded ledgers byte-identical too.
TEST_P(FlightEquivalence, DumpByteIdenticalAcrossRunsAndOptFlags) {
  auto& f = fixture();
  const auto [policy, seed] = GetParam();
  util::Rng rng(seed + 41);
  const auto seq = app::randomSequence(rng, f.lib, 12, 0.9);

  SimConfig legacy;
  legacy.nodes = 8;
  legacy.policy = policy;
  legacy.monitor_episode_s = 0.0;
  legacy.opt = allLegacy();

  flight::FlightRecorder ref_fr;
  const SimResult ref = runWith(f, legacy, seq, &ref_fr);
  const std::string ref_dump = ref_fr.toJson().dump();

  {
    flight::FlightRecorder again;
    expectIdentical(runWith(f, legacy, seq, &again), ref);
    EXPECT_EQ(again.toJson().dump(), ref_dump) << "repeat run diverged";
  }

  for (int flag = 0; flag < 12; ++flag) {
    SimConfig one = legacy;
    one.opt.indexed_ledger = flag == 0;
    one.opt.memoize_solves = flag == 1;
    one.opt.single_pass_schedule = flag == 2;
    one.opt.incremental_prune = flag == 3;
    one.opt.batched_scoring = flag == 4;
    one.opt.parallel_select = flag == 5;
    one.opt.simd_solver = flag == 6;
    one.opt.lazy_progress = flag == 7;
    one.opt.finish_calendar = flag == 8;
    one.opt.futile_pass_gate = flag == 9;
    one.opt.dedup_node_solves = flag == 10;
    one.opt.slot_rates = flag == 11;
    if (flag == 5) one.opt.parallel_min_candidates = 1;
    SCOPED_TRACE("flag " + std::to_string(flag));
    flight::FlightRecorder fr;
    expectIdentical(runWith(f, one, seq, &fr), ref);
    EXPECT_EQ(fr.toJson().dump(), ref_dump);
  }

  // All optimizations on (the production default).
  SimConfig fast = legacy;
  fast.opt = SimOptFlags{};
  flight::FlightRecorder fr;
  expectIdentical(runWith(f, fast, seq, &fr), ref);
  EXPECT_EQ(fr.toJson().dump(), ref_dump);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FlightEquivalence,
    ::testing::Combine(::testing::Values(sched::PolicyKind::kCE,
                                         sched::PolicyKind::kCS,
                                         sched::PolicyKind::kSNS),
                       ::testing::Values(5u, 6u)));

// End-to-end reconciliation: with both the auditor and the recorder
// attached, run() itself replays the flight ledger (auditFlightLedger is
// a post-run hook, active even in SNS_AUDIT=OFF builds) — a clean run
// must produce zero violations, and every finished job's attributed
// slowdown must sum to actual - solo within the auditor's tolerance.
TEST(FlightEquivalence, AuditorReconcilesLedgerOnFullRun) {
  auto& f = fixture();
  util::Rng rng(77);
  const auto seq = app::randomSequence(rng, f.lib, 16, 0.9);

  audit::Auditor auditor;
  flight::FlightRecorder fr;
  SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.auditor = &auditor;
  const SimResult res = runWith(f, cfg, seq, &fr);
  EXPECT_TRUE(auditor.ok()) << auditor.report();

  // Cross-check against the simulator's own records: per-job coverage and
  // reconciliation, bit-exact endpoints included.
  for (const JobRecord& j : res.jobs) {
    if (!j.completed()) continue;
    const flight::JobRollup* jr = fr.find(j.id);
    ASSERT_NE(jr, nullptr);
    EXPECT_EQ(jr->start, j.start);
    EXPECT_EQ(jr->finish, j.finish);
    EXPECT_EQ(jr->first_open, j.start);
    const double scale = std::max(1.0, jr->actual);
    EXPECT_LE(std::abs(jr->closure), 1e-6 * scale) << "job " << j.id;
  }

  // A mangled ledger must be caught.
  fr.debugCorruptJob(res.jobs.front().id);
  audit::Auditor fresh;
  EXPECT_GT(fresh.auditFlightLedger(fr), 0u);
  EXPECT_FALSE(fresh.ok());
}

}  // namespace
}  // namespace sns::sim
