#include "sns/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "sns/util/error.hpp"

namespace sns::kernels {
namespace {

TEST(Barrier, SinglePartyNeverBlocks) {
  Barrier b(1);
  b.arriveAndWait();
  b.arriveAndWait();
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  TeamRuntime team(kThreads);
  std::atomic<int> phase0{0};
  std::atomic<bool> violated{false};
  team.run([&](const TeamContext& ctx) {
    phase0.fetch_add(1);
    ctx.sync();
    // After the barrier, every rank must observe all arrivals.
    if (phase0.load() != kThreads) violated.store(true);
    ctx.sync();
  });
  EXPECT_FALSE(violated.load());
}

TEST(TeamContext, ChunkPartitionsExactly) {
  Barrier b(1);
  for (int size : {1, 3, 4, 7}) {
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (int r = 0; r < size; ++r) {
      TeamContext ctx{r, size, &b};
      const auto [lo, hi] = ctx.chunk(100);
      EXPECT_EQ(lo, prev_end);
      EXPECT_GE(hi, lo);
      covered += hi - lo;
      prev_end = hi;
    }
    EXPECT_EQ(covered, 100u);
    EXPECT_EQ(prev_end, 100u);
  }
}

TEST(TeamContext, ChunkBalancedWithinOne) {
  Barrier b(1);
  for (int r = 0; r < 7; ++r) {
    TeamContext ctx{r, 7, &b};
    const auto [lo, hi] = ctx.chunk(100);
    const std::size_t len = hi - lo;
    EXPECT_TRUE(len == 14 || len == 15);
  }
}

TEST(TeamRuntime, RunsEveryRankOnce) {
  TeamRuntime team(5);
  std::atomic<int> count{0};
  std::atomic<int> rank_sum{0};
  const double secs = team.run([&](const TeamContext& ctx) {
    count.fetch_add(1);
    rank_sum.fetch_add(ctx.rank);
  });
  EXPECT_EQ(count.load(), 5);
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3 + 4);
  EXPECT_GE(secs, 0.0);
}

TEST(Stream, ValidatesAndMeasures) {
  StreamConfig cfg;
  cfg.elements = 1 << 18;
  cfg.iterations = 3;
  cfg.threads = 2;
  const auto r = runStream(cfg);
  EXPECT_TRUE(r.valid) << "checksum " << r.checksum;
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.bandwidthGbps(), 0.1);
}

TEST(Stream, SingleThreadWorks) {
  StreamConfig cfg;
  cfg.elements = 1 << 16;
  cfg.iterations = 2;
  cfg.threads = 1;
  EXPECT_TRUE(runStream(cfg).valid);
}

TEST(StencilMg, ConservesImpulseMass) {
  StencilMgConfig cfg;
  cfg.dim = 32;
  cfg.vcycles = 2;
  cfg.levels = 3;
  cfg.threads = 2;
  const auto r = runStencilMg(cfg);
  EXPECT_TRUE(r.valid) << "checksum " << r.checksum;
  EXPECT_GT(r.checksum, 0.0);
}

TEST(StencilMg, RejectsIndivisibleDims) {
  StencilMgConfig cfg;
  cfg.dim = 33;
  cfg.levels = 3;
  EXPECT_THROW(runStencilMg(cfg), util::PreconditionError);
}

TEST(StencilMg, DeterministicAcrossThreadCounts) {
  StencilMgConfig a;
  a.dim = 16;
  a.vcycles = 1;
  a.levels = 2;
  a.threads = 1;
  StencilMgConfig b = a;
  b.threads = 3;
  EXPECT_NEAR(runStencilMg(a).checksum, runStencilMg(b).checksum, 1e-9);
}

TEST(Cg, ResidualShrinks) {
  CgConfig cfg;
  cfg.grid = 64;
  cfg.iterations = 100;
  cfg.threads = 2;
  const auto r = runCg(cfg);
  EXPECT_TRUE(r.valid);
  // 100 CG iterations on a 64x64 Laplacian essentially solve the system.
  EXPECT_LT(r.checksum, 64.0 * 64.0 * 0.001);
}

TEST(Cg, DeterministicAcrossThreadCounts) {
  CgConfig a;
  a.grid = 32;
  a.iterations = 10;
  a.threads = 1;
  CgConfig b = a;
  b.threads = 4;
  EXPECT_NEAR(runCg(a).checksum, runCg(b).checksum, 1e-6);
}

TEST(Ep, GaussianTalliesValidate) {
  EpConfig cfg;
  cfg.samples = 1 << 20;
  cfg.threads = 2;
  const auto r = runEp(cfg);
  EXPECT_TRUE(r.valid);
  EXPECT_NEAR(r.checksum / static_cast<double>(cfg.samples), 0.785, 0.01);
}

TEST(Ep, WorkSplitsAcrossThreads) {
  EpConfig a;
  a.samples = 1 << 18;
  a.threads = 1;
  EpConfig b = a;
  b.threads = 4;
  // Different thread seeds, same statistics.
  EXPECT_TRUE(runEp(a).valid);
  EXPECT_TRUE(runEp(b).valid);
}

TEST(Bfs, ReachesGiantComponent) {
  BfsConfig cfg;
  cfg.scale = 12;
  cfg.edge_factor = 8;
  cfg.roots = 2;
  cfg.threads = 2;
  const auto r = runBfs(cfg);
  EXPECT_TRUE(r.valid);
  EXPECT_GT(r.checksum, 0.0);
}

TEST(Bfs, RejectsBadScale) {
  BfsConfig cfg;
  cfg.scale = 2;
  EXPECT_THROW(runBfs(cfg), util::PreconditionError);
}

TEST(SampleSort, SortsAndPreservesMultiset) {
  SampleSortConfig cfg;
  cfg.keys = 1 << 16;
  cfg.threads = 3;
  const auto r = runSampleSort(cfg);
  EXPECT_TRUE(r.valid);
}

TEST(SampleSort, SingleThreadDegenerate) {
  SampleSortConfig cfg;
  cfg.keys = 2048;
  cfg.threads = 1;
  EXPECT_TRUE(runSampleSort(cfg).valid);
}

TEST(WordCount, EveryWordCountedOnce) {
  WordCountConfig cfg;
  cfg.words = 1 << 18;
  cfg.vocabulary = 512;
  cfg.threads = 4;
  const auto r = runWordCount(cfg);
  EXPECT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.checksum, static_cast<double>(cfg.words));
}

TEST(LuSsor, ConvergesTowardPositiveSolution) {
  LuSsorConfig cfg;
  cfg.grid = 64;
  cfg.sweeps = 10;
  cfg.threads = 2;
  const auto r = runLuSsor(cfg);
  EXPECT_TRUE(r.valid);
  EXPECT_GT(r.checksum, 0.0);
}

TEST(LuSsor, MoreSweepsMoreMass) {
  LuSsorConfig few;
  few.grid = 48;
  few.sweeps = 4;
  few.threads = 1;
  LuSsorConfig many = few;
  many.sweeps = 40;
  // The SSOR iteration monotonically builds up the solution from zero.
  EXPECT_GT(runLuSsor(many).checksum, runLuSsor(few).checksum);
}

TEST(LuSsor, DeterministicAcrossThreadCounts) {
  LuSsorConfig a;
  a.grid = 32;
  a.sweeps = 6;
  a.threads = 1;
  LuSsorConfig b = a;
  b.threads = 4;
  EXPECT_NEAR(runLuSsor(a).checksum, runLuSsor(b).checksum, 1e-9);
}

TEST(LuSsor, RejectsBadConfig) {
  LuSsorConfig cfg;
  cfg.grid = 4;
  EXPECT_THROW(runLuSsor(cfg), util::PreconditionError);
}

TEST(Gemm, MatchesDirectRecomputation) {
  GemmConfig cfg;
  cfg.dim = 96;
  cfg.threads = 2;
  const auto r = runGemm(cfg);
  EXPECT_TRUE(r.valid);
  EXPECT_GT(r.checksum, 0.0);
}

TEST(Gemm, DeterministicAcrossThreadCounts) {
  GemmConfig a;
  a.dim = 64;
  a.threads = 1;
  GemmConfig b = a;
  b.threads = 3;
  EXPECT_DOUBLE_EQ(runGemm(a).checksum, runGemm(b).checksum);
}

TEST(Gemm, RejectsBadConfig) {
  GemmConfig cfg;
  cfg.dim = 8;
  EXPECT_THROW(runGemm(cfg), util::PreconditionError);
}

class KernelThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(KernelThreadSweep, AllKernelsValidate) {
  const int t = GetParam();
  StreamConfig sc;
  sc.elements = 1 << 15;
  sc.iterations = 2;
  sc.threads = t;
  EXPECT_TRUE(runStream(sc).valid);
  WordCountConfig wc;
  wc.words = 1 << 15;
  wc.threads = t;
  EXPECT_TRUE(runWordCount(wc).valid);
  SampleSortConfig ss;
  ss.keys = 1 << 14;
  ss.threads = t;
  EXPECT_TRUE(runSampleSort(ss).valid);
  EpConfig ep;
  ep.samples = 1 << 16;
  ep.threads = t;
  EXPECT_TRUE(runEp(ep).valid);
  LuSsorConfig lu;
  lu.grid = 32;
  lu.sweeps = 4;
  lu.threads = t;
  EXPECT_TRUE(runLuSsor(lu).valid);
  GemmConfig gm;
  gm.dim = 48;
  gm.threads = t;
  EXPECT_TRUE(runGemm(gm).valid);
}

INSTANTIATE_TEST_SUITE_P(Threads, KernelThreadSweep, ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace sns::kernels
