// The hot-path allocation contract (DESIGN.md "Static contracts"): after
// warm-up, the SNS decision path, the finish-calendar re-key and the
// flight recorder's settle/reopen perform ZERO heap allocations at steady
// state. The whole binary runs under the operator new/delete interposer
// (tests/support/alloc_interposer.cpp), which attributes every allocation
// to the innermost active SNS_HOT_PATH scope; each marker records the
// activation ordinal of its most recent non-exempt allocation, so "steady
// state" is checkable without mid-run hooks: that ordinal must lie in the
// warm-up prefix of the run's activations.
//
// Exempt (boundary) activations are the rate-boundary state changes that
// allocate by design — a committed placement building its Running record,
// a first-failure growing the spec memo — never the replayed work that
// dominates steady state.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "sns/app/library.hpp"
#include "sns/flight/flight.hpp"
#include "sns/obs/metrics.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/trace/generator.hpp"
#include "sns/trace/replay.hpp"
#include "sns/util/hot_path.hpp"
#include "tests/support/alloc_guard.hpp"

namespace sns {
namespace {

/// Activations in the leading warm-up window that may allocate; after it,
/// a marker with a later non-exempt allocation fails the contract. Half
/// the run is deliberately generous — the engine's caches actually warm up
/// far earlier — so the gate only trips on genuine steady-state churn
/// (per-event allocations), never on slow one-time cache growth.
constexpr double kWarmupFraction = 0.5;

struct SteadyStateRun {
  sim::SimResult result;
  std::uint64_t events = 0;
};

SteadyStateRun runQuickTrace() {
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  profile::ProfilerConfig pcfg;
  pcfg.pmu_noise = 0.0;
  profile::Profiler prof(est, pcfg, 11);
  profile::ProfileDatabase base_db;
  for (const auto& p : lib) base_db.put(prof.profileProgram(p, 16));

  // CI-sized slice of the Fig 20 synthetic trace (bench_sim_scale --quick
  // discipline, scaled to unit-test wall time): congested enough that the
  // queue stays populated, so schedule passes replay failed specs — the
  // exact steady state the contract is about.
  trace::TraceGenParams params;
  params.jobs = 400;
  params.horizon_hours = 110.0;
  params.max_nodes = 256;
  util::Rng trace_rng(0x7417177);
  const auto raw = trace::generateTrace(trace_rng, params);
  util::Rng map_rng(900);
  const auto jobs =
      trace::mapTraceToJobs(map_rng, raw, 0.9, est.machine().cores);
  const auto db = trace::synthesizeTraceProfiles(base_db, 16, jobs, est);

  obs::Registry metrics;
  flight::FlightRecorder flight;  // the contract includes settle/reopen
  sim::SimConfig cfg;
  cfg.nodes = 256;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.monitor_episode_s = 0.0;
  cfg.age_limit_s = 14.0 * 86400.0;
  cfg.max_queue_scan = 256;
  cfg.metrics = &metrics;
  cfg.flight = &flight;
  // cfg.opt defaults: the full PR-8 engine (calendar, lazy progress,
  // futile gate, batched scoring, memo, slot rates) — the configuration
  // the contract gates.
  sim::ClusterSimulator sim(est, lib, db, cfg);

  util::hotpath::resetCounters();
  SteadyStateRun out;
  out.result = sim.run(jobs);
  const obs::Counter* ev = metrics.findCounter("sim.schedule_passes");
  out.events = ev != nullptr ? static_cast<std::uint64_t>(ev->value()) : 0;
  return out;
}

const SteadyStateRun& steadyStateRun() {
  static SteadyStateRun run = runQuickTrace();
  return run;
}

struct MarkerStats {
  std::uint64_t entries = 0;
  std::uint64_t allocs = 0;
  std::uint64_t exempt = 0;
  std::uint64_t last_alloc_entry = 0;
};

MarkerStats statsOf(const char* name) {
  util::hotpath::Marker* m = util::hotpath::findMarker(name);
  if (m == nullptr) return {};
  MarkerStats s;
  s.entries = m->entries.load();
  s.allocs = m->allocs.load();
  s.exempt = m->exempt_allocs.load();
  s.last_alloc_entry = m->last_alloc_entry.load();
  return s;
}

void expectSteadyStateSilent(const char* name) {
  const MarkerStats s = statsOf(name);
  ASSERT_GT(s.entries, 0u) << name << ": marker never activated — the "
                           << "trace no longer exercises this path";
  const auto warmup = static_cast<std::uint64_t>(
      static_cast<double>(s.entries) * kWarmupFraction);
  EXPECT_LE(s.last_alloc_entry, warmup)
      << name << ": allocated on activation " << s.last_alloc_entry
      << " of " << s.entries << " (" << s.allocs
      << " non-exempt allocations total) — the steady-state heap-silence "
      << "contract is broken; either a per-event allocation crept in or a "
      << "scratch structure lost its warm capacity";
  std::printf("  %-22s entries=%-9" PRIu64 " allocs=%-7" PRIu64
              " exempt=%-7" PRIu64 " last_alloc@%" PRIu64 "\n",
              name, s.entries, s.allocs, s.exempt, s.last_alloc_entry);
}

TEST(AllocContract, InterposerActive) {
  ASSERT_TRUE(testing::AllocGuard::interposerLinked())
      << "sns_alloc_tests must link tests/support/alloc_interposer.cpp";
}

TEST(AllocContract, QuickTraceCompletes) {
  const SteadyStateRun& run = steadyStateRun();
  EXPECT_EQ(run.result.jobs.size(), 400u);
  EXPECT_GT(run.events, 500u) << "trace too small to have a steady state";
}

TEST(AllocContract, DecisionPathHeapSilentAtSteadyState) {
  (void)steadyStateRun();
  expectSteadyStateSilent("sched.decision");
  expectSteadyStateSilent("sched.pass");
}

TEST(AllocContract, CalendarRekeyNeverAllocates) {
  (void)steadyStateRun();
  const MarkerStats s = statsOf("engine.calendar_rekey");
  ASSERT_GT(s.entries, 0u) << "finish-calendar re-key never ran";
  // Strict zero, not just steady-state: update() is two sifts over
  // preallocated arrays, with no warm-up phase to excuse.
  EXPECT_EQ(s.allocs, 0u);
  EXPECT_EQ(s.exempt, 0u);
}

TEST(AllocContract, FlightSettleReopenHeapSilentAtSteadyState) {
  (void)steadyStateRun();
  expectSteadyStateSilent("flight.settle");
  expectSteadyStateSilent("flight.reopen");
}

TEST(AllocContract, RateRefreshHeapSilentAtSteadyState) {
  (void)steadyStateRun();
  // Refreshes that miss the solver cache (a never-seen co-run signature
  // entering the memo) declare themselves boundary activations — memo
  // warm-up happens at event rate for the whole run, it is not a leak.
  // Every replayed-signature refresh must be heap-silent.
  expectSteadyStateSilent("engine.refresh");
}

}  // namespace
}  // namespace sns
