// AllocGuard + hot-path marker self-tests. This binary links the global
// operator new/delete interposer (tests/support/alloc_interposer.cpp);
// the mirror-image "interposer absent" checks live in sns_tests
// (tests/util/test_alloc_guard_off.cpp), which does not link it.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "sns/util/hot_path.hpp"
#include "tests/support/alloc_guard.hpp"

namespace sns::testing {
namespace {

TEST(AllocGuard, InterposerIsLinkedIntoThisBinary) {
  EXPECT_TRUE(AllocGuard::interposerLinked());
}

TEST(AllocGuard, CountsAllocationsBytesAndFrees) {
  AllocGuard g;
  auto p = std::make_unique<std::byte[]>(1024);
  EXPECT_GE(g.allocations(), 1u);
  EXPECT_GE(g.bytes(), 1024u);
  const std::uint64_t frees_before = g.frees();
  p.reset();
  EXPECT_EQ(g.frees(), frees_before + 1);
}

TEST(AllocGuard, ZeroForAllocationFreeCode) {
  // Warm a vector, then operate strictly within capacity.
  std::vector<int> v;
  v.reserve(64);
  AllocGuard g;
  for (int i = 0; i < 64; ++i) v.push_back(i);
  v.clear();
  EXPECT_EQ(g.allocations(), 0u);
  EXPECT_EQ(g.bytes(), 0u);
}

TEST(AllocGuard, ScopedResetRestartsTheWindow) {
  AllocGuard g;
  auto p = std::make_unique<int>(7);
  EXPECT_GE(g.allocations(), 1u);
  g.reset();
  EXPECT_EQ(g.allocations(), 0u);
  EXPECT_EQ(g.bytes(), 0u);
  auto q = std::make_unique<int>(8);
  EXPECT_GE(g.allocations(), 1u);
}

TEST(AllocGuard, GuardsNestIndependently) {
  AllocGuard outer;
  auto a = std::make_unique<int>(1);
  const std::uint64_t outer_after_first = outer.allocations();
  AllocGuard inner;
  auto b = std::make_unique<int>(2);
  EXPECT_GE(inner.allocations(), 1u);
  EXPECT_GE(outer.allocations(), outer_after_first + 1);
  // The inner guard never sees the allocation that preceded it.
  EXPECT_LT(inner.allocations(), outer.allocations());
}

TEST(HotPathMarker, AttributesAllocationsToInnermostScope) {
  util::hotpath::resetCounters();
  {
    SNS_HOT_PATH("test.attribution");
    EXPECT_TRUE(util::hotpath::inHotScope());
    auto p = std::make_unique<int>(3);
  }
  EXPECT_FALSE(util::hotpath::inHotScope());
  util::hotpath::Marker* m = util::hotpath::findMarker("test.attribution");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->entries.load(), 1u);
  EXPECT_GE(m->allocs.load(), 1u);
  EXPECT_GE(m->alloc_bytes.load(), sizeof(int));
  EXPECT_EQ(m->exempt_allocs.load(), 0u);
  EXPECT_EQ(m->last_alloc_entry.load(), 1u);
}

TEST(HotPathMarker, BoundaryExemptActivationsDoNotAdvanceLastAllocEntry) {
  util::hotpath::resetCounters();
  for (int i = 0; i < 3; ++i) {
    SNS_HOT_PATH("test.boundary");
    SNS_HOT_PATH_BOUNDARY();
    auto p = std::make_unique<int>(i);
  }
  util::hotpath::Marker* m = util::hotpath::findMarker("test.boundary");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->entries.load(), 3u);
  EXPECT_EQ(m->allocs.load(), 0u);
  EXPECT_GE(m->exempt_allocs.load(), 3u);
  EXPECT_EQ(m->last_alloc_entry.load(), 0u);
}

// Markers are per lexical site (one function-local static each), so
// re-entry tests must route every activation through the same site.
void touchWarmupSite(bool allocate) {
  SNS_HOT_PATH("test.warmup");
  if (allocate) {
    auto p = std::make_unique<int>(0);
  }
}

TEST(HotPathMarker, SilentActivationsLeaveLastAllocEntryBehind) {
  util::hotpath::resetCounters();
  touchWarmupSite(true);  // warm-up: allocates on activation 1
  // Steady state: entries advance, the last-allocation ordinal stays
  // pinned at activation 1 — the shape the steady-state contract test
  // asserts on the real engine markers.
  for (int i = 0; i < 9; ++i) touchWarmupSite(false);
  util::hotpath::Marker* m = util::hotpath::findMarker("test.warmup");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->entries.load(), 10u);
  EXPECT_EQ(m->last_alloc_entry.load(), 1u);
}

// A callee (another module, another function) declaring the enclosing
// activation a boundary — the solver-cache miss / event-log append shape.
void calleeDeclaresBoundaryAndAllocates() {
  util::hotpath::markInnermostBoundary();
  auto p = std::make_unique<int>(5);
}

TEST(HotPathMarker, CalleeCanMarkTheInnermostScopeAsBoundary) {
  util::hotpath::resetCounters();
  {
    SNS_HOT_PATH("test.callee_boundary");
    calleeDeclaresBoundaryAndAllocates();
  }
  util::hotpath::Marker* m =
      util::hotpath::findMarker("test.callee_boundary");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->allocs.load(), 0u);
  EXPECT_GE(m->exempt_allocs.load(), 1u);
  EXPECT_EQ(m->last_alloc_entry.load(), 0u);
  // Outside any scope it is a no-op, not a crash.
  util::hotpath::markInnermostBoundary();
}

TEST(HotPathMarker, NestedScopesAttributeOnlyInnermost) {
  util::hotpath::resetCounters();
  {
    SNS_HOT_PATH("test.outer");
    {
      SNS_HOT_PATH("test.inner");
      auto p = std::make_unique<int>(4);
    }
  }
  util::hotpath::Marker* outer = util::hotpath::findMarker("test.outer");
  util::hotpath::Marker* inner = util::hotpath::findMarker("test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->allocs.load(), 0u);
  EXPECT_GE(inner->allocs.load(), 1u);
}

}  // namespace
}  // namespace sns::testing
