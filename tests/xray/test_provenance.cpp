// sns::xray::ProvenanceStore tests: record bookkeeping, the latest-attempt
// walk semantics, candidate capping, and — through the full simulator —
// byte-identical provenance across reruns and instances for every policy.
#include <gtest/gtest.h>

#include <vector>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/util/error.hpp"
#include "sns/xray/provenance.hpp"
#include "sns/xray/span.hpp"

namespace sns::xray {
namespace {

TEST(Provenance, RecordsAttemptWalkAndDecision) {
  ProvenanceStore store;
  store.beginAttempt(3, "MG", 16, 0.9, 1.0, 100.0);
  ScaleAttempt a4;
  a4.scale = 4;
  a4.nodes = 4;
  a4.cores = 4;
  a4.reason = RejectReason::kInsufficientResources;
  store.addAttempt(3, a4);
  ScaleAttempt a2;
  a2.scale = 2;
  a2.nodes = 2;
  a2.cores = 8;
  a2.ways = 5;
  a2.bw_gbps = 3.5;
  store.addAttempt(3, a2);
  std::vector<ScoredNode> scored = {{1, 0.25, 0.1, 0.2, 0.05},
                                    {4, 0.40, 0.2, 0.3, 0.10}};
  store.decide(3, 120.0, 2, 5, 8, 3.5, false, scored);
  store.noteSolverDelta(3, 10, 7);

  EXPECT_TRUE(store.has(3));
  EXPECT_FALSE(store.has(2));   // id gap: never attempted
  EXPECT_FALSE(store.has(99));  // out of range
  const DecisionRecord& r = store.record(3);
  EXPECT_EQ(r.program, "MG");
  EXPECT_DOUBLE_EQ(r.first_seen, 100.0);
  EXPECT_DOUBLE_EQ(r.decided, 120.0);
  EXPECT_EQ(r.attempts_total, 1u);
  EXPECT_TRUE(r.placed);
  EXPECT_FALSE(r.exclusive);
  ASSERT_EQ(r.walk.size(), 2u);
  EXPECT_EQ(r.walk[0].reason, RejectReason::kInsufficientResources);
  EXPECT_EQ(r.walk[1].reason, RejectReason::kNone);
  ASSERT_EQ(r.chosen.size(), 2u);
  EXPECT_EQ(r.chosen[1].node, 4);
  EXPECT_EQ(r.chosen_total, 2);
  EXPECT_EQ(r.solver_lookups, 10u);
  EXPECT_EQ(r.solver_hits, 7u);

  EXPECT_THROW(store.record(2), util::PreconditionError);
}

TEST(Provenance, ReattemptKeepsFirstSeenAndClearsWalk) {
  ProvenanceStore store;
  store.beginAttempt(0, "NW", 16, 0.9, 1.0, 10.0);
  ScaleAttempt a;
  a.scale = 1;
  a.reason = RejectReason::kInsufficientResources;
  store.addAttempt(0, a);
  // Second tryPlace later: first_seen survives, the failed walk does not.
  store.beginAttempt(0, "NW", 16, 0.9, 1.0, 55.0);
  a.reason = RejectReason::kNone;
  store.addAttempt(0, a);
  const DecisionRecord& r = store.record(0);
  EXPECT_DOUBLE_EQ(r.first_seen, 10.0);
  EXPECT_EQ(r.attempts_total, 2u);
  ASSERT_EQ(r.walk.size(), 1u);
  EXPECT_EQ(r.walk[0].reason, RejectReason::kNone);
}

TEST(Provenance, ChosenNodesCappedButTotalKept) {
  ProvenanceStore store(2);
  store.beginAttempt(0, "MG", 64, 0.9, 1.0, 0.0);
  std::vector<ScoredNode> scored;
  for (int n = 0; n < 5; ++n) scored.push_back({n, 0.1 * n, 0, 0, 0});
  store.decide(0, 1.0, 4, 0, 16, 0.0, true, scored);
  const DecisionRecord& r = store.record(0);
  EXPECT_EQ(r.chosen.size(), 2u);
  EXPECT_EQ(r.chosen_total, 5);
}

TEST(Provenance, ExplorationMarksTrial) {
  ProvenanceStore store;
  store.beginAttempt(1, "GAN", 16, 0.9, 1.0, 5.0);
  store.noteExploration(1, 2, false);
  EXPECT_TRUE(store.record(1).exploration);
  EXPECT_EQ(store.record(1).walk.back().reason,
            RejectReason::kNoIdleNodesForTrial);
}

TEST(Provenance, JsonSkipsGapsAndNamesReasons) {
  ProvenanceStore store;
  store.beginAttempt(2, "HC", 16, 0.9, 1.0, 1.0);
  ScaleAttempt a;
  a.scale = 1;
  a.reason = RejectReason::kClusterTooSmall;
  store.addAttempt(2, a);
  const std::string doc = store.toJson().dump(2);
  EXPECT_NE(doc.find("\"decisions\""), std::string::npos);
  EXPECT_NE(doc.find("cluster_too_small"), std::string::npos);
  // Only job 2 exists; the 0/1 gaps don't serialize.
  EXPECT_EQ(doc.find("\"job\": 0"), std::string::npos);
}

// ---- determinism through the simulator ------------------------------------

struct Fixture {
  Fixture() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.02;
    profile::Profiler prof(est, cfg, 7);
    for (const auto& p : lib) {
      db.put(prof.profileProgram(p, 16));
      if (!p.pow2_procs && p.multi_node) db.put(prof.profileProgram(p, 28));
    }
  }
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib;
  profile::ProfileDatabase db;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::string provenanceOf(const Fixture& f, sched::PolicyKind policy,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  const auto seq = app::randomSequence(rng, f.lib, 14, 0.9);
  Tracer tracer;  // defaults: every pass, provenance on
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = policy;
  cfg.xray = &tracer;
  sim::ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const auto res = sim.run(seq);
  EXPECT_FALSE(res.jobs.empty());
  EXPECT_GT(tracer.provenance()->size(), 0u);
  return tracer.provenance()->toJson().dump(2);
}

class ProvenanceDeterminism
    : public ::testing::TestWithParam<sched::PolicyKind> {};

TEST_P(ProvenanceDeterminism, IdenticalAcrossRerunsAndSeedsDiffer) {
  auto& f = fixture();
  const auto policy = GetParam();
  for (std::uint64_t seed : {11u, 12u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string first = provenanceOf(f, policy, seed);
    const std::string again = provenanceOf(f, policy, seed);
    EXPECT_EQ(first, again);  // byte-for-byte across fresh instances
  }
  // Different workloads leave different provenance (the store isn't inert).
  EXPECT_NE(provenanceOf(f, policy, 11u), provenanceOf(f, policy, 12u));
}

INSTANTIATE_TEST_SUITE_P(Policies, ProvenanceDeterminism,
                         ::testing::Values(sched::PolicyKind::kCE,
                                           sched::PolicyKind::kCS,
                                           sched::PolicyKind::kSNS));

// Every placed job must be explainable: a walk ending in an accepted (or
// exploration) step, a recorded shape, and chosen nodes for SNS.
TEST(ProvenanceDeterminism, PlacedJobsCarryWalkAndCandidates) {
  auto& f = fixture();
  util::Rng rng(21);
  const auto seq = app::randomSequence(rng, f.lib, 12, 0.9);
  Tracer tracer;
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.xray = &tracer;
  sim::ClusterSimulator sim(f.est, f.lib, f.db, cfg);
  const auto res = sim.run(seq);

  const ProvenanceStore* prov = tracer.provenance();
  for (const auto& j : res.jobs) {
    if (j.placement.nodes.empty()) continue;  // never placed
    ASSERT_TRUE(prov->has(j.id)) << "job " << j.id;
    const DecisionRecord& r = prov->record(j.id);
    EXPECT_TRUE(r.placed) << "job " << j.id;
    EXPECT_FALSE(r.walk.empty()) << "job " << j.id;
    EXPECT_GT(r.chosen_total, 0) << "job " << j.id;
    EXPECT_EQ(r.chosen_total, static_cast<int>(j.placement.nodes.size()));
    EXPECT_EQ(r.scale, j.placement.scale_factor) << "job " << j.id;
    EXPECT_GE(r.decided, r.first_seen) << "job " << j.id;
  }
}

}  // namespace
}  // namespace sns::xray
