// sns::xray::Tracer unit tests: span nesting and self/inclusive
// accounting, RAII early-exit safety, the per-pass span budget, pass
// sampling, folded stacks, and record retention.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sns/util/error.hpp"
#include "sns/xray/span.hpp"

namespace sns::xray {
namespace {

void spin() {
  // A little real work so every span accumulates nonzero time on any
  // clock granularity.
  volatile double x = 1.0;
  for (int i = 0; i < 1000; ++i) x = x * 1.0000001 + 0.5;
}

TEST(Span, KindNamesAreStable) {
  EXPECT_STREQ(to_string(SpanKind::kDecision), "decision");
  EXPECT_STREQ(to_string(SpanKind::kCandidatePrune), "candidate_prune");
  EXPECT_STREQ(to_string(SpanKind::kCurveScore), "curve_score");
  EXPECT_STREQ(to_string(SpanKind::kSolverCall), "solver_call");
  EXPECT_STREQ(to_string(SpanKind::kCommit), "commit");
  EXPECT_STREQ(to_string(SpanKind::kRateRefresh), "rate_refresh");
}

TEST(Span, NestedSpansAttributeSelfAndInclusive) {
  Tracer t;
  t.beginPass(10.0);
  {
    ScopedSpan prune(&t, SpanKind::kCandidatePrune, 3);
    spin();
    {
      ScopedSpan solve(&t, SpanKind::kSolverCall, 3);
      spin();
    }
    {
      ScopedSpan solve(&t, SpanKind::kSolverCall, 3);
      spin();
    }
    spin();
  }
  t.endPass();

  EXPECT_EQ(t.stat(SpanKind::kDecision).calls, 1u);
  EXPECT_EQ(t.stat(SpanKind::kCandidatePrune).calls, 1u);
  EXPECT_EQ(t.stat(SpanKind::kSolverCall).calls, 2u);
  EXPECT_EQ(t.stat(SpanKind::kCommit).calls, 0u);

  const auto& dec = t.stat(SpanKind::kDecision);
  const auto& prune = t.stat(SpanKind::kCandidatePrune);
  const auto& solve = t.stat(SpanKind::kSolverCall);
  // Inclusive nests: decision >= prune >= both solves together.
  EXPECT_GE(dec.total_ns, prune.total_ns);
  EXPECT_GE(prune.total_ns, solve.total_ns);
  // Self excludes children: prune did real work outside the solves.
  EXPECT_LT(prune.self_ns, prune.total_ns);
  EXPECT_GT(prune.self_ns, 0u);
  // Leaves have self == inclusive.
  EXPECT_EQ(solve.self_ns, solve.total_ns);
  // The attributed total is the sum of the self times.
  EXPECT_EQ(t.totalSelfNs(), dec.self_ns + prune.self_ns + solve.self_ns);
  // max_ns tracks the worst single inclusive span.
  EXPECT_GE(solve.max_ns, solve.total_ns / 2);
  // Per-kind histograms observed every call.
  EXPECT_EQ(t.kindUs(SpanKind::kSolverCall).count(), 2u);
}

TEST(Span, FoldedStacksEncodeTheScopePath) {
  Tracer t;
  t.beginPass(0.0);
  {
    ScopedSpan prune(&t, SpanKind::kCandidatePrune);
    ScopedSpan solve(&t, SpanKind::kSolverCall);
    spin();
  }
  t.endPass();
  const std::string folded = t.foldedStacks();
  EXPECT_NE(folded.find("decision "), std::string::npos);
  EXPECT_NE(folded.find("decision;candidate_prune "), std::string::npos);
  EXPECT_NE(folded.find("decision;candidate_prune;solver_call "),
            std::string::npos);
}

TEST(Span, RaiiExitsOnEarlyReturnAndException) {
  Tracer t;
  t.beginPass(0.0);
  auto early = [&](bool bail) {
    ScopedSpan s(&t, SpanKind::kCurveScore);
    if (bail) return 1;
    return 2;
  };
  EXPECT_EQ(early(true), 1);
  try {
    ScopedSpan s(&t, SpanKind::kCommit);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // Both scopes unwound; the pass closes with a balanced stack.
  EXPECT_NO_THROW(t.endPass());
  EXPECT_EQ(t.stat(SpanKind::kCurveScore).calls, 1u);
  EXPECT_EQ(t.stat(SpanKind::kCommit).calls, 1u);
}

TEST(Span, NullTracerAndOutsidePassAreInert) {
  { ScopedSpan s(nullptr, SpanKind::kSolverCall); }
  Tracer t;
  // Outside any pass: latched off at construction.
  { ScopedSpan s(&t, SpanKind::kSolverCall); }
  EXPECT_EQ(t.stat(SpanKind::kSolverCall).calls, 0u);
}

TEST(Span, BudgetDropsSpansButKeepsPairing) {
  TracerConfig cfg;
  cfg.span_budget = 2;  // the decision root + one timed span
  Tracer t(cfg);
  t.beginPass(0.0);
  { ScopedSpan a(&t, SpanKind::kSolverCall); }
  { ScopedSpan b(&t, SpanKind::kSolverCall); }  // over budget: dropped
  {
    ScopedSpan c(&t, SpanKind::kCandidatePrune);  // dropped
    ScopedSpan d(&t, SpanKind::kSolverCall);      // dropped, nested
  }
  EXPECT_NO_THROW(t.endPass());
  EXPECT_EQ(t.droppedSpans(), 3u);
  EXPECT_EQ(t.stat(SpanKind::kSolverCall).calls, 1u);
  EXPECT_EQ(t.stat(SpanKind::kCandidatePrune).calls, 0u);
}

TEST(Span, SamplePeriodTimesEveryNthPass) {
  TracerConfig cfg;
  cfg.sample_period = 3;
  Tracer t(cfg);
  for (int p = 0; p < 7; ++p) {
    t.beginPass(static_cast<double>(p));
    const bool expect_sampled = p % 3 == 0;
    EXPECT_EQ(t.sampledPass(), expect_sampled) << "pass " << p;
    { ScopedSpan s(&t, SpanKind::kSolverCall); }
    t.endPass();
  }
  EXPECT_EQ(t.passes(), 7u);
  EXPECT_EQ(t.sampledPasses(), 3u);  // passes 0, 3, 6
  // Unsampled passes timed nothing.
  EXPECT_EQ(t.stat(SpanKind::kDecision).calls, 3u);
  EXPECT_EQ(t.stat(SpanKind::kSolverCall).calls, 3u);
}

TEST(Span, RecordsRetainPassAndRelativeTimes) {
  TracerConfig cfg;
  cfg.keep_records = true;
  Tracer t(cfg);
  t.beginPass(42.5);
  {
    ScopedSpan s(&t, SpanKind::kCandidatePrune, 9);
    spin();
  }
  t.endPass();
  ASSERT_EQ(t.records().size(), 2u);  // prune closes before the root
  const SpanRecord& prune = t.records()[0];
  const SpanRecord& root = t.records()[1];
  EXPECT_EQ(prune.kind, SpanKind::kCandidatePrune);
  EXPECT_EQ(prune.job, 9);
  EXPECT_EQ(prune.depth, 1);
  EXPECT_EQ(prune.pass, 0u);
  EXPECT_DOUBLE_EQ(prune.sim_time, 42.5);
  EXPECT_LE(prune.t0_ns, prune.t1_ns);
  EXPECT_EQ(root.kind, SpanKind::kDecision);
  EXPECT_EQ(root.depth, 0);
  EXPECT_LE(root.t0_ns, prune.t0_ns);
  EXPECT_GE(root.t1_ns, prune.t1_ns);
}

TEST(Span, RecordCapCountsDrops) {
  TracerConfig cfg;
  cfg.keep_records = true;
  cfg.max_records = 2;
  Tracer t(cfg);
  t.beginPass(0.0);
  for (int i = 0; i < 4; ++i) {
    ScopedSpan s(&t, SpanKind::kSolverCall);
  }
  t.endPass();
  EXPECT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.droppedRecords(), 3u);  // 2 solves + the root
  EXPECT_EQ(t.droppedSpans(), 0u);    // the cap is on records, not timing
}

TEST(Span, ResetClearsEverything) {
  TracerConfig cfg;
  cfg.keep_records = true;
  Tracer t(cfg);
  t.beginPass(0.0);
  { ScopedSpan s(&t, SpanKind::kSolverCall); }
  t.endPass();
  ASSERT_GT(t.passes(), 0u);
  t.reset();
  EXPECT_EQ(t.passes(), 0u);
  EXPECT_EQ(t.sampledPasses(), 0u);
  EXPECT_EQ(t.totalSelfNs(), 0u);
  EXPECT_EQ(t.stat(SpanKind::kSolverCall).calls, 0u);
  EXPECT_TRUE(t.records().empty());
  EXPECT_TRUE(t.foldedStacks().empty());
}

TEST(Span, LifecycleMisuseThrows) {
  Tracer t;
  EXPECT_THROW(t.endPass(), util::PreconditionError);
  t.beginPass(0.0);
  EXPECT_THROW(t.beginPass(1.0), util::PreconditionError);
  t.endPass();
  TracerConfig bad;
  bad.sample_period = 0;
  EXPECT_THROW(Tracer{bad}, util::PreconditionError);
}

}  // namespace
}  // namespace sns::xray
