// Golden-ish tests for the sns::xray render layer: `uberun explain`'s
// per-job report and index, and `uberun hotpath`'s attribution report.
// Assertions pin the load-bearing phrases, not the full byte layout, so
// cosmetic table tweaks don't churn the suite.
#include <gtest/gtest.h>

#include "sns/xray/explain.hpp"

namespace sns::xray {
namespace {

ProvenanceStore placedStore() {
  ProvenanceStore store;
  store.beginAttempt(3, "MG", 16, 0.9, 1.0, 100.0);
  ScaleAttempt a4;
  a4.scale = 4;
  a4.nodes = 4;
  a4.cores = 4;
  a4.reason = RejectReason::kInsufficientResources;
  store.addAttempt(3, a4);
  ScaleAttempt a2;
  a2.scale = 2;
  a2.nodes = 2;
  a2.cores = 8;
  a2.ways = 5;
  a2.bw_gbps = 3.5;
  store.addAttempt(3, a2);
  store.decide(3, 120.0, 2, 5, 8, 3.5, false,
               {{1, 0.25, 0.1, 0.2, 0.05}, {4, 0.40, 0.2, 0.3, 0.10}});
  store.noteSolverDelta(3, 10, 7);
  return store;
}

TEST(Explain, PlacedJobReportsWalkScoresAndSolver) {
  const auto store = placedStore();
  const std::string out = renderExplain(store, 3);
  EXPECT_NE(out.find("job 3: MG/16"), std::string::npos) << out;
  EXPECT_NE(out.find("first considered at t=100.0 s"), std::string::npos);
  EXPECT_NE(out.find("placed at t=120.0 s"), std::string::npos);
  EXPECT_NE(out.find("k=2, 8 proc(s)/node, 5 LLC way(s)"), std::string::npos);
  // The rejected scale names its reason; the winning one is accepted.
  EXPECT_NE(out.find("k=4 (4 node(s) x 4 core(s)): no node set with enough "
                     "free cores, ways and bandwidth"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("accepted"), std::string::npos);
  // Score breakdown table with both chosen nodes.
  EXPECT_NE(out.find("score = Co + Bo + 1.0 x Wo"), std::string::npos);
  EXPECT_NE(out.find("0.2500"), std::string::npos);
  EXPECT_NE(out.find("0.4000"), std::string::npos);
  // Solver-cache provenance of the deciding dispatch.
  EXPECT_NE(out.find("10 contention solve(s)"), std::string::npos);
  EXPECT_NE(out.find("7 served from cache"), std::string::npos);
}

TEST(Explain, CandidateOverflowNoted) {
  ProvenanceStore store(2);
  store.beginAttempt(0, "MG", 64, 0.9, 1.0, 0.0);
  store.decide(0, 1.0, 4, 0, 16, 0.0, true,
               {{0, 0, 0, 0, 0}, {1, 0, 0, 0, 0}, {2, 0, 0, 0, 0},
                {3, 0, 0, 0, 0}});
  const std::string out = renderExplain(store, 0);
  EXPECT_NE(out.find("... 2 more node(s) in the placement"), std::string::npos)
      << out;
}

TEST(Explain, UnplacedAndUnknownJobs) {
  ProvenanceStore store;
  store.beginAttempt(0, "NW", 16, 0.9, 1.0, 10.0);
  ScaleAttempt a;
  a.scale = 1;
  a.nodes = 1;
  a.cores = 16;
  a.reason = RejectReason::kInsufficientResources;
  store.addAttempt(0, a);
  EXPECT_NE(renderExplain(store, 0).find("NOT PLACED"), std::string::npos);
  EXPECT_NE(renderExplain(store, 7).find("no placement decision recorded"),
            std::string::npos);
}

TEST(Explain, ExplorationTrialReported) {
  ProvenanceStore store;
  store.beginAttempt(5, "GAN", 16, 0.9, 1.0, 50.0);
  store.noteExploration(5, 2, true);
  store.decide(5, 50.0, 2, 0, 8, 0.0, true, {{0, 0, 0, 0, 0}});
  const std::string out = renderExplain(store, 5);
  EXPECT_NE(out.find("exclusive exploration trial at k=2"), std::string::npos)
      << out;
}

TEST(Explain, IndexListsOneLinePerDecision) {
  auto store = placedStore();
  store.beginAttempt(5, "NW", 16, 0.9, 1.0, 130.0);  // still queued
  const std::string out = renderExplainIndex(store);
  EXPECT_NE(out.find("MG"), std::string::npos);
  EXPECT_NE(out.find("shared"), std::string::npos);
  EXPECT_NE(out.find("queued"), std::string::npos);
  // Gap ids (0-2, 4) don't produce rows; jobs 3 and 5 do.
  EXPECT_EQ(out.find("explore"), std::string::npos);
}

TEST(Explain, HotpathReportsAttributionAndReconciliation) {
  Tracer t;
  for (int p = 0; p < 3; ++p) {
    t.beginPass(static_cast<double>(p));
    {
      ScopedSpan prune(&t, SpanKind::kCandidatePrune);
      ScopedSpan solve(&t, SpanKind::kSolverCall);
      volatile double x = 1.0;
      for (int i = 0; i < 1000; ++i) x = x * 1.0000001 + 0.5;
    }
    t.endPass();
  }
  const std::string out = renderHotpath(t, 125.0);
  EXPECT_NE(out.find("3 of 3 scheduling passes traced"), std::string::npos)
      << out;
  EXPECT_NE(out.find("candidate_prune"), std::string::npos);
  EXPECT_NE(out.find("attributed mean per pass:"), std::string::npos);
  EXPECT_NE(out.find("vs measured decision_us_mean 125.0 us"),
            std::string::npos);
  EXPECT_NE(out.find("folded stacks"), std::string::npos);
  EXPECT_NE(out.find("decision;candidate_prune;solver_call"),
            std::string::npos);
  // Without a measured mean the reconciliation clause is omitted.
  EXPECT_EQ(renderHotpath(t).find("vs measured"), std::string::npos);
}

TEST(Explain, HotpathSurfacesDroppedSpans) {
  TracerConfig cfg;
  cfg.span_budget = 1;  // only the root fits
  Tracer t(cfg);
  t.beginPass(0.0);
  { ScopedSpan s(&t, SpanKind::kSolverCall); }
  t.endPass();
  const std::string out = renderHotpath(t);
  EXPECT_NE(out.find("dropped spans (per-pass budget 1): 1"),
            std::string::npos)
      << out;
}

}  // namespace
}  // namespace sns::xray
