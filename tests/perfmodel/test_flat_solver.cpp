// The flat-array solver path (NodeContentionSolver::solveInto, behind
// SimOptFlags::simd_solver) must reproduce solve() bit-for-bit: identical
// expression shapes, identical iteration order, only the storage layout
// differs. Exact double comparisons throughout.
#include <gtest/gtest.h>

#include <vector>

#include "sns/app/library.hpp"
#include "sns/perfmodel/contention.hpp"
#include "sns/util/rng.hpp"

namespace sns::perfmodel {
namespace {

class FlatSolverTest : public ::testing::Test {
 protected:
  FlatSolverTest() : lib_(app::programLibrary()), solver_(mach_) {}

  void expectIdentical(std::span<const NodeShare> shares) {
    const std::vector<ShareOutcome> ref = solver_.solve(shares);
    std::vector<ShareOutcome> flat;
    solver_.solveInto(shares, scratch_, flat);
    ASSERT_EQ(ref.size(), flat.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].rate_per_proc, flat[i].rate_per_proc) << i;
      EXPECT_EQ(ref[i].raw_rate_per_proc, flat[i].raw_rate_per_proc) << i;
      EXPECT_EQ(ref[i].ipc, flat[i].ipc) << i;
      EXPECT_EQ(ref[i].bw_gbps, flat[i].bw_gbps) << i;
      EXPECT_EQ(ref[i].demand_gbps, flat[i].demand_gbps) << i;
      EXPECT_EQ(ref[i].miss_ratio, flat[i].miss_ratio) << i;
      EXPECT_EQ(ref[i].eff_ways, flat[i].eff_ways) << i;
    }
  }

  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  std::vector<app::ProgramModel> lib_;
  NodeContentionSolver solver_;
  SolveScratch scratch_;
};

TEST_F(FlatSolverTest, SoloSharesMatchExactly) {
  for (const auto& p : lib_) {
    NodeShare s{&p, 16, 20.0, 0.0, 1.0};
    SCOPED_TRACE(p.name);
    expectIdentical(std::span<const NodeShare>(&s, 1));
  }
}

TEST_F(FlatSolverTest, UnpartitionedCoRunsMatchExactly) {
  // ways = 0 engages the shared-cache fixed point — the iterative path.
  for (std::size_t a = 0; a < lib_.size(); ++a) {
    for (std::size_t b = a; b < lib_.size(); ++b) {
      std::vector<NodeShare> shares = {{&lib_[a], 8, 0.0, 0.0, 1.0},
                                       {&lib_[b], 8, 0.0, 0.0, 1.0}};
      SCOPED_TRACE(lib_[a].name + "+" + lib_[b].name);
      expectIdentical(shares);
    }
  }
}

TEST_F(FlatSolverTest, RandomMixedCoRunsMatchExactly) {
  util::Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniformInt(1, 5));
    std::vector<NodeShare> shares;
    int cores_left = 28;
    // Keep the CAT budget honest: partitioned ways must leave headroom
    // for any free-sharing co-runner (a solver precondition, not a
    // solver-path difference).
    int ways_left = 15;
    for (int i = 0; i < n && cores_left > 0; ++i) {
      const auto& p = lib_[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(lib_.size()) - 1))];
      const int procs =
          static_cast<int>(rng.uniformInt(1, std::min(cores_left, 12)));
      cores_left -= procs;
      const bool partitioned = rng.uniformInt(0, 1) == 1 && ways_left >= 2;
      const double ways =
          partitioned ? static_cast<double>(rng.uniformInt(2, 4)) : 0.0;
      ways_left -= static_cast<int>(ways);
      const double remote = 0.1 * static_cast<double>(rng.uniformInt(0, 5));
      const double cap =
          rng.uniformInt(0, 2) == 0 ? static_cast<double>(rng.uniformInt(5, 40))
                                    : 0.0;
      shares.push_back({&p, procs, ways, remote, 1.0, cap});
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    expectIdentical(shares);
  }
}

TEST_F(FlatSolverTest, ScratchReuseAcrossShapesIsClean) {
  // A big solve followed by a small one must not read stale scratch.
  std::vector<NodeShare> big;
  for (int i = 0; i < 6; ++i) {
    big.push_back({&lib_[static_cast<std::size_t>(i) % lib_.size()], 4,
                   static_cast<double>(2 + i % 2), 0.0, 1.0});
  }
  expectIdentical(big);
  NodeShare one{&lib_.front(), 16, 20.0, 0.0, 1.0};
  expectIdentical(std::span<const NodeShare>(&one, 1));
  expectIdentical(big);
}

}  // namespace
}  // namespace sns::perfmodel
