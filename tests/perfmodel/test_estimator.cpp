#include "sns/perfmodel/estimator.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/util/error.hpp"

namespace sns::perfmodel {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
  }
  const app::ProgramModel& prog(const std::string& n) const {
    return app::findProgram(lib_, n);
  }
  Estimator est_;
  std::vector<app::ProgramModel> lib_;
};

TEST_F(EstimatorTest, CalibrationReproducesReferenceTime) {
  // The whole point of calibration: solo time at the reference placement
  // must equal the published run time.
  for (const auto& p : lib_) {
    const auto r = est_.solo(p, p.ref_procs, 1, est_.machine().llc_ways);
    EXPECT_NEAR(r.time, p.solo_time_ref, p.solo_time_ref * 1e-9) << p.name;
  }
}

TEST_F(EstimatorTest, CalibrationFillsAllProducts) {
  for (const auto& p : lib_) {
    EXPECT_TRUE(p.calibrated()) << p.name;
    EXPECT_GT(p.instructions_per_proc, 0.0) << p.name;
    EXPECT_GE(p.comm_gb_per_proc, 0.0) << p.name;
    EXPECT_GE(p.ref_node_pressure, 0.0) << p.name;
    EXPECT_LE(p.ref_node_pressure, 1.0) << p.name;
  }
}

TEST_F(EstimatorTest, UncalibratedProgramRejected) {
  auto raw = app::programLibrary();
  EXPECT_THROW(est_.solo(raw[0], 16, 1, 20), util::PreconditionError);
}

TEST_F(EstimatorTest, MinNodes) {
  EXPECT_EQ(est_.minNodes(1), 1);
  EXPECT_EQ(est_.minNodes(16), 1);
  EXPECT_EQ(est_.minNodes(28), 1);
  EXPECT_EQ(est_.minNodes(29), 2);
  EXPECT_EQ(est_.minNodes(56), 2);
  EXPECT_EQ(est_.minNodes(57), 3);
  EXPECT_THROW(est_.minNodes(0), util::PreconditionError);
}

TEST_F(EstimatorTest, MgBandwidthMatchesPaperFig4) {
  // Fig 4: MG consumes ~112 GB/s on one node, 67.6 GB/s per node on two.
  const auto one = est_.soloCE(prog("MG"), 16, 1);
  EXPECT_GT(one.node_bw_gbps, 105.0);
  EXPECT_LE(one.node_bw_gbps, 118.3);
  const auto two = est_.soloCE(prog("MG"), 16, 2);
  EXPECT_GT(two.node_bw_gbps, 55.0);
  EXPECT_LT(two.node_bw_gbps, 90.0);
}

TEST_F(EstimatorTest, CgBandwidthMatchesPaperFig4) {
  const auto r = est_.soloCE(prog("CG"), 16, 1);
  EXPECT_NEAR(r.node_bw_gbps, 42.9, 4.0);
}

TEST_F(EstimatorTest, EpBandwidthIsNegligible) {
  const auto r = est_.soloCE(prog("EP"), 16, 1);
  EXPECT_LT(r.node_bw_gbps, 0.5);
}

TEST_F(EstimatorTest, ScalingClassesMatchFig13) {
  // Scaling programs speed up when spread; BFS slows down; EP/WC/HC stay flat.
  for (const char* n : {"MG", "LU", "BW", "TS"}) {
    const double t1 = est_.soloCE(prog(n), 16, 1).time;
    const double t8 = est_.soloCE(prog(n), 16, 8).time;
    EXPECT_GT(t1 / t8, 1.25) << n << " should gain >25% at 8 nodes";
  }
  const double bfs1 = est_.soloCE(prog("BFS"), 16, 1).time;
  const double bfs2 = est_.soloCE(prog("BFS"), 16, 2).time;
  EXPECT_LT(bfs1 / bfs2, 0.95);
  for (const char* n : {"EP", "WC", "HC", "NW"}) {
    const double t1 = est_.soloCE(prog(n), 16, 1).time;
    for (int nodes : {2, 4, 8}) {
      const double tn = est_.soloCE(prog(n), 16, nodes).time;
      EXPECT_NEAR(t1 / tn, 1.0, 0.065) << n << " at " << nodes;
    }
  }
}

TEST_F(EstimatorTest, CgPeaksAtScaleTwo) {
  const double t1 = est_.soloCE(prog("CG"), 16, 1).time;
  const double t2 = est_.soloCE(prog("CG"), 16, 2).time;
  const double t4 = est_.soloCE(prog("CG"), 16, 4).time;
  const double t8 = est_.soloCE(prog("CG"), 16, 8).time;
  EXPECT_GT(t1 / t2, 1.05);  // paper: 13% faster at scale 2
  EXPECT_LE(t2, t4 + 1e-9);
  EXPECT_LT(t4, t8);
}

TEST_F(EstimatorTest, MgNeedsOnlyThreeWays) {
  // Fig 6/12: MG reaches 90% of full-cache performance with 3 ways.
  const auto& mg = prog("MG");
  const double perf_full = 1.0 / est_.solo(mg, 16, 1, 20).time;
  const double perf_3 = 1.0 / est_.solo(mg, 16, 1, 3).time;
  EXPECT_GT(perf_3 / perf_full, 0.90);
  const double perf_2 = 1.0 / est_.solo(mg, 16, 1, 2).time;
  EXPECT_LT(perf_2 / perf_full, perf_3 / perf_full);
}

TEST_F(EstimatorTest, CacheHungryProgramsNeedManyWays) {
  for (const char* n : {"CG", "BFS", "NW"}) {
    const double perf_full = 1.0 / est_.solo(prog(n), 16, 1, 20).time;
    const double perf_4 = 1.0 / est_.solo(prog(n), 16, 1, 4).time;
    EXPECT_LT(perf_4 / perf_full, 0.9) << n;
  }
}

TEST_F(EstimatorTest, PerformanceMonotoneInWays) {
  for (const auto& p : lib_) {
    double prev = 0.0;
    for (int w = 2; w <= 20; w += 2) {
      const double perf = 1.0 / est_.solo(p, 16, 1, w).time;
      EXPECT_GE(perf + 1e-9 * perf, prev) << p.name << " at " << w << " ways";
      prev = perf;
    }
  }
}

TEST_F(EstimatorTest, MissRateDropsWhenMgCgSpread) {
  // Fig 5: MG and CG miss rates fall with scale; BFS's rises.
  for (const char* n : {"MG", "CG"}) {
    const double m1 = est_.soloCE(prog(n), 16, 1).miss_ratio;
    const double m8 = est_.soloCE(prog(n), 16, 8).miss_ratio;
    EXPECT_LE(m8, m1 + 1e-12) << n;
  }
  const double b1 = est_.soloCE(prog("BFS"), 16, 1).miss_ratio;
  const double b2 = est_.soloCE(prog("BFS"), 16, 2).miss_ratio;
  EXPECT_GT(b2, b1);
}

TEST_F(EstimatorTest, CommBreakdownMatchesFig7Shape) {
  // NPB programs: communication below ~10% of total at the reference
  // placement; CG's wait shrinks when spread.
  for (const char* n : {"MG", "EP", "LU"}) {
    const auto r = est_.soloCE(prog(n), 16, 1);
    EXPECT_LT((r.comm_data_time + r.wait_time) / r.time, 0.12) << n;
  }
  const auto cg1 = est_.soloCE(prog("CG"), 16, 1);
  const auto cg2 = est_.soloCE(prog("CG"), 16, 2);
  EXPECT_LT(cg2.wait_time, cg1.wait_time);
}

TEST_F(EstimatorTest, SingleNodeProgramRejectsMultiNode) {
  EXPECT_THROW(est_.soloCE(prog("GAN"), 16, 2), util::PreconditionError);
  EXPECT_NO_THROW(est_.soloCE(prog("GAN"), 16, 1));
}

TEST_F(EstimatorTest, WaitTimeGrowsQuadraticallyWithPressure) {
  const auto& cg = prog("CG");
  const double w_ref = est_.waitTime(cg, cg.ref_node_pressure);
  const double w_half = est_.waitTime(cg, cg.ref_node_pressure * 0.5);
  EXPECT_NEAR(w_half / w_ref, 0.25, 1e-9);
  // Clamped at 4x the reference wait.
  const double w_huge = est_.waitTime(cg, 1.0);
  EXPECT_LE(w_huge, 4.0 * w_ref + 1e-9);
}

TEST_F(EstimatorTest, NoCommNoWait) {
  const auto& hc = prog("HC");
  EXPECT_DOUBLE_EQ(est_.waitTime(hc, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(est_.commDataTime(hc, 16, 16, 1), 0.0);
}

TEST_F(EstimatorTest, RemoteCommMoreExpensiveThanLocal) {
  const auto& cg = prog("CG");
  const double local = est_.commDataTime(cg, 16, 16, 1);
  const double remote = est_.commDataTime(cg, 16, 2, 8);
  EXPECT_GT(remote, local);
}

class ScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScaleSweep, SixteenProcessesSplitEvenly) {
  Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  const int nodes = GetParam();
  const auto r = est.soloCE(app::findProgram(lib, "LU"), 16, nodes);
  EXPECT_EQ(r.nodes, nodes);
  EXPECT_EQ(r.procs_per_node, 16 / nodes);
  EXPECT_GT(r.time, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Nodes, ScaleSweep, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace sns::perfmodel
