// The solver cache's capacity safety valve wipes the whole cache on a miss
// that finds it full, counting every discarded entry as an eviction. The
// production bound (1 << 20 signatures) is never reached by real traces —
// which is why BENCH_sim_scale.json reported solver_cache_evictions = 0 in
// every cell — so these tests shrink the capacity to actually drive the
// eviction path and pin down its accounting.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "sns/app/library.hpp"
#include "sns/obs/metrics.hpp"
#include "sns/perfmodel/contention.hpp"
#include "sns/perfmodel/solver_cache.hpp"

namespace sns::perfmodel {
namespace {

class SolverCacheTest : public ::testing::Test {
 protected:
  SolverCacheTest() : lib_(app::programLibrary()), solver_(mach_) {}

  /// One-share signature that varies with `procs` — distinct procs values
  /// are distinct cache keys.
  NodeShare share(int procs) const {
    return NodeShare{&lib_.front(), procs, 20.0, 0.0, 1.0};
  }

  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  std::vector<app::ProgramModel> lib_;
  NodeContentionSolver solver_;
};

TEST_F(SolverCacheTest, CapacityWipeCountsEveryDiscardedEntry) {
  SolverCache cache(solver_);
  obs::Registry reg;
  cache.attachMetrics(reg);
  cache.setCapacity(4);
  ASSERT_EQ(cache.capacity(), 4u);

  // Fill to capacity: 4 distinct signatures, 4 misses, no evictions yet.
  for (int procs = 1; procs <= 4; ++procs) {
    NodeShare s = share(procs);
    cache.solve(std::span<const NodeShare>(&s, 1));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.evictions(), 0u);

  // The fifth distinct signature finds the cache full: wipe-then-insert.
  NodeShare fifth = share(5);
  cache.solve(std::span<const NodeShare>(&fifth, 1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.evictions(), 4u);
  EXPECT_EQ(reg.counter("solver.cache.evictions").value(), 4.0);
  EXPECT_EQ(reg.counter("solver.cache.misses").value(), 5.0);
  EXPECT_EQ(reg.counter("solver.cache.hits").value(), 0.0);
}

TEST_F(SolverCacheTest, EvictedEntriesReSolveBitIdentically) {
  SolverCache cache(solver_);
  cache.setCapacity(2);

  NodeShare a = share(3);
  const std::vector<ShareOutcome> before =
      cache.solve(std::span<const NodeShare>(&a, 1));

  // Push two more distinct signatures through: the second wipes `a` out.
  for (int procs = 6; procs <= 7; ++procs) {
    NodeShare s = share(procs);
    cache.solve(std::span<const NodeShare>(&s, 1));
  }
  EXPECT_GT(cache.evictions(), 0u);

  // Re-solving after the wipe is a miss (not a stale hit) and reproduces
  // the original outcome exactly — solve() is pure in the signature.
  const std::uint64_t misses_before = cache.misses();
  const std::vector<ShareOutcome> after =
      cache.solve(std::span<const NodeShare>(&a, 1));
  EXPECT_EQ(cache.misses(), misses_before + 1);
  ASSERT_EQ(before.size(), after.size());
  EXPECT_EQ(before[0].rate_per_proc, after[0].rate_per_proc);
  EXPECT_EQ(before[0].bw_gbps, after[0].bw_gbps);
  EXPECT_EQ(before[0].eff_ways, after[0].eff_ways);
}

TEST_F(SolverCacheTest, WipeInvalidatesLastSignatureFastPath) {
  SolverCache cache(solver_);
  cache.setCapacity(1);

  // Every distinct signature evicts the previous one; the back-to-back
  // fast path must not serve the wiped entry. auditInvariants() would
  // flag a dangling last-signature pointer.
  for (int procs = 1; procs <= 5; ++procs) {
    NodeShare s = share(procs);
    cache.solve(std::span<const NodeShare>(&s, 1));
    EXPECT_TRUE(cache.auditInvariants().empty()) << "procs=" << procs;
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 4u);
  EXPECT_EQ(cache.hits(), 0u);

  // Repeating the last signature is still a hit (the survivor is live).
  NodeShare s = share(5);
  cache.solve(std::span<const NodeShare>(&s, 1));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(SolverCacheTest, HitsNeverEvict) {
  SolverCache cache(solver_);
  cache.setCapacity(2);
  NodeShare a = share(2);
  NodeShare b = share(4);
  cache.solve(std::span<const NodeShare>(&a, 1));
  cache.solve(std::span<const NodeShare>(&b, 1));

  // At capacity, but hits on resident signatures never trigger the valve.
  for (int i = 0; i < 8; ++i) {
    cache.solve(std::span<const NodeShare>(&a, 1));
    cache.solve(std::span<const NodeShare>(&b, 1));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.hits(), 16u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(SolverCacheTest, ZeroCapacityClampsToOne) {
  SolverCache cache(solver_);
  cache.setCapacity(0);
  EXPECT_EQ(cache.capacity(), 1u);
  NodeShare s = share(1);
  cache.solve(std::span<const NodeShare>(&s, 1));
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace sns::perfmodel
