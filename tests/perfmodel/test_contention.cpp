#include "sns/perfmodel/contention.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/util/error.hpp"

namespace sns::perfmodel {
namespace {

class ContentionTest : public ::testing::Test {
 protected:
  ContentionTest() : lib_(app::programLibrary()), solver_(mach_) {}

  const app::ProgramModel& prog(const std::string& n) const {
    return app::findProgram(lib_, n);
  }

  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  std::vector<app::ProgramModel> lib_;
  NodeContentionSolver solver_;
};

TEST_F(ContentionTest, MbPerProcSplitsSockets) {
  // 16 procs on a node: 8 per socket share (w/20)*35 MB.
  EXPECT_NEAR(solver_.mbPerProc(20, 16), 35.0 / 8.0, 1e-12);
  EXPECT_NEAR(solver_.mbPerProc(10, 16), 17.5 / 8.0, 1e-12);
  // A lone process spans only one socket.
  EXPECT_NEAR(solver_.mbPerProc(20, 1), 35.0, 1e-12);
  EXPECT_NEAR(solver_.mbPerProc(20, 2), 35.0, 1e-12);
}

TEST_F(ContentionTest, SoloJobRatesArePositive) {
  for (const auto& p : lib_) {
    NodeShare s{&p, 16, 20.0, 0.0, 1.0};
    const auto out = solver_.solve(std::span<const NodeShare>(&s, 1));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GT(out[0].rate_per_proc, 0.0) << p.name;
    EXPECT_GT(out[0].ipc, 0.0) << p.name;
    EXPECT_GE(out[0].bw_gbps, 0.0) << p.name;
    EXPECT_LE(out[0].bw_gbps, mach_.peakBandwidth() + 1e-9) << p.name;
  }
}

TEST_F(ContentionTest, BandwidthCapBindsMg) {
  // MG with 16 processes demands more than the node peak; it must be
  // bandwidth-capped (paper: 112 GB/s observed vs 118 peak).
  NodeShare s{&prog("MG"), 16, 20.0, 0.0, 1.0};
  const auto out = solver_.solve(std::span<const NodeShare>(&s, 1)).front();
  EXPECT_GT(out.demand_gbps, mach_.mem_bw.aggregate(16));
  EXPECT_LT(out.rate_per_proc, out.raw_rate_per_proc);
  EXPECT_NEAR(out.bw_gbps, mach_.mem_bw.aggregate(16), 1.0);
}

TEST_F(ContentionTest, EpIsNeverBandwidthBound) {
  NodeShare s{&prog("EP"), 16, 20.0, 0.0, 1.0};
  const auto out = solver_.solve(std::span<const NodeShare>(&s, 1)).front();
  EXPECT_DOUBLE_EQ(out.rate_per_proc, out.raw_rate_per_proc);
  EXPECT_LT(out.bw_gbps, 1.0);
}

TEST_F(ContentionTest, MoreWaysNeverLowerRate) {
  for (const char* name : {"CG", "BFS", "TS", "NW"}) {
    const auto& p = prog(name);
    double prev = 0.0;
    for (double w : {2.0, 4.0, 8.0, 12.0, 16.0, 20.0}) {
      NodeShare s{&p, 16, w, 0.0, 1.0};
      const auto out = solver_.solve(std::span<const NodeShare>(&s, 1)).front();
      EXPECT_GE(out.rate_per_proc + 1e-6, prev) << name << " at " << w;
      prev = out.rate_per_proc;
    }
  }
}

TEST_F(ContentionTest, CoRunnersSlowEachOtherUnderBandwidthPressure) {
  // Two bandwidth hogs split a node: each gets roughly half the capacity.
  NodeShare a{&prog("MG"), 14, 10.0, 0.0, 1.0};
  NodeShare b{&prog("BW"), 14, 10.0, 0.0, 1.0};
  std::vector<NodeShare> shares = {a, b};
  const auto out = solver_.solve(shares);
  const double total = out[0].bw_gbps + out[1].bw_gbps;
  EXPECT_LE(total, mach_.peakBandwidth() + 1e-6);
  EXPECT_LT(out[0].rate_per_proc, out[0].raw_rate_per_proc);
  EXPECT_LT(out[1].rate_per_proc, out[1].raw_rate_per_proc);
}

TEST_F(ContentionTest, LightJobUnharmedByBandwidthHog) {
  // EP co-located with MG keeps its compute rate (its demand is trivial).
  NodeShare mg{&prog("MG"), 14, 10.0, 0.0, 1.0};
  NodeShare ep{&prog("EP"), 14, 10.0, 0.0, 1.0};
  std::vector<NodeShare> shares = {mg, ep};
  const auto out = solver_.solve(shares);
  EXPECT_GT(out[1].rate_per_proc / out[1].raw_rate_per_proc, 0.97);
}

TEST_F(ContentionTest, ProportionalShareFavorsBiggerDemand) {
  NodeShare mg{&prog("MG"), 14, 10.0, 0.0, 1.0};
  NodeShare cg{&prog("CG"), 14, 10.0, 0.0, 1.0};
  std::vector<NodeShare> shares = {mg, cg};
  const auto out = solver_.solve(shares);
  EXPECT_GT(out[0].bw_gbps, out[1].bw_gbps);
}

TEST_F(ContentionTest, FreeForAllSplitsPoolByPressure) {
  // Unpartitioned cache: the cache-hungry program grabs more effective
  // ways than the cache-light one.
  NodeShare hungry{&prog("NW"), 14, 0.0, 0.0, 1.0};
  NodeShare light{&prog("EP"), 14, 0.0, 0.0, 1.0};
  std::vector<NodeShare> shares = {hungry, light};
  const auto out = solver_.solve(shares);
  EXPECT_GT(out[0].eff_ways, out[1].eff_ways);
  EXPECT_NEAR(out[0].eff_ways + out[1].eff_ways, 20.0, 0.5);
}

TEST_F(ContentionTest, FreeForAllHurtsCacheSensitiveJob) {
  // NW alone on the node vs sharing the cache with a thrashing co-runner.
  NodeShare alone{&prog("NW"), 14, 0.0, 0.0, 1.0};
  const auto solo = solver_.solve(std::span<const NodeShare>(&alone, 1)).front();
  NodeShare nw{&prog("NW"), 14, 0.0, 0.0, 1.0};
  NodeShare bw{&prog("BW"), 14, 0.0, 0.0, 1.0};
  std::vector<NodeShare> shares = {nw, bw};
  const auto corun = solver_.solve(shares);
  EXPECT_LT(corun[0].rate_per_proc, solo.rate_per_proc);
  EXPECT_GT(corun[0].miss_ratio, solo.miss_ratio);
}

TEST_F(ContentionTest, CatPartitionIsolatesCache) {
  // With CAT, NW's 12-way partition is untouched by the co-runner.
  NodeShare nw_solo{&prog("NW"), 14, 12.0, 0.0, 1.0};
  const auto solo = solver_.solve(std::span<const NodeShare>(&nw_solo, 1)).front();
  NodeShare nw{&prog("NW"), 14, 12.0, 0.0, 1.0};
  NodeShare ep{&prog("EP"), 14, 8.0, 0.0, 1.0};
  std::vector<NodeShare> shares = {nw, ep};
  const auto corun = solver_.solve(shares);
  EXPECT_DOUBLE_EQ(corun[0].miss_ratio, solo.miss_ratio);
  EXPECT_DOUBLE_EQ(corun[0].eff_ways, 12.0);
}

TEST_F(ContentionTest, SpreadSideEffectsRaiseBfsTraffic) {
  NodeShare compact{&prog("BFS"), 16, 20.0, 0.0, 1.0};
  NodeShare spread{&prog("BFS"), 8, 20.0, 0.5, 1.0};
  const auto c = solver_.solve(std::span<const NodeShare>(&compact, 1)).front();
  const auto s = solver_.solve(std::span<const NodeShare>(&spread, 1)).front();
  // Per-process traffic rises when spread (more refs, boosted misses),
  // despite the larger per-process cache share.
  EXPECT_GT(s.bw_gbps / 8.0, c.bw_gbps / 16.0);
}

TEST_F(ContentionTest, MemIntensityScalesBandwidth) {
  NodeShare lo{&prog("TS"), 16, 20.0, 0.0, 0.5};
  NodeShare hi{&prog("TS"), 16, 20.0, 0.0, 1.5};
  const auto a = solver_.solve(std::span<const NodeShare>(&lo, 1)).front();
  const auto b = solver_.solve(std::span<const NodeShare>(&hi, 1)).front();
  EXPECT_GT(b.bw_gbps, a.bw_gbps);
  EXPECT_LT(b.rate_per_proc, a.rate_per_proc);
}

TEST_F(ContentionTest, RejectsOversubscription) {
  NodeShare too_many{&prog("EP"), 29, 20.0, 0.0, 1.0};
  EXPECT_THROW(solver_.solve(std::span<const NodeShare>(&too_many, 1)),
               util::PreconditionError);
  NodeShare a{&prog("EP"), 14, 12.0, 0.0, 1.0};
  NodeShare b{&prog("EP"), 14, 12.0, 0.0, 1.0};
  std::vector<NodeShare> ways_over = {a, b};
  EXPECT_THROW(solver_.solve(ways_over), util::PreconditionError);
}

TEST_F(ContentionTest, RejectsEmptyAndInvalidShares) {
  std::vector<NodeShare> empty;
  EXPECT_THROW(solver_.solve(empty), util::PreconditionError);
  NodeShare null_prog{nullptr, 4, 20.0, 0.0, 1.0};
  EXPECT_THROW(solver_.solve(std::span<const NodeShare>(&null_prog, 1)),
               util::PreconditionError);
}

TEST_F(ContentionTest, ThreeWayMixIsStable) {
  // The paper's Fig 9 zoom-in: a CPU-only job, a ways-sensitive job, and a
  // bandwidth-heavy job share a node with CAT partitions.
  NodeShare cpu{&prog("EP"), 8, 2.0, 0.0, 1.0};
  NodeShare cache{&prog("NW"), 8, 12.0, 0.0, 1.0};
  NodeShare bw{&prog("MG"), 8, 4.0, 0.0, 1.0};
  std::vector<NodeShare> shares = {cpu, cache, bw};
  const auto out = solver_.solve(shares);
  for (const auto& o : out) {
    EXPECT_GT(o.rate_per_proc, 0.0);
    EXPECT_GE(o.bw_gbps, 0.0);
  }
  double total_bw = 0.0;
  for (const auto& o : out) total_bw += o.bw_gbps;
  EXPECT_LE(total_bw, mach_.peakBandwidth() + 1e-6);
}

}  // namespace
}  // namespace sns::perfmodel
