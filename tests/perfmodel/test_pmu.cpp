#include "sns/perfmodel/pmu.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/perfmodel/estimator.hpp"
#include "sns/util/error.hpp"

namespace sns::perfmodel {
namespace {

ShareOutcome sampleOutcome() {
  ShareOutcome o;
  o.rate_per_proc = 1.2e9;   // 0.5 IPC at 2.4 GHz
  o.raw_rate_per_proc = 1.2e9;
  o.bw_gbps = 50.0;
  o.ipc = 0.5;
  o.miss_ratio = 0.3;
  o.eff_ways = 20.0;
  return o;
}

TEST(Pmu, NoiselessCountersAreExact) {
  PmuSimulator pmu(0.0);
  const auto s = pmu.sample(sampleOutcome(), 16, 5.0, 2.4);
  EXPECT_NEAR(s.ipc(), 0.5, 1e-12);
  EXPECT_NEAR(s.bandwidthGbps(), 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.duration_s, 5.0);
}

TEST(Pmu, CountersScaleWithProcsAndDuration) {
  PmuSimulator pmu(0.0);
  const auto a = pmu.sample(sampleOutcome(), 8, 5.0, 2.4);
  const auto b = pmu.sample(sampleOutcome(), 16, 10.0, 2.4);
  EXPECT_NEAR(b.instructions / a.instructions, 4.0, 1e-9);
  EXPECT_NEAR(b.core_cycles / a.core_cycles, 4.0, 1e-9);
  // Bandwidth counters scale with duration only (node-level metric).
  EXPECT_NEAR(b.ha_requests / a.ha_requests, 2.0, 1e-9);
}

TEST(Pmu, NoiseIsUnbiasedOnAverage) {
  PmuSimulator pmu(0.05, 99);
  double ipc_sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ipc_sum += pmu.sample(sampleOutcome(), 16, 5.0, 2.4).ipc();
  }
  EXPECT_NEAR(ipc_sum / n, 0.5, 0.005);
}

TEST(Pmu, NoiseActuallyPerturbs) {
  PmuSimulator pmu(0.05, 7);
  const auto a = pmu.sample(sampleOutcome(), 16, 5.0, 2.4);
  const auto b = pmu.sample(sampleOutcome(), 16, 5.0, 2.4);
  EXPECT_NE(a.instructions, b.instructions);
}

TEST(Pmu, DeterministicForSeed) {
  PmuSimulator a(0.05, 123), b(0.05, 123);
  const auto sa = a.sample(sampleOutcome(), 16, 5.0, 2.4);
  const auto sb = b.sample(sampleOutcome(), 16, 5.0, 2.4);
  EXPECT_DOUBLE_EQ(sa.instructions, sb.instructions);
  EXPECT_DOUBLE_EQ(sa.ha_requests, sb.ha_requests);
}

TEST(Pmu, RejectsBadArguments) {
  PmuSimulator pmu(0.0);
  EXPECT_THROW(pmu.sample(sampleOutcome(), 0, 5.0, 2.4), util::PreconditionError);
  EXPECT_THROW(pmu.sample(sampleOutcome(), 16, 0.0, 2.4), util::PreconditionError);
}

TEST(Pmu, ZeroDurationSampleDerivedMetricsSafe) {
  PmuSample s;
  EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(s.bandwidthGbps(), 0.0);
}

TEST(Pmu, EndToEndWithSolver) {
  Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  const auto& mg = app::findProgram(lib, "MG");
  NodeShare share{&mg, 16, 20.0, 0.0, 1.0};
  const auto out = est.solver().solve(std::span<const NodeShare>(&share, 1)).front();
  PmuSimulator pmu(0.0);
  const auto s = pmu.sample(out, 16, 5.0, est.machine().frequency_ghz);
  EXPECT_NEAR(s.ipc(), out.ipc, 1e-9);
  EXPECT_NEAR(s.bandwidthGbps(), out.bw_gbps, 1e-6);
}

}  // namespace
}  // namespace sns::perfmodel
