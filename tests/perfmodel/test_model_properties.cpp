// Property-based sweeps over the ground-truth performance model: physical
// invariants that must hold for every program at every placement and cache
// allocation, and for arbitrary co-run mixes.
#include <gtest/gtest.h>

#include <tuple>

#include "sns/app/library.hpp"
#include "sns/perfmodel/estimator.hpp"
#include "sns/util/rng.hpp"

namespace sns::perfmodel {
namespace {

struct Fixture {
  Fixture() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
  }
  Estimator est;
  std::vector<app::ProgramModel> lib;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// ---------------------------------------------------------------------------
// Solo-run invariants, swept over (program x nodes).
class SoloSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SoloSweep, PhysicalInvariantsHold) {
  auto& f = fixture();
  const auto& prog = app::findProgram(f.lib, std::get<0>(GetParam()));
  const int nodes = std::get<1>(GetParam());
  if (!prog.multi_node && nodes > 1) GTEST_SKIP();

  const auto& mach = f.est.machine();
  double prev_perf = 0.0;
  for (int w = mach.min_ways_per_job; w <= mach.llc_ways; ++w) {
    const auto r = f.est.solo(prog, 16, nodes, w);
    // Times positive and finite; components sum to the total.
    EXPECT_GT(r.time, 0.0);
    EXPECT_NEAR(r.time, r.comp_time + r.comm_data_time + r.wait_time, 1e-9);
    // Bandwidth within hardware limits.
    EXPECT_GE(r.node_bw_gbps, 0.0);
    EXPECT_LE(r.node_bw_gbps, mach.peakBandwidth() + 1e-9);
    // IPC plausible for a real core.
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LT(r.ipc, 4.0);
    // Miss ratio is a ratio.
    EXPECT_GE(r.miss_ratio, 0.0);
    EXPECT_LE(r.miss_ratio, 1.0);
    // More cache never hurts performance.
    const double perf = 1.0 / r.time;
    EXPECT_GE(perf * (1.0 + 1e-9), prev_perf) << prog.name << " w=" << w;
    prev_perf = perf;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProgramsByNodes, SoloSweep,
    ::testing::Combine(::testing::Values("WC", "TS", "NW", "GAN", "RNN", "MG",
                                         "CG", "EP", "LU", "BFS", "HC", "BW"),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "N";
    });

// ---------------------------------------------------------------------------
// Co-run invariants on random node mixes.
class CoRunFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoRunFuzz, RandomMixesRespectCapacities) {
  auto& f = fixture();
  util::Rng rng(GetParam());
  const auto& mach = f.est.machine();

  for (int trial = 0; trial < 40; ++trial) {
    // Build a random feasible mix of 1-4 jobs. Mixes containing
    // free-sharing (unpartitioned) jobs must keep some ways out of CAT
    // partitions — the solver rejects a free-sharer with an empty pool.
    std::vector<NodeShare> shares;
    int cores_left = mach.cores;
    const bool with_free_sharers = rng.chance(0.5);
    double ways_left = mach.llc_ways - (with_free_sharers ? 4.0 : 0.0);
    const int jobs = static_cast<int>(rng.uniformInt(1, 4));
    for (int j = 0; j < jobs && cores_left > 0; ++j) {
      NodeShare s;
      s.prog = &f.lib[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(f.lib.size()) - 1))];
      s.procs = static_cast<int>(rng.uniformInt(1, std::min(cores_left, 14)));
      if (!with_free_sharers || (rng.chance(0.6) && ways_left >= 2.0)) {
        if (ways_left < 2.0) break;
        s.ways = static_cast<double>(
            rng.uniformInt(2, static_cast<std::int64_t>(ways_left)));
        ways_left -= s.ways;
      } else {
        s.ways = 0.0;  // free-for-all
      }
      s.remote_frac = rng.uniform(0.0, 0.9);
      s.mem_intensity = rng.uniform(0.5, 1.5);
      cores_left -= s.procs;
      shares.push_back(s);
    }
    if (shares.empty()) continue;

    int total_procs = 0;
    for (const auto& s : shares) total_procs += s.procs;
    const auto out = f.est.solver().solve(shares);
    ASSERT_EQ(out.size(), shares.size());

    double total_bw = 0.0;
    double total_eff_ways = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_GT(out[i].rate_per_proc, 0.0);
      EXPECT_LE(out[i].rate_per_proc, out[i].raw_rate_per_proc * (1.0 + 1e-9));
      EXPECT_GE(out[i].bw_gbps, 0.0);
      EXPECT_GE(out[i].eff_ways, 0.0);
      EXPECT_LE(out[i].miss_ratio, 1.0);
      total_bw += out[i].bw_gbps;
      total_eff_ways += out[i].eff_ways;
    }
    // Aggregate bandwidth within what the cores could pull.
    EXPECT_LE(total_bw, mach.mem_bw.aggregate(total_procs) + 1e-6);
    // Cache never over-committed.
    EXPECT_LE(total_eff_ways, mach.llc_ways + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoRunFuzz,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL,
                                           66ULL, 77ULL, 88ULL));

// ---------------------------------------------------------------------------
// Adding a co-runner never speeds up an incumbent with a fixed partition.
class InterferenceSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(InterferenceSweep, CoRunnerNeverHelpsPartitionedIncumbent) {
  auto& f = fixture();
  const auto& victim = app::findProgram(f.lib, GetParam());
  for (const auto& intruder : f.lib) {
    NodeShare v{&victim, 8, 10.0, 0.0, 1.0, 0.0};
    const auto solo =
        f.est.solver().solve(std::span<const NodeShare>(&v, 1)).front();
    std::vector<NodeShare> mix = {v, {&intruder, 8, 10.0, 0.0, 1.0, 0.0}};
    const auto corun = f.est.solver().solve(mix);
    EXPECT_LE(corun[0].rate_per_proc, solo.rate_per_proc * (1.0 + 1e-9))
        << GetParam() << " vs " << intruder.name;
    // With CAT, the incumbent's miss ratio is untouched.
    EXPECT_DOUBLE_EQ(corun[0].miss_ratio, solo.miss_ratio);
  }
}

INSTANTIATE_TEST_SUITE_P(Victims, InterferenceSweep,
                         ::testing::Values("MG", "CG", "NW", "EP", "TS", "BW"));

// ---------------------------------------------------------------------------
// Calibration invariance: solo reference time is reproduced for any
// perturbation of the reference inputs.
class CalibrationSweep : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationSweep, ReferenceTimeReproducedAfterRescaling) {
  Estimator est;
  auto prog = app::programLibrary()[5];  // MG
  prog.solo_time_ref *= GetParam();
  est.calibrate(prog);
  const auto r = est.solo(prog, prog.ref_procs, 1, est.machine().llc_ways);
  EXPECT_NEAR(r.time, prog.solo_time_ref, prog.solo_time_ref * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, CalibrationSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0));

}  // namespace
}  // namespace sns::perfmodel
