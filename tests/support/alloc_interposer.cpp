// Global operator new/delete interposer. Linked ONLY into sns_alloc_tests:
// every heap allocation in that binary flows through here, feeding the
// AllocGuard thread-local counters and the hot-path marker attribution
// (sns::util::hotpath::noteAllocation). Nothing in here may allocate.
//
// All replaceable forms funnel into the two sized entry points below;
// alignment overloads forward to std::aligned_alloc. Counting happens
// before the allocation so a throwing new is still observed.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

#include "sns/util/hot_path.hpp"
#include "tests/support/alloc_guard.hpp"

namespace sns::testing::detail {
extern bool g_interposer_linked;

namespace {
struct LinkFlagSetter {
  LinkFlagSetter() { g_interposer_linked = true; }
} link_flag_setter;

/// Debug hook: SNS_ALLOC_TRACE_MIN_ENTRY=<n> prints a backtrace (to
/// stderr, addresses resolvable with addr2line) for each non-exempt
/// allocation whose innermost hot-path scope is on activation >= n —
/// i.e. exactly the allocations that would fail the steady-state
/// contract. Capped so a hot leak cannot flood the log. backtrace()
/// itself may allocate on first use; the thread-local guard keeps that
/// recursion out of the hook (the marker counters in a traced run are
/// diagnostic, not the contract run).
thread_local bool g_in_trace = false;

void maybeTraceHotAllocation(std::size_t size) {
#if defined(__GLIBC__)
  static const char* env = std::getenv("SNS_ALLOC_TRACE_MIN_ENTRY");
  if (env == nullptr || g_in_trace) return;
  static const unsigned long min_entry = std::strtoul(env, nullptr, 10);
  // Optional second filter: trace only one contract site. Pre-boundary
  // allocations inside an activation that later declares itself a
  // boundary still trace (exemption is only known at scope exit), so
  // narrowing by marker keeps the log readable.
  static const char* only = std::getenv("SNS_ALLOC_TRACE_MARKER");
  sns::util::hotpath::ActiveScopeInfo info;
  if (!sns::util::hotpath::innermostScopeInfo(info)) return;
  if (info.exempt || info.entry < min_entry) return;
  if (only != nullptr && std::strcmp(only, info.name) != 0) return;
  static std::atomic<int> budget{64};
  if (budget.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
  g_in_trace = true;
  std::fprintf(stderr, "[alloc-trace] %zu bytes in %s entry %llu\n", size,
               info.name, static_cast<unsigned long long>(info.entry));
  void* frames[24];
  int n = backtrace(frames, 24);
  backtrace_symbols_fd(frames, n, 2);
  g_in_trace = false;
#else
  (void)size;
#endif
}

void* allocate(std::size_t size) {
  onAlloc(size);
  sns::util::hotpath::noteAllocation(size);
  maybeTraceHotAllocation(size);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* allocateAligned(std::size_t size, std::size_t align) {
  onAlloc(size);
  sns::util::hotpath::noteAllocation(size);
  // aligned_alloc requires size to be a multiple of alignment.
  std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace
}  // namespace sns::testing::detail

void* operator new(std::size_t size) {
  return sns::testing::detail::allocate(size);
}
void* operator new[](std::size_t size) {
  return sns::testing::detail::allocate(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  sns::testing::detail::onAlloc(size);
  sns::util::hotpath::noteAllocation(size);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  sns::testing::detail::onAlloc(size);
  sns::util::hotpath::noteAllocation(size);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return sns::testing::detail::allocateAligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return sns::testing::detail::allocateAligned(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete[](p); }
void operator delete(void* p, std::align_val_t) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  if (p != nullptr) sns::testing::detail::onFree();
  std::free(p);
}
