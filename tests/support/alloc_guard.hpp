#pragma once

#include <cstddef>
#include <cstdint>

/// AllocGuard: scoped heap-allocation counting for contract tests.
///
/// The counters are fed by a global operator new/delete interposer
/// (tests/support/alloc_interposer.cpp) that is linked ONLY into the
/// sns_alloc_tests binary — production binaries and the main sns_tests
/// suite never pay for it. AllocGuard itself is inert without the
/// interposer: interposerLinked() reports whether one is present, which
/// the self-tests use to cover both configurations.
namespace sns::testing {

class AllocGuard {
 public:
  /// Starts counting from zero for this scope (scopes nest: each guard
  /// snapshots the thread's running totals and reports deltas).
  AllocGuard();
  ~AllocGuard();

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Allocations/bytes/frees observed on this thread since construction
  /// (or the last reset()).
  std::uint64_t allocations() const;
  std::uint64_t bytes() const;
  std::uint64_t frees() const;

  /// Restart this guard's window at the current totals.
  void reset();

  /// True when a global interposer is linked into this binary; counters
  /// stay zero without one.
  static bool interposerLinked();

 private:
  std::uint64_t base_allocs_;
  std::uint64_t base_bytes_;
  std::uint64_t base_frees_;
};

/// Raw thread-local totals since thread start (what AllocGuard diffs).
struct AllocTotals {
  std::uint64_t allocations = 0;
  std::uint64_t bytes = 0;
  std::uint64_t frees = 0;
};
AllocTotals threadAllocTotals();

/// Interposer hooks (defined in alloc_interposer.cpp when linked; weak
/// no-op stubs otherwise).
namespace detail {
void onAlloc(std::size_t bytes);
void onFree();
}  // namespace detail

}  // namespace sns::testing
