#include "tests/support/alloc_guard.hpp"

namespace sns::testing {

namespace detail {

// Set by the interposer TU's static initializer when it is linked in.
bool g_interposer_linked = false;

namespace {
thread_local AllocTotals tls_totals;
}  // namespace

void onAlloc(std::size_t bytes) {
  ++tls_totals.allocations;
  tls_totals.bytes += bytes;
}

void onFree() { ++tls_totals.frees; }

}  // namespace detail

AllocTotals threadAllocTotals() { return detail::tls_totals; }

AllocGuard::AllocGuard() { reset(); }
AllocGuard::~AllocGuard() = default;

void AllocGuard::reset() {
  const AllocTotals t = threadAllocTotals();
  base_allocs_ = t.allocations;
  base_bytes_ = t.bytes;
  base_frees_ = t.frees;
}

std::uint64_t AllocGuard::allocations() const {
  return threadAllocTotals().allocations - base_allocs_;
}
std::uint64_t AllocGuard::bytes() const {
  return threadAllocTotals().bytes - base_bytes_;
}
std::uint64_t AllocGuard::frees() const {
  return threadAllocTotals().frees - base_frees_;
}

bool AllocGuard::interposerLinked() { return detail::g_interposer_linked; }

}  // namespace sns::testing
