#include "sns/uberun/launch_plan.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/util/error.hpp"

namespace sns::uberun {
namespace {

class LaunchPlanTest : public ::testing::Test {
 protected:
  LaunchPlanTest()
      : lib_(app::programLibrary()),
        planner_(8, hw::MachineConfig::xeonE5_2680v4()) {}

  sched::Job makeJob(const std::string& prog, int procs, sched::JobId id = 1) {
    sched::Job j;
    j.id = id;
    j.spec.program = prog;
    j.spec.procs = procs;
    j.program = &app::findProgram(lib_, prog);
    return j;
  }

  static sched::Placement placement(std::vector<int> nodes, int c, int ways) {
    sched::Placement p;
    p.nodes = std::move(nodes);
    p.procs_per_node = c;
    p.scale_factor = static_cast<int>(p.nodes.size());
    p.ways = ways;
    return p;
  }

  std::vector<app::ProgramModel> lib_;
  LaunchPlanner planner_;
};

bool anyCommandContains(const LaunchPlan& plan, const std::string& needle) {
  for (const auto& c : plan.commands) {
    if (c.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST_F(LaunchPlanTest, MpiPlanHasHostsAndBinding) {
  const auto plan =
      planner_.materialize(makeJob("MG", 16), placement({0, 1}, 8, 3));
  EXPECT_EQ(plan.framework, app::Framework::kMpi);
  ASSERT_EQ(plan.nodes.size(), 2u);
  EXPECT_EQ(plan.nodes[0].hostname, "node0");
  EXPECT_EQ(plan.nodes[0].cores.size(), 8u);
  EXPECT_TRUE(anyCommandContains(plan, "mpirun -np 16"));
  EXPECT_TRUE(anyCommandContains(plan, "--host node0:8,node1:8"));
  EXPECT_TRUE(anyCommandContains(plan, "--bind-to cpulist"));
}

TEST_F(LaunchPlanTest, CatMasksProgrammedPerNode) {
  const auto plan =
      planner_.materialize(makeJob("CG", 16), placement({2, 3}, 8, 10));
  for (const auto& nl : plan.nodes) {
    EXPECT_NE(nl.cat_mask, 0u);
    EXPECT_EQ(__builtin_popcount(nl.cat_mask), 10);
  }
  EXPECT_TRUE(anyCommandContains(plan, "pqos -e"));
}

TEST_F(LaunchPlanTest, UnpartitionedJobSkipsPqos) {
  const auto plan =
      planner_.materialize(makeJob("WC", 16), placement({0}, 16, 0));
  EXPECT_EQ(plan.nodes[0].cat_mask, 0u);
  EXPECT_FALSE(anyCommandContains(plan, "pqos"));
}

TEST_F(LaunchPlanTest, SparkWorkersSizedToAllocation) {
  const auto plan =
      planner_.materialize(makeJob("TS", 16), placement({0, 1}, 8, 6));
  EXPECT_TRUE(anyCommandContains(plan, "SPARK_WORKER_CORES=8"));
  EXPECT_TRUE(anyCommandContains(plan, "spark-submit --total-executor-cores 16"));
}

TEST_F(LaunchPlanTest, TensorFlowGetsThreadCount) {
  const auto plan =
      planner_.materialize(makeJob("GAN", 16), placement({4}, 16, 6));
  EXPECT_TRUE(anyCommandContains(plan, "--intra_op_parallelism_threads=16"));
  EXPECT_THROW(
      planner_.materialize(makeJob("RNN", 16, 2), placement({0, 1}, 8, 4)),
      util::PreconditionError);
}

TEST_F(LaunchPlanTest, ReplicatedSpawnsOneInstancePerCore) {
  const auto plan =
      planner_.materialize(makeJob("HC", 16), placement({0}, 16, 2));
  int instances = 0;
  for (const auto& c : plan.commands) {
    if (c.find("taskset -c") != std::string::npos &&
        c.find("./HC") != std::string::npos) {
      ++instances;
    }
  }
  EXPECT_EQ(instances, 16);
}

TEST_F(LaunchPlanTest, ReleaseFreesCoresAndMasks) {
  const auto job = makeJob("CG", 16);
  const auto p = placement({0, 1}, 8, 10);
  planner_.materialize(job, p);
  EXPECT_EQ(planner_.binder(0).freeCores(), 20);
  EXPECT_EQ(planner_.masker(0).freeWays(), 10);
  planner_.release(job.id, p);
  EXPECT_EQ(planner_.binder(0).freeCores(), 28);
  EXPECT_EQ(planner_.masker(0).freeWays(), 20);
}

TEST_F(LaunchPlanTest, CoLocatedJobsGetDisjointResources) {
  const auto a =
      planner_.materialize(makeJob("MG", 16, 1), placement({0, 1}, 8, 3));
  const auto b =
      planner_.materialize(makeJob("NW", 16, 2), placement({0, 1}, 8, 12));
  for (std::size_t n = 0; n < 2; ++n) {
    EXPECT_EQ(a.nodes[n].cat_mask & b.nodes[n].cat_mask, 0u);
    std::set<int> cores(a.nodes[n].cores.begin(), a.nodes[n].cores.end());
    for (int c : b.nodes[n].cores) {
      EXPECT_EQ(cores.count(c), 0u) << "core " << c << " double-booked";
    }
  }
}

TEST_F(LaunchPlanTest, CpuListRendering) {
  EXPECT_EQ(cpuList({0, 1, 14}), "0,1,14");
  EXPECT_EQ(cpuList({}), "");
}

}  // namespace
}  // namespace sns::uberun
