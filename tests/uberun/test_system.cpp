#include "sns/uberun/system.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"

namespace sns::uberun {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
  }

  UberunConfig config() {
    UberunConfig cfg;
    cfg.sim.nodes = 8;
    cfg.sim.policy = sched::PolicyKind::kSNS;
    return cfg;
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(SystemTest, ProcessProducesScheduleAndLaunches) {
  UberunSystem sys(est_, lib_, db_, config());
  const std::vector<app::JobSpec> jobs = {{"MG", 16, 0.9, 0.0, 1, 0.0},
                                          {"NW", 16, 0.9, 0.0, 1, 0.0},
                                          {"HC", 16, 0.9, 0.0, 1, 0.0}};
  const auto report = sys.process(jobs);
  EXPECT_EQ(report.schedule.jobs.size(), 3u);
  ASSERT_EQ(report.launches.size(), 3u);
  // Launch plans are in start order with framework-appropriate commands.
  for (const auto& plan : report.launches) {
    EXPECT_FALSE(plan.nodes.empty());
    EXPECT_FALSE(plan.commands.empty());
  }
  // Event log records one start and one finish per job.
  int starts = 0, finishes = 0;
  for (const auto& e : report.events) {
    starts += e.find(" start job ") != std::string::npos ? 1 : 0;
    finishes += e.find(" finish job ") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(starts, 3);
  EXPECT_EQ(finishes, 3);
}

TEST_F(SystemTest, StableProgramsRequestNoReprofiling) {
  UberunSystem sys(est_, lib_, db_, config());
  std::vector<app::JobSpec> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back({"CG", 16, 0.9, 600.0 * i, 1, 0.0});
  const auto report = sys.process(jobs);
  EXPECT_TRUE(report.reprofile.empty());
}

TEST_F(SystemTest, RewrittenProgramGetsFlaggedAndErased) {
  // "CG v2": the binary changed between submissions — much lighter memory
  // behaviour than its stored profile.
  auto lib2 = lib_;
  auto& cg = const_cast<app::ProgramModel&>(app::findProgram(lib2, "CG"));
  cg.mem_refs_per_instr *= 0.35;
  est_.calibrate(cg);

  UberunConfig cfg = config();
  cfg.drift_episodes_per_run = 4;
  UberunSystem sys(est_, lib2, db_, cfg);
  std::vector<app::JobSpec> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back({"CG", 16, 0.9, 600.0 * i, 1, 0.0});
  const auto report = sys.process(jobs);
  ASSERT_FALSE(report.reprofile.empty());
  EXPECT_EQ(report.reprofile.front().first, "CG");

  profile::ProfileDatabase db = db_;
  EXPECT_EQ(applyReprofiling(db, report), 1);
  EXPECT_FALSE(db.contains("CG", 16));
  // Re-running applyReprofiling is a no-op.
  EXPECT_EQ(applyReprofiling(db, report), 0);
}

TEST_F(SystemTest, ReprofilingClosesTheLoop) {
  // Full lifecycle: drift flags the stale profile; after erasing it, the
  // next batch re-explores the program exclusively and relearns it.
  auto lib2 = lib_;
  auto& mg = const_cast<app::ProgramModel&>(app::findProgram(lib2, "MG"));
  mg.mem_refs_per_instr *= 0.3;
  est_.calibrate(mg);

  UberunConfig cfg = config();
  cfg.sim.online_profiling = true;
  cfg.sim.monitor.pmu_noise = 0.0;
  UberunSystem sys(est_, lib2, db_, cfg);

  std::vector<app::JobSpec> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back({"MG", 16, 0.9, 500.0 * i, 1, 0.0});
  const auto first = sys.process(jobs);
  ASSERT_FALSE(first.reprofile.empty());

  profile::ProfileDatabase db = db_;
  applyReprofiling(db, first);
  UberunSystem sys2(est_, lib2, db, cfg);
  const auto second = sys2.process(jobs);
  // Early runs are exclusive exploration trials again.
  EXPECT_TRUE(second.schedule.jobs[0].placement.exclusive);
  const auto* relearned = sys2.learnedProfiles().find("MG", 16);
  ASSERT_NE(relearned, nullptr);
  EXPECT_FALSE(relearned->scales.empty());
}

TEST_F(SystemTest, LaunchPlansNeverDoubleBookCores) {
  UberunSystem sys(est_, lib_, db_, config());
  util::Rng rng(404);
  const auto jobs = app::randomSequence(rng, lib_, 12, 0.9);
  // Throws inside materialize/release if cores or masks were double-booked.
  EXPECT_NO_THROW(sys.process(jobs));
}

}  // namespace
}  // namespace sns::uberun
