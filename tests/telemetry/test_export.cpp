#include "sns/telemetry/export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sns/obs/metrics.hpp"
#include "sns/telemetry/timeseries.hpp"

namespace sns::telemetry {
namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(Prometheus, CountersGetTotalSuffixAndHeaders) {
  obs::Registry reg;
  reg.counter("solver.cache.hits").inc(41);
  reg.counter("solver.cache.hits").inc();
  const std::string out = renderPrometheus(nullptr, &reg);
  EXPECT_TRUE(contains(out, "# HELP sns_solver_cache_hits_total "));
  EXPECT_TRUE(contains(out, "# TYPE sns_solver_cache_hits_total counter\n"));
  EXPECT_TRUE(contains(out, "sns_solver_cache_hits_total 42\n"));
}

TEST(Prometheus, GaugesKeepBareName) {
  obs::Registry reg;
  reg.gauge("sim.queue_depth").set(17.0);
  const std::string out = renderPrometheus(nullptr, &reg);
  EXPECT_TRUE(contains(out, "# TYPE sns_sim_queue_depth gauge\n"));
  EXPECT_TRUE(contains(out, "sns_sim_queue_depth 17\n"));
  EXPECT_FALSE(contains(out, "sns_sim_queue_depth_total"));
}

TEST(Prometheus, HistogramBucketsAreCumulativeWithInf) {
  obs::Registry reg;
  auto& h = reg.histogram("sim.decision_us", {10.0, 100.0, 1000.0});
  h.observe(5.0);    // bucket le=10
  h.observe(50.0);   // bucket le=100
  h.observe(70.0);   // bucket le=100
  h.observe(5000.0); // overflow
  const std::string out = renderPrometheus(nullptr, &reg);
  EXPECT_TRUE(contains(out, "# TYPE sns_sim_decision_us histogram\n"));
  EXPECT_TRUE(contains(out, "sns_sim_decision_us_bucket{le=\"10\"} 1\n"));
  EXPECT_TRUE(contains(out, "sns_sim_decision_us_bucket{le=\"100\"} 3\n"));
  EXPECT_TRUE(contains(out, "sns_sim_decision_us_bucket{le=\"1000\"} 3\n"));
  EXPECT_TRUE(contains(out, "sns_sim_decision_us_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(contains(out, "sns_sim_decision_us_sum 5125\n"));
  EXPECT_TRUE(contains(out, "sns_sim_decision_us_count 4\n"));
}

TEST(Prometheus, SeriesExportLastValueWithLabels) {
  TimeSeriesStore store(16);
  store.series("cluster.core_util").append(0.0, 0.25);
  store.series("cluster.core_util").append(60.0, 0.75);
  store.series("node.core_occ", {{"node", "0"}}).append(0.0, 0.5);
  const std::string out = renderPrometheus(&store, nullptr);
  EXPECT_TRUE(contains(out, "# TYPE sns_cluster_core_util gauge\n"));
  EXPECT_TRUE(contains(out, "sns_cluster_core_util 0.75\n"));
  EXPECT_TRUE(contains(out, "sns_node_core_occ{node=\"0\"} 0.5\n"));
  // Dots in series names are sanitized out of the metric name.
  EXPECT_FALSE(contains(out, "cluster.core_util 0.75"));
}

TEST(Prometheus, LabelValuesAreEscaped) {
  TimeSeriesStore store(16);
  store.series("x", {{"k", "a\"b\\c"}}).append(0.0, 1.0);
  const std::string out = renderPrometheus(&store, nullptr);
  EXPECT_TRUE(contains(out, "sns_x{k=\"a\\\"b\\\\c\"} 1\n"));
}

TEST(Prometheus, EmptyInputsProduceEmptyOutput) {
  EXPECT_TRUE(renderPrometheus(nullptr, nullptr).empty());
  TimeSeriesStore store(16);
  store.series("never.appended");
  EXPECT_TRUE(renderPrometheus(&store, nullptr).empty());
}

TEST(HtmlReport, SelfContainedWithSeriesCards) {
  TimeSeriesStore store(64);
  for (int i = 0; i < 50; ++i) {
    store.series("cluster.core_util").append(10.0 * i, 0.4 + 0.01 * (i % 7));
    store.series("queue.depth").append(10.0 * i, static_cast<double>(i % 5));
  }
  SloWatchdog wd(SloWatchdog::defaultRules());
  ReportContext ctx;
  ctx.title = "test run";
  ctx.store = &store;
  ctx.watchdog = &wd;
  ctx.summary = {{"policy", "sns"}, {"nodes", "4096"}};
  const std::string html = renderHtmlReport(ctx);

  EXPECT_TRUE(contains(html, "<!doctype html"));
  EXPECT_TRUE(contains(html, "</html>"));
  EXPECT_TRUE(contains(html, "test run"));
  EXPECT_TRUE(contains(html, "cluster.core_util"));
  EXPECT_TRUE(contains(html, "queue.depth"));
  EXPECT_TRUE(contains(html, "<svg"));       // inline sparklines
  EXPECT_TRUE(contains(html, "queue_starvation"));  // SLO table
  // Self-contained: no external fetches of any kind.
  EXPECT_FALSE(contains(html, "http://"));
  EXPECT_FALSE(contains(html, "https://"));
  EXPECT_FALSE(contains(html, "<script src"));
}

TEST(HtmlReport, FlagsDroppedEvents) {
  ReportContext ctx;
  ctx.title = "drops";
  ctx.events_dropped = 123;
  const std::string html = renderHtmlReport(ctx);
  EXPECT_TRUE(contains(html, "123"));
}

TEST(Top, RendersHeadlineRowsAndClampsTime) {
  TimeSeriesStore store(64);
  for (int i = 0; i <= 10; ++i) {
    store.series("cluster.core_util").append(60.0 * i, 0.1 * i);
    store.series("queue.depth").append(60.0 * i, 10.0 - i);
  }
  const std::string out = renderTop(store, 300.0);
  EXPECT_TRUE(contains(out, "t=300.0"));
  EXPECT_TRUE(contains(out, "core utilization"));
  EXPECT_TRUE(contains(out, "queue depth"));
  EXPECT_TRUE(contains(out, "#"));  // occupancy bar

  // Out-of-range times clamp to the sampled window.
  EXPECT_TRUE(contains(renderTop(store, 1e12), "t=600.0"));
  EXPECT_TRUE(contains(renderTop(store, -5.0), "t=0.0"));
}

TEST(Top, PerNodeBarsWhenRecorded) {
  TimeSeriesStore store(64);
  store.series("cluster.core_util").append(0.0, 0.5);
  store.series("node.core_occ", {{"node", "0"}}).append(0.0, 0.25);
  store.series("node.core_occ", {{"node", "1"}}).append(0.0, 1.0);
  const std::string out = renderTop(store, 0.0);
  EXPECT_TRUE(contains(out, "per-node core occupancy"));
  EXPECT_TRUE(contains(out, "node 0"));
  EXPECT_TRUE(contains(out, "node 1"));
}

TEST(Top, EmptyStoreSaysSo) {
  TimeSeriesStore store(16);
  EXPECT_TRUE(contains(renderTop(store, 0.0), "no telemetry samples"));
}

}  // namespace
}  // namespace sns::telemetry
