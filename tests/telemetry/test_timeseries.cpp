#include "sns/telemetry/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sns/util/error.hpp"

namespace sns::telemetry {
namespace {

// A deterministic, non-trivial signal: trend + oscillation.
double signal(int i) { return 10.0 + 0.01 * i + 3.0 * std::sin(0.37 * i); }

TEST(Series, RollupsTrackEveryRawSample) {
  Series s(4);
  for (int i = 0; i < 100; ++i) s.append(i, signal(i));

  double mn = signal(0), mx = signal(0), sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    mn = std::min(mn, signal(i));
    mx = std::max(mx, signal(i));
    sum += signal(i);
  }
  EXPECT_EQ(s.sampleCount(), 100u);
  EXPECT_DOUBLE_EQ(s.last(), signal(99));
  EXPECT_DOUBLE_EQ(s.minSeen(), mn);
  EXPECT_DOUBLE_EQ(s.maxSeen(), mx);
  EXPECT_NEAR(s.mean(), sum / 100.0, 1e-9);
}

TEST(Series, BudgetBoundsRetainedPoints) {
  Series s(8);
  for (int i = 0; i < 10000; ++i) {
    s.append(i, signal(i));
    EXPECT_LE(s.points().size(), 8u);
  }
  // Full time range still covered.
  EXPECT_DOUBLE_EQ(s.points().front().t_first, 0.0);
  EXPECT_DOUBLE_EQ(s.points().back().t_last, 9999.0);
  // Points aggregate 2^level samples each (tail may still be filling).
  const std::uint64_t stride = s.stride();
  for (std::size_t i = 0; i + 1 < s.points().size(); ++i) {
    EXPECT_EQ(s.points()[i].count, stride);
  }
}

TEST(Series, PointAggregatesAreExact) {
  Series s(4);
  for (int i = 0; i < 64; ++i) s.append(i, signal(i));
  // 64 samples at budget 4 -> level 4, stride 16, 4 points.
  ASSERT_EQ(s.points().size(), 4u);
  EXPECT_EQ(s.stride(), 16u);
  for (int p = 0; p < 4; ++p) {
    const SeriesPoint& pt = s.points()[static_cast<std::size_t>(p)];
    double mn = signal(16 * p), mx = mn, sum = 0.0;
    for (int i = 16 * p; i < 16 * (p + 1); ++i) {
      mn = std::min(mn, signal(i));
      mx = std::max(mx, signal(i));
      sum += signal(i);
    }
    EXPECT_DOUBLE_EQ(pt.t_first, 16.0 * p);
    EXPECT_DOUBLE_EQ(pt.t_last, 16.0 * p + 15.0);
    EXPECT_DOUBLE_EQ(pt.min, mn);
    EXPECT_DOUBLE_EQ(pt.max, mx);
    EXPECT_DOUBLE_EQ(pt.sum, sum);
    EXPECT_DOUBLE_EQ(pt.last, signal(16 * p + 15));
    EXPECT_EQ(pt.count, 16u);
  }
}

void expectIdenticalPoints(const Series& a, const Series& b) {
  ASSERT_EQ(a.points().size(), b.points().size());
  ASSERT_EQ(a.level(), b.level());
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    const SeriesPoint& p = a.points()[i];
    const SeriesPoint& q = b.points()[i];
    EXPECT_EQ(p.t_first, q.t_first);
    EXPECT_EQ(p.t_last, q.t_last);
    EXPECT_EQ(p.last, q.last);
    EXPECT_EQ(p.min, q.min);
    EXPECT_EQ(p.max, q.max);
    // Sums are built in different association orders (sequential appends
    // vs pairwise point merges), so they agree to rounding, not bitwise.
    EXPECT_NEAR(p.sum, q.sum, 1e-9 * std::abs(p.sum));
    EXPECT_EQ(p.count, q.count);
  }
}

// The headline property: because merge boundaries are aligned to absolute
// sample indices, the retained points are a pure function of
// (samples, budget) — a series that ran at a large budget and was then
// shrunk covers exactly the same buckets, with identical boundaries and
// order-independent aggregates, as one that was small from the start.
TEST(Series, DownsamplingIsDeterministic) {
  for (int n : {7, 64, 100, 513, 4096, 5000}) {
    Series small(16);
    Series wide(256);
    for (int i = 0; i < n; ++i) {
      small.append(0.5 * i, signal(i));
      wide.append(0.5 * i, signal(i));
    }
    wide.setBudget(16);
    expectIdenticalPoints(small, wide);
  }
}

TEST(Series, AtFindsCoveringPoint) {
  Series s(4);
  for (int i = 0; i < 64; ++i) s.append(i, signal(i));  // stride 16
  EXPECT_EQ(s.at(-1.0), nullptr);
  ASSERT_NE(s.at(0.0), nullptr);
  EXPECT_DOUBLE_EQ(s.at(0.0)->t_first, 0.0);
  EXPECT_DOUBLE_EQ(s.at(15.9)->t_first, 0.0);
  EXPECT_DOUBLE_EQ(s.at(16.0)->t_first, 16.0);
  EXPECT_DOUBLE_EQ(s.at(1e9)->t_first, 48.0);  // clamps to the last point
}

TEST(Series, BudgetBelowTwoRejected) {
  EXPECT_THROW(Series(1), util::PreconditionError);
  Series s(4);
  EXPECT_THROW(s.setBudget(0), util::PreconditionError);
}

TEST(TimeSeriesStore, FindOrCreateAndLabelOrder) {
  TimeSeriesStore store(32);
  Series& a = store.series("cluster.core_util");
  Series& b = store.series("node.core_occ", {{"node", "3"}});
  EXPECT_EQ(&a, &store.series("cluster.core_util"));
  EXPECT_EQ(&b, &store.series("node.core_occ", {{"node", "3"}}));
  EXPECT_NE(&a, &b);
  EXPECT_EQ(store.size(), 2u);

  // Label order is normalized: permuted labels name the same series.
  Series& c = store.series("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&c, &store.series("x", {{"a", "1"}, {"b", "2"}}));

  EXPECT_NE(store.find("cluster.core_util"), nullptr);
  EXPECT_EQ(store.find("nope"), nullptr);
  EXPECT_EQ(store.find("node.core_occ", {{"node", "4"}}), nullptr);
}

TEST(TimeSeriesStore, ReferencesSurviveGrowth) {
  TimeSeriesStore store(8);
  Series& first = store.series("a");
  first.append(0.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    store.series(name);
  }
  EXPECT_DOUBLE_EQ(first.last(), 1.0);  // map nodes are stable
  EXPECT_EQ(&first, &store.series("a"));
}

}  // namespace
}  // namespace sns::telemetry
