#include "sns/telemetry/phase_profiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "sns/util/error.hpp"

namespace sns::telemetry {
namespace {

// Spin long enough for steady_clock to register a nonzero duration.
void burn() {
  volatile int sink = 0;
  for (int i = 0; i < 20000; ++i) sink = sink + i;
}

TEST(PhaseProfiler, FlatStatsAccumulate) {
  PhaseProfiler prof;
  for (int i = 0; i < 3; ++i) {
    ScopedPhase sp(&prof, Phase::kQueueWalk);
    burn();
  }
  const auto& st = prof.stat(Phase::kQueueWalk);
  EXPECT_EQ(st.calls, 3u);
  EXPECT_GT(st.total_ns, 0u);
  EXPECT_EQ(st.self_ns, st.total_ns);  // no children
  EXPECT_GE(st.max_ns, st.total_ns / 3);
  EXPECT_EQ(prof.stat(Phase::kLedgerScan).calls, 0u);
}

TEST(PhaseProfiler, NestingSplitsSelfFromInclusive) {
  PhaseProfiler prof;
  {
    ScopedPhase outer(&prof, Phase::kQueueWalk);
    burn();
    {
      ScopedPhase inner(&prof, Phase::kLedgerScan);
      burn();
    }
    burn();
  }
  const auto& walk = prof.stat(Phase::kQueueWalk);
  const auto& scan = prof.stat(Phase::kLedgerScan);
  // The child's time is inside the parent's inclusive total but subtracted
  // from its self time, so instrumented time is counted exactly once.
  EXPECT_GE(walk.total_ns, scan.total_ns);
  EXPECT_EQ(walk.self_ns + scan.self_ns, prof.totalSelfNs());
  EXPECT_LE(walk.self_ns, walk.total_ns - scan.total_ns);
  // Sum of self == sum of top-level inclusive.
  EXPECT_EQ(prof.totalSelfNs(), walk.total_ns);
}

TEST(PhaseProfiler, FoldedStacksEncodeThePath) {
  PhaseProfiler prof;
  {
    ScopedPhase outer(&prof, Phase::kQueueWalk);
    burn();
    {
      ScopedPhase mid(&prof, Phase::kPlacementCommit);
      burn();
      ScopedPhase inner(&prof, Phase::kContentionSolve);
      burn();
    }
  }
  const std::string folded = prof.foldedStacks();
  EXPECT_NE(folded.find("queue_walk "), std::string::npos);
  EXPECT_NE(folded.find("queue_walk;placement_commit "), std::string::npos);
  EXPECT_NE(
      folded.find("queue_walk;placement_commit;contention_solve "),
      std::string::npos);

  // Each line is "sig self_ns"; the self values sum to the instrumented
  // total, the flamegraph invariant.
  std::istringstream is(folded);
  std::string sig;
  std::uint64_t ns = 0, sum = 0;
  int lines = 0;
  while (is >> sig >> ns) {
    sum += ns;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(sum, prof.totalSelfNs());
}

TEST(PhaseProfiler, SameSignatureMergesAcrossVisits) {
  PhaseProfiler prof;
  for (int i = 0; i < 5; ++i) {
    ScopedPhase outer(&prof, Phase::kQueueWalk);
    ScopedPhase inner(&prof, Phase::kLedgerScan);
    burn();
  }
  // Two unique signatures, not ten.
  const std::string folded = prof.foldedStacks();
  EXPECT_EQ(std::count(folded.begin(), folded.end(), '\n'), 2);
}

TEST(PhaseProfiler, NullProfilerScopeIsANoOp) {
  // The disabled hot path: no profiler attached, no effect, no crash.
  ScopedPhase sp(nullptr, Phase::kContentionSolve);
  SUCCEED();
}

TEST(PhaseProfiler, ExitWithoutEnterRejected) {
  PhaseProfiler prof;
  EXPECT_THROW(prof.exit(), util::PreconditionError);
}

TEST(PhaseProfiler, RenderTableListsActivePhasesOnly) {
  PhaseProfiler prof;
  {
    ScopedPhase sp(&prof, Phase::kRateRefresh);
    burn();
  }
  const std::string table = prof.renderTable();
  EXPECT_NE(table.find("rate_refresh"), std::string::npos);
  EXPECT_EQ(table.find("accounting"), std::string::npos);
}

TEST(PhaseProfiler, ResetClearsEverything) {
  PhaseProfiler prof;
  {
    ScopedPhase sp(&prof, Phase::kAccounting);
    burn();
  }
  prof.reset();
  EXPECT_EQ(prof.stat(Phase::kAccounting).calls, 0u);
  EXPECT_EQ(prof.totalSelfNs(), 0u);
  EXPECT_TRUE(prof.foldedStacks().empty());
}

}  // namespace
}  // namespace sns::telemetry
