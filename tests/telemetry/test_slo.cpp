#include "sns/telemetry/slo.hpp"

#include <gtest/gtest.h>

#include "sns/obs/recorder.hpp"
#include "sns/obs/sink.hpp"
#include "sns/util/error.hpp"

namespace sns::telemetry {
namespace {

ClusterSample healthySample() {
  ClusterSample s;
  s.core_util = 0.8;
  s.way_util = 0.6;
  s.bw_util = 0.5;
  s.busy_nodes = 6;
  s.total_nodes = 8;
  s.running_jobs = 10;
  s.queue_depth = 2;
  s.queue_head_age_s = 30.0;
  s.decision_us_p99 = 500.0;
  return s;
}

const SloStatus& statusOf(const SloWatchdog& wd, SloRule::Kind kind) {
  for (std::size_t i = 0; i < wd.rules().size(); ++i) {
    if (wd.rules()[i].kind == kind) return wd.status()[i];
  }
  ADD_FAILURE() << "rule kind not found";
  static SloStatus empty;
  return empty;
}

TEST(SloWatchdog, StaysSilentOnCleanTrace) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  obs::RingBufferLog log(64);
  obs::Recorder rec(&log);
  wd.setRecorder(&rec);

  for (int i = 0; i < 50; ++i) wd.evaluate(60.0 * i, healthySample());

  EXPECT_FALSE(wd.anyViolation());
  EXPECT_EQ(wd.totalEpisodes(), 0u);
  EXPECT_EQ(log.size(), 0u);
  for (const SloStatus& st : wd.status()) {
    EXPECT_EQ(st.ticks_evaluated, 50u);
    EXPECT_EQ(st.ticks_violated, 0u);
    EXPECT_FALSE(st.in_violation);
  }
}

TEST(SloWatchdog, DecisionLatencyRuleFires) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  ClusterSample s = healthySample();
  s.decision_us_p99 = 25000.0;  // default budget is 10 ms
  wd.evaluate(10.0, s);

  const SloStatus& st = statusOf(wd, SloRule::Kind::kDecisionLatencyP99);
  EXPECT_EQ(st.episodes, 1u);
  EXPECT_TRUE(st.in_violation);
  EXPECT_DOUBLE_EQ(st.first_violation_t, 10.0);
  EXPECT_DOUBLE_EQ(st.worst_observed, 25000.0);
  // The other rules did not fire.
  EXPECT_EQ(statusOf(wd, SloRule::Kind::kQueueStarvation).episodes, 0u);
  EXPECT_EQ(statusOf(wd, SloRule::Kind::kUtilizationCollapse).episodes, 0u);
}

TEST(SloWatchdog, StarvationRuleNeedsAWaitingJob) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  ClusterSample s = healthySample();
  s.queue_head_age_s = 2.0 * 86400.0;  // past the 24 h default
  s.queue_depth = 0;                   // ...but the queue is empty
  wd.evaluate(0.0, s);
  EXPECT_EQ(statusOf(wd, SloRule::Kind::kQueueStarvation).episodes, 0u);

  s.queue_depth = 1;
  wd.evaluate(60.0, s);
  const SloStatus& st = statusOf(wd, SloRule::Kind::kQueueStarvation);
  EXPECT_EQ(st.episodes, 1u);
  EXPECT_DOUBLE_EQ(st.worst_observed, 2.0 * 86400.0);
}

TEST(SloWatchdog, CollapseRuleComparesConsecutiveSamples) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  ClusterSample high = healthySample();
  high.core_util = 0.9;
  ClusterSample low = healthySample();
  low.core_util = 0.2;  // drop of 0.7 > default 0.5
  low.queue_depth = 3;  // with a backlog

  // The very first sample has no predecessor -> never a collapse.
  wd.evaluate(0.0, low);
  EXPECT_EQ(statusOf(wd, SloRule::Kind::kUtilizationCollapse).episodes, 0u);

  wd.evaluate(60.0, high);
  wd.evaluate(120.0, low);
  const SloStatus& st = statusOf(wd, SloRule::Kind::kUtilizationCollapse);
  EXPECT_EQ(st.episodes, 1u);
  EXPECT_NEAR(st.worst_observed, 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(st.last_violation_t, 120.0);
}

TEST(SloWatchdog, CollapseIgnoredWithoutBacklog) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  ClusterSample high = healthySample();
  high.core_util = 0.9;
  ClusterSample low = healthySample();
  low.core_util = 0.1;
  low.queue_depth = 0;  // draining at end of run — not a collapse

  wd.evaluate(0.0, high);
  wd.evaluate(60.0, low);
  EXPECT_EQ(statusOf(wd, SloRule::Kind::kUtilizationCollapse).episodes, 0u);
}

TEST(SloWatchdog, EpisodesAreEdgeTriggered) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  obs::RingBufferLog log(64);
  obs::Recorder rec(&log);
  wd.setRecorder(&rec);

  ClusterSample bad = healthySample();
  bad.decision_us_p99 = 50000.0;
  const ClusterSample good = healthySample();

  // Ten consecutive violating ticks are ONE episode and ONE event...
  for (int i = 0; i < 10; ++i) wd.evaluate(i, bad);
  EXPECT_EQ(wd.totalEpisodes(), 1u);
  EXPECT_EQ(log.size(), 1u);

  // ...recovery then re-violation opens a second episode.
  wd.evaluate(10.0, good);
  wd.evaluate(11.0, bad);
  EXPECT_EQ(wd.totalEpisodes(), 2u);
  EXPECT_EQ(log.size(), 2u);

  const SloStatus& st = statusOf(wd, SloRule::Kind::kDecisionLatencyP99);
  EXPECT_EQ(st.ticks_evaluated, 12u);
  EXPECT_EQ(st.ticks_violated, 11u);
  EXPECT_DOUBLE_EQ(st.first_violation_t, 0.0);
  EXPECT_DOUBLE_EQ(st.last_violation_t, 11.0);
}

TEST(SloWatchdog, ViolationEventCarriesRuleAndValues) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  obs::RingBufferLog log(64);
  obs::Recorder rec(&log);
  wd.setRecorder(&rec);

  ClusterSample s = healthySample();
  s.queue_head_age_s = 100000.0;
  wd.evaluate(777.0, s);

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const obs::Event& e = events[0];
  EXPECT_EQ(e.type, obs::EventType::kSloViolation);
  EXPECT_DOUBLE_EQ(e.time, 777.0);  // stamped with the sample tick time
  EXPECT_DOUBLE_EQ(e.value, 100000.0);
  EXPECT_DOUBLE_EQ(e.value2, 86400.0);
  // The rule's stable name travels in `what` for grep/Perfetto.
  const SloRule* rule = nullptr;
  for (const SloRule& r : wd.rules()) {
    if (r.kind == SloRule::Kind::kQueueStarvation) rule = &r;
  }
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(e.what, rule->name);
  EXPECT_FALSE(e.detail.empty());
}

TEST(SloWatchdog, ResetClearsEpisodesAndHistory) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  ClusterSample bad = healthySample();
  bad.decision_us_p99 = 50000.0;
  wd.evaluate(0.0, bad);
  ASSERT_TRUE(wd.anyViolation());

  wd.reset();
  EXPECT_FALSE(wd.anyViolation());
  for (const SloStatus& st : wd.status()) {
    EXPECT_EQ(st.ticks_evaluated, 0u);
    EXPECT_FALSE(st.in_violation);
  }
  // The collapse rule's previous-sample memory is also gone: a low first
  // sample after reset must not read as a drop from the pre-reset value.
  ClusterSample high = healthySample();
  high.core_util = 0.95;
  wd.evaluate(0.0, high);  // re-seed
  wd.reset();
  ClusterSample low = healthySample();
  low.core_util = 0.1;
  low.queue_depth = 5;
  wd.evaluate(1.0, low);
  EXPECT_EQ(statusOf(wd, SloRule::Kind::kUtilizationCollapse).episodes, 0u);
}

TEST(SloWatchdog, NonPositiveThresholdRejected) {
  SloRule r;
  r.kind = SloRule::Kind::kQueueStarvation;
  r.name = "bad";
  r.threshold = 0.0;
  EXPECT_THROW(SloWatchdog({r}), util::PreconditionError);
}

TEST(SloWatchdog, SummaryListsEveryRule) {
  SloWatchdog wd(SloWatchdog::defaultRules());
  wd.evaluate(0.0, healthySample());
  const std::string out = wd.renderSummary();
  for (const SloRule& r : wd.rules()) {
    EXPECT_NE(out.find(r.name), std::string::npos) << r.name;
  }
}

}  // namespace
}  // namespace sns::telemetry
