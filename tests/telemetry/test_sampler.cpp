#include "sns/telemetry/sampler.hpp"

#include <gtest/gtest.h>

#include "sns/telemetry/timeseries.hpp"
#include "sns/util/error.hpp"

namespace sns::telemetry {
namespace {

ClusterSample sampleWithDepth(std::size_t depth) {
  ClusterSample s;
  s.core_util = 0.5;
  s.queue_depth = depth;
  return s;
}

TEST(Sampler, DueBeforeFirstBoundary) {
  TimeSeriesStore store(64);
  Sampler sampler(store);  // period 1 s, first boundary at t = 0
  EXPECT_TRUE(sampler.due(0.0));
  sampler.advanceTo(0.0, sampleWithDepth(0));
  EXPECT_EQ(sampler.ticks(), 1u);
  EXPECT_FALSE(sampler.due(0.5));
  EXPECT_TRUE(sampler.due(1.0));
}

TEST(Sampler, CatchUpStampsEveryBoundaryInTheGap) {
  TimeSeriesStore store(64);
  SamplerConfig cfg;
  cfg.period_s = 10.0;
  Sampler sampler(store, cfg);

  // The producer jumps from t=0 straight to t=35: the piecewise-constant
  // state is stamped at 0, 10, 20, 30 — four ticks, one call.
  sampler.advanceTo(35.0, sampleWithDepth(7));
  EXPECT_EQ(sampler.ticks(), 4u);

  const Series* depth = store.find("queue.depth");
  ASSERT_NE(depth, nullptr);
  ASSERT_EQ(depth->points().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(depth->points()[i].t_first, 10.0 * i);
    EXPECT_DOUBLE_EQ(depth->points()[i].last, 7.0);
  }

  // The next boundary is 40; a call before it records nothing.
  sampler.advanceTo(39.0, sampleWithDepth(0));
  EXPECT_EQ(sampler.ticks(), 4u);
  sampler.advanceTo(40.0, sampleWithDepth(0));
  EXPECT_EQ(sampler.ticks(), 5u);
}

TEST(Sampler, HeadlineSeriesAllRecorded) {
  TimeSeriesStore store(64);
  Sampler sampler(store);
  ClusterSample s;
  s.core_util = 0.25;
  s.way_util = 0.5;
  s.bw_util = 0.75;
  s.busy_nodes = 3;
  s.running_jobs = 4;
  s.queue_depth = 5;
  s.queue_head_age_s = 6.0;
  s.solver_hit_rate = 0.875;
  s.decision_us_p99 = 42.0;
  sampler.advanceTo(0.0, s);

  const struct { const char* name; double v; } expected[] = {
      {"cluster.core_util", 0.25}, {"cluster.way_util", 0.5},
      {"cluster.bw_util", 0.75},   {"cluster.busy_nodes", 3.0},
      {"jobs.running", 4.0},       {"queue.depth", 5.0},
      {"queue.head_age_s", 6.0},   {"solver.hit_rate", 0.875},
      {"sched.decision_us_p99", 42.0},
  };
  for (const auto& e : expected) {
    const Series* ser = store.find(e.name);
    ASSERT_NE(ser, nullptr) << e.name;
    EXPECT_EQ(ser->sampleCount(), 1u) << e.name;
    EXPECT_DOUBLE_EQ(ser->last(), e.v) << e.name;
  }
}

TEST(Sampler, PerNodeSeriesAndAggregates) {
  TimeSeriesStore store(64);
  Sampler sampler(store);
  ClusterSample s;
  s.node_core_occ = {0.2, 0.8, 0.5};
  sampler.advanceTo(0.0, s);

  EXPECT_DOUBLE_EQ(store.find("node.core_occ_min")->last(), 0.2);
  EXPECT_DOUBLE_EQ(store.find("node.core_occ_max")->last(), 0.8);
  EXPECT_NEAR(store.find("node.core_occ_mean")->last(), 0.5, 1e-12);
  for (int nd = 0; nd < 3; ++nd) {
    const Series* per =
        store.find("node.core_occ", {{"node", std::to_string(nd)}});
    ASSERT_NE(per, nullptr) << nd;
    EXPECT_DOUBLE_EQ(per->last(), s.node_core_occ[static_cast<std::size_t>(nd)]);
  }
  EXPECT_EQ(store.find("node.core_occ", {{"node", "3"}}), nullptr);
}

TEST(Sampler, WantsPerNodeHonorsLimit) {
  TimeSeriesStore store(64);
  SamplerConfig cfg;
  cfg.per_node_limit = 64;
  Sampler sampler(store, cfg);
  EXPECT_TRUE(sampler.wantsPerNode(8));
  EXPECT_TRUE(sampler.wantsPerNode(64));
  EXPECT_FALSE(sampler.wantsPerNode(65));
  EXPECT_FALSE(sampler.wantsPerNode(4096));
}

TEST(Sampler, WatchdogRunsOncePerTick) {
  TimeSeriesStore store(64);
  SamplerConfig cfg;
  cfg.period_s = 5.0;
  Sampler sampler(store, cfg);
  SloWatchdog wd(SloWatchdog::defaultRules());
  sampler.attachWatchdog(&wd);

  sampler.advanceTo(22.0, sampleWithDepth(1));  // ticks at 0, 5, 10, 15, 20
  EXPECT_EQ(sampler.ticks(), 5u);
  for (const SloStatus& st : wd.status()) EXPECT_EQ(st.ticks_evaluated, 5u);
}

TEST(Sampler, RecordScalarBypassesPeriodicMachinery) {
  TimeSeriesStore store(64);
  Sampler sampler(store);
  sampler.recordScalar("uberun.batch_wall_s", 12.5, 3.25);
  EXPECT_EQ(sampler.ticks(), 0u);
  const Series* s = store.find("uberun.batch_wall_s");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->points().back().t_first, 12.5);
  EXPECT_DOUBLE_EQ(s->last(), 3.25);
}

TEST(Sampler, ResetRestartsAtZeroAndResetsWatchdog) {
  TimeSeriesStore store(64);
  Sampler sampler(store);
  SloWatchdog wd(SloWatchdog::defaultRules());
  sampler.attachWatchdog(&wd);
  ClusterSample bad = sampleWithDepth(1);
  bad.decision_us_p99 = 1e6;
  sampler.advanceTo(3.0, bad);
  ASSERT_TRUE(wd.anyViolation());

  sampler.reset();
  EXPECT_EQ(sampler.ticks(), 0u);
  EXPECT_TRUE(sampler.due(0.0));  // the next run samples t = 0 again
  EXPECT_FALSE(wd.anyViolation());
}

TEST(Sampler, NonPositivePeriodRejected) {
  TimeSeriesStore store(64);
  SamplerConfig cfg;
  cfg.period_s = 0.0;
  EXPECT_THROW(Sampler(store, cfg), util::PreconditionError);
}

}  // namespace
}  // namespace sns::telemetry
