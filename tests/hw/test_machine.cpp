#include "sns/hw/machine.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::hw {
namespace {

TEST(SaturationCurve, MatchesPaperAnchors) {
  const auto s = SaturationCurve::xeonE5_2680v4();
  // §2 text: 18.80 GB/s at 1 core, 37.17 at 2, 118.26 at 28.
  EXPECT_NEAR(s.aggregate(1), 18.80, 1e-9);
  EXPECT_NEAR(s.aggregate(2), 37.17, 1e-9);
  EXPECT_NEAR(s.aggregate(28), 118.26, 1e-9);
  EXPECT_NEAR(s.peak(), 118.26, 1e-9);
}

TEST(SaturationCurve, PerCoreBandwidthDeclines) {
  const auto s = SaturationCurve::xeonE5_2680v4();
  double prev = s.perCore(1);
  for (int c = 2; c <= 28; ++c) {
    EXPECT_LE(s.perCore(c), prev + 1e-9) << "at " << c << " cores";
    prev = s.perCore(c);
  }
  // §2: at 28 cores per-core bandwidth dips to ~22.45% of single-core peak.
  EXPECT_NEAR(s.perCore(28) / s.perCore(1), 0.2245, 0.005);
}

TEST(SaturationCurve, AggregateIsNonDecreasing) {
  const auto s = SaturationCurve::xeonE5_2680v4();
  double prev = 0.0;
  for (double c = 0.0; c <= 28.0; c += 0.5) {
    EXPECT_GE(s.aggregate(c) + 1e-12, prev);
    prev = s.aggregate(c);
  }
}

TEST(SaturationCurve, EarlyGrowthIsNearLinear) {
  const auto s = SaturationCurve::xeonE5_2680v4();
  // Doubling 1 -> 2 cores nearly doubles bandwidth (paper: 18.8 -> 37.17).
  EXPECT_GT(s.aggregate(2) / s.aggregate(1), 1.9);
  // But 8 -> 16 cores gains little: the bottleneck has set in.
  EXPECT_LT(s.aggregate(16) / s.aggregate(8), 1.2);
}

TEST(SaturationCurve, FractionalCoresInterpolate) {
  const auto s = SaturationCurve::xeonE5_2680v4();
  const double mid = s.aggregate(1.5);
  EXPECT_GT(mid, s.aggregate(1));
  EXPECT_LT(mid, s.aggregate(2));
}

TEST(SaturationCurve, RejectsInvalidQueries) {
  const auto s = SaturationCurve::xeonE5_2680v4();
  EXPECT_THROW(s.aggregate(-1.0), util::PreconditionError);
  EXPECT_THROW(s.perCore(0.0), util::PreconditionError);
}

TEST(SaturationCurve, RejectsDecreasingCurve) {
  EXPECT_THROW(SaturationCurve(util::Curve({{0.0, 5.0}, {1.0, 3.0}})),
               util::PreconditionError);
  EXPECT_THROW(SaturationCurve(util::Curve({{1.0, 3.0}})),
               util::PreconditionError);
}

TEST(MachineConfig, PaperTestbedDefaults) {
  const auto m = MachineConfig::xeonE5_2680v4();
  EXPECT_EQ(m.cores, 28);
  EXPECT_EQ(m.llc_ways, 20);
  EXPECT_DOUBLE_EQ(m.llc_mb, 35.0);
  EXPECT_EQ(m.min_ways_per_job, 2);
  EXPECT_EQ(m.max_llc_partitions, 16);
  EXPECT_NEAR(m.peakBandwidth(), 118.26, 1e-9);
  EXPECT_DOUBLE_EQ(m.net_bw_gbps, 6.8);
}

TEST(ClusterConfig, TestbedAndSized) {
  const auto c = ClusterConfig::testbed8();
  EXPECT_EQ(c.nodes, 8);
  EXPECT_EQ(c.totalCores(), 8 * 28);
  EXPECT_EQ(ClusterConfig::sized(4096).nodes, 4096);
}

}  // namespace
}  // namespace sns::hw
