#include "sns/trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sns/util/error.hpp"

namespace sns::trace {
namespace {

TEST(TraceGen, DefaultsMatchPaperFiltering) {
  util::Rng rng(1);
  const auto trace = generateTrace(rng, TraceGenParams{});
  // §6.4: 7,044 jobs over 1,900 hours, none above 4,096 nodes.
  EXPECT_EQ(trace.size(), 7044u);
  for (const auto& j : trace) {
    EXPECT_GE(j.submit_s, 0.0);
    EXPECT_LE(j.submit_s, 1900.0 * 3600.0);
    EXPECT_GE(j.nodes, 1);
    EXPECT_LE(j.nodes, 4096);
    EXPECT_GE(j.duration_s, 300.0);
    EXPECT_LE(j.duration_s, 48.0 * 3600.0);
  }
}

TEST(TraceGen, SortedBySubmitTime) {
  util::Rng rng(2);
  const auto trace = generateTrace(rng, TraceGenParams{});
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].submit_s, trace[i - 1].submit_s);
  }
}

TEST(TraceGen, NodeCountsArePowersOfTwo) {
  util::Rng rng(3);
  const auto trace = generateTrace(rng, TraceGenParams{});
  for (const auto& j : trace) {
    EXPECT_EQ(j.nodes & (j.nodes - 1), 0) << j.nodes;
  }
}

TEST(TraceGen, NodeDistributionSkewsSmall) {
  util::Rng rng(4);
  const auto trace = generateTrace(rng, TraceGenParams{});
  std::size_t small = 0, big = 0;
  for (const auto& j : trace) {
    if (j.nodes <= 16) ++small;
    if (j.nodes >= 1024) ++big;
  }
  EXPECT_GT(small, trace.size() / 2);
  EXPECT_GT(big, 0u);  // capability jobs exist
  EXPECT_LT(big, small);
}

TEST(TraceGen, DeterministicForSeed) {
  util::Rng a(5), b(5);
  const auto t1 = generateTrace(a, TraceGenParams{});
  const auto t2 = generateTrace(b, TraceGenParams{});
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1[i].submit_s, t2[i].submit_s);
    EXPECT_EQ(t1[i].nodes, t2[i].nodes);
    EXPECT_DOUBLE_EQ(t1[i].duration_s, t2[i].duration_s);
  }
}

TEST(TraceGen, CustomParamsRespected) {
  util::Rng rng(6);
  TraceGenParams p;
  p.jobs = 100;
  p.horizon_hours = 10.0;
  p.max_nodes = 64;
  const auto trace = generateTrace(rng, p);
  EXPECT_EQ(trace.size(), 100u);
  for (const auto& j : trace) {
    EXPECT_LE(j.nodes, 64);
    EXPECT_LE(j.submit_s, 36000.0);
  }
}

TEST(TraceGen, ValidatesParams) {
  util::Rng rng(7);
  TraceGenParams bad;
  bad.jobs = 0;
  EXPECT_THROW(generateTrace(rng, bad), util::PreconditionError);
  TraceGenParams bad2;
  bad2.horizon_hours = 0.0;
  EXPECT_THROW(generateTrace(rng, bad2), util::PreconditionError);
}

TEST(TraceGen, ArrivalsSpreadAcrossHorizon) {
  util::Rng rng(8);
  const auto trace = generateTrace(rng, TraceGenParams{});
  const double horizon = 1900.0 * 3600.0;
  std::size_t first_half = 0;
  for (const auto& j : trace) first_half += j.submit_s < horizon / 2 ? 1 : 0;
  const double frac = static_cast<double>(first_half) / trace.size();
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

}  // namespace
}  // namespace sns::trace
