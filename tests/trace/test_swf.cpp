#include "sns/trace/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sns/util/error.hpp"
#include "sns/util/rng.hpp"

namespace sns::trace {
namespace {

constexpr const char* kSample =
    "; Parallel Workloads Archive style header\n"
    "; Computer: test cluster\n"
    "\n"
    "1 0 5 3600 56 -1 -1 56 3600 -1 1 1 1 -1 1 -1 -1 -1\n"
    "2 100 0 7200 28 -1 -1 28 7200 -1 1 2 1 -1 1 -1 -1 -1\n"
    "3 200 0 100 1 -1 -1 1 100 -1 1 3 1 -1 1 -1 -1 -1\n"       // sequential
    "4 300 0 0 56 -1 -1 56 0 -1 0 4 1 -1 1 -1 -1 -1\n"         // zero runtime
    "5 400 0 500 229376 -1 -1 229376 500 -1 1 5 1 -1 1 -1 -1 -1\n"  // 8192 nodes
    "6 50 0 1800 112 -1 -1 112 1800 -1 1 6 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesAndFiltersLikeThePaper) {
  std::istringstream in(kSample);
  const auto jobs = parseSwf(in);
  // Jobs 3 (sequential), 4 (zero runtime) and 5 (> 4096 nodes) are dropped.
  ASSERT_EQ(jobs.size(), 3u);
  // Sorted by submit time: job 6 (t=50) comes before job 2 (t=100).
  EXPECT_DOUBLE_EQ(jobs[0].submit_s, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].submit_s, 50.0);
  EXPECT_DOUBLE_EQ(jobs[2].submit_s, 100.0);
  // 56 procs / 28 cores -> 2 nodes; 112 -> 4 nodes; 28 -> 1 node.
  EXPECT_EQ(jobs[0].nodes, 2);
  EXPECT_EQ(jobs[1].nodes, 4);
  EXPECT_EQ(jobs[2].nodes, 1);
  EXPECT_DOUBLE_EQ(jobs[0].duration_s, 3600.0);
}

TEST(Swf, PartialProcessorCountsRoundUpToNodes) {
  std::istringstream in("1 0 0 100 29 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1\n");
  const auto jobs = parseSwf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].nodes, 2);  // 29 cores needs 2 28-core nodes
}

TEST(Swf, SequentialJobsKeptWhenRequested) {
  SwfOptions opts;
  opts.parallel_only = false;
  std::istringstream in("1 0 0 100 1 -1 -1 -1 -1 -1 1 1 1 -1 1 -1 -1 -1\n");
  EXPECT_EQ(parseSwf(in, opts).size(), 1u);
}

TEST(Swf, MalformedLineReportsLineNumber) {
  std::istringstream in("; header\n1 0 5\n");
  try {
    parseSwf(in);
    FAIL() << "should have thrown";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(loadSwf("/nonexistent/trace.swf"), util::DataError);
}

TEST(Swf, RoundTripThroughSwfText) {
  util::Rng rng(9);
  TraceGenParams params;
  params.jobs = 200;
  params.horizon_hours = 50.0;
  const auto original = generateTrace(rng, params);

  std::istringstream in(toSwf(original, 28));
  SwfOptions opts;
  opts.parallel_only = false;
  opts.min_duration_s = 0.0;
  const auto back = parseSwf(in, opts);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i].submit_s, original[i].submit_s, 1e-6);
    EXPECT_NEAR(back[i].duration_s, original[i].duration_s, 1e-6);
    EXPECT_EQ(back[i].nodes, original[i].nodes);
  }
}

TEST(Swf, EmptyAndCommentOnlyStreams) {
  std::istringstream empty("");
  EXPECT_TRUE(parseSwf(empty).empty());
  std::istringstream comments("; nothing\n; here\n\n");
  EXPECT_TRUE(parseSwf(comments).empty());
}

}  // namespace
}  // namespace sns::trace
