#include "sns/trace/replay.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sns/profile/profiler.hpp"
#include "sns/util/error.hpp"

namespace sns::trace {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db16_.put(prof.profileProgram(p, 16));
  }

  std::vector<TraceJob> smallTrace(int jobs) {
    util::Rng rng(21);
    TraceGenParams p;
    p.jobs = jobs;
    p.horizon_hours = 20.0;
    p.max_nodes = 8;
    p.logdur_mu = 6.5;
    return generateTrace(rng, p);
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db16_;
};

TEST_F(ReplayTest, MappingPreservesTraceFields) {
  util::Rng rng(1);
  const auto trace = smallTrace(50);
  const auto jobs = mapTraceToJobs(rng, trace, 0.5, 28);
  ASSERT_EQ(jobs.size(), trace.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs[i].submit_time, trace[i].submit_s);
    EXPECT_EQ(jobs[i].procs, trace[i].nodes * 28);
    EXPECT_DOUBLE_EQ(jobs[i].ce_time_override, trace[i].duration_s);
    EXPECT_DOUBLE_EQ(jobs[i].alpha, 0.9);
  }
}

TEST_F(ReplayTest, ScalingRatioBiasesSampling) {
  util::Rng rng(2);
  const auto trace = smallTrace(400);
  const TraceMapping mapping;
  const std::set<std::string> scaling(mapping.scaling.begin(), mapping.scaling.end());

  const auto high = mapTraceToJobs(rng, trace, 0.9, 28);
  std::size_t n_scaling = 0;
  for (const auto& j : high) n_scaling += scaling.count(j.program);
  EXPECT_NEAR(static_cast<double>(n_scaling) / high.size(), 0.9, 0.06);

  const auto low = mapTraceToJobs(rng, trace, 0.5, 28);
  n_scaling = 0;
  for (const auto& j : low) n_scaling += scaling.count(j.program);
  EXPECT_NEAR(static_cast<double>(n_scaling) / low.size(), 0.5, 0.08);
}

TEST_F(ReplayTest, ExtremeRatiosAreDegenerate) {
  util::Rng rng(3);
  const auto trace = smallTrace(50);
  const TraceMapping mapping;
  const std::set<std::string> scaling(mapping.scaling.begin(), mapping.scaling.end());
  for (const auto& j : mapTraceToJobs(rng, trace, 1.0, 28)) {
    EXPECT_TRUE(scaling.count(j.program)) << j.program;
  }
  for (const auto& j : mapTraceToJobs(rng, trace, 0.0, 28)) {
    EXPECT_FALSE(scaling.count(j.program)) << j.program;
  }
  EXPECT_THROW(mapTraceToJobs(rng, trace, 1.5, 28), util::PreconditionError);
}

TEST_F(ReplayTest, SynthesizedProfilesCoverEveryJobShape) {
  util::Rng rng(4);
  const auto jobs = mapTraceToJobs(rng, smallTrace(100), 0.7, 28);
  const auto db = synthesizeTraceProfiles(db16_, 16, jobs, est_);
  for (const auto& j : jobs) {
    const auto* p = db.find(j.program, j.procs);
    ASSERT_NE(p, nullptr) << j.program << ":" << j.procs;
    EXPECT_EQ(p->cls, db16_.find(j.program, 16)->cls);
    // Scale 1 exists and is normalized to 1.0 (relative timing).
    ASSERT_NE(p->at(1), nullptr);
    EXPECT_NEAR(p->at(1)->exclusive_time, 1.0, 1e-9);
  }
}

TEST_F(ReplayTest, SynthesizedProfilesKeepRelativeOrdering) {
  util::Rng rng(5);
  const auto jobs = mapTraceToJobs(rng, smallTrace(100), 0.7, 28);
  const auto db = synthesizeTraceProfiles(db16_, 16, jobs, est_);
  for (const auto& j : jobs) {
    const auto* synth = db.find(j.program, j.procs);
    const auto* ref = db16_.find(j.program, 16);
    EXPECT_EQ(synth->scalesByPerformance(), ref->scalesByPerformance())
        << j.program;
  }
}

TEST_F(ReplayTest, SynthesisRequiresReferenceProfile) {
  std::vector<app::JobSpec> jobs = {{"MG", 28, 0.9, 0.0, 1, 100.0}};
  profile::ProfileDatabase empty;
  EXPECT_THROW(synthesizeTraceProfiles(empty, 16, jobs, est_), util::PreconditionError);
}

TEST_F(ReplayTest, SmallTraceSimulationRunsUnderAllPolicies) {
  util::Rng rng(6);
  const auto trace = smallTrace(60);
  const auto jobs = mapTraceToJobs(rng, trace, 0.7, 28);
  const auto db = synthesizeTraceProfiles(db16_, 16, jobs, est_);
  for (auto kind : {sched::PolicyKind::kCE, sched::PolicyKind::kSNS}) {
    const auto res = simulateTrace(est_, lib_, db, jobs, 16, kind);
    EXPECT_EQ(res.jobs.size(), jobs.size());
    for (const auto& j : res.jobs) EXPECT_TRUE(j.completed());
  }
}

TEST_F(ReplayTest, TraceCeRunTimeMatchesTraceDuration) {
  util::Rng rng(7);
  auto trace = smallTrace(10);
  const auto jobs = mapTraceToJobs(rng, trace, 0.5, 28);
  const auto db = synthesizeTraceProfiles(db16_, 16, jobs, est_);
  const auto res = simulateTrace(est_, lib_, db, jobs, 64, sched::PolicyKind::kCE);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(res.jobs[i].runTime(), jobs[i].ce_time_override,
                jobs[i].ce_time_override * 0.01)
        << jobs[i].program;
  }
}

}  // namespace
}  // namespace sns::trace
