// End-to-end pipeline tests: calibrate programs -> profile them -> persist
// the database -> schedule job sequences under CE/CS/SNS -> check global
// invariants of the resulting schedules.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "sns/app/library.hpp"
#include "sns/app/workload_gen.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/sim/metrics.hpp"

namespace sns {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  EndToEnd() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.02;  // realistic measurement noise
    profile::Profiler prof(est_, cfg, 2024);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
    // The paper's sequences also contain 28-process jobs; profile those too
    // for the flexible programs.
    for (const char* n : {"WC", "TS", "NW"}) {
      db_.put(prof.profileProgram(app::findProgram(lib_, n), 28));
    }
  }

  sim::SimResult run(sched::PolicyKind kind, const std::vector<app::JobSpec>& seq) {
    sim::SimConfig cfg;
    cfg.nodes = 8;
    cfg.policy = kind;
    sim::ClusterSimulator sim(est_, lib_, db_, cfg);
    return sim.run(seq);
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(EndToEnd, ScheduleInvariantsHoldForAllPolicies) {
  util::Rng rng(71);
  const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
  for (auto kind : {sched::PolicyKind::kCE, sched::PolicyKind::kCS,
                    sched::PolicyKind::kSNS}) {
    const auto res = run(kind, seq);
    ASSERT_EQ(res.jobs.size(), seq.size());
    for (const auto& j : res.jobs) {
      // Causality.
      EXPECT_GE(j.start, j.submit);
      EXPECT_GT(j.finish, j.start);
      EXPECT_LE(j.finish, res.makespan + 1e-6);
      // Placement sanity.
      EXPECT_GE(j.placement.nodeCount(), 1);
      EXPECT_LE(j.placement.nodeCount(), 8);
      EXPECT_GE(j.placement.procs_per_node, 1);
      EXPECT_LE(j.placement.procs_per_node, 28);
      EXPECT_GE(j.placement.procs_per_node * j.placement.nodeCount(),
                j.spec.procs);
    }
    // Node-seconds can never exceed cluster capacity x makespan.
    EXPECT_LE(res.busy_node_seconds, 8.0 * res.makespan + 1e-6);
  }
}

TEST_F(EndToEnd, ExclusivityRespectedUnderCe) {
  util::Rng rng(72);
  const auto seq = app::randomSequence(rng, lib_, 15, 0.9);
  const auto res = run(sched::PolicyKind::kCE, seq);
  // Reconstruct node usage intervals; exclusive jobs must never overlap on
  // a node.
  for (std::size_t a = 0; a < res.jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < res.jobs.size(); ++b) {
      const auto& ja = res.jobs[a];
      const auto& jb = res.jobs[b];
      const bool time_overlap =
          ja.start < jb.finish - 1e-9 && jb.start < ja.finish - 1e-9;
      if (!time_overlap) continue;
      for (int na : ja.placement.nodes) {
        for (int nb : jb.placement.nodes) {
          EXPECT_NE(na, nb) << "jobs " << ja.id << " and " << jb.id
                            << " shared node " << na << " under CE";
        }
      }
    }
  }
}

TEST_F(EndToEnd, SnsWayAllocationsNeverOversubscribe) {
  util::Rng rng(73);
  const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
  const auto res = run(sched::PolicyKind::kSNS, seq);
  // At any pair-overlap moment, the ways allocated on a node must fit.
  // Check every job-finish boundary as a probe point.
  for (const auto& probe : res.jobs) {
    const double t = probe.start + 1e-6;
    std::map<int, int> ways_at_t;
    std::map<int, int> cores_at_t;
    for (const auto& j : res.jobs) {
      if (j.start <= t && t < j.finish) {
        for (int nd : j.placement.nodes) {
          ways_at_t[nd] += j.placement.ways;
          cores_at_t[nd] += j.placement.procs_per_node;
        }
      }
    }
    for (const auto& [nd, w] : ways_at_t) {
      EXPECT_LE(w, 20) << "node " << nd << " at t=" << t;
    }
    for (const auto& [nd, c] : cores_at_t) {
      EXPECT_LE(c, 28) << "node " << nd << " at t=" << t;
    }
  }
}

TEST_F(EndToEnd, ProfileDatabaseSurvivesDiskRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "sns_e2e_db.json";
  db_.saveFile(path.string());
  const auto loaded = profile::ProfileDatabase::loadFile(path.string());
  std::filesystem::remove(path);

  util::Rng rng(74);
  const auto seq = app::randomSequence(rng, lib_, 10, 0.9);
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kSNS;
  sim::ClusterSimulator sim_mem(est_, lib_, db_, cfg);
  sim::ClusterSimulator sim_disk(est_, lib_, loaded, cfg);
  const auto a = sim_mem.run(seq);
  const auto b = sim_disk.run(seq);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST_F(EndToEnd, NoStarvationWithAgeLimit) {
  // A stream of small jobs must not starve a full-cluster job forever.
  std::vector<app::JobSpec> seq;
  app::JobSpec big{"WC", 28 * 8, 0.9, 0.0, 1, 0.0};
  seq.push_back(big);
  for (int i = 0; i < 30; ++i) {
    seq.push_back({"HC", 16, 0.9, 0.0, 1, 0.0});
  }
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = sched::PolicyKind::kCS;
  cfg.age_limit_s = 300.0;
  sim::ClusterSimulator sim(est_, lib_, db_, cfg);
  const auto res = sim.run(seq);
  for (const auto& j : res.jobs) EXPECT_TRUE(j.completed());
}

TEST_F(EndToEnd, AlphaSweepChangesAllocations) {
  // Tighter alpha -> more ways demanded -> fewer co-runners. Verify the
  // allocation for a cache-sensitive job grows with alpha.
  int prev_ways = 0;
  for (double alpha : {0.5, 0.7, 0.9, 0.99}) {
    const std::vector<app::JobSpec> seq = {{"CG", 16, alpha, 0.0, 1, 0.0}};
    const auto res = run(sched::PolicyKind::kSNS, seq);
    EXPECT_GE(res.jobs[0].placement.ways, prev_ways);
    prev_ways = res.jobs[0].placement.ways;
  }
  EXPECT_GT(prev_ways, 8);
}

}  // namespace
}  // namespace sns
