// Reproduction tests for the paper's quantitative claims. Each test cites
// the figure/table it checks. We assert the *shape* — who wins, roughly by
// how much, where crossovers fall — not exact testbed numbers.
#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/app/workload_gen.hpp"
#include "sns/profile/demand.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/sim/metrics.hpp"
#include "sns/util/stats.hpp"

namespace sns {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  PaperClaims() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
    for (const char* n : {"WC", "TS", "NW", "HC", "BW"}) {
      db_.put(prof.profileProgram(app::findProgram(lib_, n), 28));
    }
  }

  sim::SimResult run(sched::PolicyKind kind, const std::vector<app::JobSpec>& seq) {
    sim::SimConfig cfg;
    cfg.nodes = 8;
    cfg.policy = kind;
    sim::ClusterSimulator sim(est_, lib_, db_, cfg);
    return sim.run(seq);
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(PaperClaims, Fig1MotivatingMix) {
  // MG (x5), 16 HC instances, TS — CE uses 3 nodes; SNS packs them onto 2
  // with MG and TS *faster* than exclusive and HC only slightly slower,
  // cutting node-seconds by roughly a third.
  // Submission order MG, TS, HC lets the neutral HC job fill the residual
  // cores on both nodes, reproducing the paper's layout.
  std::vector<app::JobSpec> seq = {{"MG", 16, 0.9, 0.0, 5, 0.0},
                                   {"TS", 16, 0.9, 0.0, 1, 0.0},
                                   {"HC", 16, 0.9, 0.0, 1, 0.0}};
  // The paper's demo compares CE on 3 nodes vs SNS on 2 nodes.
  sim::SimConfig ce_cfg;
  ce_cfg.nodes = 3;
  ce_cfg.policy = sched::PolicyKind::kCE;
  sim::ClusterSimulator ce_sim(est_, lib_, db_, ce_cfg);
  const auto ce = ce_sim.run(seq);

  sim::SimConfig sns_cfg;
  sns_cfg.nodes = 2;
  sns_cfg.policy = sched::PolicyKind::kSNS;
  sim::ClusterSimulator sns_sim(est_, lib_, db_, sns_cfg);
  const auto sns = sns_sim.run(seq);

  // CE: three exclusive single-node jobs.
  for (const auto& j : ce.jobs) EXPECT_EQ(j.placement.nodeCount(), 1);
  // SNS: everything coexists on the two nodes.
  for (const auto& j : sns.jobs) EXPECT_LE(j.placement.nodeCount(), 2);

  EXPECT_LT(sns.jobs[0].runTime(), ce.jobs[0].runTime());         // MG faster
  EXPECT_LT(sns.jobs[1].runTime(), ce.jobs[1].runTime() * 1.02);  // TS >= CE
  EXPECT_LT(sns.jobs[2].runTime(), ce.jobs[2].runTime() * 1.15);  // HC mild loss
  EXPECT_LT(sns.makespan, ce.makespan * 1.15);
  // Node-seconds drop substantially (paper: -34.58%).
  EXPECT_LT(sns.busy_node_seconds, ce.busy_node_seconds * 0.85);
}

TEST_F(PaperClaims, Fig12CacheSensitivityDiversity) {
  // Ways needed for 90% performance span the whole range: 2 (EP, HC),
  // ~3 (MG), mid (LU, BW, WC), high (CG, BFS, NW).
  const auto mach = est_.machine();
  std::map<std::string, int> w90;
  for (const auto& p : lib_) {
    const double full = 1.0 / est_.solo(p, 16, 1, 20).time;
    for (int w = 2; w <= 20; ++w) {
      if (1.0 / est_.solo(p, 16, 1, w).time >= 0.9 * full) {
        w90[p.name] = w;
        break;
      }
    }
  }
  EXPECT_EQ(w90["EP"], 2);
  EXPECT_EQ(w90["HC"], 2);
  EXPECT_LE(w90["MG"], 4);
  EXPECT_GE(w90["CG"], 9);
  EXPECT_GE(w90["BFS"], 9);
  EXPECT_GE(w90["NW"], 9);
  (void)mach;
}

TEST_F(PaperClaims, Fig13ScalingClassCensus) {
  // 5 scaling, 1 compact, the rest neutral — exactly the paper's split.
  int scaling = 0, compact = 0, neutral = 0;
  for (const auto& p : lib_) {
    const auto* prof = db_.find(p.name, 16);
    ASSERT_NE(prof, nullptr);
    switch (prof->cls) {
      case profile::ScalingClass::kScaling: ++scaling; break;
      case profile::ScalingClass::kCompact: ++compact; break;
      case profile::ScalingClass::kNeutral: ++neutral; break;
      default: FAIL();
    }
  }
  EXPECT_EQ(scaling, 5);
  EXPECT_EQ(compact, 1);
  EXPECT_EQ(neutral, 6);
}

TEST_F(PaperClaims, Fig14ThroughputImprovement) {
  // §6.2: CS improves throughput over CE (avg +13.7%), SNS more (+19.8%).
  util::Rng rng(2019);
  std::vector<double> cs_gain, sns_gain;
  for (int i = 0; i < 5; ++i) {
    const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
    const auto ce = run(sched::PolicyKind::kCE, seq);
    const auto cs = run(sched::PolicyKind::kCS, seq);
    const auto sns = run(sched::PolicyKind::kSNS, seq);
    cs_gain.push_back(cs.throughput() / ce.throughput());
    sns_gain.push_back(sns.throughput() / ce.throughput());
  }
  EXPECT_GT(util::mean(cs_gain), 1.02);
  EXPECT_GT(util::mean(sns_gain), 1.08);
  EXPECT_GT(util::mean(sns_gain), util::mean(cs_gain));
}

TEST_F(PaperClaims, Fig16RunTimeDistribution) {
  // SNS keeps average normalized run time below CS's, and CS produces the
  // worst co-location outliers (paper: up to 3.5x slowdowns under CS).
  util::Rng rng(1337);
  double sns_avg_sum = 0.0, cs_avg_sum = 0.0, cs_worst = 0.0, sns_worst = 0.0;
  const int seqs = 4;
  for (int i = 0; i < seqs; ++i) {
    const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
    const auto ce = run(sched::PolicyKind::kCE, seq);
    const auto cs = run(sched::PolicyKind::kCS, seq);
    const auto sns = run(sched::PolicyKind::kSNS, seq);
    sns_avg_sum += sim::geomeanRunTimeRatio(sns, ce);
    cs_avg_sum += sim::geomeanRunTimeRatio(cs, ce);
    cs_worst = std::max(cs_worst, util::maxOf(sim::runTimeRatios(cs, ce)));
    sns_worst = std::max(sns_worst, util::maxOf(sim::runTimeRatios(sns, ce)));
  }
  EXPECT_LT(sns_avg_sum / seqs, cs_avg_sum / seqs);
  // SNS's resource awareness avoids CS's worst-case blowups.
  EXPECT_LT(sns_worst, cs_worst + 0.5);
  // SNS average run time stays within the paper's 17.2%-over-CE envelope
  // (we allow a modest margin).
  EXPECT_LT(sns_avg_sum / seqs, 1.25);
}

TEST_F(PaperClaims, Fig17Fig18LoadBalanceSmoothing) {
  // SNS smooths per-node bandwidth: variance (stddev/peak) drops vs CE
  // (paper: 0.40 -> 0.25 for one sequence; we average several).
  util::Rng rng(17);
  const double peak = est_.machine().peakBandwidth();
  double ce_var = 0.0, sns_var = 0.0;
  const int seqs = 4;
  for (int i = 0; i < seqs; ++i) {
    const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
    ce_var += sim::bandwidthVariance(run(sched::PolicyKind::kCE, seq), peak);
    sns_var += sim::bandwidthVariance(run(sched::PolicyKind::kSNS, seq), peak);
  }
  EXPECT_LT(sns_var / seqs, ce_var / seqs);
}

TEST_F(PaperClaims, Fig19ZeroScalingRatioConvergesToCe) {
  // "For the job sequence without any job benefiting from scaling, SNS
  // schedules all jobs with scale factor 1, converging with CE."
  auto ce_time = [&](const app::JobSpec& j) {
    return est_.soloCE(app::findProgram(lib_, j.program), j.procs, 1).time;
  };
  util::Rng rng(19);
  const auto seq = app::ratioControlledMix(rng, "BW", "HC", 12, 28, 0.0, ce_time);
  const auto ce = run(sched::PolicyKind::kCE, seq);
  const auto sns = run(sched::PolicyKind::kSNS, seq);
  EXPECT_NEAR(sns.meanTurnaround() / ce.meanTurnaround(), 1.0, 0.05);
}

TEST_F(PaperClaims, Fig19RunTimeFallsWithScalingRatio) {
  auto ce_time = [&](const app::JobSpec& j) {
    return est_.soloCE(app::findProgram(lib_, j.program), j.procs, 1).time;
  };
  util::Rng rng(20);
  double prev_run_ratio = 10.0;
  for (double ratio : {0.0, 0.5, 1.0}) {
    const auto seq =
        app::ratioControlledMix(rng, "BW", "HC", 12, 28, ratio, ce_time);
    const auto ce = run(sched::PolicyKind::kCE, seq);
    const auto sns = run(sched::PolicyKind::kSNS, seq);
    const double run_ratio = sns.meanRun() / ce.meanRun();
    EXPECT_LE(run_ratio, prev_run_ratio + 0.03) << "ratio " << ratio;
    prev_run_ratio = run_ratio;
  }
  EXPECT_LT(prev_run_ratio, 0.85);  // all-scaling mix runs much faster
}

TEST_F(PaperClaims, SlowdownViolationsExistButAreRare) {
  // §6.2: 136/720 executions violated the slowdown threshold (profiling
  // error + unenforced bandwidth). Violations should exist but stay a
  // minority under SNS.
  util::Rng rng(21);
  int violations = 0, total = 0;
  for (int i = 0; i < 4; ++i) {
    const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
    const auto ce = run(sched::PolicyKind::kCE, seq);
    const auto sns = run(sched::PolicyKind::kSNS, seq);
    violations += sim::thresholdViolations(sns, ce, 0.9);
    total += static_cast<int>(seq.size());
  }
  EXPECT_LT(violations, total / 2);
}

}  // namespace
}  // namespace sns
