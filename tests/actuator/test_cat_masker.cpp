#include "sns/actuator/cat_masker.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::actuator {
namespace {

class CatMaskerTest : public ::testing::Test {
 protected:
  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  CatMasker masker_{mach_};
};

bool isContiguous(std::uint32_t mask) {
  if (mask == 0) return false;
  while ((mask & 1U) == 0) mask >>= 1;
  return (mask & (mask + 1)) == 0;  // ...0111..1 after shifting
}

TEST_F(CatMaskerTest, AllocatesContiguousRuns) {
  const auto a = masker_.allocate(1, 4);
  const auto b = masker_.allocate(2, 6);
  EXPECT_TRUE(isContiguous(a));
  EXPECT_TRUE(isContiguous(b));
  EXPECT_EQ(a & b, 0u);  // disjoint
  EXPECT_EQ(masker_.freeWays(), 10);
}

TEST_F(CatMaskerTest, FirstFitFromWayZero) {
  EXPECT_EQ(masker_.allocate(1, 3), 0b111u);
  EXPECT_EQ(masker_.allocate(2, 2), 0b11000u);
}

TEST_F(CatMaskerTest, ReleaseRecyclesRuns) {
  masker_.allocate(1, 10);
  masker_.allocate(2, 10);
  masker_.release(1);
  EXPECT_EQ(masker_.freeWays(), 10);
  EXPECT_EQ(masker_.largestFreeRun(), 10);
  EXPECT_EQ(masker_.allocate(3, 10), 0x3FFu);  // reuses the freed low run
}

TEST_F(CatMaskerTest, FragmentationCanBlockDespiteFreeWays) {
  masker_.allocate(1, 8);   // ways 0-7
  masker_.allocate(2, 4);   // ways 8-11
  masker_.allocate(3, 8);   // ways 12-19
  masker_.release(1);
  masker_.release(3);
  // 16 ways free but the largest run is 8: a 10-way request must fail...
  // wait, runs are 0-7 (8) and 12-19 (8) with 8-11 occupied.
  EXPECT_EQ(masker_.freeWays(), 16);
  EXPECT_EQ(masker_.largestFreeRun(), 8);
  EXPECT_THROW(masker_.allocate(4, 10), util::PreconditionError);
  EXPECT_NO_THROW(masker_.allocate(5, 8));
}

TEST_F(CatMaskerTest, EnforcesHardwareLimits) {
  EXPECT_THROW(masker_.allocate(1, 1), util::PreconditionError);   // < min ways
  EXPECT_THROW(masker_.allocate(1, 21), util::PreconditionError);  // > LLC
  masker_.allocate(1, 2);
  EXPECT_THROW(masker_.allocate(1, 2), util::PreconditionError);   // double alloc
  EXPECT_THROW(masker_.release(9), util::PreconditionError);
  EXPECT_THROW(masker_.mask(9), util::PreconditionError);
}

TEST_F(CatMaskerTest, ClosRegisterLimit) {
  hw::MachineConfig tiny = mach_;
  tiny.max_llc_partitions = 2;
  CatMasker m(tiny);
  m.allocate(1, 2);
  m.allocate(2, 2);
  EXPECT_THROW(m.allocate(3, 2), util::PreconditionError);
}

TEST_F(CatMaskerTest, HexRendering) {
  EXPECT_EQ(CatMasker::toHex(0x3), "0x00003");
  EXPECT_EQ(CatMasker::toHex(0xFFFFF), "0xfffff");
}

TEST_F(CatMaskerTest, ExhaustiveFillAndDrain) {
  // 10 jobs x 2 ways fill the cache exactly.
  for (JobId j = 0; j < 10; ++j) EXPECT_NO_THROW(masker_.allocate(j, 2));
  EXPECT_EQ(masker_.freeWays(), 0);
  EXPECT_THROW(masker_.allocate(99, 2), util::PreconditionError);
  for (JobId j = 0; j < 10; ++j) masker_.release(j);
  EXPECT_EQ(masker_.freeWays(), 20);
  EXPECT_EQ(masker_.largestFreeRun(), 20);
}

}  // namespace
}  // namespace sns::actuator
