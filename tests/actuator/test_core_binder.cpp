#include "sns/actuator/core_binder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sns/util/error.hpp"

namespace sns::actuator {
namespace {

class CoreBinderTest : public ::testing::Test {
 protected:
  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  CoreBinder binder_{mach_};
};

TEST_F(CoreBinderTest, BindsRequestedCount) {
  const auto cores = binder_.bind(1, 16);
  EXPECT_EQ(cores.size(), 16u);
  EXPECT_EQ(binder_.freeCores(), 12);
}

TEST_F(CoreBinderTest, SocketBalancedSplit) {
  const auto cores = binder_.bind(1, 16);
  int socket0 = 0, socket1 = 0;
  for (int c : cores) (c < 14 ? socket0 : socket1)++;
  EXPECT_EQ(socket0, 8);
  EXPECT_EQ(socket1, 8);
}

TEST_F(CoreBinderTest, OddCountNearlyBalanced) {
  const auto cores = binder_.bind(1, 7);
  int socket0 = 0, socket1 = 0;
  for (int c : cores) (c < 14 ? socket0 : socket1)++;
  EXPECT_LE(std::abs(socket0 - socket1), 1);
}

TEST_F(CoreBinderTest, NoOverlapBetweenJobs) {
  const auto a = binder_.bind(1, 10);
  const auto b = binder_.bind(2, 10);
  std::set<int> all(a.begin(), a.end());
  for (int c : b) EXPECT_TRUE(all.insert(c).second) << "core " << c << " reused";
  EXPECT_EQ(all.size(), 20u);
}

TEST_F(CoreBinderTest, UnbindFreesCores) {
  binder_.bind(1, 20);
  binder_.unbind(1);
  EXPECT_EQ(binder_.freeCores(), 28);
  EXPECT_FALSE(binder_.bound(1));
  const auto again = binder_.bind(2, 28);
  EXPECT_EQ(again.size(), 28u);
}

TEST_F(CoreBinderTest, OverflowRejected) {
  binder_.bind(1, 20);
  EXPECT_THROW(binder_.bind(2, 9), util::PreconditionError);
  EXPECT_NO_THROW(binder_.bind(3, 8));
}

TEST_F(CoreBinderTest, DoubleBindAndUnknownUnbindRejected) {
  binder_.bind(1, 4);
  EXPECT_THROW(binder_.bind(1, 4), util::PreconditionError);
  EXPECT_THROW(binder_.unbind(99), util::PreconditionError);
  EXPECT_THROW(binder_.binding(99), util::PreconditionError);
}

TEST_F(CoreBinderTest, BindingLookupReturnsSortedCores) {
  binder_.bind(5, 6);
  const auto& b = binder_.binding(5);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST_F(CoreBinderTest, FragmentedFreeListStillBinds) {
  binder_.bind(1, 10);
  binder_.bind(2, 10);
  binder_.unbind(1);
  const auto c = binder_.bind(3, 14);
  EXPECT_EQ(c.size(), 14u);
  std::set<int> mine(c.begin(), c.end());
  for (int core : binder_.binding(2)) {
    EXPECT_EQ(mine.count(core), 0u);
  }
}

}  // namespace
}  // namespace sns::actuator
