// Unit tests for the ledger's incremental candidate pruning (the selection
// cache behind SimOptFlags::incremental_prune) and the sharded parallel
// scan (parallel_select). Both are bit-identity optimizations: every
// cached or sharded answer must equal the one a fresh serial scan returns.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "sns/actuator/resource_ledger.hpp"
#include "sns/util/rng.hpp"
#include "sns/util/thread_pool.hpp"

namespace sns::actuator {
namespace {

class SelectionCacheTest : public ::testing::Test {
 protected:
  SelectionCacheTest() { ledger_.setSelectionCache(true); }
  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  ResourceLedger ledger_{8, mach_};
};

TEST_F(SelectionCacheTest, RepeatedQueryHitsAndMatches) {
  const NodeAllocation req{4, 2, 5.0, false, 0.0};
  const auto first = ledger_.selectNodes(3, req, 1.0);
  EXPECT_EQ(ledger_.selectionCacheMisses(), 1u);
  const auto again = ledger_.selectNodes(3, req, 1.0);
  EXPECT_EQ(ledger_.selectionCacheHits(), 1u);
  EXPECT_EQ(first, again);
}

TEST_F(SelectionCacheTest, DistinctQueriesDoNotCollide) {
  const NodeAllocation req{4, 2, 5.0, false, 0.0};
  ledger_.selectNodes(3, req, 1.0);
  ledger_.selectNodes(2, req, 1.0);       // different count
  ledger_.selectNodes(3, req, 2.0);       // different beta
  NodeAllocation wider = req;
  wider.ways = 4;
  ledger_.selectNodes(3, wider, 1.0);     // different request
  EXPECT_EQ(ledger_.selectionCacheHits(), 0u);
  EXPECT_EQ(ledger_.selectionCacheMisses(), 4u);
}

TEST_F(SelectionCacheTest, AllocationInRangeInvalidates) {
  const NodeAllocation req{4, 2, 5.0, false, 0.0};
  const auto first = ledger_.selectNodes(3, req, 1.0);
  // Allocating on a previously-idle node changes the scored set: the next
  // identical query must rescan, and its answer must reflect the change.
  ledger_.allocate(first[0], 1, {27, 0, 0.0, false});
  const auto after = ledger_.selectNodes(3, req, 1.0);
  EXPECT_EQ(ledger_.selectionCacheHits(), 0u);
  EXPECT_TRUE(std::find(after.begin(), after.end(), first[0]) == after.end());
}

TEST_F(SelectionCacheTest, IrrelevantAllocationKeepsEntryValid) {
  // Fill node 7 down to 2 idle cores. A 10-core query never reads nodes
  // with fewer than 10 idle cores, so later mutations entirely below that
  // range must not invalidate its cached answer.
  ledger_.allocate(7, 1, {26, 0, 0.0, false});
  const NodeAllocation req{10, 2, 5.0, false, 0.0};
  const auto first = ledger_.selectNodes(3, req, 1.0);
  ledger_.allocate(7, 2, {1, 0, 0.0, false});  // 2 -> 1 idle, below range
  const auto again = ledger_.selectNodes(3, req, 1.0);
  EXPECT_EQ(ledger_.selectionCacheHits(), 1u);
  EXPECT_EQ(first, again);
}

TEST_F(SelectionCacheTest, EmptyResultStaysEmptyUntilRelease) {
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, n + 1, {26, 0, 0.0, false});
  const NodeAllocation req{8, 2, 5.0, false, 0.0};
  EXPECT_TRUE(ledger_.selectNodes(2, req, 1.0).empty());
  // Failure is monotone under further allocations: the cached miss serves.
  ledger_.allocate(0, 100, {1, 0, 0.0, false});
  EXPECT_TRUE(ledger_.selectNodes(2, req, 1.0).empty());
  EXPECT_EQ(ledger_.selectionCacheHits(), 1u);
  // A release can unblock the spec, so the entry must drop.
  ledger_.release(1, 2);
  ledger_.release(2, 3);
  const auto after = ledger_.selectNodes(2, req, 1.0);
  EXPECT_EQ(ledger_.selectionCacheHits(), 1u);  // no new hit: rescan happened
  ASSERT_EQ(after.size(), 2u);
}

TEST_F(SelectionCacheTest, EmptyResultSurvivesIrrelevantRelease) {
  // Two residents per node: a 20-core job and a 6-core job (2 idle). A
  // 10-core query is empty. Releasing the small job raises idle to 8 —
  // still below the query's range — so the failure certificate holds and
  // the repeat is a cache hit. Releasing the big job (idle 22 >= 10)
  // must drop it.
  for (int n = 0; n < 8; ++n) {
    ledger_.allocate(n, 100 + n, {20, 0, 0.0, false});
    ledger_.allocate(n, 200 + n, {6, 0, 0.0, false});
  }
  const NodeAllocation req{10, 2, 5.0, false, 0.0};
  EXPECT_TRUE(ledger_.selectNodes(2, req, 1.0).empty());
  ledger_.release(3, 203);  // 2 -> 8 idle, below the scanned range
  EXPECT_TRUE(ledger_.selectNodes(2, req, 1.0).empty());
  EXPECT_EQ(ledger_.selectionCacheHits(), 1u);
  ledger_.release(3, 103);  // 8 -> 28 idle: can now satisfy the query
  ledger_.release(4, 104);
  EXPECT_EQ(ledger_.selectNodes(2, req, 1.0).size(), 2u);
  EXPECT_EQ(ledger_.selectionCacheHits(), 1u);  // rescan, not a stale hit
}

TEST_F(SelectionCacheTest, ReleaseIdleWatermarkTracksFreedNodes) {
  ledger_.allocate(0, 1, {20, 0, 0.0, false});
  ledger_.allocate(0, 2, {6, 0, 0.0, false});
  ledger_.allocate(1, 3, {27, 0, 0.0, false});
  EXPECT_EQ(ledger_.takeReleaseIdleWatermark(), -1);  // no release yet
  ledger_.release(0, 2);   // node 0: 2 -> 8 idle
  ledger_.release(1, 3);   // node 1: 1 -> 28 idle
  EXPECT_EQ(ledger_.takeReleaseIdleWatermark(), 28);
  EXPECT_EQ(ledger_.takeReleaseIdleWatermark(), -1);  // take resets
  ledger_.release(0, 1);   // node 0: 8 -> 28... minus job 1's 20 cores
  EXPECT_EQ(ledger_.takeReleaseIdleWatermark(), 28);
}

TEST_F(SelectionCacheTest, QueryCoreFloorTracksSmallestRequest) {
  ledger_.resetQueryCoreFloor();
  EXPECT_EQ(ledger_.queryCoreFloor(), std::numeric_limits<int>::max());
  ledger_.selectNodes(2, NodeAllocation{12, 0, 0.0, false, 0.0}, 1.0);
  ledger_.selectNodes(1, NodeAllocation{4, 2, 5.0, false, 0.0}, 1.0);
  ledger_.feasibleNodes(NodeAllocation{9, 0, 0.0, false, 0.0});
  EXPECT_EQ(ledger_.queryCoreFloor(), 4);
  ledger_.resetQueryCoreFloor();
  EXPECT_EQ(ledger_.queryCoreFloor(), std::numeric_limits<int>::max());
}

TEST_F(SelectionCacheTest, ExclusiveRequestsBypassCache) {
  const NodeAllocation req{28, 0, 0.0, true, 0.0};
  ledger_.selectNodes(8, req, 1.0);
  ledger_.selectNodes(8, req, 1.0);
  EXPECT_EQ(ledger_.selectionCacheHits(), 0u);
  EXPECT_EQ(ledger_.selectionCacheMisses(), 0u);
}

TEST_F(SelectionCacheTest, AlignmentQueriesCachedSeparately) {
  const NodeAllocation req{4, 2, 5.0, false, 0.0};
  const auto ranked = ledger_.selectNodes(3, req, 1.0);
  const auto aligned = ledger_.selectNodesByAlignment(3, req);
  EXPECT_EQ(ledger_.selectionCacheMisses(), 2u);  // distinct kinds, no mix
  EXPECT_EQ(ledger_.selectNodesByAlignment(3, req), aligned);
  EXPECT_EQ(ledger_.selectNodes(3, req, 1.0), ranked);
  EXPECT_EQ(ledger_.selectionCacheHits(), 2u);
}

TEST_F(SelectionCacheTest, AuditAcceptsFreshCacheRejectsNothing) {
  const NodeAllocation req{4, 2, 5.0, false, 0.0};
  ledger_.selectNodes(3, req, 1.0);
  ledger_.selectNodesByAlignment(2, req);
  EXPECT_TRUE(ledger_.auditSelectionCache().empty());
  ledger_.allocate(0, 1, {8, 4, 10.0, false});
  // Stale-but-invalid entries are skipped by the audit, not reported.
  EXPECT_TRUE(ledger_.auditSelectionCache().empty());
}

// Randomized cross-check: a caching ledger and a cache-free ledger driven
// through the same mutation/query stream must answer identically at every
// step. This is the unit-level version of the simulator equivalence suite.
TEST(SelectionCacheRandomized, MatchesUncachedLedgerExactly) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  ResourceLedger cached(16, mach);
  cached.setSelectionCache(true);
  ResourceLedger plain(16, mach);
  util::Rng rng(42);
  int next_job = 1;
  std::vector<std::pair<int, int>> live;  // (node, job)
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.uniformInt(0, 9));
    if (op < 3 && !live.empty()) {
      const auto [nd, job] = live[static_cast<std::size_t>(rng.uniformInt(
          0, static_cast<std::int64_t>(live.size()) - 1))];
      cached.release(nd, job);
      plain.release(nd, job);
      live.erase(std::remove(live.begin(), live.end(), std::make_pair(nd, job)),
                 live.end());
    } else if (op < 6) {
      // ways: 0 (unpartitioned) or >= min_ways_per_job.
      const NodeAllocation alloc{static_cast<int>(rng.uniformInt(1, 8)),
                                 2 * static_cast<int>(rng.uniformInt(0, 2)),
                                 2.0 * static_cast<double>(rng.uniformInt(0, 5)),
                                 false, 0.0};
      const auto nodes = plain.selectNodes(1, alloc, 1.0);
      if (nodes.empty()) continue;
      cached.allocate(nodes[0], next_job, alloc);
      plain.allocate(nodes[0], next_job, alloc);
      live.emplace_back(nodes[0], next_job);
      ++next_job;
    } else {
      const NodeAllocation req{static_cast<int>(rng.uniformInt(1, 12)),
                               static_cast<int>(rng.uniformInt(0, 6)),
                               3.0 * static_cast<double>(rng.uniformInt(0, 4)),
                               false, 0.0};
      const int count = static_cast<int>(rng.uniformInt(1, 4));
      const double beta = 0.5 * static_cast<double>(rng.uniformInt(1, 4));
      // Each query runs twice back-to-back: the repeat is served from the
      // cache (same version, no mutation in between) and must still match
      // the cache-free ledger.
      for (int rep = 0; rep < 2; ++rep) {
        EXPECT_EQ(cached.selectNodes(count, req, beta),
                  plain.selectNodes(count, req, beta))
            << "step " << step << " rep " << rep;
        EXPECT_EQ(cached.selectNodesByAlignment(count, req),
                  plain.selectNodesByAlignment(count, req))
            << "step " << step << " rep " << rep;
      }
      EXPECT_TRUE(cached.auditSelectionCache().empty()) << "step " << step;
    }
  }
  EXPECT_GT(cached.selectionCacheHits(), 0u);
}

// The sharded parallel scan must reproduce the serial scan bit-for-bit:
// fixed shard boundaries and an ordered merge make the result independent
// of worker timing.
TEST(ParallelSelect, ShardedScanMatchesSerial) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  util::ThreadPool pool(3);
  ResourceLedger parallel(512, mach);
  parallel.setSearchPool(&pool, /*min_parallel_nodes=*/1);
  ResourceLedger serial(512, mach);
  util::Rng rng(7);
  // Random partial load so buckets are populated unevenly.
  for (int nd = 0; nd < 512; ++nd) {
    if (rng.uniformInt(0, 2) == 0) continue;
    const NodeAllocation alloc{static_cast<int>(rng.uniformInt(1, 27)),
                               2 * static_cast<int>(rng.uniformInt(0, 5)),
                               static_cast<double>(rng.uniformInt(0, 60)),
                               false, 0.0};
    parallel.allocate(nd, nd + 1, alloc);
    serial.allocate(nd, nd + 1, alloc);
  }
  for (int cores = 1; cores <= 28; cores += 3) {
    const NodeAllocation req{cores, 2, 5.0, false, 0.0};
    EXPECT_EQ(parallel.feasibleNodes(req), serial.feasibleNodes(req))
        << "cores " << cores;
    for (int count : {1, 7, 64, 300}) {
      EXPECT_EQ(parallel.selectNodes(count, req, 1.0),
                serial.selectNodes(count, req, 1.0))
          << "cores " << cores << " count " << count;
      EXPECT_EQ(parallel.selectNodesByAlignment(count, req),
                serial.selectNodesByAlignment(count, req))
          << "cores " << cores << " count " << count;
    }
  }
}

}  // namespace
}  // namespace sns::actuator
