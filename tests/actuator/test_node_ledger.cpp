#include "sns/actuator/node_ledger.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::actuator {
namespace {

class NodeLedgerTest : public ::testing::Test {
 protected:
  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  NodeLedger ledger_{mach_};
};

TEST_F(NodeLedgerTest, FreshNodeIsIdle) {
  EXPECT_TRUE(ledger_.idle());
  EXPECT_EQ(ledger_.idleCores(), 28);
  EXPECT_EQ(ledger_.freeWays(), 20);
  EXPECT_NEAR(ledger_.freeBandwidth(), 118.26, 1e-9);
  EXPECT_EQ(ledger_.jobCount(), 0);
  EXPECT_DOUBLE_EQ(ledger_.score(2.0), 0.0);
}

TEST_F(NodeLedgerTest, AllocateDeductsResources) {
  ledger_.allocate(1, {8, 4, 30.0, false});
  EXPECT_EQ(ledger_.idleCores(), 20);
  EXPECT_EQ(ledger_.freeWays(), 16);
  EXPECT_NEAR(ledger_.freeBandwidth(), 88.26, 1e-9);
  EXPECT_EQ(ledger_.jobCount(), 1);
  EXPECT_FALSE(ledger_.idle());
}

TEST_F(NodeLedgerTest, ReleaseRestoresResources) {
  ledger_.allocate(1, {8, 4, 30.0, false});
  ledger_.release(1);
  EXPECT_TRUE(ledger_.idle());
  EXPECT_EQ(ledger_.freeWays(), 20);
  EXPECT_NEAR(ledger_.freeBandwidth(), 118.26, 1e-9);
}

TEST_F(NodeLedgerTest, FitsChecksEveryDimension) {
  ledger_.allocate(1, {20, 10, 60.0, false});
  EXPECT_TRUE(ledger_.fits(8, 10, 58.0, false));
  EXPECT_FALSE(ledger_.fits(9, 2, 1.0, false));     // cores exhausted
  EXPECT_FALSE(ledger_.fits(4, 11, 1.0, false));    // ways exhausted
  EXPECT_FALSE(ledger_.fits(4, 2, 60.0, false));    // bandwidth exhausted
}

TEST_F(NodeLedgerTest, ExclusiveBlocksAndIsBlocked) {
  ledger_.allocate(1, {4, 0, 0.0, false});
  EXPECT_FALSE(ledger_.fits(4, 0, 0.0, true));  // busy node refuses exclusive
  ledger_.release(1);
  ledger_.allocate(2, {16, 0, 0.0, true});
  EXPECT_TRUE(ledger_.hasExclusiveJob());
  EXPECT_FALSE(ledger_.fits(1, 0, 0.0, false));  // exclusive blocks everyone
  ledger_.release(2);
  EXPECT_FALSE(ledger_.hasExclusiveJob());
  EXPECT_TRUE(ledger_.fits(28, 20, 118.0, false));
}

TEST_F(NodeLedgerTest, PartitionCountLimit) {
  // 16 CAT partitions max (§5.1); the 17th partitioned job must not fit,
  // even with cores to spare. Use 1-core jobs with the 2-way floor... 16
  // jobs x 2 ways = 32 > 20 ways, so way capacity binds first; check that.
  for (JobId j = 0; j < 10; ++j) ledger_.allocate(j, {1, 2, 0.0, false});
  EXPECT_FALSE(ledger_.fits(1, 2, 0.0, false));  // 20 ways exhausted
  EXPECT_TRUE(ledger_.fits(1, 0, 0.0, false));   // unpartitioned still fits
}

TEST_F(NodeLedgerTest, PartitionLimitBindsForUnpartitionedMix) {
  hw::MachineConfig small = mach_;
  small.max_llc_partitions = 3;
  NodeLedger ledger(small);
  ledger.allocate(0, {1, 2, 0.0, false});
  ledger.allocate(1, {1, 2, 0.0, false});
  ledger.allocate(2, {1, 2, 0.0, false});
  EXPECT_FALSE(ledger.fits(1, 2, 0.0, false));  // partition limit reached
  EXPECT_TRUE(ledger.fits(1, 0, 0.0, false));   // sharing the rest is fine
}

TEST_F(NodeLedgerTest, MinWaysEnforced) {
  EXPECT_THROW(ledger_.allocate(1, {4, 1, 0.0, false}), util::PreconditionError);
  EXPECT_NO_THROW(ledger_.allocate(1, {4, 2, 0.0, false}));
}

TEST_F(NodeLedgerTest, DoubleAllocationRejected) {
  ledger_.allocate(1, {4, 0, 0.0, false});
  EXPECT_THROW(ledger_.allocate(1, {4, 0, 0.0, false}), util::PreconditionError);
}

TEST_F(NodeLedgerTest, ReleaseUnknownJobRejected) {
  EXPECT_THROW(ledger_.release(99), util::PreconditionError);
}

TEST_F(NodeLedgerTest, OccupancyFractions) {
  ledger_.allocate(1, {14, 10, 59.13, false});
  EXPECT_DOUBLE_EQ(ledger_.coreOccupancy(), 0.5);
  EXPECT_DOUBLE_EQ(ledger_.wayOccupancy(), 0.5);
  EXPECT_NEAR(ledger_.bwOccupancy(), 0.5, 1e-4);
  // score = Co + Bo + beta*Wo with beta = 2 -> 0.5 + 0.5 + 1.0 = 2.0
  EXPECT_NEAR(ledger_.score(2.0), 2.0, 1e-3);
}

TEST_F(NodeLedgerTest, DonatedWaysSplitEqually) {
  // Two jobs with 4 + 6 allocated ways leave 10 free: each enjoys +5.
  ledger_.allocate(1, {8, 4, 0.0, false});
  ledger_.allocate(2, {8, 6, 0.0, false});
  EXPECT_DOUBLE_EQ(ledger_.effectiveWays(1), 9.0);
  EXPECT_DOUBLE_EQ(ledger_.effectiveWays(2), 11.0);
}

TEST_F(NodeLedgerTest, DonationReclaimedOnNewArrival) {
  ledger_.allocate(1, {8, 4, 0.0, false});
  EXPECT_DOUBLE_EQ(ledger_.effectiveWays(1), 20.0);  // all free ways donated
  ledger_.allocate(2, {8, 10, 0.0, false});
  EXPECT_DOUBLE_EQ(ledger_.effectiveWays(1), 7.0);  // 4 + 6/2
  EXPECT_DOUBLE_EQ(ledger_.effectiveWays(2), 13.0);
}

TEST_F(NodeLedgerTest, UnpartitionedJobsShareEverything) {
  ledger_.allocate(1, {8, 0, 0.0, false});
  EXPECT_DOUBLE_EQ(ledger_.effectiveWays(1), 0.0);  // 0 = free-for-all marker
}

TEST_F(NodeLedgerTest, AllocationLookup) {
  ledger_.allocate(7, {5, 4, 12.0, false});
  EXPECT_TRUE(ledger_.holds(7));
  const auto& a = ledger_.allocation(7);
  EXPECT_EQ(a.cores, 5);
  EXPECT_EQ(a.ways, 4);
  EXPECT_THROW(ledger_.allocation(8), util::PreconditionError);
}

}  // namespace
}  // namespace sns::actuator
