#include "sns/actuator/resource_ledger.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::actuator {
namespace {

class ResourceLedgerTest : public ::testing::Test {
 protected:
  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  ResourceLedger ledger_{8, mach_};
};

TEST_F(ResourceLedgerTest, FreshClusterAllIdle) {
  EXPECT_EQ(ledger_.nodeCount(), 8);
  EXPECT_EQ(ledger_.idleNodeCount(), 8);
  EXPECT_EQ(ledger_.busyNodeCount(), 0);
  EXPECT_EQ(ledger_.feasibleNodes(28, 20, 118.0, true).size(), 8u);
}

TEST_F(ResourceLedgerTest, AllocateUpdatesCounts) {
  ledger_.allocate(0, 1, {16, 0, 0.0, true});
  EXPECT_EQ(ledger_.idleNodeCount(), 7);
  EXPECT_EQ(ledger_.busyNodeCount(), 1);
  ledger_.release(0, 1);
  EXPECT_EQ(ledger_.idleNodeCount(), 8);
}

TEST_F(ResourceLedgerTest, SelectNodesReturnsEmptyWhenInsufficient) {
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, n + 1, {16, 0, 0.0, true});
  EXPECT_TRUE(ledger_.selectNodes(1, 1, 0, 0.0, false).empty());
  EXPECT_TRUE(ledger_.selectNodes(1, 1, 0, 0.0, true).empty());
}

TEST_F(ResourceLedgerTest, SelectPrefersIdlestNodes) {
  // Load node 0 lightly and node 1 heavily; a new request should go to the
  // idle nodes first, then node 0 before node 1.
  ledger_.allocate(0, 1, {4, 2, 5.0, false});
  ledger_.allocate(1, 2, {20, 10, 80.0, false});
  const auto picked = ledger_.selectNodes(7, 4, 2, 5.0, false);
  ASSERT_EQ(picked.size(), 7u);
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 1) == picked.end());
}

TEST_F(ResourceLedgerTest, BestFitGroupPreservesIdleNodes) {
  // Nodes 0-1 have 12 idle cores, nodes 2-7 are fully idle. A 2-node
  // request needing 12 cores fits entirely in the 12-idle group, which is
  // the tightest feasible group — SNS serves it there and keeps the idle
  // nodes whole for larger jobs (the §4.4 fragmentation-reduction rule).
  ledger_.allocate(0, 1, {16, 0, 0.0, false});
  ledger_.allocate(1, 2, {16, 0, 0.0, false});
  const auto picked = ledger_.selectNodes(2, 12, 0, 0.0, false);
  ASSERT_EQ(picked.size(), 2u);
  for (int id : picked) EXPECT_LT(id, 2);
}

TEST_F(ResourceLedgerTest, WholeRequestServedInsideOneGroup) {
  // Occupy 7 nodes (16 idle cores each); node 7 stays fully idle. A 2-node
  // request that fits in the 16-idle group is served entirely there — the
  // lone idle node is left alone for bigger jobs (the paper's
  // fragmentation-reduction rule).
  for (int n = 0; n < 7; ++n) ledger_.allocate(n, n + 1, {12, 0, 0.0, false});
  const auto picked = ledger_.selectNodes(2, 14, 0, 0.0, false);
  ASSERT_EQ(picked.size(), 2u);
  for (int id : picked) EXPECT_LT(id, 7);
}

TEST_F(ResourceLedgerTest, FallsBackAcrossGroupsWhenNoGroupSuffices) {
  // Two partially-loaded nodes with different idle counts plus one idle
  // node: a 3-node request fits in no single group, so the idlest three
  // nodes cluster-wide are combined.
  for (int n = 0; n < 6; ++n) ledger_.allocate(n, n + 1, {28, 0, 0.0, false});
  ledger_.allocate(6, 7, {8, 0, 0.0, false});
  // Groups now: {0: nodes 0-5}, {20: node 6}, {28: node 7}.
  const auto picked = ledger_.selectNodes(2, 14, 0, 0.0, false);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 6) != picked.end());
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 7) != picked.end());
}

TEST_F(ResourceLedgerTest, BetaWeightsCacheOccupancy) {
  // Node 0: heavy LLC use, light cores; node 1: light LLC, same cores.
  ledger_.allocate(0, 1, {4, 16, 0.0, false});
  ledger_.allocate(1, 2, {4, 2, 0.0, false});
  // With beta = 2 the scorer should prefer node 1.
  const auto picked = ledger_.selectNodes(7, 2, 2, 0.0, false, 2.0);
  ASSERT_EQ(picked.size(), 7u);
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 0) == picked.end());
}

TEST_F(ResourceLedgerTest, ExclusiveSelectionOnlyIdleNodes) {
  ledger_.allocate(0, 1, {1, 0, 0.0, false});
  const auto picked = ledger_.selectNodes(7, 28, 0, 0.0, true);
  ASSERT_EQ(picked.size(), 7u);
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), 0) == picked.end());
  EXPECT_TRUE(ledger_.selectNodes(8, 28, 0, 0.0, true).empty());
}

TEST_F(ResourceLedgerTest, FeasibleRespectsWaysAndBandwidth) {
  ledger_.allocate(0, 1, {4, 18, 0.0, false});
  const auto f = ledger_.feasibleNodes(4, 4, 0.0, false);
  EXPECT_EQ(f.size(), 7u);  // node 0 has only 2 free ways
  ledger_.allocate(1, 2, {4, 0, 110.0, false});
  const auto g = ledger_.feasibleNodes(4, 0, 20.0, false);
  EXPECT_EQ(g.size(), 7u);  // node 1 has ~8 GB/s left; node 0 still fits
}

TEST_F(ResourceLedgerTest, NodeIndexValidation) {
  EXPECT_THROW(ledger_.node(-1), util::PreconditionError);
  EXPECT_THROW(ledger_.node(8), util::PreconditionError);
  EXPECT_THROW(ResourceLedger(0, mach_), util::PreconditionError);
}

TEST_F(ResourceLedgerTest, DeterministicTieBreakByNodeId) {
  const auto picked = ledger_.selectNodes(3, 8, 4, 10.0, false);
  EXPECT_EQ(picked, (std::vector<int>{0, 1, 2}));
}

TEST_F(ResourceLedgerTest, AlignmentSelectionPrefersMatchingResidue) {
  // Node 0 has cores but no cache left; node 1 has cache but few cores.
  ledger_.allocate(0, 1, {2, 18, 0.0, false});
  ledger_.allocate(1, 2, {24, 2, 0.0, false});
  // A cache-hungry 2-core request aligns with node 1's residue.
  NodeAllocation cache_hungry{2, 2, 5.0, false, 0.0};
  const auto a = ledger_.selectNodesByAlignment(1, cache_hungry);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_NE(a[0], 0);  // node 0's 2 free ways score worst on the ways axis
  // A core-hungry, cache-light request ranks idle nodes first, node 1 last.
  NodeAllocation core_hungry{20, 2, 5.0, false, 0.0};
  const auto b = ledger_.selectNodesByAlignment(6, core_hungry);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_TRUE(std::find(b.begin(), b.end(), 1) == b.end());
}

TEST_F(ResourceLedgerTest, AlignmentSelectionHonorsFeasibility) {
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, 100 + n, {27, 0, 0.0, false});
  NodeAllocation req{2, 2, 0.0, false, 0.0};
  EXPECT_TRUE(ledger_.selectNodesByAlignment(1, req).empty());
  EXPECT_THROW(ledger_.selectNodesByAlignment(0, req), util::PreconditionError);
}

TEST(ResourceLedgerLarge, ScalesTo32kNodes) {
  const auto mach = hw::MachineConfig::xeonE5_2680v4();
  ResourceLedger ledger(32768, mach);
  EXPECT_EQ(ledger.idleNodeCount(), 32768);
  // Allocate a 4096-node exclusive job and verify bookkeeping stays fast
  // and correct.
  auto nodes = ledger.selectNodes(4096, 28, 0, 0.0, true);
  ASSERT_EQ(nodes.size(), 4096u);
  for (int nd : nodes) ledger.allocate(nd, 1, {28, 0, 0.0, true});
  EXPECT_EQ(ledger.idleNodeCount(), 32768 - 4096);
  auto more = ledger.selectNodes(28672, 28, 0, 0.0, true);
  EXPECT_EQ(more.size(), 28672u);
  for (int nd : nodes) ledger.release(nd, 1);
  EXPECT_EQ(ledger.idleNodeCount(), 32768);
}

}  // namespace
}  // namespace sns::actuator
