// sns::audit behavior: a consistent scheduler stack audits clean, every
// supported corruption is caught (via the documented debugCorrupt* test
// hooks), fail-fast escalates to AuditError, violations flow into the obs
// event stream, and a full simulator run under per-pass auditing stays
// clean without changing the schedule.
#include "sns/audit/audit.hpp"

#include <gtest/gtest.h>

#include <span>

#include "sns/app/library.hpp"
#include "sns/obs/sink.hpp"
#include "sns/perfmodel/contention.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"

namespace sns::audit {
namespace {

class AuditorTest : public ::testing::Test {
 protected:
  AuditorTest() : lib_(app::programLibrary()), solver_(mach_) {}

  sched::Job job(sched::JobId id, double submit = 0.0) const {
    sched::Job j;
    j.id = id;
    j.spec = {"EP", 16, 0.9, submit, 1, 0.0};
    j.program = &lib_.front();
    j.submit_time = submit;
    return j;
  }

  hw::MachineConfig mach_ = hw::MachineConfig::xeonE5_2680v4();
  std::vector<app::ProgramModel> lib_;
  perfmodel::NodeContentionSolver solver_;
};

TEST_F(AuditorTest, ConsistentStateAuditsClean) {
  actuator::ResourceLedger ledger(8, mach_);
  ledger.allocate(0, 1, {16, 10, 40.0, false});
  ledger.allocate(0, 2, {8, 5, 20.0, false});
  ledger.allocate(3, 3, {28, 0, 0.0, true});
  ledger.release(0, 2);

  sched::JobQueue queue;
  queue.push(job(1, 0.0));
  queue.push(job(2, 5.0));
  queue.push(job(3, 10.0));
  queue.remove(2);

  perfmodel::SolverCache cache(solver_);
  perfmodel::NodeShare share{&lib_.front(), 16, 20.0, 0.0, 1.0};
  cache.solve(std::span<const perfmodel::NodeShare>(&share, 1));
  cache.solve(std::span<const perfmodel::NodeShare>(&share, 1));

  Auditor auditor;
  EXPECT_EQ(auditor.auditSchedulerState(ledger, queue, cache), 0u);
  EXPECT_TRUE(auditor.ok());
  EXPECT_GT(auditor.checksRun(), 0u);
  EXPECT_EQ(auditor.passesRun(), 1u);
  EXPECT_NE(auditor.report().find("all clean"), std::string::npos);
}

TEST_F(AuditorTest, CorruptedLedgerTotalIsCaught) {
  actuator::ResourceLedger ledger(4, mach_);
  ledger.allocate(1, 7, {16, 10, 40.0, false});
  ledger.debugCorruptCoreTotal(+3);

  Auditor auditor;
  EXPECT_GT(auditor.auditLedger(ledger), 0u);
  EXPECT_FALSE(auditor.ok());
  bool found = false;
  for (const Violation& v : auditor.violations()) {
    if (v.check == "ledger.core_total") found = true;
  }
  EXPECT_TRUE(found) << auditor.report();
}

TEST_F(AuditorTest, CorruptedIdleBucketIsCaught) {
  actuator::ResourceLedger ledger(4, mach_);
  ledger.allocate(2, 9, {8, 4, 10.0, false});
  ledger.debugCorruptBucket(2);

  Auditor auditor;
  EXPECT_GT(auditor.auditLedger(ledger), 0u);
  bool found = false;
  for (const Violation& v : auditor.violations()) {
    if (v.check == "ledger.bucket_missing" ||
        v.check == "ledger.bucket_count") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << auditor.report();
}

TEST_F(AuditorTest, CorruptedQueueAccountingIsCaught) {
  sched::JobQueue queue;
  queue.push(job(1));
  queue.push(job(2, 3.0));
  queue.debugCorruptLiveCount(+1);

  Auditor auditor;
  EXPECT_GT(auditor.auditQueue(queue), 0u);
  EXPECT_FALSE(auditor.ok());
}

TEST_F(AuditorTest, CorruptedSolverCacheEntryIsCaught) {
  perfmodel::SolverCache cache(solver_);
  perfmodel::NodeShare share{&lib_.front(), 16, 20.0, 0.0, 1.0};
  cache.solve(std::span<const perfmodel::NodeShare>(&share, 1));
  cache.debugCorruptEntry();

  Auditor auditor;
  EXPECT_GT(auditor.auditSolverCache(cache), 0u);
  EXPECT_FALSE(auditor.ok());
}

TEST_F(AuditorTest, FailFastThrowsOnFirstViolation) {
  actuator::ResourceLedger ledger(4, mach_);
  ledger.allocate(0, 1, {16, 0, 0.0, false});
  ledger.debugCorruptCoreTotal(-2);

  AuditorConfig cfg;
  cfg.fail_fast = true;
  Auditor auditor(cfg);
  EXPECT_THROW(auditor.auditLedger(ledger), AuditError);
  // The violation is recorded before the throw, so the report names it.
  EXPECT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.totalViolations(), 1u);
}

TEST_F(AuditorTest, ViolationsFlowIntoTheObsStream) {
  actuator::ResourceLedger ledger(4, mach_);
  ledger.allocate(0, 1, {16, 0, 0.0, false});
  ledger.debugCorruptCoreTotal(+1);

  obs::RingBufferLog log;
  obs::Recorder rec;
  rec.setSink(&log);
  Auditor auditor;
  auditor.setRecorder(&rec);
  EXPECT_GT(auditor.auditLedger(ledger), 0u);

  bool seen = false;
  for (const obs::Event& e : log.snapshot()) {
    if (e.type == obs::EventType::kAuditViolation) {
      seen = true;
      EXPECT_FALSE(e.what.empty());
      EXPECT_FALSE(e.detail.empty());
    }
  }
  EXPECT_TRUE(seen);
}

TEST_F(AuditorTest, ViolationRecordingIsCappedButCountingIsNot) {
  sched::JobQueue queue;
  queue.push(job(1));
  queue.debugCorruptLiveCount(+1);

  AuditorConfig cfg;
  cfg.max_recorded = 2;
  Auditor auditor(cfg);
  for (int i = 0; i < 5; ++i) auditor.auditQueue(queue);
  EXPECT_LE(auditor.violations().size(), 2u);
  EXPECT_GE(auditor.totalViolations(), 5u);
}

TEST_F(AuditorTest, ConsistentFinishCalendarAuditsClean) {
  sched::FinishCalendar cal;
  cal.reset(8);
  cal.insert(1, 120.0);
  cal.insert(4, 80.0);
  cal.insert(6, 80.0);  // tie with job 4: top must be the smaller id

  Auditor auditor;
  EXPECT_EQ(auditor.auditFinishCalendar(
                cal, {{1, 120.0}, {4, 80.0}, {6, 80.0}}),
            0u);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST_F(AuditorTest, CalendarDisagreementsAreCaught) {
  sched::FinishCalendar cal;
  cal.reset(8);
  cal.insert(1, 120.0);
  cal.insert(4, 80.0);

  // Missing member: job 6 is active but never inserted.
  Auditor a1;
  EXPECT_GT(a1.auditFinishCalendar(cal, {{1, 120.0}, {4, 80.0}, {6, 50.0}}),
            0u);
  bool missing = false;
  for (const Violation& v : a1.violations()) {
    if (v.check == "calendar.membership") missing = true;
  }
  EXPECT_TRUE(missing) << a1.report();

  // Stale key: the recomputed projection moved but the calendar was not
  // re-keyed (one-ULP drift counts — the check is bit-exact).
  Auditor a2;
  EXPECT_GT(a2.auditFinishCalendar(cal, {{1, 120.0}, {4, 80.00000000000001}}),
            0u);
  bool stale = false;
  for (const Violation& v : a2.violations()) {
    if (v.check == "calendar.key") stale = true;
  }
  EXPECT_TRUE(stale) << a2.report();

  // Spurious entry: a finished job still on the calendar shows up as a
  // size disagreement.
  Auditor a3;
  EXPECT_GT(a3.auditFinishCalendar(cal, {{1, 120.0}}), 0u);
  bool spurious = false;
  for (const Violation& v : a3.violations()) {
    if (v.check == "calendar.size") spurious = true;
  }
  EXPECT_TRUE(spurious) << a3.report();

  // check_calendar = false disables the whole family.
  AuditorConfig cfg;
  cfg.check_calendar = false;
  Auditor off(cfg);
  EXPECT_EQ(off.auditFinishCalendar(cal, {{1, 0.0}}), 0u);
  EXPECT_TRUE(off.ok());
}

#if SNS_AUDIT_ENABLED
// End-to-end: a real simulator run with per-pass auditing stays clean and
// produces the same schedule as an unaudited run.
TEST(AuditorSimTest, FullRunAuditsCleanWithoutChangingTheSchedule) {
  auto lib = app::programLibrary();
  perfmodel::Estimator est;
  for (auto& p : lib) est.calibrate(p);
  profile::ProfilerConfig pcfg;
  pcfg.pmu_noise = 0.0;
  profile::Profiler prof(est, pcfg);
  profile::ProfileDatabase db;
  for (const auto& p : lib) db.put(prof.profileProgram(p, 16));
  const std::vector<app::JobSpec> jobs = {{"MG", 16, 0.9, 0.0, 2, 0.0},
                                          {"HC", 28, 0.9, 10.0, 1, 0.0},
                                          {"LU", 16, 0.9, 20.0, 2, 0.0}};

  sim::SimConfig plain;
  plain.nodes = 8;
  plain.policy = sched::PolicyKind::kSNS;
  sim::ClusterSimulator base(est, lib, db, plain);
  const auto base_res = base.run(jobs);

  Auditor auditor;
  sim::SimConfig audited = plain;
  audited.auditor = &auditor;
  sim::ClusterSimulator sim(est, lib, db, audited);
  const auto res = sim.run(jobs);

  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_GT(auditor.passesRun(), 0u);
  EXPECT_GT(auditor.checksRun(), 0u);
  ASSERT_EQ(res.jobs.size(), base_res.jobs.size());
  EXPECT_DOUBLE_EQ(res.makespan, base_res.makespan);
  for (std::size_t i = 0; i < res.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.jobs[i].start, base_res.jobs[i].start);
    EXPECT_DOUBLE_EQ(res.jobs[i].finish, base_res.jobs[i].finish);
  }
}
#endif  // SNS_AUDIT_ENABLED

}  // namespace
}  // namespace sns::audit
