// Unit tests of the interference flight recorder driven by hand-built
// settle/reopen sequences (no simulator): the reconciliation arithmetic,
// the residual constructions that make both attribution axes sum exactly,
// the fixed-budget interval compaction, the census, and renderer
// determinism.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sns/flight/flight.hpp"
#include "sns/flight/report.hpp"

namespace sns::flight {
namespace {

OpenContext makeCtx(double now, double t_inst, double stretch, double net_over,
                    int node, double solo_rate, double raw_rate_pp,
                    std::span<const std::pair<JobId, double>> deltas = {},
                    std::span<const std::pair<JobId, double>> nets = {}) {
  OpenContext ctx;
  ctx.now = now;
  ctx.t_inst = t_inst;
  ctx.rate = 1.0 / t_inst;
  ctx.stretch = stretch;
  ctx.net_over = net_over;
  ctx.bottleneck_node = node;
  ctx.rate_pp = stretch > 0.0 ? solo_rate / stretch : solo_rate;
  ctx.raw_rate_pp = raw_rate_pp;
  ctx.comp_deltas = deltas;
  ctx.net_shares = nets;
  return ctx;
}

TEST(FlightRecorder, UncontendedJobAttributesNothing) {
  FlightRecorder fr;
  fr.beginRun(1, 2);
  fr.onStart(0, "EP", /*submit=*/0.0, /*now=*/5.0, /*solo_comp=*/10.0,
             /*solo_comm=*/2.0, /*solo_wait=*/0.0, /*solo_rate=*/1.0,
             /*alpha=*/0.9);
  fr.settle(0, 5.0);  // the zero-length placeholder settle at start
  // Uncontended: t_inst == t_solo exactly, stretch == net_over == 1.
  fr.reopen(0, makeCtx(5.0, 12.0, 1.0, 1.0, 0, 1.0, 1.0));
  fr.onFinish(0, 17.0);
  fr.endRun(17.0);

  const JobRollup* j = fr.find(0);
  ASSERT_NE(j, nullptr);
  EXPECT_TRUE(j->finished);
  EXPECT_EQ(j->queue_wait, 5.0);
  EXPECT_EQ(j->actual, 12.0);
  EXPECT_EQ(j->t_solo, 12.0);
  EXPECT_EQ(j->attributed, 0.0);
  EXPECT_EQ(j->closure, 0.0);
  EXPECT_EQ(j->stretch, 1.0);
  EXPECT_FALSE(j->bound_violated);
  EXPECT_DOUBLE_EQ(j->work, 1.0);
  // Coverage chain: bit-exact endpoints.
  EXPECT_EQ(j->first_open, j->start);
  EXPECT_EQ(j->last_close, j->finish);
  EXPECT_EQ(fr.census().violations, 0u);
  EXPECT_EQ(fr.census().finished, 1u);
}

// One contended lifetime at a single frozen rate: every decomposition has
// a closed form. solo = 10 comp + 5 comm; stretch 2 with stretch_llc 1.25
// (raw rate 0.8), net_over 1.5 => t_inst = 10*2 + 5*1.5 = 27.5 and the
// deficit D = 12.5 splits f_llc = 0.2, f_membw = 0.6, f_net = 0.2.
TEST(FlightRecorder, ResourceAndCorunnerDecomposition) {
  const std::vector<std::pair<JobId, double>> deltas = {{1, 0.1}, {2, 0.3}};
  const std::vector<std::pair<JobId, double>> nets = {{1, 2.0}};

  FlightRecorder fr;
  fr.beginRun(3, 2);
  fr.onStart(0, "NW", 0.0, 0.0, 10.0, 5.0, 0.0, 1.0, 0.9);
  fr.settle(0, 0.0);
  fr.reopen(0, makeCtx(0.0, 27.5, 2.0, 1.5, 1, 1.0, 0.8, deltas, nets));
  fr.onFinish(0, 27.5);
  fr.endRun(27.5);

  const JobRollup& j = *fr.find(0);
  EXPECT_DOUBLE_EQ(j.attributed, 12.5);
  EXPECT_EQ(j.closure, (j.actual - j.t_solo) - j.attributed);  // replay, exact
  EXPECT_NEAR(j.closure, 0.0, 1e-9);
  EXPECT_NEAR(j.llc_s, 2.5, 1e-9);    // f_llc  = 10*(1.25-1)/12.5 = 0.2
  EXPECT_NEAR(j.membw_s, 7.5, 1e-9);  // f_membw = 10*(2-1.25)/12.5 = 0.6
  EXPECT_NEAR(j.net_s, 2.5, 1e-9);    // f_net  = 5*(1.5-1)/12.5 = 0.2
  // Residual constructions: both axes sum to `attributed` exactly.
  EXPECT_EQ(j.llc_s + j.membw_s + j.net_s + j.other_s, j.attributed);
  double corunner_sum = 0.0;
  for (const CorunnerShare& c : j.corunners) corunner_sum += c.seconds;
  EXPECT_EQ(j.self_s + corunner_sum, j.attributed);
  // Co-runner split: comp 0.8 weighted 1:3 across jobs 1 and 2, net 0.2
  // all to job 1 => job 1 gets 0.2 + 0.2 = 0.4, job 2 gets 0.6.
  ASSERT_EQ(j.corunners.size(), 2u);
  EXPECT_EQ(j.corunners[0].other, 1);
  EXPECT_NEAR(j.corunners[0].seconds, 5.0, 1e-9);
  EXPECT_EQ(j.corunners[1].other, 2);
  EXPECT_NEAR(j.corunners[1].seconds, 7.5, 1e-9);
  EXPECT_NEAR(j.self_s, 0.0, 1e-9);
  // Stretch 1.833 > 1/0.9: the degradation bound is violated.
  EXPECT_NEAR(j.stretch, 27.5 / 15.0, 1e-12);
  EXPECT_TRUE(j.bound_violated);
  EXPECT_EQ(fr.census().violations, 1u);
  EXPECT_EQ(fr.census().worst_job, 0);
  // Bottleneck-node heatmap: the whole deficit landed on node 1.
  ASSERT_EQ(fr.nodeSlowdown().size(), 2u);
  EXPECT_EQ(fr.nodeSlowdown()[0], 0.0);
  EXPECT_DOUBLE_EQ(fr.nodeSlowdown()[1], 12.5);
}

TEST(FlightRecorder, ZeroLengthSettleAppendsNothing) {
  FlightRecorder fr;
  fr.beginRun(1, 1);
  fr.onStart(0, "MG", 0.0, 0.0, 10.0, 0.0, 0.0, 1.0, 0.9);
  fr.settle(0, 0.0);  // placeholder, dt == 0
  fr.reopen(0, makeCtx(0.0, 10.0, 1.0, 1.0, 0, 1.0, 1.0));
  fr.settle(0, 0.0);  // same-instant re-settle (batched refresh duplicate)
  fr.reopen(0, makeCtx(0.0, 10.0, 1.0, 1.0, 0, 1.0, 1.0));
  fr.onFinish(0, 10.0);

  const JobRollup& j = *fr.find(0);
  EXPECT_EQ(j.raw_intervals, 1u);
  ASSERT_EQ(j.intervals.size(), 1u);
  EXPECT_EQ(j.intervals[0].t0, 0.0);
  EXPECT_EQ(j.intervals[0].t1, 10.0);
}

// Fixed-budget compaction: 100 raw settles through a budget-4 store must
// keep <= 4 retained intervals while conserving every additive quantity
// and the [start, finish) coverage.
TEST(FlightRecorder, CompactionConservesSumsWithinBudget) {
  FlightConfig cfg;
  cfg.interval_budget = 4;
  FlightRecorder fr(cfg);
  fr.beginRun(1, 1);
  fr.onStart(0, "HC", 0.0, 0.0, 100.0, 0.0, 0.0, 1.0, 0.9);
  fr.settle(0, 0.0);
  const int kRaw = 100;
  for (int i = 0; i < kRaw; ++i) {
    // Alternating contention: odd spans run at half speed.
    const double t_inst = (i % 2 != 0) ? 200.0 : 100.0;
    const double stretch = (i % 2 != 0) ? 2.0 : 1.0;
    fr.reopen(0, makeCtx(static_cast<double>(i), t_inst, stretch, 1.0, 0, 1.0,
                         1.0 / stretch));
    fr.settle(0, static_cast<double>(i + 1));
  }
  fr.reopen(0, makeCtx(static_cast<double>(kRaw), 100.0, 1.0, 1.0, 0, 1.0, 1.0));
  fr.onFinish(0, static_cast<double>(kRaw));  // zero-length tail: no append
  fr.endRun(static_cast<double>(kRaw));

  const JobRollup& j = *fr.find(0);
  EXPECT_EQ(j.raw_intervals, static_cast<std::uint32_t>(kRaw));
  ASSERT_LE(j.intervals.size(), 4u);
  ASSERT_GE(j.compaction_level, 1u);
  std::uint32_t raws = 0;
  double deficit = 0.0, work = 0.0;
  for (const Interval& iv : j.intervals) {
    raws += iv.raws;
    deficit += iv.deficit;
    work += iv.work;
  }
  EXPECT_EQ(raws, j.raw_intervals);
  EXPECT_NEAR(deficit, j.attributed, 1e-9);
  EXPECT_NEAR(work, j.work, 1e-9);
  EXPECT_EQ(j.intervals.front().t0, 0.0);
  EXPECT_EQ(j.intervals.back().t1, static_cast<double>(kRaw));
  // Retained spans tile the lifetime: each ends where the next begins.
  for (std::size_t i = 0; i + 1 < j.intervals.size(); ++i) {
    EXPECT_EQ(j.intervals[i].t1, j.intervals[i + 1].t0);
  }
}

TEST(FlightRecorder, FindRejectsOutOfRangeIds) {
  FlightRecorder fr;
  fr.beginRun(2, 1);
  EXPECT_NE(fr.find(0), nullptr);
  EXPECT_NE(fr.find(1), nullptr);
  EXPECT_EQ(fr.find(2), nullptr);
  EXPECT_EQ(fr.find(-1), nullptr);
}

// Identical drive sequences must produce byte-identical dumps and
// renderings — the renderer-level determinism contract behind
// `uberun why-slow` and the degradation census.
TEST(FlightRecorder, DumpAndRenderersDeterministic) {
  const std::vector<std::pair<JobId, double>> deltas = {{1, 0.2}};
  auto drive = [&](FlightRecorder& fr) {
    fr.beginRun(2, 2);
    fr.onStart(0, "NW", 0.0, 1.0, 10.0, 5.0, 0.0, 1.0, 0.9);
    fr.settle(0, 1.0);
    fr.reopen(0, makeCtx(1.0, 27.5, 2.0, 1.5, 1, 1.0, 0.8, deltas));
    fr.onStart(1, "EP", 0.0, 2.0, 8.0, 0.0, 0.0, 1.0, 0.9);
    fr.settle(1, 2.0);
    fr.reopen(1, makeCtx(2.0, 8.0, 1.0, 1.0, 0, 1.0, 1.0));
    fr.onFinish(1, 10.0);
    fr.settle(0, 10.0);
    fr.reopen(0, makeCtx(10.0, 15.0, 1.0, 1.0, 1, 1.0, 1.0));
    fr.onFinish(0, 20.0);
    fr.endRun(20.0);
  };
  FlightRecorder a, b;
  drive(a);
  drive(b);
  EXPECT_EQ(a.toJson().dump(), b.toJson().dump());
  EXPECT_EQ(renderWhySlow(a, 0), renderWhySlow(b, 0));
  EXPECT_EQ(renderWhySlowIndex(a, 10), renderWhySlowIndex(b, 10));
  EXPECT_EQ(renderDegradationReport(a), renderDegradationReport(b));
  // beginRun resets: re-driving the same instance reproduces the dump.
  const std::string first = a.toJson().dump();
  drive(a);
  EXPECT_EQ(a.toJson().dump(), first);
}

TEST(FlightRecorder, RenderWhySlowMentionsViolationAndCorunners) {
  const std::vector<std::pair<JobId, double>> deltas = {{2, 0.5}};
  FlightRecorder fr;
  fr.beginRun(3, 1);
  fr.onStart(1, "WC", 0.0, 0.0, 10.0, 0.0, 0.0, 1.0, 0.9);
  fr.settle(1, 0.0);
  fr.reopen(1, makeCtx(0.0, 20.0, 2.0, 1.0, 0, 1.0, 0.5, deltas));
  fr.onFinish(1, 20.0);
  fr.endRun(20.0);

  const std::string text = renderWhySlow(fr, 1);
  EXPECT_NE(text.find("DEGRADATION BOUND VIOLATED"), std::string::npos);
  EXPECT_NE(text.find("\n2"), std::string::npos);  // the charged co-runner row
  const std::string index = renderWhySlowIndex(fr, 5);
  EXPECT_NE(index.find("1 bound violation"), std::string::npos);
}

}  // namespace
}  // namespace sns::flight
