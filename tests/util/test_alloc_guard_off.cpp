// AllocGuard without the interposer: sns_tests deliberately does NOT link
// tests/support/alloc_interposer.cpp, so the guard must report itself
// inert and its counters must stay zero no matter how much the code under
// it allocates. The interposer-on half of this contract lives in
// sns_alloc_tests (tests/alloc/test_alloc_guard.cpp).
#include <gtest/gtest.h>

#include <memory>

#include "sns/util/hot_path.hpp"
#include "tests/support/alloc_guard.hpp"

namespace sns::testing {
namespace {

TEST(AllocGuardOff, ReportsInterposerAbsent) {
  EXPECT_FALSE(AllocGuard::interposerLinked());
}

TEST(AllocGuardOff, CountersStayZeroWithoutInterposer) {
  AllocGuard g;
  auto p = std::make_unique<int>(42);
  p.reset();
  EXPECT_EQ(g.allocations(), 0u);
  EXPECT_EQ(g.bytes(), 0u);
  EXPECT_EQ(g.frees(), 0u);
}

TEST(AllocGuardOff, HotPathScopesStillTrackEntries) {
  // Marker bookkeeping (entries, scope stack) works without an
  // interposer; only allocation attribution needs one. The production
  // library pays the same two TLS writes either way.
  util::hotpath::resetCounters();
  {
    SNS_HOT_PATH("test.off_binary");
    EXPECT_TRUE(util::hotpath::inHotScope());
    auto p = std::make_unique<int>(1);
  }
  EXPECT_FALSE(util::hotpath::inHotScope());
  util::hotpath::Marker* m = util::hotpath::findMarker("test.off_binary");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->entries.load(), 1u);
  EXPECT_EQ(m->allocs.load(), 0u);  // nothing feeds noteAllocation
}

}  // namespace
}  // namespace sns::testing
