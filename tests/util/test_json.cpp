#include "sns/util/json.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::util {
namespace {

TEST(Json, NullDefault) {
  Json j;
  EXPECT_TRUE(j.isNull());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersSerializeWithoutDecimalPoint) {
  EXPECT_EQ(Json(1000000.0).dump(), "1000000");
  EXPECT_EQ(Json(-42).dump(), "-42");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  const Json parsed = Json::parse("\"a\\\"b\\\\c\\nd\\t\\u0041\"");
  EXPECT_EQ(parsed.asString(), "a\"b\\c\nd\tA");
}

TEST(Json, ArrayRoundTrip) {
  Json j(Json::Array{Json(1), Json("two"), Json(true), Json(nullptr)});
  const std::string s = j.dump();
  EXPECT_EQ(s, "[1,\"two\",true,null]");
  EXPECT_EQ(Json::parse(s), j);
}

TEST(Json, ObjectRoundTrip) {
  Json j;
  j["name"] = Json("MG");
  j["time"] = Json(95.5);
  j["scaling"] = Json(true);
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.get("name").asString(), "MG");
  EXPECT_DOUBLE_EQ(back.get("time").asNumber(), 95.5);
  EXPECT_TRUE(back.get("scaling").asBool());
}

TEST(Json, ObjectKeysSortedDeterministically) {
  Json j;
  j["zeta"] = Json(1);
  j["alpha"] = Json(2);
  EXPECT_EQ(j.dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(Json, NestedStructures) {
  const std::string text =
      R"({"profiles":[{"k":1,"curve":[[2,0.5],[20,0.9]]},{"k":2}]})";
  const Json j = Json::parse(text);
  const auto& profiles = j.get("profiles").asArray();
  ASSERT_EQ(profiles.size(), 2u);
  const auto& curve = profiles[0].get("curve").asArray();
  EXPECT_DOUBLE_EQ(curve[1].asArray()[1].asNumber(), 0.9);
}

TEST(Json, PrettyPrintParsesBack) {
  Json j;
  j["a"] = Json(Json::Array{Json(1), Json(2)});
  j["b"] = Json("x");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);
}

TEST(Json, ParseWhitespaceTolerant) {
  const Json j = Json::parse("  {  \"a\" :\n[ 1 , 2 ]\t}  ");
  EXPECT_EQ(j.get("a").asArray().size(), 2u);
}

TEST(Json, ParseNumbers) {
  EXPECT_DOUBLE_EQ(Json::parse("-0.5").asNumber(), -0.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").asNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").asNumber(), 0.025);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), DataError);
  EXPECT_THROW(Json::parse("{"), DataError);
  EXPECT_THROW(Json::parse("[1,]"), DataError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), DataError);
  EXPECT_THROW(Json::parse("tru"), DataError);
  EXPECT_THROW(Json::parse("1 2"), DataError);
  EXPECT_THROW(Json::parse("\"unterminated"), DataError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("[1]");
  EXPECT_THROW(j.asObject(), DataError);
  EXPECT_THROW(j.asString(), DataError);
  EXPECT_THROW(j.asNumber(), DataError);
  EXPECT_THROW(Json(1.0).asArray(), DataError);
  EXPECT_THROW(Json(1.0).asBool(), DataError);
}

TEST(Json, MissingKeyThrows) {
  Json j;
  j["a"] = Json(1);
  EXPECT_THROW(j.get("b"), DataError);
  EXPECT_TRUE(j.has("a"));
  EXPECT_FALSE(j.has("b"));
}

TEST(Json, IndexingNullPromotesToObject) {
  Json j;
  j["x"]["y"] = Json(3);
  EXPECT_DOUBLE_EQ(j.get("x").get("y").asNumber(), 3.0);
}

TEST(Json, NonFiniteNumbersRejected) {
  Json j(std::numeric_limits<double>::infinity());
  EXPECT_THROW(j.dump(), DataError);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json(Json::Array{}).dump(), "[]");
  EXPECT_EQ(Json(Json::Object{}).dump(), "{}");
  EXPECT_EQ(Json::parse("[]").asArray().size(), 0u);
  EXPECT_EQ(Json::parse("{}").asObject().size(), 0u);
}

TEST(Json, UnicodeEscapeToUtf8) {
  const Json j = Json::parse("\"\\u00e9\\u4e2d\"");
  EXPECT_EQ(j.asString(), "\xc3\xa9\xe4\xb8\xad");
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  const Json a = Json::parse(GetParam());
  const Json b = Json::parse(a.dump());
  EXPECT_EQ(a, b);
  const Json c = Json::parse(a.dump(4));
  EXPECT_EQ(a, c);
}

INSTANTIATE_TEST_SUITE_P(
    Docs, JsonRoundTrip,
    ::testing::Values("null", "true", "[]", "{}", "[1,2,3]",
                      R"({"a":{"b":[1,{"c":null}]},"d":"e"})",
                      R"([0.1,-2e8,3.25,[["x"]],{}])"));

}  // namespace
}  // namespace sns::util
