#include "sns/util/curve.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::util {
namespace {

Curve ramp() { return Curve({{0.0, 0.0}, {10.0, 10.0}}); }

TEST(Curve, InterpolatesLinearly) {
  Curve c = ramp();
  EXPECT_DOUBLE_EQ(c.at(5.0), 5.0);
  EXPECT_DOUBLE_EQ(c.at(2.5), 2.5);
}

TEST(Curve, ClampsOutsideDomain) {
  Curve c = ramp();
  EXPECT_DOUBLE_EQ(c.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(c.at(11.0), 10.0);
}

TEST(Curve, ExactPointsReturned) {
  Curve c({{1.0, 3.0}, {2.0, 7.0}, {4.0, 5.0}});
  EXPECT_DOUBLE_EQ(c.at(1.0), 3.0);
  EXPECT_DOUBLE_EQ(c.at(2.0), 7.0);
  EXPECT_DOUBLE_EQ(c.at(4.0), 5.0);
}

TEST(Curve, ConstructorSortsPoints) {
  Curve c({{4.0, 8.0}, {1.0, 2.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(c.minX(), 1.0);
  EXPECT_DOUBLE_EQ(c.maxX(), 4.0);
  EXPECT_DOUBLE_EQ(c.at(1.5), 3.0);
}

TEST(Curve, DuplicateXRejected) {
  EXPECT_THROW(Curve({{1.0, 1.0}, {1.0, 2.0}}), PreconditionError);
}

TEST(Curve, AddPointKeepsOrder) {
  Curve c;
  c.addPoint(5.0, 50.0);
  c.addPoint(1.0, 10.0);
  c.addPoint(3.0, 30.0);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.at(2.0), 20.0);
  EXPECT_THROW(c.addPoint(3.0, 99.0), PreconditionError);
}

TEST(Curve, EmptyCurveThrows) {
  Curve c;
  EXPECT_TRUE(c.empty());
  EXPECT_THROW(c.at(0.0), PreconditionError);
  EXPECT_THROW(c.minX(), PreconditionError);
  EXPECT_THROW(c.firstXReaching(1.0), PreconditionError);
}

TEST(Curve, FirstXReachingInterpolates) {
  Curve c = ramp();
  EXPECT_DOUBLE_EQ(c.firstXReaching(5.0), 5.0);
  EXPECT_DOUBLE_EQ(c.firstXReaching(0.0), 0.0);
}

TEST(Curve, FirstXReachingBeyondMaxClampsToMaxX) {
  Curve c = ramp();
  EXPECT_DOUBLE_EQ(c.firstXReaching(99.0), 10.0);
}

TEST(Curve, FirstXReachingTakesFirstCrossing) {
  // Rises, dips, rises again: target 4 is first reached in the first rise.
  Curve c({{0.0, 0.0}, {2.0, 5.0}, {4.0, 1.0}, {6.0, 8.0}});
  EXPECT_NEAR(c.firstXReaching(4.0), 1.6, 1e-12);
}

TEST(Curve, FirstXReachingFlatSegment) {
  Curve c({{0.0, 2.0}, {5.0, 2.0}, {10.0, 4.0}});
  EXPECT_DOUBLE_EQ(c.firstXReaching(2.0), 0.0);
  EXPECT_DOUBLE_EQ(c.firstXReaching(3.0), 7.5);
}

TEST(Curve, IsNonDecreasing) {
  EXPECT_TRUE(ramp().isNonDecreasing());
  EXPECT_TRUE(Curve({{0.0, 1.0}, {1.0, 1.0}}).isNonDecreasing());
  EXPECT_FALSE(Curve({{0.0, 2.0}, {1.0, 1.0}}).isNonDecreasing());
}

TEST(Curve, MapYTransformsValues) {
  Curve c = ramp();
  Curve doubled = c.mapY([](double y) { return 2.0 * y; });
  EXPECT_DOUBLE_EQ(doubled.at(5.0), 10.0);
  EXPECT_DOUBLE_EQ(c.at(5.0), 5.0);  // original untouched
}

TEST(Curve, SinglePointCurveIsConstant) {
  Curve c({{3.0, 7.0}});
  EXPECT_DOUBLE_EQ(c.at(-100.0), 7.0);
  EXPECT_DOUBLE_EQ(c.at(100.0), 7.0);
  EXPECT_DOUBLE_EQ(c.firstXReaching(7.0), 3.0);
}

class CurveEvalSweep : public ::testing::TestWithParam<double> {};

TEST_P(CurveEvalSweep, InterpolationBetweenNeighbors) {
  Curve c({{0.0, 0.0}, {1.0, 1.0}, {2.0, 4.0}, {3.0, 9.0}, {4.0, 16.0}});
  const double x = GetParam();
  // Piecewise-linear chord of x^2 lies at or above the parabola.
  EXPECT_GE(c.at(x) + 1e-12, x * x);
  EXPECT_LE(c.at(x), x * x + 0.25 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Xs, CurveEvalSweep,
                         ::testing::Values(0.25, 0.5, 1.5, 2.25, 2.75, 3.5));

}  // namespace
}  // namespace sns::util
