#include "sns/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "sns/util/error.hpp"
#include "sns/util/stats.hpp"

namespace sns::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniformInt(-10, -1);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(1.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, ChanceProbability) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceZeroAndOne) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(16);
  std::vector<double> w = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weightedIndex(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(17);
  EXPECT_THROW(rng.weightedIndex({}), PreconditionError);
  EXPECT_THROW(rng.weightedIndex({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(rng.weightedIndex({1.0, -1.0}), PreconditionError);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(18);
  Rng child = a.split();
  // Child stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == child()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRequiresOrderedBounds) {
  Rng rng(19);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.uniformInt(2, 1), PreconditionError);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndVaries) {
  Rng rng(GetParam());
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 256; ++i) vals.insert(rng());
  EXPECT_GT(vals.size(), 250u);  // essentially no collisions
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           ~0ULL));

}  // namespace
}  // namespace sns::util
