#include "sns/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sns/util/error.hpp"
#include "sns/util/rng.hpp"

namespace sns::util {
namespace {

TEST(Stats, MeanBasic) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
}

TEST(Stats, MeanSingle) {
  std::vector<double> xs = {7.5};
  EXPECT_DOUBLE_EQ(mean(xs), 7.5);
}

TEST(Stats, MeanEmptyThrows) {
  std::vector<double> xs;
  EXPECT_THROW(mean(xs), PreconditionError);
}

TEST(Stats, GeomeanBasic) {
  std::vector<double> xs = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
}

TEST(Stats, GeomeanOfEqualValues) {
  std::vector<double> xs = {3.0, 3.0, 3.0};
  EXPECT_NEAR(geomean(xs), 3.0, 1e-12);
}

TEST(Stats, GeomeanBelowArithmeticMean) {
  std::vector<double> xs = {1.0, 2.0, 8.0};
  EXPECT_LT(geomean(xs), mean(xs));
}

TEST(Stats, GeomeanRejectsNonPositive) {
  std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), PreconditionError);
  std::vector<double> neg = {1.0, -2.0};
  EXPECT_THROW(geomean(neg), PreconditionError);
}

TEST(Stats, VarianceAndStddev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PercentileValidatesP) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW(percentile(xs, 101.0), PreconditionError);
}

TEST(Stats, MinMax) {
  std::vector<double> xs = {4.0, -1.0, 9.0};
  EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
  EXPECT_DOUBLE_EQ(maxOf(xs), 9.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng(77);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), minOf(xs));
  EXPECT_DOUBLE_EQ(rs.max(), maxOf(xs));
  EXPECT_EQ(rs.count(), xs.size());
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), PreconditionError);
  EXPECT_THROW(rs.variance(), PreconditionError);
  EXPECT_THROW(rs.min(), PreconditionError);
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(4.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 4.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.binHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.binLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.binHigh(4), 10.0);
}

TEST(Histogram, CountsFallInRightBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-3.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Histogram, BinIndexOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), PreconditionError);
  EXPECT_THROW(h.binLow(2), PreconditionError);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, MonotoneInP) {
  std::vector<double> xs = {5.0, 1.0, 9.0, 3.0, 7.0};
  const double p = GetParam();
  EXPECT_LE(percentile(xs, p), percentile(xs, std::min(100.0, p + 10.0)));
}

INSTANTIATE_TEST_SUITE_P(Ps, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0));

}  // namespace
}  // namespace sns::util
