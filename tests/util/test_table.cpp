#include "sns/util/table.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::util {
namespace {

TEST(Table, RendersHeaderAndRule) {
  Table t({"prog", "time"});
  t.addRow({"MG", "95.0"});
  const std::string out = t.render();
  EXPECT_NE(out.find("prog  time"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("MG    95.0"), std::string::npos);
}

TEST(Table, ColumnsAutoWiden) {
  Table t({"a", "b"});
  t.addRow({"longvalue", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("longvalue  x"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), PreconditionError);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), PreconditionError);
}

TEST(Table, EmptyHeaderRejected) { EXPECT_THROW(Table({}), PreconditionError); }

TEST(Table, CsvQuotesOnlyWhenNeeded) {
  Table t({"name", "note"});
  t.addRow({"plain", "has,comma"});
  t.addRow({"quote\"inside", "ok"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("plain,\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\",ok"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.addRow({"1"});
  t.addRow({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmtPct(0.198), "19.8%");
  EXPECT_EQ(fmtPct(1.0, 0), "100%");
  EXPECT_EQ(fmtPct(-0.034), "-3.4%");
}

}  // namespace
}  // namespace sns::util
