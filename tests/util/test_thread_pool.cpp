// ThreadPool unit tests. The pool backs the parallel replay harness and
// the sharded placement search; these tests pin its contract — results
// arrive through futures, exceptions propagate, the destructor drains the
// queue — and give the TSan CI lane a direct workout of the guarded
// queue/stop-flag paths rather than only the bench-driven one.
#include "sns/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using sns::util::ThreadPool;

TEST(ThreadPool, ReportsAtLeastOneWorker) {
  ThreadPool pool;  // 0 = hardware concurrency, clamped to >= 1
  EXPECT_GE(pool.threadCount(), 1u);

  ThreadPool fixed(3);
  EXPECT_EQ(fixed.threadCount(), 3u);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(doubled.get(), 42);
}

TEST(ThreadPool, RunsManyTasksExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  std::vector<std::future<int>> results;
  results.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    results.push_back(pool.submit([i, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  long long sum = 0;
  for (auto& f : results) sum += f.get();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(sum, static_cast<long long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, ExceptionsPropagateThroughTheFuture) {
  ThreadPool pool(2);
  auto poisoned = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(poisoned.get(), std::runtime_error);

  // The pool survives a throwing task: later submissions still run.
  auto after = pool.submit([] { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(1);  // single worker so most tasks queue up
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool: every submitted task must have run
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, DisjointShardWritesJoinCleanly) {
  // The parallel-selection idiom: workers fill disjoint ranges of a
  // caller-owned scratch array; the caller reads only after joining.
  ThreadPool pool(4);
  constexpr int kShards = 8;
  constexpr int kPerShard = 1000;
  std::vector<int> scratch(kShards * kPerShard, 0);
  std::vector<std::future<void>> joins;
  joins.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    joins.push_back(pool.submit([s, &scratch] {
      for (int i = 0; i < kPerShard; ++i) scratch[s * kPerShard + i] = s + 1;
    }));
  }
  for (auto& f : joins) f.get();
  long long sum = std::accumulate(scratch.begin(), scratch.end(), 0LL);
  long long want = 0;
  for (int s = 0; s < kShards; ++s) want += static_cast<long long>(s + 1) * kPerShard;
  EXPECT_EQ(sum, want);
}

}  // namespace
