#include "sns/util/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sns::util {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(SNS_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Error, RequireThrowsPreconditionError) {
  EXPECT_THROW(SNS_REQUIRE(false, "nope"), PreconditionError);
}

TEST(Error, MessageCarriesConditionFileAndReason) {
  try {
    SNS_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Error, RequireEvaluatesConditionOnce) {
  int calls = 0;
  auto bump = [&] {
    ++calls;
    return true;
  };
  SNS_REQUIRE(bump(), "side effects counted");
  EXPECT_EQ(calls, 1);
}

TEST(Error, HierarchyIsCatchable) {
  // PreconditionError is a logic_error (caller bug); DataError is a
  // runtime_error (bad input) — callers can distinguish them.
  EXPECT_THROW(throw PreconditionError("x"), std::logic_error);
  EXPECT_THROW(throw DataError("y"), std::runtime_error);
}

TEST(Error, RequireWorksInsideIfWithoutBraces) {
  // The do/while(0) idiom must make the macro statement-safe.
  bool reached_else = false;
  if (false)
    SNS_REQUIRE(true, "never evaluated");
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace sns::util
