// FinishCalendar is the event engine's ordering authority: the simulator
// pops completions from it instead of min-scanning the active set, so its
// (key, id) order, re-key behavior, and erase-from-the-middle paths must be
// exactly right — a single misplaced entry reorders job finishes and breaks
// bit-identity with the legacy sweep. Tie-breaking on ascending JobId is
// load-bearing (simultaneous finishes must pop in the legacy sweep's order),
// so it gets its own tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sns/sched/finish_calendar.hpp"
#include "sns/util/error.hpp"
#include "sns/util/rng.hpp"

namespace sns::sched {
namespace {

std::vector<JobId> drain(FinishCalendar& cal) {
  std::vector<JobId> out;
  while (!cal.empty()) out.push_back(cal.pop());
  return out;
}

TEST(FinishCalendar, PopsInAscendingKeyOrder) {
  FinishCalendar cal;
  cal.reset(8);
  cal.insert(0, 50.0);
  cal.insert(1, 10.0);
  cal.insert(2, 90.0);
  cal.insert(3, 30.0);
  EXPECT_EQ(cal.topId(), 1);
  EXPECT_EQ(cal.topKey(), 10.0);
  EXPECT_EQ(drain(cal), (std::vector<JobId>{1, 3, 0, 2}));
}

TEST(FinishCalendar, EqualKeysPopInAscendingIdOrder) {
  // Simultaneous finishes: the legacy done-sweep collected done jobs in
  // ascending id order, and the calendar must reproduce that exactly
  // regardless of insertion order.
  FinishCalendar cal;
  cal.reset(8);
  for (JobId id : {5, 1, 7, 2, 4}) cal.insert(id, 100.0);
  EXPECT_EQ(cal.topId(), 1);
  EXPECT_EQ(drain(cal), (std::vector<JobId>{1, 2, 4, 5, 7}));
}

TEST(FinishCalendar, TieBreakBeatsHeapShape) {
  // Interleave ties with non-ties so sift paths move tied entries through
  // several heap shapes before the ties surface.
  FinishCalendar cal;
  cal.reset(16);
  cal.insert(9, 20.0);
  cal.insert(3, 20.0);
  cal.insert(12, 5.0);
  cal.insert(6, 20.0);
  cal.insert(0, 40.0);
  cal.insert(1, 20.0);
  EXPECT_EQ(drain(cal), (std::vector<JobId>{12, 1, 3, 6, 9, 0}));
}

TEST(FinishCalendar, UpdateReKeysUpAndDown) {
  FinishCalendar cal;
  cal.reset(4);
  cal.insert(0, 10.0);
  cal.insert(1, 20.0);
  cal.insert(2, 30.0);

  // Rate drop pushes job 0's projected finish past everyone: sifts down.
  cal.update(0, 99.0);
  EXPECT_EQ(cal.topId(), 1);
  EXPECT_EQ(cal.key(0), 99.0);

  // Rate rise pulls job 2 to the front: sifts up.
  cal.update(2, 1.0);
  EXPECT_EQ(cal.topId(), 2);
  EXPECT_EQ(drain(cal), (std::vector<JobId>{2, 1, 0}));
}

TEST(FinishCalendar, UpdateToTieJoinsIdOrder) {
  // A re-key landing exactly on an existing key must slot into id order,
  // not "after whoever was already there".
  FinishCalendar cal;
  cal.reset(8);
  cal.insert(4, 10.0);
  cal.insert(2, 50.0);
  cal.insert(6, 30.0);
  cal.update(6, 10.0);
  EXPECT_EQ(drain(cal), (std::vector<JobId>{4, 6, 2}));
}

TEST(FinishCalendar, EraseFromTheMiddleKeepsOrder) {
  FinishCalendar cal;
  cal.reset(8);
  for (JobId id = 0; id < 8; ++id) {
    cal.insert(id, 10.0 * static_cast<double>(8 - id));  // reverse key order
  }
  cal.erase(3);
  cal.erase(7);  // current minimum
  cal.erase(0);  // current maximum
  EXPECT_FALSE(cal.contains(3));
  EXPECT_TRUE(cal.contains(5));
  EXPECT_EQ(cal.size(), 5u);
  EXPECT_TRUE(cal.auditInvariants().empty());
  EXPECT_EQ(drain(cal), (std::vector<JobId>{6, 5, 4, 2, 1}));
}

TEST(FinishCalendar, UpsertInsertsThenReKeys) {
  FinishCalendar cal;
  cal.reset(4);
  cal.upsert(1, 20.0);
  EXPECT_TRUE(cal.contains(1));
  EXPECT_EQ(cal.key(1), 20.0);
  cal.upsert(1, 5.0);  // present: re-key, not a duplicate insert
  EXPECT_EQ(cal.size(), 1u);
  EXPECT_EQ(cal.key(1), 5.0);
}

TEST(FinishCalendar, ResetClearsAndResizes) {
  FinishCalendar cal;
  cal.reset(4);
  cal.insert(0, 1.0);
  cal.insert(3, 2.0);
  cal.reset(2);
  EXPECT_TRUE(cal.empty());
  EXPECT_FALSE(cal.contains(0));
  cal.insert(1, 7.0);  // ids 0..1 valid after the resize
  EXPECT_EQ(cal.topId(), 1);
}

TEST(FinishCalendar, PreconditionsThrow) {
  FinishCalendar cal;
  cal.reset(2);
  EXPECT_THROW(cal.pop(), util::PreconditionError);
  EXPECT_THROW(cal.update(0, 1.0), util::PreconditionError);
  EXPECT_THROW(cal.erase(0), util::PreconditionError);
  EXPECT_THROW(cal.insert(2, 1.0), util::PreconditionError);  // out of range
  cal.insert(0, 1.0);
  EXPECT_THROW(cal.insert(0, 2.0), util::PreconditionError);  // duplicate
}

TEST(FinishCalendar, AuditCleanThroughRandomChurn) {
  // Randomized insert/update/erase/pop churn: the structural audit must
  // stay clean at every step, and a final drain must equal a sort of the
  // surviving (key, id) pairs.
  util::Rng rng(42);
  constexpr std::size_t kJobs = 64;
  FinishCalendar cal;
  cal.reset(kJobs);
  std::vector<bool> present(kJobs, false);
  for (int step = 0; step < 2000; ++step) {
    const JobId id = rng.uniformInt(0, kJobs - 1);
    const double key = static_cast<double>(rng.uniformInt(0, 19));  // many ties
    switch (rng.uniformInt(0, 3)) {
      case 0:
        if (!present[static_cast<std::size_t>(id)]) {
          cal.insert(id, key);
          present[static_cast<std::size_t>(id)] = true;
        }
        break;
      case 1:
        if (present[static_cast<std::size_t>(id)]) cal.update(id, key);
        break;
      case 2:
        if (present[static_cast<std::size_t>(id)]) {
          cal.erase(id);
          present[static_cast<std::size_t>(id)] = false;
        }
        break;
      default:
        if (!cal.empty()) {
          present[static_cast<std::size_t>(cal.pop())] = false;
        }
        break;
    }
    ASSERT_TRUE(cal.auditInvariants().empty()) << "step " << step;
  }

  std::vector<std::pair<double, JobId>> expect;
  for (std::size_t id = 0; id < kJobs; ++id) {
    if (present[id]) expect.push_back({cal.key(static_cast<JobId>(id)),
                                       static_cast<JobId>(id)});
  }
  std::sort(expect.begin(), expect.end());
  std::vector<std::pair<double, JobId>> got;
  while (!cal.empty()) {
    got.push_back({cal.topKey(), cal.topId()});
    cal.pop();
  }
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace sns::sched
