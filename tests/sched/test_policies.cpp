#include "sns/sched/policies.hpp"

#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/util/error.hpp"

namespace sns::sched {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : lib_(app::programLibrary()), ledger_(8, est_.machine()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) db_.put(prof.profileProgram(p, 16));
  }

  Job makeJob(const std::string& prog, int procs, JobId id = 1) {
    Job j;
    j.id = id;
    j.spec.program = prog;
    j.spec.procs = procs;
    j.spec.alpha = 0.9;
    j.program = &app::findProgram(lib_, prog);
    return j;
  }

  void apply(const Placement& p, JobId id) {
    for (int nd : p.nodes) ledger_.allocate(nd, id, p.nodeAllocation());
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
  actuator::ResourceLedger ledger_;
};

TEST_F(PolicyTest, CePlacesCompactExclusive) {
  CePolicy ce(est_);
  const auto p = ce.tryPlace(makeJob("MG", 16), ledger_, db_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodeCount(), 1);
  EXPECT_EQ(p->procs_per_node, 16);
  EXPECT_EQ(p->scale_factor, 1);
  EXPECT_TRUE(p->exclusive);
}

TEST_F(PolicyTest, CeTwoNodeJob) {
  CePolicy ce(est_);
  const auto p = ce.tryPlace(makeJob("WC", 32), ledger_, db_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodeCount(), 2);
  EXPECT_EQ(p->procs_per_node, 16);  // paper Fig 8: 32 procs over 2 nodes
}

TEST_F(PolicyTest, CeNeedsFullyIdleNodes) {
  CePolicy ce(est_);
  // A tiny shared job on every node blocks all exclusive placements.
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, 100 + n, {1, 0, 0.0, false});
  EXPECT_FALSE(ce.tryPlace(makeJob("MG", 16), ledger_, db_).has_value());
}

TEST_F(PolicyTest, CeWastesIdleCores) {
  CePolicy ce(est_);
  const auto first = ce.tryPlace(makeJob("HC", 16, 1), ledger_, db_);
  ASSERT_TRUE(first.has_value());
  apply(*first, 1);
  // 12 cores idle on that node, but CE cannot use them for another job.
  const auto second = ce.tryPlace(makeJob("HC", 16, 2), ledger_, db_);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->nodes[0], first->nodes[0]);
}

TEST_F(PolicyTest, CsFillsIdleCoresWhereCeCannot) {
  CsPolicy cs(est_);
  CePolicy ce(est_);
  // Fill all 8 nodes with 16-core jobs (12 idle cores each). CE has no
  // fully idle node left; CS harvests the leftovers by spreading 2x.
  for (int n = 0; n < 8; ++n) {
    const auto p = cs.tryPlace(makeJob("HC", 16, 10 + n), ledger_, db_);
    ASSERT_TRUE(p.has_value());
    apply(*p, 10 + n);
  }
  EXPECT_FALSE(ce.tryPlace(makeJob("WC", 16, 99), ledger_, db_).has_value());
  const auto second = cs.tryPlace(makeJob("WC", 16, 99), ledger_, db_);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->scale_factor, 2);
  EXPECT_EQ(second->procs_per_node, 8);
}

TEST_F(PolicyTest, CsPrefersCompact) {
  CsPolicy cs(est_);
  const auto p = cs.tryPlace(makeJob("MG", 16), ledger_, db_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->scale_factor, 1);
  EXPECT_FALSE(p->exclusive);
  EXPECT_EQ(p->ways, 0);  // no CAT partitioning under CS
}

TEST_F(PolicyTest, CsUsesLowestFeasibleScale) {
  CsPolicy cs(est_);
  // Fill 20 cores everywhere: a 16-proc job no longer fits compactly, but
  // spreads 2x onto two nodes with 8 cores each.
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, 100 + n, {20, 0, 0.0, false});
  const auto p = cs.tryPlace(makeJob("WC", 16), ledger_, db_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->scale_factor, 2);
  EXPECT_EQ(p->procs_per_node, 8);
}

TEST_F(PolicyTest, SnsSpreadsScalingJobToIdealScale) {
  SnsPolicy sns(est_);
  const auto p = sns.tryPlace(makeJob("MG", 16), ledger_, db_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->scale_factor, db_.find("MG", 16)->ideal_scale);
  EXPECT_EQ(p->nodeCount(), 8);
  EXPECT_EQ(p->procs_per_node, 2);
  EXPECT_GE(p->ways, est_.machine().min_ways_per_job);
  EXPECT_GT(p->bw_gbps, 0.0);
  EXPECT_FALSE(p->exclusive);
}

TEST_F(PolicyTest, SnsKeepsCompactJobCompact) {
  SnsPolicy sns(est_);
  const auto p = sns.tryPlace(makeJob("BFS", 16), ledger_, db_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->scale_factor, 1);
  EXPECT_EQ(p->nodeCount(), 1);
}

TEST_F(PolicyTest, SnsFallsBackToNextBestScale) {
  SnsPolicy sns(est_);
  // Take 4 nodes fully: MG's ideal 8-node spread is impossible; the next
  // best profiled scale (4 nodes) should win.
  for (int n = 0; n < 4; ++n) ledger_.allocate(n, 100 + n, {28, 0, 0.0, false});
  const auto p = sns.tryPlace(makeJob("MG", 16), ledger_, db_);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->scale_factor, 4);
  EXPECT_EQ(p->nodeCount(), 4);
}

TEST_F(PolicyTest, SnsUnprofiledProgramRunsExclusiveCompact) {
  SnsPolicy sns(est_);
  profile::ProfileDatabase empty;
  const auto p = sns.tryPlace(makeJob("MG", 16), ledger_, empty);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->exclusive);
  EXPECT_EQ(p->scale_factor, 1);
}

TEST_F(PolicyTest, SnsAdaptsScaleToWayAvailability) {
  SnsPolicy sns(est_);
  // Reserve 17 ways on every node, leaving 3. CG's preferred scale (2x)
  // demands far more ways per node; SNS must fall back to a thinner
  // spread whose per-node demand fits in the 3 remaining ways.
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, 100 + n, {2, 17, 0.0, false});
  const auto cg = sns.tryPlace(makeJob("CG", 16), ledger_, db_);
  ASSERT_TRUE(cg.has_value());
  EXPECT_GT(cg->scale_factor, 2);
  EXPECT_LE(cg->ways, 3);
  // MG (2-3 ways even when compact) also fits.
  const auto mg = sns.tryPlace(makeJob("MG", 16), ledger_, db_);
  EXPECT_TRUE(mg.has_value());
}

TEST_F(PolicyTest, SnsBlockedWhenNoWaysAnywhere) {
  SnsPolicy sns(est_);
  // 19 reserved ways leave 1 free — below the 2-way partition floor, so
  // nothing CAT-partitioned can start at any scale.
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, 100 + n, {2, 19, 0.0, false});
  EXPECT_FALSE(sns.tryPlace(makeJob("CG", 16), ledger_, db_).has_value());
  EXPECT_FALSE(sns.tryPlace(makeJob("MG", 16), ledger_, db_).has_value());
}

TEST_F(PolicyTest, SnsRespectsBandwidthBudget) {
  SnsPolicy sns(est_);
  // Reserve nearly all bandwidth everywhere; MG's per-node demand cannot
  // be met at any scale.
  for (int n = 0; n < 8; ++n) ledger_.allocate(n, 100 + n, {2, 2, 110.0, false});
  EXPECT_FALSE(sns.tryPlace(makeJob("MG", 16), ledger_, db_).has_value());
  // EP barely uses bandwidth and still fits.
  EXPECT_TRUE(sns.tryPlace(makeJob("EP", 16), ledger_, db_).has_value());
}

TEST_F(PolicyTest, SnsCoLocatesComplementaryJobs) {
  SnsPolicy sns(est_);
  const auto mg = sns.tryPlace(makeJob("MG", 16, 1), ledger_, db_);
  ASSERT_TRUE(mg.has_value());
  apply(*mg, 1);
  // MG took few ways on all 8 nodes; a cache-hungry but bandwidth-light
  // job can share those nodes.
  const auto nw = sns.tryPlace(makeJob("NW", 16, 2), ledger_, db_);
  ASSERT_TRUE(nw.has_value());
  EXPECT_FALSE(nw->nodes.empty());
}

TEST_F(PolicyTest, SingleNodeProgramsNeverSpread) {
  SnsPolicy sns(est_);
  CsPolicy cs(est_);
  const auto p1 = sns.tryPlace(makeJob("GAN", 16), ledger_, db_);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->nodeCount(), 1);
  const auto p2 = cs.tryPlace(makeJob("GAN", 16), ledger_, db_);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->nodeCount(), 1);
}

TEST_F(PolicyTest, FactoryProducesAllPolicies) {
  EXPECT_EQ(makePolicy(PolicyKind::kCE, est_)->name(), "CE");
  EXPECT_EQ(makePolicy(PolicyKind::kCS, est_)->name(), "CS");
  EXPECT_EQ(makePolicy(PolicyKind::kSNS, est_)->name(), "SNS");
  EXPECT_EQ(to_string(PolicyKind::kCE), "CE");
  EXPECT_EQ(to_string(PolicyKind::kCS), "CS");
  EXPECT_EQ(to_string(PolicyKind::kSNS), "SNS");
}

TEST_F(PolicyTest, JobLargerThanClusterRejected) {
  CePolicy ce(est_);
  EXPECT_THROW(ce.tryPlace(makeJob("WC", 28 * 9), ledger_, db_),
               util::PreconditionError);
}

}  // namespace
}  // namespace sns::sched
