#include "sns/sched/queue.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::sched {
namespace {

Job makeJob(JobId id, double submit) {
  Job j;
  j.id = id;
  j.submit_time = submit;
  j.spec.program = "X";
  return j;
}

TEST(JobQueue, FifoOrderBySubmitTime) {
  JobQueue q;
  q.push(makeJob(2, 10.0));
  q.push(makeJob(1, 5.0));
  q.push(makeJob(3, 7.0));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pending()[0].id, 1);
  EXPECT_EQ(q.pending()[1].id, 3);
  EXPECT_EQ(q.pending()[2].id, 2);
}

TEST(JobQueue, TieBreakById) {
  JobQueue q;
  q.push(makeJob(5, 1.0));
  q.push(makeJob(3, 1.0));
  q.push(makeJob(4, 1.0));
  EXPECT_EQ(q.pending()[0].id, 3);
  EXPECT_EQ(q.pending()[1].id, 4);
  EXPECT_EQ(q.pending()[2].id, 5);
}

TEST(JobQueue, RemoveMiddle) {
  JobQueue q;
  q.push(makeJob(1, 1.0));
  q.push(makeJob(2, 2.0));
  q.push(makeJob(3, 3.0));
  q.remove(2);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pending()[0].id, 1);
  EXPECT_EQ(q.pending()[1].id, 3);
}

TEST(JobQueue, RemoveUnknownThrows) {
  JobQueue q;
  q.push(makeJob(1, 1.0));
  EXPECT_THROW(q.remove(9), util::PreconditionError);
}

TEST(JobQueue, EmptyBehaviour) {
  JobQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.headStarved(1000.0, 1.0));
}

TEST(JobQueue, HeadStarvedAfterAgeLimit) {
  JobQueue q;
  q.push(makeJob(1, 0.0));
  EXPECT_FALSE(q.headStarved(50.0, 100.0));
  EXPECT_TRUE(q.headStarved(150.0, 100.0));
}

TEST(JobQueue, RemoveUnderIteration) {
  // The scheduler's single-pass walk removes dispatched jobs while the
  // walk is in flight: the visitor's kRemove must tombstone the current
  // job and keep visiting the remaining live jobs in priority order.
  JobQueue q;
  for (JobId id = 1; id <= 6; ++id) q.push(makeJob(id, static_cast<double>(id)));
  std::vector<JobId> visited;
  q.walk([&](const Job& j) {
    visited.push_back(j.id);
    return j.id % 2 == 0 ? JobQueue::Walk::kRemove : JobQueue::Walk::kContinue;
  });
  EXPECT_EQ(visited, (std::vector<JobId>{1, 2, 3, 4, 5, 6}));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pending()[0].id, 1);
  EXPECT_EQ(q.pending()[1].id, 3);
  EXPECT_EQ(q.pending()[2].id, 5);

  // A second walk sees only survivors; kRemoveAndStop removes the shown
  // job and ends the walk without visiting the rest.
  visited.clear();
  q.walk([&](const Job& j) {
    visited.push_back(j.id);
    return j.id == 3 ? JobQueue::Walk::kRemoveAndStop : JobQueue::Walk::kContinue;
  });
  EXPECT_EQ(visited, (std::vector<JobId>{1, 3}));
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pending()[0].id, 1);
  EXPECT_EQ(q.pending()[1].id, 5);
}

TEST(JobQueue, TombstoneCompactionPreservesOrderAndIndex) {
  // Remove far more jobs than survive so the tombstone store compacts;
  // the id index and priority order must survive compaction, and later
  // removals by id must still resolve.
  JobQueue q;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    q.push(makeJob(static_cast<JobId>(i + 1), static_cast<double>(i)));
  }
  for (int i = 0; i < n; ++i) {
    if (i % 4 != 0) q.remove(static_cast<JobId>(i + 1));  // kill 75%
  }
  ASSERT_EQ(q.size(), static_cast<std::size_t>(n / 4));
  const auto live = q.pending();
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].id, static_cast<JobId>(4 * i + 1));
  }
  // Post-compaction removals and walks still work.
  q.remove(5);
  EXPECT_THROW(q.remove(5), util::PreconditionError);
  std::size_t seen = 0;
  q.walk([&](const Job&) {
    ++seen;
    return JobQueue::Walk::kContinue;
  });
  EXPECT_EQ(seen, q.size());
}

TEST(JobQueue, OutOfOrderPushAfterRemovals) {
  // Mid-queue inserts (late submit times arriving out of order) rebuild
  // the index; mixing them with tombstones must keep priority order.
  JobQueue q;
  q.push(makeJob(1, 10.0));
  q.push(makeJob(2, 30.0));
  q.push(makeJob(3, 50.0));
  q.remove(2);
  q.push(makeJob(4, 20.0));  // lands between the live 1 and 3
  q.push(makeJob(5, 40.0));
  ASSERT_EQ(q.size(), 4u);
  const auto live = q.pending();
  EXPECT_EQ(live[0].id, 1);
  EXPECT_EQ(live[1].id, 4);
  EXPECT_EQ(live[2].id, 5);
  EXPECT_EQ(live[3].id, 3);
  EXPECT_TRUE(q.headStarved(100.0, 50.0));
}

TEST(JobQueue, JobAge) {
  const Job j = makeJob(1, 10.0);
  EXPECT_DOUBLE_EQ(j.age(25.0), 15.0);
}

TEST(Placement, NodeAllocationView) {
  Placement p;
  p.nodes = {0, 3, 5};
  p.procs_per_node = 8;
  p.ways = 6;
  p.bw_gbps = 40.0;
  p.exclusive = false;
  EXPECT_EQ(p.nodeCount(), 3);
  const auto a = p.nodeAllocation();
  EXPECT_EQ(a.cores, 8);
  EXPECT_EQ(a.ways, 6);
  EXPECT_DOUBLE_EQ(a.bw_gbps, 40.0);
  EXPECT_FALSE(a.exclusive);
}

}  // namespace
}  // namespace sns::sched
