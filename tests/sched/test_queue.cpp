#include "sns/sched/queue.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::sched {
namespace {

Job makeJob(JobId id, double submit) {
  Job j;
  j.id = id;
  j.submit_time = submit;
  j.spec.program = "X";
  return j;
}

TEST(JobQueue, FifoOrderBySubmitTime) {
  JobQueue q;
  q.push(makeJob(2, 10.0));
  q.push(makeJob(1, 5.0));
  q.push(makeJob(3, 7.0));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pending()[0].id, 1);
  EXPECT_EQ(q.pending()[1].id, 3);
  EXPECT_EQ(q.pending()[2].id, 2);
}

TEST(JobQueue, TieBreakById) {
  JobQueue q;
  q.push(makeJob(5, 1.0));
  q.push(makeJob(3, 1.0));
  q.push(makeJob(4, 1.0));
  EXPECT_EQ(q.pending()[0].id, 3);
  EXPECT_EQ(q.pending()[1].id, 4);
  EXPECT_EQ(q.pending()[2].id, 5);
}

TEST(JobQueue, RemoveMiddle) {
  JobQueue q;
  q.push(makeJob(1, 1.0));
  q.push(makeJob(2, 2.0));
  q.push(makeJob(3, 3.0));
  q.remove(2);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pending()[0].id, 1);
  EXPECT_EQ(q.pending()[1].id, 3);
}

TEST(JobQueue, RemoveUnknownThrows) {
  JobQueue q;
  q.push(makeJob(1, 1.0));
  EXPECT_THROW(q.remove(9), util::PreconditionError);
}

TEST(JobQueue, EmptyBehaviour) {
  JobQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.headStarved(1000.0, 1.0));
}

TEST(JobQueue, HeadStarvedAfterAgeLimit) {
  JobQueue q;
  q.push(makeJob(1, 0.0));
  EXPECT_FALSE(q.headStarved(50.0, 100.0));
  EXPECT_TRUE(q.headStarved(150.0, 100.0));
}

TEST(JobQueue, JobAge) {
  const Job j = makeJob(1, 10.0);
  EXPECT_DOUBLE_EQ(j.age(25.0), 15.0);
}

TEST(Placement, NodeAllocationView) {
  Placement p;
  p.nodes = {0, 3, 5};
  p.procs_per_node = 8;
  p.ways = 6;
  p.bw_gbps = 40.0;
  p.exclusive = false;
  EXPECT_EQ(p.nodeCount(), 3);
  const auto a = p.nodeAllocation();
  EXPECT_EQ(a.cores, 8);
  EXPECT_EQ(a.ways, 6);
  EXPECT_DOUBLE_EQ(a.bw_gbps, 40.0);
  EXPECT_FALSE(a.exclusive);
}

}  // namespace
}  // namespace sns::sched
