// Scheduler behaviour tests that cut across queue, policies and simulator:
// the paper's CS==CE equivalence for full-node jobs (§6.3), strict-FCFS
// age limits, and whole-pipeline determinism.
#include <gtest/gtest.h>

#include "sns/app/library.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/sim/metrics.hpp"

namespace sns::sched {
namespace {

class SchedulerBehaviour : public ::testing::Test {
 protected:
  SchedulerBehaviour() : lib_(app::programLibrary()) {
    for (auto& p : lib_) est_.calibrate(p);
    profile::ProfilerConfig cfg;
    cfg.pmu_noise = 0.0;
    profile::Profiler prof(est_, cfg);
    for (const auto& p : lib_) {
      db_.put(prof.profileProgram(p, 16));
      if (!p.pow2_procs && p.multi_node) db_.put(prof.profileProgram(p, 28));
    }
  }

  sim::SimResult run(sim::SimConfig cfg, const std::vector<app::JobSpec>& seq) {
    sim::ClusterSimulator sim(est_, lib_, db_, cfg);
    return sim.run(seq);
  }

  perfmodel::Estimator est_;
  std::vector<app::ProgramModel> lib_;
  profile::ProfileDatabase db_;
};

TEST_F(SchedulerBehaviour, CsEqualsCeForFullNodeJobs) {
  // §6.3: "Since all jobs occupy a full node, CS and CE behave the same."
  std::vector<app::JobSpec> seq;
  for (int i = 0; i < 12; ++i) {
    seq.push_back({i % 2 ? "HC" : "BW", 28, 0.9, 0.0, 1, 0.0});
  }
  sim::SimConfig ce_cfg;
  ce_cfg.nodes = 8;
  ce_cfg.policy = PolicyKind::kCE;
  sim::SimConfig cs_cfg = ce_cfg;
  cs_cfg.policy = PolicyKind::kCS;
  const auto ce = run(ce_cfg, seq);
  const auto cs = run(cs_cfg, seq);
  ASSERT_EQ(ce.jobs.size(), cs.jobs.size());
  for (std::size_t i = 0; i < ce.jobs.size(); ++i) {
    EXPECT_NEAR(ce.jobs[i].start, cs.jobs[i].start, 1e-6);
    EXPECT_NEAR(ce.jobs[i].finish, cs.jobs[i].finish, 1e-6);
  }
}

TEST_F(SchedulerBehaviour, ZeroAgeLimitMeansStrictFifo) {
  // Head job needs the whole cluster; with age_limit 0 nothing may jump
  // ahead of it even though small jobs would fit right away.
  std::vector<app::JobSpec> seq = {
      {"HC", 28, 0.9, 0.0, 1, 0.0},        // takes node(s) first
      {"WC", 28 * 8, 0.9, 1.0, 1, 0.0},    // whole-cluster job, must wait
      {"EP", 16, 0.9, 2.0, 1, 0.0},        // would fit, but FIFO-blocked
  };
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = PolicyKind::kCE;
  cfg.age_limit_s = 0.0;
  const auto res = run(cfg, seq);
  // EP starts only after the big job started (which required HC to finish).
  EXPECT_GE(res.jobs[2].start, res.jobs[1].start - 1e-6);
  EXPECT_GE(res.jobs[1].start, res.jobs[0].finish - 1e-6);
}

TEST_F(SchedulerBehaviour, GenerousAgeLimitEnablesBackfill) {
  std::vector<app::JobSpec> seq = {
      {"HC", 28, 0.9, 0.0, 1, 0.0},
      {"WC", 28 * 8, 0.9, 1.0, 1, 0.0},
      {"EP", 16, 0.9, 2.0, 1, 0.0},
  };
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = PolicyKind::kCE;
  cfg.age_limit_s = 1e9;
  const auto res = run(cfg, seq);
  // EP backfills onto an idle node long before the whole-cluster job runs.
  EXPECT_LT(res.jobs[2].start, res.jobs[1].start);
}

TEST_F(SchedulerBehaviour, IdenticalAcrossSimulatorInstances) {
  util::Rng rng(31415);
  const auto seq = app::randomSequence(rng, lib_, 20, 0.9);
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = PolicyKind::kSNS;
  const auto a = run(cfg, seq);
  const auto b = run(cfg, seq);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].start, b.jobs[i].start);
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_EQ(a.jobs[i].placement.nodes, b.jobs[i].placement.nodes);
  }
}

TEST_F(SchedulerBehaviour, SubmittedLaterNeverStartsEarlierUnderFifoLimit) {
  // With backfill disabled, start times follow submission order.
  std::vector<app::JobSpec> seq;
  for (int i = 0; i < 10; ++i) seq.push_back({"HC", 28, 0.9, 10.0 * i, 1, 0.0});
  sim::SimConfig cfg;
  cfg.nodes = 2;
  cfg.policy = PolicyKind::kCE;
  cfg.age_limit_s = 0.0;
  const auto res = run(cfg, seq);
  for (std::size_t i = 1; i < res.jobs.size(); ++i) {
    EXPECT_GE(res.jobs[i].start, res.jobs[i - 1].start - 1e-6);
  }
}

TEST_F(SchedulerBehaviour, AlphaFlowsFromSpecToAllocation) {
  // A lax alpha shrinks the CAT partition SNS reserves for TS.
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.policy = PolicyKind::kSNS;
  const auto strict = run(cfg, {{"TS", 16, 0.95, 0.0, 1, 0.0}});
  const auto lax = run(cfg, {{"TS", 16, 0.6, 0.0, 1, 0.0}});
  EXPECT_GT(strict.jobs[0].placement.ways, lax.jobs[0].placement.ways);
}

}  // namespace
}  // namespace sns::sched
