#include "sns/obs/perfetto.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sns/app/library.hpp"
#include "sns/obs/sink.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/sim/trace_export.hpp"
#include "sns/util/error.hpp"
#include "sns/util/json.hpp"

namespace sns::obs {
namespace {

TEST(PerfettoBuilder, EmitsWellFormedTraceEvents) {
  PerfettoTraceBuilder b;
  b.processName(1, "node 0");
  b.processSortIndex(1, 1);
  b.threadName(1, 4, "job 3");
  b.addSlice(1, 4, 0.5, 1.5, "J3 MG/16");
  b.addInstant(0, 1, 0.5, "placement_decided");
  b.addCounter(1, "bandwidth (GB/s)", 0.0, 42.0);
  EXPECT_EQ(b.eventCount(), 6u);

  const auto j = util::Json::parse(b.build().dump());
  EXPECT_EQ(j.get("displayTimeUnit").asString(), "ms");
  const auto& ev = j.get("traceEvents").asArray();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].get("ph").asString(), "M");
  EXPECT_EQ(ev[0].get("args").get("name").asString(), "node 0");
  EXPECT_EQ(ev[3].get("ph").asString(), "X");
  // Seconds become microseconds.
  EXPECT_DOUBLE_EQ(ev[3].get("ts").asNumber(), 500000.0);
  EXPECT_DOUBLE_EQ(ev[3].get("dur").asNumber(), 1000000.0);
  EXPECT_EQ(ev[5].get("ph").asString(), "C");
  EXPECT_DOUBLE_EQ(ev[5].get("args").get("value").asNumber(), 42.0);
}

TEST(PerfettoBuilder, ZeroDurationSlicesStayVisible) {
  PerfettoTraceBuilder b;
  b.addSlice(1, 1, 2.0, 2.0, "blip");
  const auto j = b.build();
  EXPECT_DOUBLE_EQ(j.get("traceEvents").asArray()[0].get("dur").asNumber(), 1.0);
}

TEST(PerfettoBuilder, RejectsNegativeDuration) {
  PerfettoTraceBuilder b;
  EXPECT_THROW(b.addSlice(1, 1, 2.0, 1.0, "backwards"), util::PreconditionError);
}

// Golden end-to-end check: a small two-node simulation must export a trace
// that our own JSON parser accepts and that carries one track per node, one
// slice per completed job and a healthy variety of event types.
TEST(PerfettoExport, TwoNodeSimulationProducesLoadableTrace) {
  perfmodel::Estimator est;
  auto lib = app::programLibrary();
  for (auto& p : lib) est.calibrate(p);
  profile::ProfilerConfig pcfg;
  pcfg.pmu_noise = 0.0;
  profile::Profiler prof(est, pcfg);
  profile::ProfileDatabase db;
  for (const auto& p : lib) db.put(prof.profileProgram(p, 16));

  RingBufferLog log;
  sim::SimConfig cfg;
  cfg.nodes = 2;
  cfg.policy = sched::PolicyKind::kSNS;
  cfg.sink = &log;
  sim::ClusterSimulator sim(est, lib, db, cfg);
  const auto res = sim.run({{"MG", 16, 0.9, 0.0, 1, 0.0},
                            {"NW", 16, 0.9, 0.0, 1, 0.0},
                            {"EP", 16, 0.9, 0.0, 1, 0.0}});
  std::size_t completed = 0;
  for (const auto& j : res.jobs) completed += j.completed() ? 1 : 0;
  ASSERT_EQ(completed, 3u);

  const auto events = log.snapshot();
  std::set<EventType> types;
  for (const auto& e : events) types.insert(e.type);
  EXPECT_GE(types.size(), 5u);

  // The export must survive a dump/parse round trip through util::Json.
  const auto j =
      util::Json::parse(sim::exportPerfetto(res, events).dump());
  const auto& ev = j.get("traceEvents").asArray();

  std::set<int> named_pids;
  std::size_t slices = 0;
  std::set<double> slice_tids;
  for (const auto& e : ev) {
    const auto& ph = e.get("ph").asString();
    if (ph == "M" && e.get("name").asString() == "process_name") {
      named_pids.insert(static_cast<int>(e.get("pid").asNumber()));
    }
    if (ph == "X") {
      ++slices;
      slice_tids.insert(e.get("tid").asNumber());
    }
  }
  // One track per node (pids 1, 2) plus the scheduler lane (pid 0).
  EXPECT_TRUE(named_pids.count(0));
  EXPECT_TRUE(named_pids.count(1));
  EXPECT_TRUE(named_pids.count(2));
  // At least one slice per completed job; tids identify jobs.
  EXPECT_GE(slices, completed);
  EXPECT_GE(slice_tids.size(), completed);
}

}  // namespace
}  // namespace sns::obs
