#include "sns/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sns/util/error.hpp"

namespace sns::obs {
namespace {

TEST(Counter, AccumulatesIncrements) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Gauge, TracksValueAndHighWaterMark) {
  Gauge g;
  g.set(4.0);
  g.set(9.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
}

TEST(Histogram, BucketsUseInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  // Exactly on a bound lands in that bucket, just above spills over.
  h.observe(1.0);
  h.observe(1.0000001);
  h.observe(0.0);
  h.observe(5.0);
  h.observe(100.0);  // overflow bucket
  ASSERT_EQ(h.bucketCount(), 4u);
  EXPECT_EQ(h.bucketValue(0), 2u);  // 1.0 and 0.0
  EXPECT_EQ(h.bucketValue(1), 1u);  // 1.0000001
  EXPECT_EQ(h.bucketValue(2), 1u);  // 5.0
  EXPECT_EQ(h.bucketValue(3), 1u);  // 100.0
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.minSeen(), 0.0);
  EXPECT_DOUBLE_EQ(h.maxSeen(), 100.0);
  EXPECT_DOUBLE_EQ(h.upperBound(2), 5.0);
  EXPECT_EQ(h.upperBound(3), std::numeric_limits<double>::infinity());
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // all in (10, 20]
  // The whole mass sits in bucket 1; the median interpolates to its middle.
  EXPECT_NEAR(h.quantile(0.5), 15.0, 1e-9);
  // q=1.0 used to extrapolate to the bucket's upper bound (20.0); estimates
  // are clamped to the observed range, and every sample was exactly 15.0.
  EXPECT_NEAR(h.quantile(1.0), 15.0, 1e-9);
  // Overflow-bucket quantiles clamp to the largest observed value.
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 1000.0);
}

TEST(Histogram, SmallSampleQuantilesStayInObservedRange) {
  // One sample must never report a p99 past itself: linear interpolation
  // inside the (100, 1000] bucket would place q=0.99 near 991 when the only
  // observation is 150.
  Histogram h({1.0, 10.0, 100.0, 1000.0});
  h.observe(150.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 150.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 150.0);
  // Two spread samples: estimates stay within [min, max] observed.
  h.observe(3.0);
  EXPECT_GE(h.quantile(0.99), 3.0);
  EXPECT_LE(h.quantile(0.99), 150.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), util::PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), util::PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), util::PreconditionError);
  Histogram h({1.0});
  EXPECT_THROW(h.quantile(1.5), util::PreconditionError);
}

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.inc(5.0);
  EXPECT_DOUBLE_EQ(reg.counter("x").value(), 5.0);
  EXPECT_EQ(&reg.counter("x"), &a);

  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  h.observe(1.5);
  // Re-registration with different bounds keeps the original histogram.
  Histogram& h2 = reg.histogram("lat", {100.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bucketCount(), 3u);
  EXPECT_EQ(h2.count(), 1u);
}

TEST(Registry, FindReturnsNullForUnknownNames) {
  Registry reg;
  reg.counter("present");
  EXPECT_NE(reg.findCounter("present"), nullptr);
  EXPECT_EQ(reg.findCounter("absent"), nullptr);
  EXPECT_EQ(reg.findGauge("absent"), nullptr);
  EXPECT_EQ(reg.findHistogram("absent"), nullptr);
}

TEST(Registry, ToJsonRoundTripsThroughParser) {
  Registry reg;
  reg.counter("jobs").inc(3.0);
  reg.gauge("queue").set(2.0);
  reg.histogram("wait", {1.0, 10.0}).observe(4.0);

  const auto j = util::Json::parse(reg.toJson().dump());
  EXPECT_DOUBLE_EQ(j.get("counters").get("jobs").asNumber(), 3.0);
  EXPECT_DOUBLE_EQ(j.get("gauges").get("queue").get("value").asNumber(), 2.0);
  const auto& h = j.get("histograms").get("wait");
  EXPECT_EQ(h.get("count").asNumber(), 1.0);
  const auto& buckets = h.get("buckets").asArray();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[1].get("le").asNumber(), 10.0);
  EXPECT_DOUBLE_EQ(buckets[1].get("count").asNumber(), 1.0);
  EXPECT_FALSE(buckets[2].has("le"));  // overflow bucket has no finite bound
}

TEST(Registry, EmptyRegistrySerializesEmptySections) {
  Registry reg;
  const auto j = util::Json::parse(reg.toJson().dump());
  EXPECT_TRUE(j.get("counters").isObject());
  EXPECT_TRUE(j.get("counters").asObject().empty());
  EXPECT_TRUE(j.get("histograms").asObject().empty());
}

TEST(Registry, RenderTableListsEveryInstrument) {
  Registry reg;
  reg.counter("sim.jobs").inc();
  reg.gauge("sim.depth").set(1.0);
  reg.histogram("sim.wait", {1.0}).observe(0.5);
  const std::string table = reg.renderTable();
  EXPECT_NE(table.find("sim.jobs"), std::string::npos);
  EXPECT_NE(table.find("sim.depth"), std::string::npos);
  EXPECT_NE(table.find("sim.wait"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace sns::obs
