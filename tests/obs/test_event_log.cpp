#include "sns/obs/sink.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sns/obs/recorder.hpp"
#include "sns/util/error.hpp"
#include "sns/util/json.hpp"

namespace sns::obs {
namespace {

Event makeEvent(EventType type, std::int64_t job) {
  Event e;
  e.type = type;
  e.job = job;
  return e;
}

TEST(Event, TypeNamesAreDistinct) {
  const EventType all[] = {
      EventType::kJobSubmitted,      EventType::kScheduleAttempt,
      EventType::kPlacementDecided,  EventType::kWaysDonated,
      EventType::kWaysReclaimed,     EventType::kBackfillSkipped,
      EventType::kExplorationStarted, EventType::kExplorationPreempted,
      EventType::kBandwidthThrottled, EventType::kMonitorEpisode,
      EventType::kJobStarted,        EventType::kJobFinished,
  };
  std::set<std::string> names;
  for (auto t : all) names.insert(to_string(t));
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_EQ(names.count("unknown"), 0u);
}

TEST(Event, ToJsonOmitsDefaultedFields) {
  Event e;
  e.type = EventType::kJobFinished;
  e.time = 12.5;
  const auto j = toJson(e);
  EXPECT_EQ(j.get("type").asString(), "job_finished");
  EXPECT_DOUBLE_EQ(j.get("t").asNumber(), 12.5);
  EXPECT_FALSE(j.has("job"));
  EXPECT_FALSE(j.has("candidates"));
}

TEST(Event, ToJsonCarriesCandidates) {
  Event e;
  e.type = EventType::kPlacementDecided;
  e.job = 3;
  e.candidates = {{0, 1.5}, {2, 0.25}};
  const auto j = toJson(e);
  const auto& cands = j.get("candidates").asArray();
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[1].get("node").asNumber(), 2.0);
  EXPECT_DOUBLE_EQ(cands[1].get("score").asNumber(), 0.25);
}

TEST(RingBuffer, PreservesOrderBelowCapacity) {
  RingBufferLog log(8);
  for (int i = 0; i < 5; ++i) {
    log.record(makeEvent(EventType::kJobSubmitted, i));
  }
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(snap[static_cast<std::size_t>(i)].job, i);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBufferLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(makeEvent(EventType::kJobSubmitted, i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.totalRecorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Flight-recorder semantics: the newest 4 survive, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].job, 6 + i);
  }
}

TEST(RingBuffer, DroppedThroughTracksOverwrittenTimestamps) {
  RingBufferLog log(4);
  for (int i = 0; i < 4; ++i) {
    Event e = makeEvent(EventType::kJobSubmitted, i);
    e.time = 100.0 * i;
    log.record(e);
  }
  // Nothing dropped yet.
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_DOUBLE_EQ(log.droppedThrough(), 0.0);

  // Each further record overwrites the current oldest; the high-water
  // timestamp follows the most recently evicted event.
  log.record(makeEvent(EventType::kJobSubmitted, 4));
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_DOUBLE_EQ(log.droppedThrough(), 0.0);  // the t=0 event went first
  log.record(makeEvent(EventType::kJobSubmitted, 5));
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_DOUBLE_EQ(log.droppedThrough(), 100.0);
  log.record(makeEvent(EventType::kJobSubmitted, 6));
  EXPECT_DOUBLE_EQ(log.droppedThrough(), 200.0);
}

TEST(RingBuffer, ClearResetsEverything) {
  RingBufferLog log(2);
  log.record(makeEvent(EventType::kJobStarted, 1));
  log.record(makeEvent(EventType::kJobStarted, 2));
  log.record(makeEvent(EventType::kJobStarted, 3));
  ASSERT_EQ(log.dropped(), 1u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.totalRecorded(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_DOUBLE_EQ(log.droppedThrough(), 0.0);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBufferLog(0), util::PreconditionError);
}

TEST(JsonlSink, EachLineParsesBack) {
  std::ostringstream os;
  JsonlSink sink(os);
  Event e1 = makeEvent(EventType::kJobStarted, 7);
  e1.what = "MG";
  e1.node = 3;
  sink.record(e1);
  sink.record(makeEvent(EventType::kJobFinished, 7));
  EXPECT_EQ(sink.count(), 2u);

  std::istringstream is(os.str());
  std::string line;
  std::vector<util::Json> parsed;
  while (std::getline(is, line)) parsed.push_back(util::Json::parse(line));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].get("type").asString(), "job_started");
  EXPECT_EQ(parsed[0].get("what").asString(), "MG");
  EXPECT_EQ(parsed[0].get("node").asNumber(), 3.0);
  EXPECT_EQ(parsed[1].get("type").asString(), "job_finished");
}

TEST(JsonlSink, FinishAppendsDigestLine) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.record(makeEvent(EventType::kJobStarted, 1));
  sink.record(makeEvent(EventType::kJobFinished, 1));
  EXPECT_TRUE(sink.finish());
  EXPECT_EQ(sink.writeErrors(), 0u);

  std::istringstream is(os.str());
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    last = line;
    ++lines;
  }
  ASSERT_EQ(lines, 3u);
  const util::Json digest = util::Json::parse(last);
  EXPECT_TRUE(digest.get("jsonl_digest").asBool());
  EXPECT_EQ(digest.get("events").asNumber(), 2.0);
  EXPECT_EQ(digest.get("write_errors").asNumber(), 0.0);
}

TEST(JsonlSink, CountsWriteFailuresPerEvent) {
  // A stream wedged at failbit models a full disk / broken pipe: every
  // write must be counted as an error instead of silently dropped, and
  // the error flags must be cleared so later events still get a chance.
  std::ostringstream os;
  JsonlSink sink(os);
  sink.record(makeEvent(EventType::kJobStarted, 1));
  ASSERT_EQ(sink.writeErrors(), 0u);

  os.setstate(std::ios::failbit);
  sink.record(makeEvent(EventType::kJobStarted, 2));
  // clear() in record() re-arms the stream; wedge it again for the next.
  os.setstate(std::ios::failbit);
  sink.record(makeEvent(EventType::kJobStarted, 3));
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.writeErrors(), 2u);

  // The digest surfaces the losses; a healthy stream writes it cleanly.
  EXPECT_TRUE(sink.finish());
  std::istringstream is(os.str());
  std::string line, last;
  while (std::getline(is, line)) last = line;
  EXPECT_EQ(util::Json::parse(last).get("write_errors").asNumber(), 2.0);

  // And a digest that itself fails to write reports failure.
  os.setstate(std::ios::badbit);
  EXPECT_FALSE(sink.finish());
  EXPECT_EQ(sink.writeErrors(), 3u);
}

TEST(TeeSink, FansOutToAllSinks) {
  NullSink a, b;
  TeeSink tee;
  tee.add(&a);
  tee.add(&b);
  tee.add(nullptr);  // ignored
  tee.record(makeEvent(EventType::kWaysDonated, -1));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.count(), 1u);
}

TEST(Recorder, DisabledRecorderIsANoOp) {
  Recorder rec;  // no sink attached
  EXPECT_FALSE(rec.enabled());
  rec.jobSubmitted(1, "MG", 16);
  rec.placementDecided(1, "MG", 2, 9, 10.0, false, {{0, 1.0}});
  rec.jobFinished(1, "MG", 100.0);
  // Attach a sink afterwards: nothing was buffered while disabled.
  NullSink sink;
  rec.setSink(&sink);
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(Recorder, StampsCurrentTimeOnEmit) {
  RingBufferLog log(8);
  Recorder rec(&log);
  rec.setTime(10.0);
  rec.jobSubmitted(1, "MG", 16);
  rec.setTime(25.5);
  rec.jobStarted(1, "MG", 0, 2, 9, 2, false);
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].time, 10.0);
  EXPECT_EQ(snap[0].type, EventType::kJobSubmitted);
  EXPECT_EQ(snap[0].ways, 16);  // procs travel in the ways field
  EXPECT_DOUBLE_EQ(snap[1].time, 25.5);
  EXPECT_EQ(snap[1].type, EventType::kJobStarted);
  EXPECT_DOUBLE_EQ(snap[1].value, 2.0);  // node count
}

}  // namespace
}  // namespace sns::obs
