#include "sns/app/miss_curve.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::app {
namespace {

TEST(MissCurve, MonotoneDecreasingInCapacity) {
  MissCurve m{0.9, 0.1, 1.0, 2.0};
  double prev = 1.0;
  for (double x = 0.1; x <= 40.0; x *= 1.5) {
    const double v = m.at(x);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(MissCurve, LimitsApproachColdAndWarm) {
  MissCurve m{0.8, 0.2, 1.0, 2.0};
  EXPECT_NEAR(m.at(1e-6), 0.8, 1e-3);
  EXPECT_NEAR(m.at(1e6), 0.2, 1e-3);
}

TEST(MissCurve, HalfwayAtHalfMb) {
  MissCurve m{0.8, 0.2, 2.0, 2.0};
  EXPECT_NEAR(m.at(2.0), 0.5, 1e-12);
}

TEST(MissCurve, ShapeControlsSteepness) {
  MissCurve gentle{0.8, 0.2, 1.0, 1.0};
  MissCurve steep{0.8, 0.2, 1.0, 4.0};
  // Below half_mb the steep curve stays closer to cold; above, closer to warm.
  EXPECT_GT(steep.at(0.25), gentle.at(0.25));
  EXPECT_LT(steep.at(4.0), gentle.at(4.0));
}

TEST(MissCurve, ClampedToUnitInterval) {
  MissCurve m{1.5, -0.2, 1.0, 2.0};  // out-of-range endpoints
  EXPECT_LE(m.at(0.01), 1.0);
  EXPECT_GE(m.at(100.0), 0.0);
}

TEST(MissCurve, RejectsBadParameters) {
  MissCurve bad_half{0.8, 0.2, 0.0, 2.0};
  EXPECT_THROW(bad_half.at(1.0), util::PreconditionError);
  MissCurve bad_shape{0.8, 0.2, 1.0, 0.0};
  EXPECT_THROW(bad_shape.at(1.0), util::PreconditionError);
}

TEST(MissCurve, ZeroCapacityIsSafe) {
  MissCurve m{0.9, 0.1, 1.0, 2.0};
  EXPECT_NEAR(m.at(0.0), 0.9, 1e-3);
}

class MissCurveSweep : public ::testing::TestWithParam<double> {};

TEST_P(MissCurveSweep, WithinEndpointBounds) {
  MissCurve m{0.75, 0.15, 1.5, 1.8};
  const double v = m.at(GetParam());
  EXPECT_GE(v, 0.15 - 1e-12);
  EXPECT_LE(v, 0.75 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Capacities, MissCurveSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 20.0, 70.0));

}  // namespace
}  // namespace sns::app
