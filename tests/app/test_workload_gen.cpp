#include "sns/app/workload_gen.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sns/app/library.hpp"
#include "sns/util/error.hpp"

namespace sns::app {
namespace {

double fakeCeTime(const JobSpec& j) {
  // Simple deterministic stand-in: BW long, HC short, others medium.
  if (j.program == "BW") return 700.0;
  if (j.program == "HC") return 485.0;
  return 200.0;
}

TEST(WorkloadGen, RandomSequenceHasRequestedLength) {
  util::Rng rng(1);
  const auto lib = programLibrary();
  const auto seq = randomSequence(rng, lib, 20, 0.9);
  EXPECT_EQ(seq.size(), 20u);
  for (const auto& j : seq) EXPECT_DOUBLE_EQ(j.alpha, 0.9);
}

TEST(WorkloadGen, ProcsAre16Or28) {
  util::Rng rng(2);
  const auto lib = programLibrary();
  const auto seq = randomSequence(rng, lib, 200, 0.9);
  for (const auto& j : seq) {
    EXPECT_TRUE(j.procs == 16 || j.procs == 28) << j.program << " " << j.procs;
  }
}

TEST(WorkloadGen, RigidProgramsAlways16) {
  util::Rng rng(3);
  const auto lib = programLibrary();
  const auto seq = randomSequence(rng, lib, 400, 0.9);
  for (const auto& j : seq) {
    const auto& prog = findProgram(lib, j.program);
    if (prog.pow2_procs || !prog.multi_node) {
      EXPECT_EQ(j.procs, prog.ref_procs) << j.program;
    }
  }
}

TEST(WorkloadGen, FlexibleProgramsUseBothSizes) {
  util::Rng rng(4);
  const auto lib = programLibrary();
  const auto seq = randomSequence(rng, lib, 600, 0.9);
  std::map<int, int> counts;
  for (const auto& j : seq) {
    if (!findProgram(lib, j.program).pow2_procs &&
        findProgram(lib, j.program).multi_node) {
      ++counts[j.procs];
    }
  }
  EXPECT_GT(counts[16], 0);
  EXPECT_GT(counts[28], 0);
}

TEST(WorkloadGen, SamplesEveryProgramEventually) {
  util::Rng rng(5);
  const auto lib = programLibrary();
  const auto seq = randomSequence(rng, lib, 1000, 0.9);
  std::map<std::string, int> seen;
  for (const auto& j : seq) ++seen[j.program];
  EXPECT_EQ(seen.size(), lib.size());
}

TEST(WorkloadGen, DeterministicForSeed) {
  const auto lib = programLibrary();
  util::Rng a(9), b(9);
  const auto s1 = randomSequence(a, lib, 50, 0.9);
  const auto s2 = randomSequence(b, lib, 50, 0.9);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].program, s2[i].program);
    EXPECT_EQ(s1[i].procs, s2[i].procs);
  }
}

TEST(ScalingRatio, AllScalingIsOne) {
  std::vector<JobSpec> seq = {{"BW", 28, 0.9, 0.0, 1, 0.0},
                              {"BW", 28, 0.9, 0.0, 1, 0.0}};
  EXPECT_DOUBLE_EQ(scalingRatio(seq, {"BW"}, fakeCeTime), 1.0);
}

TEST(ScalingRatio, NoneScalingIsZero) {
  std::vector<JobSpec> seq = {{"HC", 28, 0.9, 0.0, 1, 0.0}};
  EXPECT_DOUBLE_EQ(scalingRatio(seq, {"BW"}, fakeCeTime), 0.0);
}

TEST(ScalingRatio, WeightedByCoreHours) {
  std::vector<JobSpec> seq = {{"BW", 28, 0.9, 0.0, 1, 0.0},
                              {"HC", 28, 0.9, 0.0, 1, 0.0}};
  const double expect = 700.0 / (700.0 + 485.0);
  EXPECT_NEAR(scalingRatio(seq, {"BW"}, fakeCeTime), expect, 1e-12);
}

TEST(ScalingRatio, RepeatsCount) {
  std::vector<JobSpec> seq = {{"BW", 28, 0.9, 0.0, 5, 0.0},
                              {"HC", 28, 0.9, 0.0, 1, 0.0}};
  const double expect = 5 * 700.0 / (5 * 700.0 + 485.0);
  EXPECT_NEAR(scalingRatio(seq, {"BW"}, fakeCeTime), expect, 1e-12);
}

TEST(ScalingRatio, EmptySequenceThrows) {
  std::vector<JobSpec> seq;
  EXPECT_THROW(scalingRatio(seq, {"BW"}, fakeCeTime), util::PreconditionError);
}

TEST(RatioMix, HitsTargetApproximately) {
  util::Rng rng(6);
  for (double target : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const auto seq =
        ratioControlledMix(rng, "BW", "HC", 30, 28, target, fakeCeTime);
    EXPECT_EQ(seq.size(), 30u);
    const double got = scalingRatio(seq, {"BW"}, fakeCeTime);
    EXPECT_NEAR(got, target, 0.05) << "target " << target;
  }
}

TEST(RatioMix, ZeroTargetHasNoScalingJobs) {
  util::Rng rng(7);
  const auto seq = ratioControlledMix(rng, "BW", "HC", 30, 28, 0.0, fakeCeTime);
  for (const auto& j : seq) EXPECT_EQ(j.program, "HC");
}

TEST(RatioMix, FullTargetIsAllScalingJobs) {
  util::Rng rng(8);
  const auto seq = ratioControlledMix(rng, "BW", "HC", 30, 28, 1.0, fakeCeTime);
  for (const auto& j : seq) EXPECT_EQ(j.program, "BW");
}

TEST(RatioMix, ValidatesArguments) {
  util::Rng rng(9);
  EXPECT_THROW(ratioControlledMix(rng, "BW", "HC", 0, 28, 0.5, fakeCeTime),
               util::PreconditionError);
  EXPECT_THROW(ratioControlledMix(rng, "BW", "HC", 10, 28, 1.5, fakeCeTime),
               util::PreconditionError);
}

class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, AchievedRatioWithinBand) {
  util::Rng rng(10);
  const auto seq =
      ratioControlledMix(rng, "BW", "HC", 30, 28, GetParam(), fakeCeTime);
  EXPECT_NEAR(scalingRatio(seq, {"BW"}, fakeCeTime), GetParam(), 0.035);
}

INSTANTIATE_TEST_SUITE_P(Targets, RatioSweep,
                         ::testing::Values(0.1, 0.25, 0.4, 0.6, 0.75, 0.9));

}  // namespace
}  // namespace sns::app
