#include "sns/app/jobspec_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "sns/app/library.hpp"
#include "sns/util/error.hpp"

namespace sns::app {
namespace {

TEST(JobSpecIo, RoundTripPreservesEverything) {
  JobSpec j;
  j.program = "MG";
  j.procs = 28;
  j.alpha = 0.85;
  j.submit_time = 12.5;
  j.repeats = 5;
  j.ce_time_override = 321.0;
  const JobSpec back = jobSpecFromJson(jobSpecToJson(j));
  EXPECT_EQ(back.program, "MG");
  EXPECT_EQ(back.procs, 28);
  EXPECT_DOUBLE_EQ(back.alpha, 0.85);
  EXPECT_DOUBLE_EQ(back.submit_time, 12.5);
  EXPECT_EQ(back.repeats, 5);
  EXPECT_DOUBLE_EQ(back.ce_time_override, 321.0);
}

TEST(JobSpecIo, DefaultsApplyForOptionalFields) {
  const JobSpec j = jobSpecFromJson(util::Json::parse(R"({"program":"EP"})"));
  EXPECT_EQ(j.program, "EP");
  EXPECT_EQ(j.procs, 16);
  EXPECT_DOUBLE_EQ(j.alpha, 0.9);
  EXPECT_DOUBLE_EQ(j.submit_time, 0.0);
  EXPECT_EQ(j.repeats, 1);
}

TEST(JobSpecIo, RejectsInvalidSpecs) {
  EXPECT_THROW(jobSpecFromJson(util::Json::parse(R"({})")), util::DataError);
  EXPECT_THROW(jobSpecFromJson(util::Json::parse(R"({"program":""})")),
               util::DataError);
  EXPECT_THROW(jobSpecFromJson(util::Json::parse(R"({"program":"X","procs":0})")),
               util::DataError);
  EXPECT_THROW(
      jobSpecFromJson(util::Json::parse(R"({"program":"X","alpha":1.5})")),
      util::DataError);
  EXPECT_THROW(
      jobSpecFromJson(util::Json::parse(R"({"program":"X","repeats":0})")),
      util::DataError);
}

TEST(JobSpecIo, ListRoundTrip) {
  util::Rng rng(5);
  const auto lib = programLibrary();
  const auto seq = randomSequence(rng, lib, 25, 0.9);
  const auto back = jobListFromJson(jobListToJson(seq));
  ASSERT_EQ(back.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(back[i].program, seq[i].program);
    EXPECT_EQ(back[i].procs, seq[i].procs);
  }
}

TEST(JobSpecIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "sns_jobs_test.json";
  util::Rng rng(6);
  const auto lib = programLibrary();
  const auto seq = randomSequence(rng, lib, 10, 0.9);
  saveJobList(path.string(), seq);
  const auto back = loadJobList(path.string());
  std::filesystem::remove(path);
  ASSERT_EQ(back.size(), seq.size());
  EXPECT_EQ(back.front().program, seq.front().program);
}

TEST(JobSpecIo, LoadMissingFileThrows) {
  EXPECT_THROW(loadJobList("/nonexistent/jobs.json"), util::DataError);
}

TEST(JobSpecIo, MalformedListThrows) {
  EXPECT_THROW(jobListFromJson(util::Json::parse(R"({"jobs":[{"procs":4}]})")),
               util::DataError);
  EXPECT_THROW(jobListFromJson(util::Json::parse(R"({"nope":[]})")),
               util::DataError);
}

}  // namespace
}  // namespace sns::app
