#include "sns/app/comm.hpp"

#include <gtest/gtest.h>

#include "sns/util/error.hpp"

namespace sns::app {
namespace {

TEST(Comm, SingleNodeHasNoRemoteTraffic) {
  for (auto p : {CommPattern::kNone, CommPattern::kRing, CommPattern::kAllToAll,
                 CommPattern::kButterfly}) {
    EXPECT_DOUBLE_EQ(remoteFraction(p, 16, 16, 1), 0.0) << to_string(p);
  }
}

TEST(Comm, NonePatternNeverRemote) {
  EXPECT_DOUBLE_EQ(remoteFraction(CommPattern::kNone, 16, 2, 8), 0.0);
}

TEST(Comm, RingRemoteFractionIsOneOverC) {
  EXPECT_DOUBLE_EQ(remoteFraction(CommPattern::kRing, 16, 8, 2), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(remoteFraction(CommPattern::kRing, 16, 2, 8), 1.0 / 2.0);
}

TEST(Comm, AllToAllMatchesUniformPeerProbability) {
  // 16 procs, 8 per node: peer remote with probability (16-8)/15.
  EXPECT_DOUBLE_EQ(remoteFraction(CommPattern::kAllToAll, 16, 8, 2), 8.0 / 15.0);
  EXPECT_DOUBLE_EQ(remoteFraction(CommPattern::kAllToAll, 16, 2, 8), 14.0 / 15.0);
}

TEST(Comm, ButterflyGrowsWithLogNodes) {
  const double f2 = remoteFraction(CommPattern::kButterfly, 16, 8, 2);
  const double f4 = remoteFraction(CommPattern::kButterfly, 16, 4, 4);
  const double f8 = remoteFraction(CommPattern::kButterfly, 16, 2, 8);
  EXPECT_DOUBLE_EQ(f2, 0.25);
  EXPECT_DOUBLE_EQ(f4, 0.50);
  EXPECT_DOUBLE_EQ(f8, 0.75);
}

TEST(Comm, RemoteFractionIsMonotoneInSpreading) {
  for (auto p : {CommPattern::kRing, CommPattern::kAllToAll, CommPattern::kButterfly}) {
    double prev = 0.0;
    for (int n : {1, 2, 4, 8}) {
      const double f = remoteFraction(p, 16, 16 / n, n);
      EXPECT_GE(f + 1e-12, prev) << to_string(p) << " at " << n << " nodes";
      prev = f;
    }
  }
}

TEST(Comm, FractionBoundedByOne) {
  EXPECT_LE(remoteFraction(CommPattern::kRing, 16, 1, 16), 1.0);
  EXPECT_LE(remoteFraction(CommPattern::kAllToAll, 1024, 1, 1024), 1.0);
}

TEST(Comm, SingleProcessJobNeverRemote) {
  EXPECT_DOUBLE_EQ(remoteFraction(CommPattern::kAllToAll, 1, 1, 4), 0.0);
}

TEST(Comm, ValidatesArguments) {
  EXPECT_THROW(remoteFraction(CommPattern::kRing, 0, 1, 1), util::PreconditionError);
  EXPECT_THROW(remoteFraction(CommPattern::kRing, 1, 0, 1), util::PreconditionError);
  EXPECT_THROW(remoteFraction(CommPattern::kRing, 1, 1, 0), util::PreconditionError);
}

TEST(Comm, StringRoundTrip) {
  for (auto p : {CommPattern::kNone, CommPattern::kRing, CommPattern::kAllToAll,
                 CommPattern::kButterfly}) {
    EXPECT_EQ(commPatternFromString(to_string(p)), p);
  }
  EXPECT_THROW(commPatternFromString("bogus"), util::DataError);
}

}  // namespace
}  // namespace sns::app
