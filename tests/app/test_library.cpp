#include "sns/app/library.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sns/util/error.hpp"

namespace sns::app {
namespace {

TEST(Library, HasTwelveProgramsInPaperOrder) {
  const auto lib = programLibrary();
  const auto names = programNames();
  ASSERT_EQ(lib.size(), 12u);
  ASSERT_EQ(names.size(), 12u);
  for (std::size_t i = 0; i < lib.size(); ++i) {
    EXPECT_EQ(lib[i].name, names[i]);
  }
}

TEST(Library, NamesAreUnique) {
  const auto lib = programLibrary();
  std::set<std::string> names;
  for (const auto& p : lib) names.insert(p.name);
  EXPECT_EQ(names.size(), lib.size());
}

TEST(Library, FrameworkCoverageMatchesPaper) {
  const auto lib = programLibrary();
  int spark = 0, tf = 0, mpi = 0, repl = 0;
  for (const auto& p : lib) {
    switch (p.framework) {
      case Framework::kSpark: ++spark; break;
      case Framework::kTensorFlow: ++tf; break;
      case Framework::kMpi: ++mpi; break;
      case Framework::kReplicated: ++repl; break;
    }
  }
  EXPECT_EQ(spark, 3);  // WC, TS, NW from HiBench
  EXPECT_EQ(tf, 2);     // GAN, RNN
  EXPECT_EQ(mpi, 5);    // MG, CG, EP, LU from NPB + BFS from Graph500
  EXPECT_EQ(repl, 2);   // HC, BW from SPEC CPU
}

TEST(Library, TensorFlowProgramsAreSingleNode) {
  const auto lib = programLibrary();
  EXPECT_FALSE(findProgram(lib, "GAN").multi_node);
  EXPECT_FALSE(findProgram(lib, "RNN").multi_node);
  EXPECT_TRUE(findProgram(lib, "MG").multi_node);
}

TEST(Library, MpiProgramsNeedPowerOfTwo) {
  const auto lib = programLibrary();
  for (const char* n : {"MG", "CG", "EP", "LU", "BFS"}) {
    EXPECT_TRUE(findProgram(lib, n).pow2_procs) << n;
  }
  EXPECT_FALSE(findProgram(lib, "WC").pow2_procs);
}

TEST(Library, ReferenceTimesInPaperRange) {
  // §6.1: inputs sized for 50 s - 1200 s runs.
  for (const auto& p : programLibrary()) {
    EXPECT_GE(p.solo_time_ref, 50.0) << p.name;
    EXPECT_LE(p.solo_time_ref, 1200.0) << p.name;
  }
}

TEST(Library, ProgramsStartUncalibrated) {
  for (const auto& p : programLibrary()) {
    EXPECT_FALSE(p.calibrated()) << p.name;
  }
}

TEST(Library, OnlyBfsHasSpreadPenalties) {
  for (const auto& p : programLibrary()) {
    if (p.name == "BFS") {
      EXPECT_GT(p.spread_instr_overhead, 0.0);
      EXPECT_GT(p.spread_mem_overhead, 0.0);
      EXPECT_GT(p.spread_miss_boost, 0.0);
    } else {
      EXPECT_EQ(p.spread_instr_overhead, 0.0) << p.name;
    }
  }
}

TEST(Library, ReplicatedJobsDoNotCommunicate) {
  const auto lib = programLibrary();
  for (const char* n : {"HC", "BW", "GAN", "RNN"}) {
    const auto& p = findProgram(lib, n);
    EXPECT_EQ(p.comm.pattern, CommPattern::kNone) << n;
    EXPECT_EQ(p.comm.comm_frac_ref, 0.0) << n;
  }
}

TEST(Library, NpbCommunicationUnderTenPercent) {
  // Fig 7: NPB programs spend < 10% of time communicating at the reference
  // placement (CG's 12% slot is mostly wait, counted separately).
  const auto lib = programLibrary();
  for (const char* n : {"MG", "EP", "LU"}) {
    EXPECT_LT(findProgram(lib, n).comm.comm_frac_ref, 0.10) << n;
  }
}

TEST(Library, FindProgramThrowsOnUnknown) {
  const auto lib = programLibrary();
  EXPECT_THROW(findProgram(lib, "NOPE"), util::DataError);
}

TEST(Library, PhasesNormalizeToUnitWeight) {
  for (const auto& p : programLibrary()) {
    const auto phases = p.effectivePhases();
    double total = 0.0;
    for (const auto& ph : phases) total += ph.weight;
    EXPECT_NEAR(total, 1.0, 1e-12) << p.name;
  }
}

TEST(Program, MissRatioRespectsSpreadBoost) {
  const auto lib = programLibrary();
  const auto& bfs = findProgram(lib, "BFS");
  EXPECT_GT(bfs.missRatio(4.0, 1.0), bfs.missRatio(4.0, 0.0));
}

TEST(Program, InstrFactorGrowsWithRemoteFraction) {
  const auto lib = programLibrary();
  const auto& bfs = findProgram(lib, "BFS");
  EXPECT_DOUBLE_EQ(bfs.instrFactor(0.0), 1.0);
  EXPECT_GT(bfs.instrFactor(0.5), 1.0);
}

TEST(Program, FrameworkToString) {
  EXPECT_EQ(to_string(Framework::kMpi), "MPI");
  EXPECT_EQ(to_string(Framework::kSpark), "Spark");
  EXPECT_EQ(to_string(Framework::kTensorFlow), "TensorFlow");
  EXPECT_EQ(to_string(Framework::kReplicated), "Replicated");
}

}  // namespace
}  // namespace sns::app
