// Fixture: hot-path-allocation. Definite per-activation allocations
// inside an SNS_HOT_PATH body fire; growth calls on warm scratch, the
// same constructs in unmarked functions, and allowed lines stay clean.
#include <memory>
#include <string>
#include <vector>

void hotBody(std::vector<int>& scratch) {
  SNS_HOT_PATH("fixture.hot");
  int* raw = new int[4];
  auto owned = std::make_unique<int>(1);
  std::string label = std::to_string(7);
  std::vector<int> fresh;
  // snslint: allow(hot-path-allocation)
  auto excused = std::make_shared<int>(2);
  scratch.push_back(raw[0]);  // growth on warm scratch: the runtime gate's job
  fresh.clear();
  (void)owned;
  (void)label;
  (void)excused;
  delete[] raw;
}

void coldBody() {
  int* p = new int(3);  // unmarked function: not this rule's business
  delete p;
}

// Prose about operator new in a comment, and the string "new Foo()"
// below, never fire: literals are lexed out before rules run.
inline const char* doc() { return "new Foo()"; }
