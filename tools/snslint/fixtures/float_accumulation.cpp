// Fixture: rule float-accumulation. A float sum inside an
// unordered-container loop depends on hash iteration order.
#include <unordered_map>
#include <vector>

double order_dependent(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {  // unordered-iteration fires here
    total += w;                          // FIRES float-accumulation
  }
  return total;
}

double order_independent(const std::vector<double>& ordered) {
  double total = 0.0;
  for (double w : ordered) total += w;  // ordered: no finding
  return total;
}

long counting_is_fine(const std::unordered_map<int, double>& weights) {
  long n = 0;
  // Integer counting over an unordered walk is order-independent.
  // snslint: allow(unordered-iteration)
  for (const auto& kv : weights) n += kv.first;
  return n;
}
