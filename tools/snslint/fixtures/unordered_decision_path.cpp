// Fixture for the unordered-decision-path rule. The test scans this file
// under a display path matching DECISION_PATH_GLOBS (sns/sched/
// finish_calendar*), where ANY std::unordered_* mention fires — a member
// declaration, a local, or a parameter type, not just iteration. Under an
// ordinary display path the same contents raise nothing from this rule.
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct BadCalendar {
  std::unordered_map<long, double> key_by_id_;             // fires
  std::unordered_set<long> members_;                       // fires
  std::unordered_map<long, int> tolerated_;  // snslint: allow(unordered-decision-path)
};

inline int lookups(const std::unordered_map<long, double>& m,  // fires
                   long id) {
  return static_cast<int>(m.count(id));
}

// Ordered and flat structures are the idiom; none of these may fire,
// and prose mentions of std::unordered_map in comments stay clean too.
struct GoodCalendar {
  std::vector<long> heap_;
  std::vector<double> key_;
  std::map<long, double> ordered_;
};
