// Fixture: rule raw-rand. Process-global or hardware randomness is not
// replayable; sns::util::Rng with an explicit seed is.
#include <cstdlib>
#include <random>

int bad_random() {
  srand(42);                      // FIRES
  int a = rand();                 // FIRES
  std::random_device rd;          // FIRES
  return a + static_cast<int>(rd());
}

int allowed_random() {
  // Entropy for a session id only, never for scheduling decisions.
  std::random_device rd;  // snslint: allow(raw-rand)
  return static_cast<int>(rd());
}

unsigned fine(unsigned seed) {
  // A named operand is not the C rand(): no finding.
  unsigned grand = seed * 2654435761u;
  return grand;
}
