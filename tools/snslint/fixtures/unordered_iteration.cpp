// Fixture: rule unordered-iteration. Range-for and .begin() walks over
// unordered containers must fire; the allow-comment lines must not.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Registry {
  std::unordered_map<int, std::string> names_;
  std::unordered_set<int> live_;
  std::vector<int> order_;

  int bad_walks() const {
    int n = 0;
    for (const auto& [id, name] : names_) {  // FIRES
      n += id + static_cast<int>(name.size());
    }
    for (int id : live_) n += id;  // FIRES
    for (auto it = live_.begin(); it != live_.end(); ++it) n += *it;  // FIRES
    return n;
  }

  int allowed_walks() const {
    int n = 0;
    // Membership counting is order-independent.
    // snslint: allow(unordered-iteration)
    for (int id : live_) n += id;
    for (int id : live_) n += id;  // snslint: allow(unordered-iteration)
    return n;
  }

  int fine() const {
    int n = 0;
    for (int id : order_) n += id;  // ordered container: no finding
    return n;
  }
};
