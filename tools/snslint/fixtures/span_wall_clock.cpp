// Fixture: rule span-wall-clock. Span timing must use the monotonic
// clock: system_clock jumps under NTP slew and high_resolution_clock may
// alias it, producing negative or wildly wrong span durations.
#include <chrono>

long bad_span() {
  auto t0 = std::chrono::system_clock::now();           // FIRES
  auto t1 = std::chrono::high_resolution_clock::now();  // FIRES
  return t1.time_since_epoch().count() - t0.time_since_epoch().count();
}

long allowed_span() {
  // Wall timestamp for a report header, never subtracted from anything.
  // snslint: allow(span-wall-clock)
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}

long fine_span() {
  // steady_clock is the correct span clock: clean under this rule (the
  // broader wall-clock rule still governs scheduler-logic modules).
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  const char* doc = "std::chrono::system_clock in a string must not fire";
  return (t1 - t0).count() + doc[0];
}
