#pragma once
// Fixture: rule uninit-member. Scalar members without initializers read
// as indeterminate values — different runs, different garbage.
#include <cstdint>
#include <string>

class Tracker {
 public:
  int count() const { return count_; }

 private:
  int count_;                  // FIRES
  double ratio_;               // FIRES
  bool armed_;                 // FIRES
  std::uint64_t ticks_;        // FIRES
  int set_by_ctor_;  // snslint: allow(uninit-member)

  int ok_count_ = 0;           // initialized: no finding
  double ok_ratio_{1.0};       // initialized: no finding
  std::string name_;           // non-scalar: default-constructs, no finding
};
