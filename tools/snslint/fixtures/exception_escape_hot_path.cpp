// Fixture: exception-escape-hot-path. A `throw` inside an SNS_HOT_PATH
// body fires; the same throw in an unmarked function, an allowed line,
// and the word in comments/strings stay clean.
#include <stdexcept>

int hotThrow(int x) {
  SNS_HOT_PATH("fixture.throw");
  if (x < 0) throw std::runtime_error("negative");
  // snslint: allow(exception-escape-hot-path)
  if (x == 0) throw std::runtime_error("zero");
  return x;  // "throw" in this string never fires: throw is lexed out
}

int coldThrow(int x) {
  if (x < 0) throw std::runtime_error("cold paths may throw");
  return x;
}
