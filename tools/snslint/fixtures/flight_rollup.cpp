// Fixture for the flight-rollup-determinism rule. The test scans this
// file under a display path matching FLIGHT_ROLLUP_GLOBS (sns/flight/*),
// where ANY std::unordered_* mention or wall-clock call fires — the
// recorder's rollups are byte-compared across runs and opt flags. Under
// an ordinary display path the same contents raise nothing from this
// rule (the broad wall-clock rule still applies everywhere).
#include <chrono>
#include <map>
#include <unordered_map>
#include <vector>

struct BadRollup {
  std::unordered_map<long, double> slowdown_by_job_;       // fires
  std::unordered_map<long, int> tolerated_;  // snslint: allow(flight-rollup-determinism)
};

inline double stampNow() {
  return std::chrono::duration<double>(                    // fires (clock)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Ascending-id vectors and simulated time are the idiom; none of these
// may fire, and prose mentions of std::unordered_map stay clean too.
struct GoodRollup {
  std::vector<double> attributed_by_id_;
  std::map<long, double> ordered_;
  double now_sim_ = 0.0;
};
