// Fixture: unannotated-shared-state. Raw standard sync-primitive
// declarations fire anywhere (clang's -Wthread-safety cannot see through
// them); the allowed wrapper-internal use and mentions in comments or
// strings stay clean.
#include <condition_variable>
#include <mutex>

class Racy {
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_mutex rw_;
  int value_ = 0;
};

class Tolerated {
  // snslint: allow(unannotated-shared-state)
  std::mutex mu_;
};

// A comment discussing std::mutex does not fire, nor does the string.
inline const char* doc() { return "std::condition_variable"; }
