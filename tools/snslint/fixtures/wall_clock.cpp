// Fixture: rule wall-clock. Wall time in scheduler logic breaks replay.
#include <chrono>
#include <ctime>

double bad_now() {
  auto t = std::chrono::steady_clock::now();  // FIRES
  auto w = std::chrono::system_clock::now();  // FIRES
  long s = time(nullptr);                     // FIRES
  return static_cast<double>(s) + t.time_since_epoch().count() +
         w.time_since_epoch().count();
}

double allowed_now() {
  // Observability-only timing, excluded from scheduling decisions.
  // snslint: allow(wall-clock)
  auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

double fine(double sim_now_s) {
  // Simulated time threaded through as a parameter: no finding. Strings
  // and comments mentioning steady_clock must not fire either.
  const char* doc = "uses std::chrono::steady_clock::now";
  return sim_now_s + static_cast<double>(doc[0]);
}
