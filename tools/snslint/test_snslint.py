#!/usr/bin/env python3
"""Self-tests for snslint: every rule fires on its fixture, inline
allow-comments suppress, the allowlist file suppresses, and clean code
stays clean. Pure stdlib; runs under ctest as `snslint_fixtures`."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import snslint  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")


def scan(name):
    path = os.path.join(FIXTURES, name)
    return snslint.scan_file(path, name)


def lines_for(findings, rule):
    return sorted(f.line for f in findings if f.rule == rule)


class UnorderedIteration(unittest.TestCase):
    def test_fires_on_range_for_and_begin(self):
        findings = scan("unordered_iteration.cpp")
        hits = lines_for(findings, "unordered-iteration")
        # map range-for, set range-for, explicit .begin() walk.
        self.assertEqual(len(hits), 3, findings)

    def test_inline_allow_suppresses(self):
        findings = scan("unordered_iteration.cpp")
        # allowed_walks() holds two allowed loops (lines 27-29); none of
        # its lines may appear.
        for f in findings:
            self.assertNotIn(f.line, range(24, 32), f)

    def test_ordered_container_clean(self):
        findings = scan("unordered_iteration.cpp")
        for f in findings:
            self.assertLess(f.line, 33, f)  # fine() never flagged


class UnorderedDecisionPath(unittest.TestCase):
    FIXTURE = os.path.join(FIXTURES, "unordered_decision_path.cpp")

    def test_fires_on_any_mention_under_calendar_path(self):
        findings = snslint.scan_file(
            self.FIXTURE, "src/sns/sched/finish_calendar.cpp")
        hits = lines_for(findings, "unordered-decision-path")
        # Two member declarations plus the parameter type; the allowed
        # member, the comment prose, and GoodCalendar stay clean.
        self.assertEqual(len(hits), 3, findings)

    def test_inline_allow_suppresses(self):
        findings = snslint.scan_file(
            self.FIXTURE, "src/sns/sched/finish_calendar.cpp")
        for f in findings:
            if f.rule == "unordered-decision-path":
                self.assertNotEqual(f.line, 14, f)  # tolerated_ is allowed

    def test_silent_off_the_decision_path(self):
        findings = snslint.scan_file(self.FIXTURE,
                                     "unordered_decision_path.cpp")
        self.assertEqual(lines_for(findings, "unordered-decision-path"), [],
                         findings)

    def test_real_calendar_files_are_clean(self):
        repo = os.path.dirname(os.path.dirname(HERE))
        for name in ("finish_calendar.hpp", "finish_calendar.cpp"):
            path = os.path.join(repo, "src", "sns", "sched", name)
            disp = os.path.join("src", "sns", "sched", name)
            findings = snslint.scan_file(path, disp)
            self.assertEqual(
                lines_for(findings, "unordered-decision-path"), [], findings)


class FlightRollupDeterminism(unittest.TestCase):
    FIXTURE = os.path.join(FIXTURES, "flight_rollup.cpp")

    def test_fires_on_unordered_and_wall_clock_under_flight_path(self):
        findings = snslint.scan_file(self.FIXTURE,
                                     "src/sns/flight/flight.cpp")
        hits = lines_for(findings, "flight-rollup-determinism")
        # The unordered member declaration plus the steady_clock call; the
        # allowed member, the comment prose, and GoodRollup stay clean.
        self.assertEqual(len(hits), 2, findings)

    def test_inline_allow_suppresses(self):
        findings = snslint.scan_file(self.FIXTURE,
                                     "src/sns/flight/flight.cpp")
        for f in findings:
            if f.rule == "flight-rollup-determinism":
                self.assertNotEqual(f.line, 14, f)  # tolerated_ is allowed

    def test_silent_off_the_flight_path(self):
        findings = snslint.scan_file(self.FIXTURE, "flight_rollup.cpp")
        self.assertEqual(lines_for(findings, "flight-rollup-determinism"),
                         [], findings)
        # The broad wall-clock rule still covers the clock call there.
        self.assertTrue(lines_for(findings, "wall-clock"), findings)

    def test_real_flight_files_are_clean(self):
        repo = os.path.dirname(os.path.dirname(HERE))
        for name in ("flight.hpp", "flight.cpp", "report.hpp", "report.cpp"):
            path = os.path.join(repo, "src", "sns", "flight", name)
            disp = os.path.join("src", "sns", "flight", name)
            findings = snslint.scan_file(path, disp)
            self.assertEqual(
                lines_for(findings, "flight-rollup-determinism"), [],
                findings)


class FloatAccumulation(unittest.TestCase):
    def test_fires_inside_unordered_loop_only(self):
        findings = scan("float_accumulation.cpp")
        acc = lines_for(findings, "float-accumulation")
        self.assertEqual(len(acc), 1, findings)
        # The ordered-vector sum and the integer count stay clean.
        self.assertTrue(all(line < 12 for line in acc), findings)


class WallClock(unittest.TestCase):
    def test_fires_thrice_allow_and_strings_clean(self):
        findings = scan("wall_clock.cpp")
        hits = lines_for(findings, "wall-clock")
        self.assertEqual(len(hits), 3, findings)
        self.assertTrue(all(line <= 11 for line in hits), findings)


class SpanWallClock(unittest.TestCase):
    def test_fires_on_nonmonotonic_clocks_only(self):
        findings = scan("span_wall_clock.cpp")
        hits = lines_for(findings, "span-wall-clock")
        # system_clock and high_resolution_clock; the allowed use, the
        # steady_clock spans, and the string literal all stay clean.
        self.assertEqual(len(hits), 2, findings)
        self.assertTrue(all(line <= 9 for line in hits), findings)

    def test_steady_clock_clean_under_rule_subset(self):
        target = os.path.join(FIXTURES, "wall_clock.cpp")
        # The wall-clock fixture's steady_clock/time() uses are fine for
        # span timing: only the broad wall-clock rule flags them.
        self.assertEqual(snslint.main(["--rules", "span-wall-clock",
                                       target]), 1)  # system_clock on l.7
        findings = scan("wall_clock.cpp")
        hits = lines_for(findings, "span-wall-clock")
        self.assertEqual(hits, [7], findings)


class RawRand(unittest.TestCase):
    def test_fires_thrice_allow_and_lookalike_clean(self):
        findings = scan("raw_rand.cpp")
        hits = lines_for(findings, "raw-rand")
        self.assertEqual(len(hits), 3, findings)
        self.assertTrue(all(line <= 10 for line in hits), findings)


class UninitMember(unittest.TestCase):
    def test_fires_on_bare_scalars_only(self):
        findings = scan("uninit_member.hpp")
        hits = lines_for(findings, "uninit-member")
        self.assertEqual(len(hits), 4, findings)

    def test_initialized_and_class_members_clean(self):
        findings = scan("uninit_member.hpp")
        for f in findings:
            self.assertLess(f.line, 17, f)


class Tokenizer(unittest.TestCase):
    def kinds(self, text):
        return [(k, text[s:e]) for k, s, e in snslint.tokenize(text)]

    def test_comments_strings_and_ids(self):
        toks = self.kinds('int x = f("a\\"b"); // tail\n/* block */ y')
        self.assertIn(("str", '"a\\"b"'), toks)
        self.assertIn(("comment", "// tail"), toks)
        self.assertIn(("comment", "/* block */"), toks)
        self.assertIn(("id", "x"), toks)
        self.assertIn(("id", "y"), toks)

    def test_raw_string_spans_lines_and_keeps_parens(self):
        text = 'auto s = R"delim(no "end" here\n)wrong" still)delim"; next'
        toks = self.kinds(text)
        raw = [t for k, t in toks if k == "raw_str"]
        self.assertEqual(len(raw), 1, toks)
        self.assertTrue(raw[0].endswith(')delim"'), raw)
        self.assertIn(("id", "next"), toks)

    def test_digit_separators_stay_one_number(self):
        toks = self.kinds("x = 1'000'000;")
        nums = [t for k, t in toks if k == "num"]
        self.assertEqual(nums, ["1'000'000"], toks)
        self.assertEqual([t for k, t in toks if k == "chr"], [], toks)

    def test_char_literals_and_escapes(self):
        toks = self.kinds("char c = '\\''; char d = 'x';")
        chars = [t for k, t in toks if k == "chr"]
        self.assertEqual(chars, ["'\\''", "'x'"], toks)

    def test_nested_templates_are_plain_puncts(self):
        toks = self.kinds("std::map<int, std::vector<std::pair<a, b>>> m;")
        self.assertIn(("id", "vector"), toks)
        self.assertIn(("id", "m"), toks)
        self.assertEqual([t for k, t in toks if k == "str"], [], toks)


class StripCode(unittest.TestCase):
    def test_preserves_line_count_and_length(self):
        lines = ['int a = 1; // c', 'auto s = "li\\"t";',
                 '/* multi', 'line */ int b;']
        out = snslint.strip_code(lines)
        self.assertEqual(len(out), len(lines))
        for raw, stripped in zip(lines, out):
            self.assertEqual(len(raw), len(stripped), (raw, stripped))

    def test_blanks_literal_payloads_keeps_delimiters(self):
        out = snslint.strip_code(['f("std::mutex");'])
        self.assertNotIn("mutex", out[0])
        self.assertIn('"', out[0])
        self.assertTrue(out[0].startswith("f("))

    def test_blanks_raw_string_payload(self):
        out = snslint.strip_code(['auto j = R"({"rand()": 1})";'])
        self.assertNotIn("rand", out[0])

    def test_code_outside_literals_survives_verbatim(self):
        src = 'for (auto& kv : m_) { sum_ += kv.second; }'
        self.assertEqual(snslint.strip_code([src])[0], src)


class HotPathRanges(unittest.TestCase):
    def test_marked_body_found_unmarked_skipped(self):
        code = snslint.strip_code([
            'void hot() {',
            '  SNS_HOT_PATH("x");',
            '  if (a) { b(); }',
            '}',
            'void cold() {',
            '  c();',
            '}',
        ])
        ranges = snslint.hot_path_ranges(code)
        self.assertEqual(ranges, [(0, 4)], ranges)

    def test_macro_definition_line_is_not_a_marker(self):
        code = snslint.strip_code([
            '#define SNS_HOT_PATH(name) ::sns::util::hotpath::Scope s{name}',
            'void f() { int* p = new int; delete p; }',
        ])
        self.assertEqual(snslint.hot_path_ranges(code), [])


class HotPathAllocation(unittest.TestCase):
    def test_fires_on_definite_allocations_only(self):
        findings = scan("hot_path_allocation.cpp")
        hits = lines_for(findings, "hot-path-allocation")
        # new[], make_unique, to_string + fresh string local (one line),
        # fresh vector local. The allowed make_shared, the warm-scratch
        # push_back, coldBody's new, and the comment/string stay clean.
        self.assertEqual(hits, [10, 11, 12, 13], findings)


class ExceptionEscapeHotPath(unittest.TestCase):
    def test_fires_inside_marked_body_only(self):
        findings = scan("exception_escape_hot_path.cpp")
        hits = lines_for(findings, "exception-escape-hot-path")
        self.assertEqual(hits, [8], findings)


class UnannotatedSharedState(unittest.TestCase):
    def test_fires_on_raw_primitives_only(self):
        findings = scan("unannotated_shared_state.cpp")
        hits = lines_for(findings, "unannotated-shared-state")
        # mutex, condition_variable, shared_mutex members; the allowed
        # member, the comment, and the string literal stay clean.
        self.assertEqual(hits, [9, 10, 11], findings)

    def test_real_mutex_wrapper_is_clean(self):
        repo = os.path.dirname(os.path.dirname(HERE))
        path = os.path.join(repo, "src", "sns", "util", "mutex.hpp")
        findings = snslint.scan_file(path, "src/sns/util/mutex.hpp")
        self.assertEqual(
            lines_for(findings, "unannotated-shared-state"), [], findings)


class StaleAllowlist(unittest.TestCase):
    def _entry_file(self, content):
        f = tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False)
        f.write(content)
        f.close()
        return f.name

    def test_stale_entry_fails_with_provenance(self):
        target = os.path.join(FIXTURES, "wall_clock.cpp")
        path = self._entry_file("raw-rand *never_matches_anything.cpp\n")
        try:
            self.assertEqual(
                snslint.main(["--allowlist", path,
                              "--check-stale-allowlist", target]), 1)
            entries = snslint.load_allowlist(path)
            self.assertEqual(entries[0].lineno, 1)
            self.assertEqual(entries[0].source, path)
        finally:
            os.unlink(path)

    def test_used_entry_passes(self):
        target = os.path.join(FIXTURES, "raw_rand.cpp")
        path = self._entry_file("raw-rand *raw_rand.cpp\n")
        try:
            self.assertEqual(
                snslint.main(["--allowlist", path,
                              "--check-stale-allowlist", target]), 0)
        finally:
            os.unlink(path)

    def test_inactive_rule_entry_is_not_stale(self):
        # --rules excludes the entry's rule: the entry never had a chance
        # to match, so a subset run must not call it stale.
        target = os.path.join(FIXTURES, "wall_clock.cpp")
        path = self._entry_file(
            "raw-rand *never_matches.cpp\n"
            "wall-clock *wall_clock.cpp\n")
        try:
            self.assertEqual(
                snslint.main(["--allowlist", path, "--rules", "wall-clock",
                              "--check-stale-allowlist", target]), 0)
        finally:
            os.unlink(path)


class AllowlistFile(unittest.TestCase):
    def test_allowlist_suppresses_by_rule_and_glob(self):
        entries = [("wall-clock", "fixtures/wall_clock.cpp")]
        findings = scan("wall_clock.cpp")
        wall = [f for f in findings if f.rule == "wall-clock"]
        self.assertTrue(wall)
        for f in wall:
            f.path = "fixtures/wall_clock.cpp"
            self.assertTrue(snslint.allowlisted(entries, f), f)
        # A different rule under the same glob is not suppressed.
        other = snslint.Finding("fixtures/wall_clock.cpp", 1, "raw-rand", "x")
        self.assertFalse(snslint.allowlisted(entries, other))

    def test_bad_entry_rejected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("not-a-rule some/path.cpp\n")
            path = f.name
        try:
            with self.assertRaises(SystemExit):
                snslint.load_allowlist(path)
        finally:
            os.unlink(path)


class CliEndToEnd(unittest.TestCase):
    def test_exit_one_on_findings_zero_when_allowlisted(self):
        target = os.path.join(FIXTURES, "raw_rand.cpp")
        self.assertEqual(snslint.main([target]), 1)
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("# suppress everything the fixture raises\n")
            f.write("raw-rand *raw_rand.cpp\n")
            path = f.name
        try:
            self.assertEqual(
                snslint.main(["--allowlist", path, target]), 0)
        finally:
            os.unlink(path)

    def test_rules_subset(self):
        target = os.path.join(FIXTURES, "wall_clock.cpp")
        self.assertEqual(snslint.main(["--rules", "raw-rand", target]), 0)
        self.assertEqual(snslint.main(["--rules", "wall-clock", target]), 1)


if __name__ == "__main__":
    unittest.main()
