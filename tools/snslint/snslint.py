#!/usr/bin/env python3
"""snslint — determinism lint for the Spread-n-Share scheduler stack.

The repo's central claim (PR 3) is that a scheduling run is a pure function
of its inputs: same workload + same seed => bit-identical schedule. This
checker flags the C++ constructs that quietly break that property. It is a
regex + heuristic source scanner, not a compiler plugin: it needs no clang
on the box, runs in milliseconds under ctest, and is tuned for this
codebase's idiom (members end in `_`, one declaration per line).

Rules
-----
  unordered-iteration   iterating a std::unordered_{map,set} — iteration
                        order is hash-seed and libstdc++-version dependent,
                        so anything order-sensitive derived from the walk
                        (output order, tie-breaks, accumulation) diverges
                        across builds.
  unordered-decision-path
                        ANY std::unordered_* mention (not just iteration)
                        in the event engine's ordering core — the files
                        matching DECISION_PATH_GLOBS (the finish-time
                        calendar, DESIGN.md section 11). The calendar is
                        the completion-ordering authority: it must be
                        bit-deterministic and allocation-free at steady
                        state, and hash containers break both (iteration
                        order aside, rehash timing and bucket growth are
                        implementation-defined). Flat vectors indexed by
                        dense JobId are the idiom there.
  float-accumulation    compound float accumulation (`+=`/`-=` on a
                        float/double) inside a loop over an unordered
                        container: the sum depends on iteration order.
  wall-clock            std::chrono::{system,steady,high_resolution}_clock,
                        time(), gettimeofday, clock_gettime — wall time in
                        scheduler logic makes replays non-reproducible.
  flight-rollup-determinism
                        ANY std::unordered_* mention or wall-clock call in
                        the interference flight recorder (files matching
                        FLIGHT_ROLLUP_GLOBS — sns/flight, DESIGN.md
                        section 12). The recorder's rollups and renderers
                        are byte-compared across runs and SimOptFlags
                        settings, so hash-order iteration or real time
                        anywhere in the module breaks the equivalence
                        suite; ascending-id vectors and simulated time are
                        the idiom there.
  span-wall-clock       std::chrono::{system,high_resolution}_clock in
                        span/phase timing code (sns/xray, sns/telemetry):
                        cost attribution must use the monotonic
                        steady_clock — system_clock jumps under NTP slew
                        and high_resolution_clock may alias it, producing
                        negative or wildly wrong span durations.
  raw-rand              rand()/srand()/std::random_device — unseeded or
                        process-global randomness; use sns::util::Rng with
                        an explicit seed.
  uninit-member         scalar data member declared without an initializer
                        (`int x_;`) — reads of indeterminate values are UB
                        and differ run to run.

Suppression
-----------
  * inline, same or preceding line:   // snslint: allow(rule)
  * allowlist file, one entry per line:   <rule> <path-glob>  [# comment]

Usage
-----
  snslint.py [--compile-commands build/compile_commands.json]
             [--root REPO_ROOT] [--allowlist FILE] PATH_OR_MODULE...

Positional args are files, directories, or (with --compile-commands)
module prefixes like `sns/sched` resolved against the compilation database
plus the headers under `<root>/src/<module>`. Exits 1 if any finding
survives suppression, 0 otherwise.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

RULES = (
    "unordered-iteration",
    "unordered-decision-path",
    "flight-rollup-determinism",
    "float-accumulation",
    "wall-clock",
    "span-wall-clock",
    "raw-rand",
    "uninit-member",
)

# Files held to the stricter unordered-decision-path rule (matched against
# the display path with / separators). The finish-time calendar orders
# every completion in the simulator; see the rule's docstring entry.
DECISION_PATH_GLOBS = (
    "*/sns/sched/finish_calendar*",
    "sns/sched/finish_calendar*",
)

# Files held to the flight-rollup-determinism rule: the interference
# flight recorder's rollup/render code, whose output is byte-compared by
# the equivalence suite.
FLIGHT_ROLLUP_GLOBS = (
    "*/sns/flight/*",
    "sns/flight/*",
)

ALLOW_RE = re.compile(r"//\s*snslint:\s*allow\(([a-z0-9_,\- ]+)\)")

UNORDERED_ANY_RE = re.compile(r"std::unordered_\w+")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*"
    r"[&*]?\s*(\w+)\s*[;={,)]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*):([^)]*)\)")
# Only begin(): an `.end()` alone is the harmless `find() != end()`
# membership idiom; every real iterator walk names `.begin()` somewhere.
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[;={]")
COMPOUND_ACC_RE = re.compile(r"\b(\w+)\s*[+\-]=")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
# Only the non-monotonic (or potentially aliased) clocks: steady_clock is
# exactly what span timing should use, so it stays clean under this rule.
SPAN_WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|high_resolution_clock)"
)
RAW_RAND_RE = re.compile(
    r"(?<![\w:.])s?rand\s*\(|std::random_device|(?<!\w)std::rand\b"
)
# Scalar member without `=` or `{...}`: relies on the `trailing _` member
# naming convention, which holds across the sns:: tree.
UNINIT_MEMBER_RE = re.compile(
    r"^\s*(?:(?:unsigned|signed|const|volatile|mutable)\s+)*"
    r"(?:int|long|short|char|bool|float|double|std::size_t|std::ptrdiff_t|"
    r"std::u?int(?:8|16|32|64)_t|std::uintptr_t)\s+"
    r"(\w+_)\s*;\s*(?://.*)?$"
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(lines):
    """Per-line code with comments and string/char literals blanked out
    (same length, so column positions survive). Keeps rule regexes from
    matching prose or log strings."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i, n = 0, len(raw)
        in_str = in_chr = False
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                    continue
                buf.append(" ")
                i += 1
            elif in_str or in_chr:
                if c == "\\":
                    buf.append("  ")
                    i += 2
                    continue
                if (in_str and c == '"') or (in_chr and c == "'"):
                    in_str = in_chr = False
                    buf.append(c)
                else:
                    buf.append(" ")
                i += 1
            elif c == "/" and nxt == "/":
                buf.append(" " * (n - i))
                break
            elif c == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif c == '"':
                in_str = True
                buf.append(c)
                i += 1
            elif c == "'":
                in_chr = True
                buf.append(c)
                i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


def inline_allowed(lines, idx, rule):
    """`// snslint: allow(rule)` on the flagged line or the line above."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(lines[j])
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            return True
    return False


def block_range(code, start):
    """Line range [start, end) of the brace block opened at/after `start`
    (the body of a loop header). Falls back to the single next line for
    braceless bodies."""
    depth = 0
    opened = False
    for i in range(start, len(code)):
        for c in code[i]:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}":
                depth -= 1
                if opened and depth == 0:
                    return start, i + 1
        if not opened and i > start:
            return start, i + 1  # `for (...) stmt;` without braces
    return start, len(code)


def scan_file(path, display_path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Finding(display_path, 0, "io", str(e))]

    code = strip_code(lines)
    findings = []

    flagged = set()

    def add(idx, rule, message):
        if (idx, rule) in flagged or inline_allowed(lines, idx, rule):
            return
        flagged.add((idx, rule))
        findings.append(Finding(display_path, idx + 1, rule, message))

    unordered_names = set()
    float_names = set()

    def harvest(stripped):
        for ln in stripped:
            for m in UNORDERED_DECL_RE.finditer(ln):
                unordered_names.add(m.group(1))
            for m in FLOAT_DECL_RE.finditer(ln):
                float_names.add(m.group(1))

    harvest(code)
    # Members are declared in the companion header, used in the .cpp: a
    # foo.cpp next to a foo.hpp/h inherits the header's declared names so
    # `for (... : member_)` in the source still resolves.
    base, ext = os.path.splitext(path)
    if ext in (".cpp", ".cc", ".cxx"):
        for hext in (".hpp", ".h", ".hh", ".hxx"):
            try:
                with open(base + hext, encoding="utf-8",
                          errors="replace") as hf:
                    harvest(strip_code(hf.read().splitlines()))
            except OSError:
                continue

    is_header = path.endswith((".h", ".hpp", ".hh", ".hxx"))
    norm_disp = display_path.replace(os.sep, "/")
    on_decision_path = any(
        fnmatch.fnmatch(norm_disp, g) for g in DECISION_PATH_GLOBS)
    on_flight_rollup = any(
        fnmatch.fnmatch(norm_disp, g) for g in FLIGHT_ROLLUP_GLOBS)

    for idx, ln in enumerate(code):
        if on_decision_path and UNORDERED_ANY_RE.search(ln):
            add(idx, "unordered-decision-path",
                f"'{UNORDERED_ANY_RE.search(ln).group(0)}' on the "
                "calendar/decision path; use flat vectors indexed by "
                "dense JobId (hash order and rehash timing are "
                "implementation-defined)")
        if on_flight_rollup:
            m = UNORDERED_ANY_RE.search(ln) or WALL_CLOCK_RE.search(ln)
            if m:
                add(idx, "flight-rollup-determinism",
                    f"'{m.group(0).strip()}' in flight-recorder rollup "
                    "code; rollups are byte-compared across runs and opt "
                    "flags — use ascending-id vectors and simulated time")
        # unordered-iteration: range-for over a known unordered name (or an
        # inline construction), or explicit .begin()/.end() on one.
        for m in RANGE_FOR_RE.finditer(ln):
            expr = m.group(2)
            tokens = set(re.findall(r"\w+", expr))
            if tokens & unordered_names or "unordered_map" in expr or \
                    "unordered_set" in expr:
                add(idx, "unordered-iteration",
                    f"iteration order over '{expr.strip()}' is "
                    "hash-seed dependent")
                # float-accumulation: order-dependent sums in this body.
                lo, hi = block_range(code, idx)
                for j in range(lo, hi):
                    for am in COMPOUND_ACC_RE.finditer(code[j]):
                        if am.group(1) in float_names:
                            add(j, "float-accumulation",
                                f"'{am.group(1)} {code[j][am.end(1):].strip()[:2]}' "
                                "inside an unordered-container loop: the sum "
                                "depends on iteration order")
        for m in BEGIN_CALL_RE.finditer(ln):
            if m.group(1) in unordered_names:
                add(idx, "unordered-iteration",
                    f"'{m.group(0).strip()})' walks an unordered container "
                    "in hash order")

        if WALL_CLOCK_RE.search(ln):
            add(idx, "wall-clock",
                "wall-clock time in scheduler code breaks replay "
                "determinism; thread simulated time through instead")
        if SPAN_WALL_CLOCK_RE.search(ln):
            add(idx, "span-wall-clock",
                "span timing must use the monotonic std::chrono::"
                "steady_clock; system_clock jumps under NTP and "
                "high_resolution_clock may alias it")
        if RAW_RAND_RE.search(ln):
            add(idx, "raw-rand",
                "process-global / nondeterministic randomness; use "
                "sns::util::Rng with an explicit seed")
        if is_header:
            m = UNINIT_MEMBER_RE.match(ln)
            if m:
                add(idx, "uninit-member",
                    f"scalar member '{m.group(1)}' has no initializer; "
                    "reads before assignment are indeterminate")

    return findings


def load_allowlist(path):
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0] not in RULES:
                raise SystemExit(
                    f"{path}:{lineno}: bad allowlist entry {raw.strip()!r} "
                    "(want: <rule> <path-glob>)")
            entries.append((parts[0], parts[1]))
    return entries


def allowlisted(entries, finding):
    norm = finding.path.replace(os.sep, "/")
    for rule, glob in entries:
        if rule == finding.rule and (
                fnmatch.fnmatch(norm, glob) or fnmatch.fnmatch(norm, "*/" + glob)):
            return True
    return False


def collect_files(args):
    """(abs_path, display_path) pairs: explicit files/dirs, plus module
    prefixes resolved via compile_commands + the module's headers."""
    root = os.path.abspath(args.root)
    seen = {}

    def add(p):
        ap = os.path.abspath(p)
        if ap.endswith((".cpp", ".cc", ".cxx", ".h", ".hpp", ".hh", ".hxx")):
            disp = os.path.relpath(ap, root) if ap.startswith(root + os.sep) else ap
            seen[ap] = disp

    cc_files = []
    if args.compile_commands:
        with open(args.compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                p = entry["file"]
                if not os.path.isabs(p):
                    p = os.path.join(entry.get("directory", "."), p)
                cc_files.append(os.path.abspath(p))

    for target in args.paths:
        if os.path.isfile(target):
            add(target)
            continue
        if os.path.isdir(target):
            for dirpath, _, names in os.walk(target):
                for n in sorted(names):
                    add(os.path.join(dirpath, n))
            continue
        # Module prefix like `sns/sched`: TUs from the compilation database
        # plus every header in the module directory.
        prefix = os.path.join(root, "src", target) + os.sep
        matched = False
        for p in cc_files:
            if p.startswith(prefix):
                add(p)
                matched = True
        mod_dir = os.path.join(root, "src", target)
        if os.path.isdir(mod_dir):
            matched = True
            for dirpath, _, names in os.walk(mod_dir):
                for n in sorted(names):
                    if n.endswith((".h", ".hpp", ".hh", ".hxx")):
                        add(os.path.join(dirpath, n))
        if not matched:
            raise SystemExit(f"snslint: nothing matches '{target}' "
                             f"(not a file, directory, or module under {root}/src)")
    return sorted(seen.items())


def main(argv=None):
    ap = argparse.ArgumentParser(prog="snslint", add_help=True)
    ap.add_argument("--compile-commands", help="compile_commands.json path")
    ap.add_argument("--root", default=".", help="repo root for module prefixes")
    ap.add_argument("--allowlist", help="allowlist file (<rule> <glob> lines)")
    ap.add_argument("--rules", help="comma-separated subset of rules to run")
    ap.add_argument("paths", nargs="+", metavar="PATH_OR_MODULE")
    args = ap.parse_args(argv)

    active = set(RULES)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",")}
        bad = active - set(RULES)
        if bad:
            raise SystemExit(f"snslint: unknown rule(s): {', '.join(sorted(bad))}")

    entries = load_allowlist(args.allowlist) if args.allowlist else []

    files = collect_files(args)
    findings = []
    for ap_, disp in files:
        for f in scan_file(ap_, disp):
            if f.rule in active and not allowlisted(entries, f):
                findings.append(f)

    for f in findings:
        print(f)
    print(f"snslint: {len(files)} file(s), {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
