#!/usr/bin/env python3
"""snslint — determinism + static-contract lint for the Spread-n-Share stack.

The repo's central claim (PR 3) is that a scheduling run is a pure function
of its inputs: same workload + same seed => bit-identical schedule. This
checker flags the C++ constructs that quietly break that property, plus
(PR 10) the static contracts around the engine's hot paths: no heap
allocation, no escaping exceptions, no unannotated shared state. It needs
no clang on the box and runs in milliseconds under ctest.

Since v2 the core is a real single-pass C++ tokenizer (comments, string /
char literals and raw strings are lexed, not regex-guessed), and function
scopes are tracked by brace matching — the rule layer then runs over
literal-free source text, so prose in comments and log strings can never
trip a rule, including raw strings and multi-line literals the old
line-regex scanner mishandled.

Rules
-----
  unordered-iteration   iterating a std::unordered_{map,set} — iteration
                        order is hash-seed and libstdc++-version dependent,
                        so anything order-sensitive derived from the walk
                        (output order, tie-breaks, accumulation) diverges
                        across builds.
  unordered-decision-path
                        ANY std::unordered_* mention (not just iteration)
                        in the event engine's ordering core — the files
                        matching DECISION_PATH_GLOBS (the finish-time
                        calendar, DESIGN.md section 11). The calendar is
                        the completion-ordering authority: it must be
                        bit-deterministic and allocation-free at steady
                        state, and hash containers break both (iteration
                        order aside, rehash timing and bucket growth are
                        implementation-defined). Flat vectors indexed by
                        dense JobId are the idiom there.
  float-accumulation    compound float accumulation (`+=`/`-=` on a
                        float/double) inside a loop over an unordered
                        container: the sum depends on iteration order.
  wall-clock            std::chrono::{system,steady,high_resolution}_clock,
                        time(), gettimeofday, clock_gettime — wall time in
                        scheduler logic makes replays non-reproducible.
  flight-rollup-determinism
                        ANY std::unordered_* mention or wall-clock call in
                        the interference flight recorder (files matching
                        FLIGHT_ROLLUP_GLOBS — sns/flight, DESIGN.md
                        section 12). The recorder's rollups and renderers
                        are byte-compared across runs and SimOptFlags
                        settings, so hash-order iteration or real time
                        anywhere in the module breaks the equivalence
                        suite; ascending-id vectors and simulated time are
                        the idiom there.
  span-wall-clock       std::chrono::{system,high_resolution}_clock in
                        span/phase timing code (sns/xray, sns/telemetry):
                        cost attribution must use the monotonic
                        steady_clock — system_clock jumps under NTP slew
                        and high_resolution_clock may alias it, producing
                        negative or wildly wrong span durations.
  raw-rand              rand()/srand()/std::random_device — unseeded or
                        process-global randomness; use sns::util::Rng with
                        an explicit seed.
  uninit-member         scalar data member declared without an initializer
                        (`int x_;`) — reads of indeterminate values are UB
                        and differ run to run.
  hot-path-allocation   a definite heap allocation (`new`, make_unique/
                        make_shared, std::to_string, a fresh std::
                        container/string/function local) lexically inside
                        a function body marked SNS_HOT_PATH(...). The
                        runtime contract (tests/alloc) catches container
                        *growth*; this rule catches the constructs that
                        allocate on every activation, before they ever run.
  unannotated-shared-state
                        a raw std::mutex / condition_variable / shared_
                        mutex declaration: cross-thread state must use
                        sns::util::Mutex (the Clang-capability-annotated
                        wrapper, src/sns/util/mutex.hpp) so
                        -Wthread-safety can machine-check lock discipline.
  exception-escape-hot-path
                        a `throw` lexically inside an SNS_HOT_PATH(...)
                        body: the engine's per-event paths are on the
                        decision latency budget and unwind across cached
                        scratch state; contract failures go through
                        SNS_REQUIRE at the boundary, not ad-hoc throws
                        mid-path.

Suppression
-----------
  * inline, same or preceding line:   // snslint: allow(rule)
  * allowlist file, one entry per line:   <rule> <path-glob>  [# comment]

With --check-stale-allowlist, an allowlist entry whose rule is active but
which suppressed nothing fails the run with the entry's file:line — dead
suppressions otherwise hide future regressions at the same path.

Usage
-----
  snslint.py [--compile-commands build/compile_commands.json]
             [--root REPO_ROOT] [--allowlist FILE]
             [--check-stale-allowlist] PATH_OR_MODULE...

Positional args are files, directories, or (with --compile-commands)
module prefixes like `sns/sched` resolved against the compilation database
plus the headers under `<root>/src/<module>`. Exits 1 if any finding
survives suppression, 0 otherwise.
"""

import argparse
import bisect
import fnmatch
import json
import os
import re
import sys

RULES = (
    "unordered-iteration",
    "unordered-decision-path",
    "flight-rollup-determinism",
    "float-accumulation",
    "wall-clock",
    "span-wall-clock",
    "raw-rand",
    "uninit-member",
    "hot-path-allocation",
    "unannotated-shared-state",
    "exception-escape-hot-path",
)

# Files held to the stricter unordered-decision-path rule (matched against
# the display path with / separators). The finish-time calendar orders
# every completion in the simulator; see the rule's docstring entry.
DECISION_PATH_GLOBS = (
    "*/sns/sched/finish_calendar*",
    "sns/sched/finish_calendar*",
)

# Files held to the flight-rollup-determinism rule: the interference
# flight recorder's rollup/render code, whose output is byte-compared by
# the equivalence suite.
FLIGHT_ROLLUP_GLOBS = (
    "*/sns/flight/*",
    "sns/flight/*",
)

ALLOW_RE = re.compile(r"//\s*snslint:\s*allow\(([a-z0-9_,\- ]+)\)")

UNORDERED_ANY_RE = re.compile(r"std::unordered_\w+")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*"
    r"[&*]?\s*(\w+)\s*[;={,)]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*):([^)]*)\)")
# Only begin(): an `.end()` alone is the harmless `find() != end()`
# membership idiom; every real iterator walk names `.begin()` somewhere.
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[;={]")
COMPOUND_ACC_RE = re.compile(r"\b(\w+)\s*[+\-]=")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
# Only the non-monotonic (or potentially aliased) clocks: steady_clock is
# exactly what span timing should use, so it stays clean under this rule.
SPAN_WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|high_resolution_clock)"
)
RAW_RAND_RE = re.compile(
    r"(?<![\w:.])s?rand\s*\(|std::random_device|(?<!\w)std::rand\b"
)
# Scalar member without `=` or `{...}`: relies on the `trailing _` member
# naming convention, which holds across the sns:: tree.
UNINIT_MEMBER_RE = re.compile(
    r"^\s*(?:(?:unsigned|signed|const|volatile|mutable)\s+)*"
    r"(?:int|long|short|char|bool|float|double|std::size_t|std::ptrdiff_t|"
    r"std::u?int(?:8|16|32|64)_t|std::uintptr_t)\s+"
    r"(\w+_)\s*;\s*(?://.*)?$"
)

# ---- static-contract rules (PR 10) -----------------------------------------

HOT_MARKER_RE = re.compile(r"\bSNS_HOT_PATH\s*\(")
# Definite per-activation allocations. Container *growth* calls
# (push_back into reserved capacity etc.) are deliberately not here —
# whether they allocate depends on warm state, which is the runtime
# contract's job (tests/alloc/test_steady_state.cpp).
HOT_ALLOC_RE = re.compile(
    r"(?<![\w.:])new\b"
    r"|std::make_unique\b|std::make_shared\b|std::to_string\b"
    r"|\bstd::string\s*\("
)
# A fresh standard container/string/function local: constructed (and on
# any content, heap-backed) every activation.
HOT_LOCAL_CONTAINER_RE = re.compile(
    r"^\s*(?:const\s+)?std::(?:vector|deque|list|map|set|multimap|multiset|"
    r"unordered_\w+|string|function)\s*(?:<[^;&]*>)?\s+\w+\s*[;={(]"
)
THROW_RE = re.compile(r"\bthrow\b")
RAW_SYNC_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---- tokenizer -------------------------------------------------------------

RAW_PREFIX_RE = re.compile(r"(?:u8|[uUL])?R$")


def _scan_quoted(text, i, quote):
    """End offset (exclusive) of the literal opened at text[i] == quote.
    Stops at an unescaped newline: like the compiler, an unterminated
    literal does not leak into the next line."""
    j = i + 1
    n = len(text)
    while j < n:
        c = text[j]
        if c == "\\":
            j += 2
            continue
        if c == quote:
            return j + 1
        if c == "\n":
            return j
        j += 1
    return n


def _scan_raw_string(text, i):
    """End offset of the raw string whose opening quote is at text[i].
    R"delim( ... )delim" — no escapes, may span lines."""
    n = len(text)
    paren = text.find("(", i + 1)
    if paren == -1 or paren - i - 1 > 16 or "\n" in text[i + 1:paren]:
        return _scan_quoted(text, i, '"')  # malformed: fall back
    closer = ")" + text[i + 1:paren] + '"'
    end = text.find(closer, paren + 1)
    return n if end == -1 else end + len(closer)


def tokenize(text):
    """Single-pass C++ lexer: list of (kind, start, end) offset triples,
    kind in {id, num, punct, str, chr, raw_str, comment}. Whitespace is
    skipped. Raw strings, escapes, digit separators and block comments are
    lexed for real — the rule layer never guesses about literal bounds."""
    toks = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c in " \t\r\n\v\f":
            i += 1
            continue
        two = text[i:i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j == -1 else j
            toks.append(("comment", i, j))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            toks.append(("comment", i, j))
            i = j
        elif c == '"':
            prev = toks[-1] if toks else None
            if (prev is not None and prev[0] == "id" and prev[2] == i
                    and RAW_PREFIX_RE.search(text[prev[1]:prev[2]])):
                j = _scan_raw_string(text, i)
                toks.append(("raw_str", i, j))
            else:
                j = _scan_quoted(text, i, '"')
                toks.append(("str", i, j))
            i = j
        elif c == "'":
            prev = toks[-1] if toks else None
            if (prev is not None and prev[0] == "num" and prev[2] == i
                    and i + 1 < n and text[i + 1].isalnum()):
                # Digit separator (1'000'000): extend the number token.
                j = i + 1
                while j < n and (text[j].isalnum() or text[j] in "._"
                                 or (text[j] == "'" and j + 1 < n
                                     and text[j + 1].isalnum())):
                    j += 1
                toks[-1] = ("num", prev[1], j)
                i = j
            else:
                j = _scan_quoted(text, i, "'")
                toks.append(("chr", i, j))
                i = j
        elif c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(("id", i, j))
            i = j
        elif c.isdigit() or (c == "." and text[i + 1:i + 2].isdigit()):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch.isalnum() or ch in "._":
                    j += 1
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                elif ch == "'" and j + 1 < n and text[j + 1].isalnum():
                    j += 2
                else:
                    break
            toks.append(("num", i, j))
            i = j
        else:
            toks.append(("punct", i, i + 1))
            i += 1
    return toks


def strip_code(lines):
    """Per-line code with comments and string/char literal payloads blanked
    out (same length, so column positions survive — rule regexes then run
    over literal-free text). Built on the tokenizer: raw strings and
    multi-line literals blank correctly, which the old per-line scanner
    could not do."""
    text = "\n".join(lines)
    out = list(text)
    for kind, s, e in tokenize(text):
        if kind == "comment":
            for k in range(s, e):
                if out[k] != "\n":
                    out[k] = " "
        elif kind in ("str", "chr", "raw_str"):
            # Keep the delimiters (so `"` still reads as a literal bound),
            # blank everything between them.
            for k in range(s + 1, e):
                if out[k] != "\n":
                    out[k] = " "
            if e - 1 > s and text[e - 1] == text[s]:
                out[e - 1] = text[e - 1]
    return "".join(out).split("\n")


def hot_path_ranges(code):
    """[lo, hi) line-index ranges of the innermost brace blocks containing
    an SNS_HOT_PATH(...) marker — i.e. the marked function bodies. Runs on
    blanked code, so markers in comments/strings don't count; markers on
    preprocessor lines (the macro's own #define) don't either."""
    text = "\n".join(code)
    line_starts = [0]
    for k, ch in enumerate(text):
        if ch == "\n":
            line_starts.append(k + 1)

    def line_of(pos):
        return bisect.bisect_right(line_starts, pos) - 1

    markers = []
    for m in HOT_MARKER_RE.finditer(text):
        if not code[line_of(m.start())].lstrip().startswith("#"):
            markers.append(m.start())
    if not markers:
        return []

    unassigned = set(markers)
    ranges = []
    stack = []
    for pos, ch in enumerate(text):
        if ch == "{":
            stack.append(pos)
        elif ch == "}" and stack:
            open_pos = stack.pop()
            inside = {m for m in unassigned if open_pos < m < pos}
            if inside:
                ranges.append((line_of(open_pos), line_of(pos) + 1))
                unassigned -= inside
    if unassigned:
        # Marker outside any closed block (truncated file): cover the rest.
        lo = min(line_of(m) for m in unassigned)
        ranges.append((lo, len(code)))
    return sorted(ranges)


def inline_allowed(lines, idx, rule):
    """`// snslint: allow(rule)` on the flagged line or the line above."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(lines[j])
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            return True
    return False


def block_range(code, start):
    """Line range [start, end) of the brace block opened at/after `start`
    (the body of a loop header). Falls back to the single next line for
    braceless bodies."""
    depth = 0
    opened = False
    for i in range(start, len(code)):
        for c in code[i]:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}":
                depth -= 1
                if opened and depth == 0:
                    return start, i + 1
        if not opened and i > start:
            return start, i + 1  # `for (...) stmt;` without braces
    return start, len(code)


def scan_file(path, display_path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Finding(display_path, 0, "io", str(e))]

    code = strip_code(lines)
    findings = []

    flagged = set()

    def add(idx, rule, message):
        if (idx, rule) in flagged or inline_allowed(lines, idx, rule):
            return
        flagged.add((idx, rule))
        findings.append(Finding(display_path, idx + 1, rule, message))

    unordered_names = set()
    float_names = set()

    def harvest(stripped):
        for ln in stripped:
            for m in UNORDERED_DECL_RE.finditer(ln):
                unordered_names.add(m.group(1))
            for m in FLOAT_DECL_RE.finditer(ln):
                float_names.add(m.group(1))

    harvest(code)
    # Members are declared in the companion header, used in the .cpp: a
    # foo.cpp next to a foo.hpp/h inherits the header's declared names so
    # `for (... : member_)` in the source still resolves.
    base, ext = os.path.splitext(path)
    if ext in (".cpp", ".cc", ".cxx"):
        for hext in (".hpp", ".h", ".hh", ".hxx"):
            try:
                with open(base + hext, encoding="utf-8",
                          errors="replace") as hf:
                    harvest(strip_code(hf.read().splitlines()))
            except OSError:
                continue

    is_header = path.endswith((".h", ".hpp", ".hh", ".hxx"))
    norm_disp = display_path.replace(os.sep, "/")
    on_decision_path = any(
        fnmatch.fnmatch(norm_disp, g) for g in DECISION_PATH_GLOBS)
    on_flight_rollup = any(
        fnmatch.fnmatch(norm_disp, g) for g in FLIGHT_ROLLUP_GLOBS)

    hot_lines = set()
    for lo, hi in hot_path_ranges(code):
        hot_lines.update(range(lo, hi))

    for idx, ln in enumerate(code):
        if on_decision_path and UNORDERED_ANY_RE.search(ln):
            add(idx, "unordered-decision-path",
                f"'{UNORDERED_ANY_RE.search(ln).group(0)}' on the "
                "calendar/decision path; use flat vectors indexed by "
                "dense JobId (hash order and rehash timing are "
                "implementation-defined)")
        if on_flight_rollup:
            m = UNORDERED_ANY_RE.search(ln) or WALL_CLOCK_RE.search(ln)
            if m:
                add(idx, "flight-rollup-determinism",
                    f"'{m.group(0).strip()}' in flight-recorder rollup "
                    "code; rollups are byte-compared across runs and opt "
                    "flags — use ascending-id vectors and simulated time")
        # unordered-iteration: range-for over a known unordered name (or an
        # inline construction), or explicit .begin()/.end() on one.
        for m in RANGE_FOR_RE.finditer(ln):
            expr = m.group(2)
            tokens = set(re.findall(r"\w+", expr))
            if tokens & unordered_names or "unordered_map" in expr or \
                    "unordered_set" in expr:
                add(idx, "unordered-iteration",
                    f"iteration order over '{expr.strip()}' is "
                    "hash-seed dependent")
                # float-accumulation: order-dependent sums in this body.
                lo, hi = block_range(code, idx)
                for j in range(lo, hi):
                    for am in COMPOUND_ACC_RE.finditer(code[j]):
                        if am.group(1) in float_names:
                            add(j, "float-accumulation",
                                f"'{am.group(1)} {code[j][am.end(1):].strip()[:2]}' "
                                "inside an unordered-container loop: the sum "
                                "depends on iteration order")
        for m in BEGIN_CALL_RE.finditer(ln):
            if m.group(1) in unordered_names:
                add(idx, "unordered-iteration",
                    f"'{m.group(0).strip()})' walks an unordered container "
                    "in hash order")

        if WALL_CLOCK_RE.search(ln):
            add(idx, "wall-clock",
                "wall-clock time in scheduler code breaks replay "
                "determinism; thread simulated time through instead")
        if SPAN_WALL_CLOCK_RE.search(ln):
            add(idx, "span-wall-clock",
                "span timing must use the monotonic std::chrono::"
                "steady_clock; system_clock jumps under NTP and "
                "high_resolution_clock may alias it")
        if RAW_RAND_RE.search(ln):
            add(idx, "raw-rand",
                "process-global / nondeterministic randomness; use "
                "sns::util::Rng with an explicit seed")
        if is_header:
            m = UNINIT_MEMBER_RE.match(ln)
            if m:
                add(idx, "uninit-member",
                    f"scalar member '{m.group(1)}' has no initializer; "
                    "reads before assignment are indeterminate")

        if RAW_SYNC_RE.search(ln):
            add(idx, "unannotated-shared-state",
                f"raw '{RAW_SYNC_RE.search(ln).group(0)}' declaration; use "
                "sns::util::Mutex / util::CondVar (thread-annotations "
                "wrappers) so clang -Wthread-safety can check the lock "
                "discipline around the state it guards")

        if idx in hot_lines:
            m = HOT_ALLOC_RE.search(ln) or HOT_LOCAL_CONTAINER_RE.match(ln)
            if m:
                add(idx, "hot-path-allocation",
                    f"'{m.group(0).strip()[:40]}' allocates on every "
                    "activation of an SNS_HOT_PATH body; hoist it to setup "
                    "or a warm scratch member (the runtime gate in "
                    "tests/alloc enforces heap silence at steady state)")
            if THROW_RE.search(ln):
                add(idx, "exception-escape-hot-path",
                    "'throw' inside an SNS_HOT_PATH body unwinds across "
                    "warm scratch state on the decision latency budget; "
                    "use SNS_REQUIRE at the boundary or return a status")

    return findings


class AllowEntry:
    """One `<rule> <glob>` allowlist line, with provenance for staleness
    reporting. Indexable like the bare (rule, glob) tuples tests pass."""

    def __init__(self, rule, glob, source=None, lineno=0):
        self.rule = rule
        self.glob = glob
        self.source = source
        self.lineno = lineno
        self.used = False

    def __getitem__(self, i):
        return (self.rule, self.glob)[i]

    def __repr__(self):
        return f"AllowEntry({self.rule!r}, {self.glob!r})"


def load_allowlist(path):
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0] not in RULES:
                raise SystemExit(
                    f"{path}:{lineno}: bad allowlist entry {raw.strip()!r} "
                    "(want: <rule> <path-glob>)")
            entries.append(AllowEntry(parts[0], parts[1], path, lineno))
    return entries


def allowlisted(entries, finding):
    norm = finding.path.replace(os.sep, "/")
    for entry in entries:
        rule, glob = entry[0], entry[1]
        if rule == finding.rule and (
                fnmatch.fnmatch(norm, glob) or fnmatch.fnmatch(norm, "*/" + glob)):
            if isinstance(entry, AllowEntry):
                entry.used = True
            return True
    return False


def stale_entries(entries, active):
    """Allowlist entries whose rule ran but which suppressed nothing —
    dead weight that would silently excuse a future regression."""
    return [e for e in entries
            if isinstance(e, AllowEntry) and e.rule in active and not e.used]


def collect_files(args):
    """(abs_path, display_path) pairs: explicit files/dirs, plus module
    prefixes resolved via compile_commands + the module's headers."""
    root = os.path.abspath(args.root)
    seen = {}

    def add(p):
        ap = os.path.abspath(p)
        if ap.endswith((".cpp", ".cc", ".cxx", ".h", ".hpp", ".hh", ".hxx")):
            disp = os.path.relpath(ap, root) if ap.startswith(root + os.sep) else ap
            seen[ap] = disp

    cc_files = []
    if args.compile_commands:
        with open(args.compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                p = entry["file"]
                if not os.path.isabs(p):
                    p = os.path.join(entry.get("directory", "."), p)
                cc_files.append(os.path.abspath(p))

    for target in args.paths:
        if os.path.isfile(target):
            add(target)
            continue
        if os.path.isdir(target):
            for dirpath, _, names in os.walk(target):
                for n in sorted(names):
                    add(os.path.join(dirpath, n))
            continue
        # Module prefix like `sns/sched`: TUs from the compilation database
        # plus every header in the module directory.
        prefix = os.path.join(root, "src", target) + os.sep
        matched = False
        for p in cc_files:
            if p.startswith(prefix):
                add(p)
                matched = True
        mod_dir = os.path.join(root, "src", target)
        if os.path.isdir(mod_dir):
            matched = True
            for dirpath, _, names in os.walk(mod_dir):
                for n in sorted(names):
                    if n.endswith((".h", ".hpp", ".hh", ".hxx")):
                        add(os.path.join(dirpath, n))
        if not matched:
            raise SystemExit(f"snslint: nothing matches '{target}' "
                             f"(not a file, directory, or module under {root}/src)")
    return sorted(seen.items())


def main(argv=None):
    ap = argparse.ArgumentParser(prog="snslint", add_help=True)
    ap.add_argument("--compile-commands", help="compile_commands.json path")
    ap.add_argument("--root", default=".", help="repo root for module prefixes")
    ap.add_argument("--allowlist", help="allowlist file (<rule> <glob> lines)")
    ap.add_argument("--rules", help="comma-separated subset of rules to run")
    ap.add_argument("--check-stale-allowlist", action="store_true",
                    help="fail if an active-rule allowlist entry suppressed "
                         "nothing (reported with the entry's file:line)")
    ap.add_argument("paths", nargs="+", metavar="PATH_OR_MODULE")
    args = ap.parse_args(argv)

    active = set(RULES)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",")}
        bad = active - set(RULES)
        if bad:
            raise SystemExit(f"snslint: unknown rule(s): {', '.join(sorted(bad))}")

    entries = load_allowlist(args.allowlist) if args.allowlist else []

    files = collect_files(args)
    findings = []
    for ap_, disp in files:
        for f in scan_file(ap_, disp):
            if f.rule in active and not allowlisted(entries, f):
                findings.append(f)

    for f in findings:
        print(f)
    stale = stale_entries(entries, active) if args.check_stale_allowlist else []
    for e in stale:
        print(f"{e.source}:{e.lineno}: stale allowlist entry "
              f"'{e.rule} {e.glob}' suppressed nothing — remove it, or fix "
              "the glob if it was meant to match")
    print(f"snslint: {len(files)} file(s), {len(findings)} finding(s), "
          f"{len(stale)} stale allowlist entr(y/ies)"
          if args.check_stale_allowlist else
          f"snslint: {len(files)} file(s), {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings or stale else 0


if __name__ == "__main__":
    sys.exit(main())
