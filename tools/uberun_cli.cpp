// uberun — command-line front end to the Spread-n-Share reproduction.
//
//   uberun programs                           list the workload set
//   uberun profile   [--procs N] [--noise S] [--out db.json] [PROG...]
//   uberun generate  [--jobs N] [--seed S] [--alpha A] --out jobs.json
//   uberun simulate  --jobs jobs.json [--policy CE|CS|SNS] [--nodes N]
//                    [--db db.json] [--online] [--mba] [--network]
//   uberun plan      --job PROG[:PROCS[:ALPHA]] [--db db.json]
//   uberun trace     [--cluster N] [--ratio R] [--jobs N] [--policy P]
//   uberun trace     --workload quickstart|random|FILE [--policy P] [--nodes N]
//                    [--out trace.perfetto.json] [--online] [--mba] [--anatomy]
//   uberun metrics   [--workload quickstart|random|fig20|FILE] [--policy P]
//                    [--nodes N] [--period S] [--budget N] [--out FILE]
//   uberun report    [same as metrics] [--out report.html] [--enforce-slo]
//                    [--audit]
//   uberun top       [same as metrics] [--at T]
//   uberun audit     [same as metrics] [--keep-going]
//   uberun explain   [same as metrics] [--job J]
//   uberun hotpath   [same as metrics] [--sample N] [--folded FILE]
//   uberun why-slow  [same as metrics] [--job J] [--limit N]
//
// All telemetry subcommands take --legacy-decision: run every SimOptFlags
// hot-path optimization through its legacy implementation, for before/after
// decision-latency attribution (the results are bit-identical either way).
//
// The telemetry subcommands (metrics / report / top) run the workload with
// the sns::telemetry stack attached — periodic cluster sampling, SLO
// watchdogs and the scheduler phase profiler — then export the series as
// Prometheus text, a self-contained HTML dashboard, or a terminal view of
// the cluster at one instant. SLO thresholds: --slo-decision-us,
// --slo-starvation-s, --slo-collapse.
//
// `uberun explain` replays a workload with the sns::xray provenance store
// attached and answers "why did job J land where it did": the scale-factor
// walk with per-step rejection reasons, the winning nodes with their
// Co + Bo + beta x Wo score breakdown, and the solver-cache provenance of
// the deciding dispatch. Without --job it prints a one-line-per-job index.
//
// `uberun hotpath` replays a workload with the sns::xray decision tracer
// timing every scheduling pass (--sample N times every Nth) and prints the
// aggregated cost attribution: per-span calls / self time / p50 / p99,
// folded stacks (--folded FILE writes them for flamegraph.pl), and a
// reconciliation line against the simulator's own decision-latency metric.
//
// `uberun why-slow` replays a workload with the sns::flight interference
// flight recorder attached and answers "why did job J finish slower than
// solo": stretch vs the 1/alpha degradation bound, the queue-wait / solo /
// interference split of end-to-end latency, per-resource attribution
// (LLC ways / memory bandwidth / network) and the co-runners that caused
// it. Without --job it prints the degradation-bound census plus the most
// degraded jobs.
//
// `uberun audit` replays a workload with the sns::audit invariant auditor
// attached: at every scheduling point the ledger's cached occupancy totals
// and idle-core buckets, the queue's tombstone accounting, and the solver
// cache's signature consistency are cross-validated against full
// recomputation (fail-fast by default; --keep-going accumulates). `--audit`
// on report/trace attaches the same auditor in accumulate mode and folds
// the outcome into the HTML report / trace summary.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime errors,
// 4 when --enforce-slo is set and an SLO rule fired, 5 when the invariant
// auditor found a violation.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sns/app/jobspec_io.hpp"
#include "sns/app/library.hpp"
#include "sns/audit/audit.hpp"
#include "sns/flight/report.hpp"
#include "sns/obs/metrics.hpp"
#include "sns/obs/sink.hpp"
#include "sns/profile/demand.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/sim/metrics.hpp"
#include "sns/sim/result_io.hpp"
#include "sns/sim/trace_export.hpp"
#include "sns/telemetry/export.hpp"
#include "sns/telemetry/sampler.hpp"
#include "sns/trace/replay.hpp"
#include "sns/trace/swf.hpp"
#include "sns/uberun/launch_plan.hpp"
#include "sns/util/stats.hpp"
#include "sns/util/table.hpp"
#include "sns/xray/explain.hpp"
#include "sns/xray/span.hpp"

namespace {

using namespace sns;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  static Args parse(int argc, char** argv, const std::vector<std::string>& flag_names) {
    Args a;
    for (int i = 2; i < argc; ++i) {
      std::string tok = argv[i];
      if (tok.rfind("--", 0) == 0) {
        const std::string name = tok.substr(2);
        if (std::find(flag_names.begin(), flag_names.end(), name) !=
            flag_names.end()) {
          a.flags[name] = true;
        } else if (i + 1 < argc) {
          a.options[name] = argv[++i];
        } else {
          throw util::DataError("option --" + name + " needs a value");
        }
      } else {
        a.positional.push_back(tok);
      }
    }
    return a;
  }

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  double num(const std::string& key, double dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::stod(it->second);
  }
  bool flag(const std::string& key) const {
    auto it = flags.find(key);
    return it != flags.end() && it->second;
  }
};

sched::PolicyKind parsePolicy(const std::string& s) {
  if (s == "CE" || s == "ce") return sched::PolicyKind::kCE;
  if (s == "CS" || s == "cs") return sched::PolicyKind::kCS;
  if (s == "SNS" || s == "sns") return sched::PolicyKind::kSNS;
  throw util::DataError("unknown policy: " + s + " (expected CE, CS or SNS)");
}

struct World {
  perfmodel::Estimator est;
  std::vector<app::ProgramModel> lib;

  World() : lib(app::programLibrary()) {
    for (auto& p : lib) est.calibrate(p);
  }
};

profile::ProfileDatabase loadOrBuildDb(const World& w, const Args& a) {
  const std::string path = a.get("db", "");
  if (!path.empty()) return profile::ProfileDatabase::loadFile(path);
  profile::ProfilerConfig cfg;
  cfg.pmu_noise = a.num("noise", 0.02);
  profile::Profiler prof(w.est, cfg);
  profile::ProfileDatabase db;
  for (const auto& p : w.lib) {
    db.put(prof.profileProgram(p, 16));
    if (!p.pow2_procs && p.multi_node) db.put(prof.profileProgram(p, 28));
  }
  return db;
}

int cmdPrograms(const World& w) {
  util::Table t({"program", "framework", "ref time (s)", "multi-node",
                 "pow2 procs"});
  for (const auto& p : w.lib) {
    t.addRow({p.name, to_string(p.framework), util::fmt(p.solo_time_ref, 0),
              p.multi_node ? "yes" : "no", p.pow2_procs ? "yes" : "no"});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmdProfile(const World& w, const Args& a) {
  const int procs = static_cast<int>(a.num("procs", 16));
  profile::ProfilerConfig cfg;
  cfg.pmu_noise = a.num("noise", 0.02);
  profile::Profiler prof(w.est, cfg);

  std::vector<std::string> targets = a.positional;
  if (targets.empty()) targets = app::programNames();

  profile::ProfileDatabase db;
  util::Table t({"program", "class", "ideal k", "w (a=0.9)", "b (GB/s)"});
  for (const auto& name : targets) {
    const auto& p = app::findProgram(w.lib, name);
    const int use_procs = p.multi_node || procs <= p.ref_procs ? procs : p.ref_procs;
    auto pp = prof.profileProgram(p, use_procs);
    const auto d = profile::estimateDemand(*pp.at(1), 0.9, w.est.machine());
    t.addRow({name, to_string(pp.cls), std::to_string(pp.ideal_scale) + "x",
              std::to_string(d.ways), util::fmt(d.bw_gbps, 1)});
    db.put(std::move(pp));
  }
  std::printf("%s", t.render().c_str());

  const std::string out = a.get("out", "");
  if (!out.empty()) {
    db.saveFile(out);
    std::printf("\nwrote %zu profiles to %s\n", db.size(), out.c_str());
  }
  return 0;
}

int cmdGenerate(const World& w, const Args& a) {
  const std::string out = a.get("out", "");
  if (out.empty()) throw util::DataError("generate needs --out FILE");
  util::Rng rng(static_cast<std::uint64_t>(a.num("seed", 2019)));
  const auto seq =
      app::randomSequence(rng, w.lib, static_cast<int>(a.num("jobs", 20)),
                          a.num("alpha", 0.9));
  app::saveJobList(out, seq);
  std::printf("wrote %zu jobs to %s\n", seq.size(), out.c_str());
  return 0;
}

int cmdSimulate(const World& w, const Args& a) {
  const std::string jobs_path = a.get("jobs", "");
  if (jobs_path.empty()) throw util::DataError("simulate needs --jobs FILE");
  const auto jobs = app::loadJobList(jobs_path);
  const auto db = loadOrBuildDb(w, a);

  sim::SimConfig cfg;
  cfg.nodes = static_cast<int>(a.num("nodes", 8));
  cfg.policy = parsePolicy(a.get("policy", "SNS"));
  cfg.online_profiling = a.flag("online");
  cfg.enforce_bandwidth_caps = a.flag("mba");
  cfg.sns.manage_network = a.flag("network");
  sim::ClusterSimulator sim(w.est, w.lib, db, cfg);
  const auto res = sim.run(jobs);

  util::Table t({"job", "program", "procs", "nodes", "ways", "wait (s)",
                 "run (s)", "turnaround (s)"});
  for (const auto& j : res.jobs) {
    t.addRow({std::to_string(j.id), j.spec.program, std::to_string(j.spec.procs),
              std::to_string(j.placement.nodeCount()),
              std::to_string(j.placement.ways), util::fmt(j.waitTime(), 1),
              util::fmt(j.runTime(), 1), util::fmt(j.turnaround(), 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("policy %s: makespan %.1f s, mean turnaround %.1f s, "
              "throughput %.6f jobs/s, node-seconds %.0f\n",
              res.policy.c_str(), res.makespan, res.meanTurnaround(),
              res.throughput(), res.busy_node_seconds);
  const std::string out = a.get("out", "");
  if (!out.empty()) {
    sim::saveResult(out, res);
    std::printf("wrote schedule to %s\n", out.c_str());
  }
  return 0;
}

int cmdPlan(const World& w, const Args& a) {
  const std::string job_str = a.get("job", "");
  if (job_str.empty()) throw util::DataError("plan needs --job PROG[:PROCS[:ALPHA]]");
  std::string name = job_str;
  int procs = 16;
  double alpha = 0.9;
  if (auto c1 = job_str.find(':'); c1 != std::string::npos) {
    name = job_str.substr(0, c1);
    const std::string rest = job_str.substr(c1 + 1);
    if (auto c2 = rest.find(':'); c2 != std::string::npos) {
      procs = std::stoi(rest.substr(0, c2));
      alpha = std::stod(rest.substr(c2 + 1));
    } else {
      procs = std::stoi(rest);
    }
  }

  auto db = loadOrBuildDb(w, a);
  const int nodes = static_cast<int>(a.num("nodes", 8));
  actuator::ResourceLedger ledger(nodes, w.est.machine());

  sched::Job job;
  job.id = 1;
  job.spec.program = name;
  job.spec.procs = procs;
  job.spec.alpha = alpha;
  job.program = &app::findProgram(w.lib, name);

  sched::SnsPolicy policy(w.est);
  const auto placement = policy.tryPlace(job, ledger, db);
  if (!placement.has_value()) {
    std::printf("no feasible placement\n");
    return 2;
  }

  uberun::LaunchPlanner planner(nodes, w.est.machine());
  const auto plan = planner.materialize(job, *placement);
  std::printf("placement: %d node(s) x %d procs, %d LLC ways, %.1f GB/s "
              "bandwidth reserve\n\n",
              placement->nodeCount(), placement->procs_per_node, placement->ways,
              placement->bw_gbps);
  for (const auto& nl : plan.nodes) {
    std::printf("  %s: cores %s%s\n", nl.hostname.c_str(),
                uberun::cpuList(nl.cores).c_str(),
                nl.cat_mask ? ("  CAT " + actuator::CatMasker::toHex(nl.cat_mask)).c_str()
                            : "");
  }
  std::printf("\ncommands:\n");
  for (const auto& c : plan.commands) std::printf("  %s\n", c.c_str());
  return 0;
}

// `trace --workload ...`: run a small workload with the observability stack
// attached and export a Perfetto/Chrome trace plus a metrics summary.
int cmdTraceWorkload(const World& w, const Args& a) {
  const std::string workload = a.get("workload", "quickstart");
  std::vector<app::JobSpec> jobs;
  if (workload == "quickstart") {
    jobs = {
        {"MG", 16, 0.9, 0.0, 1, 0.0},
        {"NW", 16, 0.9, 0.0, 1, 0.0},
        {"HC", 16, 0.9, 0.0, 1, 0.0},
        {"EP", 16, 0.9, 0.0, 1, 0.0},
    };
  } else if (workload == "random") {
    util::Rng rng(static_cast<std::uint64_t>(a.num("seed", 2019)));
    jobs = app::randomSequence(rng, w.lib, static_cast<int>(a.num("jobs", 20)),
                               a.num("alpha", 0.9));
  } else {
    // Anything else is a job-list file written by `uberun generate`.
    jobs = app::loadJobList(workload);
  }

  const auto db = loadOrBuildDb(w, a);
  sim::SimConfig cfg;
  cfg.nodes = static_cast<int>(a.num("nodes", 8));
  cfg.policy = parsePolicy(a.get("policy", "SNS"));
  cfg.online_profiling = a.flag("online");
  cfg.enforce_bandwidth_caps = a.flag("mba");

  // --audit: cross-validate scheduler state at every decision point, in
  // accumulate mode so the trace still gets written with the violations
  // embedded as audit_violation instants.
  audit::Auditor auditor;
  if (a.flag("audit")) cfg.auditor = &auditor;

  // --anatomy: retain per-span decision records and render them as nested
  // "decision anatomy" lanes under the scheduler process in the trace.
  xray::TracerConfig xcfg;
  xcfg.keep_records = true;
  xray::Tracer tracer(xcfg);
  if (a.flag("anatomy")) cfg.xray = &tracer;

  // The flight recorder rides every exported trace: its retained
  // co-residency intervals become per-node "interference (slowdown s/s)"
  // counter lanes (results stay bit-identical with it attached).
  flight::FlightRecorder recorder;
  cfg.flight = &recorder;

  obs::RingBufferLog log;
  obs::Registry metrics;
  cfg.sink = &log;
  cfg.metrics = &metrics;
  sim::ClusterSimulator sim(w.est, w.lib, db, cfg);
  const auto res = sim.run(jobs);

  const auto events = log.snapshot();
  const std::string out = a.get("out", "trace.perfetto.json");
  sim::TraceExportOptions topts;
  if (a.flag("anatomy")) topts.xray = &tracer;
  topts.flight = &recorder;
  sim::writePerfettoFile(out, res, events, topts);

  std::map<std::string, std::size_t> by_type;
  for (const auto& e : events) ++by_type[obs::to_string(e.type)];
  util::Table et({"event type", "count"});
  for (const auto& [name, n] : by_type) et.addRow({name, std::to_string(n)});
  std::printf("%s policy on %d nodes: %zu jobs, makespan %.1f s\n\n",
              res.policy.c_str(), cfg.nodes, res.jobs.size(), res.makespan);
  std::printf("%s\n%s\n", et.render().c_str(), metrics.renderTable().c_str());
  if (log.dropped() > 0) {
    std::printf("(ring buffer dropped %zu oldest events)\n", log.dropped());
  }
  std::printf("wrote %zu trace events to %s — open in ui.perfetto.dev\n",
              events.size(), out.c_str());
  if (a.flag("audit")) {
    std::printf("\n%s", auditor.report().c_str());
    if (!auditor.ok()) return 5;
  }
  return 0;
}

int cmdTrace(const World& w, const Args& a) {
  if (a.options.count("workload") != 0) return cmdTraceWorkload(w, a);
  const int cluster = static_cast<int>(a.num("cluster", 4096));
  const double ratio = a.num("ratio", 0.9);
  // Either replay a real SWF trace (Parallel Workloads Archive format) or
  // generate the synthetic Trinity-like one.
  std::vector<trace::TraceJob> raw;
  const std::string swf = a.get("swf", "");
  if (!swf.empty()) {
    trace::SwfOptions sopts;
    sopts.cores_per_node = w.est.machine().cores;
    raw = trace::loadSwf(swf, sopts);
    std::printf("loaded %zu parallel jobs from %s\n", raw.size(), swf.c_str());
  } else {
    trace::TraceGenParams params;
    params.jobs = static_cast<int>(a.num("jobs", 700));
    params.horizon_hours = 1900.0 * params.jobs / 7044.0;
    util::Rng rng(static_cast<std::uint64_t>(a.num("seed", 0x7417177)));
    raw = trace::generateTrace(rng, params);
  }

  util::Rng map_rng(static_cast<std::uint64_t>(ratio * 1000));
  const auto jobs =
      trace::mapTraceToJobs(map_rng, raw, ratio, w.est.machine().cores);
  profile::ProfilerConfig pcfg;
  pcfg.pmu_noise = 0.02;
  profile::Profiler prof(w.est, pcfg);
  profile::ProfileDatabase db16;
  for (const auto& p : w.lib) db16.put(prof.profileProgram(p, 16));
  const auto db = trace::synthesizeTraceProfiles(db16, 16, jobs, w.est);

  const auto policy = parsePolicy(a.get("policy", "SNS"));
  const auto res = trace::simulateTrace(w.est, w.lib, db, jobs, cluster, policy);
  std::printf("%s on %d nodes, ratio %.2f: %zu jobs, mean wait %.0f s, mean "
              "run %.0f s, mean turnaround %.0f s\n",
              res.policy.c_str(), cluster, ratio, res.jobs.size(), res.meanWait(),
              res.meanRun(), res.meanTurnaround());
  return 0;
}

// ---- telemetry subcommands (metrics / report / top) -----------------------

/// Workload + database + scale defaults for one telemetry run.
struct TelemetryWorkload {
  std::vector<app::JobSpec> jobs;
  profile::ProfileDatabase db;
  std::string name;
  int default_nodes = 8;
  double default_period_s = 1.0;
  bool trace_scale = false;  ///< fig20: replay-style simulator knobs
};

TelemetryWorkload buildTelemetryWorkload(const World& w, const Args& a) {
  TelemetryWorkload wl;
  wl.name = a.get("workload", "quickstart");
  if (wl.name == "quickstart") {
    wl.jobs = {
        {"MG", 16, 0.9, 0.0, 1, 0.0},
        {"NW", 16, 0.9, 0.0, 1, 0.0},
        {"HC", 16, 0.9, 0.0, 1, 0.0},
        {"EP", 16, 0.9, 0.0, 1, 0.0},
    };
    wl.db = loadOrBuildDb(w, a);
  } else if (wl.name == "random") {
    util::Rng rng(static_cast<std::uint64_t>(a.num("seed", 2019)));
    wl.jobs = app::randomSequence(rng, w.lib,
                                  static_cast<int>(a.num("jobs", 20)),
                                  a.num("alpha", 0.9));
    wl.db = loadOrBuildDb(w, a);
  } else if (wl.name == "fig20") {
    // The paper's Fig 20 setup: the synthetic Trinity-like trace mapped
    // onto the measured program set, replayed at cluster scale.
    trace::TraceGenParams params;
    params.jobs = static_cast<int>(a.num("jobs", 700));
    params.horizon_hours = 1900.0 * params.jobs / 7044.0;
    util::Rng rng(static_cast<std::uint64_t>(a.num("seed", 0x7417177)));
    const auto raw = trace::generateTrace(rng, params);
    const double ratio = a.num("ratio", 0.9);
    util::Rng map_rng(static_cast<std::uint64_t>(ratio * 1000));
    wl.jobs = trace::mapTraceToJobs(map_rng, raw, ratio, w.est.machine().cores);
    profile::ProfilerConfig pcfg;
    pcfg.pmu_noise = 0.02;
    profile::Profiler prof(w.est, pcfg);
    profile::ProfileDatabase db16;
    for (const auto& p : w.lib) db16.put(prof.profileProgram(p, 16));
    wl.db = trace::synthesizeTraceProfiles(db16, 16, wl.jobs, w.est);
    wl.default_nodes = 4096;
    wl.default_period_s = 600.0;  // trace horizon is weeks; 10 min ticks
    wl.trace_scale = true;
  } else {
    // Anything else is a job-list file written by `uberun generate`.
    wl.jobs = app::loadJobList(wl.name);
    wl.db = loadOrBuildDb(w, a);
  }
  return wl;
}

/// One workload run with the full telemetry stack attached. The members
/// reference each other (sampler -> store, watchdog -> recorder -> log),
/// so the struct is heap-allocated and immovable.
struct TelemetryRun {
  telemetry::TimeSeriesStore store;
  telemetry::SloWatchdog watchdog;
  telemetry::Sampler sampler;
  telemetry::PhaseProfiler phases;
  obs::Registry metrics;
  obs::RingBufferLog log;
  obs::Recorder slo_rec;  ///< routes watchdog violations into `log`
  /// Decision tracer + provenance store, when the subcommand asked for one
  /// (explain / hotpath / report). Null on plain metrics/top runs so the
  /// scheduler hot path stays untouched.
  std::unique_ptr<xray::Tracer> xray;
  /// Interference flight recorder, when the subcommand asked for one
  /// (why-slow / report). Null otherwise — attaching it is bit-identical
  /// for the schedule but costs extra solver lookups per settle point.
  std::unique_ptr<flight::FlightRecorder> flight;
  sim::SimResult result;
  int nodes = 0;
  std::string workload;

  TelemetryRun(std::vector<telemetry::SloRule> rules, std::size_t budget,
               telemetry::SamplerConfig scfg)
      : store(budget), watchdog(std::move(rules)), sampler(store, scfg) {}

  /// Headline facts for report tiles and the terminal summary.
  std::vector<std::pair<std::string, std::string>> summaryTiles() const {
    return {
        {"policy", result.policy},
        {"nodes", std::to_string(nodes)},
        {"jobs", std::to_string(result.jobs.size())},
        {"makespan (s)", util::fmt(result.makespan, 1)},
        {"mean turnaround (s)", util::fmt(result.meanTurnaround(), 1)},
        {"sample ticks", std::to_string(sampler.ticks())},
        {"SLO episodes", std::to_string(watchdog.totalEpisodes())},
    };
  }
};

std::unique_ptr<TelemetryRun> runTelemetry(const World& w, const Args& a,
                                           audit::Auditor* auditor = nullptr,
                                           const xray::TracerConfig* xcfg = nullptr,
                                           bool with_flight = false) {
  auto wl = buildTelemetryWorkload(w, a);

  auto rules = telemetry::SloWatchdog::defaultRules();
  for (auto& r : rules) {
    using K = telemetry::SloRule::Kind;
    if (r.kind == K::kDecisionLatencyP99) {
      r.threshold = a.num("slo-decision-us", r.threshold);
    } else if (r.kind == K::kQueueStarvation) {
      r.threshold = a.num("slo-starvation-s", r.threshold);
    } else if (r.kind == K::kUtilizationCollapse) {
      r.threshold = a.num("slo-collapse", r.threshold);
    }
  }

  telemetry::SamplerConfig scfg;
  scfg.period_s = a.num("period", wl.default_period_s);
  const auto budget = static_cast<std::size_t>(a.num("budget", 512));

  auto run = std::make_unique<TelemetryRun>(std::move(rules), budget, scfg);
  run->workload = wl.name;
  run->slo_rec.setSink(&run->log);
  run->watchdog.setRecorder(&run->slo_rec);
  run->sampler.attachWatchdog(&run->watchdog);

  sim::SimConfig cfg;
  cfg.nodes = static_cast<int>(a.num("nodes", wl.default_nodes));
  cfg.policy = parsePolicy(a.get("policy", "SNS"));
  cfg.online_profiling = a.flag("online");
  cfg.enforce_bandwidth_caps = a.flag("mba");
  if (a.flag("legacy-decision")) {
    // A/B switch for the fast decision path: run every SimOptFlags
    // optimization through its legacy implementation, so `uberun hotpath`
    // can attribute the before/after on the same workload.
    cfg.opt.indexed_ledger = false;
    cfg.opt.memoize_solves = false;
    cfg.opt.single_pass_schedule = false;
    cfg.opt.incremental_prune = false;
    cfg.opt.batched_scoring = false;
    cfg.opt.parallel_select = false;
    cfg.opt.simd_solver = false;
  }
  if (wl.trace_scale) {
    cfg.monitor_episode_s = 0.0;  // no per-node bw sampling at 4K nodes
    cfg.age_limit_s = 14.0 * 86400.0;
    cfg.max_queue_scan = 256;
  }
  cfg.sink = &run->log;
  cfg.metrics = &run->metrics;
  cfg.sampler = &run->sampler;
  cfg.phases = &run->phases;
  cfg.auditor = auditor;
  if (xcfg != nullptr) {
    run->xray = std::make_unique<xray::Tracer>(*xcfg);
    cfg.xray = run->xray.get();
  }
  if (with_flight) {
    run->flight = std::make_unique<flight::FlightRecorder>();
    run->flight->attachMetrics(&run->metrics);
    cfg.flight = run->flight.get();
  }
  run->nodes = cfg.nodes;

  sim::ClusterSimulator sim(w.est, w.lib, wl.db, cfg);
  run->result = sim.run(wl.jobs);
  return run;
}

/// Shared tail: print the watchdog summary (stderr keeps `uberun metrics`
/// stdout machine-clean) and map violations to exit 4 under --enforce-slo.
int finishTelemetry(const TelemetryRun& run, const Args& a) {
  std::fprintf(stderr, "%s", run.watchdog.renderSummary().c_str());
  if (run.watchdog.anyViolation()) {
    std::fprintf(stderr, "SLO: %llu violation episode(s)%s\n",
                 static_cast<unsigned long long>(run.watchdog.totalEpisodes()),
                 a.flag("enforce-slo") ? " — failing (--enforce-slo)" : "");
    if (a.flag("enforce-slo")) return 4;
  }
  return 0;
}

void writeOrPrint(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::printf("%s", text.c_str());
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::DataError("cannot write " + path);
  out << text;
}

int cmdMetrics(const World& w, const Args& a) {
  // The flight recorder rides along so the sns_degradation_* gauges land in
  // the Prometheus exposition (schedule stays bit-identical with it on).
  auto run = runTelemetry(w, a, nullptr, nullptr, /*with_flight=*/true);
  writeOrPrint(a.get("out", ""),
               telemetry::renderPrometheus(&run->store, &run->metrics));
  return finishTelemetry(*run, a);
}

int cmdReport(const World& w, const Args& a) {
  // --audit: accumulate violations (never abort the run — the report is the
  // point) and surface them as a dedicated section + an extra tile.
  audit::Auditor auditor;
  const bool with_audit = a.flag("audit");
  // Ride a sampled decision tracer along every report run so the HTML gets
  // a "Decision anatomy" section without measurably perturbing the run
  // (provenance off — the report aggregates, it doesn't explain jobs).
  xray::TracerConfig xcfg;
  xcfg.sample_period = static_cast<int>(a.num("sample", 32));
  xcfg.provenance = false;
  auto run = runTelemetry(w, a, with_audit ? &auditor : nullptr, &xcfg,
                          /*with_flight=*/true);
  telemetry::ReportContext ctx;
  ctx.title = "uberun — " + run->result.policy + " on " +
              std::to_string(run->nodes) + " nodes (" + run->workload + ")";
  ctx.store = &run->store;
  ctx.metrics = &run->metrics;
  ctx.watchdog = &run->watchdog;
  ctx.phases = &run->phases;
  ctx.summary = run->summaryTiles();
  ctx.events_dropped = run->log.dropped();
  if (run->xray != nullptr && run->xray->sampledPasses() > 0) {
    const obs::Histogram* dh = run->metrics.findHistogram("sim.decision_us");
    ctx.xray_text =
        xray::renderHotpath(*run->xray, dh != nullptr ? dh->mean() : 0.0);
  }
  if (run->flight != nullptr && run->flight->runComplete()) {
    ctx.flight_text = flight::renderDegradationReport(*run->flight);
    ctx.flight_violations = run->flight->census().violations;
    ctx.summary.emplace_back("bound violations",
                             std::to_string(run->flight->census().violations));
  }
  if (with_audit) {
    auditor.auditTimeSeries(run->store);
    ctx.summary.emplace_back("audit violations",
                             std::to_string(auditor.totalViolations()));
    ctx.audit_text = auditor.report();
    ctx.audit_violations = auditor.totalViolations();
  }
  const std::string out = a.get("out", "uberun_report.html");
  writeOrPrint(out, telemetry::renderHtmlReport(ctx));
  std::printf("%s policy on %d nodes: %zu jobs, makespan %.1f s, %llu sample "
              "ticks across %zu series\nwrote report to %s\n",
              run->result.policy.c_str(), run->nodes, run->result.jobs.size(),
              run->result.makespan,
              static_cast<unsigned long long>(run->sampler.ticks()),
              run->store.size(), out.c_str());
  const int rc = finishTelemetry(*run, a);
  if (with_audit && !auditor.ok()) {
    std::fprintf(stderr, "%s", auditor.report().c_str());
    return 5;
  }
  return rc;
}

// `uberun audit`: the invariant auditor as a first-class gate. Runs the
// workload with per-scheduling-point audits of the ledger / queue / solver
// cache, then the post-run time-series audit. Fail-fast by default so CI
// stops at the first divergence; --keep-going accumulates everything.
int cmdAudit(const World& w, const Args& a) {
  audit::AuditorConfig acfg;
  acfg.fail_fast = !a.flag("keep-going");
  audit::Auditor auditor(acfg);
#if !SNS_AUDIT_ENABLED
  std::fprintf(stderr,
               "uberun audit: warning: this build compiled the scheduler "
               "audit hooks out (SNS_AUDIT=OFF); only the post-run "
               "time-series audit will run\n");
#endif
  try {
    // The flight recorder rides along so the run also exercises the
    // reconciliation audit (auditFlightLedger replays every finished
    // job's slowdown ledger post-run, even in SNS_AUDIT=OFF builds).
    auto run = runTelemetry(w, a, &auditor, nullptr, /*with_flight=*/true);
    auditor.auditTimeSeries(run->store);
    std::printf("%s policy on %d nodes (%s): %zu jobs, makespan %.1f s\n\n",
                run->result.policy.c_str(), run->nodes, run->workload.c_str(),
                run->result.jobs.size(), run->result.makespan);
    std::printf("%s", auditor.report().c_str());
    return auditor.ok() ? 0 : 5;
  } catch (const audit::AuditError& e) {
    std::fprintf(stderr, "uberun audit: %s\n%s", e.what(),
                 auditor.report().c_str());
    return 5;
  }
}

int cmdTop(const World& w, const Args& a) {
  auto run = runTelemetry(w, a);
  const double at = a.num("at", run->result.makespan);
  std::printf("%s policy on %d nodes (%s), makespan %.1f s\n\n%s",
              run->result.policy.c_str(), run->nodes, run->workload.c_str(),
              run->result.makespan, telemetry::renderTop(run->store, at).c_str());
  // End-of-run solver-cache effectiveness, derived from the raw counters
  // (the renderTop row shows the *sampled* series; this is the exact total).
  const obs::Counter* sc_hits = run->metrics.findCounter("solver.cache.hits");
  const obs::Counter* sc_miss = run->metrics.findCounter("solver.cache.misses");
  if (sc_hits != nullptr && sc_miss != nullptr) {
    const double lookups = sc_hits->value() + sc_miss->value();
    std::printf("\nsolver cache: %.0f lookups, %.1f%% hit rate\n",
                lookups,
                lookups > 0.0 ? 100.0 * sc_hits->value() / lookups : 0.0);
  }
  std::printf("\n%s", run->phases.renderTable().c_str());
  return finishTelemetry(*run, a);
}

// `uberun explain`: replay the workload with the provenance store attached
// (timing effectively off — a huge sample period — since explanation needs
// no clocks) and answer "why did job J land where it did".
int cmdExplain(const World& w, const Args& a) {
  xray::TracerConfig xcfg;
  xcfg.sample_period = 1 << 30;  // provenance is sampling-independent
  xcfg.provenance = true;
  xcfg.max_candidates = static_cast<std::size_t>(a.num("candidates", 8));
  auto run = runTelemetry(w, a, nullptr, &xcfg);
  const xray::ProvenanceStore* prov = run->xray->provenance();
  std::printf("%s policy on %d nodes (%s): %zu jobs, makespan %.1f s\n\n",
              run->result.policy.c_str(), run->nodes, run->workload.c_str(),
              run->result.jobs.size(), run->result.makespan);
  if (a.options.count("job") != 0) {
    const auto job = static_cast<std::int64_t>(a.num("job", 0));
    if (!prov->has(job)) {
      std::fprintf(stderr, "uberun explain: no decision recorded for job %lld\n",
                   static_cast<long long>(job));
      return 2;
    }
    std::printf("%s", xray::renderExplain(*prov, job).c_str());
  } else {
    std::printf("%s", xray::renderExplainIndex(*prov).c_str());
  }
  return 0;
}

// `uberun hotpath`: replay the workload with the decision tracer timing
// every (or every --sample'th) scheduling pass and print the aggregated
// cost attribution plus the reconciliation against sim.decision_us.
int cmdHotpath(const World& w, const Args& a) {
  xray::TracerConfig xcfg;
  xcfg.sample_period = static_cast<int>(a.num("sample", 1));
  xcfg.provenance = false;
  auto run = runTelemetry(w, a, nullptr, &xcfg);
  const obs::Histogram* dh = run->metrics.findHistogram("sim.decision_us");
  std::printf("%s policy on %d nodes (%s): %zu jobs, makespan %.1f s\n\n",
              run->result.policy.c_str(), run->nodes, run->workload.c_str(),
              run->result.jobs.size(), run->result.makespan);
  std::printf("%s", xray::renderHotpath(*run->xray,
                                        dh != nullptr ? dh->mean() : 0.0)
                        .c_str());
  const std::string folded = a.get("folded", "");
  if (!folded.empty()) {
    writeOrPrint(folded, run->xray->foldedStacks());
    std::printf("\nwrote folded stacks to %s (flamegraph.pl / speedscope)\n",
                folded.c_str());
  }
  return 0;
}

// `uberun why-slow`: replay the workload with the interference flight
// recorder attached and answer "why did job J finish slower than solo":
// stretch vs the 1/alpha degradation bound, the queue-wait / interference
// split, per-resource attribution and the co-runner shares. Without --job
// it prints the degradation census plus the most degraded jobs.
int cmdWhySlow(const World& w, const Args& a) {
  auto run = runTelemetry(w, a, nullptr, nullptr, /*with_flight=*/true);
  std::printf("%s policy on %d nodes (%s): %zu jobs, makespan %.1f s\n\n",
              run->result.policy.c_str(), run->nodes, run->workload.c_str(),
              run->result.jobs.size(), run->result.makespan);
  if (a.options.count("job") != 0) {
    const auto job = static_cast<std::int64_t>(a.num("job", 0));
    const flight::JobRollup* jr = run->flight->find(job);
    if (jr == nullptr || jr->start < 0.0) {
      std::fprintf(stderr, "uberun why-slow: no lifetime recorded for job %lld\n",
                   static_cast<long long>(job));
      return 2;
    }
    std::printf("%s", flight::renderWhySlow(*run->flight, job).c_str());
  } else {
    const auto limit = static_cast<std::size_t>(a.num("limit", 15));
    std::printf("%s", flight::renderWhySlowIndex(*run->flight, limit).c_str());
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: uberun <programs|profile|generate|simulate|plan|trace|"
               "metrics|report|top|audit|explain|hotpath|why-slow> "
               "[options]\n(see the header of tools/uberun_cli.cpp)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    World w;
    const Args a = Args::parse(
        argc, argv,
        {"online", "mba", "network", "enforce-slo", "audit", "keep-going",
         "anatomy", "legacy-decision"});
    if (cmd == "programs") return cmdPrograms(w);
    if (cmd == "profile") return cmdProfile(w, a);
    if (cmd == "generate") return cmdGenerate(w, a);
    if (cmd == "simulate") return cmdSimulate(w, a);
    if (cmd == "plan") return cmdPlan(w, a);
    if (cmd == "trace") return cmdTrace(w, a);
    if (cmd == "metrics") return cmdMetrics(w, a);
    if (cmd == "report") return cmdReport(w, a);
    if (cmd == "top") return cmdTop(w, a);
    if (cmd == "audit") return cmdAudit(w, a);
    if (cmd == "explain") return cmdExplain(w, a);
    if (cmd == "hotpath") return cmdHotpath(w, a);
    if (cmd == "why-slow") return cmdWhySlow(w, a);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "uberun: %s\n", e.what());
    return 2;
  }
}
