#!/usr/bin/env python3
"""Unit tests for check_perf_regression.py (registered under ctest).

Each test drives the script as a subprocess against synthetic baseline /
current JSON pairs in a temp directory and asserts on the exit status
and the delta-table / FAIL output, because the exit status is the CI
contract: 0 clean, 1 regression, 2 bad input.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_perf_regression.py")


def make_doc(cells):
    """cells: list of (nodes, policy, ev/s, mean, p99[, event_us]) -> doc."""
    results = []
    for nodes, policy, evs, mean, p99, *rest in cells:
        row = {"nodes": nodes, "policy": policy, "events_per_sec": evs}
        if mean is not None:
            row["decision_us_mean"] = mean
        if p99 is not None:
            row["decision_us_p99"] = p99
        if rest and rest[0] is not None:
            row["event_us_mean"] = rest[0]
        results.append(row)
    return {"bench": "sim_scale", "results": results}


class CheckPerfRegressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_script(self, *args):
        return subprocess.run([sys.executable, SCRIPT, *args],
                              capture_output=True, text=True)

    def run_pair(self, base_cells, cur_cells, *extra):
        base = self.write("base.json", make_doc(base_cells))
        cur = self.write("cur.json", make_doc(cur_cells))
        return self.run_script("--baseline", base, "--current", cur, *extra)

    def test_identical_results_pass(self):
        cells = [(4096, "CE", 200000.0, 5.0, 90.0),
                 (4096, "SNS", 20000.0, 55.0, 500.0)]
        r = self.run_pair(cells, cells)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("OK:", r.stdout)

    def test_throughput_collapse_fails(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(4096, "SNS", 1000.0, 55.0, 500.0)]  # 20x collapse
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("events/sec", r.stderr)
        self.assertIn("4096 nodes/SNS", r.stderr)

    def test_mean_growth_fails(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(4096, "SNS", 20000.0, 1100.0, 500.0)]  # 20x mean growth
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("decision_us_mean", r.stderr)
        self.assertNotIn("decision_us_p99", r.stderr)

    def test_p99_growth_fails(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(4096, "SNS", 20000.0, 55.0, 12000.0)]  # 24x p99 growth
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("decision_us_p99", r.stderr)
        self.assertNotIn("decision_us_mean", r.stderr)

    def test_growth_within_tolerance_passes(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(4096, "SNS", 5000.0, 300.0, 3000.0)]  # all < 8x
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_tighter_mean_tolerance_flag(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(4096, "SNS", 20000.0, 300.0, 500.0)]  # ~5.5x mean growth
        self.assertEqual(self.run_pair(base, cur).returncode, 0)
        r = self.run_pair(base, cur, "--mean-tolerance", "4")
        self.assertEqual(r.returncode, 1)
        self.assertIn("decision_us_mean", r.stderr)

    def test_event_us_growth_fails(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0, 40.0)]
        cur = [(4096, "SNS", 20000.0, 55.0, 500.0, 800.0)]  # 20x per-event
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("event_us_mean", r.stderr)
        self.assertNotIn("decision_us_mean", r.stderr)

    def test_tighter_event_tolerance_flag(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0, 40.0)]
        cur = [(4096, "SNS", 20000.0, 55.0, 500.0, 200.0)]  # 5x per-event
        self.assertEqual(self.run_pair(base, cur).returncode, 0)
        r = self.run_pair(base, cur, "--event-tolerance", "4")
        self.assertEqual(r.returncode, 1)
        self.assertIn("event_us_mean", r.stderr)

    def test_baseline_missing_event_us_skips_that_signal(self):
        # Baselines predating event_us_mean gate only the other signals.
        base = [(4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(4096, "SNS", 20000.0, 55.0, 500.0, 9999.0)]
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_baseline_missing_mean_skips_that_signal(self):
        # Baselines predating decision_us_mean gate only ev/s and p99.
        base = [(4096, "SNS", 20000.0, None, 500.0)]
        cur = [(4096, "SNS", 20000.0, 9999.0, 500.0)]
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_empty_results_is_bad_input(self):
        base = self.write("base.json", {"results": []})
        cur = self.write("cur.json",
                         make_doc([(4096, "SNS", 1.0, 1.0, 1.0)]))
        r = self.run_script("--baseline", base, "--current", cur)
        self.assertEqual(r.returncode, 2)

    def test_missing_file_is_bad_input(self):
        cur = self.write("cur.json", make_doc([(4096, "SNS", 1.0, 1.0, 1.0)]))
        r = self.run_script("--baseline",
                            os.path.join(self.tmp.name, "nope.json"),
                            "--current", cur)
        self.assertEqual(r.returncode, 2)

    def test_no_overlapping_cells_is_bad_input(self):
        base = [(4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(8192, "CE", 20000.0, 5.0, 90.0)]
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 2)
        self.assertIn("(missing from current run)", r.stdout)

    def test_delta_table_marks_offender(self):
        base = [(4096, "CE", 200000.0, 5.0, 90.0),
                (4096, "SNS", 20000.0, 55.0, 500.0)]
        cur = [(4096, "CE", 200000.0, 5.0, 90.0),
               (4096, "SNS", 20000.0, 55.0, 12000.0)]
        r = self.run_pair(base, cur)
        self.assertEqual(r.returncode, 1)
        self.assertIn("24.00x!", r.stdout)

    def test_xray_over_budget_fails(self):
        xray = self.write("xray.json", {"sampled_overhead": 0.5})
        r = self.run_script("--xray-overhead", xray)
        self.assertEqual(r.returncode, 1)
        self.assertIn("budget", r.stderr)

    def test_xray_within_budget_passes(self):
        xray = self.write("xray.json", {"sampled_overhead": 0.02})
        r = self.run_script("--xray-overhead", xray)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_flight_over_budget_fails(self):
        flight = self.write("flight.json", {"recorder_overhead": 0.5})
        r = self.run_script("--flight-overhead", flight)
        self.assertEqual(r.returncode, 1)
        self.assertIn("budget", r.stderr)

    def test_flight_within_budget_passes(self):
        flight = self.write("flight.json", {"recorder_overhead": 0.01})
        r = self.run_script("--flight-overhead", flight)
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_flight_missing_field_is_bad_input(self):
        flight = self.write("flight.json", {"something_else": 1.0})
        r = self.run_script("--flight-overhead", flight)
        self.assertEqual(r.returncode, 2)


if __name__ == "__main__":
    unittest.main()
