#!/usr/bin/env python3
"""Guard against simulator-throughput collapse.

Compares a fresh BENCH_sim_scale.json (typically from `bench_sim_scale
--quick` on a CI runner) against the checked-in baseline, cell by cell
(nodes, policy). CI hardware is unrelated to the machine that produced the
baseline and the quick trace is smaller than the full one, so absolute
numbers are not comparable — the guard only fails when a cell's simulated
events per wall-second collapses by more than --tolerance (default 8x),
which catches algorithmic regressions (an accidental O(N) scan in the hot
loop, a disabled memo cache) while shrugging off runner noise.

Exit status: 0 when every comparable cell is within tolerance, 1 on
regression, 2 on bad input.
"""

import argparse
import json
import sys


def load_cells(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    cells = {}
    for row in doc.get("results", []):
        cells[(row["nodes"], row["policy"])] = row
    if not cells:
        print(f"error: {path} has no results", file=sys.stderr)
        sys.exit(2)
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_sim_scale.json",
                    help="checked-in reference results")
    ap.add_argument("--current", required=True,
                    help="fresh results to validate")
    ap.add_argument("--tolerance", type=float, default=8.0,
                    help="max allowed events/sec collapse factor (default 8)")
    args = ap.parse_args()

    base = load_cells(args.baseline)
    cur = load_cells(args.current)

    regressions = []
    compared = 0
    print(f"{'nodes':>6} {'policy':<6} {'baseline ev/s':>14} "
          f"{'current ev/s':>14} {'ratio':>7}")
    for key in sorted(base):
        if key not in cur:
            print(f"{key[0]:>6} {key[1]:<6} {'':>14} {'(missing)':>14}")
            continue
        b = base[key]["events_per_sec"]
        c = cur[key]["events_per_sec"]
        if b <= 0 or c <= 0:
            continue
        compared += 1
        ratio = c / b
        flag = ""
        if ratio * args.tolerance < 1.0:
            flag = "  << REGRESSION"
            regressions.append(key)
        print(f"{key[0]:>6} {key[1]:<6} {b:>14.0f} {c:>14.0f} "
              f"{ratio:>6.2f}x{flag}")

    if compared == 0:
        print("error: no comparable cells between baseline and current",
              file=sys.stderr)
        return 2
    if regressions:
        cells = ", ".join(f"{n} nodes/{p}" for n, p in regressions)
        print(f"\nFAIL: events/sec collapsed by more than "
              f"{args.tolerance:.0f}x in: {cells}", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} cell(s) within the {args.tolerance:.0f}x "
          f"tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
