#!/usr/bin/env python3
"""Guard against simulator-throughput collapse and decision-latency blowups.

Compares a fresh BENCH_sim_scale.json (typically from `bench_sim_scale
--quick` on a CI runner) against the checked-in baseline, cell by cell
(nodes, policy). CI hardware is unrelated to the machine that produced the
baseline and the quick trace is smaller than the full one, so absolute
numbers are not comparable — the guard only fails when a cell collapses by
more than a tolerance factor, which catches algorithmic regressions (an
accidental O(N) scan in the hot loop, a disabled memo cache) while
shrugging off runner noise. Two signals are checked per cell:

  * events_per_sec must not collapse by more than --tolerance (default 8x);
  * decision_us_p99 must not grow by more than --latency-tolerance
    (default 8x) — the per-decision tail is what sns::xray attributes, and
    a span site accidentally left on the unsampled path shows up here
    first.

With --xray-overhead FILE the script additionally gates the recorded
sns::xray sampled-mode overhead (BENCH_xray_overhead.json written by
bench_xray_overhead) against --xray-budget (default 0.10 — the documented
quiet-machine budget is 3%, widened for shared-runner noise).

Exit status: 0 when every comparable cell is within tolerance, 1 on
regression, 2 on bad input.
"""

import argparse
import json
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_cells(path):
    doc = load_json(path)
    cells = {}
    for row in doc.get("results", []):
        cells[(row["nodes"], row["policy"])] = row
    if not cells:
        print(f"error: {path} has no results", file=sys.stderr)
        sys.exit(2)
    return cells


def check_throughput(base, cur, tolerance):
    regressions = []
    compared = 0
    print(f"{'nodes':>6} {'policy':<6} {'baseline ev/s':>14} "
          f"{'current ev/s':>14} {'ratio':>7}")
    for key in sorted(base):
        if key not in cur:
            print(f"{key[0]:>6} {key[1]:<6} {'':>14} {'(missing)':>14}")
            continue
        b = base[key]["events_per_sec"]
        c = cur[key]["events_per_sec"]
        if b <= 0 or c <= 0:
            continue
        compared += 1
        ratio = c / b
        flag = ""
        if ratio * tolerance < 1.0:
            flag = "  << REGRESSION"
            regressions.append(key)
        print(f"{key[0]:>6} {key[1]:<6} {b:>14.0f} {c:>14.0f} "
              f"{ratio:>6.2f}x{flag}")
    return compared, regressions


def check_latency(base, cur, tolerance):
    """decision_us_p99 growth per cell; baselines without the field skip."""
    regressions = []
    compared = 0
    print(f"\n{'nodes':>6} {'policy':<6} {'baseline p99 us':>16} "
          f"{'current p99 us':>16} {'ratio':>7}")
    for key in sorted(base):
        if key not in cur:
            continue
        b = base[key].get("decision_us_p99", 0)
        c = cur[key].get("decision_us_p99", 0)
        if b <= 0 or c <= 0:
            continue
        compared += 1
        ratio = c / b
        flag = ""
        if ratio > tolerance:
            flag = "  << REGRESSION"
            regressions.append(key)
        print(f"{key[0]:>6} {key[1]:<6} {b:>16.1f} {c:>16.1f} "
              f"{ratio:>6.2f}x{flag}")
    return compared, regressions


def check_xray(path, budget):
    doc = load_json(path)
    over = doc.get("sampled_overhead")
    if over is None:
        print(f"error: {path} has no sampled_overhead", file=sys.stderr)
        sys.exit(2)
    ok = over <= budget
    print(f"\nxray sampled-mode overhead: {over * 100:.2f}% "
          f"(budget {budget * 100:.0f}%)"
          f"{'' if ok else '  << REGRESSION'}")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_sim_scale.json",
                    help="checked-in reference results")
    ap.add_argument("--current",
                    help="fresh results to validate")
    ap.add_argument("--tolerance", type=float, default=8.0,
                    help="max allowed events/sec collapse factor (default 8)")
    ap.add_argument("--latency-tolerance", type=float, default=8.0,
                    help="max allowed decision_us_p99 growth factor "
                         "(default 8)")
    ap.add_argument("--xray-overhead", metavar="FILE",
                    help="BENCH_xray_overhead.json to gate")
    ap.add_argument("--xray-budget", type=float, default=0.10,
                    help="max sns::xray sampled-mode overhead fraction "
                         "(default 0.10)")
    args = ap.parse_args()
    if args.current is None and args.xray_overhead is None:
        ap.error("nothing to check: pass --current and/or --xray-overhead")

    failed = False
    if args.current is not None:
        base = load_cells(args.baseline)
        cur = load_cells(args.current)

        compared, regressions = check_throughput(base, cur, args.tolerance)
        lat_compared, lat_regressions = check_latency(
            base, cur, args.latency_tolerance)
        if compared == 0:
            print("error: no comparable cells between baseline and current",
                  file=sys.stderr)
            return 2
        if regressions:
            cells = ", ".join(f"{n} nodes/{p}" for n, p in regressions)
            print(f"\nFAIL: events/sec collapsed by more than "
                  f"{args.tolerance:.0f}x in: {cells}", file=sys.stderr)
            failed = True
        if lat_regressions:
            cells = ", ".join(f"{n} nodes/{p}" for n, p in lat_regressions)
            print(f"\nFAIL: decision_us_p99 grew by more than "
                  f"{args.latency_tolerance:.0f}x in: {cells}",
                  file=sys.stderr)
            failed = True
        if not failed:
            print(f"\nOK: {compared} throughput cell(s) within the "
                  f"{args.tolerance:.0f}x tolerance, {lat_compared} latency "
                  f"cell(s) within {args.latency_tolerance:.0f}x")

    if args.xray_overhead is not None:
        if not check_xray(args.xray_overhead, args.xray_budget):
            print(f"\nFAIL: xray sampled-mode overhead exceeds the "
                  f"{args.xray_budget * 100:.0f}% budget", file=sys.stderr)
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
