#!/usr/bin/env python3
"""Guard against simulator-throughput collapse and decision-latency blowups.

Compares a fresh BENCH_sim_scale.json (typically from `bench_sim_scale
--quick` on a CI runner) against the checked-in baseline
(bench/baselines/sim_scale.json), cell by cell (nodes, policy). CI
hardware is unrelated to the machine that produced the baseline and the
quick trace is smaller than the full one, so absolute numbers are not
comparable — the guard only fails when a cell moves by more than a
tolerance factor, which catches algorithmic regressions (an accidental
O(N) scan in the hot loop, a disabled memo cache, a fast-path flag wired
to the slow path) while shrugging off runner noise. Three signals are
checked per cell:

  * events_per_sec must not collapse by more than --tolerance (default 8x);
  * event_us_mean must not grow by more than --event-tolerance (default
    8x) — wall microseconds per simulated event, the event engine's
    headline number (DESIGN.md section 11); it moves when a per-event
    O(active) loop sneaks back in even if decision latency stays flat;
  * decision_us_mean must not grow by more than --mean-tolerance
    (default 8x) — the headline number of the fast decision path
    (DESIGN.md section 10); losing one of the SimOptFlags optimizations
    moves it far more than runner noise does;
  * decision_us_p99 must not grow by more than --latency-tolerance
    (default 8x) — the per-decision tail is what sns::xray attributes,
    and a span site accidentally left on the unsampled path shows up
    here first.

On failure the full delta table is printed so the offending cells are
readable straight from the CI log. Baseline rows missing a field skip
that signal (older baselines predate decision_us_mean).

With --xray-overhead FILE the script additionally gates the recorded
sns::xray sampled-mode overhead (BENCH_xray_overhead.json written by
bench_xray_overhead) against --xray-budget (default 0.10 — the documented
quiet-machine budget is 3%, widened for shared-runner noise).

With --flight-overhead FILE it likewise gates the interference flight
recorder's overhead (BENCH_flight_overhead.json written by
bench_flight_overhead) against --flight-budget (default 0.10 — typical
quiet-machine overhead is 5-7%, with headroom for shared-runner noise).

Exit status: 0 when every comparable cell is within tolerance, 1 on
regression, 2 on bad input.
"""

import argparse
import json
import sys

DEFAULT_BASELINE = "bench/baselines/sim_scale.json"

# (json field, direction, human label). Direction "min" fails when the
# current value collapses below baseline/tolerance (bigger is better);
# "max" fails when it grows past baseline*tolerance (smaller is better).
SIGNALS = [
    ("events_per_sec", "min", "events/sec"),
    ("event_us_mean", "max", "event_us_mean"),
    ("decision_us_mean", "max", "decision_us_mean"),
    ("decision_us_p99", "max", "decision_us_p99"),
]


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_cells(path):
    doc = load_json(path)
    cells = {}
    for row in doc.get("results", []):
        try:
            cells[(row["nodes"], row["policy"])] = row
        except (KeyError, TypeError):
            print(f"error: malformed result row in {path}", file=sys.stderr)
            sys.exit(2)
    if not cells:
        print(f"error: {path} has no results", file=sys.stderr)
        sys.exit(2)
    return cells


def compare_cells(base, cur, tolerances):
    """Per-cell, per-signal comparison.

    Returns (rows, regressions, compared): rows feed the delta table
    (cell values keyed by signal field, None where not comparable),
    regressions maps signal field -> offending (nodes, policy) keys, and
    compared counts cells with at least one comparable signal.
    """
    rows = []
    regressions = {field: [] for field, _, _ in SIGNALS}
    compared = 0
    for key in sorted(base):
        if key not in cur:
            rows.append((key, None))
            continue
        cells = {}
        any_signal = False
        for field, direction, _ in SIGNALS:
            b = base[key].get(field, 0) or 0
            c = cur[key].get(field, 0) or 0
            if b <= 0 or c <= 0:
                cells[field] = None  # signal absent/zero in one side
                continue
            any_signal = True
            ratio = c / b
            tol = tolerances[field]
            bad = (ratio * tol < 1.0) if direction == "min" else (ratio > tol)
            if bad:
                regressions[field].append(key)
            cells[field] = (b, c, ratio, bad)
        if any_signal:
            compared += 1
        rows.append((key, cells))
    return rows, regressions, compared


def render_delta_table(rows):
    out = [f"{'nodes':>6} {'policy':<6} "
           f"{'ev/s base':>10} {'ev/s cur':>10} {'ratio':>8}  "
           f"{'evus base':>10} {'evus cur':>10} {'ratio':>8}  "
           f"{'mean base':>10} {'mean cur':>10} {'ratio':>8}  "
           f"{'p99 base':>10} {'p99 cur':>10} {'ratio':>8}"]

    def fmt(cell):
        if cell is None:
            return f"{'-':>10} {'-':>10} {'-':>8}"
        b, c, ratio, bad = cell
        mark = "!" if bad else " "
        return f"{b:>10.1f} {c:>10.1f} {ratio:>6.2f}x{mark}"

    for key, cells in rows:
        if cells is None:
            out.append(f"{key[0]:>6} {key[1]:<6} (missing from current run)")
            continue
        out.append(f"{key[0]:>6} {key[1]:<6} "
                   f"{fmt(cells['events_per_sec'])}  "
                   f"{fmt(cells['event_us_mean'])}  "
                   f"{fmt(cells['decision_us_mean'])}  "
                   f"{fmt(cells['decision_us_p99'])}")
    out.append("('!' marks a ratio outside its tolerance)")
    return "\n".join(out)


def check_overhead(path, budget, field, label):
    doc = load_json(path)
    over = doc.get(field)
    if over is None:
        print(f"error: {path} has no {field}", file=sys.stderr)
        sys.exit(2)
    ok = over <= budget
    print(f"\n{label}: {over * 100:.2f}% "
          f"(budget {budget * 100:.0f}%)"
          f"{'' if ok else '  << REGRESSION'}")
    return ok


def check_xray(path, budget):
    return check_overhead(path, budget, "sampled_overhead",
                          "xray sampled-mode overhead")


def check_flight(path, budget):
    return check_overhead(path, budget, "recorder_overhead",
                          "flight recorder overhead")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="checked-in reference results "
                         f"(default {DEFAULT_BASELINE})")
    ap.add_argument("--current",
                    help="fresh results to validate")
    ap.add_argument("--tolerance", type=float, default=8.0,
                    help="max allowed events/sec collapse factor (default 8)")
    ap.add_argument("--event-tolerance", type=float, default=8.0,
                    help="max allowed event_us_mean growth factor (default 8)")
    ap.add_argument("--mean-tolerance", type=float, default=8.0,
                    help="max allowed decision_us_mean growth factor "
                         "(default 8)")
    ap.add_argument("--latency-tolerance", type=float, default=8.0,
                    help="max allowed decision_us_p99 growth factor "
                         "(default 8)")
    ap.add_argument("--xray-overhead", metavar="FILE",
                    help="BENCH_xray_overhead.json to gate")
    ap.add_argument("--xray-budget", type=float, default=0.10,
                    help="max sns::xray sampled-mode overhead fraction "
                         "(default 0.10)")
    ap.add_argument("--flight-overhead", metavar="FILE",
                    help="BENCH_flight_overhead.json to gate")
    ap.add_argument("--flight-budget", type=float, default=0.10,
                    help="max interference-flight-recorder overhead fraction "
                         "(default 0.10)")
    args = ap.parse_args()
    if (args.current is None and args.xray_overhead is None
            and args.flight_overhead is None):
        ap.error("nothing to check: pass --current, --xray-overhead "
                 "and/or --flight-overhead")

    failed = False
    if args.current is not None:
        base = load_cells(args.baseline)
        cur = load_cells(args.current)
        tolerances = {
            "events_per_sec": args.tolerance,
            "event_us_mean": args.event_tolerance,
            "decision_us_mean": args.mean_tolerance,
            "decision_us_p99": args.latency_tolerance,
        }
        rows, regressions, compared = compare_cells(base, cur, tolerances)
        print(render_delta_table(rows))
        if compared == 0:
            print("error: no comparable cells between baseline and current",
                  file=sys.stderr)
            return 2
        for field, direction, label in SIGNALS:
            if not regressions[field]:
                continue
            cells = ", ".join(f"{n} nodes/{p}" for n, p in regressions[field])
            verb = ("collapsed by more than"
                    if direction == "min" else "grew by more than")
            print(f"\nFAIL: {label} {verb} {tolerances[field]:.0f}x in: "
                  f"{cells}", file=sys.stderr)
            failed = True
        if not failed:
            print(f"\nOK: {compared} cell(s) within tolerance "
                  f"(events/sec {args.tolerance:.0f}x, event "
                  f"{args.event_tolerance:.0f}x, mean "
                  f"{args.mean_tolerance:.0f}x, p99 "
                  f"{args.latency_tolerance:.0f}x)")

    if args.xray_overhead is not None:
        if not check_xray(args.xray_overhead, args.xray_budget):
            print(f"\nFAIL: xray sampled-mode overhead exceeds the "
                  f"{args.xray_budget * 100:.0f}% budget", file=sys.stderr)
            failed = True

    if args.flight_overhead is not None:
        if not check_flight(args.flight_overhead, args.flight_budget):
            print(f"\nFAIL: flight recorder overhead exceeds the "
                  f"{args.flight_budget * 100:.0f}% budget", file=sys.stderr)
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
