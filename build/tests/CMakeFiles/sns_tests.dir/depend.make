# Empty dependencies file for sns_tests.
# This may be replaced when dependencies are built.
