
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/actuator/test_cat_masker.cpp" "tests/CMakeFiles/sns_tests.dir/actuator/test_cat_masker.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/actuator/test_cat_masker.cpp.o.d"
  "/root/repo/tests/actuator/test_core_binder.cpp" "tests/CMakeFiles/sns_tests.dir/actuator/test_core_binder.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/actuator/test_core_binder.cpp.o.d"
  "/root/repo/tests/actuator/test_node_ledger.cpp" "tests/CMakeFiles/sns_tests.dir/actuator/test_node_ledger.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/actuator/test_node_ledger.cpp.o.d"
  "/root/repo/tests/actuator/test_resource_ledger.cpp" "tests/CMakeFiles/sns_tests.dir/actuator/test_resource_ledger.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/actuator/test_resource_ledger.cpp.o.d"
  "/root/repo/tests/app/test_comm.cpp" "tests/CMakeFiles/sns_tests.dir/app/test_comm.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/app/test_comm.cpp.o.d"
  "/root/repo/tests/app/test_jobspec_io.cpp" "tests/CMakeFiles/sns_tests.dir/app/test_jobspec_io.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/app/test_jobspec_io.cpp.o.d"
  "/root/repo/tests/app/test_library.cpp" "tests/CMakeFiles/sns_tests.dir/app/test_library.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/app/test_library.cpp.o.d"
  "/root/repo/tests/app/test_miss_curve.cpp" "tests/CMakeFiles/sns_tests.dir/app/test_miss_curve.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/app/test_miss_curve.cpp.o.d"
  "/root/repo/tests/app/test_workload_gen.cpp" "tests/CMakeFiles/sns_tests.dir/app/test_workload_gen.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/app/test_workload_gen.cpp.o.d"
  "/root/repo/tests/hw/test_machine.cpp" "tests/CMakeFiles/sns_tests.dir/hw/test_machine.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/hw/test_machine.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/sns_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_paper_claims.cpp" "tests/CMakeFiles/sns_tests.dir/integration/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/integration/test_paper_claims.cpp.o.d"
  "/root/repo/tests/kernels/test_kernels.cpp" "tests/CMakeFiles/sns_tests.dir/kernels/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/kernels/test_kernels.cpp.o.d"
  "/root/repo/tests/perfmodel/test_contention.cpp" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_contention.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_contention.cpp.o.d"
  "/root/repo/tests/perfmodel/test_estimator.cpp" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_estimator.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_estimator.cpp.o.d"
  "/root/repo/tests/perfmodel/test_model_properties.cpp" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_model_properties.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_model_properties.cpp.o.d"
  "/root/repo/tests/perfmodel/test_pmu.cpp" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_pmu.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/perfmodel/test_pmu.cpp.o.d"
  "/root/repo/tests/profile/test_database.cpp" "tests/CMakeFiles/sns_tests.dir/profile/test_database.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/profile/test_database.cpp.o.d"
  "/root/repo/tests/profile/test_demand.cpp" "tests/CMakeFiles/sns_tests.dir/profile/test_demand.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/profile/test_demand.cpp.o.d"
  "/root/repo/tests/profile/test_drift.cpp" "tests/CMakeFiles/sns_tests.dir/profile/test_drift.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/profile/test_drift.cpp.o.d"
  "/root/repo/tests/profile/test_exploration.cpp" "tests/CMakeFiles/sns_tests.dir/profile/test_exploration.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/profile/test_exploration.cpp.o.d"
  "/root/repo/tests/profile/test_linux_pmu.cpp" "tests/CMakeFiles/sns_tests.dir/profile/test_linux_pmu.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/profile/test_linux_pmu.cpp.o.d"
  "/root/repo/tests/profile/test_profiler.cpp" "tests/CMakeFiles/sns_tests.dir/profile/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/profile/test_profiler.cpp.o.d"
  "/root/repo/tests/sched/test_policies.cpp" "tests/CMakeFiles/sns_tests.dir/sched/test_policies.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sched/test_policies.cpp.o.d"
  "/root/repo/tests/sched/test_queue.cpp" "tests/CMakeFiles/sns_tests.dir/sched/test_queue.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sched/test_queue.cpp.o.d"
  "/root/repo/tests/sched/test_scheduler_behavior.cpp" "tests/CMakeFiles/sns_tests.dir/sched/test_scheduler_behavior.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sched/test_scheduler_behavior.cpp.o.d"
  "/root/repo/tests/sim/test_cluster_sim.cpp" "tests/CMakeFiles/sns_tests.dir/sim/test_cluster_sim.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sim/test_cluster_sim.cpp.o.d"
  "/root/repo/tests/sim/test_gantt.cpp" "tests/CMakeFiles/sns_tests.dir/sim/test_gantt.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sim/test_gantt.cpp.o.d"
  "/root/repo/tests/sim/test_metrics.cpp" "tests/CMakeFiles/sns_tests.dir/sim/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sim/test_metrics.cpp.o.d"
  "/root/repo/tests/sim/test_network.cpp" "tests/CMakeFiles/sns_tests.dir/sim/test_network.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sim/test_network.cpp.o.d"
  "/root/repo/tests/sim/test_online_profiling.cpp" "tests/CMakeFiles/sns_tests.dir/sim/test_online_profiling.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sim/test_online_profiling.cpp.o.d"
  "/root/repo/tests/sim/test_result_io.cpp" "tests/CMakeFiles/sns_tests.dir/sim/test_result_io.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sim/test_result_io.cpp.o.d"
  "/root/repo/tests/sim/test_sim_properties.cpp" "tests/CMakeFiles/sns_tests.dir/sim/test_sim_properties.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/sim/test_sim_properties.cpp.o.d"
  "/root/repo/tests/trace/test_generator.cpp" "tests/CMakeFiles/sns_tests.dir/trace/test_generator.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/trace/test_generator.cpp.o.d"
  "/root/repo/tests/trace/test_replay.cpp" "tests/CMakeFiles/sns_tests.dir/trace/test_replay.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/trace/test_replay.cpp.o.d"
  "/root/repo/tests/trace/test_swf.cpp" "tests/CMakeFiles/sns_tests.dir/trace/test_swf.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/trace/test_swf.cpp.o.d"
  "/root/repo/tests/uberun/test_launch_plan.cpp" "tests/CMakeFiles/sns_tests.dir/uberun/test_launch_plan.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/uberun/test_launch_plan.cpp.o.d"
  "/root/repo/tests/uberun/test_system.cpp" "tests/CMakeFiles/sns_tests.dir/uberun/test_system.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/uberun/test_system.cpp.o.d"
  "/root/repo/tests/util/test_curve.cpp" "tests/CMakeFiles/sns_tests.dir/util/test_curve.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/util/test_curve.cpp.o.d"
  "/root/repo/tests/util/test_error.cpp" "tests/CMakeFiles/sns_tests.dir/util/test_error.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/util/test_error.cpp.o.d"
  "/root/repo/tests/util/test_json.cpp" "tests/CMakeFiles/sns_tests.dir/util/test_json.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/util/test_json.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/sns_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/sns_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/sns_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/sns_tests.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/trace/CMakeFiles/sns_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/kernels/CMakeFiles/sns_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/uberun/CMakeFiles/sns_uberun.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/sim/CMakeFiles/sns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/sched/CMakeFiles/sns_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/profile/CMakeFiles/sns_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/app/CMakeFiles/sns_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/actuator/CMakeFiles/sns_actuator.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/hw/CMakeFiles/sns_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
