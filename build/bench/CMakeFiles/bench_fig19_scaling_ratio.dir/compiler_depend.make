# Empty compiler generated dependencies file for bench_fig19_scaling_ratio.
# This may be replaced when dependencies are built.
