# Empty compiler generated dependencies file for bench_fig13_scaleout_speedup.
# This may be replaced when dependencies are built.
