# Empty compiler generated dependencies file for bench_fig20_trace_sim.
# This may be replaced when dependencies are built.
