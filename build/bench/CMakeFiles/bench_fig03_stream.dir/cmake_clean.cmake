file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_stream.dir/bench_fig03_stream.cpp.o"
  "CMakeFiles/bench_fig03_stream.dir/bench_fig03_stream.cpp.o.d"
  "bench_fig03_stream"
  "bench_fig03_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
