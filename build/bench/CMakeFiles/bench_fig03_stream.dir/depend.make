# Empty dependencies file for bench_fig03_stream.
# This may be replaced when dependencies are built.
