# Empty dependencies file for bench_fig05_missrate.
# This may be replaced when dependencies are built.
