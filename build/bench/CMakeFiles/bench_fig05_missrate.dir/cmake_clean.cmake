file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_missrate.dir/bench_fig05_missrate.cpp.o"
  "CMakeFiles/bench_fig05_missrate.dir/bench_fig05_missrate.cpp.o.d"
  "bench_fig05_missrate"
  "bench_fig05_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
