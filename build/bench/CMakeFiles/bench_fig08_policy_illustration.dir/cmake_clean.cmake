file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_policy_illustration.dir/bench_fig08_policy_illustration.cpp.o"
  "CMakeFiles/bench_fig08_policy_illustration.dir/bench_fig08_policy_illustration.cpp.o.d"
  "bench_fig08_policy_illustration"
  "bench_fig08_policy_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_policy_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
