file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cache_sensitivity.dir/bench_fig12_cache_sensitivity.cpp.o"
  "CMakeFiles/bench_fig12_cache_sensitivity.dir/bench_fig12_cache_sensitivity.cpp.o.d"
  "bench_fig12_cache_sensitivity"
  "bench_fig12_cache_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cache_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
