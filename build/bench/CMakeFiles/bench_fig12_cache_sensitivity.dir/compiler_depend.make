# Empty compiler generated dependencies file for bench_fig12_cache_sensitivity.
# This may be replaced when dependencies are built.
