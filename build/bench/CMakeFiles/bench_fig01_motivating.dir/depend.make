# Empty dependencies file for bench_fig01_motivating.
# This may be replaced when dependencies are built.
