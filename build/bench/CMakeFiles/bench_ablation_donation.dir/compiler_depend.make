# Empty compiler generated dependencies file for bench_ablation_donation.
# This may be replaced when dependencies are built.
