file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_donation.dir/bench_ablation_donation.cpp.o"
  "CMakeFiles/bench_ablation_donation.dir/bench_ablation_donation.cpp.o.d"
  "bench_ablation_donation"
  "bench_ablation_donation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_donation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
