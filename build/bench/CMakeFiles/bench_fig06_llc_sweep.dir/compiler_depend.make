# Empty compiler generated dependencies file for bench_fig06_llc_sweep.
# This may be replaced when dependencies are built.
