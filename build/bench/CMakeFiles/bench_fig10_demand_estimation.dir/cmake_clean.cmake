file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_demand_estimation.dir/bench_fig10_demand_estimation.cpp.o"
  "CMakeFiles/bench_fig10_demand_estimation.dir/bench_fig10_demand_estimation.cpp.o.d"
  "bench_fig10_demand_estimation"
  "bench_fig10_demand_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_demand_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
