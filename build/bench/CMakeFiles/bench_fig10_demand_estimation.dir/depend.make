# Empty dependencies file for bench_fig10_demand_estimation.
# This may be replaced when dependencies are built.
