file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mba.dir/bench_ablation_mba.cpp.o"
  "CMakeFiles/bench_ablation_mba.dir/bench_ablation_mba.cpp.o.d"
  "bench_ablation_mba"
  "bench_ablation_mba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
