# Empty dependencies file for bench_ablation_mba.
# This may be replaced when dependencies are built.
