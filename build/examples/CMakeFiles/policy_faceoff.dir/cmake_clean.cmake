file(REMOVE_RECURSE
  "CMakeFiles/policy_faceoff.dir/policy_faceoff.cpp.o"
  "CMakeFiles/policy_faceoff.dir/policy_faceoff.cpp.o.d"
  "policy_faceoff"
  "policy_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
