file(REMOVE_RECURSE
  "CMakeFiles/deployment_plan.dir/deployment_plan.cpp.o"
  "CMakeFiles/deployment_plan.dir/deployment_plan.cpp.o.d"
  "deployment_plan"
  "deployment_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
