# Empty dependencies file for deployment_plan.
# This may be replaced when dependencies are built.
