file(REMOVE_RECURSE
  "CMakeFiles/motivating_mix.dir/motivating_mix.cpp.o"
  "CMakeFiles/motivating_mix.dir/motivating_mix.cpp.o.d"
  "motivating_mix"
  "motivating_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivating_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
