# Empty compiler generated dependencies file for motivating_mix.
# This may be replaced when dependencies are built.
