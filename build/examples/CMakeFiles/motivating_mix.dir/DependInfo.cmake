
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/motivating_mix.cpp" "examples/CMakeFiles/motivating_mix.dir/motivating_mix.cpp.o" "gcc" "examples/CMakeFiles/motivating_mix.dir/motivating_mix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/trace/CMakeFiles/sns_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/kernels/CMakeFiles/sns_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/uberun/CMakeFiles/sns_uberun.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/sim/CMakeFiles/sns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/sched/CMakeFiles/sns_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/profile/CMakeFiles/sns_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/app/CMakeFiles/sns_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/actuator/CMakeFiles/sns_actuator.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/hw/CMakeFiles/sns_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
