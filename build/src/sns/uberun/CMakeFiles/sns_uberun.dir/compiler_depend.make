# Empty compiler generated dependencies file for sns_uberun.
# This may be replaced when dependencies are built.
