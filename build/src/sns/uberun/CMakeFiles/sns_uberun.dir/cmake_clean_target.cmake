file(REMOVE_RECURSE
  "libsns_uberun.a"
)
