file(REMOVE_RECURSE
  "CMakeFiles/sns_uberun.dir/launch_plan.cpp.o"
  "CMakeFiles/sns_uberun.dir/launch_plan.cpp.o.d"
  "CMakeFiles/sns_uberun.dir/system.cpp.o"
  "CMakeFiles/sns_uberun.dir/system.cpp.o.d"
  "libsns_uberun.a"
  "libsns_uberun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_uberun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
