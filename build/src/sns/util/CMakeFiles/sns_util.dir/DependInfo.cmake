
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/util/curve.cpp" "src/sns/util/CMakeFiles/sns_util.dir/curve.cpp.o" "gcc" "src/sns/util/CMakeFiles/sns_util.dir/curve.cpp.o.d"
  "/root/repo/src/sns/util/json.cpp" "src/sns/util/CMakeFiles/sns_util.dir/json.cpp.o" "gcc" "src/sns/util/CMakeFiles/sns_util.dir/json.cpp.o.d"
  "/root/repo/src/sns/util/rng.cpp" "src/sns/util/CMakeFiles/sns_util.dir/rng.cpp.o" "gcc" "src/sns/util/CMakeFiles/sns_util.dir/rng.cpp.o.d"
  "/root/repo/src/sns/util/stats.cpp" "src/sns/util/CMakeFiles/sns_util.dir/stats.cpp.o" "gcc" "src/sns/util/CMakeFiles/sns_util.dir/stats.cpp.o.d"
  "/root/repo/src/sns/util/table.cpp" "src/sns/util/CMakeFiles/sns_util.dir/table.cpp.o" "gcc" "src/sns/util/CMakeFiles/sns_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
