file(REMOVE_RECURSE
  "CMakeFiles/sns_util.dir/curve.cpp.o"
  "CMakeFiles/sns_util.dir/curve.cpp.o.d"
  "CMakeFiles/sns_util.dir/json.cpp.o"
  "CMakeFiles/sns_util.dir/json.cpp.o.d"
  "CMakeFiles/sns_util.dir/rng.cpp.o"
  "CMakeFiles/sns_util.dir/rng.cpp.o.d"
  "CMakeFiles/sns_util.dir/stats.cpp.o"
  "CMakeFiles/sns_util.dir/stats.cpp.o.d"
  "CMakeFiles/sns_util.dir/table.cpp.o"
  "CMakeFiles/sns_util.dir/table.cpp.o.d"
  "libsns_util.a"
  "libsns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
