file(REMOVE_RECURSE
  "CMakeFiles/sns_actuator.dir/cat_masker.cpp.o"
  "CMakeFiles/sns_actuator.dir/cat_masker.cpp.o.d"
  "CMakeFiles/sns_actuator.dir/core_binder.cpp.o"
  "CMakeFiles/sns_actuator.dir/core_binder.cpp.o.d"
  "CMakeFiles/sns_actuator.dir/node_ledger.cpp.o"
  "CMakeFiles/sns_actuator.dir/node_ledger.cpp.o.d"
  "CMakeFiles/sns_actuator.dir/resource_ledger.cpp.o"
  "CMakeFiles/sns_actuator.dir/resource_ledger.cpp.o.d"
  "libsns_actuator.a"
  "libsns_actuator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_actuator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
