file(REMOVE_RECURSE
  "libsns_actuator.a"
)
