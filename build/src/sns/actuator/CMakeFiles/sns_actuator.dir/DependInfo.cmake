
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/actuator/cat_masker.cpp" "src/sns/actuator/CMakeFiles/sns_actuator.dir/cat_masker.cpp.o" "gcc" "src/sns/actuator/CMakeFiles/sns_actuator.dir/cat_masker.cpp.o.d"
  "/root/repo/src/sns/actuator/core_binder.cpp" "src/sns/actuator/CMakeFiles/sns_actuator.dir/core_binder.cpp.o" "gcc" "src/sns/actuator/CMakeFiles/sns_actuator.dir/core_binder.cpp.o.d"
  "/root/repo/src/sns/actuator/node_ledger.cpp" "src/sns/actuator/CMakeFiles/sns_actuator.dir/node_ledger.cpp.o" "gcc" "src/sns/actuator/CMakeFiles/sns_actuator.dir/node_ledger.cpp.o.d"
  "/root/repo/src/sns/actuator/resource_ledger.cpp" "src/sns/actuator/CMakeFiles/sns_actuator.dir/resource_ledger.cpp.o" "gcc" "src/sns/actuator/CMakeFiles/sns_actuator.dir/resource_ledger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/hw/CMakeFiles/sns_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
