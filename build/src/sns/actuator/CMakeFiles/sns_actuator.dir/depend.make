# Empty dependencies file for sns_actuator.
# This may be replaced when dependencies are built.
