file(REMOVE_RECURSE
  "CMakeFiles/sns_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/sns_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/sns_sim.dir/gantt.cpp.o"
  "CMakeFiles/sns_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/sns_sim.dir/metrics.cpp.o"
  "CMakeFiles/sns_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/sns_sim.dir/result_io.cpp.o"
  "CMakeFiles/sns_sim.dir/result_io.cpp.o.d"
  "libsns_sim.a"
  "libsns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
