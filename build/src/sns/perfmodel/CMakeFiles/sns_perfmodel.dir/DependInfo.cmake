
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/perfmodel/contention.cpp" "src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/contention.cpp.o" "gcc" "src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/contention.cpp.o.d"
  "/root/repo/src/sns/perfmodel/estimator.cpp" "src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/estimator.cpp.o" "gcc" "src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/estimator.cpp.o.d"
  "/root/repo/src/sns/perfmodel/pmu.cpp" "src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/pmu.cpp.o" "gcc" "src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/pmu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/hw/CMakeFiles/sns_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/app/CMakeFiles/sns_app.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
