# Empty compiler generated dependencies file for sns_perfmodel.
# This may be replaced when dependencies are built.
