file(REMOVE_RECURSE
  "libsns_perfmodel.a"
)
