file(REMOVE_RECURSE
  "CMakeFiles/sns_perfmodel.dir/contention.cpp.o"
  "CMakeFiles/sns_perfmodel.dir/contention.cpp.o.d"
  "CMakeFiles/sns_perfmodel.dir/estimator.cpp.o"
  "CMakeFiles/sns_perfmodel.dir/estimator.cpp.o.d"
  "CMakeFiles/sns_perfmodel.dir/pmu.cpp.o"
  "CMakeFiles/sns_perfmodel.dir/pmu.cpp.o.d"
  "libsns_perfmodel.a"
  "libsns_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
