file(REMOVE_RECURSE
  "CMakeFiles/sns_app.dir/comm.cpp.o"
  "CMakeFiles/sns_app.dir/comm.cpp.o.d"
  "CMakeFiles/sns_app.dir/jobspec_io.cpp.o"
  "CMakeFiles/sns_app.dir/jobspec_io.cpp.o.d"
  "CMakeFiles/sns_app.dir/library.cpp.o"
  "CMakeFiles/sns_app.dir/library.cpp.o.d"
  "CMakeFiles/sns_app.dir/miss_curve.cpp.o"
  "CMakeFiles/sns_app.dir/miss_curve.cpp.o.d"
  "CMakeFiles/sns_app.dir/program.cpp.o"
  "CMakeFiles/sns_app.dir/program.cpp.o.d"
  "CMakeFiles/sns_app.dir/workload_gen.cpp.o"
  "CMakeFiles/sns_app.dir/workload_gen.cpp.o.d"
  "libsns_app.a"
  "libsns_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
