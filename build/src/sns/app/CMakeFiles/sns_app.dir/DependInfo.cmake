
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/app/comm.cpp" "src/sns/app/CMakeFiles/sns_app.dir/comm.cpp.o" "gcc" "src/sns/app/CMakeFiles/sns_app.dir/comm.cpp.o.d"
  "/root/repo/src/sns/app/jobspec_io.cpp" "src/sns/app/CMakeFiles/sns_app.dir/jobspec_io.cpp.o" "gcc" "src/sns/app/CMakeFiles/sns_app.dir/jobspec_io.cpp.o.d"
  "/root/repo/src/sns/app/library.cpp" "src/sns/app/CMakeFiles/sns_app.dir/library.cpp.o" "gcc" "src/sns/app/CMakeFiles/sns_app.dir/library.cpp.o.d"
  "/root/repo/src/sns/app/miss_curve.cpp" "src/sns/app/CMakeFiles/sns_app.dir/miss_curve.cpp.o" "gcc" "src/sns/app/CMakeFiles/sns_app.dir/miss_curve.cpp.o.d"
  "/root/repo/src/sns/app/program.cpp" "src/sns/app/CMakeFiles/sns_app.dir/program.cpp.o" "gcc" "src/sns/app/CMakeFiles/sns_app.dir/program.cpp.o.d"
  "/root/repo/src/sns/app/workload_gen.cpp" "src/sns/app/CMakeFiles/sns_app.dir/workload_gen.cpp.o" "gcc" "src/sns/app/CMakeFiles/sns_app.dir/workload_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/hw/CMakeFiles/sns_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
