# Empty compiler generated dependencies file for sns_app.
# This may be replaced when dependencies are built.
