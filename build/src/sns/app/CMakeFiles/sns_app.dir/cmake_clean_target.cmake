file(REMOVE_RECURSE
  "libsns_app.a"
)
