
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/kernels/bfs.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/bfs.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/bfs.cpp.o.d"
  "/root/repo/src/sns/kernels/cg.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/cg.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/cg.cpp.o.d"
  "/root/repo/src/sns/kernels/ep.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/ep.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/ep.cpp.o.d"
  "/root/repo/src/sns/kernels/gemm.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/gemm.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/gemm.cpp.o.d"
  "/root/repo/src/sns/kernels/lu_ssor.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/lu_ssor.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/lu_ssor.cpp.o.d"
  "/root/repo/src/sns/kernels/runtime.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/runtime.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/runtime.cpp.o.d"
  "/root/repo/src/sns/kernels/sample_sort.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/sample_sort.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/sample_sort.cpp.o.d"
  "/root/repo/src/sns/kernels/stencil_mg.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/stencil_mg.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/stencil_mg.cpp.o.d"
  "/root/repo/src/sns/kernels/stream.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/stream.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/stream.cpp.o.d"
  "/root/repo/src/sns/kernels/wordcount.cpp" "src/sns/kernels/CMakeFiles/sns_kernels.dir/wordcount.cpp.o" "gcc" "src/sns/kernels/CMakeFiles/sns_kernels.dir/wordcount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
