file(REMOVE_RECURSE
  "libsns_kernels.a"
)
