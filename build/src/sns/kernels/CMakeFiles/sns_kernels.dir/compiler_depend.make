# Empty compiler generated dependencies file for sns_kernels.
# This may be replaced when dependencies are built.
