file(REMOVE_RECURSE
  "CMakeFiles/sns_kernels.dir/bfs.cpp.o"
  "CMakeFiles/sns_kernels.dir/bfs.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/cg.cpp.o"
  "CMakeFiles/sns_kernels.dir/cg.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/ep.cpp.o"
  "CMakeFiles/sns_kernels.dir/ep.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/gemm.cpp.o"
  "CMakeFiles/sns_kernels.dir/gemm.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/lu_ssor.cpp.o"
  "CMakeFiles/sns_kernels.dir/lu_ssor.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/runtime.cpp.o"
  "CMakeFiles/sns_kernels.dir/runtime.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/sample_sort.cpp.o"
  "CMakeFiles/sns_kernels.dir/sample_sort.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/stencil_mg.cpp.o"
  "CMakeFiles/sns_kernels.dir/stencil_mg.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/stream.cpp.o"
  "CMakeFiles/sns_kernels.dir/stream.cpp.o.d"
  "CMakeFiles/sns_kernels.dir/wordcount.cpp.o"
  "CMakeFiles/sns_kernels.dir/wordcount.cpp.o.d"
  "libsns_kernels.a"
  "libsns_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
