
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/hw/machine.cpp" "src/sns/hw/CMakeFiles/sns_hw.dir/machine.cpp.o" "gcc" "src/sns/hw/CMakeFiles/sns_hw.dir/machine.cpp.o.d"
  "/root/repo/src/sns/hw/saturation_curve.cpp" "src/sns/hw/CMakeFiles/sns_hw.dir/saturation_curve.cpp.o" "gcc" "src/sns/hw/CMakeFiles/sns_hw.dir/saturation_curve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
