file(REMOVE_RECURSE
  "libsns_hw.a"
)
