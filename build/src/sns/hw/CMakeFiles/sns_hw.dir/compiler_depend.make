# Empty compiler generated dependencies file for sns_hw.
# This may be replaced when dependencies are built.
