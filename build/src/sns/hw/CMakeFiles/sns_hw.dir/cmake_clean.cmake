file(REMOVE_RECURSE
  "CMakeFiles/sns_hw.dir/machine.cpp.o"
  "CMakeFiles/sns_hw.dir/machine.cpp.o.d"
  "CMakeFiles/sns_hw.dir/saturation_curve.cpp.o"
  "CMakeFiles/sns_hw.dir/saturation_curve.cpp.o.d"
  "libsns_hw.a"
  "libsns_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
