# Empty dependencies file for sns_sched.
# This may be replaced when dependencies are built.
