file(REMOVE_RECURSE
  "CMakeFiles/sns_sched.dir/job.cpp.o"
  "CMakeFiles/sns_sched.dir/job.cpp.o.d"
  "CMakeFiles/sns_sched.dir/policy_ce.cpp.o"
  "CMakeFiles/sns_sched.dir/policy_ce.cpp.o.d"
  "CMakeFiles/sns_sched.dir/policy_cs.cpp.o"
  "CMakeFiles/sns_sched.dir/policy_cs.cpp.o.d"
  "CMakeFiles/sns_sched.dir/policy_sns.cpp.o"
  "CMakeFiles/sns_sched.dir/policy_sns.cpp.o.d"
  "CMakeFiles/sns_sched.dir/queue.cpp.o"
  "CMakeFiles/sns_sched.dir/queue.cpp.o.d"
  "libsns_sched.a"
  "libsns_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
