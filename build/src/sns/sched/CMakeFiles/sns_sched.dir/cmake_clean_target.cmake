file(REMOVE_RECURSE
  "libsns_sched.a"
)
