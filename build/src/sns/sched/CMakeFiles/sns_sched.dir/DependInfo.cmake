
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/sched/job.cpp" "src/sns/sched/CMakeFiles/sns_sched.dir/job.cpp.o" "gcc" "src/sns/sched/CMakeFiles/sns_sched.dir/job.cpp.o.d"
  "/root/repo/src/sns/sched/policy_ce.cpp" "src/sns/sched/CMakeFiles/sns_sched.dir/policy_ce.cpp.o" "gcc" "src/sns/sched/CMakeFiles/sns_sched.dir/policy_ce.cpp.o.d"
  "/root/repo/src/sns/sched/policy_cs.cpp" "src/sns/sched/CMakeFiles/sns_sched.dir/policy_cs.cpp.o" "gcc" "src/sns/sched/CMakeFiles/sns_sched.dir/policy_cs.cpp.o.d"
  "/root/repo/src/sns/sched/policy_sns.cpp" "src/sns/sched/CMakeFiles/sns_sched.dir/policy_sns.cpp.o" "gcc" "src/sns/sched/CMakeFiles/sns_sched.dir/policy_sns.cpp.o.d"
  "/root/repo/src/sns/sched/queue.cpp" "src/sns/sched/CMakeFiles/sns_sched.dir/queue.cpp.o" "gcc" "src/sns/sched/CMakeFiles/sns_sched.dir/queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/hw/CMakeFiles/sns_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/app/CMakeFiles/sns_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/profile/CMakeFiles/sns_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/actuator/CMakeFiles/sns_actuator.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
