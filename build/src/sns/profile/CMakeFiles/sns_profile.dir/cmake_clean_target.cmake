file(REMOVE_RECURSE
  "libsns_profile.a"
)
