# Empty compiler generated dependencies file for sns_profile.
# This may be replaced when dependencies are built.
