
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/profile/database.cpp" "src/sns/profile/CMakeFiles/sns_profile.dir/database.cpp.o" "gcc" "src/sns/profile/CMakeFiles/sns_profile.dir/database.cpp.o.d"
  "/root/repo/src/sns/profile/demand.cpp" "src/sns/profile/CMakeFiles/sns_profile.dir/demand.cpp.o" "gcc" "src/sns/profile/CMakeFiles/sns_profile.dir/demand.cpp.o.d"
  "/root/repo/src/sns/profile/drift.cpp" "src/sns/profile/CMakeFiles/sns_profile.dir/drift.cpp.o" "gcc" "src/sns/profile/CMakeFiles/sns_profile.dir/drift.cpp.o.d"
  "/root/repo/src/sns/profile/exploration.cpp" "src/sns/profile/CMakeFiles/sns_profile.dir/exploration.cpp.o" "gcc" "src/sns/profile/CMakeFiles/sns_profile.dir/exploration.cpp.o.d"
  "/root/repo/src/sns/profile/linux_pmu.cpp" "src/sns/profile/CMakeFiles/sns_profile.dir/linux_pmu.cpp.o" "gcc" "src/sns/profile/CMakeFiles/sns_profile.dir/linux_pmu.cpp.o.d"
  "/root/repo/src/sns/profile/profile_data.cpp" "src/sns/profile/CMakeFiles/sns_profile.dir/profile_data.cpp.o" "gcc" "src/sns/profile/CMakeFiles/sns_profile.dir/profile_data.cpp.o.d"
  "/root/repo/src/sns/profile/profiler.cpp" "src/sns/profile/CMakeFiles/sns_profile.dir/profiler.cpp.o" "gcc" "src/sns/profile/CMakeFiles/sns_profile.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/hw/CMakeFiles/sns_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/app/CMakeFiles/sns_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/perfmodel/CMakeFiles/sns_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
