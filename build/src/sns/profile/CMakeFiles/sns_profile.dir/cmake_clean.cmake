file(REMOVE_RECURSE
  "CMakeFiles/sns_profile.dir/database.cpp.o"
  "CMakeFiles/sns_profile.dir/database.cpp.o.d"
  "CMakeFiles/sns_profile.dir/demand.cpp.o"
  "CMakeFiles/sns_profile.dir/demand.cpp.o.d"
  "CMakeFiles/sns_profile.dir/drift.cpp.o"
  "CMakeFiles/sns_profile.dir/drift.cpp.o.d"
  "CMakeFiles/sns_profile.dir/exploration.cpp.o"
  "CMakeFiles/sns_profile.dir/exploration.cpp.o.d"
  "CMakeFiles/sns_profile.dir/linux_pmu.cpp.o"
  "CMakeFiles/sns_profile.dir/linux_pmu.cpp.o.d"
  "CMakeFiles/sns_profile.dir/profile_data.cpp.o"
  "CMakeFiles/sns_profile.dir/profile_data.cpp.o.d"
  "CMakeFiles/sns_profile.dir/profiler.cpp.o"
  "CMakeFiles/sns_profile.dir/profiler.cpp.o.d"
  "libsns_profile.a"
  "libsns_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
