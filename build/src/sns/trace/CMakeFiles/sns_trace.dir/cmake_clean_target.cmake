file(REMOVE_RECURSE
  "libsns_trace.a"
)
