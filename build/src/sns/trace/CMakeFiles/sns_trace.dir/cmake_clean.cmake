file(REMOVE_RECURSE
  "CMakeFiles/sns_trace.dir/generator.cpp.o"
  "CMakeFiles/sns_trace.dir/generator.cpp.o.d"
  "CMakeFiles/sns_trace.dir/replay.cpp.o"
  "CMakeFiles/sns_trace.dir/replay.cpp.o.d"
  "CMakeFiles/sns_trace.dir/swf.cpp.o"
  "CMakeFiles/sns_trace.dir/swf.cpp.o.d"
  "libsns_trace.a"
  "libsns_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
