# Empty compiler generated dependencies file for sns_trace.
# This may be replaced when dependencies are built.
