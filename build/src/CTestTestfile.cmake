# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sns/util")
subdirs("sns/hw")
subdirs("sns/app")
subdirs("sns/perfmodel")
subdirs("sns/profile")
subdirs("sns/actuator")
subdirs("sns/sched")
subdirs("sns/sim")
subdirs("sns/trace")
subdirs("sns/kernels")
subdirs("sns/uberun")
