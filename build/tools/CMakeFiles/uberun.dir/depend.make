# Empty dependencies file for uberun.
# This may be replaced when dependencies are built.
