file(REMOVE_RECURSE
  "CMakeFiles/uberun.dir/uberun_cli.cpp.o"
  "CMakeFiles/uberun.dir/uberun_cli.cpp.o.d"
  "uberun"
  "uberun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uberun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
