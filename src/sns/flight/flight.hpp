#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sns/obs/metrics.hpp"
#include "sns/util/json.hpp"

namespace sns::flight {

using JobId = std::int64_t;  ///< dense per-run id, same domain as sched::JobId

/// Recorder knobs.
struct FlightConfig {
  /// Retained co-residency intervals per job. When a job's interval list
  /// would exceed this budget, adjacent pairs merge 2:1 (index-aligned,
  /// like telemetry::Series), so memory is fixed and the retained store is
  /// a pure function of the append sequence. Rounded up to an even value
  /// >= 4. The per-job rollup ledgers (the reconciliation-invariant
  /// domain) are never compacted — only this visualization store is.
  std::size_t interval_budget = 64;
  /// Slack on the degradation-bound census: a job violates its bound when
  /// stretch > 1/alpha + bound_eps (same epsilon as
  /// sim::thresholdViolations, so the census and the paper metric agree).
  double bound_eps = 1e-12;
};

/// One retained co-residency span of one job: the co-run group on the
/// job's bottleneck node was constant over [t0, t1) (or, after 2:1
/// compaction, the merge of `raws` adjacent such spans). Slowdown-seconds
/// are additive under merging; `node`/`corunners` keep the first raw's
/// bottleneck node and the max co-runner count.
struct Interval {
  double t0 = 0.0;
  double t1 = 0.0;
  double work = 0.0;     ///< work fraction completed in the span (dt * rate)
  double deficit = 0.0;  ///< attributed slowdown-seconds (dt - t_solo * work)
  double llc_s = 0.0;    ///< LLC-way share of the deficit
  double membw_s = 0.0;  ///< memory-bandwidth share
  double net_s = 0.0;    ///< network (NIC oversubscription) share
  double other_s = 0.0;  ///< residual (uncontended dust); sums the axis to
                         ///< `deficit` exactly by construction
  int node = -1;         ///< bottleneck (min-rate) node of the first raw
  int corunners = 0;     ///< max co-resident count on the bottleneck node
  std::uint32_t raws = 1;  ///< raw spans merged into this one
};

/// Attributed slowdown-seconds charged to one co-runner.
struct CorunnerShare {
  JobId other = -1;
  double seconds = 0.0;
};

/// Everything the recorder accounts for one job over its lifetime. The
/// scalar accumulators are the invariant domain (audited, never
/// compacted); `intervals` is the fixed-budget visualization store.
struct JobRollup {
  JobId id = -1;
  std::string program;
  double alpha = 0.9;
  double submit = 0.0;
  double start = -1.0;
  double finish = -1.0;
  // Solo baseline captured at start (the simulator's ground truth at the
  // allocated ways): t_solo = solo_comp + solo_comm + solo_wait, computed
  // once here and replayed verbatim by the auditor.
  double solo_comp = 0.0;
  double solo_comm = 0.0;
  double solo_wait = 0.0;
  double t_solo = 0.0;
  double solo_rate = 0.0;  ///< per-proc instruction rate when alone
  // ---- online accumulators (closed-interval sums, in close order) ----------
  double attributed = 0.0;  ///< sum of interval deficits
  double llc_s = 0.0;
  double membw_s = 0.0;
  double net_s = 0.0;
  double other_s = 0.0;
  double self_s = 0.0;  ///< co-runner-axis residual (unattributable dust)
  double work = 0.0;    ///< sum of dt * rate; ~1.0 at finish
  std::uint32_t raw_intervals = 0;
  double first_open = -1.0;  ///< == start (audited bit-exact)
  double last_close = -1.0;  ///< == finish once finished (audited bit-exact)
  // ---- finalized at finish --------------------------------------------------
  bool finished = false;
  double queue_wait = 0.0;  ///< start - submit
  double actual = 0.0;      ///< finish - start
  double target = 0.0;      ///< actual - t_solo (the deficit to reconcile)
  double closure = 0.0;     ///< target - attributed (FP dust; audited small)
  double stretch = 1.0;     ///< actual / t_solo (guarded near-zero t_solo)
  double bound = 0.0;       ///< 1 / alpha, the paper's degradation bound
  bool bound_violated = false;
  /// Attributed slowdown-seconds per co-runner, ascending id.
  std::vector<CorunnerShare> corunners;
  /// Fixed-budget compacted co-residency store (see FlightConfig).
  std::vector<Interval> intervals;
  std::uint32_t compaction_level = 0;  ///< tail capacity is 2^level raws
};

/// Cluster-level rollup, computed once at endRun() by an ascending-id walk
/// (deterministic — no hash-order iteration anywhere in this module).
struct Census {
  std::size_t jobs = 0;
  std::size_t finished = 0;
  std::size_t violations = 0;  ///< stretch > 1/alpha + bound_eps
  double total_attributed = 0.0;
  double total_llc = 0.0;
  double total_membw = 0.0;
  double total_net = 0.0;
  double total_other = 0.0;
  double total_queue_wait = 0.0;
  double worst_stretch = 0.0;
  JobId worst_job = -1;
  double max_abs_closure = 0.0;
  double makespan = 0.0;
};

/// Context of a freshly derived rate, captured when the simulator opens a
/// job's next co-residency interval at a settle point. All spans point
/// into simulator scratch and are consumed before the call returns.
struct OpenContext {
  double now = 0.0;
  double rate = 0.0;     ///< new progress rate, 1 / t_inst
  double t_inst = 0.0;   ///< instantaneous completion-time estimate
  double stretch = 1.0;  ///< solo_rate / bottleneck co-run rate
  double net_over = 1.0; ///< NIC oversubscription factor (>= 1)
  int bottleneck_node = -1;
  /// Solver outputs for this job on the bottleneck node: achieved and
  /// bandwidth-unconstrained per-proc rates. Splits the compute deficit
  /// into LLC-way vs memory-bandwidth shares (DESIGN.md section 12).
  double rate_pp = 0.0;
  double raw_rate_pp = 0.0;
  /// Leave-one-out deltas on the bottleneck node: for each co-resident k,
  /// this job's solved rate without k minus its rate with everyone
  /// (>= 0 up to rounding; negatives are clamped when weighting).
  std::span<const std::pair<JobId, double>> comp_deltas;
  /// Co-residents of the argmax-NIC-demand node with their NIC demand
  /// (GB/s); weights the network share of the deficit.
  std::span<const std::pair<JobId, double>> net_shares;
};

/// Interference flight recorder (DESIGN.md section 12): rides the
/// settled-at-rate-boundary engine. Every settle closes the job's open
/// co-residency interval [t0, now) under its outgoing rate and charges the
/// realized slowdown deficit
///
///     D = dt - t_solo * (dt * rate)
///
/// to resources (LLC ways / memory bandwidth / network, fractions frozen
/// at interval open from the contention solver's outputs) and to
/// co-runners (leave-one-out rate deltas); the residual of each axis keeps
/// the axis summing to D exactly. Per-job sums reconcile against
/// actual_runtime - solo_runtime at finish (the closure residual is FP
/// dust, bounded by the auditor); audit::Auditor::auditFlightLedger
/// replays the arithmetic bit-exactly.
///
/// Attach via SimConfig::flight (caller-owned, must outlive run()). The
/// simulator calls beginRun() itself, so one recorder instance measures
/// the most recent run and reuse needs no manual reset. Simulation
/// results are bit-identical with the recorder attached or not
/// (tests/sim/test_flight_equivalence.cpp), and rollups are identical
/// across every SimConfig::opt flag setting.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightConfig cfg = {});

  /// Publish end-of-run `degradation.*` gauges into `reg` (exported by
  /// renderPrometheus as `sns_degradation_*`). Caller-owned registry,
  /// must outlive the recorder's endRun() calls.
  void attachMetrics(obs::Registry* reg) { metrics_ = reg; }

  // ---- simulator hooks (sns/sim/cluster_sim.cpp) ----------------------------
  void beginRun(std::size_t n_jobs, int nodes);
  void onStart(JobId id, const std::string& program, double submit,
               double now, double solo_comp, double solo_comm,
               double solo_wait, double solo_rate, double alpha);
  /// Close the open interval [t0, now) under the outgoing context. A
  /// zero-length settle (dt == 0, e.g. the refresh that follows a start at
  /// the same instant) appends nothing.
  void settle(JobId id, double now);
  /// Replace the open context with the freshly derived rate. Must follow a
  /// settle() (or onStart()) at the same `now` — contiguity is structural.
  void reopen(JobId id, const OpenContext& ctx);
  /// Final settle at the finish instant + rollup finalization.
  void onFinish(JobId id, double now);
  void endRun(double makespan);

  // ---- results --------------------------------------------------------------
  bool runComplete() const { return run_complete_; }
  const std::vector<JobRollup>& jobs() const { return jobs_; }
  /// Null when `id` is outside the last run's job range.
  const JobRollup* find(JobId id) const;
  /// Attributed slowdown-seconds charged to each node (bottleneck-node
  /// attribution); the report's contention heatmap.
  std::span<const double> nodeSlowdown() const { return node_slowdown_; }
  const Census& census() const { return census_; }
  const FlightConfig& config() const { return cfg_; }

  /// Full deterministic dump (jobs ascending, census, node heatmap); the
  /// determinism tests byte-compare dump() output across runs and opt
  /// flag settings.
  util::Json toJson() const;

  /// Test hook (tests/audit): perturb one job's attributed sum so the
  /// audit tests can prove a mangled ledger is caught. Never called by
  /// production code.
  void debugCorruptJob(JobId id);

 private:
  struct OpenState {
    bool open = false;
    double t0 = 0.0;
    double rate = 0.0;
    int node = -1;
    int corunners = 0;
    // Resource fractions of the deficit, frozen at open.
    double f_llc = 0.0;
    double f_membw = 0.0;
    double f_net = 0.0;
    /// (co-runner id, weight) fractions of the deficit, ascending id;
    /// capacity reused across reopens.
    std::vector<std::pair<JobId, double>> weights;
  };

  JobRollup& rollup(JobId id);
  void appendInterval(JobRollup& jr, const Interval& raw);
  void addCorunnerSeconds(JobRollup& jr, JobId other, double seconds);

  FlightConfig cfg_;
  std::vector<JobRollup> jobs_;
  std::vector<OpenState> open_;
  std::vector<double> node_slowdown_;
  Census census_;
  obs::Registry* metrics_ = nullptr;
  bool run_complete_ = false;
};

// ---- renderers (report.cpp) -------------------------------------------------

/// `uberun why-slow --job J`: one job's lifetime account — stretch vs the
/// 1/alpha bound, the queue-wait / solo / interference split of its
/// end-to-end latency, per-resource attribution, top co-runners and the
/// reconciliation closure.
std::string renderWhySlow(const FlightRecorder& fr, JobId id);

/// `uberun why-slow` without --job: the census plus the most-degraded jobs
/// (by attributed slowdown-seconds, ties by ascending id), `limit` rows.
std::string renderWhySlowIndex(const FlightRecorder& fr, std::size_t limit);

/// "Degradation accounting" report section: census, resource split,
/// reconciliation summary, worst bound violations and the hottest nodes.
std::string renderDegradationReport(const FlightRecorder& fr,
                                    std::size_t top_n = 10);

}  // namespace sns::flight
