#include "sns/flight/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "sns/util/table.hpp"

namespace sns::flight {

namespace {

/// Jobs ordered most-degraded first (attributed slowdown-seconds
/// descending, ties broken by ascending id so every render is
/// deterministic).
std::vector<const JobRollup*> byDegradation(const FlightRecorder& fr) {
  std::vector<const JobRollup*> v;
  v.reserve(fr.jobs().size());
  for (const JobRollup& jr : fr.jobs())
    if (jr.start >= 0.0) v.push_back(&jr);
  std::sort(v.begin(), v.end(), [](const JobRollup* a, const JobRollup* b) {
    if (a->attributed != b->attributed) return a->attributed > b->attributed;
    return a->id < b->id;
  });
  return v;
}

std::string pctOf(double part, double whole) {
  if (whole == 0.0) return "-";
  return util::fmtPct(part / whole);
}

std::string programOf(const FlightRecorder& fr, JobId id) {
  const JobRollup* jr = fr.find(id);
  return jr != nullptr && !jr->program.empty() ? jr->program : "?";
}

}  // namespace

std::string renderWhySlow(const FlightRecorder& fr, JobId id) {
  const JobRollup* jr = fr.find(id);
  if (jr == nullptr || jr->start < 0.0)
    return "why-slow: job " + std::to_string(id) +
           " was not observed by the flight recorder\n";
  const JobRollup& j = *jr;

  std::string out;
  out += "job " + std::to_string(j.id) + " (" + j.program + "): stretch " +
         util::fmt(j.stretch) + "x vs solo (degradation bound " +
         util::fmt(j.bound) + "x)" +
         (j.bound_violated ? "  ** DEGRADATION BOUND VIOLATED **" : "") + "\n";
  out += "  lifetime: submit " + util::fmt(j.submit) + " s  start " +
         util::fmt(j.start) + " s  finish " + util::fmt(j.finish) + " s\n";
  const double end_to_end = j.finish - j.submit;
  out += "  end-to-end " + util::fmt(end_to_end) + " s = queue wait " +
         util::fmt(j.queue_wait) + " s + solo runtime " + util::fmt(j.t_solo) +
         " s + interference " + util::fmt(j.attributed) + " s\n";
  out += "  reconciliation: actual - solo = " + util::fmt(j.target) +
         " s, attributed = " + util::fmt(j.attributed) +
         " s, closure residual = " + util::fmt(j.closure, 9) + " s\n";

  util::Table res({"resource", "slowdown_s", "share"});
  res.addRow({"llc_ways", util::fmt(j.llc_s), pctOf(j.llc_s, j.attributed)});
  res.addRow({"mem_bw", util::fmt(j.membw_s), pctOf(j.membw_s, j.attributed)});
  res.addRow({"network", util::fmt(j.net_s), pctOf(j.net_s, j.attributed)});
  res.addRow({"other", util::fmt(j.other_s), pctOf(j.other_s, j.attributed)});
  out += "  resource attribution:\n" + res.render();

  if (!j.corunners.empty()) {
    // Heaviest offenders first; ascending id on ties.
    std::vector<CorunnerShare> cr = j.corunners;
    std::sort(cr.begin(), cr.end(),
              [](const CorunnerShare& a, const CorunnerShare& b) {
                if (a.seconds != b.seconds) return a.seconds > b.seconds;
                return a.other < b.other;
              });
    util::Table ct({"co-runner", "program", "slowdown_s", "share"});
    std::size_t shown = 0;
    for (const CorunnerShare& c : cr) {
      if (shown++ >= 8) break;
      ct.addRow({std::to_string(c.other), programOf(fr, c.other),
                 util::fmt(c.seconds), pctOf(c.seconds, j.attributed)});
    }
    ct.addRow({"(self/unattributed)", "-", util::fmt(j.self_s),
               pctOf(j.self_s, j.attributed)});
    out += "  co-runner attribution:\n" + ct.render();
  } else {
    out += "  co-runner attribution: ran alone (self/unattributed " +
           util::fmt(j.self_s) + " s)\n";
  }

  out += "  co-residency intervals: " + std::to_string(j.intervals.size()) +
         " retained of " + std::to_string(j.raw_intervals) +
         " raw (compaction level " + std::to_string(j.compaction_level) +
         ")\n";
  return out;
}

std::string renderWhySlowIndex(const FlightRecorder& fr, std::size_t limit) {
  const Census& c = fr.census();
  std::string out;
  out += "degradation census: " + std::to_string(c.finished) + "/" +
         std::to_string(c.jobs) + " jobs accounted, " +
         std::to_string(c.violations) + " bound violations, worst stretch " +
         util::fmt(c.worst_stretch) + "x (job " +
         std::to_string(c.worst_job) + ")\n";
  out += "most degraded jobs (attributed slowdown-seconds):\n";
  util::Table t({"job", "program", "stretch", "bound", "violated",
                 "slowdown_s", "llc", "mem_bw", "network", "queue_wait_s"});
  std::size_t shown = 0;
  for (const JobRollup* j : byDegradation(fr)) {
    if (shown++ >= limit) break;
    t.addRow({std::to_string(j->id), j->program, util::fmt(j->stretch),
              util::fmt(j->bound), j->bound_violated ? "YES" : "no",
              util::fmt(j->attributed), pctOf(j->llc_s, j->attributed),
              pctOf(j->membw_s, j->attributed),
              pctOf(j->net_s, j->attributed), util::fmt(j->queue_wait)});
  }
  out += t.render();
  out += "use `uberun why-slow --workload W --job J` for a single job's "
         "full account\n";
  return out;
}

std::string renderDegradationReport(const FlightRecorder& fr,
                                    std::size_t top_n) {
  const Census& c = fr.census();
  std::string out;
  out += "jobs accounted: " + std::to_string(c.finished) + "/" +
         std::to_string(c.jobs) + "   makespan: " + util::fmt(c.makespan) +
         " s\n";
  out += "bound violations (stretch > 1/alpha): " +
         std::to_string(c.violations) + "   worst stretch: " +
         util::fmt(c.worst_stretch) + "x (job " + std::to_string(c.worst_job) +
         ")\n";
  out += "total queue wait: " + util::fmt(c.total_queue_wait) +
         " s   total attributed interference: " +
         util::fmt(c.total_attributed) + " s\n";
  out += "reconciliation: max |closure residual| " +
         util::fmt(c.max_abs_closure, 9) + " s across all jobs\n";

  util::Table res({"resource", "slowdown_s", "share"});
  res.addRow({"llc_ways", util::fmt(c.total_llc),
              pctOf(c.total_llc, c.total_attributed)});
  res.addRow({"mem_bw", util::fmt(c.total_membw),
              pctOf(c.total_membw, c.total_attributed)});
  res.addRow({"network", util::fmt(c.total_net),
              pctOf(c.total_net, c.total_attributed)});
  res.addRow({"other", util::fmt(c.total_other),
              pctOf(c.total_other, c.total_attributed)});
  out += "cluster resource attribution:\n" + res.render();

  out += "most degraded jobs:\n";
  util::Table jt({"job", "program", "stretch", "bound", "violated",
                  "slowdown_s"});
  std::size_t shown = 0;
  for (const JobRollup* j : byDegradation(fr)) {
    if (shown++ >= top_n) break;
    jt.addRow({std::to_string(j->id), j->program, util::fmt(j->stretch),
               util::fmt(j->bound), j->bound_violated ? "YES" : "no",
               util::fmt(j->attributed)});
  }
  out += jt.render();

  // Contention heatmap: hottest nodes by attributed slowdown-seconds
  // (bottleneck-node attribution), ascending node id on ties.
  std::span<const double> nodes = fr.nodeSlowdown();
  std::vector<int> hot;
  for (std::size_t nd = 0; nd < nodes.size(); ++nd)
    if (nodes[nd] != 0.0) hot.push_back(static_cast<int>(nd));
  std::sort(hot.begin(), hot.end(), [&](int a, int b) {
    if (nodes[a] != nodes[b]) return nodes[a] > nodes[b];
    return a < b;
  });
  if (!hot.empty()) {
    out += "hottest nodes (attributed slowdown-seconds):\n";
    util::Table nt({"node", "slowdown_s", "share"});
    std::size_t rows = 0;
    for (int nd : hot) {
      if (rows++ >= top_n) break;
      nt.addRow({std::to_string(nd), util::fmt(nodes[nd]),
                 pctOf(nodes[nd], c.total_attributed)});
    }
    out += nt.render();
  } else {
    out += "no node accumulated attributed slowdown (uncontended run)\n";
  }
  return out;
}

}  // namespace sns::flight
