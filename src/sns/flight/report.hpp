#pragma once

// Text renderers over FlightRecorder results; declared in flight.hpp so
// callers only include one header. This header exists for symmetry with
// the other sns modules (impl lives in report.cpp).

#include "sns/flight/flight.hpp"
