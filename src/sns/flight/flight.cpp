#include "sns/flight/flight.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sns/util/error.hpp"
#include "sns/util/hot_path.hpp"

namespace sns::flight {

namespace {

/// Below this solo runtime (seconds) a job's stretch is pinned to 1.0:
/// dividing by a zero/near-zero baseline would report inf/garbage stretch
/// for degenerate zero-duration jobs instead of "no meaningful slowdown".
constexpr double kMinSoloRuntime = 1e-12;

/// Per-job co-runner capacity reserved at onStart so steady-state settles
/// and reopens stay heap-silent: a job meeting its 65th *distinct*
/// co-runner would re-grow, which the alloc contract test would flag —
/// acceptable, since such a job's rollup is dominated by merge noise
/// anyway and the growth is one doubling, not a leak.
constexpr std::size_t kCorunnerReserve = 64;

Interval mergePair(const Interval& a, const Interval& b) {
  Interval m = a;  // keeps a.node (first raw's bottleneck)
  m.t1 = b.t1;
  m.work += b.work;
  m.deficit += b.deficit;
  m.llc_s += b.llc_s;
  m.membw_s += b.membw_s;
  m.net_s += b.net_s;
  m.other_s += b.other_s;
  m.corunners = std::max(a.corunners, b.corunners);
  m.raws += b.raws;
  return m;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightConfig cfg) : cfg_(cfg) {
  if (cfg_.interval_budget < 4) cfg_.interval_budget = 4;
  if (cfg_.interval_budget % 2 != 0) ++cfg_.interval_budget;
}

void FlightRecorder::beginRun(std::size_t n_jobs, int nodes) {
  jobs_.assign(n_jobs, JobRollup{});
  open_.assign(n_jobs, OpenState{});
  node_slowdown_.assign(nodes > 0 ? static_cast<std::size_t>(nodes) : 0, 0.0);
  census_ = Census{};
  run_complete_ = false;
}

JobRollup& FlightRecorder::rollup(JobId id) {
  SNS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < jobs_.size(),
              "flight: job id outside the range announced by beginRun()");
  return jobs_[static_cast<std::size_t>(id)];
}

void FlightRecorder::onStart(JobId id, const std::string& program,
                             double submit, double now, double solo_comp,
                             double solo_comm, double solo_wait,
                             double solo_rate, double alpha) {
  JobRollup& jr = rollup(id);
  jr.id = id;
  jr.program = program;
  jr.alpha = alpha;
  jr.submit = submit;
  jr.start = now;
  jr.solo_comp = solo_comp;
  jr.solo_comm = solo_comm;
  jr.solo_wait = solo_wait;
  jr.t_solo = solo_comp + solo_comm + solo_wait;
  jr.solo_rate = solo_rate;
  jr.first_open = now;
  jr.queue_wait = now - submit;
  // Open a placeholder interval at the start instant; the rate refresh
  // that follows the placement (same `now`) settles it at zero length and
  // reopens with the first real co-run context, so coverage starts
  // bit-exactly at `start`.
  OpenState& st = open_[static_cast<std::size_t>(id)];
  st.open = true;
  st.t0 = now;
  st.rate = 0.0;
  st.node = -1;
  st.corunners = 0;
  st.f_llc = st.f_membw = st.f_net = 0.0;
  st.weights.clear();
  // Job start is a rate boundary: pre-size everything the per-boundary
  // paths (settle/reopen) append to, so they never grow a vector mid-run.
  // The interval store's size is hard-capped at the budget (compaction
  // halves it in place), so this reserve is exact, not a guess.
  jr.intervals.reserve(cfg_.interval_budget);
  jr.corunners.reserve(kCorunnerReserve);
  st.weights.reserve(kCorunnerReserve);
}

void FlightRecorder::settle(JobId id, double now) {
  SNS_HOT_PATH("flight.settle");
  JobRollup& jr = rollup(id);
  OpenState& st = open_[static_cast<std::size_t>(id)];
  if (!st.open) return;
  st.open = false;
  const double dt = now - st.t0;
  if (dt <= 0.0) return;  // same-instant re-settle: structural no-op
  jr.last_close = now;

  const double work = dt * st.rate;
  // Canonical per-interval deficit: the auditor replays this expression
  // verbatim. Sum(dt) telescopes to actual runtime, Sum(work) to ~1, so
  // Sum(D) reconciles with actual - t_solo up to one closure residual.
  const double deficit = dt - jr.t_solo * work;
  jr.attributed += deficit;
  jr.work += work;
  ++jr.raw_intervals;

  // Resource axis: fractions frozen at open; residual construction makes
  // llc + membw + net + other == deficit exactly, interval by interval.
  const double llc = deficit * st.f_llc;
  const double membw = deficit * st.f_membw;
  const double net = deficit * st.f_net;
  const double other = deficit - llc - membw - net;
  jr.llc_s += llc;
  jr.membw_s += membw;
  jr.net_s += net;
  jr.other_s += other;

  if (st.node >= 0 && static_cast<std::size_t>(st.node) < node_slowdown_.size())
    node_slowdown_[static_cast<std::size_t>(st.node)] += deficit;

  // Co-runner axis: same residual construction into self_s.
  double assigned = 0.0;
  for (const auto& [other_id, w] : st.weights) {
    const double s = deficit * w;
    addCorunnerSeconds(jr, other_id, s);
    assigned += s;
  }
  jr.self_s += deficit - assigned;

  Interval iv;
  iv.t0 = st.t0;
  iv.t1 = now;
  iv.work = work;
  iv.deficit = deficit;
  iv.llc_s = llc;
  iv.membw_s = membw;
  iv.net_s = net;
  iv.other_s = other;
  iv.node = st.node;
  iv.corunners = st.corunners;
  iv.raws = 1;
  appendInterval(jr, iv);
}

void FlightRecorder::reopen(JobId id, const OpenContext& ctx) {
  SNS_HOT_PATH("flight.reopen");
  JobRollup& jr = rollup(id);
  OpenState& st = open_[static_cast<std::size_t>(id)];
  SNS_REQUIRE(!st.open, "flight: reopen() without a preceding settle()");
  st.open = true;
  st.t0 = ctx.now;
  st.rate = ctx.rate;
  st.node = ctx.bottleneck_node;
  st.corunners = static_cast<int>(ctx.comp_deltas.size());

  // Decompose the deficit fraction-wise while the solver context is hot.
  // t_inst - t_solo == comp*(stretch-1) + comm*(net_over-1) identically,
  // so f_llc + f_membw + f_net == 1 up to rounding whenever denom != 0;
  // the uncontended case (stretch == net_over == 1 exactly, multiplication
  // by 1.0 is exact) yields denom == 0 and zero fractions.
  const double denom = ctx.t_inst - jr.t_solo;
  if (denom != 0.0) {
    // stretch_llc: slowdown from LLC-way sharing alone (the solver's
    // bandwidth-unconstrained rate). Under way donation raw_rate_pp can
    // exceed solo_rate — negative LLC share records a speedup.
    const double stretch_llc =
        ctx.raw_rate_pp > 0.0 ? jr.solo_rate / ctx.raw_rate_pp : ctx.stretch;
    st.f_llc = jr.solo_comp * (stretch_llc - 1.0) / denom;
    st.f_membw = jr.solo_comp * (ctx.stretch - stretch_llc) / denom;
    st.f_net = jr.solo_comm * (ctx.net_over - 1.0) / denom;
  } else {
    st.f_llc = st.f_membw = st.f_net = 0.0;
  }

  // Co-runner weights: compute share split by leave-one-out rate deltas on
  // the bottleneck node, network share by NIC-demand shares on the
  // most-oversubscribed node. Unattributable mass (no measurable delta)
  // stays in the job's self bucket.
  st.weights.clear();
  const double comp_frac = st.f_llc + st.f_membw;
  if (comp_frac != 0.0 && !ctx.comp_deltas.empty()) {
    double sum = 0.0;
    for (const auto& [k, d] : ctx.comp_deltas) sum += std::max(d, 0.0);
    if (sum > 0.0)
      for (const auto& [k, d] : ctx.comp_deltas)
        st.weights.emplace_back(k, comp_frac * std::max(d, 0.0) / sum);
  }
  if (st.f_net != 0.0 && !ctx.net_shares.empty()) {
    double sum = 0.0;
    for (const auto& [k, d] : ctx.net_shares) sum += std::max(d, 0.0);
    if (sum > 0.0)
      for (const auto& [k, d] : ctx.net_shares)
        st.weights.emplace_back(k, st.f_net * std::max(d, 0.0) / sum);
  }
  if (st.weights.size() > 1) {
    std::sort(st.weights.begin(), st.weights.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t out = 0;
    for (std::size_t i = 1; i < st.weights.size(); ++i) {
      if (st.weights[i].first == st.weights[out].first)
        st.weights[out].second += st.weights[i].second;
      else
        st.weights[++out] = st.weights[i];
    }
    st.weights.resize(out + 1);
  }
}

void FlightRecorder::onFinish(JobId id, double now) {
  settle(id, now);
  JobRollup& jr = rollup(id);
  jr.finish = now;
  jr.finished = true;
  jr.actual = now - jr.start;
  jr.target = jr.actual - jr.t_solo;
  // One fixed expression order for the closure residual; the auditor
  // recomputes it bit-exactly from the same stored fields.
  jr.closure = jr.target - jr.attributed;
  jr.stretch = jr.t_solo > kMinSoloRuntime ? jr.actual / jr.t_solo : 1.0;
  jr.bound = jr.alpha > 0.0 ? 1.0 / jr.alpha
                            : std::numeric_limits<double>::infinity();
  jr.bound_violated = jr.stretch > jr.bound + cfg_.bound_eps;
}

void FlightRecorder::endRun(double makespan) {
  census_ = Census{};
  census_.makespan = makespan;
  census_.jobs = jobs_.size();
  for (const JobRollup& jr : jobs_) {  // ascending id: jobs_ is id-indexed
    if (jr.start < 0.0) continue;
    if (!jr.finished) continue;
    ++census_.finished;
    if (jr.bound_violated) ++census_.violations;
    census_.total_attributed += jr.attributed;
    census_.total_llc += jr.llc_s;
    census_.total_membw += jr.membw_s;
    census_.total_net += jr.net_s;
    census_.total_other += jr.other_s;
    census_.total_queue_wait += jr.queue_wait;
    if (jr.stretch > census_.worst_stretch) {
      census_.worst_stretch = jr.stretch;
      census_.worst_job = jr.id;
    }
    census_.max_abs_closure =
        std::max(census_.max_abs_closure, std::abs(jr.closure));
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("degradation.attributed_slowdown_s")
        .set(census_.total_attributed);
    metrics_->gauge("degradation.llc_slowdown_s").set(census_.total_llc);
    metrics_->gauge("degradation.membw_slowdown_s").set(census_.total_membw);
    metrics_->gauge("degradation.net_slowdown_s").set(census_.total_net);
    metrics_->gauge("degradation.bound_violations")
        .set(static_cast<double>(census_.violations));
    metrics_->gauge("degradation.worst_stretch").set(census_.worst_stretch);
    metrics_->gauge("degradation.queue_wait_s").set(census_.total_queue_wait);
    metrics_->gauge("degradation.jobs_accounted")
        .set(static_cast<double>(census_.finished));
  }
  run_complete_ = true;
}

const JobRollup* FlightRecorder::find(JobId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) return nullptr;
  return &jobs_[static_cast<std::size_t>(id)];
}

void FlightRecorder::appendInterval(JobRollup& jr, const Interval& raw) {
  const std::uint32_t tail_cap = 1u << jr.compaction_level;
  if (!jr.intervals.empty() && jr.intervals.back().raws < tail_cap) {
    jr.intervals.back() = mergePair(jr.intervals.back(), raw);
    return;
  }
  jr.intervals.push_back(raw);
  if (jr.intervals.size() >= cfg_.interval_budget) {
    // Index-aligned 2:1 pair merge (telemetry::Series discipline): the
    // retained store is a pure function of the append sequence, so runs
    // with identical settle streams keep byte-identical stores.
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < jr.intervals.size(); i += 2)
      jr.intervals[out++] = mergePair(jr.intervals[i], jr.intervals[i + 1]);
    if (jr.intervals.size() % 2 != 0)
      jr.intervals[out++] = jr.intervals.back();
    jr.intervals.resize(out);
    ++jr.compaction_level;
  }
}

void FlightRecorder::addCorunnerSeconds(JobRollup& jr, JobId other,
                                        double seconds) {
  auto it = std::lower_bound(
      jr.corunners.begin(), jr.corunners.end(), other,
      [](const CorunnerShare& c, JobId id) { return c.other < id; });
  if (it != jr.corunners.end() && it->other == other) {
    it->seconds += seconds;
  } else {
    jr.corunners.insert(it, CorunnerShare{other, seconds});
  }
}

util::Json FlightRecorder::toJson() const {
  util::Json::Array jobs;
  jobs.reserve(jobs_.size());
  for (const JobRollup& jr : jobs_) {
    util::Json::Object o;
    o["id"] = jr.id;
    o["program"] = jr.program;
    o["alpha"] = jr.alpha;
    o["submit"] = jr.submit;
    o["start"] = jr.start;
    o["finish"] = jr.finish;
    o["t_solo"] = jr.t_solo;
    o["solo_rate"] = jr.solo_rate;
    o["queue_wait"] = jr.queue_wait;
    o["actual"] = jr.actual;
    o["target"] = jr.target;
    o["attributed"] = jr.attributed;
    o["closure"] = jr.closure;
    o["work"] = jr.work;
    o["stretch"] = jr.stretch;
    o["bound"] = jr.bound;
    o["bound_violated"] = jr.bound_violated;
    o["llc_s"] = jr.llc_s;
    o["membw_s"] = jr.membw_s;
    o["net_s"] = jr.net_s;
    o["other_s"] = jr.other_s;
    o["self_s"] = jr.self_s;
    o["raw_intervals"] = static_cast<std::int64_t>(jr.raw_intervals);
    o["first_open"] = jr.first_open;
    o["last_close"] = jr.last_close;
    util::Json::Array cr;
    cr.reserve(jr.corunners.size());
    for (const CorunnerShare& c : jr.corunners) {
      util::Json::Object co;
      co["job"] = c.other;
      co["seconds"] = c.seconds;
      cr.push_back(std::move(co));
    }
    o["corunners"] = std::move(cr);
    util::Json::Array iv;
    iv.reserve(jr.intervals.size());
    for (const Interval& in : jr.intervals) {
      util::Json::Object io;
      io["t0"] = in.t0;
      io["t1"] = in.t1;
      io["work"] = in.work;
      io["deficit"] = in.deficit;
      io["llc_s"] = in.llc_s;
      io["membw_s"] = in.membw_s;
      io["net_s"] = in.net_s;
      io["other_s"] = in.other_s;
      io["node"] = in.node;
      io["corunners"] = in.corunners;
      io["raws"] = static_cast<std::int64_t>(in.raws);
      iv.push_back(std::move(io));
    }
    o["intervals"] = std::move(iv);
    jobs.push_back(std::move(o));
  }

  util::Json::Object census;
  census["jobs"] = census_.jobs;
  census["finished"] = census_.finished;
  census["violations"] = census_.violations;
  census["total_attributed"] = census_.total_attributed;
  census["total_llc"] = census_.total_llc;
  census["total_membw"] = census_.total_membw;
  census["total_net"] = census_.total_net;
  census["total_other"] = census_.total_other;
  census["total_queue_wait"] = census_.total_queue_wait;
  census["worst_stretch"] = census_.worst_stretch;
  census["worst_job"] = census_.worst_job;
  census["max_abs_closure"] = census_.max_abs_closure;
  census["makespan"] = census_.makespan;

  util::Json::Array nodes;
  nodes.reserve(node_slowdown_.size());
  for (double v : node_slowdown_) nodes.push_back(v);

  util::Json::Object root;
  root["jobs"] = std::move(jobs);
  root["census"] = std::move(census);
  root["node_slowdown"] = std::move(nodes);
  root["run_complete"] = run_complete_;
  return root;
}

void FlightRecorder::debugCorruptJob(JobId id) {
  JobRollup& jr = rollup(id);
  jr.attributed += 1.0;
}

}  // namespace sns::flight
