#pragma once

#include <string>

namespace sns::app {

/// Inter-process communication topology of a parallel program. Determines
/// what fraction of a job's traffic crosses node boundaries when the job is
/// spread over multiple nodes.
enum class CommPattern {
  kNone,       ///< independent tasks (replicated sequential jobs, EP-style)
  kRing,       ///< 1-D halo exchange / nearest neighbour (stencils: MG, LU)
  kAllToAll,   ///< uniform pairwise traffic (shuffles, random graph access)
  kButterfly,  ///< log-structured exchange (sorting, reductions)
};

std::string to_string(CommPattern p);
CommPattern commPatternFromString(const std::string& s);

/// Communication volume and shape of one program.
struct CommSpec {
  CommPattern pattern = CommPattern::kNone;
  /// Fraction of the reference (1-node, exclusive) run time spent in
  /// communication/synchronization. The paper's Fig 7 reports <10% for the
  /// NPB programs. Absolute byte volumes are derived from this during
  /// calibration.
  double comm_frac_ref = 0.0;
  /// Small-message count per process (adds latency cost when remote).
  double msgs_per_proc = 0.0;
  /// Fraction of the communication slot that is synchronization wait caused
  /// by inter-process progress jitter. Contention inflates it; spreading
  /// (which removes contention) deflates it — this reproduces CG's
  /// communication-side benefit from spreading in the paper's Fig 7.
  double sync_wait_frac = 0.0;
};

/// Fraction of pairwise traffic that crosses node boundaries for a job of
/// `total_procs` processes placed `procs_per_node` to a node on `nodes`
/// nodes. Returns 0 for a single node.
double remoteFraction(CommPattern pattern, int total_procs, int procs_per_node, int nodes);

}  // namespace sns::app
