#include "sns/app/jobspec_io.hpp"

#include <fstream>
#include <sstream>

#include "sns/util/error.hpp"

namespace sns::app {

util::Json jobSpecToJson(const JobSpec& spec) {
  util::Json j;
  j["program"] = util::Json(spec.program);
  j["procs"] = util::Json(spec.procs);
  j["alpha"] = util::Json(spec.alpha);
  j["submit"] = util::Json(spec.submit_time);
  j["repeats"] = util::Json(spec.repeats);
  j["ce_time_override"] = util::Json(spec.ce_time_override);
  return j;
}

JobSpec jobSpecFromJson(const util::Json& j) {
  JobSpec spec;
  spec.program = j.get("program").asString();
  if (spec.program.empty()) throw util::DataError("job needs a program name");
  if (j.has("procs")) spec.procs = static_cast<int>(j.get("procs").asNumber());
  if (spec.procs < 1) throw util::DataError("job needs procs >= 1");
  if (j.has("alpha")) spec.alpha = j.get("alpha").asNumber();
  if (spec.alpha <= 0.0 || spec.alpha > 1.0) {
    throw util::DataError("alpha must be in (0, 1]");
  }
  if (j.has("submit")) spec.submit_time = j.get("submit").asNumber();
  if (j.has("repeats")) spec.repeats = static_cast<int>(j.get("repeats").asNumber());
  if (spec.repeats < 1) throw util::DataError("repeats must be >= 1");
  if (j.has("ce_time_override")) {
    spec.ce_time_override = j.get("ce_time_override").asNumber();
  }
  return spec;
}

util::Json jobListToJson(const std::vector<JobSpec>& jobs) {
  util::Json::Array arr;
  arr.reserve(jobs.size());
  for (const auto& j : jobs) arr.push_back(jobSpecToJson(j));
  util::Json out;
  out["jobs"] = util::Json(std::move(arr));
  return out;
}

std::vector<JobSpec> jobListFromJson(const util::Json& j) {
  std::vector<JobSpec> out;
  for (const auto& job : j.get("jobs").asArray()) {
    out.push_back(jobSpecFromJson(job));
  }
  return out;
}

void saveJobList(const std::string& path, const std::vector<JobSpec>& jobs) {
  std::ofstream out(path);
  if (!out) throw util::DataError("cannot open for writing: " + path);
  out << jobListToJson(jobs).dump(2) << "\n";
  if (!out) throw util::DataError("write failed: " + path);
}

std::vector<JobSpec> loadJobList(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::DataError("cannot open for reading: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return jobListFromJson(util::Json::parse(ss.str()));
}

}  // namespace sns::app
