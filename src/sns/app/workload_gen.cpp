#include "sns/app/workload_gen.hpp"

#include <algorithm>
#include <cmath>

#include "sns/util/error.hpp"

namespace sns::app {

std::vector<JobSpec> randomSequence(util::Rng& rng, const std::vector<ProgramModel>& lib,
                                    int jobs, double alpha) {
  SNS_REQUIRE(!lib.empty(), "randomSequence() needs a non-empty library");
  SNS_REQUIRE(jobs > 0, "randomSequence() needs jobs > 0");
  std::vector<JobSpec> seq;
  seq.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    const auto& prog = lib[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(lib.size()) - 1))];
    JobSpec j;
    j.program = prog.name;
    j.alpha = alpha;
    // Rigid power-of-two programs use 16 processes; flexible ones use 16 or
    // 28 ("to match the core count per node"). Single-node TensorFlow
    // programs stay at their reference thread count.
    if (prog.pow2_procs || !prog.multi_node) {
      j.procs = prog.ref_procs;
    } else {
      j.procs = rng.chance(0.5) ? 16 : 28;
    }
    seq.push_back(j);
  }
  return seq;
}

double scalingRatio(const std::vector<JobSpec>& seq,
                    const std::vector<std::string>& scaling_programs,
                    const CeTimeFn& ce_time) {
  SNS_REQUIRE(!seq.empty(), "scalingRatio() of empty sequence");
  double scaling_core_hours = 0.0;
  double total_core_hours = 0.0;
  for (const auto& j : seq) {
    const double ch = ce_time(j) * j.procs * j.repeats;
    total_core_hours += ch;
    if (std::find(scaling_programs.begin(), scaling_programs.end(), j.program) !=
        scaling_programs.end()) {
      scaling_core_hours += ch;
    }
  }
  SNS_REQUIRE(total_core_hours > 0.0, "scalingRatio() needs positive core-hours");
  return scaling_core_hours / total_core_hours;
}

std::vector<JobSpec> ratioControlledMix(util::Rng& rng, const std::string& scaling_prog,
                                        const std::string& neutral_prog, int total_jobs,
                                        int procs, double target_ratio,
                                        const CeTimeFn& ce_time, double alpha) {
  SNS_REQUIRE(total_jobs > 0, "ratioControlledMix() needs total_jobs > 0");
  SNS_REQUIRE(target_ratio >= 0.0 && target_ratio <= 1.0,
              "target_ratio must be in [0, 1]");
  JobSpec s{scaling_prog, procs, alpha, 0.0, 1};
  JobSpec n{neutral_prog, procs, alpha, 0.0, 1};
  const double ts = ce_time(s);
  const double tn = ce_time(n);

  // Pick the scaling-job count whose core-hour share is closest to target.
  int best_k = 0;
  double best_err = std::abs(0.0 - target_ratio);
  for (int k = 1; k <= total_jobs; ++k) {
    const double ratio = k * ts / (k * ts + (total_jobs - k) * tn);
    const double err = std::abs(ratio - target_ratio);
    if (err < best_err) {
      best_err = err;
      best_k = k;
    }
  }

  std::vector<JobSpec> seq;
  seq.reserve(static_cast<std::size_t>(total_jobs));
  for (int i = 0; i < best_k; ++i) seq.push_back(s);
  for (int i = best_k; i < total_jobs; ++i) seq.push_back(n);
  std::shuffle(seq.begin(), seq.end(), rng);
  return seq;
}

}  // namespace sns::app
