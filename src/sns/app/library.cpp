#include "sns/app/library.hpp"

#include "sns/util/error.hpp"

namespace sns::app {

namespace {

// Shorthand builders keep the table below readable.
ProgramModel base(std::string name, Framework fw, double solo_ref) {
  ProgramModel p;
  p.name = std::move(name);
  p.framework = fw;
  p.solo_time_ref = solo_ref;
  p.ref_procs = 16;
  return p;
}

}  // namespace

std::vector<ProgramModel> programLibrary() {
  std::vector<ProgramModel> lib;

  // ---- WC: HiBench WordCount (Spark, "bigdata" size). Neutral class:
  // light bandwidth, shallow cache demand, small shuffle.
  {
    ProgramModel p = base("WC", Framework::kSpark, 180.0);
    p.cpi_core = 0.8;
    p.mem_refs_per_instr = 0.030;
    p.mlp = 3.0;
    p.miss = {0.70, 0.12, 0.45, 1.6};
    p.comm = {CommPattern::kAllToAll, 0.03, 3.0e6, 0.2};
    p.phases = {{0.6, 1.2}, {0.4, 0.7}};  // map phase vs reduce phase
    lib.push_back(p);
  }

  // ---- TS: HiBench TeraSort (Spark, "huge" size). Scaling class via cache:
  // "TS enjoys larger caches for its sorting" (§6.1); ideal scale 8.
  {
    ProgramModel p = base("TS", Framework::kSpark, 360.0);
    p.cpi_core = 0.7;
    p.mem_refs_per_instr = 0.022;
    p.mlp = 3.0;
    p.miss = {0.80, 0.10, 3.0, 1.3};
    p.comm = {CommPattern::kButterfly, 0.08, 2.0e6, 0.25};
    p.phases = {{0.5, 1.3}, {0.5, 0.7}};  // shuffle-heavy vs merge phases
    lib.push_back(p);
  }

  // ---- NW: HiBench NWeight (Spark, "large"). Neutral: very cache-hungry
  // (nearly all ways in Fig 12) but iterative shuffles eat the spread gain.
  {
    ProgramModel p = base("NW", Framework::kSpark, 420.0);
    p.cpi_core = 0.8;
    p.mem_refs_per_instr = 0.018;
    p.mlp = 2.0;
    p.miss = {0.85, 0.28, 4.5, 1.1};
    p.comm = {CommPattern::kButterfly, 0.04, 7.0e7, 0.15};
    lib.push_back(p);
  }

  // ---- GAN: DCGAN training (TensorFlow-Examples, batch 32). Multi-threaded
  // but single-node (§6.1). Moderate cache and bandwidth appetite.
  {
    ProgramModel p = base("GAN", Framework::kTensorFlow, 300.0);
    p.multi_node = false;
    p.cpi_core = 0.6;
    p.mem_refs_per_instr = 0.020;
    p.mlp = 4.0;
    p.miss = {0.75, 0.15, 0.7, 1.5};
    p.comm = {CommPattern::kNone, 0.0, 0.0, 0.0};
    p.phases = {{0.5, 1.25}, {0.5, 0.75}};  // generator vs discriminator steps
    lib.push_back(p);
  }

  // ---- RNN: dynamic RNN training (TensorFlow-Examples, batch 128).
  // Single-node, lighter on memory than GAN.
  {
    ProgramModel p = base("RNN", Framework::kTensorFlow, 250.0);
    p.multi_node = false;
    p.cpi_core = 0.6;
    p.mem_refs_per_instr = 0.012;
    p.mlp = 4.0;
    p.miss = {0.65, 0.12, 0.60, 1.6};
    p.comm = {CommPattern::kNone, 0.0, 0.0, 0.0};
    lib.push_back(p);
  }

  // ---- MG: NPB MultiGrid, class D. The paper's flagship bandwidth-bound
  // program: 112 GB/s on one node (Fig 4), 90% performance with only 3 LLC
  // ways (Fig 6/12), scales to 8 nodes. Fig 1 runs it 5 times back-to-back.
  {
    ProgramModel p = base("MG", Framework::kMpi, 95.0);
    p.pow2_procs = true;
    p.cpi_core = 0.8;
    p.mem_refs_per_instr = 0.35;
    p.mlp = 12.0;
    p.dram_latency_cycles = 180.0;
    p.miss = {0.85, 0.45, 0.20, 2.2};
    p.comm = {CommPattern::kRing, 0.08, 5.0e5, 0.6};
    lib.push_back(p);
  }

  // ---- CG: NPB Conjugate Gradient, class D. Random access, latency-bound
  // (low MLP), cache-friendly up to ~10 ways, 42.9 GB/s; peaks at scale 2
  // (+13%) largely from reduced sync wait (Fig 7).
  {
    ProgramModel p = base("CG", Framework::kMpi, 210.0);
    p.pow2_procs = true;
    p.cpi_core = 0.8;
    p.mem_refs_per_instr = 0.197;
    p.mlp = 3.0;
    p.miss = {0.85, 0.32, 1.10, 2.2};
    p.comm = {CommPattern::kButterfly, 0.16, 3.0e7, 0.90};
    lib.push_back(p);
  }

  // ---- EP: NPB Embarrassingly Parallel, class D. Pure compute: 0.09 GB/s,
  // happy with 2 ways, scale-agnostic (neutral).
  {
    ProgramModel p = base("EP", Framework::kMpi, 120.0);
    p.pow2_procs = true;
    p.cpi_core = 0.75;
    p.mem_refs_per_instr = 0.0005;
    p.mlp = 4.0;
    p.miss = {0.30, 0.05, 0.05, 1.5};
    p.comm = {CommPattern::kButterfly, 0.01, 1.0e3, 0.5};
    lib.push_back(p);
  }

  // ---- LU: NPB Lower-Upper Gauss-Seidel, class D. Bandwidth-intensive
  // scaling program (>30% speedup at 8 nodes, Fig 13).
  {
    ProgramModel p = base("LU", Framework::kMpi, 400.0);
    p.pow2_procs = true;
    p.cpi_core = 0.8;
    p.mem_refs_per_instr = 0.30;
    p.mlp = 14.0;
    p.miss = {0.85, 0.38, 0.45, 1.8};
    p.comm = {CommPattern::kRing, 0.08, 4.0e6, 0.4};
    lib.push_back(p);
  }

  // ---- BFS: Graph500 breadth-first search, scale 24. The only compact
  // program: cache-hungry (≈18 ways in Fig 12), and spreading inflates its
  // instruction stream, memory traffic and miss rate (Figs 4, 5, 7).
  {
    ProgramModel p = base("BFS", Framework::kMpi, 240.0);
    p.pow2_procs = true;
    p.cpi_core = 0.8;
    p.mem_refs_per_instr = 0.020;
    p.mlp = 1.2;
    p.dram_latency_cycles = 220.0;
    p.miss = {0.75, 0.22, 4.0, 1.0};
    p.comm = {CommPattern::kAllToAll, 0.06, 8.0e6, 0.4};
    p.spread_instr_overhead = 0.15;
    p.spread_mem_overhead = 0.5;
    p.spread_miss_boost = 0.20;
    lib.push_back(p);
  }

  // ---- HC: SPEC CPU 2006 h264ref (video coding), ref input, 16 replicated
  // instances. CPU-bound neutral filler; content with 2 ways.
  {
    ProgramModel p = base("HC", Framework::kReplicated, 485.0);
    p.cpi_core = 0.65;
    p.mem_refs_per_instr = 0.006;
    p.mlp = 3.0;
    p.miss = {0.45, 0.08, 0.15, 1.8};
    p.comm = {CommPattern::kNone, 0.0, 0.0, 0.0};
    lib.push_back(p);
  }

  // ---- BW: SPEC CPU 2006 bwaves (blast-wave CFD), ref input, replicated.
  // Bandwidth-intensive scaling program, no communication.
  {
    ProgramModel p = base("BW", Framework::kReplicated, 700.0);
    p.cpi_core = 0.8;
    p.mem_refs_per_instr = 0.32;
    p.mlp = 13.0;
    p.miss = {0.85, 0.38, 0.45, 1.6};
    p.comm = {CommPattern::kNone, 0.0, 0.0, 0.0};
    lib.push_back(p);
  }

  return lib;
}

std::vector<std::string> programNames() {
  return {"WC", "TS", "NW", "GAN", "RNN", "MG", "CG", "EP", "LU", "BFS", "HC", "BW"};
}

const ProgramModel& findProgram(const std::vector<ProgramModel>& lib,
                                const std::string& name) {
  for (const auto& p : lib) {
    if (p.name == name) return p;
  }
  throw util::DataError("program not in library: " + name);
}

}  // namespace sns::app
