#include "sns/app/miss_curve.hpp"

#include <algorithm>
#include <cmath>

#include "sns/util/error.hpp"

namespace sns::app {

double MissCurve::at(double mb_per_proc) const {
  SNS_REQUIRE(half_mb > 0.0, "MissCurve::half_mb must be positive");
  SNS_REQUIRE(shape > 0.0, "MissCurve::shape must be positive");
  const double x = std::max(mb_per_proc, 1e-6);
  const double m = m_warm + (m_cold - m_warm) / (1.0 + std::pow(x / half_mb, shape));
  return std::clamp(m, 0.0, 1.0);
}

}  // namespace sns::app
