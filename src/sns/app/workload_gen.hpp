#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sns/app/program.hpp"
#include "sns/util/rng.hpp"

namespace sns::app {

/// One job in a submission sequence. The evaluation submits all jobs at the
/// same time (paper §6.2 studies a "time segment" of continuous batch
/// scheduling), so submit_time is usually 0; the trace replayer sets it.
struct JobSpec {
  std::string program;
  int procs = 16;        ///< 16 or 28 in the paper's sequences
  double alpha = 0.9;    ///< slowdown threshold (paper default 0.9)
  double submit_time = 0.0;
  /// Repeat count: the job runs the program this many times back-to-back
  /// (Fig 1 repeats MG five times). Affects total work, not scheduling.
  int repeats = 1;
  /// When positive, rescale the job's work so its CE execution time (minimum
  /// footprint, exclusive, full LLC) equals this many seconds. Used by the
  /// trace replayer, which takes CE run times from the job trace (§6.4)
  /// while inheriting the mapped program's relative scaling behaviour.
  double ce_time_override = 0.0;
};

/// Returns the CE execution time of a job (used for scaling-ratio math).
using CeTimeFn = std::function<double(const JobSpec&)>;

/// Random 20-job sequences sampled from the program set, per §6.2: each job
/// uses 16 processes (programs with rigid power-of-two needs) or 28 (the
/// node's core count, as flexible users commonly configure).
std::vector<JobSpec> randomSequence(util::Rng& rng,
                                    const std::vector<ProgramModel>& lib,
                                    int jobs = 20, double alpha = 0.9);

/// Fraction of CE core-hours consumed by jobs of scaling-class programs
/// (the paper's "scaling ratio" metric, §6.2).
double scalingRatio(const std::vector<JobSpec>& seq,
                    const std::vector<std::string>& scaling_programs,
                    const CeTimeFn& ce_time);

/// Simplified two-program mixes with a controlled scaling ratio (Fig 19
/// uses BW as the scaling job and HC as the neutral job, 30 jobs of 28
/// cores each). Picks the split of job counts whose core-hour fraction is
/// closest to `target_ratio`, then shuffles the order.
std::vector<JobSpec> ratioControlledMix(util::Rng& rng, const std::string& scaling_prog,
                                        const std::string& neutral_prog, int total_jobs,
                                        int procs, double target_ratio,
                                        const CeTimeFn& ce_time, double alpha = 0.9);

}  // namespace sns::app
