#pragma once

#include <string>
#include <vector>

#include "sns/app/workload_gen.hpp"
#include "sns/util/json.hpp"

namespace sns::app {

/// JSON (de)serialization for job specs, used by the CLI and for archiving
/// generated sequences. A job object looks like
///   {"program": "MG", "procs": 16, "alpha": 0.9, "submit": 0,
///    "repeats": 1, "ce_time_override": 0}
/// with everything but "program" optional.
util::Json jobSpecToJson(const JobSpec& spec);
JobSpec jobSpecFromJson(const util::Json& j);

util::Json jobListToJson(const std::vector<JobSpec>& jobs);
std::vector<JobSpec> jobListFromJson(const util::Json& j);

/// File helpers; throw DataError on I/O or parse problems.
void saveJobList(const std::string& path, const std::vector<JobSpec>& jobs);
std::vector<JobSpec> loadJobList(const std::string& path);

}  // namespace sns::app
