#pragma once

namespace sns::app {

/// LLC miss ratio (misses per LLC access) as a function of cache capacity
/// available to one process, in MB. Uses a hill/logistic form
///
///   m(x) = m_warm + (m_cold - m_warm) / (1 + (x / half_mb)^shape)
///
/// which covers the behaviours in the paper's Figs 5-6: streaming programs
/// (MG) have a high floor but reach it with little cache; cache-friendly
/// programs (CG, NW, BFS) keep improving up to nearly the full LLC; EP-style
/// compute-bound programs miss almost never at any size.
struct MissCurve {
  double m_cold = 0.9;   ///< miss ratio with almost no cache
  double m_warm = 0.05;  ///< asymptotic miss ratio with ample cache
  double half_mb = 1.0;  ///< capacity at which the improvement is half done
  double shape = 2.0;    ///< steepness of the transition (> 0)

  /// Evaluate at `mb_per_proc` megabytes of LLC available per process.
  double at(double mb_per_proc) const;
};

}  // namespace sns::app
