#include "sns/app/program.hpp"

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::app {

std::string to_string(Framework f) {
  switch (f) {
    case Framework::kMpi: return "MPI";
    case Framework::kSpark: return "Spark";
    case Framework::kTensorFlow: return "TensorFlow";
    case Framework::kReplicated: return "Replicated";
  }
  return "unknown";
}

double ProgramModel::missRatio(double mb_per_proc, double remote_frac) const {
  const double m = miss.at(mb_per_proc) + spread_miss_boost * remote_frac;
  return std::clamp(m, 0.0, 1.0);
}

std::vector<Phase> ProgramModel::effectivePhases() const {
  if (phases.empty()) return {{1.0, 1.0}};
  double total = 0.0;
  for (const auto& p : phases) {
    SNS_REQUIRE(p.weight > 0.0, "phase weights must be positive");
    total += p.weight;
  }
  std::vector<Phase> out = phases;
  for (auto& p : out) p.weight /= total;
  return out;
}

}  // namespace sns::app
