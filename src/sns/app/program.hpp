#pragma once

#include <string>
#include <vector>

#include "sns/app/comm.hpp"
#include "sns/app/miss_curve.hpp"

namespace sns::app {

/// Parallel framework a program runs on. Uberun co-schedules jobs across
/// frameworks (paper §3.3); in the reproduction the framework mainly tags
/// provenance and constrains scaling (TensorFlow programs are single-node).
enum class Framework { kMpi, kSpark, kTensorFlow, kReplicated };

std::string to_string(Framework f);

/// A phase of execution with distinct memory behaviour. The profiler
/// rotates LLC allocations over time, so multi-phase programs yield biased
/// profiles — the paper's first explanation for slowdown-threshold
/// violations (§6.2). Weights are fractions of total instructions and must
/// sum to ~1; intensity multiplies the program's memory refs/instruction.
struct Phase {
  double weight = 1.0;
  double mem_intensity = 1.0;
};

/// Ground-truth model of one program. Everything the evaluation needs —
/// IPC-LLC curves, bandwidth curves, scaling speedups, miss rates — derives
/// from these parameters through sns::perfmodel. Two fields
/// (instructions_per_proc, comm_gb_per_proc) are filled in by calibration
/// against `solo_time_ref` on a concrete machine.
struct ProgramModel {
  std::string name;
  Framework framework = Framework::kMpi;

  // ---- reference run (used for calibration) -------------------------------
  /// Processes (or replicated instances / threads) in the reference run.
  int ref_procs = 16;
  /// Measured execution time of the reference run: `ref_procs` processes on
  /// one node, exclusive, full LLC. Paper sizes inputs for 50-1200 s runs.
  double solo_time_ref = 100.0;

  // ---- compute/memory behaviour -------------------------------------------
  /// Cycles per instruction with all memory references hitting in cache.
  double cpi_core = 0.8;
  /// LLC references per instruction (loads missing the private levels).
  double mem_refs_per_instr = 0.01;
  /// Miss ratio vs per-process LLC capacity.
  MissCurve miss;
  /// Average DRAM access latency in cycles, before MLP overlap.
  double dram_latency_cycles = 180.0;
  /// Memory-level parallelism: how many misses overlap. Streaming codes
  /// (MG, LU, BW) have high MLP; pointer-chasing codes (CG, BFS) low.
  double mlp = 4.0;
  /// Bytes of DRAM traffic per LLC miss (line fill + write-back share).
  double bytes_per_miss = 80.0;

  // ---- communication -------------------------------------------------------
  CommSpec comm;

  // ---- spreading side effects ----------------------------------------------
  /// Extra instructions executed per unit of remote traffic fraction
  /// (different code paths for inter-node communication; BFS in Fig 5/7).
  double spread_instr_overhead = 0.0;
  /// Extra LLC refs/instruction per unit remote fraction (communication
  /// buffers polluting the hierarchy; raises BFS's miss rate when spread).
  double spread_mem_overhead = 0.0;
  /// Additive miss-ratio boost per unit remote fraction.
  double spread_miss_boost = 0.0;

  // ---- scheduling constraints ----------------------------------------------
  /// False for programs that cannot span nodes (the paper's GAN/RNN).
  bool multi_node = true;
  /// MPI programs need power-of-two process-per-node splits in the paper's
  /// runs; generators respect this when picking job sizes.
  bool pow2_procs = false;

  // ---- execution phases ----------------------------------------------------
  /// Empty means a single homogeneous phase.
  std::vector<Phase> phases;

  // ---- calibration products (filled by perfmodel::Estimator) ---------------
  double instructions_per_proc = 0.0;  ///< total retired instructions / process
  double comm_gb_per_proc = 0.0;       ///< total communication volume / process
  double ref_node_pressure = 0.0;      ///< node BW / peak in the reference run

  bool calibrated() const { return instructions_per_proc > 0.0; }

  /// Memory refs per instruction including spread-out side effects.
  double memRefs(double remote_frac) const {
    return mem_refs_per_instr * (1.0 + spread_mem_overhead * remote_frac);
  }

  /// Miss ratio at the given per-process capacity and remote fraction.
  double missRatio(double mb_per_proc, double remote_frac) const;

  /// Instruction inflation factor when spread (>= 1).
  double instrFactor(double remote_frac) const {
    return 1.0 + spread_instr_overhead * remote_frac;
  }

  /// Weighted phases; returns {{1.0, 1.0}} when `phases` is empty.
  std::vector<Phase> effectivePhases() const;
};

}  // namespace sns::app
