#include "sns/app/comm.hpp"

#include <algorithm>
#include <cmath>

#include "sns/util/error.hpp"

namespace sns::app {

std::string to_string(CommPattern p) {
  switch (p) {
    case CommPattern::kNone: return "none";
    case CommPattern::kRing: return "ring";
    case CommPattern::kAllToAll: return "all-to-all";
    case CommPattern::kButterfly: return "butterfly";
  }
  return "unknown";
}

CommPattern commPatternFromString(const std::string& s) {
  if (s == "none") return CommPattern::kNone;
  if (s == "ring") return CommPattern::kRing;
  if (s == "all-to-all") return CommPattern::kAllToAll;
  if (s == "butterfly") return CommPattern::kButterfly;
  throw util::DataError("unknown comm pattern: " + s);
}

double remoteFraction(CommPattern pattern, int total_procs, int procs_per_node, int nodes) {
  SNS_REQUIRE(total_procs >= 1, "remoteFraction() needs total_procs >= 1");
  SNS_REQUIRE(procs_per_node >= 1, "remoteFraction() needs procs_per_node >= 1");
  SNS_REQUIRE(nodes >= 1, "remoteFraction() needs nodes >= 1");
  if (nodes == 1 || total_procs == 1) return 0.0;
  const double P = total_procs;
  const double c = std::min<double>(procs_per_node, total_procs);
  switch (pattern) {
    case CommPattern::kNone:
      return 0.0;
    case CommPattern::kRing:
      // Block decomposition of a ring: each node hosts c consecutive ranks;
      // of the 2c neighbour links per node, 2 cross the node boundary.
      return std::min(1.0, 1.0 / c);
    case CommPattern::kAllToAll:
      // Uniform peer choice: a peer is remote with probability (P-c)/(P-1).
      return (P - c) / (P - 1.0);
    case CommPattern::kButterfly:
      // log2(P) exchange rounds; the last log2(nodes) rounds are remote.
      return std::log2(static_cast<double>(nodes)) / std::log2(std::max(2.0, P));
  }
  return 0.0;
}

}  // namespace sns::app
