#pragma once

#include <string>
#include <vector>

#include "sns/app/program.hpp"

namespace sns::app {

/// The paper's 12-program workload set (§6.1): 3 Spark programs from
/// HiBench, 2 TensorFlow-Examples programs, 4 NPB MPI programs, Graph500
/// BFS, and 2 replicated SPEC CPU 2006 programs. Parameters are calibrated
/// so the model reproduces the published characterization: Fig 12 (ways for
/// 90% performance + bandwidth), Fig 13 (scale-out speedups and the
/// scaling/neutral/compact classes), and the §2 deep-dive numbers for
/// MG/CG/EP/BFS (Figs 2-7). The returned models are *not* yet calibrated to
/// a machine; pass them through perfmodel::Estimator::calibrate (or use
/// calibratedLibrary()).
std::vector<ProgramModel> programLibrary();

/// Names in canonical paper order: WC TS NW GAN RNN MG CG EP LU BFS HC BW.
std::vector<std::string> programNames();

/// Find a program by name in a library vector; throws DataError if absent.
const ProgramModel& findProgram(const std::vector<ProgramModel>& lib,
                                const std::string& name);

}  // namespace sns::app
