#include "sns/actuator/node_ledger.hpp"

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::actuator {

bool NodeLedger::fits(const NodeAllocation& r) const {
  if (exclusive_) return false;  // resident exclusive job blocks all
  if (r.exclusive && !allocs_.empty()) return false;
  if (r.cores > idleCores()) return false;
  if (r.ways > 0 && jobCount() >= mach_->max_llc_partitions) return false;
  if (r.ways > freeWays()) return false;
  if (r.bw_gbps > freeBandwidth() + 1e-9) return false;
  if (r.net_gbps > freeNetwork() + 1e-9) return false;
  return true;
}

void NodeLedger::refreshOccupancy() {
  occ_cores_ = static_cast<double>(cores_used_) / mach_->cores;
  occ_ways_ = static_cast<double>(ways_reserved_) / mach_->llc_ways;
  occ_bw_ = bw_reserved_ / peak_bw_;
}

const NodeAllocation* NodeLedger::find(JobId job) const {
  for (const auto& [id, alloc] : allocs_) {
    if (id == job) return &alloc;
  }
  return nullptr;
}

void NodeLedger::allocate(JobId job, const NodeAllocation& alloc) {
  SNS_REQUIRE(alloc.cores >= 1, "allocation needs at least one core");
  SNS_REQUIRE(!holds(job), "job already holds resources on this node");
  SNS_REQUIRE(alloc.ways == 0 || alloc.ways >= mach_->min_ways_per_job,
              "CAT partitions need at least min_ways_per_job ways");
  SNS_REQUIRE(fits(alloc), "allocation does not fit on node");
  auto it = std::lower_bound(
      allocs_.begin(), allocs_.end(), job,
      [](const auto& entry, JobId id) { return entry.first < id; });
  allocs_.insert(it, {job, alloc});
  cores_used_ += alloc.cores;
  ways_reserved_ += alloc.ways;
  bw_reserved_ += alloc.bw_gbps;
  net_reserved_ += alloc.net_gbps;
  if (alloc.exclusive) exclusive_ = true;
  refreshOccupancy();
}

void NodeLedger::release(JobId job) {
  auto it = std::find_if(allocs_.begin(), allocs_.end(),
                         [job](const auto& entry) { return entry.first == job; });
  SNS_REQUIRE(it != allocs_.end(), "job holds nothing on this node");
  cores_used_ -= it->second.cores;
  ways_reserved_ -= it->second.ways;
  bw_reserved_ -= it->second.bw_gbps;
  net_reserved_ -= it->second.net_gbps;
  if (it->second.exclusive) exclusive_ = false;
  allocs_.erase(it);
  refreshOccupancy();
}

const NodeAllocation& NodeLedger::allocation(JobId job) const {
  const NodeAllocation* alloc = find(job);
  SNS_REQUIRE(alloc != nullptr, "job holds nothing on this node");
  return *alloc;
}

double NodeLedger::effectiveWays(JobId job) const {
  return effectiveWays(allocation(job));
}

double NodeLedger::effectiveWays(const NodeAllocation& alloc) const {
  if (alloc.exclusive || alloc.ways == 0) {
    // Exclusive jobs own the whole cache; unpartitioned jobs compete for it
    // (the contention model resolves the free-for-all split).
    return alloc.ways == 0 ? 0.0 : static_cast<double>(mach_->llc_ways);
  }
  const double donated =
      static_cast<double>(freeWays()) / static_cast<double>(jobCount());
  return alloc.ways + donated;
}

}  // namespace sns::actuator
