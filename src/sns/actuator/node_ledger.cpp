#include "sns/actuator/node_ledger.hpp"

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::actuator {

void NodeLedger::refreshOccupancy() {
  occ_cores_ = static_cast<double>(cores_used_) / mach_->cores;
  occ_ways_ = static_cast<double>(ways_reserved_) / mach_->llc_ways;
  occ_bw_ = bw_reserved_ / peak_bw_;
}

void NodeLedger::allocate(JobId job, const NodeAllocation& alloc) {
  SNS_REQUIRE(alloc.cores >= 1, "allocation needs at least one core");
  SNS_REQUIRE(!holds(job), "job already holds resources on this node");
  SNS_REQUIRE(alloc.ways == 0 || alloc.ways >= mach_->min_ways_per_job,
              "CAT partitions need at least min_ways_per_job ways");
  SNS_REQUIRE(fits(alloc), "allocation does not fit on node");
  auto it = std::lower_bound(
      allocs_.begin(), allocs_.end(), job,
      [](const auto& entry, JobId id) { return entry.first < id; });
  allocs_.insert(it, {job, alloc});
  cores_used_ += alloc.cores;
  ways_reserved_ += alloc.ways;
  bw_reserved_ += alloc.bw_gbps;
  net_reserved_ += alloc.net_gbps;
  if (alloc.exclusive) exclusive_ = true;
  if (!alloc.exclusive && alloc.ways > 0) ++partitioned_residents_;
  refreshOccupancy();
}

void NodeLedger::release(JobId job) {
  auto it = std::find_if(allocs_.begin(), allocs_.end(),
                         [job](const auto& entry) { return entry.first == job; });
  SNS_REQUIRE(it != allocs_.end(), "job holds nothing on this node");
  cores_used_ -= it->second.cores;
  ways_reserved_ -= it->second.ways;
  bw_reserved_ -= it->second.bw_gbps;
  net_reserved_ -= it->second.net_gbps;
  if (it->second.exclusive) exclusive_ = false;
  if (!it->second.exclusive && it->second.ways > 0) --partitioned_residents_;
  allocs_.erase(it);
  if (allocs_.empty()) {
    // Summed double reservations can hold a +-1-ULP residue after the last
    // resident leaves ((a+b)-a-b != 0 in floating point), which would make
    // an empty node's fits()/score() depend on its allocation history. Pin
    // the sums to exact zeros: all fully idle nodes are then bit-identical,
    // the invariant the ledger's uniform-idle selection fast path rests on.
    bw_reserved_ = 0.0;
    net_reserved_ = 0.0;
  }
  refreshOccupancy();
}

}  // namespace sns::actuator
