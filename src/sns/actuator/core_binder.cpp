#include "sns/actuator/core_binder.hpp"

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::actuator {

std::vector<int> CoreBinder::bind(JobId job, int cores) {
  SNS_REQUIRE(cores >= 1, "bind() needs cores >= 1");
  SNS_REQUIRE(!bound(job), "job already bound on this node");
  SNS_REQUIRE(cores <= freeCores(), "not enough free cores to bind");

  // Sockets own cores [0, half) and [half, total). Alternate between the
  // sockets so allocations stay balanced.
  const int half = mach_->cores / 2;
  std::vector<int> picked;
  picked.reserve(static_cast<std::size_t>(cores));
  int cursor0 = 0;
  int cursor1 = half;
  bool socket0 = true;
  while (static_cast<int>(picked.size()) < cores) {
    bool advanced = false;
    if (socket0) {
      while (cursor0 < half && !free_[static_cast<std::size_t>(cursor0)]) ++cursor0;
      if (cursor0 < half) {
        picked.push_back(cursor0);
        free_[static_cast<std::size_t>(cursor0)] = false;
        ++cursor0;
        advanced = true;
      }
    } else {
      while (cursor1 < mach_->cores && !free_[static_cast<std::size_t>(cursor1)])
        ++cursor1;
      if (cursor1 < mach_->cores) {
        picked.push_back(cursor1);
        free_[static_cast<std::size_t>(cursor1)] = false;
        ++cursor1;
        advanced = true;
      }
    }
    socket0 = !socket0;
    if (!advanced && cursor0 >= half && cursor1 >= mach_->cores) {
      break;  // both sockets exhausted (cannot happen given the fit check)
    }
  }
  SNS_REQUIRE(static_cast<int>(picked.size()) == cores, "core binding fell short");
  std::sort(picked.begin(), picked.end());
  bindings_[job] = picked;
  return picked;
}

void CoreBinder::unbind(JobId job) {
  auto it = bindings_.find(job);
  SNS_REQUIRE(it != bindings_.end(), "job not bound on this node");
  for (int c : it->second) free_[static_cast<std::size_t>(c)] = true;
  bindings_.erase(it);
}

const std::vector<int>& CoreBinder::binding(JobId job) const {
  auto it = bindings_.find(job);
  SNS_REQUIRE(it != bindings_.end(), "job not bound on this node");
  return it->second;
}

int CoreBinder::freeCores() const {
  return static_cast<int>(std::count(free_.begin(), free_.end(), true));
}

}  // namespace sns::actuator
