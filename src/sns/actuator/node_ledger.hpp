#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sns/hw/machine.hpp"
#include "sns/util/error.hpp"

namespace sns::actuator {

using JobId = std::int64_t;

/// Resources one job holds on one node.
struct NodeAllocation {
  int cores = 0;
  int ways = 0;          ///< CAT-partitioned ways; 0 = no partition (free sharing)
  double bw_gbps = 0.0;  ///< bandwidth reservation (estimated, not enforced —
                         ///< the paper's testbed lacks MBA, §4.4)
  bool exclusive = false;  ///< the job claims the node exclusively (E mode)
  /// NIC bandwidth reservation — the paper's §3.3 extension direction
  /// ("inter-node network ... can be accommodated by the SNS scheduling
  /// algorithm"). 0 when network management is off.
  double net_gbps = 0.0;
};

/// Per-node resource accounting + CAT semantics: way partitioning with the
/// hardware's constraints (minimum 2 ways per partition for associativity,
/// at most 16 partitions, §5.1) and the SNS policy of donating unallocated
/// ways to residents in equal shares, reclaimed when a new job arrives
/// (§4.4).
class NodeLedger {
 public:
  explicit NodeLedger(const hw::MachineConfig& mach)
      : mach_(&mach), peak_bw_(mach.peakBandwidth()) {}

  // ---- capacity queries -----------------------------------------------------
  int idleCores() const { return mach_->cores - cores_used_; }
  int freeWays() const { return mach_->llc_ways - ways_reserved_; }
  double freeBandwidth() const { return peak_bw_ - bw_reserved_; }
  double freeNetwork() const { return mach_->net_bw_gbps - net_reserved_; }
  int jobCount() const { return static_cast<int>(allocs_.size()); }
  bool idle() const { return allocs_.empty(); }
  bool hasExclusiveJob() const { return exclusive_; }
  /// Residents holding a CAT partition (ways > 0, not exclusive) — the
  /// only jobs way donation applies to. Maintained by allocate()/release()
  /// so donation observers can skip the per-resident recompute on the
  /// (dominant) nodes where it provably totals zero.
  int partitionedResidents() const { return partitioned_residents_; }

  /// True if the requested allocation fits; exclusive requests need an
  /// idle node; nothing fits next to an exclusive resident. Inline: the
  /// candidate scans evaluate this for every node they touch.
  bool fits(const NodeAllocation& r) const {
    if (exclusive_) return false;  // resident exclusive job blocks all
    if (r.exclusive && !allocs_.empty()) return false;
    if (r.cores > idleCores()) return false;
    if (r.ways > 0 && jobCount() >= mach_->max_llc_partitions) return false;
    if (r.ways > freeWays()) return false;
    if (r.bw_gbps > freeBandwidth() + 1e-9) return false;
    if (r.net_gbps > freeNetwork() + 1e-9) return false;
    return true;
  }

  /// Legacy convenience overload (no network term).
  bool fits(int cores, int ways, double bw_gbps, bool exclusive) const {
    return fits(NodeAllocation{cores, ways, bw_gbps, exclusive, 0.0});
  }

  // ---- occupancy fractions for the SNS node score (§4.4) --------------------
  // Maintained by allocate()/release() — recomputed from the reserved sums
  // with the same divisions the on-the-fly versions performed, so the
  // cached values are bit-identical; node selection scores thousands of
  // candidates per placement and reads these in a tight loop.
  double coreOccupancy() const { return occ_cores_; }
  double wayOccupancy() const { return occ_ways_; }
  double bwOccupancy() const { return occ_bw_; }

  /// The paper's node-selection metric Co + Bo + beta x Wo.
  double score(double beta) const {
    return coreOccupancy() + bwOccupancy() + beta * wayOccupancy();
  }

  // ---- allocation lifecycle -------------------------------------------------
  /// Reserve resources for a job; throws PreconditionError if it does not
  /// fit or violates CAT constraints.
  void allocate(JobId job, const NodeAllocation& alloc);
  /// Release a job's resources; throws if the job holds nothing here.
  void release(JobId job);
  bool holds(JobId job) const { return find(job) != nullptr; }
  const NodeAllocation& allocation(JobId job) const {
    const NodeAllocation* alloc = find(job);
    SNS_REQUIRE(alloc != nullptr, "job holds nothing on this node");
    return *alloc;
  }
  /// Resident allocations in ascending JobId order. Backed by a sorted
  /// vector: a node hosts at most max_llc_partitions jobs, so linear
  /// operations beat a tree, and the vector's capacity is reused across
  /// the node's whole lifetime — steady-state allocate/release touch the
  /// heap not at all (a std::map paid one tree-node malloc/free per job
  /// per node, which dominated large multi-node placements).
  const std::vector<std::pair<JobId, NodeAllocation>>& allocations() const {
    return allocs_;
  }

  /// Ways actually backing a job's data right now: its partition plus an
  /// equal share of all unallocated ways (CAT partitions can overlap, so
  /// leftover capacity is donated and reclaimed dynamically).
  double effectiveWays(JobId job) const { return effectiveWays(allocation(job)); }
  /// Same, for a caller that already looked the allocation up (the hot
  /// per-node solve path does, and the lookup would otherwise repeat).
  double effectiveWays(const NodeAllocation& alloc) const {
    if (alloc.exclusive || alloc.ways == 0) {
      // Exclusive jobs own the whole cache; unpartitioned jobs compete for
      // it (the contention model resolves the free-for-all split).
      return alloc.ways == 0 ? 0.0 : static_cast<double>(mach_->llc_ways);
    }
    const double donated =
        static_cast<double>(freeWays()) / static_cast<double>(jobCount());
    return alloc.ways + donated;
  }

  const hw::MachineConfig& machine() const { return *mach_; }

 private:
  const NodeAllocation* find(JobId job) const {
    for (const auto& [id, alloc] : allocs_) {
      if (id == job) return &alloc;
    }
    return nullptr;
  }
  void refreshOccupancy();

  const hw::MachineConfig* mach_;
  double peak_bw_;  ///< mach_->peakBandwidth(), hoisted out of fits()
  std::vector<std::pair<JobId, NodeAllocation>> allocs_;  ///< sorted by JobId
  int cores_used_ = 0;
  int ways_reserved_ = 0;
  double bw_reserved_ = 0.0;
  double net_reserved_ = 0.0;
  double occ_cores_ = 0.0;
  double occ_ways_ = 0.0;
  double occ_bw_ = 0.0;
  bool exclusive_ = false;
  int partitioned_residents_ = 0;  ///< see partitionedResidents()
};

}  // namespace sns::actuator
