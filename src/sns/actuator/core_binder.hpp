#pragma once

#include <map>
#include <vector>

#include "sns/actuator/node_ledger.hpp"

namespace sns::actuator {

/// Assigns concrete core IDs to jobs on one node (the cpuset / affinity
/// binding the Uberun actuator performs, §5.1). Cores are handed out in
/// socket-balanced order so a 16-process job lands 8+8 across the two
/// sockets like the paper's runs.
class CoreBinder {
 public:
  explicit CoreBinder(const hw::MachineConfig& mach) : mach_(&mach) {
    free_.resize(static_cast<std::size_t>(mach.cores), true);
  }

  /// Bind `cores` cores for a job; returns the core IDs (socket-balanced).
  /// Throws PreconditionError when not enough cores are free.
  std::vector<int> bind(JobId job, int cores);

  /// Release a job's binding.
  void unbind(JobId job);

  bool bound(JobId job) const { return bindings_.count(job) > 0; }
  const std::vector<int>& binding(JobId job) const;
  int freeCores() const;

 private:
  const hw::MachineConfig* mach_;
  std::vector<bool> free_;
  std::map<JobId, std::vector<int>> bindings_;
};

}  // namespace sns::actuator
