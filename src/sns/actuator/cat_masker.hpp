#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sns/actuator/node_ledger.hpp"

namespace sns::actuator {

/// Concrete CAT class-of-service assignment for one node. NodeLedger
/// accounts way *counts*; real CAT programs contiguous way *bitmasks* into
/// CLOS registers (the hardware requires each mask to be one contiguous
/// run of set bits). This allocator hands out first-fit contiguous runs
/// within the node's way bitmap and recycles them on release — what the
/// Uberun actuator writes via `pqos` on a real machine.
class CatMasker {
 public:
  explicit CatMasker(const hw::MachineConfig& mach) : mach_(&mach) {}

  /// Reserve a contiguous run of `ways` ways for a job. Returns the way
  /// bitmask (bit i = way i). Throws PreconditionError when the job
  /// already holds a mask, the request is below the hardware minimum, or
  /// no contiguous run is free (external fragmentation can make this fail
  /// even when enough total ways are free).
  std::uint32_t allocate(JobId job, int ways);

  /// Release a job's mask.
  void release(JobId job);

  bool holds(JobId job) const { return masks_.count(job) > 0; }
  std::uint32_t mask(JobId job) const;
  /// Ways not covered by any job's mask.
  int freeWays() const;
  /// Longest free contiguous run (what the next allocate can satisfy).
  int largestFreeRun() const;

  /// Render a mask as the hex string `pqos` expects (e.g. "0x00003").
  static std::string toHex(std::uint32_t mask);

 private:
  const hw::MachineConfig* mach_;
  std::uint32_t occupied_ = 0;
  std::map<JobId, std::uint32_t> masks_;
};

}  // namespace sns::actuator
