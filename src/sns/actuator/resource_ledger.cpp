#include "sns/actuator/resource_ledger.hpp"

#include <algorithm>
#include <future>
#include <limits>
#include <map>

#include "sns/util/error.hpp"
#include "sns/util/thread_pool.hpp"

namespace sns::actuator {

namespace {

/// Bound for the selection cache entry map: wipes wholesale when reached —
/// a contended simulation cycles through a few dozen distinct queries, so
/// the bound is not reached in practice.
constexpr std::size_t kMaxCacheEntries = 8192;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Score `ids` into `out` as (score, id) pairs — sharded across pool
/// workers when the candidate set is large enough, serial otherwise.
/// Shards are fixed index ranges and every score lands at its candidate's
/// index, so the filled array is independent of worker timing.
template <typename ScoreFn>
void fillScores(util::ThreadPool* pool, std::size_t min_parallel,
                const int* ids, std::size_t n,
                std::vector<std::pair<double, int>>& out, const ScoreFn& fn) {
  out.resize(n);
  if (pool != nullptr && n >= min_parallel && pool->threadCount() > 1) {
    const std::size_t shards = pool->threadCount();
    const std::size_t chunk = (n + shards - 1) / shards;
    std::vector<std::future<void>> pending;
    pending.reserve(shards - 1);
    for (std::size_t t = 1; t < shards; ++t) {
      const std::size_t b = chunk * t;
      if (b >= n) break;
      const std::size_t e = std::min(n, b + chunk);
      pending.push_back(pool->submit([&out, &fn, ids, b, e] {
        for (std::size_t i = b; i < e; ++i) out[i] = {fn(ids[i]), ids[i]};
      }));
    }
    for (std::size_t i = 0; i < std::min(n, chunk); ++i) {
      out[i] = {fn(ids[i]), ids[i]};
    }
    for (auto& f : pending) f.get();
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = {fn(ids[i]), ids[i]};
}

}  // namespace

ResourceLedger::ResourceLedger(int nodes, const hw::MachineConfig& mach)
    : mach_(&mach) {
  SNS_REQUIRE(nodes >= 1, "ResourceLedger needs at least one node");
  nodes_.assign(static_cast<std::size_t>(nodes), NodeLedger(mach));
  buckets_.assign(static_cast<std::size_t>(mach.cores) + 1, NodeBitset(nodes));
  auto& idle_bucket = buckets_[static_cast<std::size_t>(mach.cores)];
  for (int i = 0; i < nodes; ++i) idle_bucket.insert(i);
  cw_grid_.assign(static_cast<std::size_t>(mach.cores + 1) *
                      static_cast<std::size_t>(mach.llc_ways + 1),
                  0);
  gridCell(mach.cores, mach.llc_ways) = nodes;
}

void ResourceLedger::reindex(int id, int old_idle) {
  const int new_idle = node(id).idleCores();
  if (new_idle == old_idle) return;
  SNS_REQUIRE(buckets_[static_cast<std::size_t>(old_idle)].erase(id),
              "ledger group index corrupt");
  SNS_REQUIRE(buckets_[static_cast<std::size_t>(new_idle)].insert(id),
              "ledger group index corrupt");
}

void ResourceLedger::allocate(int nd, JobId job, const NodeAllocation& alloc) {
  const int old_idle = node(nd).idleCores();
  const int old_fw = node(nd).freeWays();
  mutableNode(nd).allocate(job, alloc);
  total_cores_used_ += alloc.cores;
  total_ways_reserved_ += alloc.ways;
  total_bw_reserved_ += alloc.bw_gbps;
  reindex(nd, old_idle);
  --gridCell(old_idle, old_fw);
  ++gridCell(node(nd).idleCores(), node(nd).freeWays());
  if (cache_on_) noteMutation(old_idle, node(nd).idleCores(), false);
}

void ResourceLedger::release(int nd, JobId job) {
  const int old_idle = node(nd).idleCores();
  const int old_fw = node(nd).freeWays();
  const NodeAllocation alloc = node(nd).allocation(job);
  mutableNode(nd).release(job);
  total_cores_used_ -= alloc.cores;
  total_ways_reserved_ -= alloc.ways;
  total_bw_reserved_ -= alloc.bw_gbps;
  // The bandwidth total is the one float among the cached totals, and a
  // +=/-= pair need not cancel exactly, so an idle cluster can be left with
  // a ~1-ulp residue (the invariant auditor flagged exactly this). An empty
  // cluster is an unambiguous resync point: snap back to exact zero.
  if (total_cores_used_ == 0) total_bw_reserved_ = 0.0;
  reindex(nd, old_idle);
  --gridCell(old_idle, old_fw);
  ++gridCell(node(nd).idleCores(), node(nd).freeWays());
  ++release_epoch_;
  release_idle_watermark_ = std::max(release_idle_watermark_, node(nd).idleCores());
  if (cache_on_) noteMutation(old_idle, node(nd).idleCores(), true);
}

std::vector<int> ResourceLedger::feasibleNodes(const NodeAllocation& request) const {
  query_core_floor_ = std::min(query_core_floor_, request.cores);
  std::vector<int> out;
  if (full_scan_) {
    // Legacy path: regroup all nodes by idle-core count on the fly.
    std::map<int, std::vector<int>> groups;
    for (int id = 0; id < nodeCount(); ++id) {
      groups[nodes_[static_cast<std::size_t>(id)].idleCores()].push_back(id);
    }
    for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
      if (it->first < request.cores) break;
      for (int id : it->second) {
        if (node(id).fits(request)) out.push_back(id);
      }
    }
    return out;
  }
  for (int c = mach_->cores; c >= std::max(0, request.cores); --c) {
    const auto& bucket = buckets_[static_cast<std::size_t>(c)];
    if (bucket.empty()) continue;
    if (c == mach_->cores) {
      scanIdleBucket(bucket, request, std::numeric_limits<std::size_t>::max(),
                     out);
      continue;
    }
    scanBucket(bucket, request, std::numeric_limits<std::size_t>::max(), out);
  }
  return out;
}

void ResourceLedger::scanBucket(const NodeBitset& bucket,
                                const NodeAllocation& request, std::size_t cap,
                                std::vector<int>& dest) const {
  const std::size_t begin = dest.size();
  if (pool_ == nullptr ||
      static_cast<std::size_t>(bucket.size()) < min_parallel_ ||
      pool_->threadCount() <= 1) {
    bucket.scan([&](int id) {
      if (nodes_[static_cast<std::size_t>(id)].fits(request)) dest.push_back(id);
      return dest.size() - begin < cap;
    });
    return;
  }
  // Sharded scan with ordered merge: shard boundaries are fixed bitmap word
  // ranges (a function of node id only), each shard is capped at `cap` (no
  // shard can contribute more than the whole scan keeps), and the merge
  // concatenates shards in order — bit-for-bit the serial scan's capped
  // prefix, regardless of worker timing. Workers read immutable node state
  // and write only their own scratch vector; f.get() sequences every write
  // before the merge.
  const std::size_t shards = pool_->threadCount();
  if (shard_scratch_.size() < shards) shard_scratch_.resize(shards);
  const std::size_t words = bucket.wordCount();
  const std::size_t chunk = (words + shards - 1) / shards;
  const std::size_t used = (words + chunk - 1) / chunk;
  std::vector<std::future<void>> pending;
  pending.reserve(used - 1);
  for (std::size_t t = 1; t < used; ++t) {
    const std::size_t wb = chunk * t;
    const std::size_t we = std::min(words, wb + chunk);
    auto& out = shard_scratch_[t];
    pending.push_back(
        pool_->submit([this, &bucket, &request, &out, wb, we, cap] {
          out.clear();
          bucket.scanWords(wb, we, [&](int id) {
            if (nodes_[static_cast<std::size_t>(id)].fits(request)) {
              out.push_back(id);
            }
            return out.size() < cap;
          });
        }));
  }
  auto& own = shard_scratch_[0];
  own.clear();
  bucket.scanWords(0, std::min(words, chunk), [&](int id) {
    if (nodes_[static_cast<std::size_t>(id)].fits(request)) own.push_back(id);
    return own.size() < cap;
  });
  for (auto& f : pending) f.get();
  for (std::size_t t = 0; t < used; ++t) {
    for (int id : shard_scratch_[t]) {
      if (dest.size() - begin >= cap) return;
      dest.push_back(id);
    }
  }
}

void ResourceLedger::scanIdleBucket(const NodeBitset& bucket,
                                    const NodeAllocation& request,
                                    std::size_t cap,
                                    std::vector<int>& dest) const {
  int rep = -1;
  bucket.scan([&](int id) {
    rep = id;
    return false;
  });
  if (rep < 0 || !nodes_[static_cast<std::size_t>(rep)].fits(request)) return;
  const std::size_t begin = dest.size();
  bucket.scan([&](int id) {
    dest.push_back(id);
    return dest.size() - begin < cap;
  });
}

void ResourceLedger::collectCandidates(const NodeAllocation& request,
                                       std::size_t per_group_cap) const {
  cand_.clear();
  group_end_.clear();
  const int from = std::max(0, request.cores);
  if (full_scan_) {
    std::map<int, std::vector<int>> groups;
    for (int id = 0; id < nodeCount(); ++id) {
      const int idle = nodes_[static_cast<std::size_t>(id)].idleCores();
      if (idle >= from) groups[idle].push_back(id);
    }
    for (const auto& [idle, ids] : groups) {
      std::size_t in_group = 0;
      for (int id : ids) {
        if (node(id).fits(request)) {
          cand_.push_back(id);
          ++in_group;
        }
        if (in_group >= per_group_cap) break;
      }
      group_end_.push_back(cand_.size());
    }
    return;
  }
  for (int c = from; c <= mach_->cores; ++c) {
    const auto& bucket = buckets_[static_cast<std::size_t>(c)];
    if (bucket.empty()) continue;
    if (request.exclusive && c < mach_->cores) {
      // idleCores < cores proves a resident holds >= 1 core, so an
      // exclusive request cannot fit anywhere in this bucket; keep the
      // (empty) group so the group structure matches the per-node scan.
      group_end_.push_back(cand_.size());
      continue;
    }
    if (c == mach_->cores) {
      scanIdleBucket(bucket, request, per_group_cap, cand_);
    } else {
      scanBucket(bucket, request, per_group_cap, cand_);
    }
    group_end_.push_back(cand_.size());
  }
}

std::vector<int> ResourceLedger::selectNodes(int count, const NodeAllocation& request,
                                             double beta) const {
  SNS_REQUIRE(count >= 1, "selectNodes() needs count >= 1");
  query_core_floor_ = std::min(query_core_floor_, request.cores);

  // Exclusive requests are a provable special case: they only fit on
  // completely idle nodes (every resident allocation holds >= 1 core), so
  // all candidates live in one group and score exactly 0.0 — the ranked
  // prefix is the first `count` candidates, making any scan window
  // >= count equivalent and the scoring pass unnecessary. CE and the
  // E-mode arm of SNS place this request for every multi-node job, with
  // `count` in the thousands on Fig 20 clusters. Already O(1) on failure,
  // so the selection cache skips them.
  if (request.exclusive) {
    // Candidates can only be fully idle nodes, so when the free list is
    // already too small the scan cannot succeed — failed placement
    // attempts (a deep queue probing an overcommitted cluster every
    // scheduling point) cost O(1) instead of a walk over every idle node.
    // The full-scan path reaches the same empty answer by scanning.
    if (!full_scan_ &&
        buckets_[static_cast<std::size_t>(mach_->cores)].size() < count) {
      return {};
    }
    collectCandidates(request, static_cast<std::size_t>(count));
    if (cand_.size() < static_cast<std::size_t>(count)) return {};
    std::size_t begin = 0;
    for (std::size_t end : group_end_) {
      if (end - begin >= static_cast<std::size_t>(count)) {
        return {cand_.begin() + static_cast<std::ptrdiff_t>(begin),
                cand_.begin() + static_cast<std::ptrdiff_t>(begin + count)};
      }
      begin = end;
    }
    return {};
  }

  if (!cache_on_) return selectNodesRanked(count, request, beta);
  const SelectQuery q = makeQuery(/*kind=*/0, count, request, beta);
  if (const std::vector<int>* hit = cacheLookup(q)) return *hit;
  std::vector<int> out;
  // Fast fail: the suffix bucket population bounds the feasible set from
  // above, so fewer than `count` nodes with enough idle cores proves the
  // scans below would come back empty — without reading one node ledger.
  if (feasibleUpperBound(request.cores, request.ways, count) >= count) {
    out = selectNodesRanked(count, request, beta);
  }
  cacheStore(q, out, count, request, beta, /*kind=*/0);
  return out;
}

std::vector<int> ResourceLedger::selectNodesRanked(int count,
                                                   const NodeAllocation& request,
                                                   double beta) const {
  // Rank `ids` by the node score Co + Bo + beta x Wo (hoisted: one score
  // evaluation per candidate, not per comparison), id as the deterministic
  // tie-break, and return the best `count`. Only the winning prefix is
  // needed, so partial_sort suffices: the comparator is a strict total
  // order, making the prefix identical to a full sort's.
  // `ids_ascending` marks callers whose candidate list is already in
  // ascending id order (a single group's scan); when additionally every
  // candidate scores the same, the ranked prefix is just the first `count`
  // ids, no sort needed.
  auto best = [&](const int* ids, std::size_t n, bool ids_ascending) {
    fillScores(pool_, min_parallel_, ids, n, rank_scratch_, [&](int id) {
      return nodes_[static_cast<std::size_t>(id)].score(beta);
    });
    bool uniform = true;
    for (std::size_t i = 1; i < n && uniform; ++i) {
      uniform = rank_scratch_[i].first == rank_scratch_.front().first;
    }
    if (!(uniform && ids_ascending)) {
      // Identical prefix any way it is produced (strict total order, so
      // the sorted prefix is unique). Heap-based partial_sort pays off
      // when the prefix is a small slice; otherwise partition the winners
      // to the front in O(n) and sort only them — a full sort paid
      // n log n for a prefix the callers never read past.
      const auto mid =
          rank_scratch_.begin() + static_cast<std::ptrdiff_t>(count);
      if (static_cast<std::size_t>(count) * 4 >= n) {
        if (static_cast<std::size_t>(count) < n) {
          std::nth_element(rank_scratch_.begin(), mid, rank_scratch_.end());
        }
        std::sort(rank_scratch_.begin(), mid);
      } else {
        std::partial_sort(rank_scratch_.begin(), mid, rank_scratch_.end());
      }
    }
    std::vector<int> out(static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = rank_scratch_[i].second;
    return out;
  };

  // Walk feasible groups best-fit first (least idle cores that still hold
  // the request): the first group that can satisfy the whole request on
  // its own wins, which keeps per-group consumption even and preserves
  // fully idle nodes for large jobs (the paper's fragmentation-reduction
  // rule, §4.4). Within a group, the least-loaded nodes win by the score
  // Co + Bo + beta x Wo. If no single group suffices, fall back to the
  // idlest feasible nodes cluster-wide. Bucket scans are capped so a
  // single placement stays sub-linear on 32K-node clusters.
  const std::size_t scan_cap =
      std::max<std::size_t>(64, 2 * static_cast<std::size_t>(count) + 8);
  if (full_scan_) {
    collectCandidates(request, scan_cap);
    std::size_t begin = 0;
    for (std::size_t end : group_end_) {
      if (end - begin >= static_cast<std::size_t>(count)) {
        return best(cand_.data() + begin, end - begin, /*ids_ascending=*/true);
      }
      begin = end;
    }
    // No single group suffices: fall back to all feasible candidates, which
    // is exactly the flattened group concatenation (ascending only within
    // each group, so the shortcut does not apply).
    if (cand_.size() < static_cast<std::size_t>(count)) return {};
    return best(cand_.data(), cand_.size(), /*ids_ascending=*/false);
  }
  // Indexed arm: walk buckets lazily, best-fit first, and stop at the
  // first group that satisfies the whole request on its own — identical
  // to collecting every group up front and then walking (the winning
  // group's candidates don't depend on groups after it), but a typical
  // placement ends after one bucket instead of scanning all of them.
  cand_.clear();
  group_end_.clear();
  for (int c = std::max(0, request.cores); c <= mach_->cores; ++c) {
    const auto& bucket = buckets_[static_cast<std::size_t>(c)];
    if (bucket.empty()) continue;
    const std::size_t begin = cand_.size();
    if (c == mach_->cores) {
      scanIdleBucket(bucket, request, scan_cap, cand_);
    } else {
      scanBucket(bucket, request, scan_cap, cand_);
    }
    group_end_.push_back(cand_.size());
    if (cand_.size() - begin >= static_cast<std::size_t>(count)) {
      if (c == mach_->cores) {
        // Every fully idle node scores exactly 0.0 (pinned zero
        // reservations), so the uniform + ids_ascending shortcut in
        // best() applies analytically: the answer is the first `count`
        // ids, no score fill needed.
        return {cand_.begin() + static_cast<std::ptrdiff_t>(begin),
                cand_.begin() + static_cast<std::ptrdiff_t>(
                                    begin + static_cast<std::size_t>(count))};
      }
      return best(cand_.data() + begin, cand_.size() - begin,
                  /*ids_ascending=*/true);
    }
  }
  // No single group sufficed; every bucket has been scanned above, so the
  // flattened concatenation is complete.
  if (cand_.size() < static_cast<std::size_t>(count)) return {};
  return best(cand_.data(), cand_.size(), /*ids_ascending=*/false);
}

std::vector<int> ResourceLedger::selectNodesByAlignment(
    int count, const NodeAllocation& request) const {
  SNS_REQUIRE(count >= 1, "selectNodesByAlignment() needs count >= 1");
  query_core_floor_ = std::min(query_core_floor_, request.cores);
  if (!cache_on_ || request.exclusive) return selectNodesAligned(count, request);
  const SelectQuery q = makeQuery(/*kind=*/1, count, request, /*beta=*/0.0);
  if (const std::vector<int>* hit = cacheLookup(q)) return *hit;
  std::vector<int> out;
  if (feasibleUpperBound(request.cores, request.ways, count) >= count) {
    out = selectNodesAligned(count, request);
  }
  cacheStore(q, out, count, request, /*beta=*/0.0, /*kind=*/1);
  return out;
}

std::vector<int> ResourceLedger::selectNodesAligned(
    int count, const NodeAllocation& request) const {
  auto candidates = feasibleNodes(request);
  if (static_cast<int>(candidates.size()) < count) return {};

  // Normalize each dimension by its node capacity so cores, ways, memory
  // bandwidth and NIC bandwidth weigh equally.
  const double req[4] = {
      static_cast<double>(request.cores) / mach_->cores,
      static_cast<double>(request.ways) / mach_->llc_ways,
      request.bw_gbps / mach_->peakBandwidth(),
      request.net_gbps / mach_->net_bw_gbps,
  };
  auto alignment = [&](int id) {
    const NodeLedger& n = node(id);
    const double free[4] = {
        static_cast<double>(n.idleCores()) / mach_->cores,
        static_cast<double>(n.freeWays()) / mach_->llc_ways,
        n.freeBandwidth() / mach_->peakBandwidth(),
        n.freeNetwork() / mach_->net_bw_gbps,
    };
    double dot = 0.0;
    for (int d = 0; d < 4; ++d) dot += req[d] * free[d];
    return dot;
  };

  // Only the top `count` are needed: precompute each candidate's alignment
  // once and partial-sort, instead of the old full O(N log N) sort with
  // the dot product re-derived inside the comparator. The comparator is a
  // strict total order (id tie-break), so the selected prefix is identical
  // to what a full sort would produce.
  std::vector<std::pair<double, int>> scored;
  fillScores(pool_, min_parallel_, candidates.data(), candidates.size(),
             scored, alignment);
  std::partial_sort(scored.begin(), scored.begin() + count, scored.end(),
                    [](const std::pair<double, int>& a,
                       const std::pair<double, int>& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  candidates.resize(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    candidates[static_cast<std::size_t>(i)] = scored[static_cast<std::size_t>(i)].second;
  }
  return candidates;
}

int ResourceLedger::idleNodeCount() const {
  if (full_scan_) {
    int idle = 0;
    for (const NodeLedger& n : nodes_) idle += n.idle() ? 1 : 0;
    return idle;
  }
  return static_cast<int>(buckets_[static_cast<std::size_t>(mach_->cores)].size());
}

// ---- selection cache --------------------------------------------------------

void ResourceLedger::setSelectionCache(bool on) {
  cache_on_ = on;
  sel_cache_.clear();
  // With no live entries the suffix stacks protect nothing; restart them.
  mut_suffix_.clear();
  rel_suffix_.clear();
  cache_hits_ = 0;
  cache_misses_ = 0;
}

void ResourceLedger::setSearchPool(util::ThreadPool* pool,
                                   int min_parallel_nodes) {
  pool_ = pool;
  min_parallel_ = static_cast<std::size_t>(std::max(1, min_parallel_nodes));
}

ResourceLedger::SelectQuery ResourceLedger::makeQuery(
    int kind, int count, const NodeAllocation& request, double beta) {
  SelectQuery q;
  q.kind = kind;
  q.count = count;
  q.cores = request.cores;
  q.ways = request.ways;
  q.bw_bits = std::bit_cast<std::uint64_t>(request.bw_gbps);
  q.net_bits = std::bit_cast<std::uint64_t>(request.net_gbps);
  q.beta_bits = std::bit_cast<std::uint64_t>(beta);
  return q;
}

std::size_t ResourceLedger::SelectQueryHash::operator()(
    const SelectQuery& q) const {
  std::uint64_t h =
      mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(q.kind)) << 48) ^
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(q.count)) << 32) ^
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(q.cores)) << 16) ^
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(q.ways)));
  h = mix64(h ^ q.bw_bits);
  h = mix64(h ^ q.net_bits);
  h = mix64(h ^ q.beta_bits);
  return static_cast<std::size_t>(h);
}

void ResourceLedger::noteMutation(int old_idle, int new_idle, bool released) {
  ++change_version_;
  if (released) last_release_version_ = change_version_;
  const std::int32_t max_idle =
      static_cast<std::int32_t>(std::max(old_idle, new_idle));
  const auto push = [this, max_idle](SuffixStack& st) {
    // A newer mutation with an equal-or-greater max_idle dominates every
    // suffix an older entry could answer for; drop the dominated tail.
    while (!st.empty() && st.back().second <= max_idle) st.pop_back();
    st.push_back({change_version_, max_idle});
  };
  push(mut_suffix_);
  if (released) push(rel_suffix_);
}

namespace {
/// Max of max_idle over all stack entries with version > after, or -1 when
/// there are none. Entries are strictly decreasing in value as versions
/// increase (see mut_suffix_), so the answer is the first entry past
/// `after`.
std::int32_t suffixMaxIdle(
    const std::vector<std::pair<std::uint64_t, std::int32_t>>& st,
    std::uint64_t after) {
  const auto it = std::upper_bound(
      st.begin(), st.end(), after,
      [](std::uint64_t v, const auto& e) { return v < e.first; });
  return it == st.end() ? -1 : it->second;
}
}  // namespace

bool ResourceLedger::entryStillValid(const CacheEntry& e) const {
  if (e.version == change_version_) return true;
  const int from = std::max(0, e.request.cores);
  if (e.nodes.empty()) {
    // Failure certificate: an empty result proved fewer than `count` nodes
    // could hold the request. Allocations only shrink capacity, so the
    // conclusion stands until a release — and only a release that lifts
    // the freed node's idle cores into the scanned range [cores, max]
    // can add a node the query would now see (a release's max_idle IS its
    // post-release idle count, since releasing only raises it).
    if (last_release_version_ <= e.version) return true;
    return suffixMaxIdle(rel_suffix_, e.version) < from;
  }
  // Node-level revalidation: the query read exactly the nodes whose
  // idle-core count lies in [request.cores, cores]. A mutation whose
  // touched node stayed below that range (before and after) cannot have
  // changed any input the query read; if every mutation since the fill is
  // such a mutation, the result is unchanged.
  return suffixMaxIdle(mut_suffix_, e.version) < from;
}

const std::vector<int>* ResourceLedger::cacheLookup(const SelectQuery& q) const {
  const auto it = sel_cache_.find(q);
  if (it != sel_cache_.end() && entryStillValid(it->second)) {
    // Touch: the entry is proven valid at the current version, so future
    // checks only need to consider mutations from here on.
    it->second.version = change_version_;
    ++cache_hits_;
    return &it->second.nodes;
  }
  ++cache_misses_;
  return nullptr;
}

void ResourceLedger::cacheStore(const SelectQuery& q,
                                const std::vector<int>& result, int count,
                                const NodeAllocation& request, double beta,
                                int kind) const {
  if (sel_cache_.size() >= kMaxCacheEntries) {
    sel_cache_.clear();
    // With no live entries the history protects nothing; restart it.
    mut_suffix_.clear();
    rel_suffix_.clear();
  }
  CacheEntry e;
  e.nodes = result;
  e.version = change_version_;
  e.request = request;
  e.count = count;
  e.kind = kind;
  e.beta = beta;
  sel_cache_[q] = std::move(e);
}

int ResourceLedger::feasibleUpperBound(int from, int ways, int enough) const {
  // #{nodes : idleCores >= from AND freeWays >= ways} — counted exactly
  // from the (idle-cores x free-ways) population grid, so it bounds the
  // feasible set from above (fits() additionally checks bandwidth,
  // network and exclusivity, which only shrink it further). Callers pass
  // the candidate count they need in `enough`: the suffix sum stops as
  // soon as the bound proves the scan could succeed, so the common
  // feasible case costs a handful of adds and the provably-empty case at
  // most one pass over the grid.
  int n = 0;
  const int w0 = std::max(0, ways);
  for (int c = mach_->cores; c >= std::max(0, from); --c) {
    const std::int32_t* row = cw_grid_.data() +
                              static_cast<std::size_t>(c) *
                                  static_cast<std::size_t>(mach_->llc_ways + 1);
    for (int w = w0; w <= mach_->llc_ways; ++w) n += row[w];
    if (n >= enough) return n;
  }
  return n;
}

std::vector<std::string> ResourceLedger::auditSelectionCache() const {
  std::vector<std::string> out;
  if (!cache_on_) return out;
  // Violations are sorted below, so map order never reaches output.
  for (const auto& [q, e] : sel_cache_) {  // snslint: allow(unordered-iteration)
    // An entry the lookup would not serve recomputes on next use; only
    // currently-reusable entries can return stale data.
    if (!entryStillValid(e)) continue;
    const std::vector<int> fresh =
        e.kind == 1 ? selectNodesAligned(e.count, e.request)
                    : selectNodesRanked(e.count, e.request, e.beta);
    if (fresh != e.nodes) {
      out.push_back("selection cache entry stale: kind=" + std::to_string(e.kind) +
                    " count=" + std::to_string(e.count) +
                    " cores=" + std::to_string(e.request.cores) +
                    " cached_n=" + std::to_string(e.nodes.size()) +
                    " fresh_n=" + std::to_string(fresh.size()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sns::actuator
