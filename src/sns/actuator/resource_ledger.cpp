#include "sns/actuator/resource_ledger.hpp"

#include <algorithm>
#include <map>

#include "sns/util/error.hpp"

namespace sns::actuator {

ResourceLedger::ResourceLedger(int nodes, const hw::MachineConfig& mach)
    : mach_(&mach) {
  SNS_REQUIRE(nodes >= 1, "ResourceLedger needs at least one node");
  nodes_.assign(static_cast<std::size_t>(nodes), NodeLedger(mach));
  buckets_.assign(static_cast<std::size_t>(mach.cores) + 1, NodeBitset(nodes));
  auto& idle_bucket = buckets_[static_cast<std::size_t>(mach.cores)];
  for (int i = 0; i < nodes; ++i) idle_bucket.insert(i);
}

const NodeLedger& ResourceLedger::node(int id) const {
  SNS_REQUIRE(id >= 0 && id < nodeCount(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

NodeLedger& ResourceLedger::mutableNode(int id) {
  SNS_REQUIRE(id >= 0 && id < nodeCount(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

void ResourceLedger::reindex(int id, int old_idle) {
  const int new_idle = node(id).idleCores();
  if (new_idle == old_idle) return;
  SNS_REQUIRE(buckets_[static_cast<std::size_t>(old_idle)].erase(id),
              "ledger group index corrupt");
  SNS_REQUIRE(buckets_[static_cast<std::size_t>(new_idle)].insert(id),
              "ledger group index corrupt");
}

void ResourceLedger::allocate(int nd, JobId job, const NodeAllocation& alloc) {
  const int old_idle = node(nd).idleCores();
  mutableNode(nd).allocate(job, alloc);
  total_cores_used_ += alloc.cores;
  total_ways_reserved_ += alloc.ways;
  total_bw_reserved_ += alloc.bw_gbps;
  reindex(nd, old_idle);
}

void ResourceLedger::release(int nd, JobId job) {
  const int old_idle = node(nd).idleCores();
  const NodeAllocation alloc = node(nd).allocation(job);
  mutableNode(nd).release(job);
  total_cores_used_ -= alloc.cores;
  total_ways_reserved_ -= alloc.ways;
  total_bw_reserved_ -= alloc.bw_gbps;
  // The bandwidth total is the one float among the cached totals, and a
  // +=/-= pair need not cancel exactly, so an idle cluster can be left with
  // a ~1-ulp residue (the invariant auditor flagged exactly this). An empty
  // cluster is an unambiguous resync point: snap back to exact zero.
  if (total_cores_used_ == 0) total_bw_reserved_ = 0.0;
  reindex(nd, old_idle);
}

std::vector<int> ResourceLedger::feasibleNodes(const NodeAllocation& request) const {
  std::vector<int> out;
  if (full_scan_) {
    // Legacy path: regroup all nodes by idle-core count on the fly.
    std::map<int, std::vector<int>> groups;
    for (int id = 0; id < nodeCount(); ++id) {
      groups[nodes_[static_cast<std::size_t>(id)].idleCores()].push_back(id);
    }
    for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
      if (it->first < request.cores) break;
      for (int id : it->second) {
        if (node(id).fits(request)) out.push_back(id);
      }
    }
    return out;
  }
  for (int c = mach_->cores; c >= std::max(0, request.cores); --c) {
    buckets_[static_cast<std::size_t>(c)].scan([&](int id) {
      if (node(id).fits(request)) out.push_back(id);
      return true;
    });
  }
  return out;
}

void ResourceLedger::collectCandidates(const NodeAllocation& request,
                                       std::size_t per_group_cap) const {
  cand_.clear();
  group_end_.clear();
  const int from = std::max(0, request.cores);
  if (full_scan_) {
    std::map<int, std::vector<int>> groups;
    for (int id = 0; id < nodeCount(); ++id) {
      const int idle = nodes_[static_cast<std::size_t>(id)].idleCores();
      if (idle >= from) groups[idle].push_back(id);
    }
    for (const auto& [idle, ids] : groups) {
      std::size_t in_group = 0;
      for (int id : ids) {
        if (node(id).fits(request)) {
          cand_.push_back(id);
          ++in_group;
        }
        if (in_group >= per_group_cap) break;
      }
      group_end_.push_back(cand_.size());
    }
    return;
  }
  for (int c = from; c <= mach_->cores; ++c) {
    const auto& bucket = buckets_[static_cast<std::size_t>(c)];
    if (bucket.empty()) continue;
    const std::size_t begin = cand_.size();
    bucket.scan([&](int id) {
      if (nodes_[static_cast<std::size_t>(id)].fits(request)) cand_.push_back(id);
      return cand_.size() - begin < per_group_cap;
    });
    group_end_.push_back(cand_.size());
  }
}

std::vector<int> ResourceLedger::selectNodes(int count, const NodeAllocation& request,
                                             double beta) const {
  SNS_REQUIRE(count >= 1, "selectNodes() needs count >= 1");

  // Rank `ids` by the node score Co + Bo + beta x Wo (hoisted: one score
  // evaluation per candidate, not per comparison), id as the deterministic
  // tie-break, and return the best `count`. Only the winning prefix is
  // needed, so partial_sort suffices: the comparator is a strict total
  // order, making the prefix identical to a full sort's.
  // `ids_ascending` marks callers whose candidate list is already in
  // ascending id order (a single group's scan); when additionally every
  // candidate scores the same — the dominant case for exclusive requests,
  // where all candidates are fully idle and score exactly 0.0 — the ranked
  // prefix is just the first `count` ids, no sort needed.
  auto best = [&](const int* ids, std::size_t n, bool ids_ascending) {
    rank_scratch_.clear();
    bool uniform = true;
    for (std::size_t i = 0; i < n; ++i) {
      const int id = ids[i];
      const double s = nodes_[static_cast<std::size_t>(id)].score(beta);
      uniform = uniform && (i == 0 || s == rank_scratch_.front().first);
      rank_scratch_.emplace_back(s, id);
    }
    if (!(uniform && ids_ascending)) {
      // Identical prefix either way (strict total order); heap-based
      // partial_sort only pays off when the prefix is a small slice.
      if (static_cast<std::size_t>(count) * 4 >= n) {
        std::sort(rank_scratch_.begin(), rank_scratch_.end());
      } else {
        std::partial_sort(
            rank_scratch_.begin(),
            rank_scratch_.begin() + static_cast<std::ptrdiff_t>(count),
            rank_scratch_.end());
      }
    }
    std::vector<int> out(static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = rank_scratch_[i].second;
    return out;
  };

  // Walk feasible groups best-fit first (least idle cores that still hold
  // the request): the first group that can satisfy the whole request on
  // its own wins, which keeps per-group consumption even and preserves
  // fully idle nodes for large jobs (the paper's fragmentation-reduction
  // rule, §4.4). Within a group, the least-loaded nodes win by the score
  // Co + Bo + beta x Wo. If no single group suffices, fall back to the
  // idlest feasible nodes cluster-wide. Bucket scans are capped so a
  // single placement stays sub-linear on 32K-node clusters.
  // Exclusive requests are a provable special case: they only fit on
  // completely idle nodes (every resident allocation holds >= 1 core), so
  // all candidates live in one group and score exactly 0.0 — the ranked
  // prefix is the first `count` candidates, making any scan window
  // >= count equivalent and the scoring pass unnecessary. CE and the
  // E-mode arm of SNS place this request for every multi-node job, with
  // `count` in the thousands on Fig 20 clusters.
  if (request.exclusive) {
    // Candidates can only be fully idle nodes, so when the free list is
    // already too small the scan cannot succeed — failed placement
    // attempts (a deep queue probing an overcommitted cluster every
    // scheduling point) cost O(1) instead of a walk over every idle node.
    // The full-scan path reaches the same empty answer by scanning.
    if (!full_scan_ &&
        buckets_[static_cast<std::size_t>(mach_->cores)].size() < count) {
      return {};
    }
    collectCandidates(request, static_cast<std::size_t>(count));
    if (cand_.size() < static_cast<std::size_t>(count)) return {};
    std::size_t begin = 0;
    for (std::size_t end : group_end_) {
      if (end - begin >= static_cast<std::size_t>(count)) {
        return {cand_.begin() + static_cast<std::ptrdiff_t>(begin),
                cand_.begin() + static_cast<std::ptrdiff_t>(begin + count)};
      }
      begin = end;
    }
    return {};
  }

  const std::size_t scan_cap =
      std::max<std::size_t>(64, 2 * static_cast<std::size_t>(count) + 8);
  collectCandidates(request, scan_cap);
  std::size_t begin = 0;
  for (std::size_t end : group_end_) {
    if (end - begin >= static_cast<std::size_t>(count)) {
      return best(cand_.data() + begin, end - begin, /*ids_ascending=*/true);
    }
    begin = end;
  }
  // No single group suffices: fall back to all feasible candidates, which
  // is exactly the flattened group concatenation (ascending only within
  // each group, so the shortcut does not apply).
  if (cand_.size() < static_cast<std::size_t>(count)) return {};
  return best(cand_.data(), cand_.size(), /*ids_ascending=*/false);
}

std::vector<int> ResourceLedger::selectNodesByAlignment(
    int count, const NodeAllocation& request) const {
  SNS_REQUIRE(count >= 1, "selectNodesByAlignment() needs count >= 1");
  auto candidates = feasibleNodes(request);
  if (static_cast<int>(candidates.size()) < count) return {};

  // Normalize each dimension by its node capacity so cores, ways, memory
  // bandwidth and NIC bandwidth weigh equally.
  const double req[4] = {
      static_cast<double>(request.cores) / mach_->cores,
      static_cast<double>(request.ways) / mach_->llc_ways,
      request.bw_gbps / mach_->peakBandwidth(),
      request.net_gbps / mach_->net_bw_gbps,
  };
  auto alignment = [&](int id) {
    const NodeLedger& n = node(id);
    const double free[4] = {
        static_cast<double>(n.idleCores()) / mach_->cores,
        static_cast<double>(n.freeWays()) / mach_->llc_ways,
        n.freeBandwidth() / mach_->peakBandwidth(),
        n.freeNetwork() / mach_->net_bw_gbps,
    };
    double dot = 0.0;
    for (int d = 0; d < 4; ++d) dot += req[d] * free[d];
    return dot;
  };

  // Only the top `count` are needed: precompute each candidate's alignment
  // once and partial-sort, instead of the old full O(N log N) sort with
  // the dot product re-derived inside the comparator. The comparator is a
  // strict total order (id tie-break), so the selected prefix is identical
  // to what a full sort would produce.
  std::vector<std::pair<double, int>> scored;
  scored.reserve(candidates.size());
  for (int id : candidates) scored.emplace_back(alignment(id), id);
  std::partial_sort(scored.begin(), scored.begin() + count, scored.end(),
                    [](const std::pair<double, int>& a,
                       const std::pair<double, int>& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  candidates.resize(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    candidates[static_cast<std::size_t>(i)] = scored[static_cast<std::size_t>(i)].second;
  }
  return candidates;
}

int ResourceLedger::idleNodeCount() const {
  if (full_scan_) {
    int idle = 0;
    for (const NodeLedger& n : nodes_) idle += n.idle() ? 1 : 0;
    return idle;
  }
  return static_cast<int>(buckets_[static_cast<std::size_t>(mach_->cores)].size());
}

}  // namespace sns::actuator
