#include "sns/actuator/resource_ledger.hpp"

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::actuator {

ResourceLedger::ResourceLedger(int nodes, const hw::MachineConfig& mach)
    : mach_(&mach) {
  SNS_REQUIRE(nodes >= 1, "ResourceLedger needs at least one node");
  nodes_.assign(static_cast<std::size_t>(nodes), NodeLedger(mach));
  auto& idle_group = groups_[mach.cores];
  for (int i = 0; i < nodes; ++i) idle_group.insert(i);
}

const NodeLedger& ResourceLedger::node(int id) const {
  SNS_REQUIRE(id >= 0 && id < nodeCount(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

NodeLedger& ResourceLedger::mutableNode(int id) {
  SNS_REQUIRE(id >= 0 && id < nodeCount(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

void ResourceLedger::reindex(int id, int old_idle) {
  const int new_idle = node(id).idleCores();
  if (new_idle == old_idle) return;
  auto it = groups_.find(old_idle);
  SNS_REQUIRE(it != groups_.end() && it->second.erase(id) == 1,
              "ledger group index corrupt");
  if (it->second.empty()) groups_.erase(it);
  groups_[new_idle].insert(id);
}

void ResourceLedger::allocate(int nd, JobId job, const NodeAllocation& alloc) {
  const int old_idle = node(nd).idleCores();
  mutableNode(nd).allocate(job, alloc);
  reindex(nd, old_idle);
}

void ResourceLedger::release(int nd, JobId job) {
  const int old_idle = node(nd).idleCores();
  mutableNode(nd).release(job);
  reindex(nd, old_idle);
}

std::vector<int> ResourceLedger::feasibleNodes(const NodeAllocation& request) const {
  std::vector<int> out;
  for (auto it = groups_.rbegin(); it != groups_.rend(); ++it) {
    if (it->first < request.cores) break;  // remaining groups have fewer idle cores
    for (int id : it->second) {
      if (node(id).fits(request)) out.push_back(id);
    }
  }
  return out;
}

std::vector<int> ResourceLedger::selectNodes(int count, const NodeAllocation& request,
                                             double beta) const {
  SNS_REQUIRE(count >= 1, "selectNodes() needs count >= 1");

  auto byScore = [&](int a, int b) {
    const double sa = node(a).score(beta);
    const double sb = node(b).score(beta);
    if (sa != sb) return sa < sb;
    return a < b;  // deterministic tie-break
  };

  // Walk feasible groups best-fit first (least idle cores that still hold
  // the request): the first group that can satisfy the whole request on
  // its own wins, which keeps per-group consumption even and preserves
  // fully idle nodes for large jobs (the paper's fragmentation-reduction
  // rule, §4.4). Within a group, the least-loaded nodes win by the score
  // Co + Bo + beta x Wo. If no single group suffices, fall back to the
  // idlest feasible nodes cluster-wide. Bucket scans are capped so a
  // single placement stays sub-linear on 32K-node clusters.
  const std::size_t scan_cap =
      std::max<std::size_t>(64, 2 * static_cast<std::size_t>(count) + 8);
  std::vector<int> accumulated;
  for (auto it = groups_.lower_bound(request.cores); it != groups_.end(); ++it) {
    std::vector<int> in_group;
    for (int id : it->second) {
      if (node(id).fits(request)) in_group.push_back(id);
      if (in_group.size() >= scan_cap) break;
    }
    if (static_cast<int>(in_group.size()) >= count) {
      std::sort(in_group.begin(), in_group.end(), byScore);
      in_group.resize(static_cast<std::size_t>(count));
      return in_group;
    }
    accumulated.insert(accumulated.end(), in_group.begin(), in_group.end());
  }
  if (static_cast<int>(accumulated.size()) < count) return {};
  std::sort(accumulated.begin(), accumulated.end(), byScore);
  accumulated.resize(static_cast<std::size_t>(count));
  return accumulated;
}

std::vector<int> ResourceLedger::selectNodesByAlignment(
    int count, const NodeAllocation& request) const {
  SNS_REQUIRE(count >= 1, "selectNodesByAlignment() needs count >= 1");
  auto candidates = feasibleNodes(request);
  if (static_cast<int>(candidates.size()) < count) return {};

  // Normalize each dimension by its node capacity so cores, ways, memory
  // bandwidth and NIC bandwidth weigh equally.
  const double req[4] = {
      static_cast<double>(request.cores) / mach_->cores,
      static_cast<double>(request.ways) / mach_->llc_ways,
      request.bw_gbps / mach_->peakBandwidth(),
      request.net_gbps / mach_->net_bw_gbps,
  };
  auto alignment = [&](int id) {
    const NodeLedger& n = node(id);
    const double free[4] = {
        static_cast<double>(n.idleCores()) / mach_->cores,
        static_cast<double>(n.freeWays()) / mach_->llc_ways,
        n.freeBandwidth() / mach_->peakBandwidth(),
        n.freeNetwork() / mach_->net_bw_gbps,
    };
    double dot = 0.0;
    for (int d = 0; d < 4; ++d) dot += req[d] * free[d];
    return dot;
  };

  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const double da = alignment(a);
    const double db = alignment(b);
    if (da != db) return da > db;  // best alignment first
    return a < b;
  });
  candidates.resize(static_cast<std::size_t>(count));
  return candidates;
}

int ResourceLedger::idleNodeCount() const {
  auto it = groups_.find(mach_->cores);
  return it == groups_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace sns::actuator
