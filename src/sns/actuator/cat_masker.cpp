#include "sns/actuator/cat_masker.hpp"

#include <algorithm>
#include <cstdio>

#include "sns/util/error.hpp"

namespace sns::actuator {

std::uint32_t CatMasker::allocate(JobId job, int ways) {
  SNS_REQUIRE(!holds(job), "job already holds a CAT mask");
  SNS_REQUIRE(ways >= mach_->min_ways_per_job,
              "CAT masks need at least min_ways_per_job ways");
  SNS_REQUIRE(ways <= mach_->llc_ways, "mask wider than the LLC");
  SNS_REQUIRE(static_cast<int>(masks_.size()) < mach_->max_llc_partitions,
              "CLOS register count exhausted");

  const auto run = static_cast<std::uint32_t>((1ULL << ways) - 1);
  for (int shift = 0; shift + ways <= mach_->llc_ways; ++shift) {
    const std::uint32_t candidate = run << shift;
    if ((candidate & occupied_) == 0) {
      occupied_ |= candidate;
      masks_[job] = candidate;
      return candidate;
    }
  }
  throw util::PreconditionError("no contiguous run of " + std::to_string(ways) +
                                " free ways (fragmentation)");
}

void CatMasker::release(JobId job) {
  auto it = masks_.find(job);
  SNS_REQUIRE(it != masks_.end(), "job holds no CAT mask");
  occupied_ &= ~it->second;
  masks_.erase(it);
}

std::uint32_t CatMasker::mask(JobId job) const {
  auto it = masks_.find(job);
  SNS_REQUIRE(it != masks_.end(), "job holds no CAT mask");
  return it->second;
}

int CatMasker::freeWays() const {
  int free = 0;
  for (int w = 0; w < mach_->llc_ways; ++w) {
    if ((occupied_ & (1U << w)) == 0) ++free;
  }
  return free;
}

int CatMasker::largestFreeRun() const {
  int best = 0;
  int current = 0;
  for (int w = 0; w < mach_->llc_ways; ++w) {
    if ((occupied_ & (1U << w)) == 0) {
      best = std::max(best, ++current);
    } else {
      current = 0;
    }
  }
  return best;
}

std::string CatMasker::toHex(std::uint32_t mask) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%05x", mask);
  return buf;
}

}  // namespace sns::actuator
