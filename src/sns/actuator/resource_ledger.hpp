#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sns/actuator/node_ledger.hpp"
#include "sns/hw/machine.hpp"

namespace sns::actuator {

/// Fixed-universe set of node ids backed by a bitmap with a member count.
/// insert/erase are two ALU ops (no tree rebalance, no heap traffic) and
/// scan() enumerates members in ascending id order by walking 64-bit words
/// — exactly the order the selection paths need. At 32K nodes a set is
/// 4 KB, so even one per idle-core bucket stays cache-friendly.
class NodeBitset {
 public:
  NodeBitset() = default;
  explicit NodeBitset(int universe)
      : words_(static_cast<std::size_t>(universe + 63) / 64, 0) {}

  /// Returns false if the id was already present (nothing changed).
  bool insert(int id) {
    std::uint64_t& w = words_[static_cast<std::size_t>(id) >> 6];
    const std::uint64_t m = std::uint64_t{1} << (id & 63);
    if (w & m) return false;
    w |= m;
    ++count_;
    return true;
  }

  /// Returns false if the id was not present (nothing changed).
  bool erase(int id) {
    std::uint64_t& w = words_[static_cast<std::size_t>(id) >> 6];
    const std::uint64_t m = std::uint64_t{1} << (id & 63);
    if (!(w & m)) return false;
    w &= ~m;
    --count_;
    return true;
  }

  bool contains(int id) const {
    return (words_[static_cast<std::size_t>(id) >> 6] >>
            (id & 63)) & 1;
  }

  int size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Visit members in ascending id order; the visitor returns false to
  /// stop early.
  template <typename Fn>
  void scan(Fn&& fn) const {
    int remaining = count_;
    for (std::size_t w = 0; w < words_.size() && remaining > 0; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int id = static_cast<int>(w << 6) + std::countr_zero(bits);
        if (!fn(id)) return;
        --remaining;
        bits &= bits - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  int count_ = 0;
};

/// Cluster-wide resource bookkeeping: one NodeLedger per node plus the node
/// selection machinery the SNS scheduler uses (§4.4): nodes are clustered
/// into groups by idle-core count; a job is first placed within a single
/// group (to keep per-group consumption even and reduce fragmentation),
/// falling back to the whole cluster; among candidates the least-loaded
/// nodes win, by the score Co + Bo + beta x Wo.
///
/// Selection is index-driven so it stays fast on 32K-node clusters (the
/// paper's Fig 20 simulations): a dense bucket array keyed by idle-core
/// count is updated incrementally on every allocate/release, groups are
/// walked best-fit first, bucket scans are capped, and the fully-idle
/// bucket doubles as the free list CE-style exclusive placements draw
/// from. The original implementation — rebuild the grouping by scanning
/// every node on each query — is kept behind setFullScan(true) as the
/// equivalence baseline: both paths must return bit-identical selections
/// (tests/sim/test_sim_equivalence.cpp, tests/actuator).
class ResourceLedger {
 public:
  ResourceLedger(int nodes, const hw::MachineConfig& mach);

  int nodeCount() const { return static_cast<int>(nodes_.size()); }
  const NodeLedger& node(int id) const;

  /// A/B switch: when true, every query recomputes the idle-core grouping
  /// from a full scan of all nodes (the legacy O(N) path) instead of using
  /// the incrementally maintained index. Results must be identical; the
  /// flag exists so equivalence tests can prove the index is maintained
  /// correctly.
  void setFullScan(bool on) { full_scan_ = on; }
  bool fullScan() const { return full_scan_; }

  /// All mutations go through the ledger so the idle-core index stays
  /// consistent.
  void allocate(int node, JobId job, const NodeAllocation& alloc);
  void release(int node, JobId job);

  /// Nodes where the request fits, most-idle group first, ascending id
  /// within a group.
  std::vector<int> feasibleNodes(const NodeAllocation& request) const;
  std::vector<int> feasibleNodes(int cores, int ways, double bw_gbps,
                                 bool exclusive) const {
    return feasibleNodes(NodeAllocation{cores, ways, bw_gbps, exclusive, 0.0});
  }

  /// Pick `count` nodes for the request following the SNS selection rules.
  /// Returns an empty vector if fewer than `count` nodes qualify.
  std::vector<int> selectNodes(int count, const NodeAllocation& request,
                               double beta = 2.0) const;

  /// Alternative selection by the dot-product vector-bin-packing heuristic
  /// (the "more advanced packing algorithms" the paper's §7 points to):
  /// among feasible nodes, prefer those whose *free* capacity vector aligns
  /// best with the request vector, so multi-dimensional waste is minimized.
  /// No group preference; purely alignment-ranked.
  std::vector<int> selectNodesByAlignment(int count,
                                          const NodeAllocation& request) const;
  std::vector<int> selectNodes(int count, int cores, int ways, double bw_gbps,
                               bool exclusive, double beta = 2.0) const {
    return selectNodes(count, NodeAllocation{cores, ways, bw_gbps, exclusive, 0.0},
                       beta);
  }

  /// Count of completely idle nodes (for CE feasibility checks). O(1) on
  /// the indexed path: the fully-idle bucket is the free list.
  int idleNodeCount() const;

  /// Number of nodes currently running at least one job.
  int busyNodeCount() const { return nodeCount() - idleNodeCount(); }

  // ---- cluster-mean occupancy fractions, O(1) -------------------------------
  // Per-node occupancy is linear in the allocation's (cores, ways, bw), and
  // every node shares one machine config, so the cluster mean reduces to
  // reserved totals maintained on each allocate/release. The telemetry
  // sampler reads these on every tick; recomputing them from 32K node
  // ledgers would cost more than the simulation step being sampled.
  double meanCoreOccupancy() const {
    return static_cast<double>(total_cores_used_) /
           (static_cast<double>(mach_->cores) * nodeCount());
  }
  double meanWayOccupancy() const {
    return static_cast<double>(total_ways_reserved_) /
           (static_cast<double>(mach_->llc_ways) * nodeCount());
  }
  double meanBwOccupancy() const {
    return total_bw_reserved_ / (mach_->peakBandwidth() * nodeCount());
  }

  const hw::MachineConfig& machine() const { return *mach_; }

  // ---- audit introspection (sns::audit) -------------------------------------
  // Raw cached state backing the O(1) paths, exposed read-only so the
  // invariant auditor can cross-validate it against a full recomputation
  // from the per-node ledgers. Not for scheduling code: policies read the
  // occupancy means and selection APIs above.
  std::int64_t cachedTotalCoresUsed() const { return total_cores_used_; }
  std::int64_t cachedTotalWaysReserved() const { return total_ways_reserved_; }
  double cachedTotalBwReserved() const { return total_bw_reserved_; }
  int bucketCount() const { return static_cast<int>(buckets_.size()); }
  const NodeBitset& bucket(int idle_cores) const {
    return buckets_[static_cast<std::size_t>(idle_cores)];
  }

  // ---- test hooks (tests/audit) ---------------------------------------------
  /// Deliberately desynchronize the cached core total / the idle-core index
  /// from the per-node truth. Exist ONLY so the audit tests can prove a
  /// corrupted ledger is caught; never called by production code.
  void debugCorruptCoreTotal(std::int64_t delta) { total_cores_used_ += delta; }
  void debugCorruptBucket(int node) {
    for (auto& b : buckets_) {
      if (b.erase(node)) return;
    }
  }

 private:
  NodeLedger& mutableNode(int id);
  void reindex(int id, int old_idle);
  /// Collect feasible candidates grouped by idle-core count into the
  /// cand_ / group_end_ scratch: ascending from request.cores (best-fit
  /// first), ascending id within a group; each group's scan stops at
  /// `per_group_cap` candidates. Shared core of the indexed and full-scan
  /// selection paths — both produce this exact sequence, which is what the
  /// equivalence tests pin down. Flattened into reusable buffers so a
  /// placement query allocates nothing at steady state.
  void collectCandidates(const NodeAllocation& request,
                         std::size_t per_group_cap) const;

  const hw::MachineConfig* mach_;
  std::vector<NodeLedger> nodes_;
  /// Scratch for collectCandidates/selectNodes (selection is logically
  /// const; a ledger is owned by one simulator and not shared across
  /// threads).
  mutable std::vector<int> cand_;            ///< flattened candidate ids
  mutable std::vector<std::size_t> group_end_;  ///< prefix end per group
  mutable std::vector<std::pair<double, int>> rank_scratch_;
  /// buckets_[c] = ids of nodes with exactly c idle cores (the paper's node
  /// groups), maintained on every allocate/release. buckets_[cores] is the
  /// idle-node free list.
  std::vector<NodeBitset> buckets_;
  bool full_scan_ = false;
  /// Reserved-resource totals across all nodes (see meanCoreOccupancy()).
  /// Cores and ways are integers, so their totals are drift-free; the
  /// bandwidth total accumulates at most one ulp per allocate/release.
  std::int64_t total_cores_used_ = 0;
  std::int64_t total_ways_reserved_ = 0;
  double total_bw_reserved_ = 0.0;
};

}  // namespace sns::actuator
