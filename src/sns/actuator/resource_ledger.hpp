#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sns/actuator/node_ledger.hpp"
#include "sns/hw/machine.hpp"
#include "sns/util/error.hpp"
#include "sns/util/thread_annotations.hpp"

namespace sns::util {
class ThreadPool;
}

namespace sns::actuator {

/// Fixed-universe set of node ids backed by a bitmap with a member count.
/// insert/erase are two ALU ops (no tree rebalance, no heap traffic) and
/// scan() enumerates members in ascending id order by walking 64-bit words
/// — exactly the order the selection paths need. At 32K nodes a set is
/// 4 KB, so even one per idle-core bucket stays cache-friendly.
class NodeBitset {
 public:
  NodeBitset() = default;
  explicit NodeBitset(int universe)
      : words_(static_cast<std::size_t>(universe + 63) / 64, 0) {}

  /// Returns false if the id was already present (nothing changed).
  bool insert(int id) {
    std::uint64_t& w = words_[static_cast<std::size_t>(id) >> 6];
    const std::uint64_t m = std::uint64_t{1} << (id & 63);
    if (w & m) return false;
    w |= m;
    ++count_;
    return true;
  }

  /// Returns false if the id was not present (nothing changed).
  bool erase(int id) {
    std::uint64_t& w = words_[static_cast<std::size_t>(id) >> 6];
    const std::uint64_t m = std::uint64_t{1} << (id & 63);
    if (!(w & m)) return false;
    w &= ~m;
    --count_;
    return true;
  }

  bool contains(int id) const {
    return (words_[static_cast<std::size_t>(id) >> 6] >>
            (id & 63)) & 1;
  }

  int size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Visit members in ascending id order; the visitor returns false to
  /// stop early.
  template <typename Fn>
  void scan(Fn&& fn) const {
    int remaining = count_;
    for (std::size_t w = 0; w < words_.size() && remaining > 0; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int id = static_cast<int>(w << 6) + std::countr_zero(bits);
        if (!fn(id)) return;
        --remaining;
        bits &= bits - 1;
      }
    }
  }

  std::size_t wordCount() const { return words_.size(); }

  /// Visit members whose ids fall in word range [w_begin, w_end), ascending;
  /// the visitor returns false to stop early. Shardable form of scan() for
  /// the parallel candidate search: word boundaries are fixed by id, so a
  /// sharded scan concatenated in shard order reproduces scan()'s sequence.
  template <typename Fn>
  void scanWords(std::size_t w_begin, std::size_t w_end, Fn&& fn) const {
    const std::size_t end = std::min(w_end, words_.size());
    for (std::size_t w = w_begin; w < end; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int id = static_cast<int>(w << 6) + std::countr_zero(bits);
        if (!fn(id)) return;
        bits &= bits - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  int count_ = 0;
};

/// Cluster-wide resource bookkeeping: one NodeLedger per node plus the node
/// selection machinery the SNS scheduler uses (§4.4): nodes are clustered
/// into groups by idle-core count; a job is first placed within a single
/// group (to keep per-group consumption even and reduce fragmentation),
/// falling back to the whole cluster; among candidates the least-loaded
/// nodes win, by the score Co + Bo + beta x Wo.
///
/// Selection is index-driven so it stays fast on 32K-node clusters (the
/// paper's Fig 20 simulations): a dense bucket array keyed by idle-core
/// count is updated incrementally on every allocate/release, groups are
/// walked best-fit first, bucket scans are capped, and the fully-idle
/// bucket doubles as the free list CE-style exclusive placements draw
/// from. The original implementation — rebuild the grouping by scanning
/// every node on each query — is kept behind setFullScan(true) as the
/// equivalence baseline: both paths must return bit-identical selections
/// (tests/sim/test_sim_equivalence.cpp, tests/actuator).
///
/// Thread contract: SNS_THREAD_HOSTILE — even const selection queries
/// mutate the mutable scratch buffers and the selection cache below, so
/// two threads may not query one ledger concurrently under any
/// qualification. The sharded parallel search (setSearchPool) is the one
/// sanctioned multi-thread entry: fillScores() hands pool workers fixed
/// disjoint index ranges of one scratch array and joins every future
/// before any shard result is read, so no two threads ever touch the
/// same element and no scratch outlives the query that owns it.
class SNS_THREAD_HOSTILE ResourceLedger {
 public:
  ResourceLedger(int nodes, const hw::MachineConfig& mach);

  int nodeCount() const { return static_cast<int>(nodes_.size()); }
  // Inline: this is the single hottest call in the simulator (every
  // selection scan, commit and rate refresh reads node state through it).
  const NodeLedger& node(int id) const {
    SNS_REQUIRE(id >= 0 && id < nodeCount(), "node id out of range");
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// A/B switch: when true, every query recomputes the idle-core grouping
  /// from a full scan of all nodes (the legacy O(N) path) instead of using
  /// the incrementally maintained index. Results must be identical; the
  /// flag exists so equivalence tests can prove the index is maintained
  /// correctly.
  void setFullScan(bool on) { full_scan_ = on; }
  bool fullScan() const { return full_scan_; }

  /// A/B switch (SimOptFlags::incremental_prune): memoize selection
  /// queries and reuse the previous decision's result while the ledger
  /// state it read is provably unchanged. Invalidation is node-level:
  /// every allocate/release records the maximum of the touched node's
  /// idle-core count before and after the mutation (as a suffix-max
  /// stack, see mut_suffix_); a cached query is reusable iff no mutation
  /// since its fill reaches into the idle-core range
  /// [request.cores, cores] the query scanned.
  /// Cached empty results additionally survive any run of pure
  /// allocations (failure is monotone: capacity only shrinks until a
  /// release). Results must be bit-identical to the uncached path; the
  /// equivalence suite and auditSelectionCache() enforce it.
  void setSelectionCache(bool on);
  bool selectionCache() const { return cache_on_; }
  std::uint64_t selectionCacheHits() const { return cache_hits_; }
  std::uint64_t selectionCacheMisses() const { return cache_misses_; }

  /// A/B switch (SimOptFlags::parallel_select): shard bucket scans and
  /// candidate scoring across pool workers when a bucket holds at least
  /// `min_parallel_nodes` nodes. Shard boundaries are fixed bitmap word
  /// ranges and the merge concatenates shards in order, so the result is
  /// identical to the serial scan regardless of worker timing. The pool
  /// is caller-owned and must outlive the ledger (or be cleared with
  /// nullptr).
  void setSearchPool(util::ThreadPool* pool, int min_parallel_nodes = 2048);

  /// Monotone counter bumped on every release(), regardless of flags.
  /// Scheduler layers key "this request cannot currently be satisfied"
  /// memos on it: allocations only shrink capacity, so only a release can
  /// turn a placement failure into a success.
  std::uint64_t releaseEpoch() const { return release_epoch_; }

  /// Highest post-release idle-core count among releases since the last
  /// take, then resets the accumulator. Pairs with releaseEpoch(): a
  /// failure memo tagged "every ledger query asked for >= c idle cores"
  /// survives a batch of releases whenever none of the freed nodes came
  /// out with c or more idle cores — no freed node can newly enter any
  /// query the failed attempt made, so the attempt still fails.
  int takeReleaseIdleWatermark() { return std::exchange(release_idle_watermark_, -1); }

  /// Non-consuming read of what takeReleaseIdleWatermark() would return.
  /// The simulator's futile-pass gate peeks to prove a batch of releases
  /// cannot purge any failed-spec memo entry (watermark below every
  /// recorded query floor) without resetting the accumulator — the next
  /// pass that actually runs still consumes the full batch.
  int peekReleaseIdleWatermark() const { return release_idle_watermark_; }

  /// Minimum request.cores across every selection/feasibility query since
  /// the last reset. The scheduler brackets a placement attempt with
  /// reset/read to learn the smallest idle-core count a release must
  /// reach before the attempt could possibly see different ledger state.
  /// INT_MAX when no query ran (the attempt never read dynamic state).
  void resetQueryCoreFloor() const { query_core_floor_ = std::numeric_limits<int>::max(); }
  int queryCoreFloor() const { return query_core_floor_; }

  /// All mutations go through the ledger so the idle-core index stays
  /// consistent.
  void allocate(int node, JobId job, const NodeAllocation& alloc);
  void release(int node, JobId job);

  /// Nodes where the request fits, most-idle group first, ascending id
  /// within a group.
  std::vector<int> feasibleNodes(const NodeAllocation& request) const;
  std::vector<int> feasibleNodes(int cores, int ways, double bw_gbps,
                                 bool exclusive) const {
    return feasibleNodes(NodeAllocation{cores, ways, bw_gbps, exclusive, 0.0});
  }

  /// Pick `count` nodes for the request following the SNS selection rules.
  /// Returns an empty vector if fewer than `count` nodes qualify.
  std::vector<int> selectNodes(int count, const NodeAllocation& request,
                               double beta = 2.0) const;

  /// Alternative selection by the dot-product vector-bin-packing heuristic
  /// (the "more advanced packing algorithms" the paper's §7 points to):
  /// among feasible nodes, prefer those whose *free* capacity vector aligns
  /// best with the request vector, so multi-dimensional waste is minimized.
  /// No group preference; purely alignment-ranked.
  std::vector<int> selectNodesByAlignment(int count,
                                          const NodeAllocation& request) const;
  std::vector<int> selectNodes(int count, int cores, int ways, double bw_gbps,
                               bool exclusive, double beta = 2.0) const {
    return selectNodes(count, NodeAllocation{cores, ways, bw_gbps, exclusive, 0.0},
                       beta);
  }

  /// Count of completely idle nodes (for CE feasibility checks). O(1) on
  /// the indexed path: the fully-idle bucket is the free list.
  int idleNodeCount() const;

  /// Number of nodes currently running at least one job.
  int busyNodeCount() const { return nodeCount() - idleNodeCount(); }

  // ---- cluster-mean occupancy fractions, O(1) -------------------------------
  // Per-node occupancy is linear in the allocation's (cores, ways, bw), and
  // every node shares one machine config, so the cluster mean reduces to
  // reserved totals maintained on each allocate/release. The telemetry
  // sampler reads these on every tick; recomputing them from 32K node
  // ledgers would cost more than the simulation step being sampled.
  double meanCoreOccupancy() const {
    return static_cast<double>(total_cores_used_) /
           (static_cast<double>(mach_->cores) * nodeCount());
  }
  double meanWayOccupancy() const {
    return static_cast<double>(total_ways_reserved_) /
           (static_cast<double>(mach_->llc_ways) * nodeCount());
  }
  double meanBwOccupancy() const {
    return total_bw_reserved_ / (mach_->peakBandwidth() * nodeCount());
  }

  const hw::MachineConfig& machine() const { return *mach_; }

  // ---- audit introspection (sns::audit) -------------------------------------
  // Raw cached state backing the O(1) paths, exposed read-only so the
  // invariant auditor can cross-validate it against a full recomputation
  // from the per-node ledgers. Not for scheduling code: policies read the
  // occupancy means and selection APIs above.
  std::int64_t cachedTotalCoresUsed() const { return total_cores_used_; }
  std::int64_t cachedTotalWaysReserved() const { return total_ways_reserved_; }
  double cachedTotalBwReserved() const { return total_bw_reserved_; }
  int bucketCount() const { return static_cast<int>(buckets_.size()); }
  const NodeBitset& bucket(int idle_cores) const {
    return buckets_[static_cast<std::size_t>(idle_cores)];
  }

  /// Re-execute every currently-reusable selection-cache entry through the
  /// uncached path and report any mismatch (sns::audit). Returns
  /// human-readable violation strings, sorted for determinism; empty when
  /// the cache is off or consistent.
  std::vector<std::string> auditSelectionCache() const;

  // ---- test hooks (tests/audit) ---------------------------------------------
  /// Deliberately desynchronize the cached core total / the idle-core index
  /// from the per-node truth. Exist ONLY so the audit tests can prove a
  /// corrupted ledger is caught; never called by production code.
  void debugCorruptCoreTotal(std::int64_t delta) { total_cores_used_ += delta; }
  void debugCorruptBucket(int node) {
    for (auto& b : buckets_) {
      if (b.erase(node)) return;
    }
  }

 private:
  NodeLedger& mutableNode(int id) {
    SNS_REQUIRE(id >= 0 && id < nodeCount(), "node id out of range");
    return nodes_[static_cast<std::size_t>(id)];
  }
  void reindex(int id, int old_idle);
  /// Collect feasible candidates grouped by idle-core count into the
  /// cand_ / group_end_ scratch: ascending from request.cores (best-fit
  /// first), ascending id within a group; each group's scan stops at
  /// `per_group_cap` candidates. Shared core of the indexed and full-scan
  /// selection paths — both produce this exact sequence, which is what the
  /// equivalence tests pin down. Flattened into reusable buffers so a
  /// placement query allocates nothing at steady state.
  void collectCandidates(const NodeAllocation& request,
                         std::size_t per_group_cap) const;
  /// Scan one bucket for nodes fitting `request`, appending up to `cap`
  /// ids to `dest` in ascending order — sharded across pool workers when
  /// the bucket is large enough, serial otherwise; identical output
  /// either way.
  void scanBucket(const NodeBitset& bucket, const NodeAllocation& request,
                  std::size_t cap, std::vector<int>& dest) const;
  /// The fully-idle bucket (idleCores == mach_->cores) special case of
  /// scanBucket: allocate() requires >= 1 core and release() pins the
  /// double reservation sums to exact zeros on the last departure, so
  /// every member node is bit-identical — one representative fits()
  /// answers for the whole bucket, and accepted ids come straight off the
  /// bitset without touching a node ledger. Same output as scanBucket.
  void scanIdleBucket(const NodeBitset& bucket, const NodeAllocation& request,
                      std::size_t cap, std::vector<int>& dest) const;
  /// The ranked (score / group-preference) selection — the former
  /// selectNodes() body; selectNodes() wraps it with the exclusive
  /// shortcut and the selection cache.
  std::vector<int> selectNodesRanked(int count, const NodeAllocation& request,
                                     double beta) const;
  /// The alignment-ranked selection body behind selectNodesByAlignment().
  std::vector<int> selectNodesAligned(int count,
                                      const NodeAllocation& request) const;

  // ---- selection cache (incremental candidate pruning) ----------------------
  struct SelectQuery {
    std::int32_t kind = 0;  ///< 0 = ranked (selectNodes), 1 = alignment
    std::int32_t count = 0;
    std::int32_t cores = 0;
    std::int32_t ways = 0;
    std::uint64_t bw_bits = 0;
    std::uint64_t net_bits = 0;
    std::uint64_t beta_bits = 0;
    bool operator==(const SelectQuery&) const = default;
  };
  struct SelectQueryHash {
    std::size_t operator()(const SelectQuery& q) const;
  };
  struct CacheEntry {
    std::vector<int> nodes;
    std::uint64_t version = 0;  ///< change_version_ when filled/revalidated
    /// The full query, kept so the auditor can re-execute it uncached.
    NodeAllocation request;
    std::int32_t count = 0;
    std::int32_t kind = 0;
    double beta = 0.0;
  };
  static SelectQuery makeQuery(int kind, int count,
                               const NodeAllocation& request, double beta);
  bool entryStillValid(const CacheEntry& e) const;
  /// Returns the cached result if reusable (touching the entry to the
  /// current version), nullptr on miss.
  const std::vector<int>* cacheLookup(const SelectQuery& q) const;
  void cacheStore(const SelectQuery& q, const std::vector<int>& result,
                  int count, const NodeAllocation& request, double beta,
                  int kind) const;
  void noteMutation(int old_idle, int new_idle, bool released);
  /// Upper bound on feasible nodes for a request needing `from` idle
  /// cores and `ways` free cache ways: a suffix sum over the
  /// (idle-cores x free-ways) population grid, exact on that membership
  /// (ignores bw/net), so `bound < count` proves the selection empty.
  /// Stops summing once the bound reaches `enough`.
  int feasibleUpperBound(int from, int ways, int enough) const;

  const hw::MachineConfig* mach_;
  std::vector<NodeLedger> nodes_;
  /// Scratch for collectCandidates/selectNodes (selection is logically
  /// const; a ledger is owned by one simulator and not shared across
  /// threads).
  mutable std::vector<int> cand_;            ///< flattened candidate ids
  mutable std::vector<std::size_t> group_end_;  ///< prefix end per group
  mutable std::vector<std::pair<double, int>> rank_scratch_;
  /// buckets_[c] = ids of nodes with exactly c idle cores (the paper's node
  /// groups), maintained on every allocate/release. buckets_[cores] is the
  /// idle-node free list.
  std::vector<NodeBitset> buckets_;
  /// cw_grid_[idle * (llc_ways+1) + free_ways] = #nodes with exactly that
  /// (idle-core, free-way) pair, maintained on every allocate/release —
  /// the population behind feasibleUpperBound()'s two-dimensional
  /// fast-fail.
  std::vector<std::int32_t> cw_grid_;
  std::int32_t& gridCell(int idle, int free_ways) {
    return cw_grid_[static_cast<std::size_t>(idle) *
                        static_cast<std::size_t>(mach_->llc_ways + 1) +
                    static_cast<std::size_t>(free_ways)];
  }
  bool full_scan_ = false;
  // ---- selection-cache state (see setSelectionCache) ------------------------
  // Mutable: lookups run on the logically-const selection path; a ledger
  // is owned by one simulator and queried from one thread.
  bool cache_on_ = false;
  mutable std::unordered_map<SelectQuery, CacheEntry, SelectQueryHash>
      sel_cache_;
  /// Suffix-maxima of the mutation history, for O(log) revalidation. Each
  /// mutation contributes the touched node's max(idle before, idle after);
  /// a query that scanned idle range [from, cores] is unaffected by every
  /// mutation whose max_idle < from — the node was outside the scanned
  /// range both before and after. A monotone stack of (version, max_idle)
  /// answers "max over all mutations after version V" exactly: pushing a
  /// value pops every older entry it dominates, leaving values strictly
  /// decreasing in version — so the suffix max is the first entry past V.
  /// Bounded by the machine's core count + 1 regardless of history length
  /// (one entry per distinct value), unlike the event log it replaced.
  /// rel_suffix_ tracks releases only: cached failures survive pure
  /// allocations (capacity is monotone), so they revalidate against it.
  using SuffixStack = std::vector<std::pair<std::uint64_t, std::int32_t>>;
  mutable SuffixStack mut_suffix_;
  mutable SuffixStack rel_suffix_;
  std::uint64_t change_version_ = 0;       ///< bumped per allocate/release
  std::uint64_t last_release_version_ = 0;
  std::uint64_t release_epoch_ = 0;        ///< maintained regardless of flags
  int release_idle_watermark_ = -1;        ///< see takeReleaseIdleWatermark()
  mutable int query_core_floor_ = std::numeric_limits<int>::max();
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
  // ---- parallel search (see setSearchPool) ----------------------------------
  util::ThreadPool* pool_ = nullptr;
  std::size_t min_parallel_ = 2048;
  mutable std::vector<std::vector<int>> shard_scratch_;
  /// Reserved-resource totals across all nodes (see meanCoreOccupancy()).
  /// Cores and ways are integers, so their totals are drift-free; the
  /// bandwidth total accumulates at most one ulp per allocate/release.
  std::int64_t total_cores_used_ = 0;
  std::int64_t total_ways_reserved_ = 0;
  double total_bw_reserved_ = 0.0;
};

}  // namespace sns::actuator
