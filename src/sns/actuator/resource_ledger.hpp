#pragma once

#include <map>
#include <set>
#include <vector>

#include "sns/actuator/node_ledger.hpp"
#include "sns/hw/machine.hpp"

namespace sns::actuator {

/// Cluster-wide resource bookkeeping: one NodeLedger per node plus the node
/// selection machinery the SNS scheduler uses (§4.4): nodes are clustered
/// into groups by idle-core count; a job is first placed within a single
/// group (to keep per-group consumption even and reduce fragmentation),
/// falling back to the whole cluster; among candidates the least-loaded
/// nodes win, by the score Co + Bo + beta x Wo.
///
/// Nodes are indexed by idle-core count so selection stays fast on
/// 32K-node clusters (the paper's Fig 20 simulations): groups are walked
/// from most-idle down, and the walk stops as soon as groups cannot hold
/// the per-node core request.
class ResourceLedger {
 public:
  ResourceLedger(int nodes, const hw::MachineConfig& mach);

  int nodeCount() const { return static_cast<int>(nodes_.size()); }
  const NodeLedger& node(int id) const;

  /// All mutations go through the ledger so the idle-core index stays
  /// consistent.
  void allocate(int node, JobId job, const NodeAllocation& alloc);
  void release(int node, JobId job);

  /// Nodes where the request fits (unordered).
  std::vector<int> feasibleNodes(const NodeAllocation& request) const;
  std::vector<int> feasibleNodes(int cores, int ways, double bw_gbps,
                                 bool exclusive) const {
    return feasibleNodes(NodeAllocation{cores, ways, bw_gbps, exclusive, 0.0});
  }

  /// Pick `count` nodes for the request following the SNS selection rules.
  /// Returns an empty vector if fewer than `count` nodes qualify.
  std::vector<int> selectNodes(int count, const NodeAllocation& request,
                               double beta = 2.0) const;

  /// Alternative selection by the dot-product vector-bin-packing heuristic
  /// (the "more advanced packing algorithms" the paper's §7 points to):
  /// among feasible nodes, prefer those whose *free* capacity vector aligns
  /// best with the request vector, so multi-dimensional waste is minimized.
  /// No group preference; purely alignment-ranked.
  std::vector<int> selectNodesByAlignment(int count,
                                          const NodeAllocation& request) const;
  std::vector<int> selectNodes(int count, int cores, int ways, double bw_gbps,
                               bool exclusive, double beta = 2.0) const {
    return selectNodes(count, NodeAllocation{cores, ways, bw_gbps, exclusive, 0.0},
                       beta);
  }

  /// Count of completely idle nodes (for CE feasibility checks).
  int idleNodeCount() const;

  /// Number of nodes currently running at least one job.
  int busyNodeCount() const { return nodeCount() - idleNodeCount(); }

  const hw::MachineConfig& machine() const { return *mach_; }

 private:
  NodeLedger& mutableNode(int id);
  void reindex(int id, int old_idle);

  const hw::MachineConfig* mach_;
  std::vector<NodeLedger> nodes_;
  /// idle-core count -> node ids (the paper's node groups)
  std::map<int, std::set<int>> groups_;
};

}  // namespace sns::actuator
