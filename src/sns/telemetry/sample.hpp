#pragma once

#include <cstddef>
#include <vector>

namespace sns::telemetry {

/// One snapshot of observable cluster state, taken at a sample tick. The
/// producer (sim::ClusterSimulator on its virtual clock, UberunSystem on
/// the wall clock) fills this; the Sampler fans it out into time series
/// and the SLO watchdog. Utilizations are fractions of total cluster
/// capacity reserved in the resource ledger — the scheduler's belief, which
/// is exactly what the paper's Uberun monitors expose (Figs 17-20).
/// Timestamps are supplied alongside the sample (Sampler stamps each
/// period boundary; SloWatchdog::evaluate takes `t` explicitly), so the
/// struct itself is timeless.
struct ClusterSample {
  double core_util = 0.0;     ///< reserved cores / total cores
  double way_util = 0.0;      ///< partitioned LLC ways / total ways
  double bw_util = 0.0;       ///< reserved memory bandwidth / total peak
  int busy_nodes = 0;         ///< nodes hosting at least one job
  int total_nodes = 0;
  int running_jobs = 0;       ///< in-flight job count
  std::size_t queue_depth = 0;
  double queue_head_age_s = 0.0;  ///< waiting age of the queue head (0 if empty)
  double solver_hit_rate = 0.0;   ///< SolverCache hits / lookups, cumulative
  double decision_us_p99 = 0.0;   ///< sim.decision_us p99 (0 without metrics)
  /// Per-node core-occupancy fractions, indexed by node id. Only filled
  /// when the sampler asks for it (small clusters / `uberun top`); empty
  /// at trace scale, where aggregate min/mean/max series stand in.
  std::vector<double> node_core_occ;
};

}  // namespace sns::telemetry
