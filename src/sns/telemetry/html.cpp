// Self-contained HTML dashboard renderer for `uberun report`. No external
// assets, fonts, or scripts: styling is one inline <style> block and every
// chart is inline SVG, so the file opens anywhere (including air-gapped
// cluster head nodes) and archives as a single artifact.
//
// Chart conventions: each sparkline is a single series — a 2px line over
// the per-point means with a translucent min/max band, one accent hue for
// data, neutral ink for all text, recessive axes. Hover uses native SVG
// <title> tooltips on invisible per-point hit rects (wider than the mark).
// The status red is reserved for SLO violations and always accompanied by
// text, never color alone.
#include <algorithm>
#include <cmath>

#include "sns/telemetry/export.hpp"
#include "sns/util/table.hpp"

namespace sns::telemetry {

namespace {

constexpr const char* kCss = R"css(
:root {
  --ink: #1a1f27; --ink-2: #5b6572; --ink-3: #9aa3ae;
  --surface: #ffffff; --surface-2: #f5f6f8; --border: #e3e6ea;
  --accent: #3566a6; --accent-soft: rgba(53,102,166,0.13);
  --bad: #b3261e; --bad-soft: #fbeae9; --ok: #2e6b43;
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--surface-2); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink); }
.sub { color: var(--ink-2); margin-bottom: 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 14px 0 6px; }
.tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 130px; }
.tile .k { font-size: 11px; color: var(--ink-2); text-transform: uppercase;
  letter-spacing: 0.04em; }
.tile .v { font-size: 20px; font-variant-numeric: tabular-nums; margin-top: 2px; }
.cards { display: grid; grid-template-columns: repeat(auto-fill, minmax(340px, 1fr));
  gap: 12px; }
.card { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; }
.card h3 { margin: 0 0 2px; font-size: 13px; font-weight: 600; }
.card .stats { font-size: 11px; color: var(--ink-2);
  font-variant-numeric: tabular-nums; margin-bottom: 6px; }
.small .card { padding: 8px 10px; }
.small { grid-template-columns: repeat(auto-fill, minmax(180px, 1fr)); }
table { border-collapse: collapse; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px; width: 100%; }
th, td { text-align: left; padding: 6px 12px; font-size: 13px;
  border-bottom: 1px solid var(--border); font-variant-numeric: tabular-nums; }
th { font-size: 11px; color: var(--ink-2); text-transform: uppercase;
  letter-spacing: 0.04em; }
tr:last-child td { border-bottom: none; }
.badge { display: inline-block; border-radius: 999px; padding: 1px 10px;
  font-size: 12px; }
.badge.bad { background: var(--bad-soft); color: var(--bad); }
.badge.ok { background: #e8f1ec; color: var(--ok); }
pre { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px; overflow-x: auto; font-size: 12px; }
details > summary { cursor: pointer; color: var(--ink-2); margin: 10px 0; }
svg text { fill: var(--ink-3); font-size: 10px;
  font-family: system-ui, sans-serif; }
)css";

std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v, int digits = 2) { return util::fmt(v, digits); }

/// One sparkline: min/max band + 2px mean line + invisible hover targets.
std::string sparkline(const Series& s, int width, int height) {
  const auto& pts = s.points();
  if (pts.empty()) return "";
  const double t0 = pts.front().t_first;
  const double t1 = std::max(pts.back().t_last, t0 + 1e-9);
  double vmin = s.minSeen(), vmax = s.maxSeen();
  if (vmax - vmin < 1e-12) {  // flat series: pad so the line sits mid-chart
    vmin -= 0.5;
    vmax += 0.5;
  }
  const double pad = 4.0;
  const double w = width, h = height;
  auto X = [&](double t) { return pad + (t - t0) / (t1 - t0) * (w - 2 * pad); };
  auto Y = [&](double v) {
    return h - pad - (v - vmin) / (vmax - vmin) * (h - 2 * pad);
  };
  auto xy = [&](double t, double v) {
    return num(X(t), 1) + "," + num(Y(v), 1);
  };

  std::string svg = "<svg viewBox=\"0 0 " + std::to_string(width) + " " +
                    std::to_string(height) +
                    "\" width=\"100%\" height=\"" + std::to_string(height) +
                    "\" role=\"img\" preserveAspectRatio=\"none\">";
  // Recessive baseline grid: just the bottom edge.
  svg += "<line x1=\"" + num(pad, 1) + "\" y1=\"" + num(h - pad, 1) +
         "\" x2=\"" + num(w - pad, 1) + "\" y2=\"" + num(h - pad, 1) +
         "\" stroke=\"var(--border)\" stroke-width=\"1\"/>";

  // min/max band (skip when it would be a sliver).
  bool band = false;
  for (const auto& p : pts) {
    if (p.max - p.min > 1e-12) band = true;
  }
  if (band) {
    std::string path = "M" + xy(pts.front().t_first, pts.front().max);
    for (const auto& p : pts) path += " L" + xy(p.t_first, p.max);
    for (auto it = pts.rbegin(); it != pts.rend(); ++it) {
      path += " L" + xy(it->t_first, it->min);
    }
    path += " Z";
    svg += "<path d=\"" + path + "\" fill=\"var(--accent-soft)\"/>";
  }

  std::string line;
  for (const auto& p : pts) {
    if (!line.empty()) line += ' ';
    line += xy(p.t_first, p.mean());
  }
  svg += "<polyline points=\"" + line +
         "\" fill=\"none\" stroke=\"var(--accent)\" stroke-width=\"2\" "
         "stroke-linejoin=\"round\" stroke-linecap=\"round\" "
         "vector-effect=\"non-scaling-stroke\"/>";

  // Native-tooltip hover targets: one transparent rect per retained point.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double x_lo = i == 0 ? 0.0 : X(pts[i].t_first);
    const double x_hi = i + 1 < pts.size() ? X(pts[i + 1].t_first) : w;
    svg += "<rect x=\"" + num(x_lo, 1) + "\" y=\"0\" width=\"" +
           num(std::max(x_hi - x_lo, 1.0), 1) + "\" height=\"" +
           std::to_string(height) + "\" fill=\"transparent\"><title>t=" +
           num(pts[i].t_first, 1) + " s  mean=" + num(pts[i].mean(), 3) +
           "  min=" + num(pts[i].min, 3) + "  max=" + num(pts[i].max, 3) +
           "</title></rect>";
  }
  svg += "</svg>";
  return svg;
}

std::string seriesCard(const TimeSeriesStore::Key& key, const Series& s,
                       int width, int height) {
  std::string title = key.name;
  for (const auto& [k, v] : key.labels) title += " " + k + "=" + v;
  std::string card = "<div class=\"card\"><h3>" + esc(title) + "</h3>";
  card += "<div class=\"stats\">last " + num(s.last(), 3) + " · min " +
          num(s.minSeen(), 3) + " · mean " + num(s.mean(), 3) + " · max " +
          num(s.maxSeen(), 3) + " · " + std::to_string(s.sampleCount()) +
          " samples</div>";
  card += sparkline(s, width, height);
  card += "</div>";
  return card;
}

}  // namespace

std::string renderHtmlReport(const ReportContext& ctx) {
  std::string html = "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">";
  html += "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">";
  html += "<title>" + esc(ctx.title) + "</title><style>" + kCss +
          "</style></head><body>";
  html += "<h1>" + esc(ctx.title) + "</h1>";
  html += "<div class=\"sub\">sns::telemetry report — Spread-n-Share "
          "reproduction</div>";

  if (!ctx.summary.empty()) {
    html += "<div class=\"tiles\">";
    for (const auto& [k, v] : ctx.summary) {
      html += "<div class=\"tile\"><div class=\"k\">" + esc(k) +
              "</div><div class=\"v\">" + esc(v) + "</div></div>";
    }
    html += "</div>";
  }

  if (ctx.watchdog != nullptr) {
    const auto& rules = ctx.watchdog->rules();
    const auto& status = ctx.watchdog->status();
    html += "<h2>SLO watchdog</h2><table><tr><th>rule</th><th>threshold</th>"
            "<th>status</th><th>episodes</th><th>ticks violated</th>"
            "<th>worst</th><th>first t (s)</th><th>last t (s)</th></tr>";
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const auto& r = rules[i];
      const auto& st = status[i];
      const bool bad = st.episodes > 0;
      html += "<tr><td>" + esc(r.name) + "</td><td>" + num(r.threshold, 2) +
              "</td><td><span class=\"badge " + (bad ? "bad" : "ok") + "\">" +
              (bad ? "violated" : "met") + "</span></td><td>" +
              std::to_string(st.episodes) + "</td><td>" +
              std::to_string(st.ticks_violated) + "/" +
              std::to_string(st.ticks_evaluated) + "</td><td>" +
              (bad ? num(st.worst_observed, 2) : "–") + "</td><td>" +
              (bad ? num(st.first_violation_t, 1) : "–") + "</td><td>" +
              (bad ? num(st.last_violation_t, 1) : "–") + "</td></tr>";
    }
    html += "</table>";
  }

  if (!ctx.audit_text.empty()) {
    const bool bad = ctx.audit_violations > 0;
    html += "<h2>Invariant audit <span class=\"badge " +
            std::string(bad ? "bad" : "ok") + "\">" +
            (bad ? "violations" : "clean") + "</span></h2><pre>" +
            esc(ctx.audit_text) + "</pre>";
  }

  if (ctx.store != nullptr) {
    // Full-width cards for the cluster-level series, small multiples for
    // label-differentiated (per-node) instances.
    std::string big, small;
    for (const auto& [key, s] : ctx.store->all()) {
      if (s.empty()) continue;
      if (key.labels.empty()) {
        big += seriesCard(key, s, 620, 84);
      } else {
        small += seriesCard(key, s, 240, 44);
      }
    }
    if (!big.empty()) {
      html += "<h2>Cluster time series</h2><div class=\"cards\">" + big +
              "</div>";
    }
    if (!small.empty()) {
      html += "<h2>Per-node series</h2><div class=\"cards small\">" + small +
              "</div>";
    }
  }

  if (ctx.phases != nullptr && ctx.phases->totalSelfNs() > 0) {
    html += "<h2>Scheduler phase profile</h2><pre>" +
            esc(ctx.phases->renderTable()) + "</pre>";
    html += "<details><summary>folded stacks (flamegraph input)</summary><pre>" +
            esc(ctx.phases->foldedStacks()) + "</pre></details>";
  }

  if (!ctx.xray_text.empty()) {
    html += "<h2>Decision anatomy</h2><pre>" + esc(ctx.xray_text) + "</pre>";
  }

  if (!ctx.flight_text.empty()) {
    const bool bad = ctx.flight_violations > 0;
    html += "<h2>Degradation accounting <span class=\"badge " +
            std::string(bad ? "bad" : "ok") + "\">" +
            (bad ? std::to_string(ctx.flight_violations) + " bound violations"
                 : "bounds held") +
            "</span></h2><pre>" + esc(ctx.flight_text) + "</pre>";
  }

  if (ctx.metrics != nullptr) {
    html += "<details><summary>metrics registry</summary><pre>" +
            esc(ctx.metrics->renderTable()) + "</pre></details>";
  }

  if (ctx.events_dropped > 0) {
    html += "<div class=\"sub\">⚠ event ring buffer dropped " +
            std::to_string(ctx.events_dropped) +
            " oldest events; the decision log is truncated.</div>";
  }

  html += "</body></html>";
  return html;
}

}  // namespace sns::telemetry
