#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sns/util/thread_annotations.hpp"

namespace sns::telemetry {

/// One retained point of a series. At downsampling level L a point
/// aggregates 2^L consecutive raw samples (the tail point may hold fewer
/// while its bucket is still filling): the aggregate keeps enough state —
/// first/last time, last value, min/max and the running sum — that any
/// further 2:1 merge is exact, so a coarse series is bit-identical to one
/// that was coarse from the start.
struct SeriesPoint {
  double t_first = 0.0;  ///< time of the first raw sample in the bucket
  double t_last = 0.0;   ///< time of the last raw sample in the bucket
  double last = 0.0;     ///< most recent raw value
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;            ///< sum of raw values (for exact means)
  std::uint64_t count = 0;     ///< raw samples aggregated

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Fixed-budget time series: raw samples are appended in time order and the
/// series deterministically halves its resolution (2:1 pair merges) each
/// time the retained point count would exceed the budget, so memory is
/// O(budget) regardless of run length while the full time range stays
/// covered — the flight-recorder counterpart for continuous signals.
///
/// Merge boundaries are aligned to *absolute sample indices* (sample i
/// belongs to bucket i >> level), never to when the budget check happened
/// to trigger, so the retained points are a pure function of
/// (samples, budget). tests/telemetry/test_timeseries.cpp pins this down
/// by compacting at different times and demanding identical series.
class Series {
 public:
  Series() = default;
  explicit Series(std::size_t budget);

  /// Append one raw sample; `t` must be non-decreasing.
  void append(double t, double v);

  /// Retained points, oldest first. Every point except possibly the last
  /// aggregates exactly 2^level() raw samples.
  const std::vector<SeriesPoint>& points() const { return pts_; }

  /// Number of 2:1 halvings performed so far (0 = full resolution).
  int level() const { return level_; }
  /// Raw samples per fully-merged point: 2^level().
  std::uint64_t stride() const { return std::uint64_t{1} << level_; }

  std::size_t budget() const { return budget_; }
  /// Shrinking the budget compacts immediately; because merges are
  /// index-aligned this yields the same points as if the series had used
  /// the smaller budget from the start.
  void setBudget(std::size_t budget);

  // ---- whole-run rollups over every raw sample ever appended ---------------
  std::uint64_t sampleCount() const { return n_; }
  bool empty() const { return n_ == 0; }
  double last() const { return last_; }
  double minSeen() const { return min_; }
  double maxSeen() const { return max_; }
  double mean() const { return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0; }

  /// Latest point whose bucket started at or before `t` (nullptr when the
  /// series is empty or `t` precedes the first sample). Drives
  /// `uberun top --at T`.
  const SeriesPoint* at(double t) const;

  void clear();

 private:
  void compact();  ///< one 2:1 halving pass (level_ += 1)

  std::size_t budget_ = 512;
  int level_ = 0;
  std::vector<SeriesPoint> pts_;
  std::uint64_t n_ = 0;  ///< raw samples appended
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Label set of one series instance ((key, value) pairs, kept sorted so
/// identity and export order are deterministic).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named collection of series, each identified by (name, labels) like a
/// Prometheus instrument. Series references stay valid for the store's
/// lifetime (map nodes are stable), so samplers resolve each series once
/// and append without lookups.
///
/// Thread contract: SNS_THREAD_COMPATIBLE — single-writer like its
/// Sampler; a store shared across daemon threads needs an external
/// util::Mutex over series()/append and export walks.
class SNS_THREAD_COMPATIBLE TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t budget_per_series = 512);

  /// Find-or-create. Labels are sorted on insertion.
  Series& series(std::string_view name, Labels labels = {});
  const Series* find(std::string_view name, const Labels& labels = {}) const;

  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  /// All series, sorted by (name, labels) — deterministic export order.
  const std::map<Key, Series>& all() const { return series_; }
  std::size_t size() const { return series_.size(); }
  std::size_t budgetPerSeries() const { return budget_; }

  void clear() { series_.clear(); }

 private:
  std::size_t budget_;
  std::map<Key, Series> series_;
};

}  // namespace sns::telemetry
