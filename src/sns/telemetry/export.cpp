#include "sns/telemetry/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "sns/util/table.hpp"

namespace sns::telemetry {

namespace {

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string promName(const std::string& raw) {
  std::string out = "sns_";
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string promEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string promLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + promEscape(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

/// %g-style shortest faithful double (Prometheus values are free-form).
std::string promValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the short form when it round-trips.
  char short_buf[64];
  std::snprintf(short_buf, sizeof short_buf, "%g", v);
  double back = 0.0;
  std::sscanf(short_buf, "%lf", &back);
  return back == v ? short_buf : buf;
}

}  // namespace

std::string renderPrometheus(const TimeSeriesStore* store,
                             const obs::Registry* registry) {
  std::string out;
  auto header = [&](const std::string& name, const char* type,
                    const std::string& help) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
  };

  if (registry != nullptr) {
    for (const auto& [name, c] : registry->counters()) {
      const std::string n = promName(name) + "_total";
      header(n, "counter", "counter " + name);
      out += n + " " + promValue(c.value()) + "\n";
    }
    for (const auto& [name, g] : registry->gauges()) {
      const std::string n = promName(name);
      header(n, "gauge", "gauge " + name);
      out += n + " " + promValue(g.value()) + "\n";
    }
    // Derived gauge: solver cache hit rate, emitted directly so scrape
    // consumers don't have to compute it from the two raw counters.
    const obs::Counter* sc_hits = registry->findCounter("solver.cache.hits");
    const obs::Counter* sc_miss = registry->findCounter("solver.cache.misses");
    if (sc_hits != nullptr && sc_miss != nullptr) {
      const double lookups = sc_hits->value() + sc_miss->value();
      const std::string n = promName("solver.cache.hit_rate");
      header(n, "gauge",
             "derived gauge solver.cache.hit_rate (hits / lookups)");
      out += n + " " +
             promValue(lookups > 0.0 ? sc_hits->value() / lookups : 0.0) + "\n";
    }
    for (const auto& [name, h] : registry->histograms()) {
      const std::string n = promName(name);
      header(n, "histogram", "histogram " + name);
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h.bucketCount(); ++i) {
        cum += h.bucketValue(i);
        const double ub = h.upperBound(i);
        const std::string le =
            std::isinf(ub) ? std::string("+Inf") : promValue(ub);
        out += n + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
      }
      out += n + "_sum " + promValue(h.sum()) + "\n";
      out += n + "_count " + std::to_string(h.count()) + "\n";
    }
  }

  if (store != nullptr) {
    // Series export: last sampled value as a gauge. HELP/TYPE once per
    // metric name; label-differentiated instances share them.
    const std::string* prev_name = nullptr;
    for (const auto& [key, series] : store->all()) {
      if (series.empty()) continue;
      const std::string n = promName(key.name);
      if (prev_name == nullptr || key.name != *prev_name) {
        header(n, "gauge", "time series " + key.name + " (last sample)");
        prev_name = &key.name;
      }
      out += n + promLabels(key.labels) + " " + promValue(series.last()) + "\n";
    }
  }
  return out;
}

std::string renderTop(const TimeSeriesStore& store, double at, int bar_width) {
  auto bar = [bar_width](double frac) {
    frac = std::clamp(frac, 0.0, 1.0);
    const int on = static_cast<int>(std::lround(frac * bar_width));
    std::string s(static_cast<std::size_t>(on), '#');
    s += std::string(static_cast<std::size_t>(bar_width - on), '.');
    return s;
  };

  // Clamp `at` into the sampled range of the first non-empty series.
  double t0 = 0.0, t1 = 0.0;
  bool have_range = false;
  for (const auto& [key, s] : store.all()) {
    if (s.empty()) continue;
    const auto& pts = s.points();
    t0 = have_range ? std::min(t0, pts.front().t_first) : pts.front().t_first;
    t1 = have_range ? std::max(t1, pts.back().t_last) : pts.back().t_last;
    have_range = true;
  }
  if (!have_range) return "no telemetry samples recorded\n";
  const double t = std::clamp(at, t0, t1);

  std::string out = "cluster state at t=" + util::fmt(t, 1) + " s (sampled " +
                    util::fmt(t0, 1) + " .. " + util::fmt(t1, 1) + " s)\n\n";

  struct Row {
    const char* series;
    const char* label;
    bool fraction;  ///< render an occupancy bar
  };
  const Row rows[] = {
      {"cluster.core_util", "core utilization", true},
      {"cluster.way_util", "LLC-way utilization", true},
      {"cluster.bw_util", "bandwidth utilization", true},
      {"cluster.busy_nodes", "busy nodes", false},
      {"jobs.running", "running jobs", false},
      {"queue.depth", "queue depth", false},
      {"queue.head_age_s", "queue head age (s)", false},
      {"solver.hit_rate", "solver cache hit rate", true},
      {"sched.decision_us_p99", "decision p99 (us)", false},
  };
  util::Table table({"signal", "value", "", "min", "mean", "max"});
  for (const Row& r : rows) {
    const Series* s = store.find(r.series);
    if (s == nullptr || s->empty()) continue;
    const SeriesPoint* p = s->at(t);
    const double v = p != nullptr ? p->last : 0.0;
    table.addRow({r.label, util::fmt(v, r.fraction ? 3 : 1),
                  r.fraction ? bar(v) : "", util::fmt(s->minSeen(), 2),
                  util::fmt(s->mean(), 2), util::fmt(s->maxSeen(), 2)});
  }
  out += table.render();

  // Per-node occupancy bars, when the run recorded them (numeric order —
  // the store iterates label strings lexicographically).
  std::vector<std::pair<int, double>> per_node;
  for (const auto& [key, s] : store.all()) {
    if (key.name != "node.core_occ" || key.labels.empty() || s.empty()) continue;
    const SeriesPoint* p = s.at(t);
    per_node.emplace_back(std::stoi(key.labels.front().second),
                          p != nullptr ? p->last : 0.0);
  }
  if (!per_node.empty()) {
    std::sort(per_node.begin(), per_node.end());
    out += "\nper-node core occupancy:\n";
    for (const auto& [nd, v] : per_node) {
      out += "  node " + std::to_string(nd) + "  " + bar(v) + "  " +
             util::fmt(v, 2) + "\n";
    }
  }
  return out;
}

}  // namespace sns::telemetry
