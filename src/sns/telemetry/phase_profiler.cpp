#include "sns/telemetry/phase_profiler.hpp"

#include <algorithm>

#include "sns/util/error.hpp"
#include "sns/util/table.hpp"

namespace sns::telemetry {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kQueueWalk: return "queue_walk";
    case Phase::kLedgerScan: return "ledger_scan";
    case Phase::kPlacementCommit: return "placement_commit";
    case Phase::kContentionSolve: return "contention_solve";
    case Phase::kRateRefresh: return "rate_refresh";
    case Phase::kAccounting: return "accounting";
    case Phase::kCount_: break;
  }
  return "unknown";
}

void PhaseProfiler::enter(Phase p) {
  Frame f;
  f.phase = p;
  f.start = Clock::now();
  const std::uint64_t parent_path = stack_.empty() ? 0 : stack_.back().path;
  f.path = (parent_path << 5) | (static_cast<std::uint64_t>(p) + 1);
  stack_.push_back(f);
}

void PhaseProfiler::exit() {
  SNS_REQUIRE(!stack_.empty(), "phase exit without matching enter");
  const Frame f = stack_.back();
  stack_.pop_back();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           f.start)
          .count());
  Stat& st = stats_[static_cast<std::size_t>(f.phase)];
  ++st.calls;
  st.total_ns += ns;
  const std::uint64_t self = ns >= f.child_ns ? ns - f.child_ns : 0;
  st.self_ns += self;
  if (ns > st.max_ns) st.max_ns = ns;
  folded_[f.path] += self;
  if (!stack_.empty()) stack_.back().child_ns += ns;
}

std::uint64_t PhaseProfiler::totalSelfNs() const {
  std::uint64_t total = 0;
  for (const Stat& s : stats_) total += s.self_ns;
  return total;
}

std::string PhaseProfiler::renderTable() const {
  const double total_ms = static_cast<double>(totalSelfNs()) / 1e6;
  util::Table t({"phase", "calls", "incl ms", "self ms", "self %", "max us"});
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Stat& s = stats_[i];
    if (s.calls == 0) continue;
    const double self_ms = static_cast<double>(s.self_ns) / 1e6;
    t.addRow({to_string(static_cast<Phase>(i)), std::to_string(s.calls),
              util::fmt(static_cast<double>(s.total_ns) / 1e6, 2),
              util::fmt(self_ms, 2),
              total_ms > 0.0 ? util::fmt(100.0 * self_ms / total_ms, 1) : "0.0",
              util::fmt(static_cast<double>(s.max_ns) / 1e3, 1)});
  }
  return t.render();
}

std::string PhaseProfiler::foldedStacks() const {
  // Decode each signature back into a ";"-joined path, bottom frame first.
  std::vector<std::pair<std::string, std::uint64_t>> lines;
  lines.reserve(folded_.size());
  for (const auto& [path, ns] : folded_) {
    std::vector<Phase> frames;
    for (std::uint64_t rest = path; rest != 0; rest >>= 5) {
      frames.push_back(static_cast<Phase>((rest & 31) - 1));
    }
    std::string sig;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (!sig.empty()) sig += ';';
      sig += to_string(*it);
    }
    lines.emplace_back(std::move(sig), ns);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [sig, ns] : lines) {
    out += sig;
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

void PhaseProfiler::reset() {
  stats_.fill(Stat{});
  stack_.clear();
  folded_.clear();
}

}  // namespace sns::telemetry
