#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sns/obs/recorder.hpp"
#include "sns/telemetry/sample.hpp"

namespace sns::telemetry {

/// One declarative service-level objective over the sampled cluster state.
/// Rules are evaluated on every sample tick; violations are edge-triggered
/// into the structured event stream (one slo_violation event per episode,
/// not per tick) and accumulated into per-rule status for the end-of-run
/// summary the CLI turns into an exit code.
struct SloRule {
  enum class Kind : std::uint8_t {
    /// Scheduler decision latency p99 (us) exceeds `threshold`. Needs a
    /// metrics registry attached (the p99 comes from sim.decision_us);
    /// without one the observed value is 0 and the rule stays silent.
    kDecisionLatencyP99,
    /// The queue's head job has waited more than `threshold` seconds —
    /// the "when did the queue starve?" question, answered online.
    kQueueStarvation,
    /// Core utilization dropped by more than `threshold` (an absolute
    /// fraction, e.g. 0.25) between consecutive samples while at least
    /// `min_queue_depth` jobs were waiting: capacity collapsed although
    /// work was available.
    kUtilizationCollapse,
  };

  Kind kind = Kind::kQueueStarvation;
  std::string name;        ///< stable identifier used in events and reports
  double threshold = 0.0;  ///< us / s / utilization delta, per kind
  std::size_t min_queue_depth = 1;  ///< kUtilizationCollapse only
};

/// Running state of one rule.
struct SloStatus {
  std::uint64_t ticks_evaluated = 0;
  std::uint64_t ticks_violated = 0;
  std::uint64_t episodes = 0;  ///< transitions clean -> violating
  double first_violation_t = -1.0;
  double last_violation_t = -1.0;
  double worst_observed = 0.0;  ///< most extreme violating value seen
  bool in_violation = false;
};

/// Evaluates a rule set against each ClusterSample. Owned by the caller
/// and attached to a Sampler; the recorder (optional) routes violation
/// events into the same sns::obs stream as every scheduler decision, so a
/// Perfetto trace shows *when* an SLO broke amid the placements that
/// broke it.
class SloWatchdog {
 public:
  explicit SloWatchdog(std::vector<SloRule> rules);

  /// The default production rule set: decision p99 <= 10 ms, no job waits
  /// past 24 h, no >50% utilization collapse with a backlog.
  static std::vector<SloRule> defaultRules();

  void setRecorder(obs::Recorder* rec) { rec_ = rec; }

  /// Evaluate every rule against `s`, timestamping any violation with `t`
  /// (the sample tick time; `s.time` is not consulted).
  void evaluate(double t, const ClusterSample& s);

  const std::vector<SloRule>& rules() const { return rules_; }
  const std::vector<SloStatus>& status() const { return status_; }

  /// Total clean->violating transitions across all rules.
  std::uint64_t totalEpisodes() const;
  bool anyViolation() const { return totalEpisodes() > 0; }

  /// Human-readable per-rule summary (util::Table). The CLI prints this
  /// and exits non-zero when anyViolation() under --enforce-slo.
  std::string renderSummary() const;

  void reset();

 private:
  /// Observed value + violation verdict for one rule on one sample.
  std::pair<double, bool> check(const SloRule& r, const ClusterSample& s) const;

  std::vector<SloRule> rules_;
  std::vector<SloStatus> status_;
  obs::Recorder* rec_ = nullptr;
  double prev_core_util_ = -1.0;
};

}  // namespace sns::telemetry
