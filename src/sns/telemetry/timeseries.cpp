#include "sns/telemetry/timeseries.hpp"

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::telemetry {

Series::Series(std::size_t budget) : budget_(budget) {
  SNS_REQUIRE(budget >= 2, "series budget must be at least 2");
  pts_.reserve(budget + 1);
}

void Series::append(double t, double v) {
  // Whole-run rollups first (they are downsampling-independent).
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  last_ = v;
  sum_ += v;

  // Bucket of this sample at the current level. Buckets are contiguous
  // from index 0, and the retained points cover buckets 0..pts_.size()-1,
  // so the sample either extends the last point or opens the next bucket.
  const std::uint64_t bucket = n_ >> level_;
  ++n_;
  if (!pts_.empty() && bucket < pts_.size()) {
    SeriesPoint& p = pts_.back();
    p.t_last = t;
    p.last = v;
    p.min = std::min(p.min, v);
    p.max = std::max(p.max, v);
    p.sum += v;
    ++p.count;
    return;
  }
  SeriesPoint p;
  p.t_first = p.t_last = t;
  p.last = v;
  p.min = p.max = v;
  p.sum = v;
  p.count = 1;
  pts_.push_back(p);
  if (pts_.size() > budget_) compact();
}

void Series::compact() {
  // Merge index-aligned pairs: after level += 1, old points 2j and 2j+1
  // share new bucket j. An odd tail point survives alone and keeps
  // filling — its bucket is simply not complete yet.
  ++level_;
  std::size_t out = 0;
  for (std::size_t i = 0; i < pts_.size(); i += 2) {
    SeriesPoint p = pts_[i];
    if (i + 1 < pts_.size()) {
      const SeriesPoint& q = pts_[i + 1];
      p.t_last = q.t_last;
      p.last = q.last;
      p.min = std::min(p.min, q.min);
      p.max = std::max(p.max, q.max);
      p.sum += q.sum;
      p.count += q.count;
    }
    pts_[out++] = p;
  }
  pts_.resize(out);
}

void Series::setBudget(std::size_t budget) {
  SNS_REQUIRE(budget >= 2, "series budget must be at least 2");
  budget_ = budget;
  while (pts_.size() > budget_) compact();
}

const SeriesPoint* Series::at(double t) const {
  if (pts_.empty() || t < pts_.front().t_first) return nullptr;
  // Last point with t_first <= t (points are in ascending time order).
  auto it = std::upper_bound(
      pts_.begin(), pts_.end(), t,
      [](double x, const SeriesPoint& p) { return x < p.t_first; });
  return &*std::prev(it);
}

void Series::clear() {
  pts_.clear();
  level_ = 0;
  n_ = 0;
  last_ = min_ = max_ = sum_ = 0.0;
}

TimeSeriesStore::TimeSeriesStore(std::size_t budget_per_series)
    : budget_(budget_per_series) {
  SNS_REQUIRE(budget_per_series >= 2, "store budget must be at least 2");
}

Series& TimeSeriesStore::series(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  Key key{std::string(name), std::move(labels)};
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(std::move(key), Series(budget_)).first;
  }
  return it->second;
}

const Series* TimeSeriesStore::find(std::string_view name,
                                    const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  auto it = series_.find(Key{std::string(name), std::move(sorted)});
  return it == series_.end() ? nullptr : &it->second;
}

}  // namespace sns::telemetry
