#include "sns/telemetry/sampler.hpp"

#include <algorithm>

#include "sns/util/error.hpp"

namespace sns::telemetry {

Sampler::Sampler(TimeSeriesStore& store, SamplerConfig cfg)
    : store_(&store), cfg_(cfg) {
  SNS_REQUIRE(cfg.period_s > 0.0, "sampler period must be positive");
  s_core_util_ = &store.series("cluster.core_util");
  s_way_util_ = &store.series("cluster.way_util");
  s_bw_util_ = &store.series("cluster.bw_util");
  s_busy_nodes_ = &store.series("cluster.busy_nodes");
  s_running_ = &store.series("jobs.running");
  s_queue_depth_ = &store.series("queue.depth");
  s_head_age_ = &store.series("queue.head_age_s");
  s_solver_hit_ = &store.series("solver.hit_rate");
  s_decision_p99_ = &store.series("sched.decision_us_p99");
  s_node_occ_min_ = &store.series("node.core_occ_min");
  s_node_occ_mean_ = &store.series("node.core_occ_mean");
  s_node_occ_max_ = &store.series("node.core_occ_max");
}

void Sampler::recordTick(double t, const ClusterSample& s) {
  s_core_util_->append(t, s.core_util);
  s_way_util_->append(t, s.way_util);
  s_bw_util_->append(t, s.bw_util);
  s_busy_nodes_->append(t, static_cast<double>(s.busy_nodes));
  s_running_->append(t, static_cast<double>(s.running_jobs));
  s_queue_depth_->append(t, static_cast<double>(s.queue_depth));
  s_head_age_->append(t, s.queue_head_age_s);
  s_solver_hit_->append(t, s.solver_hit_rate);
  s_decision_p99_->append(t, s.decision_us_p99);

  if (!s.node_core_occ.empty()) {
    double mn = s.node_core_occ.front();
    double mx = mn;
    double sum = 0.0;
    for (double occ : s.node_core_occ) {
      mn = std::min(mn, occ);
      mx = std::max(mx, occ);
      sum += occ;
    }
    s_node_occ_min_->append(t, mn);
    s_node_occ_mean_->append(t, sum / static_cast<double>(s.node_core_occ.size()));
    s_node_occ_max_->append(t, mx);
    if (s_per_node_.size() < s.node_core_occ.size()) {
      const std::size_t old = s_per_node_.size();
      s_per_node_.resize(s.node_core_occ.size());
      for (std::size_t nd = old; nd < s_per_node_.size(); ++nd) {
        s_per_node_[nd] = &store_->series(
            "node.core_occ", {{"node", std::to_string(nd)}});
      }
    }
    for (std::size_t nd = 0; nd < s.node_core_occ.size(); ++nd) {
      s_per_node_[nd]->append(t, s.node_core_occ[nd]);
    }
  }

  if (watchdog_ != nullptr) watchdog_->evaluate(t, s);
  ++ticks_;
}

void Sampler::advanceTo(double now, const ClusterSample& s) {
  while (next_ <= now + 1e-12) {
    recordTick(next_, s);
    next_ += cfg_.period_s;
  }
}

void Sampler::recordScalar(const std::string& name, double t, double v,
                           Labels labels) {
  store_->series(name, std::move(labels)).append(t, v);
}

void Sampler::reset() {
  next_ = 0.0;
  ticks_ = 0;
  if (watchdog_ != nullptr) watchdog_->reset();
}

}  // namespace sns::telemetry
