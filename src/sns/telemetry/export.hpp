#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sns/obs/metrics.hpp"
#include "sns/telemetry/phase_profiler.hpp"
#include "sns/telemetry/slo.hpp"
#include "sns/telemetry/timeseries.hpp"

namespace sns::telemetry {

/// Prometheus text exposition (format 0.0.4): every registry counter
/// (`sns_<name>_total`), gauge and histogram (cumulative `_bucket` rows,
/// `_sum`, `_count`) plus the last value of every store series as a gauge
/// with its labels. Names are sanitized (`.` -> `_`, `sns_` prefix); each
/// metric carries `# HELP` and `# TYPE` lines. `uberun metrics` prints
/// this verbatim, ready for a file-based scrape.
std::string renderPrometheus(const TimeSeriesStore* store,
                             const obs::Registry* registry);

/// Everything the HTML report can show; null members are omitted.
struct ReportContext {
  std::string title;
  const TimeSeriesStore* store = nullptr;
  const obs::Registry* metrics = nullptr;
  const SloWatchdog* watchdog = nullptr;
  const PhaseProfiler* phases = nullptr;
  /// Headline facts ((label, value) pairs) rendered as stat tiles.
  std::vector<std::pair<std::string, std::string>> summary;
  std::uint64_t events_dropped = 0;  ///< ring-buffer drops, flagged if > 0
  /// sns::audit outcome when an invariant auditor ran alongside the
  /// workload (`uberun report --audit`): the auditor's report() text plus
  /// its violation count, rendered as a dedicated section. Passed as plain
  /// data so sns_telemetry does not depend on sns_audit (the audit library
  /// links telemetry for the time-series checks, not vice versa). Empty
  /// text omits the section.
  std::string audit_text;
  std::uint64_t audit_violations = 0;
  /// sns::xray outcome when a decision tracer rode along the workload
  /// (`uberun report`): the rendered hot-path attribution report, shown as
  /// a "Decision anatomy" section. Plain data for the same reason as
  /// audit_text — sns_telemetry must not depend on sns_xray. Empty text
  /// omits the section.
  std::string xray_text;
  /// sns::flight outcome when an interference flight recorder rode along
  /// the workload (`uberun report`): the rendered degradation-accounting
  /// report (bound-violation census, resource attribution, contention
  /// heatmap), shown as a "Degradation accounting" section. Plain data for
  /// the same reason as audit_text — sns_telemetry must not depend on
  /// sns_flight. Empty text omits the section.
  std::string flight_text;
  /// Degradation-bound violations counted by the recorder's census;
  /// flagged in the section header when > 0.
  std::uint64_t flight_violations = 0;
};

/// Self-contained single-file HTML dashboard: stat tiles, one inline-SVG
/// sparkline card per series (min/max band + mean line, native <title>
/// hover tooltips, no external assets or scripts), the SLO watchdog table,
/// the phase profile and folded stacks, and the raw metrics dump.
std::string renderHtmlReport(const ReportContext& ctx);

/// Terminal cluster-state view at time `at` (clamped to the sampled
/// range): headline series values with occupancy bars, plus per-node bars
/// when per-node series were recorded. Backs `uberun top --at T`.
std::string renderTop(const TimeSeriesStore& store, double at,
                      int bar_width = 32);

}  // namespace sns::telemetry
