#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sns/telemetry/sample.hpp"
#include "sns/telemetry/slo.hpp"
#include "sns/telemetry/timeseries.hpp"
#include "sns/util/thread_annotations.hpp"

namespace sns::telemetry {

/// Sampler knobs.
struct SamplerConfig {
  /// Sample cadence in (producer) seconds. Samples land exactly on
  /// multiples of the period, so series from different runs align.
  double period_s = 1.0;
  /// Retained points per series (the TimeSeriesStore budget is set by the
  /// store owner; this is only used by standalone constructors).
  std::size_t series_budget = 512;
  /// Record one series per node (node.core_occ{node=i}) only when the
  /// cluster has at most this many nodes; beyond it, the cross-node
  /// min/mean/max aggregate series stand in. 32K per-node series would
  /// dwarf the simulation itself.
  int per_node_limit = 64;
};

/// Periodic cluster-state sampler: the producer (the simulator's event
/// loop, or UberunSystem on the wall clock) offers its current state via
/// advanceTo(now, sample); the sampler writes one entry per elapsed period
/// boundary into the time-series store and runs the SLO watchdog once per
/// tick. Between discrete-event-simulator events the state is piecewise
/// constant, so stamping every boundary in the gap with the offered sample
/// is exact, not an approximation.
///
/// Thread contract: SNS_THREAD_COMPATIBLE — one producer thread drives
/// advanceTo()/recordScalar(); the cached series pointers below make
/// concurrent producers a data race by construction. Cross-thread use
/// (the daemon's wall-clock sampler) needs one Sampler per producer or an
/// external util::Mutex.
class SNS_THREAD_COMPATIBLE Sampler {
 public:
  Sampler(TimeSeriesStore& store, SamplerConfig cfg = {});

  const SamplerConfig& config() const { return cfg_; }
  TimeSeriesStore& store() { return *store_; }

  void attachWatchdog(SloWatchdog* wd) { watchdog_ = wd; }
  SloWatchdog* watchdog() const { return watchdog_; }

  /// True if at least one period boundary lies in (last sampled, now] —
  /// the producer's cheap pre-check before building a ClusterSample.
  bool due(double now) const { return now + 1e-12 >= next_; }

  /// Should the producer fill ClusterSample::node_core_occ?
  bool wantsPerNode(int nodes) const { return nodes <= cfg_.per_node_limit; }

  /// Record `s` at every period boundary in (last sampled, now]. The
  /// sample's own `time` field is ignored; each tick is stamped with its
  /// boundary time.
  void advanceTo(double now, const ClusterSample& s);

  /// Append a one-off scalar series entry (e.g. UberunSystem's wall-clock
  /// batch timings) without the periodic machinery.
  void recordScalar(const std::string& name, double t, double v,
                    Labels labels = {});

  std::uint64_t ticks() const { return ticks_; }

  /// Start a fresh run: the next sample lands on t = 0.
  void reset();

 private:
  void recordTick(double t, const ClusterSample& s);

  TimeSeriesStore* store_;
  SamplerConfig cfg_;
  SloWatchdog* watchdog_ = nullptr;
  double next_ = 0.0;  ///< next boundary to sample
  std::uint64_t ticks_ = 0;

  /// Resolved-once series pointers (map lookups off the per-tick path).
  Series* s_core_util_ = nullptr;
  Series* s_way_util_ = nullptr;
  Series* s_bw_util_ = nullptr;
  Series* s_busy_nodes_ = nullptr;
  Series* s_running_ = nullptr;
  Series* s_queue_depth_ = nullptr;
  Series* s_head_age_ = nullptr;
  Series* s_solver_hit_ = nullptr;
  Series* s_decision_p99_ = nullptr;
  Series* s_node_occ_min_ = nullptr;
  Series* s_node_occ_mean_ = nullptr;
  Series* s_node_occ_max_ = nullptr;
  std::vector<Series*> s_per_node_;  ///< grown on demand, indexed by node id
};

}  // namespace sns::telemetry
