#include "sns/telemetry/slo.hpp"

#include "sns/util/error.hpp"
#include "sns/util/table.hpp"

namespace sns::telemetry {

namespace {
const char* kindName(SloRule::Kind k) {
  switch (k) {
    case SloRule::Kind::kDecisionLatencyP99: return "decision_latency_p99";
    case SloRule::Kind::kQueueStarvation: return "queue_starvation";
    case SloRule::Kind::kUtilizationCollapse: return "utilization_collapse";
  }
  return "unknown";
}
}  // namespace

SloWatchdog::SloWatchdog(std::vector<SloRule> rules)
    : rules_(std::move(rules)), status_(rules_.size()) {
  for (auto& r : rules_) {
    SNS_REQUIRE(r.threshold > 0.0, "SLO rule threshold must be positive");
    if (r.name.empty()) r.name = kindName(r.kind);
  }
}

std::vector<SloRule> SloWatchdog::defaultRules() {
  return {
      {SloRule::Kind::kDecisionLatencyP99, "decision_p99_budget", 10000.0, 1},
      {SloRule::Kind::kQueueStarvation, "queue_starvation", 86400.0, 1},
      {SloRule::Kind::kUtilizationCollapse, "utilization_collapse", 0.5, 1},
  };
}

std::pair<double, bool> SloWatchdog::check(const SloRule& r,
                                           const ClusterSample& s) const {
  switch (r.kind) {
    case SloRule::Kind::kDecisionLatencyP99:
      return {s.decision_us_p99, s.decision_us_p99 > r.threshold};
    case SloRule::Kind::kQueueStarvation:
      return {s.queue_head_age_s,
              s.queue_depth > 0 && s.queue_head_age_s > r.threshold};
    case SloRule::Kind::kUtilizationCollapse: {
      const double drop =
          prev_core_util_ >= 0.0 ? prev_core_util_ - s.core_util : 0.0;
      return {drop, s.queue_depth >= r.min_queue_depth && drop > r.threshold};
    }
  }
  return {0.0, false};
}

void SloWatchdog::evaluate(double t, const ClusterSample& s) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    SloStatus& st = status_[i];
    const auto [observed, violated] = check(r, s);
    ++st.ticks_evaluated;
    if (violated) {
      ++st.ticks_violated;
      if (st.first_violation_t < 0.0) st.first_violation_t = t;
      st.last_violation_t = t;
      if (observed > st.worst_observed) st.worst_observed = observed;
      if (!st.in_violation) {
        ++st.episodes;
        if (rec_ != nullptr) {
          rec_->setTime(t);  // stamp the event with the sample tick
          rec_->sloViolation(r.name, observed, r.threshold,
                             std::string(kindName(r.kind)) + " breached at t=" +
                                 util::fmt(t, 1));
        }
      }
    }
    st.in_violation = violated;
  }
  prev_core_util_ = s.core_util;
}

std::uint64_t SloWatchdog::totalEpisodes() const {
  std::uint64_t n = 0;
  for (const auto& st : status_) n += st.episodes;
  return n;
}

std::string SloWatchdog::renderSummary() const {
  util::Table t({"rule", "kind", "threshold", "episodes", "ticks violated",
                 "worst", "first t", "last t"});
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    const SloStatus& st = status_[i];
    t.addRow({r.name, kindName(r.kind), util::fmt(r.threshold, 2),
              std::to_string(st.episodes),
              std::to_string(st.ticks_violated) + "/" +
                  std::to_string(st.ticks_evaluated),
              st.episodes > 0 ? util::fmt(st.worst_observed, 2) : "-",
              st.episodes > 0 ? util::fmt(st.first_violation_t, 1) : "-",
              st.episodes > 0 ? util::fmt(st.last_violation_t, 1) : "-"});
  }
  return t.render();
}

void SloWatchdog::reset() {
  status_.assign(rules_.size(), SloStatus{});
  prev_core_util_ = -1.0;
}

}  // namespace sns::telemetry
