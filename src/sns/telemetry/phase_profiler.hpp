#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sns::telemetry {

/// The scheduler hot-path phases instrumented by sim::ClusterSimulator.
/// Values are stable (they index the profile and encode folded stacks).
enum class Phase : std::uint8_t {
  kQueueWalk = 0,      ///< priority-ordered queue scan of one scheduling point
  kLedgerScan,         ///< policy tryPlace: feasibility + node selection
  kPlacementCommit,    ///< startJob: ledger allocation, solo model, events
  kContentionSolve,    ///< per-node co-run solve (solver or memo cache)
  kRateRefresh,        ///< re-deriving progress rates of affected jobs
  kAccounting,         ///< busy-node integral + bandwidth episode fill
  kCount_,             ///< sentinel
};

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount_);

/// Stable lowercase name, e.g. "queue_walk".
const char* to_string(Phase p);

/// Aggregating wall-clock profiler for the scheduler's phases. Scopes are
/// opened/closed via ScopedPhase (RAII) and may nest: a contention solve
/// inside a placement commit inside a queue walk accumulates into all
/// three totals, while self-time subtracts the children so the flat
/// profile sums to the instrumented wall time exactly once. Each unique
/// scope stack additionally accumulates self-time under its folded
/// signature ("queue_walk;placement_commit;contention_solve"), the input
/// format of every flamegraph tool.
///
/// Single-threaded by design (one simulator, one thread) and null-safe at
/// the call sites: a ScopedPhase over a null profiler is two predictable
/// branches and zero clock reads, so the disabled hot path stays at the
/// seed simulator's cost.
class PhaseProfiler {
 public:
  struct Stat {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;  ///< inclusive (with children)
    std::uint64_t self_ns = 0;   ///< exclusive (children subtracted)
    std::uint64_t max_ns = 0;    ///< worst single inclusive scope
  };

  void enter(Phase p);
  void exit();

  const Stat& stat(Phase p) const {
    return stats_[static_cast<std::size_t>(p)];
  }
  /// Total instrumented wall time (sum of self times = sum of top-level
  /// inclusive times).
  std::uint64_t totalSelfNs() const;

  /// Flat profile as a util::Table: calls, inclusive/self ms, % of
  /// instrumented time, worst call.
  std::string renderTable() const;

  /// Folded-stack lines, "queue_walk;ledger_scan <self_ns>", sorted by
  /// signature — feed to inferno / flamegraph.pl / speedscope.
  std::string foldedStacks() const;

  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  struct Frame {
    Phase phase;
    Clock::time_point start;
    std::uint64_t child_ns = 0;
    std::uint64_t path;  ///< folded-stack signature up to this frame
  };

  std::array<Stat, kPhaseCount> stats_{};
  std::vector<Frame> stack_;
  /// Folded signature (5 bits per frame, bottom frame in the low bits;
  /// phase+1 so 0 means "no frame") -> accumulated self ns. Depth is
  /// bounded by the phase nesting the simulator can produce (<= 12 fits).
  std::unordered_map<std::uint64_t, std::uint64_t> folded_;
};

/// RAII scope. Null profiler -> no-op (no clock reads).
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* prof, Phase p) : prof_(prof) {
    if (prof_ != nullptr) prof_->enter(p);
  }
  ~ScopedPhase() {
    if (prof_ != nullptr) prof_->exit();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* prof_;
};

}  // namespace sns::telemetry
