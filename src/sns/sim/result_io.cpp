#include "sns/sim/result_io.hpp"

#include <fstream>
#include <sstream>

#include "sns/app/jobspec_io.hpp"
#include "sns/util/error.hpp"

namespace sns::sim {

// GCC 12 at -O2 flags spurious maybe-uninitialized / array-bounds inside
// the std::variant move when a freshly built Json value is pushed into an
// array (GCC PR 105705 family); the code is well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Warray-bounds"
util::Json resultToJson(const SimResult& result) {
  util::Json j;
  j["policy"] = util::Json(result.policy);
  j["makespan"] = util::Json(result.makespan);
  j["busy_node_seconds"] = util::Json(result.busy_node_seconds);
  util::Json::Array jobs;
  jobs.reserve(result.jobs.size());
  for (const auto& r : result.jobs) {
    util::Json job;
    job["id"] = util::Json(static_cast<std::int64_t>(r.id));
    job["spec"] = app::jobSpecToJson(r.spec);
    job["submit"] = util::Json(r.submit);
    job["start"] = util::Json(r.start);
    job["finish"] = util::Json(r.finish);
    util::Json::Array nodes;
    for (int nd : r.placement.nodes) nodes.push_back(util::Json(nd));
    job["nodes"] = util::Json(std::move(nodes));
    job["procs_per_node"] = util::Json(r.placement.procs_per_node);
    job["scale"] = util::Json(r.placement.scale_factor);
    job["ways"] = util::Json(r.placement.ways);
    job["bw_gbps"] = util::Json(r.placement.bw_gbps);
    job["net_gbps"] = util::Json(r.placement.net_gbps);
    job["exclusive"] = util::Json(r.placement.exclusive);
    jobs.push_back(std::move(job));
  }
  j["jobs"] = util::Json(std::move(jobs));
  return j;
}
#pragma GCC diagnostic pop

SimResult resultFromJson(const util::Json& j) {
  SimResult res;
  res.policy = j.get("policy").asString();
  res.makespan = j.get("makespan").asNumber();
  res.busy_node_seconds = j.get("busy_node_seconds").asNumber();
  for (const auto& job : j.get("jobs").asArray()) {
    JobRecord r;
    r.id = static_cast<sched::JobId>(job.get("id").asNumber());
    r.spec = app::jobSpecFromJson(job.get("spec"));
    r.submit = job.get("submit").asNumber();
    r.start = job.get("start").asNumber();
    r.finish = job.get("finish").asNumber();
    for (const auto& nd : job.get("nodes").asArray()) {
      r.placement.nodes.push_back(static_cast<int>(nd.asNumber()));
    }
    r.placement.procs_per_node =
        static_cast<int>(job.get("procs_per_node").asNumber());
    r.placement.scale_factor = static_cast<int>(job.get("scale").asNumber());
    r.placement.ways = static_cast<int>(job.get("ways").asNumber());
    r.placement.bw_gbps = job.get("bw_gbps").asNumber();
    r.placement.net_gbps = job.get("net_gbps").asNumber();
    r.placement.exclusive = job.get("exclusive").asBool();
    res.jobs.push_back(std::move(r));
  }
  return res;
}

void saveResult(const std::string& path, const SimResult& result) {
  std::ofstream out(path);
  if (!out) throw util::DataError("cannot open for writing: " + path);
  out << resultToJson(result).dump(2) << "\n";
  if (!out) throw util::DataError("write failed: " + path);
}

SimResult loadResult(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::DataError("cannot open for reading: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return resultFromJson(util::Json::parse(ss.str()));
}

}  // namespace sns::sim
