#include "sns/sim/metrics.hpp"

#include "sns/util/error.hpp"
#include "sns/util/stats.hpp"

namespace sns::sim {

double SimResult::meanTurnaround() const {
  SNS_REQUIRE(!jobs.empty(), "no jobs in result");
  double s = 0.0;
  for (const auto& j : jobs) s += j.turnaround();
  return s / static_cast<double>(jobs.size());
}

double SimResult::meanWait() const {
  SNS_REQUIRE(!jobs.empty(), "no jobs in result");
  double s = 0.0;
  for (const auto& j : jobs) s += j.waitTime();
  return s / static_cast<double>(jobs.size());
}

double SimResult::meanRun() const {
  SNS_REQUIRE(!jobs.empty(), "no jobs in result");
  double s = 0.0;
  for (const auto& j : jobs) s += j.runTime();
  return s / static_cast<double>(jobs.size());
}

std::vector<double> runTimeRatios(const SimResult& test, const SimResult& base) {
  SNS_REQUIRE(test.jobs.size() == base.jobs.size(),
              "results are not from the same sequence");
  std::vector<double> out;
  out.reserve(test.jobs.size());
  for (std::size_t i = 0; i < test.jobs.size(); ++i) {
    SNS_REQUIRE(test.jobs[i].id == base.jobs[i].id, "job id mismatch");
    out.push_back(test.jobs[i].runTime() / base.jobs[i].runTime());
  }
  return out;
}

double geomeanRunTimeRatio(const SimResult& test, const SimResult& base) {
  const auto ratios = runTimeRatios(test, base);
  return util::geomean(ratios);
}

int thresholdViolations(const SimResult& test, const SimResult& base, double alpha) {
  SNS_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  const auto ratios = runTimeRatios(test, base);
  int n = 0;
  for (double r : ratios) {
    if (r > 1.0 / alpha + 1e-12) ++n;
  }
  return n;
}

double bandwidthVariance(const SimResult& r, double peak_bw) {
  SNS_REQUIRE(peak_bw > 0.0, "peak bandwidth must be positive");
  util::RunningStats stats;
  for (const auto& node : r.node_bw_episodes) {
    for (double bw : node) stats.add(bw);
  }
  SNS_REQUIRE(stats.count() > 0, "result has no monitoring episodes");
  return stats.stddev() / peak_bw;
}

}  // namespace sns::sim
