#include "sns/sim/metrics.hpp"

#include "sns/util/error.hpp"
#include "sns/util/stats.hpp"

namespace sns::sim {

namespace {
// Mean of `get` over completed jobs; 0.0 when none completed. Guarding
// here (instead of SNS_REQUIREing non-emptiness) keeps partial results —
// e.g. a result assembled from an aborted or still-loading run — from
// dividing by zero and silently spreading NaN through derived metrics.
template <typename Fn>
double meanOverCompleted(const std::vector<JobRecord>& jobs, Fn get) {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (!j.completed()) continue;
    s += get(j);
    ++n;
  }
  return n > 0 ? s / static_cast<double>(n) : 0.0;
}
}  // namespace

double SimResult::meanTurnaround() const {
  return meanOverCompleted(jobs, [](const JobRecord& j) { return j.turnaround(); });
}

double SimResult::meanWait() const {
  return meanOverCompleted(jobs, [](const JobRecord& j) { return j.waitTime(); });
}

double SimResult::meanRun() const {
  return meanOverCompleted(jobs, [](const JobRecord& j) { return j.runTime(); });
}

std::vector<double> runTimeRatios(const SimResult& test, const SimResult& base) {
  SNS_REQUIRE(test.jobs.size() == base.jobs.size(),
              "results are not from the same sequence");
  std::vector<double> out;
  out.reserve(test.jobs.size());
  for (std::size_t i = 0; i < test.jobs.size(); ++i) {
    SNS_REQUIRE(test.jobs[i].id == base.jobs[i].id, "job id mismatch");
    // A zero / near-zero base runtime (zero-work job, trace glitch) would
    // turn one ratio into inf and poison every geomean built on top;
    // degenerate pairs count as "no slowdown" instead.
    const double b = base.jobs[i].runTime();
    out.push_back(b > 1e-12 ? test.jobs[i].runTime() / b : 1.0);
  }
  return out;
}

double geomeanRunTimeRatio(const SimResult& test, const SimResult& base) {
  const auto ratios = runTimeRatios(test, base);
  return util::geomean(ratios);
}

int thresholdViolations(const SimResult& test, const SimResult& base, double alpha) {
  SNS_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  const auto ratios = runTimeRatios(test, base);
  int n = 0;
  for (double r : ratios) {
    if (r > 1.0 / alpha + 1e-12) ++n;
  }
  return n;
}

double bandwidthVariance(const SimResult& r, double peak_bw) {
  SNS_REQUIRE(peak_bw > 0.0, "peak bandwidth must be positive");
  util::RunningStats stats;
  for (const auto& node : r.node_bw_episodes) {
    for (double bw : node) stats.add(bw);
  }
  SNS_REQUIRE(stats.count() > 0, "result has no monitoring episodes");
  return stats.stddev() / peak_bw;
}

}  // namespace sns::sim
