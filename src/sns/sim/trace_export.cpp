#include "sns/sim/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "sns/obs/perfetto.hpp"
#include "sns/util/error.hpp"

namespace sns::sim {

namespace {

constexpr int kSchedulerPid = 0;

int nodePid(int node) { return node + 1; }

std::string jobLabel(const JobRecord& j) {
  std::string out = "J";
  out += std::to_string(j.id);
  out += " " + j.spec.program + "/" + std::to_string(j.spec.procs) +
         " k=" + std::to_string(j.placement.scale_factor) +
         (j.placement.exclusive ? " excl" : " w=" + std::to_string(j.placement.ways));
  return out;
}

}  // namespace

util::Json exportPerfetto(const SimResult& res, std::span<const obs::Event> events,
                          const TraceExportOptions& opts) {
  obs::PerfettoTraceBuilder b;

  // Scheduler decisions render above the node lanes.
  b.processName(kSchedulerPid, "scheduler (" + res.policy + ")");
  b.processSortIndex(kSchedulerPid, 0);

  const int n_nodes = static_cast<int>(res.node_bw_episodes.size());
  for (int nd = 0; nd < n_nodes; ++nd) {
    b.processName(nodePid(nd), "node " + std::to_string(nd));
    b.processSortIndex(nodePid(nd), nd + 1);
    // Monitoring episodes as a stepped counter track; a closing zero sample
    // keeps the last step from extending forever in the UI.
    const auto& eps = res.node_bw_episodes[static_cast<std::size_t>(nd)];
    if (eps.empty()) {
      b.addCounter(nodePid(nd), "bandwidth (GB/s)", 0.0, 0.0);
    } else {
      for (std::size_t e = 0; e < eps.size(); ++e) {
        b.addCounter(nodePid(nd), "bandwidth (GB/s)",
                     static_cast<double>(e) * opts.episode_s, eps[e]);
      }
      b.addCounter(nodePid(nd), "bandwidth (GB/s)",
                   static_cast<double>(eps.size()) * opts.episode_s, 0.0);
    }
  }

  // Per-node contention lanes: the flight recorder's retained co-residency
  // intervals, converted to a stepped counter of the instantaneous
  // attributed-deficit rate (slowdown seconds per second) of every job
  // bottlenecked on the node. Jobs iterate in ascending id and intervals
  // in time order, and the per-node sweep is a stable sort + same-instant
  // coalesce — the lane is deterministic for a deterministic recorder.
  if (opts.flight != nullptr) {
    std::vector<std::vector<std::pair<double, double>>> deltas(
        static_cast<std::size_t>(n_nodes));
    for (const flight::JobRollup& j : opts.flight->jobs()) {
      for (const flight::Interval& iv : j.intervals) {
        if (iv.node < 0 || iv.node >= n_nodes || iv.t1 <= iv.t0) continue;
        const double rate = iv.deficit / (iv.t1 - iv.t0);
        if (rate == 0.0) continue;
        auto& d = deltas[static_cast<std::size_t>(iv.node)];
        d.emplace_back(iv.t0, rate);
        d.emplace_back(iv.t1, -rate);
      }
    }
    for (int nd = 0; nd < n_nodes; ++nd) {
      auto& d = deltas[static_cast<std::size_t>(nd)];
      if (d.empty()) continue;
      std::stable_sort(d.begin(), d.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      double level = 0.0;
      for (std::size_t i = 0; i < d.size();) {
        const double t = d[i].first;
        for (; i < d.size() && d[i].first == t; ++i) level += d[i].second;
        b.addCounter(nodePid(nd), "interference (slowdown s/s)", t,
                     std::max(level, 0.0));
      }
    }
  }

  // Jobs as duration slices, one lane per job inside each node it touched
  // (lanes never nest, so concurrent residents stay readable).
  for (const auto& j : res.jobs) {
    if (!j.completed()) continue;
    util::Json::Object args;
    args["program"] = j.spec.program;
    args["procs"] = j.spec.procs;
    args["nodes"] = j.placement.nodeCount();
    args["procs_per_node"] = j.placement.procs_per_node;
    args["ways"] = j.placement.ways;
    args["scale_factor"] = j.placement.scale_factor;
    args["exclusive"] = j.placement.exclusive;
    args["bw_reserved_gbps"] = j.placement.bw_gbps;
    args["submit_s"] = j.submit;
    args["wait_s"] = j.waitTime();
    const int tid = static_cast<int>(j.id) + 1;
    for (int nd : j.placement.nodes) {
      b.threadName(nodePid(nd), tid, "job " + std::to_string(j.id));
      b.addSlice(nodePid(nd), tid, j.start, j.finish, jobLabel(j), args);
    }
  }

  // Decision anatomy: the xray tracer's retained spans as nested duration
  // slices under the scheduler process, one lane per nesting depth so the
  // span tree reads as a flame. Each pass anchors at its virtual time;
  // within a pass, real nanoseconds map 1:1 onto the virtual axis (a
  // 500 us decision renders as a 500 us flame at its scheduling point).
  if (opts.xray != nullptr && !opts.xray->records().empty()) {
    constexpr int kSpanLaneBase = 100;
    bool named_depths[32] = {};
    for (const xray::SpanRecord& s : opts.xray->records()) {
      const int lane = kSpanLaneBase + static_cast<int>(s.depth);
      if (s.depth < 32 && !named_depths[s.depth]) {
        named_depths[s.depth] = true;
        b.threadName(kSchedulerPid, lane,
                     "decision anatomy (depth " + std::to_string(s.depth) + ")");
      }
      util::Json::Object args;
      args["pass"] = util::Json(static_cast<std::int64_t>(s.pass));
      if (s.job >= 0) args["job"] = util::Json(s.job);
      b.addSlice(kSchedulerPid, lane,
                 s.sim_time + static_cast<double>(s.t0_ns) / 1e9,
                 s.sim_time + static_cast<double>(s.t1_ns) / 1e9,
                 to_string(s.kind), std::move(args));
    }
  }

  // Decision log: instant markers grouped by event type, plus the queue
  // depth reconstructed from submit/start pairs.
  std::size_t first_instant = 0;
  if (opts.max_instants > 0 && events.size() > opts.max_instants) {
    first_instant = events.size() - opts.max_instants;
  }
  long queue_depth = 0;
  bool named_lanes[16] = {};
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Event& e = events[i];
    if (e.type == obs::EventType::kJobSubmitted) {
      b.addCounter(kSchedulerPid, "queue depth", e.time,
                   static_cast<double>(++queue_depth));
    } else if (e.type == obs::EventType::kJobStarted) {
      b.addCounter(kSchedulerPid, "queue depth", e.time,
                   static_cast<double>(--queue_depth));
    }
    if (i < first_instant) continue;
    const int lane = static_cast<int>(e.type) + 1;
    if (!named_lanes[static_cast<std::size_t>(e.type)]) {
      named_lanes[static_cast<std::size_t>(e.type)] = true;
      b.threadName(kSchedulerPid, lane, to_string(e.type));
    }
    b.addInstant(kSchedulerPid, lane, e.time, to_string(e.type),
                 toJson(e).asObject());
  }

  return b.build();
}

void writePerfettoFile(const std::string& path, const SimResult& res,
                       std::span<const obs::Event> events,
                       const TraceExportOptions& opts) {
  std::ofstream os(path);
  SNS_REQUIRE(os.good(), "cannot open trace output file: " + path);
  os << exportPerfetto(res, events, opts).dump() << '\n';
  SNS_REQUIRE(os.good(), "failed writing trace output file: " + path);
}

}  // namespace sns::sim
