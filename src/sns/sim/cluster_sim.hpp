#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sns/actuator/resource_ledger.hpp"
#include "sns/app/library.hpp"
#include "sns/app/workload_gen.hpp"
#include "sns/obs/metrics.hpp"
#include "sns/obs/recorder.hpp"
#include "sns/perfmodel/estimator.hpp"
#include "sns/perfmodel/solver_cache.hpp"
#include "sns/profile/database.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sched/finish_calendar.hpp"
#include "sns/sched/policies.hpp"
#include "sns/sched/queue.hpp"
#include "sns/telemetry/phase_profiler.hpp"
#include "sns/telemetry/sampler.hpp"
#include "sns/xray/span.hpp"

namespace sns::audit {
class Auditor;
}

namespace sns::flight {
class FlightRecorder;
}

namespace sns::sim {

struct JobRecord;

/// Performance-path switches of the simulator. Everything defaults to the
/// fast path; each legacy path is kept so the equivalence suite
/// (tests/sim/test_sim_equivalence.cpp) can prove optimized == legacy
/// bit-for-bit on the simulated results. See DESIGN.md "Simulator
/// performance architecture".
struct SimOptFlags {
  /// Incrementally maintained idle-core index in the resource ledger vs
  /// the legacy full scan of all nodes per selection query.
  bool indexed_ledger = true;
  /// Cache NodeContentionSolver::solve() outcomes keyed on the node's
  /// co-run signature; trace replay re-solves identical co-run sets
  /// thousands of times.
  bool memoize_solves = true;
  /// Walk the queue once per scheduling point, continuing past a
  /// successful placement (placements only shrink free resources, so
  /// previously skipped jobs stay unplaceable within the point) vs the
  /// legacy restart-from-head walk that re-ran tryPlace over the whole
  /// skipped prefix after every placement — O(Q^2) in queue depth.
  bool single_pass_schedule = true;
  /// Incremental candidate pruning: the ledger memoizes selection queries
  /// and reuses the previous decision's scored node set, invalidating by
  /// a dirty log of which idle-core range each allocate/release touched;
  /// plus an O(cores) feasibility upper bound that fast-fails hopeless
  /// scans. The dominant cost of the contended SNS decision path — deep
  /// queues re-scoring an unchanged cluster — collapses to hash lookups.
  bool incremental_prune = true;
  /// Batched queue-head scoring: amortize per-pass work across the queued
  /// jobs scored against the same ledger. (a) tryPlace failures are
  /// remembered per (program, procs, alpha) spec and skipped until a
  /// release or profile change could unblock them (failure is monotone
  /// under allocations); (b) the SNS demand-curve evaluation and the
  /// estimator's solo baselines are memoized as pure functions; (c) rate
  /// refreshes for the pass's placements are coalesced into one
  /// end-of-pass refresh over the union of dirty nodes (nothing reads
  /// rates mid-pass, so the final solve is what counts). The spec-skip
  /// and deferred-refresh arms disable themselves while an event sink or
  /// provenance tracing is attached, so diagnostic streams stay complete.
  bool batched_scoring = true;
  /// Parallel placement search: shard large bucket scans and candidate
  /// scoring across util::ThreadPool workers with fixed shard boundaries
  /// and an ordered merge — results are bit-identical to the serial scan
  /// regardless of worker timing. Engages only when the cluster has at
  /// least `parallel_min_candidates` nodes and the host has >1 hardware
  /// thread (or SimConfig::search_pool is injected).
  bool parallel_select = true;
  /// SIMD-friendly solver inner loop: cache-missed contention solves run
  /// through NodeContentionSolver::solveInto() — flat reusable arrays the
  /// compiler can vectorize, identical arithmetic, zero allocations.
  bool simd_solver = true;
  /// Minimum bucket/candidate size before parallel_select shards a scan
  /// (below it, handing work to the pool costs more than the scan).
  /// Tests set 1 to force the parallel path on small clusters.
  int parallel_min_candidates = 2048;
  // ---- O(log n) event engine (DESIGN.md section 11) -------------------------
  // Progress accounting is settled-at-rate-boundary in EVERY configuration
  // (the canonical arithmetic; see the numeric re-baseline note in
  // DESIGN.md section 11). These flags switch the *structures* around that
  // arithmetic, so each legacy arm stays bit-identical to its optimized
  // arm and the equivalence suite can prove it.
  /// Lazy progress accounting: with the flag on, a running job's state is
  /// touched only at its rate boundaries (start, a co-runner change on one
  /// of its nodes, finish). The legacy arm additionally performs the old
  /// per-event `remaining -= dt * rate` write over every active job — the
  /// O(active)-per-event cost the re-baseline made redundant (decisions
  /// read only the boundary-settled anchors in both arms).
  bool lazy_progress = true;
  /// Deterministic finish-time calendar: an indexed min-heap keyed on
  /// (projected finish time, JobId) replaces both the per-event
  /// next-completion min-scan and the done-job sweep; jobs are re-keyed
  /// only when a rate refresh actually touches them. The legacy arm scans
  /// the active set reading the same cached projections.
  bool finish_calendar = true;
  /// Skip scheduling passes that provably cannot place anything: the
  /// queue is empty, or the previous pass placed nothing with every
  /// failure memoized and nothing since could unblock one (no admission,
  /// no profile change, and every release stayed below the failed-spec
  /// memo's query-core floor — peeked, not consumed). Skipped passes do
  /// no work at all (no clock reads, no walk); sim.futile_pass_skips
  /// counts them. Engages the memo arm only under batchFastPath() and
  /// skips entirely only when no xray tracer wants per-pass spans.
  bool futile_pass_gate = true;
  /// Deduplicate contention solves across dirty nodes with identical
  /// resident sets: every node of a spread placement hosts the same
  /// ordered job list (a job's allocation is uniform across its nodes),
  /// so one representative solve per group is broadcast instead of
  /// rebuilding and re-solving the same signature per node.
  bool dedup_node_solves = true;
  /// Slot-indexed rate derivation: each running job carries flat per-node
  /// rate/bandwidth slots (parallel to its placement's node list) that
  /// dirty-node solves write through, so re-deriving a job's progress
  /// rate reads two contiguous arrays instead of searching each node's
  /// resident list. Summation order equals the legacy per-node walk.
  bool slot_rates = true;
};

/// Simulator knobs.
struct SimConfig {
  int nodes = 8;                    ///< cluster size
  sched::PolicyKind policy = sched::PolicyKind::kSNS;
  double monitor_episode_s = 30.0;  ///< per-node bandwidth sampling window;
                                    ///< <= 0 disables monitoring (big traces)
  double age_limit_s = 900.0;       ///< queue head age that stops backfilling
  int max_queue_scan = 1 << 20;     ///< max queue entries examined per point
  /// SNS's donate-unused-ways optimisation (§4.4); switchable for ablation.
  bool donate_unused_ways = true;
  /// Enforce per-job bandwidth reservations in hardware (Intel MBA). The
  /// paper's 2018 testbed lacked MBA, so its SNS only *estimates* usage —
  /// one source of slowdown-threshold violations (§6.2). Turning this on
  /// models an MBA-equipped cluster.
  bool enforce_bandwidth_caps = false;
  /// Piggybacked profiling (§4.1-4.2): exclusive runs are profiled by the
  /// per-node monitors and accumulated into a run-local database, so
  /// unknown programs converge to full profiles across submissions. The
  /// input database still seeds everything already known.
  bool online_profiling = false;
  /// PMU/episode knobs of the online monitor.
  profile::ProfilerConfig monitor;
  sched::SnsPolicy::Options sns;    ///< SNS-specific options
  /// Hot-path implementation switches (A/B-testable; results identical).
  SimOptFlags opt;
  /// Worker pool for opt.parallel_select. Null (the default) lets the
  /// simulator create its own pool when the cluster is large enough and
  /// the host is multi-core; tests inject a pool here (with
  /// opt.parallel_min_candidates = 1) to force the sharded path on any
  /// host. Caller-owned, must outlive run(); ignored when
  /// opt.parallel_select is off.
  util::ThreadPool* search_pool = nullptr;
  /// Structured decision trace (sns::obs): every scheduling attempt,
  /// placement, way donation, backfill skip and job start/finish is
  /// recorded into this sink. Null (the default) disables tracing
  /// entirely — the hot loop then performs no event construction and no
  /// allocations. The sink is caller-owned and must outlive run().
  obs::EventSink* sink = nullptr;
  /// Metrics registry (counters / gauges / histograms under "sim.*").
  /// Null disables collection; caller-owned, must outlive run().
  obs::Registry* metrics = nullptr;
  /// Time-series telemetry (sns::telemetry): the simulator's event loop
  /// offers its state to the sampler on every virtual-clock advance, so
  /// utilization / queue / latency series land on the sampler's period
  /// grid. Null (the default) disables sampling entirely — the hot loop
  /// then performs one pointer check per event and nothing else. The
  /// sampler (and its store/watchdog) are caller-owned, must outlive
  /// run(), and measure ONE run each: call Sampler::reset() before
  /// reusing. Overhead with sampling on is <2% (bench_telemetry_overhead).
  telemetry::Sampler* sampler = nullptr;
  /// Scheduler phase profiler (scoped RAII timers over the queue walk,
  /// ledger scan, placement commit, contention solve, rate refresh and
  /// accounting hot paths). Null disables all clock reads; caller-owned,
  /// must outlive run().
  telemetry::PhaseProfiler* phases = nullptr;
  /// Decision tracer + provenance (sns::xray): every scheduling pass
  /// becomes a decision span tree (candidate pruning, curve scoring,
  /// solver calls, commit, rate refresh) with nanosecond attribution, and
  /// the policy records per-job placement provenance for `uberun explain`.
  /// Null (the default) is zero-cost — each span site is one predictable
  /// branch and no clocks are read. Sampling (TracerConfig::sample_period)
  /// bounds the overhead of attached tracers (<=3% at Fig-20 scale,
  /// bench_xray_overhead); simulation results are bit-identical with the
  /// tracer on or off (tests/sim/test_xray_equivalence.cpp). Caller-owned,
  /// must outlive run(); measures ONE run — call Tracer::reset() before
  /// reusing.
  xray::Tracer* xray = nullptr;
  /// Runtime invariant auditor (sns::audit): when set — and the build
  /// compiled the hooks in (SNS_AUDIT, on by default outside Release) —
  /// every scheduling point cross-validates the ledger's cached occupancy
  /// totals and idle-core buckets, the queue's tombstone accounting and
  /// the solver cache's signature consistency against full recomputation.
  /// Null (the default) costs nothing; caller-owned, must outlive run().
  /// A fail-fast auditor makes run() throw audit::AuditError on the first
  /// violated invariant (`uberun audit` maps that to a nonzero exit).
  audit::Auditor* auditor = nullptr;
  /// Interference flight recorder (sns::flight): every rate boundary of
  /// every job becomes a closed co-residency interval with per-resource
  /// and per-co-runner slowdown attribution, rolled up into lifetime
  /// degradation accounts (`uberun why-slow`, the report's "Degradation
  /// accounting" section). Null (the default) is zero-cost — one
  /// predictable branch per settle site, no solver work. Recording reuses
  /// the memoized SolverCache for its leave-one-out attribution solves
  /// and reads simulator state read-only, so simulated results are
  /// bit-identical with the recorder on or off
  /// (tests/sim/test_flight_equivalence.cpp). Caller-owned, must outlive
  /// run(); run() calls beginRun() itself, so reuse needs no manual
  /// reset.
  flight::FlightRecorder* flight = nullptr;
  /// Legacy observation hooks for orchestration layers (launch planning,
  /// drift monitors). They are implemented *on top of* the event stream:
  /// an internal adapter sink turns job_started / job_finished events back
  /// into callbacks, so on_start fires right after resources are
  /// allocated and on_finish right after the record is finalized and
  /// before resources are released. Both receive the up-to-date
  /// JobRecord. New code should prefer `sink`.
  std::function<void(const JobRecord&)> on_start;
  std::function<void(const JobRecord&)> on_finish;
};

/// Everything recorded about one job.
struct JobRecord {
  sched::JobId id = 0;
  app::JobSpec spec;
  double submit = 0.0;
  double start = -1.0;
  double finish = -1.0;
  sched::Placement placement;

  bool completed() const { return finish >= 0.0; }
  double waitTime() const { return start - submit; }
  double runTime() const { return finish - start; }
  double turnaround() const { return finish - submit; }
};

/// Output of one simulation.
struct SimResult {
  std::string policy;
  std::vector<JobRecord> jobs;
  double makespan = 0.0;           ///< start-to-end of the whole sequence
  double busy_node_seconds = 0.0;  ///< integral of occupied-node count
  /// Per-node average bandwidth per monitoring episode ([node][episode]).
  std::vector<std::vector<double>> node_bw_episodes;

  /// Means over *completed* jobs only; 0.0 when none completed, so partial
  /// or empty results never divide by zero and never leak NaN into
  /// downstream metrics.
  double meanTurnaround() const;
  double meanWait() const;
  double meanRun() const;
  /// The paper's overall throughput metric: reciprocal of the average
  /// submit-to-finish time of all jobs in the sequence (§6.2). 0.0 when
  /// nothing completed.
  double throughput() const {
    const double t = meanTurnaround();
    return t > 0.0 ? 1.0 / t : 0.0;
  }
};

/// Rate-based discrete-event cluster simulator. Jobs progress at rates
/// derived from the ground-truth contention model; every placement or
/// completion re-solves the affected nodes. The scheduling policy only
/// sees the resource ledger and the profile database — never the ground
/// truth — which preserves the paper's belief-vs-reality split.
///
/// Hot-path state is dense: job ids are contiguous (assigned 0..n-1 per
/// run), so per-job state lives in vectors indexed by JobId with a compact
/// active-id list, per-node co-run solutions are arrays parallel to the
/// node's resident list, and per-event scratch buffers are hoisted into
/// members. This is what lets the paper's Fig 20 replay (7,044 jobs on up
/// to 32K nodes) run in seconds; see DESIGN.md "Simulator performance
/// architecture".
class ClusterSimulator {
 public:
  ClusterSimulator(const perfmodel::Estimator& est,
                   const std::vector<app::ProgramModel>& library,
                   const profile::ProfileDatabase& db, SimConfig cfg);
  /// Out-of-line so the header only needs util::ThreadPool's forward
  /// declaration (owned_pool_).
  ~ClusterSimulator();

  /// Simulate a job sequence (submit times taken from the specs).
  SimResult run(const std::vector<app::JobSpec>& jobs);

  const SimConfig& config() const { return cfg_; }

  /// Profiles accumulated by the online monitor during the last run()
  /// (only meaningful with cfg.online_profiling).
  const profile::ProfileDatabase& learnedProfiles() const { return local_db_; }

 private:
  struct Running {
    sched::JobId id = 0;
    const app::ProgramModel* prog = nullptr;
    app::JobSpec spec;
    sched::Placement placement;
    double comp_time_solo = 0.0;   ///< solo compute time at allocated ways
    double comm_data_time = 0.0;   ///< placement-fixed data-movement time
    double wait_time = 0.0;        ///< placement-fixed sync-wait time
    double nic_demand = 0.0;       ///< per-node NIC bandwidth demand, GB/s
    double remote_frac = 0.0;      ///< placement-fixed remote-traffic fraction
    double solo_rate = 0.0;        ///< per-proc instr rate when alone
    /// Legacy-arm diagnostic only (opt.lazy_progress off): the old
    /// per-event-decremented work fraction. Decisions never read it — the
    /// canonical progress state is the boundary-settled anchor below.
    double remaining = 1.0;
    double rate = 0.0;             ///< d(remaining)/dt under current co-run
    // ---- settled-at-rate-boundary progress (canonical, DESIGN.md §11) ------
    double anchor_time = 0.0;      ///< virtual time of the last settlement
    double anchor_remaining = 1.0; ///< work fraction left at anchor_time
    /// Projected completion, anchor_time + anchor_remaining / rate,
    /// computed once per rate boundary. The calendar key; "done" means
    /// finish_time <= now, exactly.
    double finish_time = 0.0;
    double net_stretch = 1.0;      ///< NIC-contention stretch on comm time
    double bw_per_node = 0.0;      ///< current achieved per-node bandwidth
    bool throttled = false;        ///< MBA cap currently binding (for events)
    /// Per-placement-node achieved rate / bandwidth from the owning
    /// node's latest solve (opt.slot_rates): slot i belongs to
    /// placement.nodes[i]. Dirty-node solves write through
    /// node_job_slots_; rate derivation then reads contiguous arrays.
    std::vector<double> rate_slots;
    std::vector<double> bw_slots;
  };

  /// Per-node co-run solution, parallel to node_jobs_[nd]: rate[i] / bw[i]
  /// belong to job node_jobs_[nd][i].
  struct NodeSolution {
    std::vector<double> rate;
    std::vector<double> bw;
  };

  void schedule(double now);
  void auditTick();  ///< cfg_.auditor checks (no-op unless SNS_AUDIT build)
  void sampleTelemetry(double now);  ///< offer state to cfg_.sampler
  void scheduleSinglePass(double now);
  void scheduleLegacy(double now);
  bool tryDispatch(const sched::Job& job, double now);  ///< tryPlace + start
  /// (Re)apply the SimOptFlags wiring to the ledger and solver cache —
  /// run() rebuilds the ledger, so the ctor and the per-run reset share
  /// this.
  void applyLedgerOpts();
  /// True while the spec-skip / deferred-refresh arms of batched scoring
  /// may run: flag on, no event sink recording, no provenance store.
  /// Diagnostic runs (tracing, `uberun explain`) thus always see the full
  /// per-job walk and per-placement refresh events.
  bool batchFastPath() const;
  /// Collect a placement's nodes into the deferred end-of-pass refresh
  /// set (deduplicated via node stamps).
  void markDeferredDirty(const std::vector<int>& nodes);
  /// Memoized solo-baseline lookup (pure function of the arguments; only
  /// used under opt.batched_scoring).
  const perfmodel::SoloRun& soloMemo(const app::ProgramModel& prog, int procs,
                                     int nodes, double ways);
  /// Fold the ledger's selection-cache hit/miss counters into the metrics
  /// registry (delta since the last call).
  void publishSelectMetrics();
  void startJob(const sched::Job& job, const sched::Placement& p, double now);
  void finishJob(sched::JobId id, double now);
  void resolveNode(int node);
  /// Re-solve `dirty_nodes` and re-derive the progress rate of every job
  /// resident on one of them, settling each at `now` (the rate boundary)
  /// and re-keying the finish calendar. `now` is the current virtual
  /// time of the simulation — every caller refreshes at the instant the
  /// co-run actually changed.
  void refreshRates(double now, const std::vector<int>& dirty_nodes);
  /// Open job `id`'s next flight-recorder co-residency interval under the
  /// rate context refreshRates just derived — including the bottleneck
  /// (min-rate) and max-NIC-demand nodes its fused loop picked: replays
  /// the bottleneck node's co-run signature through the per-node
  /// attribution memo for the LLC-vs-bandwidth split and the
  /// leave-one-out co-runner deltas, and hands the result to
  /// cfg_.flight. Only called with a recorder attached; pure reader of
  /// simulator state.
  void flightReopen(sched::JobId id, const Running& r, double now,
                    double t_inst, double stretch, double net_over,
                    int bottleneck, int net_node);
  /// True when schedule(now) provably cannot place anything (see
  /// SimOptFlags::futile_pass_gate); only called with the flag on.
  bool passProvablyFutile() const;
  void accumulate(double t0, double t1);
  void admit(sched::Job job);
  /// Re-derive how many LLC ways node `nd` currently donates to its
  /// partitioned residents and emit ways_donated / ways_reclaimed on
  /// change. Only called at placement changes, and only when observing.
  void noteDonations(int nd);

  Running& running(sched::JobId id) { return running_[static_cast<std::size_t>(id)]; }
  bool alive(sched::JobId id) const {
    return active_pos_[static_cast<std::size_t>(id)] >= 0;
  }
  void activate(sched::JobId id);
  void deactivate(sched::JobId id);
  /// `slot` is the node's index within the job's placement node list
  /// (Running::rate_slots index) — recorded so dirty-node solves can
  /// write straight into the owning job's slot arrays.
  void addResident(int nd, sched::JobId id, std::uint32_t slot);
  void removeResident(int nd, sched::JobId id);

  const perfmodel::Estimator* est_;
  const std::vector<app::ProgramModel>* library_;
  const profile::ProfileDatabase* db_;
  SimConfig cfg_;
  profile::ProfileDatabase local_db_;  ///< db_ + online-learned profiles
  std::unique_ptr<profile::Profiler> monitor_;

  std::unique_ptr<sched::SchedulingPolicy> policy_;
  actuator::ResourceLedger ledger_;
  sched::JobQueue queue_;
  perfmodel::SolverCache solve_cache_;

  /// Dense per-job state, indexed by contiguous JobId (0..n_jobs-1).
  std::vector<Running> running_;
  std::vector<JobRecord> records_;
  std::vector<sched::JobId> active_;       ///< ids of in-flight jobs
  std::vector<std::int32_t> active_pos_;   ///< id -> index in active_, -1 if idle

  /// jobs resident on each node
  std::vector<std::vector<sched::JobId>> node_jobs_;
  /// Parallel to node_jobs_[nd]: the node's index within that job's
  /// placement node list (its Running slot index; see opt.slot_rates).
  std::vector<std::vector<std::uint32_t>> node_job_slots_;
  /// per-node, per-job achieved compute rate / bandwidth from the last solve
  std::vector<NodeSolution> node_solution_;
  /// total NIC bandwidth demand per node (ground-truth network contention)
  std::vector<double> node_net_demand_;
  /// nodes hosting at least one job (so accumulate() touches only them)
  std::vector<int> busy_nodes_;
  std::vector<std::int32_t> busy_pos_;     ///< node -> index in busy_nodes_, -1

  std::vector<double> episode_accum_;   ///< per-node GB*s within current episode
  std::vector<std::vector<double>> episodes_;
  double episode_start_ = 0.0;
  double busy_integral_ = 0.0;

  /// Hoisted scratch buffers (no per-event allocation at steady state).
  std::vector<perfmodel::NodeShare> shares_scratch_;
  std::vector<perfmodel::ShareOutcome> outcomes_scratch_;
  std::vector<sched::JobId> affected_scratch_;
  std::vector<std::uint32_t> job_stamp_;   ///< refreshRates dedup stamps
  std::uint32_t stamp_epoch_ = 0;
  std::vector<std::pair<int, double>> bw_scratch_;  ///< (node, bandwidth)
  std::vector<sched::JobId> done_scratch_;
  perfmodel::SolveScratch solve_scratch_;  ///< flat-solver working set

  // ---- flight-recorder attribution scratch (cfg_.flight only) ---------------
  std::vector<perfmodel::NodeShare> flight_shares_;      ///< full signature
  std::vector<perfmodel::NodeShare> flight_loo_shares_;  ///< leave-one-out
  std::vector<std::pair<sched::JobId, double>> flight_comp_deltas_;
  std::vector<std::pair<sched::JobId, double>> flight_net_shares_;
  std::vector<double> flight_demand_;  ///< per-share demand_gbps (LOO fast path)
  std::vector<double> flight_capped_;  ///< per-share roofline-capped bandwidth
  /// Attribution matrix for one co-run signature: the full solve plus
  /// every leave-one-out row. A pure function of the ordered share list,
  /// so it is content-addressed (flight_sig_memo_) and never invalidated:
  /// co-run signatures recur heavily across nodes and scheduling points
  /// (the SolverCache premise). When every share is CAT-partitioned the
  /// leave-one-out rows are recovered from the full outcome with exact
  /// roofline re-scaling (zero extra solver calls); free-sharing
  /// signatures fall back to r real solves, paid once per signature.
  struct FlightAttrMatrix {
    std::vector<double> rate_pp;       ///< full-signature rate, per resident
    std::vector<double> raw_rate_pp;   ///< bandwidth-unconstrained rate
    std::vector<double> loo;           ///< r x r: [k*r+i] = i's rate with k removed
  };
  /// One share's slice of a co-run signature key (mem_intensity is always
  /// 1.0 on this path and carries no information). Doubles are keyed on
  /// exact bit patterns; programs by pointer identity — both as in
  /// SolverCache.
  struct FlightSigKey {
    const app::ProgramModel* prog;
    int procs;
    std::uint64_t ways_bits;
    std::uint64_t remote_bits;
    std::uint64_t cap_bits;
    bool operator==(const FlightSigKey&) const = default;
  };
  using FlightSig = std::vector<FlightSigKey>;
  struct FlightSigHash {
    std::size_t operator()(const FlightSig& sig) const;
  };
  /// Per-node front of the memo: a version-stamped pointer into
  /// flight_sig_memo_ (node-based map, addresses stable). A node's share
  /// tuples are a pure function of its resident set (prog/procs/
  /// remote_frac are job-fixed; ways/caps follow the allocations, which
  /// change only with residency), so the pointer stays valid until
  /// addResident/removeResident bumps the node's version — the common
  /// case costs no hashing at all, and a version miss costs one hashed
  /// map probe instead of r+1 solver-cache probes.
  struct FlightNodeMemo {
    std::uint64_t version = 0;  ///< 0 = never resolved (stamps start at 1)
    const FlightAttrMatrix* mat = nullptr;
  };
  std::unordered_map<FlightSig, FlightAttrMatrix, FlightSigHash>
      flight_sig_memo_;
  FlightSig flight_sig_scratch_;  ///< reused lookup key, no per-probe allocation
  std::vector<FlightNodeMemo> flight_node_memo_;
  /// Residency version per node; sized only while a recorder is attached
  /// (the empty() check gates the bump in addResident/removeResident).
  std::vector<std::uint64_t> flight_node_version_;
  /// Key of each job's currently open interval. When a refresh re-derives
  /// bit-identical values and the attribution inputs' residency versions
  /// are unchanged, reopen() would rebuild a byte-identical OpenState —
  /// so the settle/reopen pair is skipped outright and the open interval
  /// extends. Every field the reopened state depends on is either here or
  /// version-stamped; the comparison is pure FP/integer equality, so the
  /// skip decision is identical across opt flags and the interval stores
  /// stay byte-comparable.
  struct FlightOpenKey {
    double rate = 0.0;
    double t_inst = 0.0;
    double stretch = 0.0;
    double net_over = 0.0;
    int bottleneck = -1;
    int net_node = -1;
    std::uint64_t bneck_version = 0;
    std::uint64_t net_version = 0;
    bool valid = false;
  };
  std::vector<FlightOpenKey> flight_open_key_;

  // ---- O(log n) event engine state (DESIGN.md section 11) -------------------
  /// Finish-time calendar (opt.finish_calendar): contains exactly the
  /// active jobs between scheduling points, keyed by Running::finish_time.
  sched::FinishCalendar calendar_;
  /// Representative nodes of this refresh's identical-resident-set groups
  /// (opt.dedup_node_solves); hoisted scratch, small (one entry per
  /// distinct co-run set among the dirty nodes).
  std::vector<int> solve_group_reps_;
  /// Futile-pass gate state (opt.futile_pass_gate): true when the last
  /// executed pass placed nothing while the batched fast path memoized
  /// every failure — the precondition for skipping a provably identical
  /// pass. Cleared by admissions and at run start.
  bool futile_ready_ = false;
  /// Placements committed by the pass currently executing.
  int pass_placements_ = 0;
  /// Minimum query-core floor across live failed-spec memo entries
  /// (monotone under purges: stale-low is conservative — the gate runs a
  /// pass it could have skipped, never skips one it must run).
  int failed_specs_min_floor_ = 0;
  /// High-water mark of the active-job count this run (sim.active_jobs_hwm).
  std::size_t active_hwm_ = 0;

  // ---- batched queue-head scoring state (opt.batched_scoring) ---------------
  /// "This spec cannot currently be placed" memo, keyed on the exact
  /// inputs tryPlace() reads off a job: program identity, process count,
  /// alpha bits. Each entry carries the minimum idle-core count any of the
  /// failed attempt's ledger queries asked for (the query-core floor): a
  /// release invalidates only entries whose floor the freed node's new
  /// idle count reaches — no other entry's queries could see the freed
  /// node. A profile-database change clears everything. Cleared per run.
  struct SpecKey {
    const app::ProgramModel* prog = nullptr;
    int procs = 0;
    std::uint64_t alpha_bits = 0;
    bool operator==(const SpecKey&) const = default;
  };
  struct SpecKeyHash {
    std::size_t operator()(const SpecKey& k) const;
  };
  std::unordered_map<SpecKey, int, SpecKeyHash> failed_specs_;
  std::uint64_t failed_specs_release_epoch_ = 0;
  std::uint64_t failed_specs_generation_ = 0;
  bool failed_specs_valid_ = false;
  /// Solo/soloCE baseline memo — Estimator::solo() is a pure function of
  /// (program, procs, nodes, ways) for a fixed machine.
  struct SoloKey {
    const app::ProgramModel* prog = nullptr;
    int procs = 0;
    int nodes = 0;
    std::uint64_t ways_bits = 0;
    bool operator==(const SoloKey&) const = default;
  };
  struct SoloKeyHash {
    std::size_t operator()(const SoloKey& k) const;
  };
  std::unordered_map<SoloKey, perfmodel::SoloRun, SoloKeyHash> solo_memo_;
  /// Deferred end-of-pass rate refresh: union of nodes dirtied by this
  /// pass's placements (stamp-deduplicated), refreshed once when the pass
  /// ends. Active only while batchFastPath() holds for the whole pass.
  std::vector<int> deferred_dirty_;
  std::vector<std::uint32_t> node_stamp_;
  std::uint32_t node_stamp_epoch_ = 0;
  bool defer_refresh_ = false;
  /// Pool owned by the simulator when cfg_.search_pool is null but
  /// opt.parallel_select applies (large cluster, multi-core host).
  std::unique_ptr<util::ThreadPool> owned_pool_;
  /// Ledger selection-cache counter values already published to metrics.
  std::uint64_t select_hits_seen_ = 0;
  std::uint64_t select_misses_seen_ = 0;

  /// Decision tracing + metrics (sns::obs). The recorder's sink is wired
  /// per run(): the configured sink plus, when legacy callbacks are set,
  /// an adapter that replays job events into them.
  obs::Recorder rec_;
  std::vector<double> node_donated_;  ///< last observed donated ways per node
  telemetry::ClusterSample sample_scratch_;  ///< hoisted sampler snapshot
  obs::Counter* m_solver_calls_ = nullptr;
  obs::Counter* m_solver_memo_hits_ = nullptr;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_started_ = nullptr;
  obs::Counter* m_finished_ = nullptr;
  obs::Counter* m_backfill_skips_ = nullptr;
  obs::Counter* m_sched_passes_ = nullptr;
  obs::Counter* m_ways_donated_ = nullptr;
  obs::Counter* m_spec_skips_ = nullptr;       ///< sim.spec_skips
  obs::Counter* m_select_hits_ = nullptr;      ///< sim.select_cache_hits
  obs::Counter* m_select_misses_ = nullptr;    ///< sim.select_cache_misses
  obs::Counter* m_futile_skips_ = nullptr;     ///< sim.futile_pass_skips
  obs::Gauge* m_active_hwm_ = nullptr;         ///< sim.active_jobs_hwm
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_busy_nodes_ = nullptr;
  obs::Histogram* m_wait_s_ = nullptr;
  obs::Histogram* m_run_s_ = nullptr;
  obs::Histogram* m_decision_us_ = nullptr;
  obs::Histogram* m_stretch_ = nullptr;        ///< sim.stretch (vs solo)
};

}  // namespace sns::sim
