#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sns/actuator/resource_ledger.hpp"
#include "sns/app/library.hpp"
#include "sns/app/workload_gen.hpp"
#include "sns/perfmodel/estimator.hpp"
#include "sns/profile/database.hpp"
#include "sns/profile/profiler.hpp"
#include "sns/sched/policies.hpp"
#include "sns/sched/queue.hpp"

namespace sns::sim {

struct JobRecord;

/// Simulator knobs.
struct SimConfig {
  int nodes = 8;                    ///< cluster size
  sched::PolicyKind policy = sched::PolicyKind::kSNS;
  double monitor_episode_s = 30.0;  ///< per-node bandwidth sampling window;
                                    ///< <= 0 disables monitoring (big traces)
  double age_limit_s = 900.0;       ///< queue head age that stops backfilling
  int max_queue_scan = 1 << 20;     ///< max queue entries examined per point
  /// SNS's donate-unused-ways optimisation (§4.4); switchable for ablation.
  bool donate_unused_ways = true;
  /// Enforce per-job bandwidth reservations in hardware (Intel MBA). The
  /// paper's 2018 testbed lacked MBA, so its SNS only *estimates* usage —
  /// one source of slowdown-threshold violations (§6.2). Turning this on
  /// models an MBA-equipped cluster.
  bool enforce_bandwidth_caps = false;
  /// Piggybacked profiling (§4.1-4.2): exclusive runs are profiled by the
  /// per-node monitors and accumulated into a run-local database, so
  /// unknown programs converge to full profiles across submissions. The
  /// input database still seeds everything already known.
  bool online_profiling = false;
  /// PMU/episode knobs of the online monitor.
  profile::ProfilerConfig monitor;
  sched::SnsPolicy::Options sns;    ///< SNS-specific options
  /// Observation hooks for orchestration layers (launch planning, event
  /// logs, drift monitors). on_start fires right after resources are
  /// allocated; on_finish right after the record is finalized and before
  /// resources are released. Both receive the up-to-date JobRecord.
  std::function<void(const JobRecord&)> on_start;
  std::function<void(const JobRecord&)> on_finish;
};

/// Everything recorded about one job.
struct JobRecord {
  sched::JobId id = 0;
  app::JobSpec spec;
  double submit = 0.0;
  double start = -1.0;
  double finish = -1.0;
  sched::Placement placement;

  bool completed() const { return finish >= 0.0; }
  double waitTime() const { return start - submit; }
  double runTime() const { return finish - start; }
  double turnaround() const { return finish - submit; }
};

/// Output of one simulation.
struct SimResult {
  std::string policy;
  std::vector<JobRecord> jobs;
  double makespan = 0.0;           ///< start-to-end of the whole sequence
  double busy_node_seconds = 0.0;  ///< integral of occupied-node count
  /// Per-node average bandwidth per monitoring episode ([node][episode]).
  std::vector<std::vector<double>> node_bw_episodes;

  double meanTurnaround() const;
  double meanWait() const;
  double meanRun() const;
  /// The paper's overall throughput metric: reciprocal of the average
  /// submit-to-finish time of all jobs in the sequence (§6.2).
  double throughput() const { return 1.0 / meanTurnaround(); }
};

/// Rate-based discrete-event cluster simulator. Jobs progress at rates
/// derived from the ground-truth contention model; every placement or
/// completion re-solves the affected nodes. The scheduling policy only
/// sees the resource ledger and the profile database — never the ground
/// truth — which preserves the paper's belief-vs-reality split.
class ClusterSimulator {
 public:
  ClusterSimulator(const perfmodel::Estimator& est,
                   const std::vector<app::ProgramModel>& library,
                   const profile::ProfileDatabase& db, SimConfig cfg);

  /// Simulate a job sequence (submit times taken from the specs).
  SimResult run(const std::vector<app::JobSpec>& jobs);

  const SimConfig& config() const { return cfg_; }

  /// Profiles accumulated by the online monitor during the last run()
  /// (only meaningful with cfg.online_profiling).
  const profile::ProfileDatabase& learnedProfiles() const { return local_db_; }

 private:
  struct Running {
    sched::JobId id = 0;
    const app::ProgramModel* prog = nullptr;
    app::JobSpec spec;
    sched::Placement placement;
    double comp_time_solo = 0.0;   ///< solo compute time at allocated ways
    double comm_data_time = 0.0;   ///< placement-fixed data-movement time
    double wait_time = 0.0;        ///< placement-fixed sync-wait time
    double nic_demand = 0.0;       ///< per-node NIC bandwidth demand, GB/s
    double solo_rate = 0.0;        ///< per-proc instr rate when alone
    double remaining = 1.0;        ///< fraction of the job left
    double rate = 0.0;             ///< d(remaining)/dt under current co-run
    double net_stretch = 1.0;      ///< NIC-contention stretch on comm time
    double bw_per_node = 0.0;      ///< current achieved per-node bandwidth
  };

  void schedule(double now);
  void startJob(const sched::Job& job, const sched::Placement& p, double now);
  void finishJob(sched::JobId id, double now);
  void resolveNode(int node);
  void refreshRates(const std::vector<int>& dirty_nodes);
  void accumulate(double t0, double t1);

  const perfmodel::Estimator* est_;
  const std::vector<app::ProgramModel>* library_;
  const profile::ProfileDatabase* db_;
  SimConfig cfg_;
  profile::ProfileDatabase local_db_;  ///< db_ + online-learned profiles
  std::unique_ptr<profile::Profiler> monitor_;

  std::unique_ptr<sched::SchedulingPolicy> policy_;
  actuator::ResourceLedger ledger_;
  sched::JobQueue queue_;
  std::map<sched::JobId, Running> running_;
  std::map<sched::JobId, JobRecord> records_;
  /// jobs resident on each node
  std::vector<std::vector<sched::JobId>> node_jobs_;
  /// per-node, per-job achieved compute rate / bandwidth from the last solve
  std::vector<std::map<sched::JobId, std::pair<double, double>>> node_solution_;
  /// total NIC bandwidth demand per node (ground-truth network contention)
  std::vector<double> node_net_demand_;
  std::vector<double> episode_accum_;   ///< per-node GB*s within current episode
  std::vector<std::vector<double>> episodes_;
  double episode_start_ = 0.0;
  double busy_integral_ = 0.0;
};

}  // namespace sns::sim
