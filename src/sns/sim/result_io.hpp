#pragma once

#include <string>

#include "sns/sim/cluster_sim.hpp"
#include "sns/util/json.hpp"

namespace sns::sim {

/// JSON serialization of simulation results, for archiving experiment runs
/// and feeding external analysis/plotting. The schema is stable:
/// {"policy": ..., "makespan": ..., "busy_node_seconds": ...,
///  "jobs": [{"id", "program", "procs", "submit", "start", "finish",
///            "nodes": [...], "procs_per_node", "scale", "ways",
///            "bw_gbps", "net_gbps", "exclusive"}, ...]}
/// (the monitoring matrix is omitted — it can be megabytes; export it
/// separately if needed).
util::Json resultToJson(const SimResult& result);

/// Rebuild a SimResult (without the monitoring matrix) from JSON.
SimResult resultFromJson(const util::Json& j);

/// File helpers; throw DataError on I/O or parse problems.
void saveResult(const std::string& path, const SimResult& result);
SimResult loadResult(const std::string& path);

}  // namespace sns::sim
