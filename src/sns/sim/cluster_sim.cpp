#include "sns/sim/cluster_sim.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>
#include <optional>
#include <thread>

#include "sns/app/comm.hpp"
#include "sns/audit/audit.hpp"
#include "sns/flight/flight.hpp"
#include "sns/profile/exploration.hpp"
#include "sns/util/error.hpp"
#include "sns/util/hot_path.hpp"
#include "sns/util/thread_pool.hpp"

namespace sns::sim {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Implements the legacy SimConfig::on_start / on_finish hooks on top of
/// the structured event stream: job_started / job_finished events are
/// replayed as callbacks carrying the up-to-date JobRecord.
struct LegacyHookSink final : obs::EventSink {
  const SimConfig* cfg = nullptr;
  const std::vector<JobRecord>* records = nullptr;

  void record(const obs::Event& e) override {
    if (e.type == obs::EventType::kJobStarted) {
      if (cfg->on_start) cfg->on_start((*records)[static_cast<std::size_t>(e.job)]);
    } else if (e.type == obs::EventType::kJobFinished) {
      if (cfg->on_finish) cfg->on_finish((*records)[static_cast<std::size_t>(e.job)]);
    }
  }
};
}  // namespace

ClusterSimulator::ClusterSimulator(const perfmodel::Estimator& est,
                                   const std::vector<app::ProgramModel>& library,
                                   const profile::ProfileDatabase& db, SimConfig cfg)
    : est_(&est),
      library_(&library),
      db_(&db),
      cfg_(cfg),
      ledger_(cfg.nodes, est.machine()),
      solve_cache_(est.solver()) {
  SNS_REQUIRE(cfg.nodes >= 1, "simulator needs at least one node");
  if (cfg_.opt.parallel_select && cfg_.search_pool == nullptr &&
      cfg_.nodes >= cfg_.opt.parallel_min_candidates &&
      std::thread::hardware_concurrency() > 1) {
    // Cap the pool: candidate scans are memory-bound, workers past a few
    // stop helping while the ordered merge cost keeps growing with shard
    // count.
    owned_pool_ = std::make_unique<util::ThreadPool>(
        std::min(4u, std::thread::hardware_concurrency()));
  }
  applyLedgerOpts();
  if (cfg_.policy == sched::PolicyKind::kSNS) {
    policy_ = std::make_unique<sched::SnsPolicy>(est, cfg_.sns);
  } else {
    policy_ = sched::makePolicy(cfg_.policy, est);
  }
  policy_->setBatchScoring(cfg_.opt.batched_scoring);
  node_stamp_.assign(static_cast<std::size_t>(cfg.nodes), 0u);
  node_jobs_.resize(static_cast<std::size_t>(cfg.nodes));
  node_job_slots_.resize(static_cast<std::size_t>(cfg.nodes));
  node_solution_.resize(static_cast<std::size_t>(cfg.nodes));
  node_net_demand_.assign(static_cast<std::size_t>(cfg.nodes), 0.0);
  busy_pos_.assign(static_cast<std::size_t>(cfg.nodes), -1);
  episode_accum_.assign(static_cast<std::size_t>(cfg.nodes), 0.0);
  node_donated_.assign(static_cast<std::size_t>(cfg.nodes), 0.0);
  if (cfg_.online_profiling) {
    monitor_ = std::make_unique<profile::Profiler>(est, cfg_.monitor);
    monitor_->attachRecorder(&rec_);  // piggybacked episodes become events
  }
  // The policy explains its decisions through the same recorder; the
  // recorder's sink is wired per run(). The xray tracer rides along the
  // same hook so tryPlace() cost lands in candidate-prune / curve-score
  // spans and provenance captures the scale walks.
  policy_->attachRecorder(&rec_);
  policy_->attachXray(cfg_.xray);
  if (cfg_.metrics != nullptr) {
    solve_cache_.attachMetrics(*cfg_.metrics);
    // Fetch instrument pointers once; hot-loop updates are then a null
    // check plus an add — no map lookups, no allocations.
    auto& m = *cfg_.metrics;
    const std::vector<double> time_buckets = {1,   10,   30,   60,   120,  300,
                                              600, 1200, 3600, 7200, 14400};
    m_solver_calls_ = &m.counter("sim.solver_calls");
    m_solver_memo_hits_ = &m.counter("sim.solver_memo_hits");
    m_submitted_ = &m.counter("sim.jobs_submitted");
    m_started_ = &m.counter("sim.jobs_started");
    m_finished_ = &m.counter("sim.jobs_finished");
    m_backfill_skips_ = &m.counter("sim.backfill_skips");
    m_sched_passes_ = &m.counter("sim.schedule_passes");
    m_ways_donated_ = &m.counter("sim.ways_donated");
    m_spec_skips_ = &m.counter("sim.spec_skips");
    m_select_hits_ = &m.counter("sim.select_cache_hits");
    m_select_misses_ = &m.counter("sim.select_cache_misses");
    m_futile_skips_ = &m.counter("sim.futile_pass_skips");
    m_active_hwm_ = &m.gauge("sim.active_jobs_hwm");
    m_queue_depth_ = &m.gauge("sim.queue_depth");
    m_busy_nodes_ = &m.gauge("sim.busy_nodes");
    m_wait_s_ = &m.histogram("sim.wait_s", time_buckets);
    m_run_s_ = &m.histogram("sim.run_s", time_buckets);
    m_decision_us_ = &m.histogram(
        "sim.decision_us",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
    m_stretch_ = &m.histogram(
        "sim.stretch", {1.0, 1.02, 1.05, 1.1, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0});
  }
}

ClusterSimulator::~ClusterSimulator() = default;

void ClusterSimulator::applyLedgerOpts() {
  ledger_.setFullScan(!cfg_.opt.indexed_ledger);
  ledger_.setSelectionCache(cfg_.opt.incremental_prune);
  if (cfg_.opt.parallel_select) {
    util::ThreadPool* pool =
        cfg_.search_pool != nullptr ? cfg_.search_pool : owned_pool_.get();
    ledger_.setSearchPool(pool, cfg_.opt.parallel_min_candidates);
  }
  solve_cache_.setFlatSolve(cfg_.opt.simd_solver);
}

std::size_t ClusterSimulator::SpecKeyHash::operator()(const SpecKey& k) const {
  std::uint64_t x = reinterpret_cast<std::uintptr_t>(k.prog) ^
                    (k.alpha_bits * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.procs))
                     << 17);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

std::size_t ClusterSimulator::SoloKeyHash::operator()(const SoloKey& k) const {
  std::uint64_t x = reinterpret_cast<std::uintptr_t>(k.prog) ^
                    (k.ways_bits * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.procs))
                     << 17) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.nodes))
                     << 41);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

std::size_t ClusterSimulator::FlightSigHash::operator()(
    const FlightSig& sig) const {
  // FNV-1a over the key fields, finished with a splitmix-style mixer —
  // the same recipe as the solver cache's signature hash.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const FlightSigKey& k : sig) {
    mix(reinterpret_cast<std::uintptr_t>(k.prog));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.procs)));
    mix(k.ways_bits);
    mix(k.remote_bits);
    mix(k.cap_bits);
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(h ^ (h >> 31));
}

bool ClusterSimulator::batchFastPath() const {
  if (!cfg_.opt.batched_scoring || rec_.enabled()) return false;
  return cfg_.xray == nullptr || cfg_.xray->provenance() == nullptr;
}

void ClusterSimulator::markDeferredDirty(const std::vector<int>& nodes) {
  for (int nd : nodes) {
    auto& stamp = node_stamp_[static_cast<std::size_t>(nd)];
    if (stamp != node_stamp_epoch_) {
      stamp = node_stamp_epoch_;
      deferred_dirty_.push_back(nd);
    }
  }
}

const perfmodel::SoloRun& ClusterSimulator::soloMemo(
    const app::ProgramModel& prog, int procs, int nodes, double ways) {
  const SoloKey key{&prog, procs, nodes, std::bit_cast<std::uint64_t>(ways)};
  auto [it, fresh] = solo_memo_.try_emplace(key);
  if (fresh) it->second = est_->solo(prog, procs, nodes, ways);
  return it->second;
}

void ClusterSimulator::publishSelectMetrics() {
  if (m_select_hits_ == nullptr) return;
  const std::uint64_t hits = ledger_.selectionCacheHits();
  const std::uint64_t misses = ledger_.selectionCacheMisses();
  if (hits > select_hits_seen_) {
    m_select_hits_->inc(static_cast<double>(hits - select_hits_seen_));
  }
  if (misses > select_misses_seen_) {
    m_select_misses_->inc(static_cast<double>(misses - select_misses_seen_));
  }
  select_hits_seen_ = hits;
  select_misses_seen_ = misses;
}

void ClusterSimulator::activate(sched::JobId id) {
  auto& pos = active_pos_[static_cast<std::size_t>(id)];
  SNS_REQUIRE(pos < 0, "job already active");
  pos = static_cast<std::int32_t>(active_.size());
  active_.push_back(id);
  if (active_.size() > active_hwm_) {
    active_hwm_ = active_.size();
    if (m_active_hwm_) m_active_hwm_->set(static_cast<double>(active_hwm_));
  }
}

void ClusterSimulator::deactivate(sched::JobId id) {
  auto& pos = active_pos_[static_cast<std::size_t>(id)];
  SNS_REQUIRE(pos >= 0, "job not active");
  const sched::JobId last = active_.back();
  active_[static_cast<std::size_t>(pos)] = last;
  active_pos_[static_cast<std::size_t>(last)] = pos;
  active_.pop_back();
  pos = -1;
}

void ClusterSimulator::addResident(int nd, sched::JobId id, std::uint32_t slot) {
  auto& jobs = node_jobs_[static_cast<std::size_t>(nd)];
  if (jobs.empty()) {
    busy_pos_[static_cast<std::size_t>(nd)] =
        static_cast<std::int32_t>(busy_nodes_.size());
    busy_nodes_.push_back(nd);
  }
  jobs.push_back(id);
  node_job_slots_[static_cast<std::size_t>(nd)].push_back(slot);
  if (!flight_node_version_.empty())
    ++flight_node_version_[static_cast<std::size_t>(nd)];
}

void ClusterSimulator::removeResident(int nd, sched::JobId id) {
  auto& jobs = node_jobs_[static_cast<std::size_t>(nd)];
  auto& slots = node_job_slots_[static_cast<std::size_t>(nd)];
  std::size_t k = 0;
  while (k < jobs.size() && jobs[k] != id) ++k;
  SNS_REQUIRE(k < jobs.size(), "job not resident on node");
  jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(k));
  slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(k));
  if (!flight_node_version_.empty())
    ++flight_node_version_[static_cast<std::size_t>(nd)];
  if (jobs.empty()) {
    auto& pos = busy_pos_[static_cast<std::size_t>(nd)];
    const int last = busy_nodes_.back();
    busy_nodes_[static_cast<std::size_t>(pos)] = last;
    busy_pos_[static_cast<std::size_t>(last)] = pos;
    busy_nodes_.pop_back();
    pos = -1;
  }
}

void ClusterSimulator::noteDonations(int nd) {
  if (!cfg_.donate_unused_ways) return;
  if (!rec_.enabled() && m_ways_donated_ == nullptr) return;
  const auto& node = ledger_.node(nd);
  double& prev_donated = node_donated_[static_cast<std::size_t>(nd)];
  // O(1) fast-out: only partitioned, non-exclusive residents receive
  // donated ways. With none on the node and nothing previously observed,
  // the total below is 0.0 and nothing changes — and wide spread
  // placements make this the dominant case (every node of an exclusive or
  // unpartitioned placement takes it on start and finish).
  const int partitioned = node.partitionedResidents();
  if (partitioned == 0 && prev_donated == 0.0) return;
  // Each partitioned resident receives the same donated share
  // freeWays / jobCount (effectiveWays(alloc) - alloc.ways cancels the
  // partition term exactly), so the node total is just count x share —
  // no walk over the resident allocations. This runs on every node of
  // every placement at start and finish, so the closed form is what keeps
  // wide spread placements from paying O(residents) here.
  double total = 0.0;
  if (partitioned > 0) {
    total = static_cast<double>(partitioned) *
            (static_cast<double>(node.freeWays()) /
             static_cast<double>(node.jobCount()));
  }
  const double delta = total - prev_donated;
  if (delta > 1e-9) {
    rec_.waysDonated(nd, delta, total);
    if (m_ways_donated_) m_ways_donated_->inc(delta);
  } else if (delta < -1e-9) {
    rec_.waysReclaimed(nd, -delta, total);
  }
  prev_donated = total;
}

void ClusterSimulator::admit(sched::Job job) {
  rec_.jobSubmitted(job.id, job.spec.program, job.spec.procs);
  if (m_submitted_) m_submitted_->inc();
  futile_ready_ = false;  // a fresh arrival may well place
  queue_.push(std::move(job));
  if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
}

void ClusterSimulator::resolveNode(int nd) {
  auto& jobs = node_jobs_[static_cast<std::size_t>(nd)];
  auto& sol = node_solution_[static_cast<std::size_t>(nd)];
  sol.rate.clear();
  sol.bw.clear();
  if (jobs.empty()) return;

  if (m_solver_calls_) m_solver_calls_->inc();
  const auto& node = ledger_.node(nd);
  shares_scratch_.clear();
  shares_scratch_.reserve(jobs.size());
  for (sched::JobId id : jobs) {
    const Running& r = running(id);
    const double rf = r.remote_frac;  // placement-fixed, hoisted to startJob
    const auto& alloc = node.allocation(id);
    const double ways = cfg_.donate_unused_ways
                            ? node.effectiveWays(alloc)
                            : static_cast<double>(alloc.ways);
    const double cap = cfg_.enforce_bandwidth_caps && !alloc.exclusive
                           ? alloc.bw_gbps
                           : 0.0;
    shares_scratch_.push_back({r.prog, r.placement.procs_per_node, ways, rf, 1.0, cap});
  }

  const std::vector<perfmodel::ShareOutcome>* outcomes;
  {
    telemetry::ScopedPhase sp(cfg_.phases, telemetry::Phase::kContentionSolve);
    // Solver spans only attribute inside a decision pass; the refreshes a
    // finishJob triggers are not decision cost and stay untimed.
    xray::ScopedSpan xs(cfg_.xray, xray::SpanKind::kSolverCall);
    if (cfg_.opt.memoize_solves) {
      const std::uint64_t hits_before = solve_cache_.hits();
      outcomes = &solve_cache_.solve(shares_scratch_);
      if (m_solver_memo_hits_ && solve_cache_.hits() > hits_before) {
        m_solver_memo_hits_->inc();
      }
    } else if (cfg_.opt.simd_solver) {
      // Flat-array solve into the hoisted scratch: identical arithmetic,
      // zero allocations at steady state.
      est_->solver().solveInto(shares_scratch_, solve_scratch_,
                               outcomes_scratch_);
      outcomes = &outcomes_scratch_;
    } else {
      outcomes_scratch_ = est_->solver().solve(shares_scratch_);
      outcomes = &outcomes_scratch_;
    }
  }
  sol.rate.reserve(jobs.size());
  sol.bw.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sol.rate.push_back((*outcomes)[i].rate_per_proc);
    sol.bw.push_back((*outcomes)[i].bw_gbps);
  }
}

void ClusterSimulator::refreshRates(double now,
                                    const std::vector<int>& dirty_nodes) {
  SNS_HOT_PATH("engine.refresh");
  telemetry::ScopedPhase sp(cfg_.phases, telemetry::Phase::kRateRefresh);
  // Jobs touching a dirty node need their progress rate re-derived.
  // Deduplicate with epoch stamps (collected in the same pass that
  // re-solves each node) and sort, so the per-job refresh runs in
  // ascending id order, exactly like the old std::set-based collection.
  if (++stamp_epoch_ == 0) {
    std::fill(job_stamp_.begin(), job_stamp_.end(), 0u);
    stamp_epoch_ = 1;
  }
  affected_scratch_.clear();
  const bool dedup = cfg_.opt.dedup_node_solves;
  const bool slots_on = cfg_.opt.slot_rates;
  // With slot-indexed derivation on and episode monitoring off, nothing
  // ever reads a non-representative node's stored solution (derivation
  // reads the slot arrays, accumulate() reads solutions only when
  // monitoring) — so group members can read the rep's solution in place
  // instead of materializing a copy per node.
  const bool keep_solutions = !slots_on || cfg_.monitor_episode_s > 0.0;
  if (dedup) solve_group_reps_.clear();
  for (int nd : dirty_nodes) {
    const auto& resident = node_jobs_[static_cast<std::size_t>(nd)];
    // Solve dedup: every node of a spread placement hosts the same
    // ordered resident list, and a job's allocation is uniform across its
    // nodes — so equal resident id lists imply identical co-run
    // signatures and identical outcomes. One representative solve per
    // group, shared with (or copied to) the rest. The rep list stays tiny
    // (one entry per distinct co-run set among the dirty nodes), so a
    // linear scan beats any hashing — and keeps unordered containers off
    // the decision path.
    int src_node = nd;
    bool copied = false;
    if (dedup) {
      for (int rep : solve_group_reps_) {
        if (node_jobs_[static_cast<std::size_t>(rep)] == resident) {
          src_node = rep;
          copied = true;
          break;
        }
      }
      if (!copied) solve_group_reps_.push_back(nd);
    }
    if (!copied) {
      resolveNode(nd);
    } else if (keep_solutions) {
      auto& dst = node_solution_[static_cast<std::size_t>(nd)];
      const auto& src = node_solution_[static_cast<std::size_t>(src_node)];
      dst.rate.assign(src.rate.begin(), src.rate.end());
      dst.bw.assign(src.bw.begin(), src.bw.end());
    }
    if (slots_on) {
      // Write the fresh solution through to each resident's flat slot
      // arrays, so the per-job derivation below reads contiguous memory.
      const auto& sol = node_solution_[static_cast<std::size_t>(src_node)];
      const auto& slot_of = node_job_slots_[static_cast<std::size_t>(nd)];
      for (std::size_t i = 0; i < resident.size(); ++i) {
        Running& r = running(resident[i]);
        r.rate_slots[slot_of[i]] = sol.rate[i];
        r.bw_slots[slot_of[i]] = sol.bw[i];
      }
    }
    for (sched::JobId id : resident) {
      auto& stamp = job_stamp_[static_cast<std::size_t>(id)];
      if (stamp != stamp_epoch_) {
        stamp = stamp_epoch_;
        affected_scratch_.push_back(id);
      }
    }
  }
  std::sort(affected_scratch_.begin(), affected_scratch_.end());

  const double nic_cap = est_->machine().net_bw_gbps;
  const bool flight_on = cfg_.flight != nullptr;
  for (sched::JobId id : affected_scratch_) {
    Running& r = running(id);
    // Settle the job at this rate boundary under its outgoing rate. This
    // is the canonical progress arithmetic (DESIGN.md section 11): the
    // anchor moves only here, and the settlement is exactly zero when the
    // job was already settled at `now` — so the deferred end-of-pass
    // refresh, which revisits the pass's placements at the same instant,
    // changes nothing. (The flight settle happens below, once the fresh
    // values show the open interval actually ends here: the recorder
    // carries its own copy of the outgoing rate.)
    r.anchor_remaining -= (now - r.anchor_time) * r.rate;
    r.anchor_time = now;
    double corun_rate = kInf;
    double bw_sum = 0.0;
    double net_over = 1.0;
    int bottleneck = -1;   // argmin-rate node (first-wins, placement order)
    int net_node = -1;     // argmax-NIC-demand node (first-wins)
    double max_net = -kInf;
    if (slots_on) {
      // Same nodes in the same order, same min/sum/max sequence as the
      // search loop below — bit-identical, just contiguous reads. The
      // flight arm additionally tracks the argmin/argmax nodes the
      // attribution needs; `rate < corun_rate ? rate : corun_rate` is
      // exactly std::min, so the min sequence is unchanged.
      const auto& nodes = r.placement.nodes;
      if (!flight_on) {
        for (std::size_t s = 0; s < nodes.size(); ++s) {
          corun_rate = std::min(corun_rate, r.rate_slots[s]);
          bw_sum += r.bw_slots[s];
          net_over = std::max(
              net_over,
              node_net_demand_[static_cast<std::size_t>(nodes[s])] / nic_cap);
        }
      } else {
        for (std::size_t s = 0; s < nodes.size(); ++s) {
          const double rate_here = r.rate_slots[s];
          if (rate_here < corun_rate) {
            corun_rate = rate_here;
            bottleneck = nodes[s];
          }
          bw_sum += r.bw_slots[s];
          const double demand =
              node_net_demand_[static_cast<std::size_t>(nodes[s])];
          if (demand > max_net) {
            max_net = demand;
            net_node = nodes[s];
          }
          net_over = std::max(net_over, demand / nic_cap);
        }
      }
    } else {
      for (int nd : r.placement.nodes) {
        const auto& resident = node_jobs_[static_cast<std::size_t>(nd)];
        const auto& sol = node_solution_[static_cast<std::size_t>(nd)];
        std::size_t k = 0;
        while (k < resident.size() && resident[k] != id) ++k;
        SNS_REQUIRE(k < resident.size(), "job missing from node solution");
        if (flight_on) {
          if (sol.rate[k] < corun_rate) bottleneck = nd;
          const double demand = node_net_demand_[static_cast<std::size_t>(nd)];
          if (demand > max_net) {
            max_net = demand;
            net_node = nd;
          }
        }
        corun_rate = std::min(corun_rate, sol.rate[k]);
        bw_sum += sol.bw[k];
        // NIC oversubscription on this node stretches everyone's comm.
        net_over = std::max(
            net_over, node_net_demand_[static_cast<std::size_t>(nd)] / nic_cap);
      }
    }
    SNS_REQUIRE(corun_rate > 0.0, "co-run rate must be positive");
    const double stretch = r.solo_rate / corun_rate;
    r.net_stretch = net_over;
    const double t_inst = r.comp_time_solo * stretch +
                          r.comm_data_time * net_over + r.wait_time;
    SNS_REQUIRE(t_inst > 0.0, "instantaneous job time must be positive");
    r.rate = 1.0 / t_inst;
    // Project the completion off the fresh settlement; the projection is
    // the calendar key and the done criterion (finish_time <= now,
    // exactly) in every configuration.
    r.finish_time = r.anchor_time + r.anchor_remaining / r.rate;
    if (cfg_.opt.finish_calendar) calendar_.upsert(id, r.finish_time);
    r.bw_per_node = bw_sum / r.placement.nodeCount();
    if (cfg_.enforce_bandwidth_caps && rec_.enabled()) {
      // Report each transition into the MBA-capped regime exactly once.
      const double cap = r.placement.bw_gbps;
      const bool capped = !r.placement.exclusive && cap > 0.0 &&
                          r.bw_per_node >= cap * (1.0 - 1e-6);
      if (capped && !r.throttled) {
        rec_.bandwidthThrottled(id, r.placement.nodes.front(), cap);
      }
      r.throttled = capped;
    }
    if (flight_on) {
      // Close-and-reopen only when the reopened state would differ: every
      // input the attribution depends on is either compared bit-for-bit
      // here or covered by a residency version stamp, so on equality the
      // open interval simply extends — the common case for wide spread
      // placements, whose residents get refreshed whenever any of their
      // many nodes goes dirty.
      FlightOpenKey& key = flight_open_key_[static_cast<std::size_t>(id)];
      const std::uint64_t bv =
          bottleneck >= 0
              ? flight_node_version_[static_cast<std::size_t>(bottleneck)]
              : 0;
      const std::uint64_t nv =
          net_node >= 0
              ? flight_node_version_[static_cast<std::size_t>(net_node)]
              : 0;
      const bool unchanged =
          key.valid && key.rate == r.rate && key.t_inst == t_inst &&
          key.stretch == stretch && key.net_over == net_over &&
          key.bottleneck == bottleneck && key.bneck_version == bv &&
          (!(net_over > 1.0) ||
           (key.net_node == net_node && key.net_version == nv));
      if (!unchanged) {
        cfg_.flight->settle(id, now);
        flightReopen(id, r, now, t_inst, stretch, net_over, bottleneck,
                     net_node);
        key.rate = r.rate;
        key.t_inst = t_inst;
        key.stretch = stretch;
        key.net_over = net_over;
        key.bottleneck = bottleneck;
        key.net_node = net_node;
        key.bneck_version = bv;
        key.net_version = nv;
        key.valid = true;
      }
    }
  }
}

void ClusterSimulator::flightReopen(sched::JobId id, const Running& r,
                                    double now, double t_inst, double stretch,
                                    double net_over, int bottleneck,
                                    int net_node) {
  flight::OpenContext ctx;
  ctx.now = now;
  ctx.rate = r.rate;
  ctx.t_inst = t_inst;
  ctx.stretch = stretch;
  ctx.net_over = net_over;
  // The bottleneck (argmin achieved rate) and argmax-NIC-demand nodes
  // arrive from refreshRates' fused derivation loop — same order, same
  // values, first-wins picks, no second walk over the placement.
  ctx.bottleneck_node = bottleneck;

  // Replay the bottleneck node's co-run signature through the two-level
  // attribution memo. L1 (per node, version-stamped) serves repeat
  // reopens with no hashing; on a residency change, L2 resolves the
  // node's signature content-addressed — co-run signatures recur across
  // nodes and scheduling points (the SolverCache premise), so the full
  // solve and the leave-one-out rows are computed once per distinct
  // signature per run, not once per residency change. Solver outputs are
  // a pure function of the ordered share list, so the memoized values
  // are bit-identical to solving on every reopen.
  const auto& resident = node_jobs_[static_cast<std::size_t>(bottleneck)];
  const std::size_t nres = resident.size();
  std::size_t self_idx = 0;
  for (std::size_t i = 0; i < nres; ++i)
    if (resident[i] == id) self_idx = i;
  FlightNodeMemo& memo = flight_node_memo_[static_cast<std::size_t>(bottleneck)];
  const std::uint64_t ver = flight_node_version_[static_cast<std::size_t>(bottleneck)];
  if (memo.version != ver) {
    const auto& node = ledger_.node(bottleneck);
    flight_shares_.clear();
    flight_shares_.reserve(nres);
    flight_sig_scratch_.clear();
    flight_sig_scratch_.reserve(nres);
    for (std::size_t i = 0; i < nres; ++i) {
      const Running& rr = running(resident[i]);
      const auto& alloc = node.allocation(resident[i]);
      const double ways = cfg_.donate_unused_ways
                              ? node.effectiveWays(alloc)
                              : static_cast<double>(alloc.ways);
      const double cap = cfg_.enforce_bandwidth_caps && !alloc.exclusive
                             ? alloc.bw_gbps
                             : 0.0;
      flight_shares_.push_back({rr.prog, rr.placement.procs_per_node, ways,
                                rr.remote_frac, 1.0, cap});
      flight_sig_scratch_.push_back({rr.prog, rr.placement.procs_per_node,
                                     std::bit_cast<std::uint64_t>(ways),
                                     std::bit_cast<std::uint64_t>(rr.remote_frac),
                                     std::bit_cast<std::uint64_t>(cap)});
    }
    auto [it, fresh] = flight_sig_memo_.try_emplace(flight_sig_scratch_);
    if (fresh) {
      // Attribution-matrix memo warm-up: a never-seen co-run signature
      // builds its matrix (map node + key copy + per-resident vectors) —
      // a boundary, like a solver-cache miss. Replayed signatures take
      // the memo hit below and stay heap-silent.
      util::hotpath::markInnermostBoundary();
      FlightAttrMatrix& mat = it->second;
      mat.rate_pp.resize(nres);
      mat.raw_rate_pp.resize(nres);
      flight_demand_.resize(nres);
      bool all_partitioned = true;
      {
        // The full signature was just solved by this refresh, so this is
        // a cache hit. Outcome references go stale on the next solve —
        // copy out first.
        const auto& out = solve_cache_.solve(flight_shares_);
        for (std::size_t i = 0; i < nres; ++i) {
          mat.rate_pp[i] = out[i].rate_per_proc;
          mat.raw_rate_pp[i] = out[i].raw_rate_per_proc;
          flight_demand_[i] = out[i].demand_gbps;
          if (flight_shares_[i].ways <= 0.0) all_partitioned = false;
        }
      }
      mat.loo.assign(nres * nres, 0.0);
      if (nres > 1 && all_partitioned) {
        // All-CAT fast path: with no free-sharing entries the solver's
        // per-share quantities (eff_ways, miss, refs, raw_rate, demand,
        // capped) depend only on that share, and the shares couple solely
        // through the in-order total_capped sum and total_procs. A
        // leave-one-out solve therefore reproduces the full solve's
        // per-share values verbatim and only re-derives the roofline
        // scale — so every LOO self-rate falls out of the full outcome
        // with the exact expressions (and the exact in-order summation
        // skipping k) solveInto() would run on the subset: bit-identical
        // to solving each (r-1)-signature, with zero new solver calls.
        const hw::MachineConfig& mach = est_->machine();
        flight_capped_.resize(nres);
        for (std::size_t i = 0; i < nres; ++i) {
          double c = std::min(flight_demand_[i],
                              mach.mem_bw.aggregate(flight_shares_[i].procs));
          if (flight_shares_[i].bw_cap_gbps > 0.0)
            c = std::min(c, flight_shares_[i].bw_cap_gbps);
          flight_capped_[i] = c;
        }
        for (std::size_t k = 0; k < nres; ++k) {
          double total_capped = 0.0;
          int total_procs = 0;
          for (std::size_t i = 0; i < nres; ++i) {
            if (i == k) continue;
            total_capped += flight_capped_[i];
            total_procs += flight_shares_[i].procs;
          }
          const double capacity = mach.mem_bw.aggregate(total_procs);
          const double scale =
              total_capped > capacity ? capacity / total_capped : 1.0;
          for (std::size_t i = 0; i < nres; ++i) {
            if (i == k) continue;
            const double bw = flight_capped_[i] * scale;
            const double f_bw = flight_demand_[i] > 1e-12
                                    ? std::min(1.0, bw / flight_demand_[i])
                                    : 1.0;
            mat.loo[k * nres + i] = mat.raw_rate_pp[i] * f_bw;
          }
        }
      } else if (nres > 1) {
        // Free-sharing entries couple through the ways fixed point, so
        // each leave-one-out signature genuinely re-solves.
        for (std::size_t k = 0; k < nres; ++k) {
          flight_loo_shares_.clear();
          flight_loo_shares_.reserve(nres - 1);
          for (std::size_t i = 0; i < nres; ++i) {
            if (i != k) flight_loo_shares_.push_back(flight_shares_[i]);
          }
          const auto& out = solve_cache_.solve(flight_loo_shares_);
          for (std::size_t i = 0; i < nres; ++i) {
            if (i != k)
              mat.loo[k * nres + i] = out[i - (i > k ? 1 : 0)].rate_per_proc;
          }
        }
      }
    }
    memo.mat = &it->second;  // node-based map: address stable until clear
    memo.version = ver;
  }
  const FlightAttrMatrix& mat = *memo.mat;
  ctx.rate_pp = mat.rate_pp[self_idx];
  ctx.raw_rate_pp = mat.raw_rate_pp[self_idx];
  flight_comp_deltas_.clear();
  if (nres > 1) {
    for (std::size_t k = 0; k < nres; ++k) {
      if (k == self_idx) continue;
      flight_comp_deltas_.emplace_back(resident[k],
                                       mat.loo[k * nres + self_idx] - ctx.rate_pp);
    }
  }
  // Network attribution needs no solver: co-residents of the most
  // oversubscribed node are weighted by their ground-truth NIC demand.
  flight_net_shares_.clear();
  if (net_over > 1.0 && net_node >= 0) {
    for (sched::JobId other : node_jobs_[static_cast<std::size_t>(net_node)]) {
      if (other != id)
        flight_net_shares_.emplace_back(other, running(other).nic_demand);
    }
  }
  ctx.comp_deltas = flight_comp_deltas_;
  ctx.net_shares = flight_net_shares_;
  cfg_.flight->reopen(id, ctx);
}

void ClusterSimulator::startJob(const sched::Job& job, const sched::Placement& p,
                                double now) {
  Running& r = running(job.id);
  r = Running{};
  r.id = job.id;
  r.prog = job.program;
  r.spec = job.spec;
  r.placement = p;
  r.remote_frac = app::remoteFraction(job.program->comm.pattern, job.spec.procs,
                                      p.procs_per_node, p.nodeCount());

  // Solo baseline at the allocated ways (full cache when unpartitioned or
  // exclusive: alone, the job would own the whole LLC).
  const double solo_ways =
      p.ways > 0 ? p.ways : static_cast<double>(est_->machine().llc_ways);
  const perfmodel::SoloRun solo =
      cfg_.opt.batched_scoring
          ? soloMemo(*job.program, job.spec.procs, p.nodeCount(), solo_ways)
          : est_->solo(*job.program, job.spec.procs, p.nodeCount(), solo_ways);
  double reps = std::max(1, job.spec.repeats);
  if (job.spec.ce_time_override > 0.0) {
    // Trace-driven jobs: rescale work so the CE run matches the trace
    // duration, preserving the program's relative scaling behaviour.
    const int ce_nodes = est_->minNodes(job.spec.procs);
    const perfmodel::SoloRun ce =
        cfg_.opt.batched_scoring
            ? soloMemo(*job.program, job.spec.procs, ce_nodes,
                       static_cast<double>(est_->machine().llc_ways))
            : est_->soloCE(*job.program, job.spec.procs, ce_nodes);
    reps *= job.spec.ce_time_override / ce.time;
  }
  r.comp_time_solo = solo.comp_time * reps;
  r.comm_data_time = solo.comm_data_time * reps;
  r.wait_time = solo.wait_time * reps;
  r.solo_rate = solo.ipc * est_->machine().frequency_ghz * 1e9;
  r.remaining = 1.0;
  // Anchor at the start instant with zero rate: the mandatory rate
  // refresh that follows every placement (possibly deferred to the end of
  // the pass, still at the same virtual time) performs the first real
  // settlement — a no-op — and computes the first finish projection.
  r.anchor_time = now;
  r.anchor_remaining = 1.0;
  r.finish_time = kInf;
  if (cfg_.opt.slot_rates) {
    r.rate_slots.assign(p.nodes.size(), 0.0);
    r.bw_slots.assign(p.nodes.size(), 0.0);
  }
  // Ground-truth NIC usage: remote traffic volume over the solo run time
  // (repeats and trace rescaling multiply volume and time alike).
  r.nic_demand = solo.time > 0.0
                     ? p.procs_per_node * job.program->comm_gb_per_proc *
                           solo.remote_frac / solo.time
                     : 0.0;

  activate(job.id);
  const actuator::NodeAllocation alloc = p.nodeAllocation();
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    const int nd = p.nodes[i];
    ledger_.allocate(nd, job.id, alloc);
    addResident(nd, job.id, static_cast<std::uint32_t>(i));
    node_net_demand_[static_cast<std::size_t>(nd)] += r.nic_demand;
  }

  JobRecord& rec = records_[static_cast<std::size_t>(job.id)];
  rec.start = now;
  rec.placement = p;
  // The flight recorder anchors the job's lifetime account on the solo
  // baseline frozen here; the placement's mandatory rate refresh (same
  // virtual time, possibly deferred to the end of the pass) opens the
  // first real co-residency interval.
  if (cfg_.flight != nullptr) {
    cfg_.flight->onStart(job.id, job.spec.program, rec.submit, now,
                         r.comp_time_solo, r.comm_data_time, r.wait_time,
                         r.solo_rate, job.spec.alpha);
  }
  // job_started drives the legacy on_start hook through the adapter sink,
  // so the record must be complete before emission.
  rec_.jobStarted(job.id, job.spec.program,
                  p.nodes.empty() ? -1 : p.nodes.front(), p.nodeCount(),
                  p.ways, p.scale_factor, p.exclusive);
  if (m_started_) m_started_->inc();
  for (int nd : p.nodes) noteDonations(nd);
}

void ClusterSimulator::finishJob(sched::JobId id, double now) {
  const Running& r = running(id);
  // Normally the main loop already popped the finisher; the contains()
  // guard covers a co-finisher at the same instant whose settlement
  // re-inserted it (its projected finish collapses onto `now`).
  if (cfg_.opt.finish_calendar && calendar_.contains(id)) calendar_.erase(id);
  JobRecord& record = records_[static_cast<std::size_t>(id)];
  record.finish = now;
  // Final settle of the job's open co-residency interval + rollup
  // finalization. The finisher is already off every node's resident list,
  // so the trailing refreshRates below never re-touches it.
  if (cfg_.flight != nullptr) cfg_.flight->onFinish(id, now);
  rec_.jobFinished(id, record.spec.program, record.runTime());
  if (m_finished_) m_finished_->inc();
  if (m_wait_s_) m_wait_s_->observe(record.waitTime());
  if (m_run_s_) m_run_s_->observe(record.runTime());
  if (m_stretch_) {
    // Stretch vs the solo baseline at the allocated ways; near-zero solo
    // runtimes (degenerate zero-duration jobs) pin to 1.0 instead of
    // amplifying rounding noise into inf.
    const double t_solo = r.comp_time_solo + r.comm_data_time + r.wait_time;
    m_stretch_->observe(t_solo > 1e-12 ? record.runTime() / t_solo : 1.0);
  }
  // Piggybacked profiling: an exclusive run doubles as a profiling trial at
  // its scale factor (§4.1/§4.4); the monitor's measurements accumulate in
  // the run-local database so later submissions schedule smarter.
  if (monitor_ != nullptr && r.placement.exclusive) {
    const int k = r.placement.scale_factor;
    const auto* existing = local_db_.find(r.spec.program, r.spec.procs);
    if (existing == nullptr || existing->at(k) == nullptr) {
      profile::ProgramProfile pp;
      if (existing != nullptr) {
        pp = *existing;
      } else {
        pp.program = r.spec.program;
        pp.procs = r.spec.procs;
      }
      profile::mergeTrial(pp, monitor_->profileScale(*r.prog, r.spec.procs, k),
                          cfg_.monitor.neutral_band);
      local_db_.put(std::move(pp));
    }
  }
  for (int nd : r.placement.nodes) {
    ledger_.release(nd, id);
    removeResident(nd, id);
    node_net_demand_[static_cast<std::size_t>(nd)] -= r.nic_demand;
    noteDonations(nd);
  }
  deactivate(id);
  // The Running slot (and its placement node list) stays valid after
  // deactivation — no copy of the dirty-node list is needed.
  refreshRates(now, r.placement.nodes);
}

bool ClusterSimulator::tryDispatch(const sched::Job& job, double now) {
  // Steady-state allocation contract: the failure path (memo checks,
  // selection scoring with warm caches) must not touch the heap; a
  // successful dispatch is a rate boundary — committing a Placement and a
  // Running record allocates by design, so it is marked exempt below.
  SNS_HOT_PATH("sched.decision");
  // Solver-cache provenance: attribute the deciding dispatch's contention
  // solves (and how many the memo served) to the placed job.
  xray::ProvenanceStore* prov =
      cfg_.xray != nullptr ? cfg_.xray->provenance() : nullptr;
  // Failed-spec memo (batched scoring): tryPlace() is a pure function of
  // (program, procs, alpha) given fixed ledger and database contents, and
  // placements only shrink free capacity — so a recorded failure stays a
  // failure until a release or a profile change could unblock it. A
  // profile change wipes the memo; releases purge selectively: the entry
  // records the minimum idle-core count any of the failed attempt's
  // ledger queries asked for, and every decision-relevant ledger read in
  // a non-tracing tryPlace() is such a query — so a release whose freed
  // node still has fewer idle cores than that floor cannot have changed
  // anything the attempt read, and the failure stands.
  SpecKey spec_key;
  const bool spec_memo = batchFastPath();
  if (spec_memo) {
    if (!failed_specs_valid_ ||
        failed_specs_generation_ != local_db_.generation()) {
      failed_specs_.clear();
      failed_specs_min_floor_ = std::numeric_limits<int>::max();
      (void)ledger_.takeReleaseIdleWatermark();
      failed_specs_release_epoch_ = ledger_.releaseEpoch();
      failed_specs_generation_ = local_db_.generation();
      failed_specs_valid_ = true;
    } else if (failed_specs_release_epoch_ != ledger_.releaseEpoch()) {
      const int watermark = ledger_.takeReleaseIdleWatermark();
      // Erasure is order-independent: the surviving set is determined by
      // the watermark alone, not by visit order.
      for (auto it = failed_specs_.begin(); it != failed_specs_.end();) {  // snslint: allow(unordered-iteration)
        it = it->second <= watermark ? failed_specs_.erase(it) : std::next(it);
      }
      failed_specs_release_epoch_ = ledger_.releaseEpoch();
    }
    spec_key = SpecKey{job.program, job.spec.procs,
                       std::bit_cast<std::uint64_t>(job.spec.alpha)};
    if (failed_specs_.contains(spec_key)) {
      if (m_spec_skips_) m_spec_skips_->inc();
      return false;
    }
    ledger_.resetQueryCoreFloor();
  }
  const std::uint64_t hits0 = prov != nullptr ? solve_cache_.hits() : 0;
  const std::uint64_t miss0 = prov != nullptr ? solve_cache_.misses() : 0;
  std::optional<sched::Placement> p;
  {
    telemetry::ScopedPhase sp(cfg_.phases, telemetry::Phase::kLedgerScan);
    p = policy_->tryPlace(job, ledger_, local_db_);
  }
  if (!p.has_value()) {
    if (spec_memo) {
      // First failure of this spec: recording it grows the memo (a node
      // allocation) — memo warm-up, a state-changing event like a commit,
      // hence boundary-exempt. Replayed failures hit the memo above and
      // must stay heap-silent; that is what the alloc contract test gates.
      SNS_HOT_PATH_BOUNDARY();
      const int floor = ledger_.queryCoreFloor();
      failed_specs_.emplace(spec_key, floor);
      // Running minimum over live entries, for the futile-pass gate. Only
      // lowered — purges never raise it back, which is conservative: a
      // stale-low floor makes the gate run a pass it could have skipped,
      // never skip one it must run.
      failed_specs_min_floor_ = std::min(failed_specs_min_floor_, floor);
    }
    return false;
  }
  SNS_HOT_PATH_BOUNDARY();
  telemetry::ScopedPhase sp(cfg_.phases, telemetry::Phase::kPlacementCommit);
  const sched::Job job_copy = job;
  ++pass_placements_;
  {
    xray::ScopedSpan xs(cfg_.xray, xray::SpanKind::kCommit, job_copy.id);
    startJob(job_copy, *p, now);
  }
  if (defer_refresh_) {
    // Batched scoring: fold this placement's nodes into the end-of-pass
    // refresh set. Nothing reads progress rates until the pass ends, so
    // one refresh over the union matches per-placement refreshes exactly.
    markDeferredDirty(p->nodes);
  } else {
    xray::ScopedSpan xs(cfg_.xray, xray::SpanKind::kRateRefresh, job_copy.id);
    refreshRates(now, p->nodes);
  }
  if (prov != nullptr) {
    const std::uint64_t hits = solve_cache_.hits() - hits0;
    const std::uint64_t misses = solve_cache_.misses() - miss0;
    prov->noteSolverDelta(job_copy.id, hits + misses, hits);
  }
  return true;
}

void ClusterSimulator::scheduleSinglePass(double now) {
  // One priority-ordered walk. A placement only consumes resources and
  // per-node feasibility is monotone in free capacity, so a job that
  // failed tryPlace earlier in this pass can never succeed later in the
  // same pass — continuing past a placement visits exactly the jobs the
  // legacy restart-from-head walk would have placed, in the same order,
  // without re-running tryPlace over the already-skipped prefix. The
  // `scanned` counter tracks the job's live queue position so the
  // max_queue_scan window and the head-age check keep their legacy
  // semantics.
  int scanned = 0;
  queue_.walk([&](const sched::Job& job) {
    using W = sched::JobQueue::Walk;
    if (++scanned > cfg_.max_queue_scan) return W::kStop;
    if (tryDispatch(job, now)) {
      --scanned;  // the dispatched job no longer occupies a queue position
      return W::kRemove;
    }
    // Anti-starvation: once the head job has aged past the limit, no
    // younger job may be backfilled ahead of it. The event-log append
    // below allocates (append-only history, not per-decision scratch), so
    // the pass declares itself a boundary activation.
    if (scanned == 1 && job.age(now) > cfg_.age_limit_s) {
      util::hotpath::markInnermostBoundary();
      rec_.backfillSkipped(job.id, job.age(now),
                           "head job aged past the backfill age limit");
      if (m_backfill_skips_) m_backfill_skips_->inc();
      return W::kStop;
    }
    return W::kContinue;
  });
}

void ClusterSimulator::scheduleLegacy(double now) {
  // Legacy walk: restart from the head after every successful placement,
  // re-running tryPlace over the whole skipped prefix. Kept for the
  // equivalence suite; the placements it produces are identical to
  // scheduleSinglePass().
  bool placed_any = true;
  while (placed_any) {
    placed_any = false;
    int scanned = 0;
    queue_.walk([&](const sched::Job& job) {
      using W = sched::JobQueue::Walk;
      if (++scanned > cfg_.max_queue_scan) return W::kStop;
      if (tryDispatch(job, now)) {
        placed_any = true;
        return W::kRemoveAndStop;  // queue changed; restart the walk
      }
      if (scanned == 1 && job.age(now) > cfg_.age_limit_s) {
        // Event-log append allocates: boundary, as in scheduleSinglePass.
        util::hotpath::markInnermostBoundary();
        rec_.backfillSkipped(job.id, job.age(now),
                             "head job aged past the backfill age limit");
        if (m_backfill_skips_) m_backfill_skips_->inc();
        return W::kStop;
      }
      return W::kContinue;
    });
  }
}

bool ClusterSimulator::passProvablyFutile() const {
  if (queue_.empty()) return true;
  // Memo arm: the last executed pass placed nothing with every visited
  // failure memoized (futile_ready_; admissions clear it), so the walk is
  // a pure replay unless something since could unblock a memo entry. The
  // profile database is checked by generation; releases by the idle-core
  // watermark against the smallest query floor any live entry recorded —
  // peeked, not consumed, so the pass that eventually runs still purges
  // over the full release batch. The head-age cutoff can only stop a
  // replayed walk *earlier* (age grows with the clock), which cannot
  // create a placement.
  if (!futile_ready_ || !failed_specs_valid_) return false;
  if (failed_specs_generation_ != local_db_.generation()) return false;
  if (ledger_.releaseEpoch() == failed_specs_release_epoch_) return true;
  return ledger_.peekReleaseIdleWatermark() < failed_specs_min_floor_;
}

void ClusterSimulator::schedule(double now) {
  if (cfg_.opt.futile_pass_gate && cfg_.xray == nullptr &&
      passProvablyFutile()) {
    // A skipped pass is provably a no-op on simulation state: no clock
    // reads, no queue walk, no events. Gauges still track reality; the
    // pass counter stays put (no pass ran).
    if (m_futile_skips_) m_futile_skips_->inc();
    if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
    if (m_busy_nodes_) {
      m_busy_nodes_->set(static_cast<double>(ledger_.busyNodeCount()));
    }
    return;
  }
  // Pass-level allocation contract: a pass that commits placements is a
  // rate boundary (exempt); an empty-handed pass over warm caches must be
  // heap-silent. Nested markers (sched.decision, engine.refresh) claim
  // their own allocations — this scope covers only the glue between them.
  SNS_HOT_PATH("sched.pass");
  pass_placements_ = 0;
  // Decision-latency metric only — never feeds a scheduling decision.
  using Clock = std::chrono::steady_clock;  // snslint: allow(wall-clock)
  const auto wall_begin = m_decision_us_ ? Clock::now() : Clock::time_point{};
  // The xray pass opens right after the latency stopwatch and closes right
  // before it reads, so the decision root span and sim.decision_us cover
  // the same region (uberun hotpath reconciles them within 5%).
  if (cfg_.xray != nullptr) cfg_.xray->beginPass(now);
  if (m_sched_passes_) m_sched_passes_->inc();

  // Deferred end-of-pass rate refresh (batched scoring): placements made
  // during the walk only collect their dirty nodes; one refresh over the
  // union runs when the walk ends. Epoch-stamped dedup, reset on wrap.
  defer_refresh_ = batchFastPath();
  if (defer_refresh_ && ++node_stamp_epoch_ == 0) {
    std::fill(node_stamp_.begin(), node_stamp_.end(), 0u);
    node_stamp_epoch_ = 1;
  }

  {
    telemetry::ScopedPhase sp(cfg_.phases, telemetry::Phase::kQueueWalk);
    if (cfg_.opt.single_pass_schedule) {
      scheduleSinglePass(now);
    } else {
      scheduleLegacy(now);
    }
  }

  if (defer_refresh_) {
    defer_refresh_ = false;
    if (!deferred_dirty_.empty()) {
      xray::ScopedSpan xs(cfg_.xray, xray::SpanKind::kBatchRefresh);
      refreshRates(now, deferred_dirty_);
      deferred_dirty_.clear();
    }
  }
  publishSelectMetrics();

  if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
  if (m_busy_nodes_) {
    m_busy_nodes_->set(static_cast<double>(ledger_.busyNodeCount()));
  }
  if (cfg_.xray != nullptr) cfg_.xray->endPass();
  if (m_decision_us_) {
    m_decision_us_->observe(
        std::chrono::duration<double, std::micro>(Clock::now() - wall_begin)
            .count());
  }
  // Arm the futile-pass gate: an empty-handed pass whose every failure
  // went through the spec memo (batchFastPath) will replay identically
  // until an admission, a profile change or a big-enough release.
  futile_ready_ = pass_placements_ == 0 && batchFastPath();
  if (pass_placements_ > 0) SNS_HOT_PATH_BOUNDARY();
}

void ClusterSimulator::auditTick() {
#if SNS_AUDIT_ENABLED
  // Cross-validate every hand-maintained O(1) structure on the decision
  // path against full recomputation. Null auditor (the default) keeps this
  // a single predictable branch; Release builds compile the call out.
  if (cfg_.auditor != nullptr) {
    cfg_.auditor->auditSchedulerState(ledger_, queue_, solve_cache_);
    if (cfg_.opt.finish_calendar) {
      // Cross-check every calendar key against a full recomputation of
      // the expected membership: exactly the active jobs, each keyed by
      // its boundary-settled finish projection, bit-for-bit.
      std::vector<std::pair<sched::JobId, double>> expected;
      expected.reserve(active_.size());
      for (sched::JobId id : active_) {
        expected.emplace_back(id, running(id).finish_time);
      }
      cfg_.auditor->auditFinishCalendar(calendar_, expected);
    }
  }
#endif
}

void ClusterSimulator::sampleTelemetry(double now) {
  // Snapshot observable cluster state and hand it to the sampler, which
  // stamps every elapsed period boundary with it. Everything here is O(1)
  // — the ledger maintains cluster-wide reserved totals on each
  // allocate/release — except the per-node occupancy fill, which only
  // small clusters opt into.
  telemetry::ClusterSample& s = sample_scratch_;
  const int n_nodes = ledger_.nodeCount();
  s.core_util = ledger_.meanCoreOccupancy();
  s.way_util = ledger_.meanWayOccupancy();
  s.bw_util = ledger_.meanBwOccupancy();
  s.busy_nodes = ledger_.busyNodeCount();
  s.total_nodes = n_nodes;
  s.running_jobs = static_cast<int>(active_.size());
  s.queue_depth = queue_.size();
  s.queue_head_age_s = queue_.headAge(now);
  const std::uint64_t lookups = solve_cache_.hits() + solve_cache_.misses();
  s.solver_hit_rate =
      lookups > 0 ? static_cast<double>(solve_cache_.hits()) / lookups : 0.0;
  s.decision_us_p99 = m_decision_us_ != nullptr && m_decision_us_->count() > 0
                          ? m_decision_us_->quantile(0.99)
                          : 0.0;
  s.node_core_occ.clear();
  if (cfg_.sampler->wantsPerNode(n_nodes)) {
    s.node_core_occ.reserve(static_cast<std::size_t>(n_nodes));
    for (int nd = 0; nd < n_nodes; ++nd) {
      s.node_core_occ.push_back(ledger_.node(nd).coreOccupancy());
    }
  }
  cfg_.sampler->advanceTo(now, s);
}

void ClusterSimulator::accumulate(double t0, double t1) {
  if (t1 <= t0) return;
  telemetry::ScopedPhase sp(cfg_.phases, telemetry::Phase::kAccounting);
  busy_integral_ += ledger_.busyNodeCount() * (t1 - t0);
  if (cfg_.monitor_episode_s <= 0.0) return;

  // Per-node bandwidth is piecewise constant over [t0, t1): sum of each
  // resident job's bandwidth weighted by the fraction of its time spent in
  // the memory-active (compute) component. Idle nodes contribute zero, so
  // only the busy-node list is touched; the scratch buffer is a hoisted
  // member, so steady-state events allocate nothing.
  bw_scratch_.clear();
  for (int nd : busy_nodes_) {
    const auto& resident = node_jobs_[static_cast<std::size_t>(nd)];
    const auto& sol = node_solution_[static_cast<std::size_t>(nd)];
    double bw = 0.0;
    for (std::size_t i = 0; i < resident.size(); ++i) {
      const Running& r = running(resident[i]);
      const double t_inst = 1.0 / r.rate;
      const double comp_part =
          t_inst - r.comm_data_time * r.net_stretch - r.wait_time;
      const double weight = comp_part > 0.0 ? comp_part / t_inst : 0.0;
      bw += sol.bw[i] * weight;
    }
    bw_scratch_.emplace_back(nd, bw);
  }

  const int n_nodes = ledger_.nodeCount();
  double t = t0;
  while (t < t1 - 1e-12) {
    const double boundary = episode_start_ + cfg_.monitor_episode_s;
    const double span_end = std::min(t1, boundary);
    for (const auto& [nd, bw] : bw_scratch_) {
      episode_accum_[static_cast<std::size_t>(nd)] += bw * (span_end - t);
    }
    if (span_end >= boundary - 1e-12) {
      // Close the episode: store per-node averages.
      std::vector<double> avg(static_cast<std::size_t>(n_nodes));
      for (int nd = 0; nd < n_nodes; ++nd) {
        avg[static_cast<std::size_t>(nd)] =
            episode_accum_[static_cast<std::size_t>(nd)] / cfg_.monitor_episode_s;
        episode_accum_[static_cast<std::size_t>(nd)] = 0.0;
      }
      episodes_.push_back(std::move(avg));
      episode_start_ = boundary;
    }
    t = span_end;
  }
}

SimResult ClusterSimulator::run(const std::vector<app::JobSpec>& jobs) {
  SNS_REQUIRE(!jobs.empty(), "run() needs at least one job");
  // Wire the event stream for this run: the configured sink, plus — when
  // the legacy callbacks are set — an adapter sink that replays
  // job_started / job_finished back into them. All three live on the
  // stack; the recorder is detached again below.
  LegacyHookSink legacy;
  obs::TeeSink tee;
  obs::EventSink* effective = cfg_.sink;
  if (cfg_.on_start || cfg_.on_finish) {
    legacy.cfg = &cfg_;
    legacy.records = &records_;
    if (effective != nullptr) {
      tee.add(effective);
      tee.add(&legacy);
      effective = &tee;
    } else {
      effective = &legacy;
    }
  }
  rec_.setSink(effective);
  rec_.setTime(0.0);
#if SNS_AUDIT_ENABLED
  // Audit violations ride the same per-run event stream as every other
  // decision event, so they land in traces, reports and the ring buffer.
  if (cfg_.auditor != nullptr) cfg_.auditor->setRecorder(&rec_);
#endif
  // Detach the per-run sink chain (tee / legacy adapter live on this
  // frame) on every exit path: a fail-fast auditor leaves run() by
  // throwing AuditError, and neither the recorder nor the auditor may
  // keep pointing into this frame afterwards.
  struct SinkGuard {
    ClusterSimulator* sim;
    ~SinkGuard() {
#if SNS_AUDIT_ENABLED
      if (sim->cfg_.auditor != nullptr) sim->cfg_.auditor->setRecorder(nullptr);
#endif
      sim->rec_.setSink(nullptr);
    }
  } sink_guard{this};

  // Reset state so a simulator instance can be reused. The scheduler reads
  // the run-local database: a copy of the seed database that the online
  // monitor (if enabled) extends during the run.
  const std::size_t n = jobs.size();
  local_db_ = *db_;
  ledger_ = actuator::ResourceLedger(cfg_.nodes, est_->machine());
  applyLedgerOpts();
  queue_ = sched::JobQueue{};
  solve_cache_.clear();
  // Batched-scoring memos: the spec memo is epoch-guarded but the ledger
  // (and its epochs) was just rebuilt; the policy's demand memo keys
  // profiles by address, and local_db_ was just re-copied — drop both.
  policy_->beginRun();
  failed_specs_.clear();
  failed_specs_valid_ = false;
  failed_specs_min_floor_ = std::numeric_limits<int>::max();
  futile_ready_ = false;
  pass_placements_ = 0;
  solo_memo_.clear();
  deferred_dirty_.clear();
  std::fill(node_stamp_.begin(), node_stamp_.end(), 0u);
  node_stamp_epoch_ = 0;
  defer_refresh_ = false;
  select_hits_seen_ = 0;
  select_misses_seen_ = 0;
  running_.assign(n, Running{});
  records_.assign(n, JobRecord{});
  active_.clear();
  active_pos_.assign(n, -1);
  active_hwm_ = 0;
  if (m_active_hwm_) m_active_hwm_->set(0.0);
  calendar_.reset(n);
  if (cfg_.flight != nullptr) {
    cfg_.flight->beginRun(n, cfg_.nodes);
    // Stamps start at 1 so a fresh memo (version 0) always recomputes.
    flight_node_version_.assign(static_cast<std::size_t>(cfg_.nodes), 1);
    flight_node_memo_.assign(static_cast<std::size_t>(cfg_.nodes),
                             FlightNodeMemo{});
    flight_open_key_.assign(n, FlightOpenKey{});
    flight_sig_memo_.clear();  // matrices hold pointers into the old map
  } else {
    flight_node_version_.clear();
    flight_node_memo_.clear();
    flight_open_key_.clear();
    flight_sig_memo_.clear();
  }
  job_stamp_.assign(n, 0u);
  stamp_epoch_ = 0;
  for (auto& v : node_jobs_) v.clear();
  for (auto& v : node_job_slots_) v.clear();
  for (auto& s : node_solution_) {
    s.rate.clear();
    s.bw.clear();
  }
  busy_nodes_.clear();
  std::fill(busy_pos_.begin(), busy_pos_.end(), -1);
  std::fill(node_net_demand_.begin(), node_net_demand_.end(), 0.0);
  episodes_.clear();
  std::fill(episode_accum_.begin(), episode_accum_.end(), 0.0);
  episode_start_ = 0.0;
  busy_integral_ = 0.0;
  std::fill(node_donated_.begin(), node_donated_.end(), 0.0);

  // Build submit-ordered job list.
  std::vector<sched::Job> submits;
  submits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched::Job j;
    j.id = static_cast<sched::JobId>(i);
    j.spec = jobs[i];
    j.program = &app::findProgram(*library_, jobs[i].program);
    SNS_REQUIRE(j.program->calibrated(), "program must be calibrated");
    j.submit_time = jobs[i].submit_time;
    JobRecord& rec = records_[i];
    rec.id = j.id;
    rec.spec = jobs[i];
    rec.submit = jobs[i].submit_time;
    submits.push_back(std::move(j));
  }
  std::stable_sort(submits.begin(), submits.end(),
                   [](const sched::Job& a, const sched::Job& b) {
                     return a.submit_time < b.submit_time;
                   });

  double now = 0.0;
  std::size_t next_submit = 0;

  // Admit everything submitted at t = 0 before the first scheduling pass.
  while (next_submit < submits.size() &&
         submits[next_submit].submit_time <= now + 1e-12) {
    admit(std::move(submits[next_submit++]));
  }
  schedule(now);
  auditTick();
  if (cfg_.sampler != nullptr && cfg_.sampler->due(now)) sampleTelemetry(now);

  while (!active_.empty() || !queue_.empty() || next_submit < submits.size()) {
    // Next completion: the calendar's top key IS the minimum projected
    // finish time; the legacy arm scans the active list reading the same
    // boundary-settled projections (identical doubles, O(active) instead
    // of O(log active)).
    double t_finish = kInf;
    if (cfg_.opt.finish_calendar) {
      if (!calendar_.empty()) t_finish = calendar_.topKey();
    } else {
      for (sched::JobId id : active_) {
        t_finish = std::min(t_finish, running(id).finish_time);
      }
    }
    // Next submission.
    const double t_submit =
        next_submit < submits.size() ? submits[next_submit].submit_time : kInf;

    SNS_REQUIRE(t_finish < kInf || t_submit < kInf,
                "scheduler stuck: queued jobs but nothing running or arriving");
    const double t_next = std::min(t_finish, t_submit);

    accumulate(now, t_next);
    if (!cfg_.opt.lazy_progress) {
      // Legacy-arm structural cost: the old per-event decrement over every
      // active job. Nothing reads `remaining` for decisions anymore — the
      // canonical progress state is the boundary-settled anchor — so the
      // lazy arm simply skips the loop.
      for (sched::JobId id : active_) {
        Running& r = running(id);
        r.remaining -= (t_next - now) * r.rate;
      }
    }
    now = t_next;
    rec_.setTime(now);

    while (next_submit < submits.size() &&
           submits[next_submit].submit_time <= now + 1e-12) {
      admit(std::move(submits[next_submit++]));
    }

    // Finish everything projected to complete at this instant, in
    // ascending id order. Every such job carries finish_time == now
    // exactly (t_next is the minimum of the keys), so the calendar's
    // (key, id) pop order IS ascending id order — identical to the legacy
    // sweep-and-sort over the unordered active list.
    done_scratch_.clear();
    if (cfg_.opt.finish_calendar) {
      while (!calendar_.empty() && calendar_.topKey() <= now) {
        done_scratch_.push_back(calendar_.pop());
      }
    } else {
      for (sched::JobId id : active_) {
        if (running(id).finish_time <= now) done_scratch_.push_back(id);
      }
      std::sort(done_scratch_.begin(), done_scratch_.end());
    }
    for (sched::JobId id : done_scratch_) finishJob(id, now);

    schedule(now);
    auditTick();
    // Telemetry rides the event clock: one cheap due() check per event,
    // and only when a period boundary has elapsed is a sample built.
    // Post-schedule state is what lands in the series — the scheduler's
    // committed view at this instant.
    if (cfg_.sampler != nullptr && cfg_.sampler->due(now)) sampleTelemetry(now);
  }

  if (cfg_.flight != nullptr) {
    cfg_.flight->endRun(now);
    // Reconcile every job's attributed slowdown ledger against its actual
    // vs solo runtime. Post-run and O(jobs) — cheap enough to run whenever
    // an auditor is attached, independent of the SNS_AUDIT hot-path gate.
    if (cfg_.auditor != nullptr) cfg_.auditor->auditFlightLedger(*cfg_.flight);
  }

  SimResult res;
  res.policy = policy_->name();
  res.makespan = now;
  res.busy_node_seconds = busy_integral_;
  res.node_bw_episodes.assign(static_cast<std::size_t>(cfg_.nodes), {});
  for (const auto& ep : episodes_) {
    for (int nd = 0; nd < cfg_.nodes; ++nd) {
      res.node_bw_episodes[static_cast<std::size_t>(nd)].push_back(
          ep[static_cast<std::size_t>(nd)]);
    }
  }
  for (const JobRecord& rec : records_) {
    SNS_REQUIRE(rec.completed(), "job never completed");
  }
  res.jobs = records_;  // already in ascending id order
  return res;
}

}  // namespace sns::sim
