#include "sns/sim/cluster_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>

#include "sns/app/comm.hpp"
#include "sns/profile/exploration.hpp"
#include "sns/util/error.hpp"

namespace sns::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDoneEps = 1e-9;

/// Implements the legacy SimConfig::on_start / on_finish hooks on top of
/// the structured event stream: job_started / job_finished events are
/// replayed as callbacks carrying the up-to-date JobRecord.
struct LegacyHookSink final : obs::EventSink {
  const SimConfig* cfg = nullptr;
  const std::map<sched::JobId, JobRecord>* records = nullptr;

  void record(const obs::Event& e) override {
    if (e.type == obs::EventType::kJobStarted) {
      if (cfg->on_start) cfg->on_start(records->at(e.job));
    } else if (e.type == obs::EventType::kJobFinished) {
      if (cfg->on_finish) cfg->on_finish(records->at(e.job));
    }
  }
};
}  // namespace

ClusterSimulator::ClusterSimulator(const perfmodel::Estimator& est,
                                   const std::vector<app::ProgramModel>& library,
                                   const profile::ProfileDatabase& db, SimConfig cfg)
    : est_(&est),
      library_(&library),
      db_(&db),
      cfg_(cfg),
      ledger_(cfg.nodes, est.machine()) {
  SNS_REQUIRE(cfg.nodes >= 1, "simulator needs at least one node");
  if (cfg_.policy == sched::PolicyKind::kSNS) {
    policy_ = std::make_unique<sched::SnsPolicy>(est, cfg_.sns);
  } else {
    policy_ = sched::makePolicy(cfg_.policy, est);
  }
  node_jobs_.resize(static_cast<std::size_t>(cfg.nodes));
  node_solution_.resize(static_cast<std::size_t>(cfg.nodes));
  node_net_demand_.assign(static_cast<std::size_t>(cfg.nodes), 0.0);
  episode_accum_.assign(static_cast<std::size_t>(cfg.nodes), 0.0);
  node_donated_.assign(static_cast<std::size_t>(cfg.nodes), 0.0);
  if (cfg_.online_profiling) {
    monitor_ = std::make_unique<profile::Profiler>(est, cfg_.monitor);
    monitor_->attachRecorder(&rec_);  // piggybacked episodes become events
  }
  // The policy explains its decisions through the same recorder; the
  // recorder's sink is wired per run().
  policy_->attachRecorder(&rec_);
  if (cfg_.metrics != nullptr) {
    // Fetch instrument pointers once; hot-loop updates are then a null
    // check plus an add — no map lookups, no allocations.
    auto& m = *cfg_.metrics;
    const std::vector<double> time_buckets = {1,   10,   30,   60,   120,  300,
                                              600, 1200, 3600, 7200, 14400};
    m_solver_calls_ = &m.counter("sim.solver_calls");
    m_submitted_ = &m.counter("sim.jobs_submitted");
    m_started_ = &m.counter("sim.jobs_started");
    m_finished_ = &m.counter("sim.jobs_finished");
    m_backfill_skips_ = &m.counter("sim.backfill_skips");
    m_sched_passes_ = &m.counter("sim.schedule_passes");
    m_ways_donated_ = &m.counter("sim.ways_donated");
    m_queue_depth_ = &m.gauge("sim.queue_depth");
    m_busy_nodes_ = &m.gauge("sim.busy_nodes");
    m_wait_s_ = &m.histogram("sim.wait_s", time_buckets);
    m_run_s_ = &m.histogram("sim.run_s", time_buckets);
    m_decision_us_ = &m.histogram(
        "sim.decision_us",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  }
}

void ClusterSimulator::noteDonations(int nd) {
  if (!cfg_.donate_unused_ways) return;
  if (!rec_.enabled() && m_ways_donated_ == nullptr) return;
  const auto& node = ledger_.node(nd);
  double total = 0.0;
  for (sched::JobId id : node_jobs_[static_cast<std::size_t>(nd)]) {
    const auto& alloc = node.allocation(id);
    // Donation is only meaningful for partitioned co-runners: exclusive
    // and unpartitioned jobs already see the whole cache.
    if (alloc.exclusive || alloc.ways == 0) continue;
    total += node.effectiveWays(id) - alloc.ways;
  }
  double& prev = node_donated_[static_cast<std::size_t>(nd)];
  const double delta = total - prev;
  if (delta > 1e-9) {
    rec_.waysDonated(nd, delta, total);
    if (m_ways_donated_) m_ways_donated_->inc(delta);
  } else if (delta < -1e-9) {
    rec_.waysReclaimed(nd, -delta, total);
  }
  prev = total;
}

void ClusterSimulator::admit(sched::Job job) {
  rec_.jobSubmitted(job.id, job.spec.program, job.spec.procs);
  if (m_submitted_) m_submitted_->inc();
  queue_.push(std::move(job));
  if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
}

void ClusterSimulator::resolveNode(int nd) {
  auto& jobs = node_jobs_[static_cast<std::size_t>(nd)];
  auto& sol = node_solution_[static_cast<std::size_t>(nd)];
  sol.clear();
  if (jobs.empty()) return;

  if (m_solver_calls_) m_solver_calls_->inc();
  std::vector<perfmodel::NodeShare> shares;
  shares.reserve(jobs.size());
  for (sched::JobId id : jobs) {
    const Running& r = running_.at(id);
    const double rf = app::remoteFraction(r.prog->comm.pattern, r.spec.procs,
                                          r.placement.procs_per_node,
                                          r.placement.nodeCount());
    const auto& alloc = ledger_.node(nd).allocation(id);
    const double ways = cfg_.donate_unused_ways
                            ? ledger_.node(nd).effectiveWays(id)
                            : static_cast<double>(alloc.ways);
    const double cap = cfg_.enforce_bandwidth_caps && !alloc.exclusive
                           ? alloc.bw_gbps
                           : 0.0;
    shares.push_back({r.prog, r.placement.procs_per_node, ways, rf, 1.0, cap});
  }
  const auto outcomes = est_->solver().solve(shares);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sol[jobs[i]] = {outcomes[i].rate_per_proc, outcomes[i].bw_gbps};
  }
}

void ClusterSimulator::refreshRates(const std::vector<int>& dirty_nodes) {
  for (int nd : dirty_nodes) resolveNode(nd);

  // Jobs touching a dirty node need their progress rate re-derived.
  std::set<sched::JobId> affected;
  for (int nd : dirty_nodes) {
    for (sched::JobId id : node_jobs_[static_cast<std::size_t>(nd)]) {
      affected.insert(id);
    }
  }
  const double nic_cap = est_->machine().net_bw_gbps;
  for (sched::JobId id : affected) {
    Running& r = running_.at(id);
    double corun_rate = kInf;
    double bw_sum = 0.0;
    double net_over = 1.0;
    for (int nd : r.placement.nodes) {
      const auto& entry = node_solution_[static_cast<std::size_t>(nd)].at(id);
      corun_rate = std::min(corun_rate, entry.first);
      bw_sum += entry.second;
      // NIC oversubscription on this node stretches everyone's comm.
      net_over = std::max(
          net_over, node_net_demand_[static_cast<std::size_t>(nd)] / nic_cap);
    }
    SNS_REQUIRE(corun_rate > 0.0, "co-run rate must be positive");
    const double stretch = r.solo_rate / corun_rate;
    r.net_stretch = net_over;
    const double t_inst = r.comp_time_solo * stretch +
                          r.comm_data_time * net_over + r.wait_time;
    SNS_REQUIRE(t_inst > 0.0, "instantaneous job time must be positive");
    r.rate = 1.0 / t_inst;
    r.bw_per_node = bw_sum / r.placement.nodeCount();
    if (cfg_.enforce_bandwidth_caps && rec_.enabled()) {
      // Report each transition into the MBA-capped regime exactly once.
      const double cap = r.placement.bw_gbps;
      const bool capped = !r.placement.exclusive && cap > 0.0 &&
                          r.bw_per_node >= cap * (1.0 - 1e-6);
      if (capped && !r.throttled) {
        rec_.bandwidthThrottled(id, r.placement.nodes.front(), cap);
      }
      r.throttled = capped;
    }
  }
}

void ClusterSimulator::startJob(const sched::Job& job, const sched::Placement& p,
                                double now) {
  Running r;
  r.id = job.id;
  r.prog = job.program;
  r.spec = job.spec;
  r.placement = p;

  // Solo baseline at the allocated ways (full cache when unpartitioned or
  // exclusive: alone, the job would own the whole LLC).
  const double solo_ways =
      p.ways > 0 ? p.ways : static_cast<double>(est_->machine().llc_ways);
  const auto solo =
      est_->solo(*job.program, job.spec.procs, p.nodeCount(), solo_ways);
  double reps = std::max(1, job.spec.repeats);
  if (job.spec.ce_time_override > 0.0) {
    // Trace-driven jobs: rescale work so the CE run matches the trace
    // duration, preserving the program's relative scaling behaviour.
    const auto ce = est_->soloCE(*job.program, job.spec.procs,
                                 est_->minNodes(job.spec.procs));
    reps *= job.spec.ce_time_override / ce.time;
  }
  r.comp_time_solo = solo.comp_time * reps;
  r.comm_data_time = solo.comm_data_time * reps;
  r.wait_time = solo.wait_time * reps;
  r.solo_rate = solo.ipc * est_->machine().frequency_ghz * 1e9;
  r.remaining = 1.0;
  // Ground-truth NIC usage: remote traffic volume over the solo run time
  // (repeats and trace rescaling multiply volume and time alike).
  r.nic_demand = solo.time > 0.0
                     ? p.procs_per_node * job.program->comm_gb_per_proc *
                           solo.remote_frac / solo.time
                     : 0.0;

  running_[job.id] = std::move(r);
  for (int nd : p.nodes) {
    ledger_.allocate(nd, job.id, p.nodeAllocation());
    node_jobs_[static_cast<std::size_t>(nd)].push_back(job.id);
    node_net_demand_[static_cast<std::size_t>(nd)] += running_[job.id].nic_demand;
  }

  JobRecord& rec = records_.at(job.id);
  rec.start = now;
  rec.placement = p;
  // job_started drives the legacy on_start hook through the adapter sink,
  // so the record must be complete before emission.
  rec_.jobStarted(job.id, job.spec.program,
                  p.nodes.empty() ? -1 : p.nodes.front(), p.nodeCount(),
                  p.ways, p.scale_factor, p.exclusive);
  if (m_started_) m_started_->inc();
  for (int nd : p.nodes) noteDonations(nd);
}

void ClusterSimulator::finishJob(sched::JobId id, double now) {
  const Running& r = running_.at(id);
  JobRecord& record = records_.at(id);
  record.finish = now;
  rec_.jobFinished(id, record.spec.program, record.runTime());
  if (m_finished_) m_finished_->inc();
  if (m_wait_s_) m_wait_s_->observe(record.waitTime());
  if (m_run_s_) m_run_s_->observe(record.runTime());
  // Piggybacked profiling: an exclusive run doubles as a profiling trial at
  // its scale factor (§4.1/§4.4); the monitor's measurements accumulate in
  // the run-local database so later submissions schedule smarter.
  if (monitor_ != nullptr && r.placement.exclusive) {
    const int k = r.placement.scale_factor;
    const auto* existing = local_db_.find(r.spec.program, r.spec.procs);
    if (existing == nullptr || existing->at(k) == nullptr) {
      profile::ProgramProfile pp;
      if (existing != nullptr) {
        pp = *existing;
      } else {
        pp.program = r.spec.program;
        pp.procs = r.spec.procs;
      }
      profile::mergeTrial(pp, monitor_->profileScale(*r.prog, r.spec.procs, k),
                          cfg_.monitor.neutral_band);
      local_db_.put(std::move(pp));
    }
  }
  for (int nd : r.placement.nodes) {
    ledger_.release(nd, id);
    auto& jobs = node_jobs_[static_cast<std::size_t>(nd)];
    jobs.erase(std::remove(jobs.begin(), jobs.end(), id), jobs.end());
    node_net_demand_[static_cast<std::size_t>(nd)] -= r.nic_demand;
    noteDonations(nd);
  }
  const std::vector<int> dirty = r.placement.nodes;
  running_.erase(id);
  refreshRates(dirty);
}

void ClusterSimulator::schedule(double now) {
  using Clock = std::chrono::steady_clock;
  const auto wall_begin = m_decision_us_ ? Clock::now() : Clock::time_point{};
  if (m_sched_passes_) m_sched_passes_->inc();

  bool placed_any = true;
  while (placed_any) {
    placed_any = false;
    int scanned = 0;
    for (const sched::Job& job : queue_.pending()) {
      if (++scanned > cfg_.max_queue_scan) break;
      auto p = policy_->tryPlace(job, ledger_, local_db_);
      if (p.has_value()) {
        const sched::Job job_copy = job;
        queue_.remove(job.id);
        startJob(job_copy, *p, now);
        refreshRates(p->nodes);
        placed_any = true;
        break;  // queue mutated; restart the walk
      }
      // Anti-starvation: once the head job has aged past the limit, no
      // younger job may be backfilled ahead of it.
      if (scanned == 1 && job.age(now) > cfg_.age_limit_s) {
        rec_.backfillSkipped(job.id, job.age(now),
                             "head job aged past the backfill age limit");
        if (m_backfill_skips_) m_backfill_skips_->inc();
        break;
      }
    }
  }

  if (m_queue_depth_) m_queue_depth_->set(static_cast<double>(queue_.size()));
  if (m_busy_nodes_) {
    m_busy_nodes_->set(static_cast<double>(ledger_.busyNodeCount()));
  }
  if (m_decision_us_) {
    m_decision_us_->observe(
        std::chrono::duration<double, std::micro>(Clock::now() - wall_begin)
            .count());
  }
}

void ClusterSimulator::accumulate(double t0, double t1) {
  if (t1 <= t0) return;
  busy_integral_ += ledger_.busyNodeCount() * (t1 - t0);
  if (cfg_.monitor_episode_s <= 0.0) return;

  // Per-node bandwidth is piecewise constant over [t0, t1): sum of each
  // resident job's bandwidth weighted by the fraction of its time spent in
  // the memory-active (compute) component.
  const int n_nodes = ledger_.nodeCount();
  std::vector<double> node_bw(static_cast<std::size_t>(n_nodes), 0.0);
  for (int nd = 0; nd < n_nodes; ++nd) {
    double bw = 0.0;
    for (sched::JobId id : node_jobs_[static_cast<std::size_t>(nd)]) {
      const Running& r = running_.at(id);
      const double t_inst = 1.0 / r.rate;
      const double comp_part =
          t_inst - r.comm_data_time * r.net_stretch - r.wait_time;
      const double weight = comp_part > 0.0 ? comp_part / t_inst : 0.0;
      bw += node_solution_[static_cast<std::size_t>(nd)].at(id).second * weight;
    }
    node_bw[static_cast<std::size_t>(nd)] = bw;
  }

  double t = t0;
  while (t < t1 - 1e-12) {
    const double boundary = episode_start_ + cfg_.monitor_episode_s;
    const double span_end = std::min(t1, boundary);
    for (int nd = 0; nd < n_nodes; ++nd) {
      episode_accum_[static_cast<std::size_t>(nd)] +=
          node_bw[static_cast<std::size_t>(nd)] * (span_end - t);
    }
    if (span_end >= boundary - 1e-12) {
      // Close the episode: store per-node averages.
      std::vector<double> avg(static_cast<std::size_t>(n_nodes));
      for (int nd = 0; nd < n_nodes; ++nd) {
        avg[static_cast<std::size_t>(nd)] =
            episode_accum_[static_cast<std::size_t>(nd)] / cfg_.monitor_episode_s;
        episode_accum_[static_cast<std::size_t>(nd)] = 0.0;
      }
      episodes_.push_back(std::move(avg));
      episode_start_ = boundary;
    }
    t = span_end;
  }
}

SimResult ClusterSimulator::run(const std::vector<app::JobSpec>& jobs) {
  SNS_REQUIRE(!jobs.empty(), "run() needs at least one job");
  // Wire the event stream for this run: the configured sink, plus — when
  // the legacy callbacks are set — an adapter sink that replays
  // job_started / job_finished back into them. All three live on the
  // stack; the recorder is detached again below.
  LegacyHookSink legacy;
  obs::TeeSink tee;
  obs::EventSink* effective = cfg_.sink;
  if (cfg_.on_start || cfg_.on_finish) {
    legacy.cfg = &cfg_;
    legacy.records = &records_;
    if (effective != nullptr) {
      tee.add(effective);
      tee.add(&legacy);
      effective = &tee;
    } else {
      effective = &legacy;
    }
  }
  rec_.setSink(effective);
  rec_.setTime(0.0);

  // Reset state so a simulator instance can be reused. The scheduler reads
  // the run-local database: a copy of the seed database that the online
  // monitor (if enabled) extends during the run.
  local_db_ = *db_;
  ledger_ = actuator::ResourceLedger(cfg_.nodes, est_->machine());
  queue_ = sched::JobQueue{};
  running_.clear();
  records_.clear();
  for (auto& v : node_jobs_) v.clear();
  for (auto& m : node_solution_) m.clear();
  std::fill(node_net_demand_.begin(), node_net_demand_.end(), 0.0);
  episodes_.clear();
  std::fill(episode_accum_.begin(), episode_accum_.end(), 0.0);
  episode_start_ = 0.0;
  busy_integral_ = 0.0;
  std::fill(node_donated_.begin(), node_donated_.end(), 0.0);

  // Build submit-ordered job list.
  std::vector<sched::Job> submits;
  submits.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sched::Job j;
    j.id = static_cast<sched::JobId>(i);
    j.spec = jobs[i];
    j.program = &app::findProgram(*library_, jobs[i].program);
    SNS_REQUIRE(j.program->calibrated(), "program must be calibrated");
    j.submit_time = jobs[i].submit_time;
    JobRecord rec;
    rec.id = j.id;
    rec.spec = jobs[i];
    rec.submit = jobs[i].submit_time;
    records_[j.id] = rec;
    submits.push_back(std::move(j));
  }
  std::stable_sort(submits.begin(), submits.end(),
                   [](const sched::Job& a, const sched::Job& b) {
                     return a.submit_time < b.submit_time;
                   });

  double now = 0.0;
  std::size_t next_submit = 0;

  // Admit everything submitted at t = 0 before the first scheduling pass.
  while (next_submit < submits.size() &&
         submits[next_submit].submit_time <= now + 1e-12) {
    admit(std::move(submits[next_submit++]));
  }
  schedule(now);

  while (!running_.empty() || !queue_.empty() || next_submit < submits.size()) {
    // Next completion.
    double t_finish = kInf;
    for (const auto& [id, r] : running_) {
      t_finish = std::min(t_finish, now + r.remaining / r.rate);
    }
    // Next submission.
    const double t_submit =
        next_submit < submits.size() ? submits[next_submit].submit_time : kInf;

    SNS_REQUIRE(t_finish < kInf || t_submit < kInf,
                "scheduler stuck: queued jobs but nothing running or arriving");
    const double t_next = std::min(t_finish, t_submit);

    accumulate(now, t_next);
    for (auto& [id, r] : running_) r.remaining -= (t_next - now) * r.rate;
    now = t_next;
    rec_.setTime(now);

    while (next_submit < submits.size() &&
           submits[next_submit].submit_time <= now + 1e-12) {
      admit(std::move(submits[next_submit++]));
    }

    // Finish all jobs that completed at this instant.
    std::vector<sched::JobId> done;
    for (const auto& [id, r] : running_) {
      if (r.remaining <= kDoneEps) done.push_back(id);
    }
    for (sched::JobId id : done) finishJob(id, now);

    schedule(now);
  }

  SimResult res;
  res.policy = policy_->name();
  res.makespan = now;
  res.busy_node_seconds = busy_integral_;
  res.node_bw_episodes.assign(static_cast<std::size_t>(cfg_.nodes), {});
  for (const auto& ep : episodes_) {
    for (int nd = 0; nd < cfg_.nodes; ++nd) {
      res.node_bw_episodes[static_cast<std::size_t>(nd)].push_back(
          ep[static_cast<std::size_t>(nd)]);
    }
  }
  res.jobs.reserve(records_.size());
  for (auto& [id, rec] : records_) {
    SNS_REQUIRE(rec.completed(), "job never completed");
    res.jobs.push_back(rec);
  }
  std::sort(res.jobs.begin(), res.jobs.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  // Detach the per-run sink chain (tee / legacy adapter live on this
  // frame) before it goes out of scope.
  rec_.setSink(nullptr);
  return res;
}

}  // namespace sns::sim
