#include "sns/sim/gantt.hpp"

#include <algorithm>
#include <map>

#include "sns/util/error.hpp"
#include "sns/util/table.hpp"

namespace sns::sim {

namespace {
char jobLetter(sched::JobId id) {
  constexpr const char* kAlphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  return kAlphabet[static_cast<std::size_t>(id) % 52];
}
}  // namespace

std::string renderGantt(const SimResult& result, int nodes, int width) {
  SNS_REQUIRE(nodes >= 1, "renderGantt() needs nodes >= 1");
  SNS_REQUIRE(width >= 8, "renderGantt() needs width >= 8");
  SNS_REQUIRE(!result.jobs.empty(), "renderGantt() needs a non-empty result");
  const double span = std::max(result.makespan, 1e-9);
  const double dt = span / width;

  std::string out;
  for (int nd = 0; nd < nodes; ++nd) {
    std::string row = "N";
    row += std::to_string(nd);
    row.append(nd < 10 ? 2 : 1, ' ');
    for (int col = 0; col < width; ++col) {
      const double t = (col + 0.5) * dt;
      // Dominant job on this node at time t (most cores).
      char cell = '.';
      int best_cores = 0;
      for (const auto& j : result.jobs) {
        if (j.start > t || j.finish <= t) continue;
        if (std::find(j.placement.nodes.begin(), j.placement.nodes.end(), nd) ==
            j.placement.nodes.end()) {
          continue;
        }
        if (j.placement.procs_per_node > best_cores) {
          best_cores = j.placement.procs_per_node;
          cell = jobLetter(j.id);
        }
      }
      row += cell;
    }
    out += row + "\n";
  }

  out += "\n    ";
  out += "0s";
  out.append(static_cast<std::size_t>(std::max(0, width - 10)), ' ');
  out += util::fmt(span, 0) + "s\n";

  out += "legend:";
  for (const auto& j : result.jobs) {
    out += " ";
    out += jobLetter(j.id);
    out += "=" + j.spec.program;
  }
  out += "\n";
  return out;
}

}  // namespace sns::sim
