#pragma once

#include <span>
#include <string>

#include "sns/flight/flight.hpp"
#include "sns/obs/event.hpp"
#include "sns/sim/cluster_sim.hpp"
#include "sns/util/json.hpp"
#include "sns/xray/span.hpp"

namespace sns::sim {

/// Knobs of the Perfetto export.
struct TraceExportOptions {
  /// Episode length the result's node_bw_episodes were sampled with
  /// (SimConfig::monitor_episode_s); needed to place counter samples.
  double episode_s = 30.0;
  /// Cap on scheduler instant markers taken from the event log (newest
  /// kept); <= 0 means unlimited.
  std::size_t max_instants = 0;
  /// Decision tracer whose retained spans (TracerConfig::keep_records)
  /// render as nested "decision anatomy" slices under the scheduler
  /// process, anchored at each pass's virtual time with real nanoseconds
  /// mapped 1:1 onto the virtual axis. Null skips the lanes.
  const xray::Tracer* xray = nullptr;
  /// Interference flight recorder whose retained co-residency intervals
  /// render as a per-node "interference (slowdown s/s)" counter lane: the
  /// instantaneous attributed-deficit rate of everything bottlenecked on
  /// the node, stepped at the recorder's interval boundaries. Null skips
  /// the lanes.
  const flight::FlightRecorder* flight = nullptr;
};

/// Render one simulation as a Perfetto / Chrome trace-event JSON document
/// loadable in ui.perfetto.dev:
///   - one process track per node ("node N"), with each job that touched
///     the node as a duration slice (lane = job id) annotated with its
///     placement (procs, ways, scale, exclusive, wait);
///   - a per-node "bandwidth (GB/s)" counter track from the monitoring
///     episodes;
///   - a "scheduler" process carrying the decision event log as instant
///     markers (one lane per event type) and a "queue depth" counter
///     reconstructed from submit/start events.
/// `events` may be empty (e.g. tracing was off): the schedule itself still
/// exports.
util::Json exportPerfetto(const SimResult& res,
                          std::span<const obs::Event> events = {},
                          const TraceExportOptions& opts = {});

/// exportPerfetto() + write to `path` (pretty-printed when `indent` > 0).
void writePerfettoFile(const std::string& path, const SimResult& res,
                       std::span<const obs::Event> events = {},
                       const TraceExportOptions& opts = {});

}  // namespace sns::sim
