#pragma once

#include <vector>

#include "sns/sim/cluster_sim.hpp"

namespace sns::sim {

/// Per-job run-time ratios of `test` vs `base` (same job sequence run under
/// two policies); index-aligned by job id.
std::vector<double> runTimeRatios(const SimResult& test, const SimResult& base);

/// Geometric mean of per-job normalized run time (the paper's Fig 16
/// "average" line).
double geomeanRunTimeRatio(const SimResult& test, const SimResult& base);

/// Count of jobs whose run time exceeded base x (1/alpha) — slowdown
/// threshold violations (§6.2 reports 136 of 720 executions).
int thresholdViolations(const SimResult& test, const SimResult& base, double alpha);

/// Coefficient of variation (stddev / peak) of the per-node per-episode
/// bandwidth matrix — the paper's Fig 17 load-balance variance metric.
double bandwidthVariance(const SimResult& r, double peak_bw);

}  // namespace sns::sim
