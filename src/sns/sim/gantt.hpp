#pragma once

#include <string>

#include "sns/sim/cluster_sim.hpp"

namespace sns::sim {

/// ASCII Gantt chart of a schedule: one row per node, time on the x axis.
/// Each cell shows the job occupying the most cores on that node during
/// the cell's time slice (letters cycle A-Z a-z by job id), '.' for idle.
/// Shared nodes show the dominant job; the legend lists every job's letter,
/// program and span. Width is the number of time columns.
std::string renderGantt(const SimResult& result, int nodes, int width = 72);

}  // namespace sns::sim
