#include "sns/util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "sns/util/error.hpp"

namespace sns::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SNS_REQUIRE(!header_.empty(), "Table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  SNS_REQUIRE(cells.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = renderRow(header_);
  std::size_t ruleLen = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) ruleLen += widths[c] + (c ? 2 : 0);
  out.append(ruleLen, '-');
  out += "\n";
  for (const auto& row : rows_) out += renderRow(row);
  return out;
}

std::string Table::csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::string out;
  auto appendRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += quote(row[c]);
    }
    out += '\n';
  };
  appendRow(header_);
  for (const auto& row : rows_) appendRow(row);
  return out;
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmtPct(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

}  // namespace sns::util
