#include "sns/util/thread_pool.hpp"

#include <algorithm>

namespace sns::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sns::util
