#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "sns/util/mutex.hpp"
#include "sns/util/thread_annotations.hpp"

namespace sns::util {

/// Fixed-size worker pool for embarrassingly parallel harness work — e.g.
/// replaying the (cluster-size x ratio x policy) grid of bench_fig20, where
/// every ClusterSimulator instance is self-contained and only shares
/// immutable inputs (estimator, program library, profile database) — and
/// for the simulator's sharded placement search (SimOptFlags::
/// parallel_select), where workers write disjoint index ranges of a
/// caller-owned scratch array and the caller joins on the futures before
/// reading any of it.
///
/// Tasks run in submission order when workers are free; submit() returns a
/// future for the task's result. Exceptions propagate through the future.
/// The destructor drains the queue (all submitted tasks run) and joins.
///
/// Concurrency contract (machine-checked by clang -Wthread-safety): the
/// task queue and the stop flag are guarded by mu_; workers block on cv_.
/// workers_ is written only before any worker can observe the pool
/// (constructor) and joined in the destructor, so it needs no capability.
class ThreadPool {
 public:
  /// `threads` == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notifyOne();
    return result;
  }

 private:
  void workerLoop() SNS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;  ///< construction/join only, see above
  Mutex mu_;
  std::deque<std::function<void()>> queue_ SNS_GUARDED_BY(mu_);
  CondVar cv_;
  bool stopping_ SNS_GUARDED_BY(mu_) = false;
};

}  // namespace sns::util
