#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sns::util {

/// Fixed-size worker pool for embarrassingly parallel harness work — e.g.
/// replaying the (cluster-size x ratio x policy) grid of bench_fig20, where
/// every ClusterSimulator instance is self-contained and only shares
/// immutable inputs (estimator, program library, profile database).
///
/// Tasks run in submission order when workers are free; submit() returns a
/// future for the task's result. Exceptions propagate through the future.
/// The destructor drains the queue (all submitted tasks run) and joins.
class ThreadPool {
 public:
  /// `threads` == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace sns::util
