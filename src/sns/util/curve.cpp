#include "sns/util/curve.hpp"

#include <algorithm>
#include <cmath>

#include "sns/util/error.hpp"

namespace sns::util {

Curve::Curve(std::vector<std::pair<double, double>> points) : pts_(std::move(points)) {
  std::sort(pts_.begin(), pts_.end());
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    SNS_REQUIRE(pts_[i].first > pts_[i - 1].first, "Curve x values must be distinct");
  }
}

void Curve::addPoint(double x, double y) {
  auto it = std::lower_bound(pts_.begin(), pts_.end(), std::pair<double, double>{x, y},
                             [](const auto& a, const auto& b) { return a.first < b.first; });
  SNS_REQUIRE(it == pts_.end() || it->first != x, "Curve x values must be distinct");
  pts_.insert(it, {x, y});
}

double Curve::minX() const {
  SNS_REQUIRE(!pts_.empty(), "minX() of empty curve");
  return pts_.front().first;
}

double Curve::maxX() const {
  SNS_REQUIRE(!pts_.empty(), "maxX() of empty curve");
  return pts_.back().first;
}

double Curve::at(double x) const {
  SNS_REQUIRE(!pts_.empty(), "at() of empty curve");
  if (x <= pts_.front().first) return pts_.front().second;
  if (x >= pts_.back().first) return pts_.back().second;
  auto hi = std::lower_bound(pts_.begin(), pts_.end(), std::pair<double, double>{x, 0.0},
                             [](const auto& a, const auto& b) { return a.first < b.first; });
  if (hi->first == x) return hi->second;
  auto lo = hi - 1;
  const double t = (x - lo->first) / (hi->first - lo->first);
  return lo->second + t * (hi->second - lo->second);
}

double Curve::firstXReaching(double target) const {
  SNS_REQUIRE(!pts_.empty(), "firstXReaching() of empty curve");
  if (pts_.front().second >= target) return pts_.front().first;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    const auto& [x0, y0] = pts_[i - 1];
    const auto& [x1, y1] = pts_[i];
    if (y1 >= target) {
      if (y1 == y0) return x1;
      const double t = (target - y0) / (y1 - y0);
      // Only interpolate if the crossing happens inside the segment
      // (the segment might dip then recover; linear pieces cannot, so the
      // first segment whose right end reaches the target crosses inside it).
      return x0 + std::clamp(t, 0.0, 1.0) * (x1 - x0);
    }
  }
  return pts_.back().first;
}

bool Curve::isNonDecreasing() const {
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (pts_[i].second < pts_[i - 1].second) return false;
  }
  return true;
}

}  // namespace sns::util
