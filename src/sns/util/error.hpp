#pragma once

#include <stdexcept>
#include <string>

namespace sns::util {

/// Error thrown when a caller violates an API precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Error thrown when input data (a profile file, a trace, a config) is
/// malformed rather than the caller being at fault.
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void failRequire(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed (" + cond + "): " + msg);
}
}  // namespace detail

}  // namespace sns::util

/// Precondition check that survives release builds. Use for public API
/// contracts; use assert() only for internal invariants.
#define SNS_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::sns::util::detail::failRequire(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
