#pragma once

#include <condition_variable>
#include <mutex>

#include "sns/util/thread_annotations.hpp"

namespace sns::util {

/// Capability-annotated mutex: a thin std::mutex wrapper that clang's
/// -Wthread-safety analysis can reason about (libstdc++'s std::mutex
/// carries no capability attributes, so SNS_GUARDED_BY(raw_std_mutex)
/// is rejected by the compiler). All cross-thread state in the sns stack
/// is guarded by one of these; snslint's unannotated-shared-state rule
/// flags raw std::mutex members so the invariant holds by construction.
///
/// Zero-cost: every member is a forwarded call the compiler flattens to
/// the underlying pthread op; the attributes exist only at compile time.
class SNS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SNS_ACQUIRE() { mu_.lock(); }
  void unlock() SNS_RELEASE() { mu_.unlock(); }
  bool try_lock() SNS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // The one sanctioned raw std::mutex: it IS the capability's backing store.
  // snslint: allow(unannotated-shared-state)
  std::mutex mu_;
};

/// RAII lock for Mutex, visible to the analysis as a scoped capability
/// (std::lock_guard<Mutex> would compile but the analysis would not know
/// the guard releases at scope end).
class SNS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SNS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SNS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. Built on condition_variable_any,
/// which waits on any BasicLockable — Mutex qualifies — so waiters keep
/// their capability annotations: wait() requires the caller to hold `mu`,
/// and the analysis treats the capability as held across the predicate
/// (the wait re-acquires before returning, exactly like the runtime).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, re-acquire before returning. The
  /// analysis cannot see the release/re-acquire pair inside
  /// condition_variable_any, which is fine: the capability is held at
  /// every point the caller can observe. Callers loop on their condition
  /// (`while (!ready()) cv.wait(mu);`) — the loop body is plain annotated
  /// code, so guarded reads in the condition stay machine-checked, which
  /// a predicate-lambda overload would hide from the analysis.
  void wait(Mutex& mu) SNS_REQUIRES(mu) SNS_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  // Backing primitive of the wrapper itself, like Mutex::mu_ above.
  // snslint: allow(unannotated-shared-state)
  std::condition_variable_any cv_;
};

}  // namespace sns::util
