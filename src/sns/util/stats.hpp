#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sns::util {

/// Arithmetic mean. Empty input is a precondition violation.
double mean(std::span<const double> xs);

/// Geometric mean; all inputs must be positive. The paper follows common
/// practice (its §6.1) of arithmetic mean for times and geometric mean for
/// speedups / normalized times.
double geomean(std::span<const double> xs);

/// Population variance (divide by N).
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Min / max of a non-empty span.
double minOf(std::span<const double> xs);
double maxOf(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford's algorithm); numerically
/// stable for long monitoring streams.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); values outside are clamped into
/// the first/last bin. Used for the paper's Fig 18 bandwidth-interval counts.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  /// Inclusive lower edge of a bin.
  double binLow(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  double binHigh(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sns::util
