#pragma once

#include <string>
#include <vector>

namespace sns::util {

/// Plain-text table renderer used by every bench binary to print the rows /
/// series of the paper figure it regenerates. Column widths auto-fit;
/// numeric cells should be pre-formatted by the caller (see fmt helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  /// Render with a header rule, columns separated by two spaces.
  std::string render() const;

  /// Render as CSV (comma-separated, quoted only when needed).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` decimal places.
std::string fmt(double v, int digits = 2);
/// Format as a percentage string, e.g. fmtPct(0.198) -> "19.8%".
std::string fmtPct(double fraction, int digits = 1);

}  // namespace sns::util
