#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace sns::util {

/// Minimal self-contained JSON value used for profile-database persistence
/// (the paper's Uberun "stores profiling data in a JSON-format file", §5.1).
/// Supports the full JSON grammar except \uXXXX surrogate pairs outside the
/// BMP. Object keys are kept sorted (std::map) so serialization is
/// deterministic and files diff cleanly.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool isBool() const { return std::holds_alternative<bool>(value_); }
  bool isNumber() const { return std::holds_alternative<double>(value_); }
  bool isString() const { return std::holds_alternative<std::string>(value_); }
  bool isArray() const { return std::holds_alternative<Array>(value_); }
  bool isObject() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw DataError on type mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;
  Array& asArray();
  Object& asObject();

  /// Object member access; get() throws DataError if the key is missing.
  const Json& get(const std::string& key) const;
  bool has(const std::string& key) const;
  Json& operator[](const std::string& key);

  /// Serialize. indent == 0 produces compact one-line output; otherwise
  /// pretty-printed with the given indent width.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; trailing garbage is an error.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace sns::util
