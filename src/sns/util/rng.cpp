#include "sns/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace sns::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SNS_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  SNS_REQUIRE(lo <= hi, "uniformInt(lo, hi) needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  SNS_REQUIRE(stddev >= 0.0, "normal() needs stddev >= 0");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  SNS_REQUIRE(lambda > 0.0, "exponential() needs lambda > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weightedIndex(const std::vector<double>& weights) {
  SNS_REQUIRE(!weights.empty(), "weightedIndex() needs a non-empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    SNS_REQUIRE(w >= 0.0, "weightedIndex() needs non-negative weights");
    total += w;
  }
  SNS_REQUIRE(total > 0.0, "weightedIndex() needs at least one positive weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

Rng Rng::split() {
  Rng child;
  std::uint64_t seed = next();
  child.reseed(splitmix64(seed));
  return child;
}

}  // namespace sns::util
