#pragma once

#include <utility>
#include <vector>

namespace sns::util {

/// Piecewise-linear curve over strictly increasing x values with clamped
/// extrapolation. This is the workhorse behind every profile in the system:
/// IPC-LLC curves, BW-LLC curves, the STREAM bandwidth saturation curve,
/// and miss-ratio-vs-ways curves are all `Curve`s. The paper's profiler
/// samples 4 way-allocations and "performs linear interpolation for missing
/// data points" (§5.1) — exactly `Curve::at`.
class Curve {
 public:
  Curve() = default;
  /// Points need not be pre-sorted but x values must be distinct.
  explicit Curve(std::vector<std::pair<double, double>> points);

  /// Insert a point, keeping x order; replacing an existing x is an error.
  void addPoint(double x, double y);

  bool empty() const { return pts_.empty(); }
  std::size_t size() const { return pts_.size(); }
  const std::vector<std::pair<double, double>>& points() const { return pts_; }

  double minX() const;
  double maxX() const;

  /// Linear interpolation; x outside [minX, maxX] clamps to the end values.
  double at(double x) const;

  /// Smallest x (searching the sampled grid left to right, interpolating
  /// within segments) such that y(x) >= target. Returns maxX if the target
  /// is never reached. Intended for "minimum LLC ways needed to achieve
  /// T-IPC" lookups on non-decreasing curves, but works on any curve by
  /// taking the first crossing.
  double firstXReaching(double target) const;

  /// True if y values never decrease as x grows.
  bool isNonDecreasing() const;

  /// Pointwise map: returns a curve with the same x grid and y' = f applied.
  template <typename F>
  Curve mapY(F&& f) const {
    Curve out = *this;
    for (auto& [x, y] : out.pts_) y = f(y);
    return out;
  }

 private:
  std::vector<std::pair<double, double>> pts_;
};

}  // namespace sns::util
