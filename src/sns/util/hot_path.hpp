#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sns::util::hotpath {

/// One named hot-path site (DESIGN.md "Static contracts"). Markers are
/// function-local statics registered once into a global intrusive list —
/// no heap, no dynamic initialization order hazards — so the allocation
/// interposer (tests/support/alloc_guard) can attribute every heap
/// allocation that happens inside a marked scope to the site it occurred
/// in, and the steady-state contract test can assert, per site, that all
/// allocations happened during warm-up.
///
/// Counters are atomics only so concurrent harnesses (several simulators
/// on pool workers, each passing through marked scopes) stay defined;
/// the scheduler hot path itself is single-threaded and pays two relaxed
/// TLS writes per scope — nanoseconds against a 105 us decision.
struct Marker {
  const char* name;  ///< dotted contract name, e.g. "sched.decision"
  const char* file;
  int line;
  Marker* next = nullptr;  ///< intrusive registry chain

  std::atomic<std::uint64_t> entries{0};       ///< scope activations
  std::atomic<std::uint64_t> allocs{0};        ///< non-exempt allocations
  std::atomic<std::uint64_t> alloc_bytes{0};   ///< bytes of the above
  std::atomic<std::uint64_t> exempt_allocs{0}; ///< allocations inside
                                               ///< boundary-exempt entries
  /// `entries` value of the most recent entry that performed a non-exempt
  /// allocation — the steady-state gate: once warm, this stops moving.
  std::atomic<std::uint64_t> last_alloc_entry{0};

  Marker(const char* name_, const char* file_, int line_);
};

/// Head of the marker registry (push-once at static-local init, CAS'd so
/// markers first reached on different threads register safely).
Marker* registryHead();

/// Visit every registered marker (order is registration order, i.e.
/// first-execution order — deterministic for a single-threaded run).
template <typename Fn>
void forEachMarker(Fn&& fn) {
  for (Marker* m = registryHead(); m != nullptr; m = m->next) fn(*m);
}

/// Find a marker by contract name; null when the site was never reached.
Marker* findMarker(const char* name);

/// Reset every marker's counters (test isolation between runs).
void resetCounters();

/// Snapshot of the innermost active scope, for the interposer's optional
/// allocation-backtrace hook (SNS_ALLOC_TRACE_MIN_ENTRY): which contract
/// site is open, which activation this is, and whether it has already
/// been declared a boundary.
struct ActiveScopeInfo {
  const char* name;
  std::uint64_t entry;  ///< this activation's ordinal (1-based)
  bool exempt;
};

/// Fills `out` from the innermost active scope; false when none is open.
/// Never allocates (callable from inside operator new).
bool innermostScopeInfo(ActiveScopeInfo& out);

/// RAII scope: pushes its marker on a thread-local stack so the
/// allocation interposer can attribute allocations to the innermost
/// active site. Nesting deeper than kMaxDepth is counted but not
/// attributed (never allocates — this code runs under operator new).
class Scope {
 public:
  static constexpr std::size_t kMaxDepth = 16;

  explicit Scope(Marker* m);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Declare this activation a rate-boundary action: its allocations are
  /// tallied under `exempt_allocs` instead of advancing
  /// `last_alloc_entry`. The decision path calls this when a placement
  /// actually commits — a successful decision builds its Placement and is
  /// a boundary by definition; the steady-state contract covers the
  /// failure-dominated re-scoring and the settled-engine paths.
  void markBoundary() { exempt_ = true; }

 private:
  friend void noteAllocation(std::size_t bytes);
  friend bool innermostScopeInfo(ActiveScopeInfo& out);
  Marker* marker_;
  std::uint64_t local_allocs_ = 0;
  std::uint64_t local_bytes_ = 0;
  bool exempt_ = false;
  bool on_stack_ = false;
};

/// Called by the allocation interposer (when one is linked in) for every
/// global operator new. Attributes to the innermost active Scope of the
/// calling thread; cheap no-op when no scope is active. Must not allocate.
void noteAllocation(std::size_t bytes);

/// Scope::markBoundary for call sites that sit inside a marked scope but
/// outside its lexical block — a callee declaring "this activation is a
/// state-changing event". Used by memo warm-ups that live in other
/// modules (a solver-cache miss caching a never-seen co-run signature)
/// and by append-only history writes (an event-log append): both allocate
/// by design, at event rate, and neither is per-decision scratch. No-op
/// when no scope is active.
void markInnermostBoundary();

/// True when the calling thread is currently inside any marked scope
/// (used by AllocGuard self-tests).
bool inHotScope();

}  // namespace sns::util::hotpath

/// Marks the enclosing scope as a named hot path. Place at the top of the
/// function (or block) the contract covers:
///
///   void ClusterSimulator::refreshRates(...) {
///     SNS_HOT_PATH("engine.refresh");
///     ...
///   }
///
/// `SNS_HOT_PATH_BOUNDARY()` later in the same block marks the current
/// activation as a rate-boundary action (see Scope::markBoundary). The
/// scope variable has a fixed name, so exactly one SNS_HOT_PATH per
/// lexical scope — which is also the contract: a hot-path function has
/// one identity.
/// snslint's hot-path-allocation and exception-escape-hot-path rules key
/// on the marker token: any allocating construct or `throw` lexically
/// inside a marked function is a finding.
#define SNS_HOT_PATH(name)                                            \
  static ::sns::util::hotpath::Marker sns_hot_path_marker{            \
      name, __FILE__, __LINE__};                                      \
  ::sns::util::hotpath::Scope sns_hot_path_scope { &sns_hot_path_marker }
#define SNS_HOT_PATH_BOUNDARY() sns_hot_path_scope.markBoundary()
