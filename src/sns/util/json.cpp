#include "sns/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "sns/util/error.hpp"

namespace sns::util {

bool Json::asBool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  throw DataError("Json: not a bool");
}

double Json::asNumber() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  throw DataError("Json: not a number");
}

const std::string& Json::asString() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  throw DataError("Json: not a string");
}

const Json::Array& Json::asArray() const {
  if (const auto* a = std::get_if<Array>(&value_)) return *a;
  throw DataError("Json: not an array");
}

const Json::Object& Json::asObject() const {
  if (const auto* o = std::get_if<Object>(&value_)) return *o;
  throw DataError("Json: not an object");
}

Json::Array& Json::asArray() {
  if (auto* a = std::get_if<Array>(&value_)) return *a;
  throw DataError("Json: not an array");
}

Json::Object& Json::asObject() {
  if (auto* o = std::get_if<Object>(&value_)) return *o;
  throw DataError("Json: not an object");
}

const Json& Json::get(const std::string& key) const {
  const auto& obj = asObject();
  auto it = obj.find(key);
  if (it == obj.end()) throw DataError("Json: missing key '" + key + "'");
  return it->second;
}

bool Json::has(const std::string& key) const {
  return isObject() && asObject().count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (isNull()) value_ = Object{};
  return asObject()[key];
}

namespace {

void dumpString(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dumpNumber(double d, std::string& out) {
  if (!std::isfinite(d)) throw DataError("Json: cannot serialize non-finite number");
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

static void dumpImpl(const Json& j, std::string& out, int indent, int depth);

static void newlineIndent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

static void dumpImpl(const Json& j, std::string& out, int indent, int depth) {
  if (j.isNull()) {
    out += "null";
  } else if (j.isBool()) {
    out += j.asBool() ? "true" : "false";
  } else if (j.isNumber()) {
    dumpNumber(j.asNumber(), out);
  } else if (j.isString()) {
    dumpString(j.asString(), out);
  } else if (j.isArray()) {
    const auto& arr = j.asArray();
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += indent > 0 ? "," : ",";
      newlineIndent(out, indent, depth + 1);
      dumpImpl(arr[i], out, indent, depth + 1);
    }
    if (!arr.empty()) newlineIndent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = j.asObject();
    out += '{';
    std::size_t i = 0;
    for (const auto& [k, v] : obj) {
      if (i++) out += ",";
      newlineIndent(out, indent, depth + 1);
      dumpString(k, out);
      out += indent > 0 ? ": " : ":";
      dumpImpl(v, out, indent, depth + 1);
    }
    if (!obj.empty()) newlineIndent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpImpl(*this, out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parseDocument() {
    Json v = parseValue();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw DataError("Json parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void expectLiteral(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail(std::string("bad literal, expected ") + lit);
      ++pos_;
    }
  }

  Json parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Json(parseString());
      case 't': expectLiteral("true"); return Json(true);
      case 'f': expectLiteral("false"); return Json(false);
      case 'n': expectLiteral("null"); return Json(nullptr);
      default: return parseNumber();
    }
  }

  Json parseObject() {
    expect('{');
    Json::Object obj;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj[std::move(key)] = parseValue();
      skipWs();
      char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parseArray() {
    expect('[');
    Json::Array arr;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parseValue());
      skipWs();
      char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(s_.data() + start, s_.data() + pos_, value);
    if (ec != std::errc{} || ptr != s_.data() + pos_) fail("bad number");
    return Json(value);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace sns::util
