#pragma once

#include <cstdint>
#include <vector>

#include "sns/util/error.hpp"

namespace sns::util {

/// Deterministic, seedable pseudo-random generator (xoshiro256**), used
/// everywhere randomness is needed so that every experiment in the repo is
/// exactly reproducible from a seed. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal where the *underlying* normal has (mu, sigma).
  double lognormal(double mu, double sigma);
  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);
  /// Bernoulli trial with probability p of true.
  bool chance(double p);
  /// Pick an index in [0, weights.size()) proportionally to weights (>= 0,
  /// at least one positive).
  std::size_t weightedIndex(const std::vector<double>& weights);
  /// Derive an independent child generator (for per-experiment streams).
  Rng split();

 private:
  std::uint64_t next();

  std::uint64_t s_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sns::util
