#pragma once

/// Clang thread-safety-analysis attribute macros for the sns stack
/// (DESIGN.md "Static contracts"). Under clang with -Wthread-safety the
/// annotated lock relationships — which mutex guards which member, which
/// capability a function requires, acquires, releases or must not hold —
/// become compile-time contracts; the CI `thread-safety` job promotes the
/// analysis to an error. Under gcc (and clang without the attribute)
/// every macro expands to nothing, so annotated headers stay portable.
///
/// The macros follow the capability vocabulary of the upstream analysis
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
///
///   SNS_CAPABILITY(name)     the class is a capability (a lock); its
///                            acquire/release members carry SNS_ACQUIRE /
///                            SNS_RELEASE. `sns::util::Mutex` is the
///                            canonical instance — raw std::mutex members
///                            are rejected by snslint's
///                            unannotated-shared-state rule because the
///                            analysis cannot see through them (libstdc++
///                            ships no capability attributes).
///   SNS_GUARDED_BY(mu)       reads and writes of the member require `mu`.
///   SNS_PT_GUARDED_BY(mu)    dereferencing the pointer member requires `mu`.
///   SNS_REQUIRES(...)        caller must already hold the capabilities.
///   SNS_REQUIRES_SHARED(...) caller must hold them at least shared.
///   SNS_ACQUIRE(...)         function acquires them and does not release.
///   SNS_RELEASE(...)         function releases them.
///   SNS_EXCLUDES(...)        caller must NOT hold them (deadlock guard).
///   SNS_ACQUIRED_BEFORE/AFTER(...)  declared lock ordering.
///   SNS_SCOPED_CAPABILITY    RAII type that acquires in its constructor
///                            and releases in its destructor.
///   SNS_RETURN_CAPABILITY(x) function returns a reference to capability x.
///   SNS_ASSERT_CAPABILITY(x) runtime assertion that x is held (tells the
///                            analysis to trust it from here on).
///   SNS_NO_THREAD_SAFETY_ANALYSIS  opt a function out (constructors of
///                            the capability types themselves, fork/join
///                            patterns the analysis cannot express).
///
/// Classes with no capability at all fall into two documented buckets:
///
///   SNS_THREAD_COMPATIBLE    const access is concurrency-safe, any write
///                            needs external synchronization (the obs
///                            sinks, the metrics registry, the telemetry
///                            sampler/store: one simulation, one thread —
///                            the parallel replay harness gives every
///                            worker its own instances and the future
///                            daemon must wrap shared ones in a Mutex).
///   SNS_THREAD_HOSTILE       not safe to touch from two threads even
///                            const (internal caches mutate on reads).
///
/// Both expand to nothing everywhere; they exist so the contract is
/// greppable and so new cross-thread sharing of a marked class is a
/// reviewable event, not an accident.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SNS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SNS_THREAD_ANNOTATION
#define SNS_THREAD_ANNOTATION(x)  // not clang, or no thread-safety attributes
#endif

#define SNS_CAPABILITY(name) SNS_THREAD_ANNOTATION(capability(name))
#define SNS_SCOPED_CAPABILITY SNS_THREAD_ANNOTATION(scoped_lockable)
#define SNS_GUARDED_BY(x) SNS_THREAD_ANNOTATION(guarded_by(x))
#define SNS_PT_GUARDED_BY(x) SNS_THREAD_ANNOTATION(pt_guarded_by(x))
#define SNS_ACQUIRED_BEFORE(...) SNS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SNS_ACQUIRED_AFTER(...) SNS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SNS_REQUIRES(...) SNS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SNS_REQUIRES_SHARED(...) \
  SNS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SNS_ACQUIRE(...) SNS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SNS_ACQUIRE_SHARED(...) \
  SNS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SNS_RELEASE(...) SNS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SNS_RELEASE_SHARED(...) \
  SNS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SNS_TRY_ACQUIRE(...) SNS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SNS_EXCLUDES(...) SNS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SNS_ASSERT_CAPABILITY(x) SNS_THREAD_ANNOTATION(assert_capability(x))
#define SNS_RETURN_CAPABILITY(x) SNS_THREAD_ANNOTATION(lock_returned(x))
#define SNS_NO_THREAD_SAFETY_ANALYSIS SNS_THREAD_ANNOTATION(no_thread_safety_analysis)

// Documentation-only thread-role markers (see the header comment).
#define SNS_THREAD_COMPATIBLE
#define SNS_THREAD_HOSTILE
