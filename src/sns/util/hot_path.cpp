#include "sns/util/hot_path.hpp"

#include <cstring>

namespace sns::util::hotpath {

namespace {

std::atomic<Marker*>& registrySlot() {
  static std::atomic<Marker*> head{nullptr};
  return head;
}

/// Per-thread stack of active scopes. Plain array + depth counter so the
/// interposer path (called from inside operator new) never allocates.
struct ScopeStack {
  Scope* frames[Scope::kMaxDepth];
  std::size_t depth = 0;  ///< logical depth (may exceed kMaxDepth)
};

ScopeStack& tlsStack() {
  thread_local ScopeStack stack;
  return stack;
}

}  // namespace

Marker::Marker(const char* name_, const char* file_, int line_)
    : name(name_), file(file_), line(line_) {
  // Push-once CAS registration: function-local-static init guarantees this
  // ctor runs exactly once per site, but different sites may race here.
  std::atomic<Marker*>& head = registrySlot();
  Marker* expected = head.load(std::memory_order_relaxed);
  do {
    next = expected;
  } while (!head.compare_exchange_weak(expected, this,
                                       std::memory_order_release,
                                       std::memory_order_relaxed));
}

Marker* registryHead() {
  return registrySlot().load(std::memory_order_acquire);
}

Marker* findMarker(const char* name) {
  for (Marker* m = registryHead(); m != nullptr; m = m->next) {
    if (std::strcmp(m->name, name) == 0) return m;
  }
  return nullptr;
}

void resetCounters() {
  for (Marker* m = registryHead(); m != nullptr; m = m->next) {
    m->entries.store(0, std::memory_order_relaxed);
    m->allocs.store(0, std::memory_order_relaxed);
    m->alloc_bytes.store(0, std::memory_order_relaxed);
    m->exempt_allocs.store(0, std::memory_order_relaxed);
    m->last_alloc_entry.store(0, std::memory_order_relaxed);
  }
}

Scope::Scope(Marker* m) : marker_(m) {
  marker_->entries.fetch_add(1, std::memory_order_relaxed);
  ScopeStack& stack = tlsStack();
  if (stack.depth < kMaxDepth) {
    stack.frames[stack.depth] = this;
    on_stack_ = true;
  }
  ++stack.depth;
}

Scope::~Scope() {
  ScopeStack& stack = tlsStack();
  --stack.depth;
  if (on_stack_) stack.frames[stack.depth] = nullptr;
  if (local_allocs_ == 0) return;
  if (exempt_) {
    marker_->exempt_allocs.fetch_add(local_allocs_, std::memory_order_relaxed);
  } else {
    marker_->allocs.fetch_add(local_allocs_, std::memory_order_relaxed);
    marker_->alloc_bytes.fetch_add(local_bytes_, std::memory_order_relaxed);
    marker_->last_alloc_entry.store(
        marker_->entries.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}

void noteAllocation(std::size_t bytes) {
  ScopeStack& stack = tlsStack();
  if (stack.depth == 0) return;
  std::size_t top = stack.depth <= Scope::kMaxDepth ? stack.depth
                                                    : Scope::kMaxDepth;
  Scope* s = stack.frames[top - 1];
  if (s == nullptr) return;
  ++s->local_allocs_;
  s->local_bytes_ += bytes;
}

void markInnermostBoundary() {
  ScopeStack& stack = tlsStack();
  if (stack.depth == 0) return;
  std::size_t top = stack.depth <= Scope::kMaxDepth ? stack.depth
                                                    : Scope::kMaxDepth;
  Scope* s = stack.frames[top - 1];
  if (s != nullptr) s->markBoundary();
}

bool inHotScope() { return tlsStack().depth > 0; }

bool innermostScopeInfo(ActiveScopeInfo& out) {
  ScopeStack& stack = tlsStack();
  if (stack.depth == 0) return false;
  std::size_t top = stack.depth <= Scope::kMaxDepth ? stack.depth
                                                    : Scope::kMaxDepth;
  Scope* s = stack.frames[top - 1];
  if (s == nullptr) return false;
  out.name = s->marker_->name;
  out.entry = s->marker_->entries.load(std::memory_order_relaxed);
  out.exempt = s->exempt_;
  return true;
}

}  // namespace sns::util::hotpath
