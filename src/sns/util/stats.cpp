#include "sns/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sns/util/error.hpp"

namespace sns::util {

double mean(std::span<const double> xs) {
  SNS_REQUIRE(!xs.empty(), "mean() of empty span");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  SNS_REQUIRE(!xs.empty(), "geomean() of empty span");
  double logsum = 0.0;
  for (double x : xs) {
    SNS_REQUIRE(x > 0.0, "geomean() needs positive values");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double variance(std::span<const double> xs) {
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  SNS_REQUIRE(!xs.empty(), "percentile() of empty span");
  SNS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile() needs p in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double minOf(std::span<const double> xs) {
  SNS_REQUIRE(!xs.empty(), "minOf() of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double maxOf(std::span<const double> xs) {
  SNS_REQUIRE(!xs.empty(), "maxOf() of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  SNS_REQUIRE(n_ > 0, "RunningStats::mean() with no samples");
  return mean_;
}

double RunningStats::variance() const {
  SNS_REQUIRE(n_ > 0, "RunningStats::variance() with no samples");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  SNS_REQUIRE(n_ > 0, "RunningStats::min() with no samples");
  return min_;
}

double RunningStats::max() const {
  SNS_REQUIRE(n_ > 0, "RunningStats::max() with no samples");
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  SNS_REQUIRE(hi > lo, "Histogram needs hi > lo");
  SNS_REQUIRE(bins > 0, "Histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  SNS_REQUIRE(bin < counts_.size(), "Histogram bin out of range");
  return counts_[bin];
}

double Histogram::binLow(std::size_t bin) const {
  SNS_REQUIRE(bin < counts_.size(), "Histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::binHigh(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return binLow(bin) + width;
}

}  // namespace sns::util
