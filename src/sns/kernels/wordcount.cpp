#include <cstdint>
#include <vector>

#include "sns/kernels/kernels.hpp"
#include "sns/util/error.hpp"
#include "sns/util/rng.hpp"

namespace sns::kernels {

KernelResult runWordCount(const WordCountConfig& cfg) {
  SNS_REQUIRE(cfg.words >= 1 && cfg.vocabulary >= 2, "bad word-count config");
  const std::size_t n = cfg.words;
  const auto vocab = static_cast<std::uint32_t>(cfg.vocabulary);

  // Synthetic corpus: Zipf-ish word ids (squaring a uniform variate biases
  // toward small ids, like natural text).
  std::vector<std::uint32_t> corpus(n);
  {
    util::Rng rng(cfg.seed);
    for (auto& w : corpus) {
      const double u = rng.uniform();
      w = static_cast<std::uint32_t>(u * u * vocab) % vocab;
    }
  }

  TeamRuntime team(cfg.threads, cfg.pin_cores);
  const auto p = static_cast<std::size_t>(cfg.threads);
  std::vector<std::vector<std::uint64_t>> local_counts(
      p, std::vector<std::uint64_t>(vocab, 0));
  std::vector<std::uint64_t> global(vocab, 0);

  const double secs = team.run([&](const TeamContext& ctx) {
    const auto me = static_cast<std::size_t>(ctx.rank);
    const auto [lo, hi] = ctx.chunk(n);
    auto& mine = local_counts[me];
    for (std::size_t i = lo; i < hi; ++i) ++mine[corpus[i]];
    ctx.sync();
    // Merge: each rank owns a vocabulary slice (the reduce side).
    const auto [vlo, vhi] = ctx.chunk(static_cast<std::size_t>(vocab));
    for (std::size_t w = 0; w < p; ++w) {
      for (std::size_t v = vlo; v < vhi; ++v) global[v] += local_counts[w][v];
    }
    ctx.sync();
  });

  std::uint64_t total = 0;
  for (std::uint64_t c : global) total += c;

  KernelResult r;
  r.name = "wordcount";
  r.seconds = secs;
  r.bytes_moved = static_cast<double>(n) * 4.0 +
                  static_cast<double>(vocab) * p * 8.0;
  r.checksum = static_cast<double>(total);
  r.valid = total == n;  // every word counted exactly once
  return r;
}

}  // namespace sns::kernels
