#include "sns/kernels/runtime.hpp"

#include <chrono>

#include "sns/util/error.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sns::kernels {

Barrier::Barrier(int parties) : parties_(parties) {
  SNS_REQUIRE(parties >= 1, "Barrier needs at least one party");
}

void Barrier::arriveAndWait() {
  util::MutexLock lock(mu_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notifyAll();
    return;
  }
  while (generation_ == gen) cv_.wait(mu_);
}

std::pair<std::size_t, std::size_t> TeamContext::chunk(std::size_t n) const {
  const std::size_t per = n / static_cast<std::size_t>(size);
  const std::size_t extra = n % static_cast<std::size_t>(size);
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t begin = r * per + std::min(r, extra);
  const std::size_t end = begin + per + (r < extra ? 1 : 0);
  return {begin, end};
}

namespace {
void pinToCore(int core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  // Best effort: pinning may fail in containers; the kernel still runs.
  (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)core;
#endif
}
}  // namespace

double TeamRuntime::run(const std::function<void(const TeamContext&)>& body) const {
  SNS_REQUIRE(threads_ >= 1, "TeamRuntime needs at least one thread");
  Barrier barrier(threads_);
  Barrier start_gate(threads_);
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(threads_));
  std::vector<double> times(static_cast<std::size_t>(threads_), 0.0);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (int r = 0; r < threads_; ++r) {
    team.emplace_back([&, r] {
      if (pin_cores_) pinToCore(static_cast<int>(static_cast<unsigned>(r) % hw));
      TeamContext ctx{r, threads_, &barrier};
      start_gate.arriveAndWait();
      const auto t0 = std::chrono::steady_clock::now();
      body(ctx);
      const auto t1 = std::chrono::steady_clock::now();
      times[static_cast<std::size_t>(r)] =
          std::chrono::duration<double>(t1 - t0).count();
    });
  }
  for (auto& t : team) t.join();
  double max_t = 0.0;
  for (double t : times) max_t = std::max(max_t, t);
  return max_t;
}

}  // namespace sns::kernels
