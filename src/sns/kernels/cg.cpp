#include <atomic>
#include <cmath>
#include <vector>

#include "sns/kernels/kernels.hpp"
#include "sns/util/error.hpp"

namespace sns::kernels {

namespace {

/// CSR matrix for the 2-D 5-point Laplacian on a grid x grid mesh — a
/// symmetric positive definite system like NPB CG's.
struct Csr {
  std::vector<std::size_t> row_ptr;
  std::vector<int> col;
  std::vector<double> val;
  int n = 0;
};

Csr buildLaplacian(int grid) {
  Csr m;
  m.n = grid * grid;
  m.row_ptr.reserve(static_cast<std::size_t>(m.n) + 1);
  m.row_ptr.push_back(0);
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      const int row = i * grid + j;
      auto push = [&](int c, double v) {
        m.col.push_back(c);
        m.val.push_back(v);
      };
      if (i > 0) push(row - grid, -1.0);
      if (j > 0) push(row - 1, -1.0);
      push(row, 4.0);
      if (j < grid - 1) push(row + 1, -1.0);
      if (i < grid - 1) push(row + grid, -1.0);
      m.row_ptr.push_back(m.col.size());
    }
  }
  return m;
}

}  // namespace

KernelResult runCg(const CgConfig& cfg) {
  SNS_REQUIRE(cfg.grid >= 4 && cfg.iterations >= 1, "bad CG config");
  const Csr A = buildLaplacian(cfg.grid);
  const auto n = static_cast<std::size_t>(A.n);

  std::vector<double> x(n, 0.0), r(n, 1.0), p(n, 1.0), ap(n, 0.0);
  // Shared scalars; rank 0 updates them between barriers.
  double rr = static_cast<double>(n);
  double alpha = 0.0, beta = 0.0;
  std::vector<double> partial_pap, partial_rr;

  TeamRuntime team(cfg.threads, cfg.pin_cores);
  partial_pap.assign(static_cast<std::size_t>(cfg.threads), 0.0);
  partial_rr.assign(static_cast<std::size_t>(cfg.threads), 0.0);

  const double secs = team.run([&](const TeamContext& ctx) {
    const auto [lo, hi] = ctx.chunk(n);
    const auto me = static_cast<std::size_t>(ctx.rank);
    for (int it = 0; it < cfg.iterations; ++it) {
      // ap = A p; pap = p . ap
      double pap_local = 0.0;
      for (std::size_t row = lo; row < hi; ++row) {
        double s = 0.0;
        for (std::size_t k = A.row_ptr[row]; k < A.row_ptr[row + 1]; ++k) {
          s += A.val[k] * p[static_cast<std::size_t>(A.col[k])];
        }
        ap[row] = s;
        pap_local += p[row] * s;
      }
      partial_pap[me] = pap_local;
      ctx.sync();
      if (ctx.rank == 0) {
        double pap = 0.0;
        for (double v : partial_pap) pap += v;
        alpha = rr / pap;
      }
      ctx.sync();
      // x += alpha p; r -= alpha ap; rr_new = r . r
      double rr_local = 0.0;
      for (std::size_t row = lo; row < hi; ++row) {
        x[row] += alpha * p[row];
        r[row] -= alpha * ap[row];
        rr_local += r[row] * r[row];
      }
      partial_rr[me] = rr_local;
      ctx.sync();
      if (ctx.rank == 0) {
        double rr_new = 0.0;
        for (double v : partial_rr) rr_new += v;
        beta = rr_new / rr;
        rr = rr_new;
      }
      ctx.sync();
      // p = r + beta p
      for (std::size_t row = lo; row < hi; ++row) {
        p[row] = r[row] + beta * p[row];
      }
      ctx.sync();
    }
  });

  KernelResult res;
  res.name = "cg";
  res.seconds = secs;
  res.bytes_moved = static_cast<double>(A.val.size()) * cfg.iterations * 12.0 +
                    static_cast<double>(n) * cfg.iterations * 6.0 * 8.0;
  res.checksum = rr;
  // CG minimizes the A-norm of the error; the l2 residual ||r||^2 may
  // transiently overshoot its initial value n before converging, so allow
  // bounded oscillation but reject divergence.
  res.valid = std::isfinite(rr) && rr >= 0.0 && rr < 2.0 * static_cast<double>(n);
  return res;
}

}  // namespace sns::kernels
