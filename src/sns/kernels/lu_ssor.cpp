#include <cmath>
#include <vector>

#include "sns/kernels/kernels.hpp"
#include "sns/util/error.hpp"

namespace sns::kernels {

// Red-black SSOR sweeps over a 2-D grid — a compact stand-in for NPB LU's
// symmetric Gauss-Seidel: bandwidth-heavy sweeps with a dependency
// structure that parallelizes by color.
KernelResult runLuSsor(const LuSsorConfig& cfg) {
  SNS_REQUIRE(cfg.grid >= 8 && cfg.sweeps >= 1, "bad LU/SSOR config");
  const int n = cfg.grid;
  const auto idx = [n](int i, int j) {
    return static_cast<std::size_t>(i) * n + j;
  };
  std::vector<double> u(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> rhs(static_cast<std::size_t>(n) * n, 1.0);
  constexpr double kOmega = 1.5;

  TeamRuntime team(cfg.threads, cfg.pin_cores);
  const double secs = team.run([&](const TeamContext& ctx) {
    for (int sweep = 0; sweep < cfg.sweeps; ++sweep) {
      for (int color = 0; color < 2; ++color) {
        const auto [lo, hi] = ctx.chunk(static_cast<std::size_t>(n - 2));
        for (std::size_t ii = lo; ii < hi; ++ii) {
          const int i = static_cast<int>(ii) + 1;
          for (int j = 1 + (i + color) % 2; j < n - 1; j += 2) {
            const double gs =
                0.25 * (u[idx(i - 1, j)] + u[idx(i + 1, j)] + u[idx(i, j - 1)] +
                        u[idx(i, j + 1)] + rhs[idx(i, j)]);
            u[idx(i, j)] += kOmega * (gs - u[idx(i, j)]);
          }
        }
        ctx.sync();
      }
    }
  });

  double sum = 0.0;
  for (double x : u) sum += x;
  KernelResult r;
  r.name = "lu_ssor";
  r.seconds = secs;
  // Each point update reads 5 neighbours + rhs and writes once.
  r.bytes_moved = static_cast<double>(n - 2) * (n - 2) * cfg.sweeps * 7.0 * 8.0;
  r.checksum = sum;
  // SSOR on the Poisson problem with rhs=1 converges towards a positive
  // solution; mass must be finite, positive, and bounded by the converged
  // solution's mass (max value ~ n^2/8 at the centre).
  r.valid = std::isfinite(sum) && sum > 0.0 &&
            sum < static_cast<double>(n) * n * n * n;
  return r;
}

}  // namespace sns::kernels
