#pragma once

#include <cstdint>

#include "sns/kernels/runtime.hpp"

namespace sns::kernels {

/// STREAM-triad bandwidth kernel (a[i] = b[i] + s*c[i]), the measurement
/// behind the paper's Figure 3.
struct StreamConfig {
  std::size_t elements = 1 << 22;  ///< per array (3 arrays of doubles)
  int iterations = 10;
  int threads = 1;
  bool pin_cores = false;
};
KernelResult runStream(const StreamConfig& cfg);

/// 3-D 7-point stencil V-cycle, a compact stand-in for NPB MG: bandwidth
/// bound, nearest-neighbour data flow.
struct StencilMgConfig {
  int dim = 96;        ///< grid is dim^3 at the finest level
  int vcycles = 4;
  int levels = 3;
  int threads = 1;
  bool pin_cores = false;
};
KernelResult runStencilMg(const StencilMgConfig& cfg);

/// Conjugate-gradient solve on a synthetic sparse SPD matrix (2-D 5-point
/// Laplacian), a compact stand-in for NPB CG: irregular access,
/// latency/cache sensitive.
struct CgConfig {
  int grid = 256;      ///< matrix is (grid^2) x (grid^2)
  int iterations = 50;
  int threads = 1;
  bool pin_cores = false;
};
KernelResult runCg(const CgConfig& cfg);

/// Embarrassingly-parallel Monte-Carlo (Gaussian pair tallies), a compact
/// stand-in for NPB EP: pure compute, no shared data.
struct EpConfig {
  std::uint64_t samples = 1 << 22;
  int threads = 1;
  bool pin_cores = false;
};
KernelResult runEp(const EpConfig& cfg);

/// Level-synchronous parallel BFS on a synthetic power-law graph, a
/// compact stand-in for Graph500: random access, cache hungry.
struct BfsConfig {
  int scale = 18;          ///< 2^scale vertices
  int edge_factor = 16;    ///< average degree
  int roots = 4;           ///< BFS runs from this many sources
  int threads = 1;
  std::uint64_t seed = 0x9f5f17ULL;
  bool pin_cores = false;
};
KernelResult runBfs(const BfsConfig& cfg);

/// Parallel sample sort over 64-bit keys, a compact stand-in for TeraSort:
/// cache-friendly partitioning plus a butterfly-like exchange.
struct SampleSortConfig {
  std::size_t keys = 1 << 22;
  int threads = 1;
  std::uint64_t seed = 0x5048aULL;
  bool pin_cores = false;
};
KernelResult runSampleSort(const SampleSortConfig& cfg);

/// Red-black SSOR sweeps over a 2-D Poisson grid, a compact stand-in for
/// NPB LU (symmetric Gauss-Seidel): bandwidth-heavy dependent sweeps.
struct LuSsorConfig {
  int grid = 512;
  int sweeps = 20;
  int threads = 1;
  bool pin_cores = false;
};
KernelResult runLuSsor(const LuSsorConfig& cfg);

/// Blocked dense matrix multiply, the compute core of the TensorFlow
/// stand-ins (GAN/RNN): high arithmetic intensity, cache-blocked.
struct GemmConfig {
  int dim = 384;
  int threads = 1;
  bool pin_cores = false;
};
KernelResult runGemm(const GemmConfig& cfg);

/// Parallel word count over synthetic text (map + hash-merge), a compact
/// stand-in for HiBench WordCount.
struct WordCountConfig {
  std::size_t words = 1 << 22;
  int vocabulary = 4096;
  int threads = 1;
  std::uint64_t seed = 0x30c0ULL;
  bool pin_cores = false;
};
KernelResult runWordCount(const WordCountConfig& cfg);

}  // namespace sns::kernels
