#include <cmath>
#include <vector>

#include "sns/kernels/kernels.hpp"
#include "sns/util/error.hpp"

namespace sns::kernels {

KernelResult runStream(const StreamConfig& cfg) {
  SNS_REQUIRE(cfg.elements > 0 && cfg.iterations > 0, "bad STREAM config");
  const std::size_t n = cfg.elements;
  std::vector<double> a(n, 0.0), b(n, 1.5), c(n, 2.0);
  constexpr double kScalar = 3.0;

  TeamRuntime team(cfg.threads, cfg.pin_cores);
  const double secs = team.run([&](const TeamContext& ctx) {
    const auto [lo, hi] = ctx.chunk(n);
    for (int it = 0; it < cfg.iterations; ++it) {
      for (std::size_t i = lo; i < hi; ++i) {
        a[i] = b[i] + kScalar * c[i];
      }
      ctx.sync();
      // Rotate roles so the compiler cannot hoist the loop away and the
      // arrays keep streaming through the cache.
      for (std::size_t i = lo; i < hi; ++i) {
        b[i] = a[i] * 0.5;
      }
      ctx.sync();
    }
  });

  KernelResult r;
  r.name = "stream";
  r.seconds = secs;
  // Triad: 2 reads + 1 write; scale pass: 1 read + 1 write; 8 B each.
  r.bytes_moved = static_cast<double>(n) * cfg.iterations * (3.0 + 2.0) * 8.0;
  r.checksum = a[n / 2] + b[n / 3];
  // After each iteration: a = b + 3c with b halved each round.
  double expect_b = 1.5;
  double expect_a = 0.0;
  for (int it = 0; it < cfg.iterations; ++it) {
    expect_a = expect_b + kScalar * 2.0;
    expect_b = expect_a * 0.5;
  }
  r.valid = std::fabs(r.checksum - (expect_a + expect_b)) < 1e-9;
  return r;
}

}  // namespace sns::kernels
