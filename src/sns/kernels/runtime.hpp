#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sns/util/mutex.hpp"
#include "sns/util/thread_annotations.hpp"

namespace sns::kernels {

/// Reusable cyclic barrier for SPMD teams. The arrival count and the
/// generation (which wave of arrivals a sleeping party belongs to) are
/// guarded by mu_; clang -Wthread-safety checks the discipline.
class Barrier {
 public:
  explicit Barrier(int parties);

  /// Block until all parties arrive; reusable across phases.
  void arriveAndWait() SNS_EXCLUDES(mu_);

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  const int parties_;
  int waiting_ SNS_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ SNS_GUARDED_BY(mu_) = 0;
};

/// Per-thread context handed to SPMD bodies.
struct TeamContext {
  int rank = 0;
  int size = 1;
  Barrier* barrier = nullptr;

  void sync() const { barrier->arriveAndWait(); }

  /// Split [0, n) into `size` contiguous chunks; returns this rank's
  /// [begin, end).
  std::pair<std::size_t, std::size_t> chunk(std::size_t n) const;
};

/// Thread-team SPMD runtime: the in-process stand-in for an MPI/Spark
/// worker group. Launches `threads` OS threads, optionally pinning each to
/// a core (the affinity binding Uberun's actuator performs), runs the body
/// on every rank, and joins.
class TeamRuntime {
 public:
  explicit TeamRuntime(int threads, bool pin_cores = false)
      : threads_(threads), pin_cores_(pin_cores) {}

  int threads() const { return threads_; }

  /// Run `body(ctx)` on all ranks; returns the wall time in seconds of the
  /// slowest rank (launch overhead excluded via an internal start barrier).
  double run(const std::function<void(const TeamContext&)>& body) const;

 private:
  int threads_;
  bool pin_cores_;
};

/// One kernel execution's outcome, with self-validation.
struct KernelResult {
  std::string name;
  double seconds = 0.0;
  double bytes_moved = 0.0;   ///< estimated memory traffic
  double checksum = 0.0;      ///< kernel-specific result digest
  bool valid = false;         ///< checksum verified against expectation

  double bandwidthGbps() const {
    return seconds > 0.0 ? bytes_moved / seconds / 1e9 : 0.0;
  }
};

}  // namespace sns::kernels
