#include <cmath>
#include <vector>

#include "sns/kernels/kernels.hpp"
#include "sns/util/error.hpp"

namespace sns::kernels {

// Blocked dense C = A x B — the compute pattern behind the TensorFlow
// stand-ins (GAN/RNN training time is dominated by GEMMs): high arithmetic
// intensity, cache-blocked working set, embarrassingly row-parallel.
KernelResult runGemm(const GemmConfig& cfg) {
  SNS_REQUIRE(cfg.dim >= 16, "bad GEMM config");
  const int n = cfg.dim;
  const auto nn = static_cast<std::size_t>(n);
  std::vector<double> a(nn * nn), b(nn * nn), c(nn * nn, 0.0);
  for (std::size_t i = 0; i < nn * nn; ++i) {
    a[i] = static_cast<double>(i % 7) * 0.125;
    b[i] = static_cast<double>(i % 5) * 0.25;
  }

  constexpr int kBlock = 32;
  TeamRuntime team(cfg.threads, cfg.pin_cores);
  const double secs = team.run([&](const TeamContext& ctx) {
    const auto [lo, hi] = ctx.chunk(nn);  // my block of C rows
    for (std::size_t i0 = lo; i0 < hi; i0 += kBlock) {
      const std::size_t i1 = std::min(hi, i0 + kBlock);
      for (std::size_t k0 = 0; k0 < nn; k0 += kBlock) {
        const std::size_t k1 = std::min(nn, k0 + kBlock);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t k = k0; k < k1; ++k) {
            const double aik = a[i * nn + k];
            double* crow = &c[i * nn];
            const double* brow = &b[k * nn];
            for (std::size_t j = 0; j < nn; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  });

  // Validate against the separable closed form: with a[i][k] = f(i*n+k) and
  // b[k][j] = g(k*n+j), spot-check a few entries by direct recomputation.
  bool ok = true;
  for (std::size_t i : {std::size_t{0}, nn / 2, nn - 1}) {
    for (std::size_t j : {std::size_t{1}, nn / 3, nn - 1}) {
      double expect = 0.0;
      for (std::size_t k = 0; k < nn; ++k) {
        expect += a[i * nn + k] * b[k * nn + j];
      }
      if (std::fabs(expect - c[i * nn + j]) > 1e-6 * std::max(1.0, expect)) {
        ok = false;
      }
    }
  }

  double checksum = 0.0;
  for (std::size_t i = 0; i < nn * nn; i += nn + 1) checksum += c[i];  // trace
  KernelResult r;
  r.name = "gemm";
  r.seconds = secs;
  r.bytes_moved = 3.0 * static_cast<double>(nn) * nn * 8.0;  // cold traffic
  r.checksum = checksum;
  r.valid = ok && std::isfinite(checksum);
  return r;
}

}  // namespace sns::kernels
